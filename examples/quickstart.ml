(* Quickstart: the whole Sonar pipeline in one page.

   1. Identify contention points in a circuit via bottom-up MUX tracing.
   2. Filter states without side-channel risk (Algorithm 1).
   3. Fuzz a processor timing model with contention-state guidance.
   4. Inspect the dual-differential detector's findings.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* Step 1-2: static analysis of a small hand-written circuit — the
     paper's Figure 3 example plus a constant point that the filter drops. *)
  let circuit_text =
    {|
circuit Quickstart :
  module Lsu [lsu] :
    input io_ldq_idx_data : UInt<8>
    input io_ldq_idx_valid : UInt<1>
    input io_stq_idx_data : UInt<8>
    input io_stq_idx_valid : UInt<1>
    input sel_ld : UInt<1>
    output out : UInt<8>
    node ldq_stq_idx = mux(sel_ld, io_ldq_idx_data, io_stq_idx_data)
    connect out = ldq_stq_idx
  module ConstSel [other] :
    input s : UInt<1>
    output o : UInt<8>
    node k = mux(s, UInt<8>(1), UInt<8>(2))
    connect o = k
|}
  in
  let circuit = Sonar_ir.Parser.parse circuit_text in
  let summary = Sonar_ir.Analysis.summarize circuit in
  Format.printf "== Static identification and filtering ==@.%a@.@."
    Sonar_ir.Analysis.pp_summary summary;

  (* Step 3: a short guided fuzzing campaign on the NutShell-like core. *)
  Format.printf "== Guided fuzzing (NutShell model, 60 iterations) ==@.";
  let outcome =
    Sonar.Fuzzer.run
      ~options:{ Sonar.Fuzzer.Options.default with seed = 2024L }
      Sonar_uarch.Config.nutshell Sonar.Fuzzer.full_strategy ~iterations:60
  in
  Format.printf
    "contention coverage %.0f netlist points, %d secret-reflecting timing \
     differences in %d testcases@.@."
    outcome.Sonar.Fuzzer.final_coverage outcome.final_timing_diffs
    outcome.testcases_with_diffs;

  (* Step 4: the dual-differential report of the first finding. *)
  match outcome.reports with
  | [] -> Format.printf "no findings in this short run — try more iterations@."
  | (iteration, report) :: _ ->
      Format.printf "== First finding (iteration %d) ==@.%a@." iteration
        Sonar.Detector.pp_report report
