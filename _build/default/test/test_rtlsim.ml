(* Tests for the bit-vector, levelization, simulation engine, runtime
   monitor and VCD writer. *)

open Sonar_rtlsim

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let check64 = Alcotest.(check int64)

(* --- Bitvec --- *)

let bv w v = Bitvec.make ~width:w (Int64.of_int v)

let test_bitvec_masking () =
  check64 "mask to width" 3L (Bitvec.value (bv 2 7));
  check64 "full value" 255L (Bitvec.value (bv 8 255));
  checkb "width error low" true
    (match Bitvec.make ~width:0 1L with
    | exception Bitvec.Width_error _ -> true
    | _ -> false);
  checkb "width error high" true
    (match Bitvec.make ~width:64 1L with
    | exception Bitvec.Width_error _ -> true
    | _ -> false)

let test_bitvec_arith () =
  check64 "add wraps" 0L (Bitvec.value (Bitvec.add (bv 4 15) (bv 4 1)));
  check64 "sub wraps" 15L (Bitvec.value (Bitvec.sub (bv 4 0) (bv 4 1)));
  check64 "and" 4L (Bitvec.value (Bitvec.logand (bv 4 6) (bv 4 12)));
  check64 "or" 14L (Bitvec.value (Bitvec.logor (bv 4 6) (bv 4 12)));
  check64 "xor" 10L (Bitvec.value (Bitvec.logxor (bv 4 6) (bv 4 12)));
  check64 "not" 9L (Bitvec.value (Bitvec.lognot (bv 4 6)))

let test_bitvec_compare () =
  checkb "lt unsigned" true (Bitvec.is_true (Bitvec.lt (bv 8 3) (bv 8 200)));
  checkb "geq" true (Bitvec.is_true (Bitvec.geq (bv 8 200) (bv 8 200)));
  checkb "eq" true (Bitvec.is_true (Bitvec.eq (bv 8 42) (bv 8 42)));
  checkb "neq" false (Bitvec.is_true (Bitvec.neq (bv 8 42) (bv 8 42)))

let test_bitvec_shift_slice () =
  check64 "shl widens" 12L (Bitvec.value (Bitvec.shl 2 (bv 4 3)));
  checki "shl width" 6 (Bitvec.width (Bitvec.shl 2 (bv 4 3)));
  check64 "shr" 3L (Bitvec.value (Bitvec.shr 2 (bv 8 12)));
  check64 "bits" 5L (Bitvec.value (Bitvec.bits ~hi:4 ~lo:2 (bv 8 0b10100)));
  check64 "cat" 0xABL (Bitvec.value (Bitvec.cat (bv 4 0xA) (bv 4 0xB)));
  check64 "pad" 5L (Bitvec.value (Bitvec.pad 16 (bv 4 5)))

let prop_bitvec_add_commutes =
  QCheck2.Test.make ~name:"bitvec add commutes" ~count:300
    QCheck2.Gen.(pair (int_bound 0xFFFF) (int_bound 0xFFFF))
    (fun (a, b) ->
      Bitvec.equal (Bitvec.add (bv 16 a) (bv 16 b)) (Bitvec.add (bv 16 b) (bv 16 a)))

let prop_bitvec_mask_idempotent =
  QCheck2.Test.make ~name:"masking is idempotent" ~count:300
    QCheck2.Gen.(pair (int_range 1 63) (map Int64.of_int int))
    (fun (w, v) ->
      let x = Bitvec.make ~width:w v in
      Bitvec.equal x (Bitvec.make ~width:w (Bitvec.value x)))

(* --- Levelize / Engine --- *)

let counter_module =
  Sonar_ir.Parser.parse_module
    {|
module Counter [other] :
  input en : UInt<1>
  output out : UInt<8>
  reg count : UInt<8> reset 0
  node next = mux(en, add(count, UInt<8>(1)), count)
  connect count = next
  connect out = count
|}

let test_engine_counter () =
  let e = Engine.compile counter_module in
  Engine.poke_int e "en" 1;
  for _ = 1 to 5 do
    Engine.step e
  done;
  checki "counts to 5" 5 (Engine.peek_int e "out");
  Engine.poke_int e "en" 0;
  Engine.step e;
  checki "holds" 5 (Engine.peek_int e "out");
  checki "cycles" 6 (Engine.cycle e)

let test_engine_reset () =
  let e = Engine.compile counter_module in
  Engine.poke_int e "en" 1;
  Engine.step e;
  Engine.step e;
  Engine.reset e;
  checki "reset to 0" 0 (Engine.peek_int e "out");
  checki "cycle rewound" 0 (Engine.cycle e)

let test_engine_comb () =
  let m =
    Sonar_ir.Parser.parse_module
      {|
module Comb [other] :
  input a : UInt<8>
  input b : UInt<8>
  input s : UInt<1>
  output o : UInt<8>
  node picked = mux(s, a, b)
  connect o = picked
|}
  in
  let e = Engine.compile m in
  Engine.poke_int e "a" 11;
  Engine.poke_int e "b" 22;
  Engine.poke_int e "s" 1;
  Engine.settle e;
  checki "mux true" 11 (Engine.peek_int e "o");
  Engine.poke_int e "s" 0;
  Engine.settle e;
  checki "mux false" 22 (Engine.peek_int e "o")

let test_engine_unknown_signal () =
  let e = Engine.compile counter_module in
  checkb "unknown raises" true
    (match Engine.peek e "nonexistent" with
    | exception Engine.Unknown_signal _ -> true
    | _ -> false);
  checkb "poke non-input raises" true
    (match Engine.poke_int e "out" 1 with
    | exception Engine.Unknown_signal _ -> true
    | _ -> false)

let test_levelize_order () =
  let order = Levelize.order counter_module in
  checkb "both comb signals scheduled" true
    (List.mem "next" order && List.mem "out" order)

let test_levelize_cycle () =
  let m =
    Sonar_ir.Parser.parse_module
      {|
module Loop [other] :
  wire x : UInt<8>
  wire y : UInt<8>
  connect x = add(y, UInt<8>(1))
  connect y = add(x, UInt<8>(1))
|}
  in
  checkb "combinational cycle detected" true
    (match Levelize.order m with
    | exception Levelize.Combinational_cycle _ -> true
    | _ -> false)

(* Differential property: the engine's evaluation of a fixed expression
   over random inputs matches a direct OCaml interpretation. *)
let prop_engine_matches_interpreter =
  let m =
    Sonar_ir.Parser.parse_module
      {|
module X [other] :
  input a : UInt<8>
  input b : UInt<8>
  input s : UInt<1>
  output o : UInt<8>
  node t = mux(s, add(a, b), xor(a, b))
  connect o = t
|}
  in
  QCheck2.Test.make ~name:"engine matches reference semantics" ~count:200
    QCheck2.Gen.(triple (int_bound 255) (int_bound 255) (int_bound 1))
    (fun (a, b, s) ->
      let e = Engine.compile m in
      Engine.poke_int e "a" a;
      Engine.poke_int e "b" b;
      Engine.poke_int e "s" s;
      Engine.settle e;
      let expect = if s = 1 then (a + b) land 255 else a lxor b in
      Engine.peek_int e "o" = expect)

(* --- Monitor --- *)

let monitored_engine () =
  let m = Sonar_dut.Netlist_gen.example_module () in
  let r = Sonar_ir.Instrument.instrument (Sonar_ir.Circuit.make "c" [ m ]) in
  let m' = List.hd r.Sonar_ir.Instrument.circuit.Sonar_ir.Circuit.modules in
  let e = Engine.compile m' in
  (e, Monitor.create e r.monitors)

let test_monitor_simultaneous () =
  let e, mon = monitored_engine () in
  Engine.poke_int e "io_ldq_idx_valid" 1;
  Engine.poke_int e "io_stq_idx_valid" 1;
  Engine.settle e;
  Monitor.sample mon;
  let st = List.hd (Monitor.states mon) in
  checkb "triggered" true st.Monitor.triggered;
  Alcotest.(check (option int)) "interval 0" (Some 0) st.min_pair_interval

let test_monitor_interval () =
  let e, mon = monitored_engine () in
  Engine.poke_int e "io_ldq_idx_valid" 1;
  Engine.settle e;
  Monitor.sample mon;
  Engine.poke_int e "io_ldq_idx_valid" 0;
  Engine.step e;
  Engine.step e;
  Monitor.sample mon;
  Engine.poke_int e "io_stq_idx_valid" 1;
  Engine.settle e;
  Monitor.sample mon;
  let st = List.hd (Monitor.states mon) in
  checkb "not simultaneous" false st.Monitor.triggered;
  Alcotest.(check (option int)) "interval 2" (Some 2) st.min_pair_interval

let test_monitor_window () =
  let e, mon = monitored_engine () in
  Monitor.set_window mon ~start:100 ~stop:200;
  Engine.poke_int e "io_ldq_idx_valid" 1;
  Engine.poke_int e "io_stq_idx_valid" 1;
  Engine.settle e;
  Monitor.sample mon;
  let st = List.hd (Monitor.states mon) in
  checkb "outside window ignored" false st.Monitor.triggered;
  checki "no hits recorded" 0 st.request_hits

(* --- VCD --- *)

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_vcd_output () =
  let e = Engine.compile counter_module in
  let vcd = Vcd.create e in
  Engine.poke_int e "en" 1;
  Vcd.dump vcd;
  Engine.step e;
  Vcd.dump vcd;
  let text = Vcd.contents vcd in
  checkb "has header" true (String.sub text 0 10 = "$timescale");
  checkb "declares count" true (contains "count" text);
  checkb "has timesteps" true (contains "#1" text)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sonar_rtlsim"
    [
      ( "bitvec",
        [
          Alcotest.test_case "masking" `Quick test_bitvec_masking;
          Alcotest.test_case "arithmetic" `Quick test_bitvec_arith;
          Alcotest.test_case "comparisons" `Quick test_bitvec_compare;
          Alcotest.test_case "shift/slice/cat" `Quick test_bitvec_shift_slice;
        ]
        @ qcheck [ prop_bitvec_add_commutes; prop_bitvec_mask_idempotent ] );
      ( "engine",
        [
          Alcotest.test_case "counter" `Quick test_engine_counter;
          Alcotest.test_case "reset" `Quick test_engine_reset;
          Alcotest.test_case "combinational" `Quick test_engine_comb;
          Alcotest.test_case "unknown signals" `Quick test_engine_unknown_signal;
        ]
        @ qcheck [ prop_engine_matches_interpreter ] );
      ( "levelize",
        [
          Alcotest.test_case "ordering" `Quick test_levelize_order;
          Alcotest.test_case "cycle detection" `Quick test_levelize_cycle;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "simultaneous trigger" `Quick test_monitor_simultaneous;
          Alcotest.test_case "interval measurement" `Quick test_monitor_interval;
          Alcotest.test_case "window gating" `Quick test_monitor_window;
        ] );
      ("vcd", [ Alcotest.test_case "waveform output" `Quick test_vcd_output ]);
    ]
