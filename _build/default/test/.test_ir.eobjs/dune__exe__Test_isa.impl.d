test/test_isa.ml: Alcotest Array Asm Encoding Golden Instr Int64 List Memory Printf Program QCheck2 QCheck_alcotest Reg Sonar_isa
