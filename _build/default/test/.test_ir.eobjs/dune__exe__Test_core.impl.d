test/test_core.ml: Alcotest Array Attack Baseline Ccd Channels Corpus Coverage Detector Executor Float Fuzzer Int64 Layout List Mutation Option Printf Rng Sonar Sonar_isa Sonar_uarch Testcase
