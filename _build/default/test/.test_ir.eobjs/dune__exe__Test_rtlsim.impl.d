test/test_rtlsim.ml: Alcotest Bitvec Engine Int64 Levelize List Monitor QCheck2 QCheck_alcotest Sonar_dut Sonar_ir Sonar_rtlsim String Vcd
