test/test_uarch.ml: Alcotest Array Asm Cache Config Core_model Cpoint Exec_unit Golden Instr Int64 List Machine Option Printf Program QCheck2 QCheck_alcotest Reg Sonar Sonar_ir Sonar_isa Sonar_uarch
