(* Unit and property tests for the circuit IR and its static analyses. *)

open Sonar_ir

let check = Alcotest.check
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* --- Component --- *)

let test_component_roundtrip () =
  List.iter
    (fun c ->
      check
        (Alcotest.option (Alcotest.testable Component.pp Component.equal))
        "of_string/to_string" (Some c)
        (Component.of_string (Component.to_string c)))
    Component.all

let test_component_unknown () =
  checkb "unknown tag" true (Component.of_string "bogus" = None)

(* --- Expr --- *)

let e_ref = Expr.reference
let e_lit v = Expr.lit ~width:8 (Int64.of_int v)

let test_expr_refs () =
  let e =
    Expr.mux (e_ref "s") (Expr.prim Expr.Add [ e_ref "a"; e_ref "b" ]) (e_ref "a")
  in
  check Alcotest.(list string) "refs dedup" [ "s"; "a"; "b" ] (Expr.refs e)

let test_expr_count_muxes () =
  let inner = Expr.mux (e_ref "s1") (e_lit 1) (e_lit 2) in
  let outer = Expr.mux (e_ref "s0") inner (e_ref "x") in
  checki "nested muxes" 2 (Expr.count_muxes outer);
  checki "no muxes" 0 (Expr.count_muxes (Expr.prim Expr.Add [ e_lit 1; e_lit 2 ]))

let test_expr_equal () =
  let a = Expr.prim Expr.Add [ e_ref "x"; e_lit 1 ] in
  checkb "equal" true (Expr.equal a (Expr.prim Expr.Add [ e_ref "x"; e_lit 1 ]));
  checkb "not equal" false (Expr.equal a (Expr.prim Expr.Sub [ e_ref "x"; e_lit 1 ]))

let test_primop_arity () =
  checki "not arity" 1 (Expr.primop_arity Expr.Not);
  checki "add arity" 2 (Expr.primop_arity Expr.Add);
  checki "bits arity" 1 (Expr.primop_arity (Expr.Bits (3, 0)))

(* --- Parser / printer round trips --- *)

let test_parse_expr () =
  let e = Parser.parse_expr "mux(sel, add(a, UInt<8>(3)), shl<2>(b))" in
  checki "muxes" 1 (Expr.count_muxes e);
  checks "roundtrip" "mux(sel, add(a, UInt<8>(3)), shl<2>(b))"
    (Printer.expr_to_string e)

let example_text =
  {|
circuit Demo :
  module M [lsu] :
    input io_a_data : UInt<8>
    input io_a_valid : UInt<1>
    input io_b_data : UInt<8>
    input sel : UInt<1>
    output out : UInt<8>
    reg r : UInt<8> reset 0
    node pick = mux(sel, io_a_data, io_b_data)
    connect r = pick
    connect out = r
|}

let test_parse_circuit () =
  let c = Parser.parse example_text in
  checks "name" "Demo" c.Circuit.name;
  checki "modules" 1 (Circuit.module_count c);
  let m = Option.get (Circuit.find_module c "M") in
  checki "stmts" 9 (Fmodule.stmt_count m);
  checkb "component" true (m.Fmodule.component = Component.Lsu)

let test_print_parse_roundtrip () =
  let c = Parser.parse example_text in
  let text = Printer.circuit_to_string c in
  let c2 = Parser.parse text in
  checks "roundtrip text" text (Printer.circuit_to_string c2)

let test_parse_errors () =
  let fails s =
    match Parser.parse s with
    | exception Parser.Error _ -> true
    | exception Lexer.Error _ -> true
    | _ -> false
  in
  checkb "missing circuit" true (fails "module M [lsu] :");
  checkb "bad component" true (fails "circuit C :\n module M [nope] :");
  checkb "bad operator" true
    (fails "circuit C :\n module M [lsu] :\n node x = frobnicate(a)");
  checkb "arity" true (fails "circuit C :\n module M [lsu] :\n node x = add(a)");
  checkb "bad char" true (fails "circuit C : %$#")

let test_lexer_comments () =
  let c = Parser.parse "circuit C : ; a comment\nmodule M [rob] : ; another\n" in
  checki "module parsed" 1 (Circuit.module_count c)

(* Round-trip property over generated netlists. *)
let test_netlist_roundtrip () =
  let c = Sonar_dut.Netlist_gen.generate ~scale:0.005 ~pad:false Sonar_uarch.Config.boom in
  let text = Printer.circuit_to_string c in
  let c2 = Parser.parse text in
  checki "stmt count preserved" (Circuit.stmt_count c) (Circuit.stmt_count c2);
  checks "fixpoint" text (Printer.circuit_to_string c2)

(* --- Mux-tree tracing --- *)

let test_mux_tree_example () =
  (* The paper's Figure 3 example: ldq_stq_idx is one point with a 2-level
     cascade and 3 requests. *)
  let m = Sonar_dut.Netlist_gen.example_module () in
  let points = Mux_tree.points_of_module m in
  checki "one contention point" 1 (List.length points);
  let p = List.hd points in
  checks "output" "ldq_stq_idx" p.Mux_tree.output;
  checki "requests" 3 (Mux_tree.request_count p);
  checki "depth" 2 p.depth;
  checki "absorbed" 2 p.absorbed_muxes;
  check Alcotest.(list string) "selects" [ "sel_ld"; "sel_retry" ] p.selects;
  checki "naive count" 2 (Mux_tree.naive_mux_count m)

let test_mux_in_sel_not_absorbed () =
  (* A MUX in a select position roots its own tree. *)
  let m =
    Parser.parse_module
      {|
module M [exec] :
  input a : UInt<8>
  input b : UInt<8>
  input c : UInt<1>
  input d : UInt<1>
  input e : UInt<1>
  node selmux = mux(e, c, d)
  node out1 = mux(selmux, a, b)
  output o : UInt<8>
  connect o = out1
|}
  in
  checki "two points" 2 (List.length (Mux_tree.points_of_module m))

let test_mux_embedded_in_prim () =
  let m =
    Parser.parse_module
      {|
module M [exec] :
  input a : UInt<8>
  input b : UInt<8>
  input s : UInt<1>
  node out1 = add(mux(s, a, b), a)
  output o : UInt<8>
  connect o = out1
|}
  in
  let points = Mux_tree.points_of_module m in
  checki "embedded root found" 1 (List.length points);
  checki "naive" 1 (Mux_tree.naive_mux_count m)

let test_mux_tree_cycle_safe () =
  (* Combinational loop through named muxes must not hang the tracer. *)
  let m =
    Parser.parse_module
      {|
module M [other] :
  input s : UInt<1>
  input a : UInt<8>
  wire x : UInt<8>
  wire y : UInt<8>
  connect x = mux(s, a, y)
  connect y = mux(s, a, x)
|}
  in
  ignore (Mux_tree.points_of_module m);
  checkb "terminates" true true

(* --- Validity (Algorithm 1) --- *)

let test_prefix_candidates () =
  check
    Alcotest.(list string)
    "prefixes"
    [ "io_commit_uops"; "io_commit"; "io" ]
    (Validity.prefix_candidates "io_commit_uops_inst");
  check Alcotest.(list string) "no underscore" [] (Validity.prefix_candidates "abc")

let validity_module =
  Parser.parse_module
    {|
module M [rob] :
  input io_commit_valid : UInt<1>
  input io_commit_uops_inst : UInt<8>
  input plain : UInt<8>
  input src_valid : UInt<1>
  input src_data : UInt<8>
  node derived = add(src_data, UInt<8>(1))
  output o : UInt<8>
  connect o = derived
|}

let vtest = Alcotest.testable Validity.pp Validity.equal

let test_validity_direct () =
  check vtest "direct prefix match"
    (Validity.Direct "io_commit_valid")
    (Validity.determine validity_module (Expr.reference "io_commit_uops_inst"))

let test_validity_constant () =
  check vtest "literal is constant" Validity.Constant
    (Validity.determine validity_module (e_lit 7))

let test_validity_always () =
  check vtest "no valid anywhere" Validity.Always
    (Validity.determine validity_module (Expr.reference "plain"))

let test_validity_derived () =
  (* "derived" has no <prefix>_valid, but its source src_data has one. *)
  check vtest "derived from source"
    (Validity.Direct "src_valid")
    (Validity.determine validity_module (Expr.reference "derived"))

(* --- Constant filter --- *)

let test_filter_classification () =
  let m = Sonar_dut.Netlist_gen.example_module () in
  let classified = Const_filter.classify_module m in
  checki "classified count" 1 (List.length classified);
  checkb "monitored" true (List.hd classified).Const_filter.monitored

let test_filter_constant_point () =
  let m =
    Parser.parse_module
      {|
module M [other] :
  input s : UInt<1>
  node k = mux(s, UInt<8>(1), UInt<8>(2))
  output o : UInt<8>
  connect o = k
|}
  in
  let classified = Const_filter.classify_module m in
  checkb "constant point filtered" false (List.hd classified).Const_filter.monitored

let test_filter_single_valid () =
  let m =
    Parser.parse_module
      {|
module M [other] :
  input s : UInt<1>
  input rq_valid : UInt<1>
  input rq_data : UInt<8>
  input other : UInt<8>
  node k = mux(s, rq_data, other)
  output o : UInt<8>
  connect o = k
|}
  in
  let c = List.hd (Const_filter.classify_module m) in
  checkb "monitored" true c.Const_filter.monitored;
  checkb "single valid class" true c.single_valid

(* --- Instrumentation --- *)

let test_instrument_adds_monitors () =
  let m = Sonar_dut.Netlist_gen.example_module () in
  let circuit = Circuit.make "c" [ m ] in
  let r = Instrument.instrument circuit in
  checki "one point instrumented" 1 r.Instrument.points_instrumented;
  checkb "statements added" true (r.stmts_added > 0);
  let pm = List.hd r.monitors in
  checkb "valid outputs" true (List.length pm.Instrument.valid_outputs >= 2);
  checkb "interval output" true (pm.intvl_output <> None)

let test_instrument_runs_in_engine () =
  (* The instrumented example module must simulate, and the interval output
     must reach 0 when both requests fire in the same cycle. *)
  let m = Sonar_dut.Netlist_gen.example_module () in
  let r = Instrument.instrument (Circuit.make "c" [ m ]) in
  let m' = List.hd r.Instrument.circuit.Circuit.modules in
  let engine = Sonar_rtlsim.Engine.compile m' in
  let pm = List.hd r.monitors in
  let intvl = Option.get pm.Instrument.intvl_output in
  Sonar_rtlsim.Engine.poke_int engine "io_ldq_idx_valid" 1;
  Sonar_rtlsim.Engine.poke_int engine "io_stq_idx_valid" 1;
  Sonar_rtlsim.Engine.step engine;
  checki "simultaneous requests -> interval 0" 0
    (Sonar_rtlsim.Engine.peek_int engine intvl)

let test_instrument_interval_nonzero () =
  let m = Sonar_dut.Netlist_gen.example_module () in
  let r = Instrument.instrument (Circuit.make "c" [ m ]) in
  let m' = List.hd r.Instrument.circuit.Circuit.modules in
  let engine = Sonar_rtlsim.Engine.compile m' in
  let pm = List.hd r.monitors in
  let intvl = Option.get pm.Instrument.intvl_output in
  Sonar_rtlsim.Engine.poke_int engine "io_ldq_idx_valid" 1;
  Sonar_rtlsim.Engine.step engine;
  Sonar_rtlsim.Engine.poke_int engine "io_ldq_idx_valid" 0;
  Sonar_rtlsim.Engine.step engine;
  Sonar_rtlsim.Engine.step engine;
  Sonar_rtlsim.Engine.poke_int engine "io_stq_idx_valid" 1;
  Sonar_rtlsim.Engine.step engine;
  Sonar_rtlsim.Engine.poke_int engine "io_stq_idx_valid" 0;
  Sonar_rtlsim.Engine.settle engine;
  checki "three cycles apart" 3 (Sonar_rtlsim.Engine.peek_int engine intvl)

let test_specdoctor_quadratic () =
  (* Pair checks grow quadratically with module size. *)
  let gen scale = Sonar_dut.Netlist_gen.generate ~scale ~pad:false Sonar_uarch.Config.nutshell in
  let r1 = Specdoctor_instrument.instrument (gen 0.02) in
  let r2 = Specdoctor_instrument.instrument (gen 0.04) in
  checkb "superlinear pair checks" true
    (float_of_int r2.Specdoctor_instrument.pair_checks
    > 2.5 *. float_of_int r1.Specdoctor_instrument.pair_checks)

(* --- Analysis calibration (Figures 6 and 7) --- *)

let test_analysis_boom_calibration () =
  let c = Sonar_dut.Netlist_gen.generate ~pad:false Sonar_uarch.Config.boom in
  let s = Analysis.summarize c in
  checki "naive" 31484 s.Analysis.naive_mux_points;
  checki "identified" 8975 s.identified_points;
  checki "monitored" 6620 s.monitored_points

let test_analysis_nutshell_calibration () =
  let c = Sonar_dut.Netlist_gen.generate ~pad:false Sonar_uarch.Config.nutshell in
  let s = Analysis.summarize c in
  checki "naive" 23618 s.Analysis.naive_mux_points;
  checki "identified" 4631 s.identified_points;
  checki "monitored" 2976 s.monitored_points

let test_analysis_components_sum () =
  let c = Sonar_dut.Netlist_gen.generate ~scale:0.1 ~pad:false Sonar_uarch.Config.boom in
  let s = Analysis.summarize c in
  let sum_id = List.fold_left (fun a cs -> a + cs.Analysis.identified) 0 s.per_component in
  let sum_mon = List.fold_left (fun a cs -> a + cs.Analysis.monitored) 0 s.per_component in
  checki "components sum to identified" s.identified_points sum_id;
  checki "components sum to monitored" s.monitored_points sum_mon

(* --- QCheck properties --- *)

let gen_expr =
  let open QCheck2.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [
                map (fun i -> Expr.reference (Printf.sprintf "v%d" (abs i mod 8))) int;
                map (fun i -> Expr.lit ~width:8 (Int64.of_int (abs i mod 256))) int;
              ]
          else
            oneof
              [
                map (fun i -> Expr.reference (Printf.sprintf "v%d" (abs i mod 8))) int;
                map3
                  (fun a b c -> Expr.mux a b c)
                  (self (n / 2)) (self (n / 2)) (self (n / 2));
                map2 (fun a b -> Expr.prim Expr.Add [ a; b ]) (self (n / 2)) (self (n / 2));
                map (fun a -> Expr.prim Expr.Not [ a ]) (self (n - 1));
              ])
        n)

let prop_expr_print_parse =
  QCheck2.Test.make ~name:"expr print/parse roundtrip" ~count:200 gen_expr (fun e ->
      Expr.equal e (Parser.parse_expr (Printer.expr_to_string e)))

let prop_mux_count_vs_points =
  QCheck2.Test.make ~name:"points never exceed naive mux count" ~count:100 gen_expr
    (fun e ->
      let m =
        Fmodule.make "M"
          (List.map (fun v -> Stmt.Input { name = v; width = 8 })
             (List.filter (fun v -> v.[0] = 'v') (Expr.refs e))
          @ [ Stmt.Node { name = "n"; expr = e } ])
      in
      List.length (Mux_tree.points_of_module m) <= max 1 (Mux_tree.naive_mux_count m))

let prop_absorbed_sum =
  QCheck2.Test.make ~name:"absorbed muxes partition the naive count" ~count:100
    gen_expr (fun e ->
      let m =
        Fmodule.make "M"
          (List.map (fun v -> Stmt.Input { name = v; width = 8 })
             (List.filter (fun v -> v.[0] = 'v') (Expr.refs e))
          @ [ Stmt.Node { name = "n"; expr = e } ])
      in
      let points = Mux_tree.points_of_module m in
      let absorbed = List.fold_left (fun a p -> a + p.Mux_tree.absorbed_muxes) 0 points in
      absorbed = Mux_tree.naive_mux_count m)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sonar_ir"
    [
      ( "component",
        [
          Alcotest.test_case "roundtrip" `Quick test_component_roundtrip;
          Alcotest.test_case "unknown" `Quick test_component_unknown;
        ] );
      ( "expr",
        [
          Alcotest.test_case "refs" `Quick test_expr_refs;
          Alcotest.test_case "count muxes" `Quick test_expr_count_muxes;
          Alcotest.test_case "equality" `Quick test_expr_equal;
          Alcotest.test_case "primop arity" `Quick test_primop_arity;
        ] );
      ( "parser",
        [
          Alcotest.test_case "expr" `Quick test_parse_expr;
          Alcotest.test_case "circuit" `Quick test_parse_circuit;
          Alcotest.test_case "roundtrip" `Quick test_print_parse_roundtrip;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "netlist roundtrip" `Quick test_netlist_roundtrip;
        ] );
      ( "mux_tree",
        [
          Alcotest.test_case "figure-3 example" `Quick test_mux_tree_example;
          Alcotest.test_case "sel not absorbed" `Quick test_mux_in_sel_not_absorbed;
          Alcotest.test_case "embedded in prim" `Quick test_mux_embedded_in_prim;
          Alcotest.test_case "cycle safe" `Quick test_mux_tree_cycle_safe;
        ] );
      ( "validity",
        [
          Alcotest.test_case "prefix candidates" `Quick test_prefix_candidates;
          Alcotest.test_case "direct" `Quick test_validity_direct;
          Alcotest.test_case "constant" `Quick test_validity_constant;
          Alcotest.test_case "always" `Quick test_validity_always;
          Alcotest.test_case "derived" `Quick test_validity_derived;
        ] );
      ( "const_filter",
        [
          Alcotest.test_case "example monitored" `Quick test_filter_classification;
          Alcotest.test_case "constant filtered" `Quick test_filter_constant_point;
          Alcotest.test_case "single-valid class" `Quick test_filter_single_valid;
        ] );
      ( "instrument",
        [
          Alcotest.test_case "adds monitors" `Quick test_instrument_adds_monitors;
          Alcotest.test_case "simulates, interval 0" `Quick test_instrument_runs_in_engine;
          Alcotest.test_case "interval 3" `Quick test_instrument_interval_nonzero;
          Alcotest.test_case "specdoctor quadratic" `Quick test_specdoctor_quadratic;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "boom calibration" `Quick test_analysis_boom_calibration;
          Alcotest.test_case "nutshell calibration" `Quick test_analysis_nutshell_calibration;
          Alcotest.test_case "component sums" `Quick test_analysis_components_sum;
        ] );
      ( "properties",
        qcheck [ prop_expr_print_parse; prop_mux_count_vs_points; prop_absorbed_sum ] );
    ]
