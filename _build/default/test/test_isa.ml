(* Tests for the ISA substrate: registers, encoding, memory, assembler
   helpers, and the golden functional model. *)

open Sonar_isa

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let check64 = Alcotest.(check int64)
let checks = Alcotest.(check string)

let r = Reg.of_int

(* --- Reg --- *)

let test_reg_names () =
  checks "zero" "zero" (Reg.name (r 0));
  checks "sp" "sp" (Reg.name (r 2));
  checks "a0" "a0" (Reg.name (r 10));
  checks "t6" "t6" (Reg.name (r 31));
  checkb "of_name abi" true (Reg.of_name "a0" = Some (r 10));
  checkb "of_name numeric" true (Reg.of_name "x17" = Some (r 17));
  checkb "of_name bad" true (Reg.of_name "q9" = None);
  checkb "of_int out of range" true
    (match Reg.of_int 32 with exception Invalid_argument _ -> true | _ -> false)

(* --- Encoding --- *)

let enc_dec_samples =
  [
    Instr.Rtype (Instr.ADD, r 1, r 2, r 3);
    Instr.Rtype (Instr.SUB, r 31, r 0, r 15);
    Instr.Rtype (Instr.MUL, r 5, r 6, r 7);
    Instr.Rtype (Instr.DIVU, r 5, r 6, r 7);
    Instr.Rtype (Instr.REMW, r 9, r 10, r 11);
    Instr.Itype (Instr.ADDI, r 4, r 5, -2048);
    Instr.Itype (Instr.ADDI, r 4, r 5, 2047);
    Instr.Itype (Instr.SLLI, r 4, r 5, 63);
    Instr.Itype (Instr.SRAI, r 4, r 5, 17);
    Instr.Itype (Instr.SRAIW, r 4, r 5, 31);
    Instr.Load (Instr.LD, r 8, r 9, 16);
    Instr.Load (Instr.LBU, r 8, r 9, -1);
    Instr.Store (Instr.SD, r 8, r 9, -128);
    Instr.Branch (Instr.BNE, r 1, r 2, -4096);
    Instr.Branch (Instr.BGEU, r 1, r 2, 4094);
    Instr.Jal (r 1, 2048);
    Instr.Jalr (r 1, r 2, -4);
    Instr.Lui (r 3, 0xFFFFF);
    Instr.Auipc (r 3, 1);
    Instr.Csr (Instr.CSRRS, r 4, r 0, 0xC00);
    Instr.Lr_d (r 5, r 6);
    Instr.Sc_d (r 5, r 6, r 7);
    Instr.Fence;
    Instr.Ecall;
    Instr.Ebreak;
    Instr.Mret;
  ]

let test_encode_decode_samples () =
  List.iter
    (fun i ->
      match Encoding.decode (Encoding.encode i) with
      | Ok i' ->
          checkb (Printf.sprintf "roundtrip %s" (Instr.to_string i)) true
            (Instr.equal i i')
      | Error e -> Alcotest.failf "decode failed for %s: %s" (Instr.to_string i) e)
    enc_dec_samples

let test_encode_range_checks () =
  let fails i =
    match Encoding.encode i with
    | exception Encoding.Encode_error _ -> true
    | _ -> false
  in
  checkb "imm too big" true (fails (Instr.Itype (Instr.ADDI, r 1, r 1, 5000)));
  checkb "odd branch" true (fails (Instr.Branch (Instr.BEQ, r 1, r 1, 3)));
  checkb "shamt too big" true (fails (Instr.Itype (Instr.SLLIW, r 1, r 1, 32)))

let test_decode_junk () =
  checkb "garbage word" true
    (match Encoding.decode 0xFFFFFFFFl with Error _ -> true | Ok _ -> false)

let gen_instr =
  let open QCheck2.Gen in
  let reg = map r (int_bound 31) in
  let imm12 = int_range (-2048) 2047 in
  oneof
    [
      (let* op =
         oneofl
           [
             Instr.ADD; Instr.SUB; Instr.SLL; Instr.SRL; Instr.SRA; Instr.SLT;
             Instr.SLTU; Instr.AND; Instr.OR; Instr.XOR; Instr.MUL; Instr.MULH;
             Instr.MULHU; Instr.MULHSU; Instr.DIV; Instr.DIVU; Instr.REM;
             Instr.REMU; Instr.ADDW; Instr.SUBW; Instr.MULW; Instr.DIVW;
             Instr.REMUW;
           ]
       in
       let* rd = reg and* rs1 = reg and* rs2 = reg in
       return (Instr.Rtype (op, rd, rs1, rs2)));
      (let* op =
         oneofl [ Instr.ADDI; Instr.SLTI; Instr.ANDI; Instr.ORI; Instr.XORI ]
       in
       let* rd = reg and* rs1 = reg and* imm = imm12 in
       return (Instr.Itype (op, rd, rs1, imm)));
      (let* op = oneofl [ Instr.LB; Instr.LH; Instr.LW; Instr.LD; Instr.LBU ] in
       let* rd = reg and* base = reg and* off = imm12 in
       return (Instr.Load (op, rd, base, off)));
      (let* op = oneofl [ Instr.SB; Instr.SH; Instr.SW; Instr.SD ] in
       let* data = reg and* base = reg and* off = imm12 in
       return (Instr.Store (op, data, base, off)));
      (let* op = oneofl [ Instr.BEQ; Instr.BNE; Instr.BLT; Instr.BGEU ] in
       let* rs1 = reg and* rs2 = reg and* off = map (fun v -> v * 2) (int_range (-2048) 2047) in
       return (Instr.Branch (op, rs1, rs2, off)));
    ]

let prop_encode_decode =
  QCheck2.Test.make ~name:"encode/decode roundtrip" ~count:500 gen_instr (fun i ->
      match Encoding.decode (Encoding.encode i) with
      | Ok i' -> Instr.equal i i'
      | Error _ -> false)

(* --- Memory --- *)

let test_memory_rw () =
  let m = Memory.create () in
  Memory.store m ~addr:100L ~size:8 0x1122334455667788L;
  check64 "load64" 0x1122334455667788L (Memory.load m ~addr:100L ~size:8);
  check64 "load byte" 0x88L (Memory.load m ~addr:100L ~size:1);
  check64 "load byte 2" 0x77L (Memory.load m ~addr:101L ~size:1);
  Memory.store m ~addr:101L ~size:1 0xFFL;
  check64 "byte update" 0x11223344556_6FF88L (Memory.load m ~addr:100L ~size:8);
  check64 "unwritten is zero" 0L (Memory.load m ~addr:9999L ~size:8)

let test_memory_signed () =
  let m = Memory.create () in
  Memory.store m ~addr:0L ~size:1 0x80L;
  check64 "sign extend byte" (-128L) (Memory.load_signed m ~addr:0L ~size:1);
  check64 "zero extend byte" 128L (Memory.load m ~addr:0L ~size:1)

let test_memory_unaligned () =
  let m = Memory.create () in
  Memory.store m ~addr:6L ~size:4 0xAABBCCDDL;
  check64 "crosses word boundary" 0xAABBCCDDL (Memory.load m ~addr:6L ~size:4)

let prop_memory_roundtrip =
  QCheck2.Test.make ~name:"memory store/load roundtrip" ~count:300
    QCheck2.Gen.(triple (map Int64.of_int (int_bound 100000)) (oneofl [ 1; 2; 4; 8 ]) (map Int64.of_int int))
    (fun (addr, size, v) ->
      let m = Memory.create () in
      Memory.store m ~addr ~size v;
      let mask =
        if size = 8 then -1L else Int64.sub (Int64.shift_left 1L (8 * size)) 1L
      in
      Int64.equal (Memory.load m ~addr ~size) (Int64.logand v mask))

(* --- Asm --- *)

let run_instrs instrs =
  let p = Program.make (instrs @ [ Asm.halt ]) in
  Golden.run p

let prop_li_materializes =
  QCheck2.Test.make ~name:"li materialises any constant" ~count:300
    QCheck2.Gen.(map Int64.of_int int)
    (fun v ->
      let o = run_instrs (Asm.li (r 5) v) in
      Int64.equal o.Golden.regs.(5) v)

let test_li_edges () =
  List.iter
    (fun v ->
      let o = run_instrs (Asm.li (r 5) v) in
      check64 (Printf.sprintf "li %Ld" v) v o.Golden.regs.(5))
    [ 0L; 1L; -1L; 2047L; 2048L; -2048L; 0x7FFFFFFFL; 0x80000000L;
      Int64.min_int; Int64.max_int; 0x20000000L; 0xDEADBEEF12345678L ]

(* --- Golden model --- *)

let test_golden_arith () =
  let o =
    run_instrs
      (Asm.li (r 5) 7L @ Asm.li (r 6) (-3L)
      @ [
          Instr.Rtype (Instr.MUL, r 7, r 5, r 6);
          Instr.Rtype (Instr.DIV, r 28, r 5, r 6);
          Instr.Rtype (Instr.REM, r 29, r 5, r 6);
        ])
  in
  check64 "mul" (-21L) o.Golden.regs.(7);
  check64 "div" (-2L) o.Golden.regs.(28);
  check64 "rem" 1L o.Golden.regs.(29)

let test_golden_div_edge_cases () =
  let o =
    run_instrs
      (Asm.li (r 5) 5L @ Asm.li (r 6) 0L @ Asm.li (r 7) Int64.min_int
      @ Asm.li (r 28) (-1L)
      @ [
          Instr.Rtype (Instr.DIV, r 29, r 5, r 6);  (* div by zero *)
          Instr.Rtype (Instr.REM, r 30, r 5, r 6);  (* rem by zero *)
          Instr.Rtype (Instr.DIV, r 31, r 7, r 28);  (* overflow *)
        ])
  in
  check64 "div by zero" (-1L) o.Golden.regs.(29);
  check64 "rem by zero" 5L o.Golden.regs.(30);
  check64 "div overflow" Int64.min_int o.Golden.regs.(31)

let test_golden_mulh () =
  let o =
    run_instrs
      (Asm.li (r 5) Int64.max_int @ Asm.li (r 6) Int64.max_int
      @ [
          Instr.Rtype (Instr.MULH, r 7, r 5, r 6);
          Instr.Rtype (Instr.MULHU, r 28, r 5, r 6);
        ])
  in
  (* maxint^2 = 0x3FFFFFFFFFFFFFFF0000000000000001 *)
  check64 "mulh" 0x3FFFFFFFFFFFFFFFL o.Golden.regs.(7);
  check64 "mulhu" 0x3FFFFFFFFFFFFFFFL o.Golden.regs.(28)

let test_golden_branches () =
  let o =
    run_instrs
      (Asm.li (r 5) 1L
      @ [
          Instr.Branch (Instr.BEQ, r 5, r 0, 8);  (* not taken *)
          Instr.Itype (Instr.ADDI, r 6, r 6, 1);  (* executed *)
          Instr.Branch (Instr.BNE, r 5, r 0, 8);  (* taken *)
          Instr.Itype (Instr.ADDI, r 6, r 6, 100);  (* skipped *)
          Instr.Itype (Instr.ADDI, r 6, r 6, 10);
        ])
  in
  check64 "branch semantics" 11L o.Golden.regs.(6)

let test_golden_jal_jalr () =
  let o =
    run_instrs
      [
        Instr.Jal (r 1, 8);  (* skip next *)
        Instr.Itype (Instr.ADDI, r 6, r 6, 100);
        Instr.Itype (Instr.ADDI, r 6, r 6, 1);
      ]
  in
  check64 "jal skipped" 1L o.Golden.regs.(6);
  check64 "link register" (Int64.add Program.default_base 4L) o.Golden.regs.(1)

let test_golden_memory_ops () =
  let o =
    run_instrs
      (Asm.li (r 5) 0x10000L @ Asm.li (r 6) 0x55AAL
      @ [
          Instr.Store (Instr.SD, r 6, r 5, 0);
          Instr.Load (Instr.LD, r 7, r 5, 0);
          Instr.Load (Instr.LH, r 28, r 5, 0);
          Instr.Load (Instr.LBU, r 29, r 5, 1);
        ])
  in
  check64 "ld" 0x55AAL o.Golden.regs.(7);
  check64 "lh sign" 0x55AAL o.Golden.regs.(28);
  check64 "lbu" 0x55L o.Golden.regs.(29)

let test_golden_lr_sc () =
  let o =
    run_instrs
      (Asm.li (r 5) 0x10000L @ Asm.li (r 6) 99L
      @ [
          Instr.Lr_d (r 7, r 5);
          Instr.Sc_d (r 28, r 6, r 5);  (* succeeds: reservation held *)
          Instr.Load (Instr.LD, r 29, r 5, 0);
          Instr.Sc_d (r 30, r 6, r 5);  (* fails: reservation consumed *)
        ])
  in
  check64 "sc success" 0L o.Golden.regs.(28);
  check64 "sc wrote" 99L o.Golden.regs.(29);
  check64 "second sc fails" 1L o.Golden.regs.(30)

let test_golden_fault_and_transient () =
  let secret = 0x2000_0000L in
  let p =
    Program.make
      ~data:[ (secret, 1L) ]
      ~start_priv:Program.User
      ~protected_range:(Some (secret, Int64.add secret 4096L))
      (Asm.li (r 10) secret
      @ [
          Instr.Load (Instr.LD, r 5, r 10, 0);  (* faults *)
          Instr.Itype (Instr.ADDI, r 6, r 5, 1);  (* arch: t0 stays 0 *)
          Asm.halt;
        ])
  in
  let o = Golden.run p in
  let fault_eff =
    Array.to_list o.Golden.trace
    |> List.find (fun (e : Golden.effect) -> e.fault <> None)
  in
  checkb "load access fault" true (fault_eff.Golden.fault = Some Golden.Load_access_fault);
  check64 "architecturally suppressed" 1L o.Golden.regs.(6);
  (* The transient continuation sees the forwarded secret. *)
  checki "one continuation" 1 (List.length o.transients);
  let _, cont = List.hd o.transients in
  let addi = cont.(0) in
  checkb "transient forwards secret" true
    (match addi.Golden.wb with Some (_, v) -> Int64.equal v 2L | None -> false)

let test_golden_priv_transitions () =
  let secret = 0x2000_0000L in
  let p =
    Program.make
      ~data:[ (secret, 42L) ]
      ~start_priv:Program.Machine
      ~protected_range:(Some (secret, Int64.add secret 8L))
      (Asm.li (r 10) secret
      @ [
          Instr.Load (Instr.LD, r 5, r 10, 0);  (* machine: allowed *)
          Instr.Mret;  (* drop to user *)
          Instr.Load (Instr.LD, r 6, r 10, 0);  (* user: faults *)
          Asm.halt;
        ])
  in
  let o = Golden.run p in
  check64 "machine read ok" 42L o.Golden.regs.(5);
  check64 "user read suppressed" 0L o.Golden.regs.(6)

let test_golden_halts () =
  let o = run_instrs [] in
  checkb "ebreak halt" true (o.Golden.exit_reason = Golden.Ebreak_halt);
  let p = Program.make [ Asm.nop; Asm.nop ] in
  checkb "fell through" true ((Golden.run p).exit_reason = Golden.Fell_through);
  let loop = Program.make [ Instr.Jal (r 0, 0) ] in
  checkb "instruction budget" true
    ((Golden.run ~max_instrs:50 loop).exit_reason = Golden.Max_instrs)

let test_golden_w_ops () =
  let o =
    run_instrs
      (Asm.li (r 5) 0xFFFFFFFFL
      @ [
          Instr.Itype (Instr.ADDIW, r 6, r 5, 1);  (* wraps to 0 *)
          Instr.Rtype (Instr.ADDW, r 7, r 5, r 5);
          Instr.Itype (Instr.SRAIW, r 28, r 5, 4);  (* sign-extended -1 *)
        ])
  in
  check64 "addiw wrap" 0L o.Golden.regs.(6);
  check64 "addw" (-2L) o.Golden.regs.(7);
  check64 "sraiw" (-1L) o.Golden.regs.(28)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sonar_isa"
    [
      ("reg", [ Alcotest.test_case "names" `Quick test_reg_names ]);
      ( "encoding",
        [
          Alcotest.test_case "sample roundtrips" `Quick test_encode_decode_samples;
          Alcotest.test_case "range checks" `Quick test_encode_range_checks;
          Alcotest.test_case "junk decode" `Quick test_decode_junk;
        ]
        @ qcheck [ prop_encode_decode ] );
      ( "memory",
        [
          Alcotest.test_case "read/write" `Quick test_memory_rw;
          Alcotest.test_case "signed loads" `Quick test_memory_signed;
          Alcotest.test_case "unaligned" `Quick test_memory_unaligned;
        ]
        @ qcheck [ prop_memory_roundtrip ] );
      ( "asm",
        [ Alcotest.test_case "li edge cases" `Quick test_li_edges ]
        @ qcheck [ prop_li_materializes ] );
      ( "golden",
        [
          Alcotest.test_case "arithmetic" `Quick test_golden_arith;
          Alcotest.test_case "div edge cases" `Quick test_golden_div_edge_cases;
          Alcotest.test_case "mulh" `Quick test_golden_mulh;
          Alcotest.test_case "branches" `Quick test_golden_branches;
          Alcotest.test_case "jal/jalr" `Quick test_golden_jal_jalr;
          Alcotest.test_case "memory ops" `Quick test_golden_memory_ops;
          Alcotest.test_case "lr/sc" `Quick test_golden_lr_sc;
          Alcotest.test_case "fault + transient" `Quick test_golden_fault_and_transient;
          Alcotest.test_case "privilege" `Quick test_golden_priv_transitions;
          Alcotest.test_case "halting" `Quick test_golden_halts;
          Alcotest.test_case "32-bit ops" `Quick test_golden_w_ops;
        ] );
    ]
