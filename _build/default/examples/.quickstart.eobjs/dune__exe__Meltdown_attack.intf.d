examples/meltdown_attack.mli:
