examples/channel_hunt.ml: Array Format List Sonar Sys
