examples/quickstart.ml: Format Sonar Sonar_ir Sonar_uarch
