examples/channel_hunt.mli:
