examples/netlist_analysis.mli:
