examples/meltdown_attack.ml: Format Sonar Sonar_uarch
