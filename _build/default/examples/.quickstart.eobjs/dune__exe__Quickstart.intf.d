examples/quickstart.mli:
