examples/netlist_analysis.ml: Format List Sonar_dut Sonar_ir Sonar_rtlsim Sonar_uarch
