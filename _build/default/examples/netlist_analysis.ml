(* Netlist analysis end to end: generate the BOOM-calibrated netlist,
   instrument it with reqsIntvl monitors, simulate an instrumented module
   in the RTL engine, and watch the runtime monitor observe a contention.

   Run with: dune exec examples/netlist_analysis.exe *)

let () =
  (* Full-scale identification (Figure 6/7 numbers). *)
  let circuit = Sonar_dut.Netlist_gen.generate ~pad:false Sonar_uarch.Config.boom in
  Format.printf "%a@.@." Sonar_ir.Analysis.pp_summary
    (Sonar_ir.Analysis.summarize circuit);

  (* Instrument the Figure 3 example module and drive it. *)
  let m = Sonar_dut.Netlist_gen.example_module () in
  let result = Sonar_ir.Instrument.instrument (Sonar_ir.Circuit.make "demo" [ m ]) in
  Format.printf "instrumented %d point(s), %d statements added@."
    result.Sonar_ir.Instrument.points_instrumented result.stmts_added;
  let m' = List.hd result.circuit.Sonar_ir.Circuit.modules in
  let engine = Sonar_rtlsim.Engine.compile m' in
  let monitor = Sonar_rtlsim.Monitor.create engine result.monitors in
  (* Two requests four cycles apart, then simultaneous. *)
  Sonar_rtlsim.Engine.poke_int engine "io_ldq_idx_valid" 1;
  Sonar_rtlsim.Engine.settle engine;
  Sonar_rtlsim.Monitor.sample monitor;
  Sonar_rtlsim.Engine.poke_int engine "io_ldq_idx_valid" 0;
  for _ = 1 to 3 do
    Sonar_rtlsim.Engine.step engine;
    Sonar_rtlsim.Monitor.sample monitor
  done;
  Sonar_rtlsim.Engine.poke_int engine "io_ldq_idx_valid" 1;
  Sonar_rtlsim.Engine.poke_int engine "io_stq_idx_valid" 1;
  Sonar_rtlsim.Engine.settle engine;
  Sonar_rtlsim.Monitor.sample monitor;
  List.iter
    (fun (st : Sonar_rtlsim.Monitor.point_state) ->
      Format.printf
        "point %s: min pairwise reqsIntvl %s, volatile contention %s@."
        st.point_id
        (match st.min_pair_interval with
        | Some v -> string_of_int v ^ " cycles"
        | None -> "-")
        (if st.triggered then "TRIGGERED" else "not triggered"))
    (Sonar_rtlsim.Monitor.states monitor)
