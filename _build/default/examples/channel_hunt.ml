(* Channel hunt: measure any of the paper's fourteen side channels
   (Table 3) through its hand-built scenario, and show how the
   dual-differential comparison justifies it.

   Run with: dune exec examples/channel_hunt.exe [-- S9 ...]
   With no arguments, measures the divider channel S9 and the MSHR
   false-sharing channel S5. *)

let hunt id =
  match Sonar.Channels.find id with
  | None -> Format.printf "unknown channel %s (S1..S14)@." id
  | Some c ->
      Format.printf "== %s: %s on %s ==@.%s@.@." c.Sonar.Channels.id c.resource
        c.dut c.description;
      let m = Sonar.Channels.measure c in
      Format.printf "%a@.@." Sonar.Channels.pp_measurement m;
      Format.printf "dual-differential report:@.%a@." Sonar.Detector.pp_report
        m.report

let () =
  let ids =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as ids) -> ids
    | _ -> [ "S9"; "S5" ]
  in
  List.iter hunt ids
