(* Meltdown-style exploitation of a contention side channel (§7.3, §8.5).

   A 32-bit key sits in protected (machine-only) memory; the attacker runs
   in user mode. Each faulting access transiently forwards one key bit into
   a gadget whose resource usage depends on it; the resulting contention
   shifts observable commit timing, and a calibrated threshold recovers the
   bit. On the BOOM model (lazy exception handling) the key is recovered;
   on NutShell (early detection) the transient window never opens and the
   inference collapses to coin flips.

   Run with: dune exec examples/meltdown_attack.exe *)

let attack cfg channel_id gadget =
  Format.printf "== %s PoC on %s ==@." channel_id cfg.Sonar_uarch.Config.name;
  let r =
    Sonar.Attack.run_poc ~seed:1234L ~trials:6 ~key_bits:32 cfg ~channel_id gadget
  in
  Format.printf "%a@.@." Sonar.Attack.pp_result r

let () =
  attack Sonar_uarch.Config.boom "S11" Sonar.Attack.Cache_probe;
  attack Sonar_uarch.Config.boom "S1" Sonar.Attack.Channel_occupancy;
  attack Sonar_uarch.Config.boom "S5" Sonar.Attack.Mshr_block;
  attack Sonar_uarch.Config.nutshell "S13" Sonar.Attack.Port_pressure;
  Format.printf
    "BOOM's lazy exception handling leaves a transient window in which the \
     gadget runs with the forwarded secret; NutShell squashes at execute, \
     so its PoCs stay at chance level (paper §8.5: >99%% vs <2%%).@."
