(** RV64 instruction abstract syntax.

    Covers the subset exercised by Sonar's testcases on both DUTs: RV64I
    integer ops, the M extension (multiply/divide), loads/stores, branches
    and jumps, LR/SC (for the store-conditional channel S10), CSR reads (for
    cycle-counter timing measurements), and ECALL/MRET for privilege
    transitions in the Meltdown template. *)

type rop =
  | ADD | SUB | SLL | SRL | SRA | SLT | SLTU | AND | OR | XOR
  | ADDW | SUBW | SLLW | SRLW | SRAW
  | MUL | MULH | MULHSU | MULHU | DIV | DIVU | REM | REMU
  | MULW | DIVW | DIVUW | REMW | REMUW

type iop =
  | ADDI | SLTI | SLTIU | ANDI | ORI | XORI | SLLI | SRLI | SRAI
  | ADDIW | SLLIW | SRLIW | SRAIW

type load_op = LB | LH | LW | LD | LBU | LHU | LWU
type store_op = SB | SH | SW | SD
type branch_op = BEQ | BNE | BLT | BGE | BLTU | BGEU

type csr_op = CSRRW | CSRRS | CSRRC

type t =
  | Rtype of rop * Reg.t * Reg.t * Reg.t  (** op rd rs1 rs2 *)
  | Itype of iop * Reg.t * Reg.t * int  (** op rd rs1 imm *)
  | Load of load_op * Reg.t * Reg.t * int  (** rd, base, offset *)
  | Store of store_op * Reg.t * Reg.t * int  (** rs2 (data), base, offset *)
  | Branch of branch_op * Reg.t * Reg.t * int  (** rs1 rs2 byte-offset *)
  | Jal of Reg.t * int  (** rd, byte-offset *)
  | Jalr of Reg.t * Reg.t * int  (** rd, base, offset *)
  | Lui of Reg.t * int  (** rd, 20-bit immediate *)
  | Auipc of Reg.t * int
  | Csr of csr_op * Reg.t * Reg.t * int  (** op rd rs1 csr-address *)
  | Lr_d of Reg.t * Reg.t  (** rd, address base *)
  | Sc_d of Reg.t * Reg.t * Reg.t  (** rd, data, address base *)
  | Fence
  | Ecall
  | Ebreak
  | Mret

val uses_mul_div : t -> bool
(** Executes on a multiply/divide unit. *)

val is_load : t -> bool
val is_store : t -> bool
val is_mem : t -> bool
val is_branch : t -> bool
(** Conditional branches and jumps. *)

val dest : t -> Reg.t option
(** Destination register, if it writes one (x0 destinations return [None]). *)

val sources : t -> Reg.t list
(** Source registers actually read (x0 included). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
