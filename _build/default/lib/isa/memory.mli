(** Sparse little-endian byte-addressable memory.

    Backed by a hash table of 8-byte-aligned words, so arbitrarily scattered
    addresses (testcase data regions, kernel secrets, attacker buffers) cost
    only what they touch. Unwritten memory reads as zero. *)

type t

val create : unit -> t
val copy : t -> t

val load : t -> addr:int64 -> size:int -> int64
(** [size] ∈ {1,2,4,8} bytes; zero-extends. @raise Invalid_argument *)

val load_signed : t -> addr:int64 -> size:int -> int64
val store : t -> addr:int64 -> size:int -> int64 -> unit

val footprint : t -> int
(** Number of distinct 8-byte words touched. *)
