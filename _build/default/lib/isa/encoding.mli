(** Binary encoding and decoding of the RV64 subset.

    Standard 32-bit RISC-V formats (R/I/S/B/U/J plus SYSTEM and AMO).
    [decode (encode i)] round-trips for every well-formed instruction (the
    immediate must fit its field: 12-bit signed for I/S, 13-bit even for
    branches, 21-bit even for JAL, 20-bit for LUI/AUIPC, 6-bit shamt). *)

exception Encode_error of string

val encode : Instr.t -> int32
(** @raise Encode_error when an immediate does not fit its field. *)

val decode : int32 -> (Instr.t, string) result

val encode_program : Instr.t list -> int32 list
val decode_program : int32 list -> (Instr.t list, string) result
