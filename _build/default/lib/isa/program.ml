type priv = User | Machine

type t = {
  base : int64;
  instrs : Instr.t array;
  data : (int64 * int64) list;
  start_priv : priv;
  protected_range : (int64 * int64) option;
}

let default_base = 0x8000_0000L

let make ?(base = default_base) ?(data = []) ?(start_priv = User)
    ?(protected_range = None) instrs =
  { base; instrs = Array.of_list instrs; data; start_priv; protected_range }

let length t = Array.length t.instrs

let pc_to_index t pc =
  let off = Int64.sub pc t.base in
  if Int64.rem off 4L <> 0L then None
  else
    let i = Int64.to_int (Int64.div off 4L) in
    if i >= 0 && i < Array.length t.instrs then Some i else None

let index_to_pc t i = Int64.add t.base (Int64.of_int (4 * i))

let instr_at t pc =
  Option.map (fun i -> t.instrs.(i)) (pc_to_index t pc)

let pp fmt t =
  Array.iteri
    (fun i instr ->
      Format.fprintf fmt "%08Lx:  %a@." (index_to_pc t i) Instr.pp instr)
    t.instrs
