(** RISC-V integer register names (x0..x31).

    [x0] is hard-wired to zero; writes to it are discarded by the golden
    model and the timing models alike. *)

type t = private int

val of_int : int -> t
(** @raise Invalid_argument outside 0..31. *)

val to_int : t -> int
val x0 : t
val zero : t
(** Alias for [x0]. *)

val name : t -> string
(** ABI name, e.g. [name (of_int 2) = "sp"]. *)

val of_name : string -> t option
(** Accepts both ABI names ("a0") and numeric names ("x10"). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val all : t list
(** x0..x31 in order. *)

val temporaries : t list
(** Caller-saved registers safe for generated code (t0-t6, a0-a7, s2-s11 are
    excluded deliberately: a0/a1 carry testcase parameters). *)
