type t = int

let of_int i =
  if i < 0 || i > 31 then invalid_arg (Printf.sprintf "Reg.of_int %d" i);
  i

let to_int t = t
let x0 = 0
let zero = 0

let abi_names =
  [|
    "zero"; "ra"; "sp"; "gp"; "tp"; "t0"; "t1"; "t2"; "s0"; "s1"; "a0"; "a1";
    "a2"; "a3"; "a4"; "a5"; "a6"; "a7"; "s2"; "s3"; "s4"; "s5"; "s6"; "s7";
    "s8"; "s9"; "s10"; "s11"; "t3"; "t4"; "t5"; "t6";
  |]

let name t = abi_names.(t)

let of_name s =
  let numeric () =
    if String.length s > 1 && s.[0] = 'x' then
      match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
      | Some i when i >= 0 && i <= 31 -> Some i
      | Some _ | None -> None
    else None
  in
  let rec find i =
    if i > 31 then None
    else if String.equal abi_names.(i) s then Some i
    else find (i + 1)
  in
  match find 0 with Some r -> Some r | None -> numeric ()

let equal = Int.equal
let compare = Int.compare
let pp fmt t = Format.pp_print_string fmt (name t)
let all = List.init 32 (fun i -> i)

let temporaries =
  (* t0-t2, t3-t6: free scratch for generated instruction regions. *)
  [ 5; 6; 7; 28; 29; 30; 31 ]
