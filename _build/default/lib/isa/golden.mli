(** Golden (reference) functional model of the RV64 subset.

    Executes a {!Program.t} architecturally and returns the dynamic commit
    trace. Besides serving as the differential reference for the timing
    models, it produces the {e transient continuations} the
    micro-architectural models need for Meltdown-style analysis: for every
    faulting instruction, the sequential continuation that a processor with
    lazy exception handling would transiently execute, with the faulting
    load's value forwarded (paper §7.3).

    Fault semantics are simplified to a suppressing handler: a fault is
    recorded in the trace and architectural execution resumes at the next
    instruction (the recovery behaviour the Meltdown attack template
    relies on). [ecall] raises privilege to Machine; [mret] drops it. *)

type fault =
  | Load_access_fault
  | Store_access_fault
  | Illegal_instruction
  | Breakpoint
  | Env_call

type mem_access = {
  addr : int64;
  size : int;
  is_store : bool;
  value : int64;  (** value loaded or stored *)
  sc_success : bool option;  (** for sc.d only *)
}

type effect = {
  seq : int;  (** dynamic sequence number within its trace *)
  index : int;  (** static instruction index in the program *)
  pc : int64;
  instr : Instr.t;
  wb : (Reg.t * int64) option;  (** destination write, if any *)
  mem : mem_access option;
  taken : bool option;  (** [Some] for conditional branches *)
  fault : fault option;
  transient : bool;  (** belongs to a post-fault transient continuation *)
}

type exit_reason = Fell_through | Ebreak_halt | Max_instrs

type outcome = {
  trace : effect array;  (** architectural dynamic trace, in commit order *)
  transients : (int * effect array) list;
      (** [(i, cont)]: [cont] is the transient continuation following the
          faulting instruction at trace position [i] *)
  regs : int64 array;  (** final architectural register file *)
  memory : Memory.t;  (** final memory *)
  exit_reason : exit_reason;
}

val default_max_instrs : int
val default_transient_window : int

val run :
  ?max_instrs:int -> ?transient_window:int -> Program.t -> outcome
(** Execute to completion: falling off the end of the code, [ebreak], or the
    instruction budget. *)

val pp_effect : Format.formatter -> effect -> unit
val pp_fault : Format.formatter -> fault -> unit
