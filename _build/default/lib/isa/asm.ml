let nop = Instr.Itype (Instr.ADDI, Reg.x0, Reg.x0, 0)
let mv rd rs = Instr.Itype (Instr.ADDI, rd, rs, 0)
let halt = Instr.Ebreak

let fits_simm12 v = Int64.compare v (-2048L) >= 0 && Int64.compare v 2047L <= 0

let fits_simm32 v =
  Int64.compare v (-2147483648L) >= 0 && Int64.compare v 2147483647L <= 0

(* lui loads a sign-extended (imm20 << 12); pick imm20 so that
   (imm20 << 12) + low12 = v for 32-bit v. *)
let li32 rd v =
  if fits_simm12 v then [ Instr.Itype (Instr.ADDI, rd, Reg.x0, Int64.to_int v) ]
  else
    let low = Int64.to_int (Int64.logand v 0xFFFL) in
    let low = if low >= 2048 then low - 4096 else low in
    let upper =
      Int64.to_int
        (Int64.logand
           (Int64.shift_right (Int64.sub v (Int64.of_int low)) 12)
           0xFFFFFL)
    in
    let lui = Instr.Lui (rd, upper) in
    if low = 0 then [ lui ] else [ lui; Instr.Itype (Instr.ADDIW, rd, rd, low) ]

let rec li rd v =
  if fits_simm32 v then li32 rd v
  else begin
    (* Split into (high << shift) + low12 and recurse on high. *)
    let low = Int64.to_int (Int64.logand v 0xFFFL) in
    let low = if low >= 2048 then low - 4096 else low in
    let rest = Int64.sub v (Int64.of_int low) in
    (* rest has 12 low zero bits; shift right until odd or small enough. *)
    let rec strip shift rest =
      if shift < 12 && Int64.logand rest 1L = 0L && not (fits_simm32 rest) then
        strip (shift + 1) (Int64.shift_right rest 1)
      else (shift, rest)
    in
    let extra, high = strip 0 (Int64.shift_right rest 12) in
    li rd high
    @ [ Instr.Itype (Instr.SLLI, rd, rd, 12 + extra) ]
    @ (if low <> 0 then [ Instr.Itype (Instr.ADDI, rd, rd, low) ] else [])
  end

let program_to_string instrs =
  String.concat "\n"
    (List.mapi (fun i instr -> Printf.sprintf "%4d:  %s" i (Instr.to_string instr)) instrs)
