exception Encode_error of string

let ( <<< ) v n = Int32.shift_left v n
let ( ||| ) = Int32.logor
let ( &&& ) = Int32.logand

let check_range name v lo hi =
  if v < lo || v > hi then
    raise (Encode_error (Printf.sprintf "%s immediate %d out of [%d, %d]" name v lo hi))

let check_even name v = if v land 1 <> 0 then raise (Encode_error (name ^ " offset must be even"))

let reg r = Int32.of_int (Reg.to_int r)
let i32 = Int32.of_int

let r_format ~funct7 ~rs2 ~rs1 ~funct3 ~rd ~opcode =
  (funct7 <<< 25) ||| (rs2 <<< 20) ||| (rs1 <<< 15) ||| (funct3 <<< 12)
  ||| (rd <<< 7) ||| opcode

let i_format ~imm ~rs1 ~funct3 ~rd ~opcode =
  ((i32 imm &&& 0xFFFl) <<< 20)
  ||| (rs1 <<< 15) ||| (funct3 <<< 12) ||| (rd <<< 7) ||| opcode

let s_format ~imm ~rs2 ~rs1 ~funct3 ~opcode =
  let imm = i32 imm in
  (((Int32.shift_right_logical imm 5) &&& 0x7Fl) <<< 25)
  ||| (rs2 <<< 20) ||| (rs1 <<< 15) ||| (funct3 <<< 12)
  ||| ((imm &&& 0x1Fl) <<< 7)
  ||| opcode

let b_format ~imm ~rs2 ~rs1 ~funct3 ~opcode =
  let imm = i32 imm in
  let bit n = (Int32.shift_right_logical imm n) &&& 1l in
  let bits hi lo =
    (Int32.shift_right_logical imm lo) &&& (Int32.sub (1l <<< (hi - lo + 1)) 1l)
  in
  (bit 12 <<< 31) ||| (bits 10 5 <<< 25) ||| (rs2 <<< 20) ||| (rs1 <<< 15)
  ||| (funct3 <<< 12) ||| (bits 4 1 <<< 8) ||| (bit 11 <<< 7) ||| opcode

let u_format ~imm ~rd ~opcode = ((i32 imm &&& 0xFFFFFl) <<< 12) ||| (rd <<< 7) ||| opcode

let j_format ~imm ~rd ~opcode =
  let imm = i32 imm in
  let bit n = (Int32.shift_right_logical imm n) &&& 1l in
  let bits hi lo =
    (Int32.shift_right_logical imm lo) &&& (Int32.sub (1l <<< (hi - lo + 1)) 1l)
  in
  (bit 20 <<< 31) ||| (bits 10 1 <<< 21) ||| (bit 11 <<< 20)
  ||| (bits 19 12 <<< 12) ||| (rd <<< 7) ||| opcode

let op_opcode = 0b0110011l
let op32_opcode = 0b0111011l
let opimm_opcode = 0b0010011l
let opimm32_opcode = 0b0011011l
let load_opcode = 0b0000011l
let store_opcode = 0b0100011l
let branch_opcode = 0b1100011l
let jal_opcode = 0b1101111l
let jalr_opcode = 0b1100111l
let lui_opcode = 0b0110111l
let auipc_opcode = 0b0010111l
let system_opcode = 0b1110011l
let fence_opcode = 0b0001111l
let amo_opcode = 0b0101111l

let rop_fields : Instr.rop -> int32 * int32 * int32 = function
  (* funct7, funct3, opcode *)
  | ADD -> (0x00l, 0l, op_opcode)
  | SUB -> (0x20l, 0l, op_opcode)
  | SLL -> (0x00l, 1l, op_opcode)
  | SLT -> (0x00l, 2l, op_opcode)
  | SLTU -> (0x00l, 3l, op_opcode)
  | XOR -> (0x00l, 4l, op_opcode)
  | SRL -> (0x00l, 5l, op_opcode)
  | SRA -> (0x20l, 5l, op_opcode)
  | OR -> (0x00l, 6l, op_opcode)
  | AND -> (0x00l, 7l, op_opcode)
  | ADDW -> (0x00l, 0l, op32_opcode)
  | SUBW -> (0x20l, 0l, op32_opcode)
  | SLLW -> (0x00l, 1l, op32_opcode)
  | SRLW -> (0x00l, 5l, op32_opcode)
  | SRAW -> (0x20l, 5l, op32_opcode)
  | MUL -> (0x01l, 0l, op_opcode)
  | MULH -> (0x01l, 1l, op_opcode)
  | MULHSU -> (0x01l, 2l, op_opcode)
  | MULHU -> (0x01l, 3l, op_opcode)
  | DIV -> (0x01l, 4l, op_opcode)
  | DIVU -> (0x01l, 5l, op_opcode)
  | REM -> (0x01l, 6l, op_opcode)
  | REMU -> (0x01l, 7l, op_opcode)
  | MULW -> (0x01l, 0l, op32_opcode)
  | DIVW -> (0x01l, 4l, op32_opcode)
  | DIVUW -> (0x01l, 5l, op32_opcode)
  | REMW -> (0x01l, 6l, op32_opcode)
  | REMUW -> (0x01l, 7l, op32_opcode)

let iop_fields : Instr.iop -> int32 * int32 = function
  (* funct3, opcode *)
  | ADDI -> (0l, opimm_opcode)
  | SLTI -> (2l, opimm_opcode)
  | SLTIU -> (3l, opimm_opcode)
  | XORI -> (4l, opimm_opcode)
  | ORI -> (6l, opimm_opcode)
  | ANDI -> (7l, opimm_opcode)
  | SLLI -> (1l, opimm_opcode)
  | SRLI -> (5l, opimm_opcode)
  | SRAI -> (5l, opimm_opcode)
  | ADDIW -> (0l, opimm32_opcode)
  | SLLIW -> (1l, opimm32_opcode)
  | SRLIW -> (5l, opimm32_opcode)
  | SRAIW -> (5l, opimm32_opcode)

let load_funct3 : Instr.load_op -> int32 = function
  | LB -> 0l | LH -> 1l | LW -> 2l | LD -> 3l | LBU -> 4l | LHU -> 5l | LWU -> 6l

let store_funct3 : Instr.store_op -> int32 = function
  | SB -> 0l | SH -> 1l | SW -> 2l | SD -> 3l

let branch_funct3 : Instr.branch_op -> int32 = function
  | BEQ -> 0l | BNE -> 1l | BLT -> 4l | BGE -> 5l | BLTU -> 6l | BGEU -> 7l

let csr_funct3 : Instr.csr_op -> int32 = function
  | CSRRW -> 1l | CSRRS -> 2l | CSRRC -> 3l

let is_shift_imm : Instr.iop -> bool = function
  | SLLI | SRLI | SRAI | SLLIW | SRLIW | SRAIW -> true
  | _ -> false

let is_arith_right : Instr.iop -> bool = function
  | SRAI | SRAIW -> true
  | _ -> false

let encode (instr : Instr.t) =
  match instr with
  | Rtype (op, rd, rs1, rs2) ->
      let funct7, funct3, opcode = rop_fields op in
      r_format ~funct7 ~rs2:(reg rs2) ~rs1:(reg rs1) ~funct3 ~rd:(reg rd) ~opcode
  | Itype (op, rd, rs1, imm) ->
      let funct3, opcode = iop_fields op in
      if is_shift_imm op then begin
        let max_shamt =
          match op with Instr.SLLIW | SRLIW | SRAIW -> 31 | _ -> 63
        in
        check_range "shamt" imm 0 max_shamt;
        let imm = if is_arith_right op then imm lor 0x400 else imm in
        i_format ~imm ~rs1:(reg rs1) ~funct3 ~rd:(reg rd) ~opcode
      end
      else begin
        check_range "I-type" imm (-2048) 2047;
        i_format ~imm ~rs1:(reg rs1) ~funct3 ~rd:(reg rd) ~opcode
      end
  | Load (op, rd, base, off) ->
      check_range "load" off (-2048) 2047;
      i_format ~imm:off ~rs1:(reg base) ~funct3:(load_funct3 op) ~rd:(reg rd)
        ~opcode:load_opcode
  | Store (op, data, base, off) ->
      check_range "store" off (-2048) 2047;
      s_format ~imm:off ~rs2:(reg data) ~rs1:(reg base) ~funct3:(store_funct3 op)
        ~opcode:store_opcode
  | Branch (op, rs1, rs2, off) ->
      check_range "branch" off (-4096) 4095;
      check_even "branch" off;
      b_format ~imm:off ~rs2:(reg rs2) ~rs1:(reg rs1) ~funct3:(branch_funct3 op)
        ~opcode:branch_opcode
  | Jal (rd, off) ->
      check_range "jal" off (-1048576) 1048575;
      check_even "jal" off;
      j_format ~imm:off ~rd:(reg rd) ~opcode:jal_opcode
  | Jalr (rd, base, off) ->
      check_range "jalr" off (-2048) 2047;
      i_format ~imm:off ~rs1:(reg base) ~funct3:0l ~rd:(reg rd) ~opcode:jalr_opcode
  | Lui (rd, imm) ->
      check_range "lui" imm 0 0xFFFFF;
      u_format ~imm ~rd:(reg rd) ~opcode:lui_opcode
  | Auipc (rd, imm) ->
      check_range "auipc" imm 0 0xFFFFF;
      u_format ~imm ~rd:(reg rd) ~opcode:auipc_opcode
  | Csr (op, rd, rs1, csr) ->
      check_range "csr" csr 0 0xFFF;
      i_format ~imm:csr ~rs1:(reg rs1) ~funct3:(csr_funct3 op) ~rd:(reg rd)
        ~opcode:system_opcode
  | Lr_d (rd, base) ->
      r_format ~funct7:(0b0001000l <<< 0) ~rs2:0l ~rs1:(reg base) ~funct3:3l
        ~rd:(reg rd) ~opcode:amo_opcode
  | Sc_d (rd, data, base) ->
      r_format ~funct7:(0b0001100l <<< 0) ~rs2:(reg data) ~rs1:(reg base)
        ~funct3:3l ~rd:(reg rd) ~opcode:amo_opcode
  | Fence -> i_format ~imm:0 ~rs1:0l ~funct3:0l ~rd:0l ~opcode:fence_opcode
  | Ecall -> i_format ~imm:0 ~rs1:0l ~funct3:0l ~rd:0l ~opcode:system_opcode
  | Ebreak -> i_format ~imm:1 ~rs1:0l ~funct3:0l ~rd:0l ~opcode:system_opcode
  | Mret -> i_format ~imm:0x302 ~rs1:0l ~funct3:0l ~rd:0l ~opcode:system_opcode

let field word hi lo =
  Int32.to_int
    ((Int32.shift_right_logical word lo) &&& Int32.sub (1l <<< (hi - lo + 1)) 1l)

let sign_extend width v = if v land (1 lsl (width - 1)) <> 0 then v - (1 lsl width) else v

let decode word =
  let opcode = field word 6 0 in
  let rd = Reg.of_int (field word 11 7) in
  let funct3 = field word 14 12 in
  let rs1 = Reg.of_int (field word 19 15) in
  let rs2 = Reg.of_int (field word 24 20) in
  let funct7 = field word 31 25 in
  let i_imm = sign_extend 12 (field word 31 20) in
  let s_imm = sign_extend 12 ((field word 31 25 lsl 5) lor field word 11 7) in
  let b_imm =
    sign_extend 13
      ((field word 31 31 lsl 12) lor (field word 7 7 lsl 11)
      lor (field word 30 25 lsl 5) lor (field word 11 8 lsl 1))
  in
  let u_imm = field word 31 12 in
  let j_imm =
    sign_extend 21
      ((field word 31 31 lsl 20) lor (field word 19 12 lsl 12)
      lor (field word 20 20 lsl 11) lor (field word 30 21 lsl 1))
  in
  let err msg = Error (Printf.sprintf "%s (word 0x%08lx)" msg word) in
  match Int32.of_int opcode with
  | o when o = op_opcode || o = op32_opcode -> (
      let w = o = op32_opcode in
      let pick : Instr.rop option =
        match (funct7, funct3, w) with
        | 0x00, 0, false -> Some ADD | 0x20, 0, false -> Some SUB
        | 0x00, 1, false -> Some SLL | 0x00, 2, false -> Some SLT
        | 0x00, 3, false -> Some SLTU | 0x00, 4, false -> Some XOR
        | 0x00, 5, false -> Some SRL | 0x20, 5, false -> Some SRA
        | 0x00, 6, false -> Some OR | 0x00, 7, false -> Some AND
        | 0x01, 0, false -> Some MUL | 0x01, 1, false -> Some MULH
        | 0x01, 2, false -> Some MULHSU | 0x01, 3, false -> Some MULHU
        | 0x01, 4, false -> Some DIV | 0x01, 5, false -> Some DIVU
        | 0x01, 6, false -> Some REM | 0x01, 7, false -> Some REMU
        | 0x00, 0, true -> Some ADDW | 0x20, 0, true -> Some SUBW
        | 0x00, 1, true -> Some SLLW | 0x00, 5, true -> Some SRLW
        | 0x20, 5, true -> Some SRAW | 0x01, 0, true -> Some MULW
        | 0x01, 4, true -> Some DIVW | 0x01, 5, true -> Some DIVUW
        | 0x01, 6, true -> Some REMW | 0x01, 7, true -> Some REMUW
        | _ -> None
      in
      match pick with
      | Some op -> Ok (Instr.Rtype (op, rd, rs1, rs2))
      | None -> err "unknown R-type")
  | o when o = opimm_opcode || o = opimm32_opcode -> (
      let w = o = opimm32_opcode in
      let shamt_width = if w then 5 else 6 in
      let shamt = field word (19 + shamt_width) 20 in
      let upper = field word 31 (20 + shamt_width) in
      let pick : (Instr.iop * int) option =
        match (funct3, w) with
        | 0, false -> Some (ADDI, i_imm)
        | 2, false -> Some (SLTI, i_imm)
        | 3, false -> Some (SLTIU, i_imm)
        | 4, false -> Some (XORI, i_imm)
        | 6, false -> Some (ORI, i_imm)
        | 7, false -> Some (ANDI, i_imm)
        | 1, false when upper = 0 -> Some (SLLI, shamt)
        | 5, false when upper = 0 -> Some (SRLI, shamt)
        | 5, false when upper = 0x10 -> Some (SRAI, shamt)
        | 0, true -> Some (ADDIW, i_imm)
        | 1, true when upper = 0 -> Some (SLLIW, shamt)
        | 5, true when upper = 0 -> Some (SRLIW, shamt)
        | 5, true when upper = 0x20 -> Some (SRAIW, shamt)
        | _ -> None
      in
      match pick with
      | Some (op, imm) -> Ok (Instr.Itype (op, rd, rs1, imm))
      | None -> err "unknown I-type")
  | o when o = load_opcode -> (
      let pick : Instr.load_op option =
        match funct3 with
        | 0 -> Some LB | 1 -> Some LH | 2 -> Some LW | 3 -> Some LD
        | 4 -> Some LBU | 5 -> Some LHU | 6 -> Some LWU | _ -> None
      in
      match pick with
      | Some op -> Ok (Instr.Load (op, rd, rs1, i_imm))
      | None -> err "unknown load")
  | o when o = store_opcode -> (
      let pick : Instr.store_op option =
        match funct3 with
        | 0 -> Some SB | 1 -> Some SH | 2 -> Some SW | 3 -> Some SD | _ -> None
      in
      match pick with
      | Some op -> Ok (Instr.Store (op, rs2, rs1, s_imm))
      | None -> err "unknown store")
  | o when o = branch_opcode -> (
      let pick : Instr.branch_op option =
        match funct3 with
        | 0 -> Some BEQ | 1 -> Some BNE | 4 -> Some BLT | 5 -> Some BGE
        | 6 -> Some BLTU | 7 -> Some BGEU | _ -> None
      in
      match pick with
      | Some op -> Ok (Instr.Branch (op, rs1, rs2, b_imm))
      | None -> err "unknown branch")
  | o when o = jal_opcode -> Ok (Instr.Jal (rd, j_imm))
  | o when o = jalr_opcode ->
      if funct3 = 0 then Ok (Instr.Jalr (rd, rs1, i_imm)) else err "unknown jalr"
  | o when o = lui_opcode -> Ok (Instr.Lui (rd, u_imm))
  | o when o = auipc_opcode -> Ok (Instr.Auipc (rd, u_imm))
  | o when o = fence_opcode -> Ok Instr.Fence
  | o when o = amo_opcode -> (
      let funct5 = funct7 lsr 2 in
      match (funct5, funct3) with
      | 0b00010, 3 -> Ok (Instr.Lr_d (rd, rs1))
      | 0b00011, 3 -> Ok (Instr.Sc_d (rd, rs2, rs1))
      | _ -> err "unknown AMO")
  | o when o = system_opcode -> (
      match funct3 with
      | 0 -> (
          match field word 31 20 with
          | 0 -> Ok Instr.Ecall
          | 1 -> Ok Instr.Ebreak
          | 0x302 -> Ok Instr.Mret
          | _ -> err "unknown SYSTEM")
      | 1 -> Ok (Instr.Csr (CSRRW, rd, rs1, field word 31 20))
      | 2 -> Ok (Instr.Csr (CSRRS, rd, rs1, field word 31 20))
      | 3 -> Ok (Instr.Csr (CSRRC, rd, rs1, field word 31 20))
      | _ -> err "unknown SYSTEM funct3")
  | _ -> err "unknown opcode"

let encode_program instrs = List.map encode instrs

let decode_program words =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | w :: rest -> (
        match decode w with Ok i -> go (i :: acc) rest | Error e -> Error e)
  in
  go [] words
