type rop =
  | ADD | SUB | SLL | SRL | SRA | SLT | SLTU | AND | OR | XOR
  | ADDW | SUBW | SLLW | SRLW | SRAW
  | MUL | MULH | MULHSU | MULHU | DIV | DIVU | REM | REMU
  | MULW | DIVW | DIVUW | REMW | REMUW

type iop =
  | ADDI | SLTI | SLTIU | ANDI | ORI | XORI | SLLI | SRLI | SRAI
  | ADDIW | SLLIW | SRLIW | SRAIW

type load_op = LB | LH | LW | LD | LBU | LHU | LWU
type store_op = SB | SH | SW | SD
type branch_op = BEQ | BNE | BLT | BGE | BLTU | BGEU
type csr_op = CSRRW | CSRRS | CSRRC

type t =
  | Rtype of rop * Reg.t * Reg.t * Reg.t
  | Itype of iop * Reg.t * Reg.t * int
  | Load of load_op * Reg.t * Reg.t * int
  | Store of store_op * Reg.t * Reg.t * int
  | Branch of branch_op * Reg.t * Reg.t * int
  | Jal of Reg.t * int
  | Jalr of Reg.t * Reg.t * int
  | Lui of Reg.t * int
  | Auipc of Reg.t * int
  | Csr of csr_op * Reg.t * Reg.t * int
  | Lr_d of Reg.t * Reg.t
  | Sc_d of Reg.t * Reg.t * Reg.t
  | Fence
  | Ecall
  | Ebreak
  | Mret

let uses_mul_div = function
  | Rtype
      ( (MUL | MULH | MULHSU | MULHU | DIV | DIVU | REM | REMU | MULW | DIVW
        | DIVUW | REMW | REMUW),
        _,
        _,
        _ ) ->
      true
  | _ -> false

let is_load = function Load _ | Lr_d _ -> true | _ -> false
let is_store = function Store _ | Sc_d _ -> true | _ -> false
let is_mem i = is_load i || is_store i
let is_branch = function Branch _ | Jal _ | Jalr _ -> true | _ -> false

let dest = function
  | Rtype (_, rd, _, _)
  | Itype (_, rd, _, _)
  | Load (_, rd, _, _)
  | Jal (rd, _)
  | Jalr (rd, _, _)
  | Lui (rd, _)
  | Auipc (rd, _)
  | Csr (_, rd, _, _)
  | Lr_d (rd, _)
  | Sc_d (rd, _, _) ->
      if Reg.equal rd Reg.x0 then None else Some rd
  | Store _ | Branch _ | Fence | Ecall | Ebreak | Mret -> None

let sources = function
  | Rtype (_, _, rs1, rs2) -> [ rs1; rs2 ]
  | Itype (_, _, rs1, _) -> [ rs1 ]
  | Load (_, _, base, _) -> [ base ]
  | Store (_, data, base, _) -> [ data; base ]
  | Branch (_, rs1, rs2, _) -> [ rs1; rs2 ]
  | Jal _ -> []
  | Jalr (_, base, _) -> [ base ]
  | Lui _ | Auipc _ -> []
  | Csr (_, _, rs1, _) -> [ rs1 ]
  | Lr_d (_, base) -> [ base ]
  | Sc_d (_, data, base) -> [ data; base ]
  | Fence | Ecall | Ebreak | Mret -> []

let equal a b = a = b

let rop_name = function
  | ADD -> "add" | SUB -> "sub" | SLL -> "sll" | SRL -> "srl" | SRA -> "sra"
  | SLT -> "slt" | SLTU -> "sltu" | AND -> "and" | OR -> "or" | XOR -> "xor"
  | ADDW -> "addw" | SUBW -> "subw" | SLLW -> "sllw" | SRLW -> "srlw"
  | SRAW -> "sraw" | MUL -> "mul" | MULH -> "mulh" | MULHSU -> "mulhsu"
  | MULHU -> "mulhu" | DIV -> "div" | DIVU -> "divu" | REM -> "rem"
  | REMU -> "remu" | MULW -> "mulw" | DIVW -> "divw" | DIVUW -> "divuw"
  | REMW -> "remw" | REMUW -> "remuw"

let iop_name = function
  | ADDI -> "addi" | SLTI -> "slti" | SLTIU -> "sltiu" | ANDI -> "andi"
  | ORI -> "ori" | XORI -> "xori" | SLLI -> "slli" | SRLI -> "srli"
  | SRAI -> "srai" | ADDIW -> "addiw" | SLLIW -> "slliw" | SRLIW -> "srliw"
  | SRAIW -> "sraiw"

let load_name = function
  | LB -> "lb" | LH -> "lh" | LW -> "lw" | LD -> "ld" | LBU -> "lbu"
  | LHU -> "lhu" | LWU -> "lwu"

let store_name = function SB -> "sb" | SH -> "sh" | SW -> "sw" | SD -> "sd"

let branch_name = function
  | BEQ -> "beq" | BNE -> "bne" | BLT -> "blt" | BGE -> "bge" | BLTU -> "bltu"
  | BGEU -> "bgeu"

let csr_name = function CSRRW -> "csrrw" | CSRRS -> "csrrs" | CSRRC -> "csrrc"

let pp fmt = function
  | Rtype (op, rd, rs1, rs2) ->
      Format.fprintf fmt "%s %a, %a, %a" (rop_name op) Reg.pp rd Reg.pp rs1
        Reg.pp rs2
  | Itype (op, rd, rs1, imm) ->
      Format.fprintf fmt "%s %a, %a, %d" (iop_name op) Reg.pp rd Reg.pp rs1 imm
  | Load (op, rd, base, off) ->
      Format.fprintf fmt "%s %a, %d(%a)" (load_name op) Reg.pp rd off Reg.pp base
  | Store (op, data, base, off) ->
      Format.fprintf fmt "%s %a, %d(%a)" (store_name op) Reg.pp data off Reg.pp
        base
  | Branch (op, rs1, rs2, off) ->
      Format.fprintf fmt "%s %a, %a, %d" (branch_name op) Reg.pp rs1 Reg.pp rs2
        off
  | Jal (rd, off) -> Format.fprintf fmt "jal %a, %d" Reg.pp rd off
  | Jalr (rd, base, off) ->
      Format.fprintf fmt "jalr %a, %d(%a)" Reg.pp rd off Reg.pp base
  | Lui (rd, imm) -> Format.fprintf fmt "lui %a, %d" Reg.pp rd imm
  | Auipc (rd, imm) -> Format.fprintf fmt "auipc %a, %d" Reg.pp rd imm
  | Csr (op, rd, rs1, csr) ->
      Format.fprintf fmt "%s %a, 0x%x, %a" (csr_name op) Reg.pp rd csr Reg.pp rs1
  | Lr_d (rd, base) -> Format.fprintf fmt "lr.d %a, (%a)" Reg.pp rd Reg.pp base
  | Sc_d (rd, data, base) ->
      Format.fprintf fmt "sc.d %a, %a, (%a)" Reg.pp rd Reg.pp data Reg.pp base
  | Fence -> Format.pp_print_string fmt "fence"
  | Ecall -> Format.pp_print_string fmt "ecall"
  | Ebreak -> Format.pp_print_string fmt "ebreak"
  | Mret -> Format.pp_print_string fmt "mret"

let to_string i = Format.asprintf "%a" pp i
