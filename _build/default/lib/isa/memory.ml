type t = (int64, int64) Hashtbl.t

let create () : t = Hashtbl.create 256
let copy = Hashtbl.copy

let word_addr addr = Int64.logand addr (Int64.lognot 7L)
let byte_off addr = Int64.to_int (Int64.logand addr 7L)
let get_word t addr = Option.value ~default:0L (Hashtbl.find_opt t (word_addr addr))

let check_size size =
  match size with
  | 1 | 2 | 4 | 8 -> ()
  | _ -> invalid_arg (Printf.sprintf "Memory: size %d" size)

let load_byte t addr =
  let w = get_word t addr in
  Int64.logand (Int64.shift_right_logical w (8 * byte_off addr)) 0xFFL

let store_byte t addr v =
  let wa = word_addr addr in
  let off = 8 * byte_off addr in
  let w = get_word t addr in
  let cleared = Int64.logand w (Int64.lognot (Int64.shift_left 0xFFL off)) in
  Hashtbl.replace t wa
    (Int64.logor cleared (Int64.shift_left (Int64.logand v 0xFFL) off))

let load t ~addr ~size =
  check_size size;
  let rec go acc i =
    if i >= size then acc
    else
      let byte = load_byte t (Int64.add addr (Int64.of_int i)) in
      go (Int64.logor acc (Int64.shift_left byte (8 * i))) (i + 1)
  in
  go 0L 0

let load_signed t ~addr ~size =
  let v = load t ~addr ~size in
  if size = 8 then v
  else
    let bits = 8 * size in
    let sign = Int64.shift_left 1L (bits - 1) in
    if Int64.logand v sign <> 0L then Int64.sub v (Int64.shift_left 1L bits) else v

let store t ~addr ~size v =
  check_size size;
  for i = 0 to size - 1 do
    store_byte t
      (Int64.add addr (Int64.of_int i))
      (Int64.shift_right_logical v (8 * i))
  done

let footprint t = Hashtbl.length t
