lib/isa/memory.ml: Hashtbl Int64 Option Printf
