lib/isa/program.ml: Array Format Instr Int64 Option
