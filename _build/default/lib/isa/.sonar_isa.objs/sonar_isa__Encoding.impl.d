lib/isa/encoding.ml: Instr Int32 List Printf Reg
