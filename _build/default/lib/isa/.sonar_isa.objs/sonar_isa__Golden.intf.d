lib/isa/golden.mli: Format Instr Memory Program Reg
