lib/isa/golden.ml: Array Format Instr Int64 List Memory Program Reg
