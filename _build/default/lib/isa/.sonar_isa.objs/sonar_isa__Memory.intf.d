lib/isa/memory.mli:
