lib/isa/asm.ml: Instr Int64 List Printf Reg String
