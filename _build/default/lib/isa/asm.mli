(** Assembler conveniences: pseudo-instructions and program building.

    Generated testcases compose instruction lists; these helpers cover the
    common pseudo-instructions (nop, li, mv) including full 64-bit constant
    materialisation, which needs an instruction sequence. *)

val nop : Instr.t
val mv : Reg.t -> Reg.t -> Instr.t
(** [mv rd rs] = [addi rd, rs, 0]. *)

val li : Reg.t -> int64 -> Instr.t list
(** Materialise an arbitrary 64-bit constant (1-8 instructions; the
    recursive lui/addiw/slli strategy real assemblers use). *)

val halt : Instr.t
(** [ebreak] — terminates golden-model and timing-model execution. *)

val program_to_string : Instr.t list -> string
(** One instruction per line, with indices. *)
