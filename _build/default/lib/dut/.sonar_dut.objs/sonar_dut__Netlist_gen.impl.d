lib/dut/netlist_gen.ml: Binding Circuit Component Expr Float Fmodule Hashtbl Int64 List Option Printf Sonar_ir Sonar_uarch Stmt String
