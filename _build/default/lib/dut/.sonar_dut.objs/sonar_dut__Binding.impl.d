lib/dut/binding.ml: Component Hashtbl List Option Sonar_ir Sonar_uarch String
