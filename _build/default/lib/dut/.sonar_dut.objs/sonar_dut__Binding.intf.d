lib/dut/binding.mli: Sonar_ir Sonar_uarch
