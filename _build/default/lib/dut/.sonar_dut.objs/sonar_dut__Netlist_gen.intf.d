lib/dut/netlist_gen.mli: Sonar_ir Sonar_uarch
