open Sonar_ir

(* Paper-calibrated targets: (naive 2:1 MUXes, identified points, monitored
   points) — Figures 6 and 7. Unknown configurations get ratios derived
   from their fanout table. *)
let targets (cfg : Sonar_uarch.Config.t) =
  match cfg.name with
  | "boom" -> (31_484, 8_975, 6_620)
  | "nutshell" -> (23_618, 4_631, 2_976)
  | _ ->
      let monitored = List.fold_left (fun a (_, f) -> a + f) 0 cfg.fanout in
      let identified = monitored * 4 / 3 in
      (identified * 7 / 2, identified, monitored)

let points_target ?(scale = 1.0) cfg =
  let naive, identified, monitored = targets cfg in
  let s v = max 1 (int_of_float (Float.round (float_of_int v *. scale))) in
  (s naive, s identified, s monitored)

(* Table 2 code-size overhead targets (#New verilog as a share of total). *)
let overhead_ratio (cfg : Sonar_uarch.Config.t) =
  match cfg.name with "boom" -> 0.14 | "nutshell" -> 0.20 | _ -> 0.15

type point_form =
  | Monitored of int  (** number of valid-bearing requests (1 or 2) *)
  | Filtered_const  (** every request a literal *)
  | Filtered_novalid  (** requests without validity signals *)

(* One contention point: a depth-d cascade emitted as chained nodes so the
   bottom-up tracer absorbs the inner MUXes through named references. *)
let emit_point ~pid ~depth ~form stmts =
  let n_leaves = depth + 1 in
  let base = Printf.sprintf "pt%d" pid in
  let add s = stmts := s :: !stmts in
  (* Select inputs. *)
  for k = 0 to depth - 1 do
    add (Stmt.Input { name = Printf.sprintf "%s_sel%d" base k; width = 1 })
  done;
  let leaf j =
    match form with
    | Filtered_const -> Expr.lit ~width:8 (Int64.of_int ((j * 37) land 0xFF))
    | Filtered_novalid ->
        let name = Printf.sprintf "nv%d_l%d" pid j in
        add (Stmt.Input { name; width = 8 });
        Expr.reference name
    | Monitored n_valid ->
        let name = Printf.sprintf "%s_req%d_data" base j in
        add (Stmt.Input { name; width = 8 });
        if j < n_valid then
          add (Stmt.Input { name = Printf.sprintf "%s_req%d_valid" base j; width = 1 });
        Expr.reference name
  in
  (* Build the chain bottom-up: m_{d-1} is the deepest MUX. *)
  let rec build level =
    if level = depth - 1 then
      Expr.mux
        (Expr.reference (Printf.sprintf "%s_sel%d" base level))
        (leaf level) (leaf (level + 1))
    else begin
      let inner = build (level + 1) in
      let inner_name = Printf.sprintf "%s_m%d" base (level + 1) in
      add (Stmt.Node { name = inner_name; expr = inner });
      Expr.mux
        (Expr.reference (Printf.sprintf "%s_sel%d" base level))
        (leaf level)
        (Expr.reference inner_name)
    end
  in
  ignore n_leaves;
  let root = build 0 in
  add (Stmt.Node { name = base; expr = root });
  add (Stmt.Output { name = base ^ "_out"; width = 8 });
  add (Stmt.Connect { dst = base ^ "_out"; src = Expr.reference base })

let points_per_module = 200

(* Distribute [total] over components proportionally to [weights], fixing
   rounding drift on the heaviest component. *)
let distribute total weights =
  let sum = List.fold_left (fun a (_, w) -> a + w) 0 weights in
  if sum = 0 then List.map (fun (c, _) -> (c, 0)) weights
  else begin
    let assigned =
      List.map (fun (c, w) -> (c, total * w / sum)) weights
    in
    let got = List.fold_left (fun a (_, n) -> a + n) 0 assigned in
    let drift = total - got in
    let heaviest =
      fst
        (List.fold_left
           (fun (bc, bw) (c, w) -> if w > bw then (c, w) else (bc, bw))
           (fst (List.hd weights), -1)
           weights)
    in
    List.map (fun (c, n) -> (c, if c = heaviest then n + drift else n)) assigned
  end

let estimate_added_stmts forms =
  (* Mirrors Instrument's emission: per valid output 2 stmts; per request
     last/seen registers 4 stmts; interval node/output/connect 3. *)
  List.fold_left
    (fun acc form ->
      match form with
      | Monitored n when n >= 2 -> acc + (2 * n) + (4 * n) + 3
      | Monitored n -> acc + (2 * n)
      | Filtered_const | Filtered_novalid -> acc)
    0 forms

let generate ?(scale = 1.0) ?(pad = true) (cfg : Sonar_uarch.Config.t) =
  let naive, identified, monitored = points_target ~scale cfg in
  let monitored_weights = Binding.monitored_per_component cfg in
  let mon_per_comp = distribute monitored monitored_weights in
  let filt_per_comp = distribute (max 0 (identified - monitored)) monitored_weights in
  (* Build the flat list of (component, form) points. *)
  let points =
    List.concat_map
      (fun comp ->
        let mons = List.assoc comp mon_per_comp in
        let filts = List.assoc comp filt_per_comp in
        List.init mons (fun j ->
            (* ~30% single-valid (Figure 9 class), rest dual-valid. *)
            (comp, Monitored (if j mod 10 < 3 then 1 else 2)))
        @ List.init filts (fun j ->
              (comp, if j mod 2 = 0 then Filtered_const else Filtered_novalid)))
      Component.all
  in
  let total_points = List.length points in
  let base_depth = max 1 (naive / max 1 total_points) in
  let extra = max 0 (naive - (base_depth * total_points)) in
  (* Group into modules per component. *)
  let modules = ref [] in
  let by_comp = Hashtbl.create 8 in
  List.iteri
    (fun i (comp, form) ->
      let depth = base_depth + if i < extra then 1 else 0 in
      let l = Option.value ~default:[] (Hashtbl.find_opt by_comp comp) in
      Hashtbl.replace by_comp comp ((i, depth, form) :: l))
    points;
  let forms = List.map snd points in
  List.iter
    (fun comp ->
      let pts = List.rev (Option.value ~default:[] (Hashtbl.find_opt by_comp comp)) in
      let rec chunks k = function
        | [] -> ()
        | pts ->
            let rec take n acc = function
              | [] -> (List.rev acc, [])
              | rest when n = 0 -> (List.rev acc, rest)
              | x :: rest -> take (n - 1) (x :: acc) rest
            in
            let here, rest = take points_per_module [] pts in
            let stmts = ref [] in
            List.iter
              (fun (pid, depth, form) -> emit_point ~pid ~depth ~form stmts)
              here;
            modules :=
              Fmodule.make ~component:comp
                (Printf.sprintf "%s_unit%d"
                   (String.capitalize_ascii (Component.to_string comp))
                   k)
                (List.rev !stmts)
              :: !modules;
            chunks (k + 1) rest
      in
      chunks 0 pts)
    Component.all;
  let real_modules = List.rev !modules in
  let base_stmts =
    List.fold_left (fun a m -> a + Fmodule.stmt_count m) 0 real_modules
  in
  (* Padding: plain datapath nodes so instrumentation overhead lands near the
     paper's code-size ratio. Real RTL is mostly non-arbitration logic. *)
  let pad_modules =
    if not pad then []
    else begin
      let r = overhead_ratio cfg in
      let added = estimate_added_stmts forms in
      let total_wanted = int_of_float (float_of_int added *. (1. -. r) /. r) in
      let pad_stmts = max 0 (total_wanted - base_stmts) in
      let per_module = 20_000 in
      let n_modules = (pad_stmts + per_module - 1) / per_module in
      List.init n_modules (fun k ->
          let here = min per_module (pad_stmts - (k * per_module)) in
          let stmts = ref [ Stmt.Input { name = "in0"; width = 8 } ] in
          for j = 1 to here - 1 do
            let prev = if j = 1 then "in0" else Printf.sprintf "d%d" (j - 1) in
            stmts :=
              Stmt.Node
                {
                  name = Printf.sprintf "d%d" j;
                  expr =
                    Expr.prim Expr.Add
                      [
                        Expr.reference prev; Expr.lit ~width:8 (Int64.of_int (j land 0xFF));
                      ];
                }
              :: !stmts
          done;
          Fmodule.make ~component:Component.Other
            (Printf.sprintf "Datapath%d" k)
            (List.rev !stmts))
    end
  in
  Circuit.make cfg.name (real_modules @ pad_modules)

(* Figure 3's example: the ldq_stq_idx selection point in BOOM's LSU. *)
let example_module () =
  let open Expr in
  Fmodule.make ~component:Component.Lsu "LsuExample"
    [
      Stmt.Input { name = "io_ldq_idx_data"; width = 8 };
      Stmt.Input { name = "io_ldq_idx_valid"; width = 1 };
      Stmt.Input { name = "io_stq_idx_data"; width = 8 };
      Stmt.Input { name = "io_stq_idx_valid"; width = 1 };
      Stmt.Input { name = "io_retry_idx_data"; width = 8 };
      Stmt.Input { name = "io_retry_idx_valid"; width = 1 };
      Stmt.Input { name = "sel_ld"; width = 1 };
      Stmt.Input { name = "sel_retry"; width = 1 };
      Stmt.Node
        {
          name = "ldq_stq_m1";
          expr =
            mux (reference "sel_retry") (reference "io_retry_idx_data")
              (reference "io_stq_idx_data");
        };
      Stmt.Node
        {
          name = "ldq_stq_idx";
          expr =
            mux (reference "sel_ld") (reference "io_ldq_idx_data")
              (reference "ldq_stq_m1");
        };
      Stmt.Output { name = "out"; width = 8 };
      Stmt.Connect { dst = "out"; src = reference "ldq_stq_idx" };
    ]
