(** Binding between runtime contention points and netlist components.

    Each runtime arbitration site of {!Sonar_uarch} maps to [fanout]
    netlist-level MUX contention points inside one pipeline component; this
    module is the single source of truth for that mapping, shared by the
    netlist generator and the reports. *)

val component_of_point : string -> Sonar_ir.Component.t
(** Component of a runtime point name (with or without the per-core "c<k>."
    prefix), e.g. ["lsu.ldq_stq_idx"] → [Lsu], ["tilelink.d_channel"] → [Bus]. *)

val monitored_per_component :
  Sonar_uarch.Config.t -> (Sonar_ir.Component.t * int) list
(** Sum of fanouts per component — the number of monitored netlist points
    each component must contain (Figure 7, "after filtering"). *)

val bindings : Sonar_uarch.Config.t -> (string * Sonar_ir.Component.t * int) list
(** All (runtime point, component, fanout) triples of a configuration. *)
