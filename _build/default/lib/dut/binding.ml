open Sonar_ir

let strip_core_prefix name =
  if String.length name > 3 && name.[0] = 'c' && String.contains name '.' then
    let dot = String.index name '.' in
    if
      dot >= 2
      && String.for_all (fun ch -> ch >= '0' && ch <= '9') (String.sub name 1 (dot - 1))
    then String.sub name (dot + 1) (String.length name - dot - 1)
    else name
  else name

let component_of_point name =
  let name = strip_core_prefix name in
  let prefix =
    match String.index_opt name '.' with
    | Some i -> String.sub name 0 i
    | None -> name
  in
  match prefix with
  | "frontend" | "icache" | "bpd" -> Component.Frontend
  | "rob" -> Component.Rob
  | "lsu" | "mshr" | "linebuffer" | "dcache" | "stq" -> Component.Lsu
  | "exec" | "mdu" -> Component.Exec
  | "tilelink" | "bus" | "l2" -> Component.Bus
  | _ -> Component.Other

let bindings (cfg : Sonar_uarch.Config.t) =
  List.map (fun (name, fanout) -> (name, component_of_point name, fanout)) cfg.fanout

let monitored_per_component cfg =
  let sums = Hashtbl.create 8 in
  List.iter
    (fun (_, comp, fanout) ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt sums comp) in
      Hashtbl.replace sums comp (cur + fanout))
    (bindings cfg);
  List.map
    (fun comp -> (comp, Option.value ~default:0 (Hashtbl.find_opt sums comp)))
    Component.all
