(** Netlist generators for the two DUTs.

    The paper analyses the real BOOM and NutShell RTL; we do not have those
    designs (or FIRRTL) in this environment, so — per the substitution rule
    recorded in DESIGN.md — we generate structural netlist skeletons whose
    MUX populations are calibrated to the paper's published counts:

    - naive 2:1-MUX count: BOOM 31,484 / NutShell 23,618 (Figure 6 left);
    - bottom-up contention points: 8,975 / 4,631 (Figure 6 right);
    - monitored after filtering: 6,620 / 2,976 (Figure 7), distributed per
      pipeline component according to {!Binding};
    - filtered points split between constant-request and no-valid-signal
      forms so both §5.2 filter paths are exercised;
    - roughly 30% of monitored points have a single valid-bearing request
      (the Figure 9 class).

    Each contention point is emitted as a depth-d cascade of 2:1 MUXes whose
    leaf requests follow the [<prefix>_valid] convention of Algorithm 1, so
    the full {!Sonar_ir} pipeline (tracing → validity → filter →
    instrumentation → simulation) runs end to end on these circuits.

    [scale] shrinks every target linearly (e.g. 0.02 for a netlist small
    enough to simulate in benchmarks). [pad] appends plain combinational
    nodes so that instrumentation code-size overhead lands near the paper's
    Table 2 ratios (14% BOOM, 20% NutShell); disable it for analyses where
    total statement count does not matter. *)

val generate :
  ?scale:float -> ?pad:bool -> Sonar_uarch.Config.t -> Sonar_ir.Circuit.t

val points_target : ?scale:float -> Sonar_uarch.Config.t -> int * int * int
(** (naive MUXes, identified points, monitored points) the generator aims
    for at this scale. *)

val example_module : unit -> Sonar_ir.Fmodule.t
(** The paper's Figure 3 example: the [ldq_stq_idx] contention point as a
    two-level MUX cascade (used in documentation and tests). *)
