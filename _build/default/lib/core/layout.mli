(** Memory layout shared by generated testcases and attack programs. *)

val code_base : int64
val buffer_base : int64
(** Read/write scratch buffer available to generated code (base held in
    register a1). *)

val buffer_size : int
(** 32 KiB: spans multiple 4 KiB tag strides of the L1 DCache, so two
    accesses can share a set index while differing in tag (the S5/S12
    precondition). *)

val secret_addr : int64
(** Address of the secret value (base held in a0). Normal memory for fuzzing
    testcases; inside {!kernel_range} for Meltdown attack programs. *)

val kernel_range : int64 * int64
(** Protected range for Meltdown-style programs ([lo, hi)). *)

val attacker_base : int64
(** Scratch buffer base for the attacker core in dual-core testcases. *)

val cold_base : int64
(** A region never touched by the prelude — guaranteed cache-cold lines. *)
