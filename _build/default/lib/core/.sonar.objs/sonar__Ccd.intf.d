lib/core/ccd.mli: Sonar_isa Sonar_uarch
