lib/core/layout.ml:
