lib/core/layout.mli:
