lib/core/fuzzer.ml: Corpus Coverage Detector Executor List Mutation Rng Testcase
