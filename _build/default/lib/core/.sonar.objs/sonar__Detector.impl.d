lib/core/detector.ml: Array Ccd Cpoint Executor Format List Machine Sonar_isa Sonar_uarch
