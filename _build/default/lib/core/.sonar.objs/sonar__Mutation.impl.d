lib/core/mutation.ml: Instr List Rng Sonar_isa Testcase
