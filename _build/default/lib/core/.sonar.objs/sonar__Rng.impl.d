lib/core/rng.ml: Array Int64 List
