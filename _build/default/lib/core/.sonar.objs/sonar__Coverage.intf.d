lib/core/coverage.mli: Executor Sonar_ir
