lib/core/ccd.ml: Array Core_model List Sonar_isa Sonar_uarch
