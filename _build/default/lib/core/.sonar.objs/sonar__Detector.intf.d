lib/core/detector.mli: Executor Format Sonar_isa
