lib/core/testcase.ml: Asm Format Instr Int64 Layout List Program Reg Rng Sonar_isa Sonar_uarch String
