lib/core/executor.mli: Sonar_uarch Testcase
