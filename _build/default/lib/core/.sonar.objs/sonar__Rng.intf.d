lib/core/rng.mli:
