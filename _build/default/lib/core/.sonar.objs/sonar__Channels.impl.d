lib/core/channels.ml: Array Asm Ccd Config Detector Executor Format Instr Int64 Layout List Machine Program Reg Sonar_isa Sonar_uarch String
