lib/core/attack.mli: Format Sonar_isa Sonar_uarch
