lib/core/testcase.mli: Format Rng Sonar_isa Sonar_uarch
