lib/core/channels.mli: Detector Format Sonar_isa Sonar_uarch
