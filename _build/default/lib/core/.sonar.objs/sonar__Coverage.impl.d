lib/core/coverage.ml: Cpoint Executor Hashtbl List Machine Option Sonar_ir Sonar_uarch
