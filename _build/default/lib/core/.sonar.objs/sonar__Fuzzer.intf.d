lib/core/fuzzer.mli: Detector Sonar_uarch
