lib/core/executor.ml: Cpoint Hashtbl List Machine Printf Sonar_uarch Testcase
