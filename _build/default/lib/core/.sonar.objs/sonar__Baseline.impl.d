lib/core/baseline.ml: Coverage Executor Fuzzer List Mutation Rng Sonar_isa Testcase
