lib/core/baseline.mli: Fuzzer Sonar_uarch
