lib/core/corpus.ml: Hashtbl List Option Rng Testcase
