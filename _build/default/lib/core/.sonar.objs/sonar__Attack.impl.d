lib/core/attack.ml: Array Asm Config Core_model Float Format Hashtbl Instr Int64 Layout List Machine Option Program Reg Rng Sonar_isa Sonar_uarch
