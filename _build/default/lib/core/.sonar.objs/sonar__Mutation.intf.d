lib/core/mutation.mli: Rng Testcase
