lib/core/corpus.mli: Rng Testcase
