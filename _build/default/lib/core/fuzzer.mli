(** The Sonar fuzzing loop (§6) and its campaign statistics.

    Each iteration generates or mutates a testcase, executes it under both
    secret values, feeds contention intervals back into the corpus, and
    accumulates:

    - {e contention coverage}: the netlist-weighted set of triggered
      contention sub-points (Figure 8 top);
    - {e timing differences}: CCD findings that reflect the secret
      (Figure 8 bottom);
    - per-iteration series for plotting, and the detector reports of every
      finding-bearing testcase.

    The strategy record switches retention / selection / directed mutation
    independently (the Figure 10 breakdown). All-off is the random-testing
    baseline the paper compares against. *)

type strategy = {
  retention : bool;
  selection : bool;
  directed_mutation : bool;
}

val full_strategy : strategy
val random_strategy : strategy

type series_point = {
  iteration : int;
  coverage : float;  (** cumulative triggered contention points (weighted) *)
  timing_diffs : int;  (** cumulative secret-reflecting CCD findings *)
  corpus_size : int;
}

type outcome = {
  series : series_point list;  (** one per iteration, in order *)
  final_coverage : float;
  final_timing_diffs : int;
  testcases_with_diffs : int;
  contentions_triggered_testcases : int;
      (** testcases that triggered at least one contention *)
  single_valid_share_first20 : float;  (** Figure 9's dominance measure *)
  reports : (int * Detector.report) list;
      (** (iteration, report) for every testcase with CCD findings *)
}

val run :
  ?seed:int64 ->
  ?dual:bool ->
  ?max_cycles:int ->
  Sonar_uarch.Config.t ->
  strategy ->
  iterations:int ->
  outcome
