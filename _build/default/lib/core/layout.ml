let code_base = 0x8000_0000L
let buffer_base = 0x1000_0000L
let buffer_size = 32768
let secret_addr = 0x2000_0000L
let kernel_range = (0x2000_0000L, 0x2000_1000L)
let attacker_base = 0x3000_0000L
let cold_base = 0x4000_0000L
