open Sonar_isa

type secret_flavor =
  | Neutral
  | Stride of { stride_log : int; extra_loads : int }
  | Latency of { use_div : bool }
  | Gated of { body : Instr.t list }

type chain = { c_reg : Reg.t; length : int }
type dual = { attacker : Instr.t list }

type t = {
  id : int;
  prefix : Instr.t list;
  chains : chain list;
  flavor : secret_flavor;
  suffix : Instr.t list;
  dual : dual option;
}

(* Register roles: a0 secret base, a1 buffer base, t0-t3 secret region
   scratch, t4-t6 random-region scratch, s2/s3 dependency chains. *)
let a0 = Reg.of_int 10
let a1 = Reg.of_int 11
let t0 = Reg.of_int 5
let t1 = Reg.of_int 6
let t2 = Reg.of_int 7
let t3 = Reg.of_int 28
let t4 = Reg.of_int 29
let t5 = Reg.of_int 30
let t6 = Reg.of_int 31
let s2 = Reg.of_int 18
let s3 = Reg.of_int 19
let chain_regs = [ s2; s3 ]

(* Extra data-base registers at 4 KiB tag strides: accesses with equal
   offsets from different bases share a DCache set but differ in tag — the
   precondition of the MSHR false-sharing (S5) and eviction (S12) channels. *)
let s4 = Reg.of_int 20
let s5 = Reg.of_int 21
let s6 = Reg.of_int 22
let data_bases = [ a1; s4; s5; s6 ]

let scratch = [ t4; t5; t6 ]

(* --- Random region generation --- *)

let random_buffer_offset rng = 8 * Rng.int rng 512

let secret_scratch = [ t0; t1; t2; t3 ]

let random_instr rng =
  let r () = Rng.pick rng scratch in
  (* Source operands occasionally read the secret-region scratch registers,
     so secret-derived data (and hence request taint) can flow into the
     random regions — the template's "any instruction preceding or following
     the secret-dependent instructions" interaction (Figure 4a). *)
  let src () =
    if Rng.chance rng 0.25 then Rng.pick rng secret_scratch else r ()
  in
  let roll = Rng.int rng 100 in
  if roll < 45 then
    (* Plain ALU op. *)
    let op =
      Rng.pick rng
        [ Instr.ADD; Instr.SUB; Instr.XOR; Instr.OR; Instr.AND; Instr.SLT ]
    in
    [ Instr.Rtype (op, r (), src (), src ()) ]
  else if roll < 60 then
    let op = Rng.pick rng [ Instr.ADDI; Instr.XORI; Instr.ANDI; Instr.ORI ] in
    [ Instr.Itype (op, r (), src (), Rng.int rng 1024) ]
  else if roll < 70 then
    let op = if Rng.bool rng then Instr.MUL else Instr.DIVU in
    [ Instr.Rtype (op, r (), src (), src ()) ]
  else if roll < 85 then
    [ Instr.Load (Instr.LD, r (), Rng.pick rng data_bases, random_buffer_offset rng) ]
  else if roll < 95 then
    [ Instr.Store (Instr.SD, src (), Rng.pick rng data_bases, random_buffer_offset rng) ]
  else
    (* Short forward branch over one shadow instruction. *)
    let op = Rng.pick rng [ Instr.BEQ; Instr.BNE; Instr.BLT ] in
    [
      Instr.Branch (op, r (), r (), 8);
      Instr.Itype (Instr.ADDI, r (), r (), 1);
    ]

let random_region rng ~len =
  List.concat (List.init len (fun _ -> random_instr rng))

(* --- Materialization --- *)

let li32 reg v =
  (* Constants used here always fit 32 bits. *)
  Asm.li reg v

let prelude =
  List.concat
    [
      li32 a0 Layout.secret_addr;
      li32 a1 Layout.buffer_base;
      li32 s4 (Int64.add Layout.buffer_base 4096L);
      li32 s5 (Int64.add Layout.buffer_base 8192L);
      li32 s6 (Int64.add Layout.buffer_base 16384L);
      [
        Instr.Itype (Instr.ADDI, s2, Reg.x0, 0);
        Instr.Itype (Instr.ADDI, s3, Reg.x0, 0);
      ];
    ]

let chain_instrs chains =
  List.concat_map
    (fun c -> List.init c.length (fun _ -> Instr.Itype (Instr.ADDI, c.c_reg, c.c_reg, 1)))
    chains

(* Value-neutral timing coupling: delays [target]'s readiness by the chain's
   resolution time without changing its value. *)
let couple chain_reg target =
  [
    Instr.Itype (Instr.ANDI, t3, chain_reg, 0);
    Instr.Rtype (Instr.ADD, target, target, t3);
  ]

let secret_block flavor chains =
  let coupling target =
    match chains with c :: _ -> couple c.c_reg target | [] -> []
  in
  match flavor with
  | Neutral ->
      [ Instr.Load (Instr.LD, t0, a0, 0) ]
      @ coupling t0
      @ [ Instr.Rtype (Instr.XOR, t1, t0, t1); Instr.Rtype (Instr.ADD, t2, t1, t1) ]
  | Stride { stride_log; extra_loads } ->
      [ Instr.Load (Instr.LD, t0, a0, 0) ]
      @ [
          Instr.Itype (Instr.SLLI, t1, t0, stride_log);
          Instr.Rtype (Instr.ADD, t1, t1, a1);
        ]
      @ coupling t1
      @ [ Instr.Load (Instr.LD, t2, t1, 0) ]
      @ List.init extra_loads (fun k -> Instr.Load (Instr.LD, t2, t1, 8 * (k + 1)))
  | Latency { use_div } ->
      [ Instr.Load (Instr.LD, t0, a0, 0) ]
      @ coupling t0
      @ [
          Instr.Lui (t1, 0x7FFF);
          Instr.Rtype (Instr.MUL, t2, t0, t1);
          Instr.Itype (Instr.ADDI, t2, t2, 3);
          (if use_div then Instr.Rtype (Instr.DIV, t3, t1, t2)
           else Instr.Rtype (Instr.MUL, t3, t1, t2));
        ]
  | Gated { body } ->
      let skip = 4 * (List.length body + 1) in
      ([ Instr.Load (Instr.LD, t0, a0, 0) ] @ coupling t0)
      @ [ Instr.Branch (Instr.BEQ, t0, Reg.x0, skip) ]
      @ body

let materialize t ~secret =
  let chain_part = chain_instrs t.chains in
  let block = secret_block t.flavor t.chains in
  let pre = prelude @ t.prefix @ chain_part in
  let secret_lo = List.length pre in
  let secret_hi = secret_lo + List.length block - 1 in
  let instrs = pre @ block @ t.suffix @ [ Asm.halt ] in
  let victim_program =
    Program.make
      ~data:[ (Layout.secret_addr, Int64.of_int secret) ]
      instrs
  in
  let victim =
    {
      Sonar_uarch.Machine.program = victim_program;
      secret_range = Some (secret_lo, secret_hi);
    }
  in
  match t.dual with
  | None -> [| victim |]
  | Some { attacker } ->
      let attacker_program =
        Program.make
          (List.concat [ li32 a1 Layout.attacker_base; attacker; [ Asm.halt ] ])
      in
      [|
        victim;
        { Sonar_uarch.Machine.program = attacker_program; secret_range = None };
      |]

(* --- Random testcases --- *)

let random_flavor rng =
  (* Most random testcases consume the secret value-neutrally; only a
     minority happen to couple it to addresses, latencies or control. *)
  if Rng.chance rng 0.55 then Neutral
  else
  match Rng.int rng 4 with
  | 0 -> Stride { stride_log = 6 + Rng.int rng 7; extra_loads = Rng.int rng 3 }
  | 1 -> Latency { use_div = Rng.chance rng 0.7 }
  | 2 ->
      Gated
        {
          body =
            (if Rng.bool rng then
               [ Instr.Rtype (Instr.DIV, t2, t1, t0) ]
             else
               [
                 Instr.Load (Instr.LD, t2, a1, 8 * Rng.int rng 256);
                 Instr.Load (Instr.LD, t2, a1, 8 * Rng.int rng 256);
               ]);
        }
  | _ ->
      Gated
        {
          body =
            [
              Instr.Itype (Instr.SLLI, t1, t0, 6);
              Instr.Rtype (Instr.ADD, t1, t1, a1);
              Instr.Load (Instr.LD, t2, t1, 2048);
            ];
        }

let random_attacker rng =
  let probe =
    match Rng.int rng 3 with
    | 0 ->
        (* Sweep loads over cache lines. *)
        List.init 6 (fun k -> Instr.Load (Instr.LD, t4, a1, 64 * k))
    | 1 -> [ Instr.Rtype (Instr.DIVU, t4, t5, t6); Instr.Rtype (Instr.MUL, t5, t4, t6) ]
    | _ -> List.init 4 (fun k -> Instr.Store (Instr.SD, t4, a1, 64 * k))
  in
  List.concat (List.init (2 + Rng.int rng 4) (fun _ -> probe))

let random rng ~id ~dual =
  {
    id;
    prefix = random_region rng ~len:(3 + Rng.int rng 6);
    chains =
      List.map (fun r -> { c_reg = r; length = 1 + Rng.int rng 6 }) chain_regs;
    flavor = random_flavor rng;
    suffix = random_region rng ~len:(3 + Rng.int rng 6);
    dual = (if dual then Some { attacker = random_attacker rng } else None);
  }

let size t =
  List.length t.prefix
  + List.fold_left (fun a c -> a + c.length) 0 t.chains
  + List.length t.suffix

let pp fmt t =
  Format.fprintf fmt
    "testcase #%d: prefix %d, chains [%s], suffix %d, flavor %s%s" t.id
    (List.length t.prefix)
    (String.concat ";" (List.map (fun c -> string_of_int c.length) t.chains))
    (List.length t.suffix)
    (match t.flavor with
    | Neutral -> "neutral"
    | Stride _ -> "stride"
    | Latency _ -> "latency"
    | Gated _ -> "gated")
    (if t.dual <> None then " (dual-core)" else "")
