(** Deterministic pseudo-random number generator (splitmix64).

    Fuzzing campaigns must be reproducible: every random decision flows from
    one seed through this generator, never from [Stdlib.Random] global
    state. [split] derives an independent stream (e.g. one per testcase). *)

type t

val create : int64 -> t
val split : t -> t
val int64 : t -> int64
val int : t -> int -> int
(** [int t n]: uniform in [0, n); n must be positive. *)

val bool : t -> bool
val chance : t -> float -> bool
(** [chance t p]: true with probability [p]. *)

val pick : t -> 'a list -> 'a
(** @raise Invalid_argument on an empty list. *)

val shuffle : t -> 'a list -> 'a list
