(** Testcases following the paper's template (Figure 4).

    A testcase is a random prefix, explicit dependency chains (the directed
    mutation's knobs), a secret-dependent region, and a random suffix; the
    dual-core variant adds an attacker program for the second core. The
    secret is a single bit stored at {!Layout.secret_addr}; materialising the
    testcase for secret 0 and 1 yields the two programs whose commit timing
    the detector compares.

    Dependency chains: a chain of [addi r, r, 1] instructions placed between
    prefix and secret region. The chain's register is coupled into the
    secret region's address computation through a value-neutral gadget
    ([andi z, r, 0; add addr, addr, z]), so chain length shifts {e when} the
    secret-dependent request becomes valid without changing {e what} it
    accesses — exactly the monotonic knob §6.2.1 requires. *)

type secret_flavor =
  | Neutral
      (** the secret is loaded and consumed value-neutrally: architectural
          and micro-architectural behaviour are secret-independent. Most
          random testcases land here — which is why only a small share of
          triggered contentions exposes timing differences (§8.3.2). *)
  | Stride of { stride_log : int; extra_loads : int }
      (** access [buffer + secret << stride_log] (+ extra sequential loads) *)
  | Latency of { use_div : bool }
      (** a divide (or multiply) whose operand, and hence latency, depends
          on the secret *)
  | Gated of { body : Sonar_isa.Instr.t list }
      (** [body] executes only when the secret bit is 1 *)

type chain = { c_reg : Sonar_isa.Reg.t; length : int }

type dual = { attacker : Sonar_isa.Instr.t list }

type t = {
  id : int;
  prefix : Sonar_isa.Instr.t list;
  chains : chain list;
  flavor : secret_flavor;
  suffix : Sonar_isa.Instr.t list;
  dual : dual option;
}

val chain_regs : Sonar_isa.Reg.t list
(** Registers reserved for dependency chains (s2, s3). *)

val materialize : t -> secret:int -> Sonar_uarch.Machine.core_input array
(** Build the runnable core inputs (1 or 2 cores) for a secret bit value.
    Core 0 is the victim; its [secret_range] covers the secret region's
    static instruction indices. *)

val random_instr : Rng.t -> Sonar_isa.Instr.t list
(** One random-region step: usually a single instruction over the scratch
    registers, occasionally a short forward branch plus its shadow. *)

val random : Rng.t -> id:int -> dual:bool -> t
(** A fresh random testcase: 4-14 prefix instructions, two chains of random
    initial length, a random flavor, 4-14 suffix instructions. *)

val size : t -> int
(** Total generated instructions (prefix + chains + suffix). *)

val pp : Format.formatter -> t -> unit
