type strategy = {
  retention : bool;
  selection : bool;
  directed_mutation : bool;
}

let full_strategy = { retention = true; selection = true; directed_mutation = true }
let random_strategy = { retention = false; selection = false; directed_mutation = false }

type series_point = {
  iteration : int;
  coverage : float;
  timing_diffs : int;
  corpus_size : int;
}

type outcome = {
  series : series_point list;
  final_coverage : float;
  final_timing_diffs : int;
  testcases_with_diffs : int;
  contentions_triggered_testcases : int;
  single_valid_share_first20 : float;
  reports : (int * Detector.report) list;
}

let run ?(seed = 1L) ?(dual = false) ?max_cycles cfg strategy ~iterations =
  let rng = Rng.create seed in
  let corpus = Corpus.create () in
  let mstate = Mutation.create_state () in
  let coverage = Coverage.create () in
  let timing_diffs = ref 0 in
  let tcs_with_diffs = ref 0 in
  let tcs_with_contention = ref 0 in
  let series = ref [] in
  let reports = ref [] in
  let sv_weight_20 = ref 0. and total_weight_20 = ref 0. in
  (* Pending directed-mutation feedback: target point and its pre-mutation
     best interval. *)
  let pending_target = ref None in
  for iteration = 1 to iterations do
    let tc =
      let fresh () = Testcase.random rng ~id:iteration ~dual in
      if strategy.selection then begin
        match Corpus.select corpus rng with
        | Some (entry, point) when Rng.chance rng 0.75 ->
            pending_target :=
              Some (point, Corpus.best_interval corpus point);
            Mutation.mutate rng mstate
              ~directed_enabled:strategy.directed_mutation entry.tc
        | Some _ | None ->
            pending_target := None;
            fresh ()
      end
      else if strategy.retention && Corpus.size corpus > 0 && Rng.chance rng 0.8
      then begin
        (* Retention without selection: mutate a random seed. *)
        pending_target := None;
        match Corpus.select corpus rng with
        | Some (entry, _) ->
            Mutation.mutate rng mstate
              ~directed_enabled:strategy.directed_mutation entry.tc
        | None -> fresh ()
      end
      else begin
        pending_target := None;
        fresh ()
      end
    in
    let pair = Executor.execute ?max_cycles cfg tc in
    let intervals = Executor.min_intervals pair in
    let added = Coverage.add_pair coverage pair in
    if added > 0. then incr tcs_with_contention;
    if iteration = 20 then begin
      total_weight_20 := Coverage.total coverage;
      sv_weight_20 := Coverage.single_valid_weight coverage *. !total_weight_20
    end;
    let report = Detector.detect pair in
    let n_findings = List.length report.Detector.findings in
    if n_findings > 0 then begin
      timing_diffs := !timing_diffs + n_findings;
      incr tcs_with_diffs;
      reports := (iteration, report) :: !reports
    end;
    (* Directed-mutation feedback: did the target interval shrink? *)
    (match !pending_target with
    | Some (point, before) ->
        let after = List.assoc_opt point intervals in
        let improved =
          match (before, after) with
          | Some b, Some a -> a < b
          | None, Some _ -> true
          | _, None -> false
        in
        Mutation.feedback mstate ~improved
    | None -> ());
    if strategy.retention then ignore (Corpus.consider corpus tc ~intervals);
    series :=
      {
        iteration;
        coverage = Coverage.total coverage;
        timing_diffs = !timing_diffs;
        corpus_size = Corpus.size corpus;
      }
      :: !series
  done;
  {
    series = List.rev !series;
    final_coverage = Coverage.total coverage;
    final_timing_diffs = !timing_diffs;
    testcases_with_diffs = !tcs_with_diffs;
    contentions_triggered_testcases = !tcs_with_contention;
    single_valid_share_first20 =
      (if !total_weight_20 = 0. then 0. else !sv_weight_20 /. !total_weight_20);
    reports = List.rev !reports;
  }
