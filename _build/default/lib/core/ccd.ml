open Sonar_uarch

type aligned = {
  position : int;
  instr : Sonar_isa.Instr.t;
  static_index : int;
  cycle0 : int;
  cycle1 : int;
  ccd0 : int;
  ccd1 : int;
}

let key (c : Core_model.commit_record) = c.c_eff.Sonar_isa.Golden.index

let row a0 ~prev0 (b0 : Core_model.commit_record) ~prev1 (b1 : Core_model.commit_record)
    =
  {
    position = a0;
    instr = b0.c_eff.Sonar_isa.Golden.instr;
    static_index = key b0;
    cycle0 = b0.c_cycle;
    cycle1 = b1.c_cycle;
    ccd0 = b0.c_cycle - prev0;
    ccd1 = b1.c_cycle - prev1;
  }

let align commits0 commits1 =
  let a = Array.of_list commits0 in
  let b = Array.of_list commits1 in
  let na = Array.length a and nb = Array.length b in
  (* Common head. *)
  let head = ref 0 in
  while !head < na && !head < nb && key a.(!head) = key b.(!head) do
    incr head
  done;
  (* Common tail, not overlapping the head. *)
  let tail = ref 0 in
  while
    !tail < na - !head
    && !tail < nb - !head
    && key a.(na - 1 - !tail) = key b.(nb - 1 - !tail)
  do
    incr tail
  done;
  let prev0 i = if i = 0 then 0 else a.(i - 1).c_cycle in
  let prev1 i = if i = 0 then 0 else b.(i - 1).c_cycle in
  let head_rows =
    List.init !head (fun i -> row i ~prev0:(prev0 i) a.(i) ~prev1:(prev1 i) b.(i))
  in
  let tail_rows =
    List.init !tail (fun j ->
        let i = na - !tail + j and i' = nb - !tail + j in
        row i ~prev0:(prev0 i) a.(i) ~prev1:(prev1 i') b.(i'))
  in
  let diverged = !head + !tail < max na nb in
  (head_rows @ tail_rows, diverged)

let ccd_affected rows = List.filter (fun r -> r.ccd0 <> r.ccd1) rows
let timing_diff_count rows =
  List.length (List.filter (fun r -> r.cycle0 <> r.cycle1) rows)
