(** Testcase mutation operators (§6.2).

    {b Adaptive directed mutation}: grow or shrink a dependency chain's head
    by one or two instructions. The mutation state remembers the last
    direction; {!feedback} keeps it when the previous mutation reduced the
    target interval and flips it otherwise — the paper's convergence
    accelerator for [reqsIntvl].

    {b Data-similarity mutation}: pick two memory instructions in the random
    regions and align their address offsets (same 8-byte word, same cache
    line, or same cache set) — the condition persistent contentions need.

    {b Random mutation}: insert/delete/replace a random-region instruction
    (the undirected baseline that every fuzzer has). *)

type direction = Grow | Shrink

type state = { mutable dir : direction }

val create_state : unit -> state

val directed : Rng.t -> state -> Testcase.t -> Testcase.t
(** Adjust a random chain's length along the current direction (clamped to
    [0, 64]). *)

val feedback : state -> improved:bool -> unit

val random_edit : Rng.t -> Testcase.t -> Testcase.t
val enhance_similarity : Rng.t -> Testcase.t -> Testcase.t

val mutate :
  Rng.t -> state -> directed_enabled:bool -> Testcase.t -> Testcase.t
(** The fuzzer's composite mutation: directed chain adjustment (when
    enabled) plus occasionally a random edit or a similarity boost. *)
