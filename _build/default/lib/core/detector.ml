open Sonar_uarch

type finding = {
  core : int;
  position : int;
  instr : Sonar_isa.Instr.t;
  static_index : int;
  ccd0 : int;
  ccd1 : int;
  commit_delta : int;
}

type report = {
  findings : finding list;
  raw_timing_diffs : int;
  state_diffs : (string * string) list;
  diverged : bool;
  total_delta : int;
}

let detect (pair : Executor.pair) =
  let n_cores = Array.length pair.run0.Machine.cores in
  let findings = ref [] in
  let raw = ref 0 in
  let diverged = ref false in
  for core = 0 to n_cores - 1 do
    let rows, d =
      Ccd.align pair.run0.Machine.cores.(core).commits
        pair.run1.Machine.cores.(core).commits
    in
    diverged := !diverged || d;
    raw := !raw + Ccd.timing_diff_count rows;
    List.iter
      (fun (r : Ccd.aligned) ->
        findings :=
          {
            core;
            position = r.position;
            instr = r.instr;
            static_index = r.static_index;
            ccd0 = r.ccd0;
            ccd1 = r.ccd1;
            commit_delta = r.cycle1 - r.cycle0;
          }
          :: !findings)
      (Ccd.ccd_affected rows)
  done;
  {
    findings = List.rev !findings;
    raw_timing_diffs = !raw;
    state_diffs =
      Cpoint.diff_snapshots pair.run0.Machine.snapshots pair.run1.Machine.snapshots;
    diverged = !diverged;
    total_delta = pair.run1.Machine.cycles - pair.run0.Machine.cycles;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>CCD-affected instructions: %d (raw timing diffs %d, run-length delta %d%s)@,"
    (List.length r.findings) r.raw_timing_diffs r.total_delta
    (if r.diverged then ", traces diverged" else "");
  List.iter
    (fun f ->
      Format.fprintf fmt "  core%d @%d %a: CCD %d -> %d (commit %+d)@," f.core
        f.position Sonar_isa.Instr.pp f.instr f.ccd0 f.ccd1 f.commit_delta)
    r.findings;
  Format.fprintf fmt "contention-state discrepancies: %d@,"
    (List.length r.state_diffs);
  List.iter
    (fun (p, d) -> Format.fprintf fmt "  %s: %s@," p d)
    r.state_diffs;
  Format.fprintf fmt "@]"
