type entry = {
  tc : Testcase.t;
  intervals : (string * int) list;
}

type t = {
  mutable entries : entry list;  (* newest first *)
  best : (string, int) Hashtbl.t;
  attempts : (string, int) Hashtbl.t;
      (* selections of a target since its best last improved; stuck targets
         (e.g. structurally impossible pairs) lose selection weight *)
  max_entries : int;
}

let create ?(max_entries = 256) () =
  {
    entries = [];
    best = Hashtbl.create 64;
    attempts = Hashtbl.create 64;
    max_entries;
  }

let consider t tc ~intervals =
  let improves =
    List.exists
      (fun (point, v) ->
        match Hashtbl.find_opt t.best point with
        | Some best -> v < best
        | None -> true)
      intervals
  in
  if improves then begin
    List.iter
      (fun (point, v) ->
        match Hashtbl.find_opt t.best point with
        | Some best when best <= v -> ()
        | Some _ | None ->
            Hashtbl.replace t.best point v;
            Hashtbl.remove t.attempts point)
      intervals;
    t.entries <- { tc; intervals } :: t.entries;
    if List.length t.entries > t.max_entries then begin
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: rest -> x :: take (n - 1) rest
      in
      t.entries <- take t.max_entries t.entries
    end;
    true
  end
  else false

let select t rng =
  (* Points with smaller non-zero best intervals are more likely to be
     chosen (weighted sampling, §6.2.1 "more likely to be selected"). *)
  let candidates =
    Hashtbl.fold (fun point v acc -> if v > 0 then (point, v) :: acc else acc) t.best []
    |> List.sort compare
  in
  let target =
    match candidates with
    | [] -> None
    | _ ->
        let weight (point, v) =
          let stuck =
            Option.value ~default:0 (Hashtbl.find_opt t.attempts point)
          in
          1. /. (float_of_int ((v * v) + 1) *. (1. +. (float_of_int stuck /. 8.)))
        in
        let total = List.fold_left (fun a c -> a +. weight c) 0. candidates in
        let roll = float_of_int (Rng.int rng 1_000_000) /. 1_000_000. *. total in
        let rec walk acc = function
          | [ last ] -> Some last
          | c :: rest -> if acc +. weight c >= roll then Some c else walk (acc +. weight c) rest
          | [] -> None
        in
        walk 0. candidates
  in
  match target with
  | None -> None
  | Some (point, v) -> (
      Hashtbl.replace t.attempts point
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.attempts point));
      let achievers =
        List.filter
          (fun e ->
            match List.assoc_opt point e.intervals with
            | Some ev -> ev = v
            | None -> false)
          t.entries
      in
      match achievers with
      | [] -> (
          (* Fall back to any seed if bookkeeping and entries diverged
             (e.g. after eviction). *)
          match t.entries with
          | [] -> None
          | es -> Some (Rng.pick rng es, point))
      | es -> Some (Rng.pick rng es, point))

let best_interval t point = Hashtbl.find_opt t.best point
let size t = List.length t.entries
