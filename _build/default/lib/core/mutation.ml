open Sonar_isa

type direction = Grow | Shrink
type state = { mutable dir : direction }

let create_state () = { dir = Shrink }

let adjust_chain rng dir (tc : Testcase.t) =
  if tc.chains = [] then tc
  else begin
    let idx = Rng.int rng (List.length tc.chains) in
    let step = 1 + Rng.int rng 2 in
    let chains =
      List.mapi
        (fun i (c : Testcase.chain) ->
          if i = idx then
            let length =
              match dir with
              | Grow -> min 64 (c.length + step)
              | Shrink -> max 0 (c.length - step)
            in
            { c with length }
          else c)
        tc.chains
    in
    { tc with chains }
  end

let directed rng state tc = adjust_chain rng state.dir tc

let feedback state ~improved =
  if not improved then
    state.dir <- (match state.dir with Grow -> Shrink | Shrink -> Grow)

(* --- Random edits over the prefix/suffix regions --- *)

(* Insert-biased: retained seeds grow richer across generations (up to a
   cap), compounding the in-flight contention mass guided fuzzing builds. *)
let max_region_len = 96

let edit_region rng region =
  let roll = Rng.int rng 100 in
  if roll < 45 && List.length region < max_region_len then begin
    (* Insert at a random position. *)
    let pos = Rng.int rng (List.length region + 1) in
    let rec go i = function
      | rest when i = pos -> Testcase.random_instr rng @ rest
      | [] -> Testcase.random_instr rng
      | x :: rest -> x :: go (i + 1) rest
    in
    go 0 region
  end
  else if roll < 60 && region <> [] then begin
    (* Delete one instruction. *)
    let pos = Rng.int rng (List.length region) in
    List.filteri (fun i _ -> i <> pos) region
  end
  else if region <> [] then begin
    (* Replace one instruction. *)
    let pos = Rng.int rng (List.length region) in
    List.concat
      (List.mapi
         (fun i x -> if i = pos then Testcase.random_instr rng else [ x ])
         region)
  end
  else Testcase.random_instr rng

let random_edit rng (tc : Testcase.t) =
  if Rng.bool rng then { tc with prefix = edit_region rng tc.prefix }
  else { tc with suffix = edit_region rng tc.suffix }

(* --- Data-similarity mutation --- *)

let mem_offsets region =
  List.filteri
    (fun _ i -> match i with Instr.Load _ | Instr.Store _ -> true | _ -> false)
    region

let set_offset instr off =
  match instr with
  | Instr.Load (op, rd, base, _) -> Instr.Load (op, rd, base, off)
  | Instr.Store (op, data, base, _) -> Instr.Store (op, data, base, off)
  | other -> other

let similar_offset rng off =
  match Rng.int rng 3 with
  | 0 -> off  (* same word: same set, and same line when bases agree *)
  | 1 -> off land lnot 63  (* same cache line start *)
  | _ -> (off land lnot 63) + (64 * (Rng.int rng 3 - 1))  (* adjacent set *)

let enhance_similarity rng (tc : Testcase.t) =
  let region, set_region =
    if Rng.bool rng then (tc.prefix, fun p -> { tc with prefix = p })
    else (tc.suffix, fun s -> { tc with suffix = s })
  in
  let mems = mem_offsets region in
  if List.length mems < 2 then tc
  else begin
    let donor = Rng.pick rng mems in
    let donor_off =
      match donor with
      | Instr.Load (_, _, _, o) | Instr.Store (_, _, _, o) -> o
      | _ -> 0
    in
    let target_pos =
      let mem_positions =
        List.filteri (fun _ _ -> true) region
        |> List.mapi (fun i x -> (i, x))
        |> List.filter (fun (_, x) ->
               match x with Instr.Load _ | Instr.Store _ -> true | _ -> false)
        |> List.map fst
      in
      Rng.pick rng mem_positions
    in
    (* Offsets stay within one 4 KiB base window (see Testcase.data_bases). *)
    let new_off = max 0 (min 4088 (similar_offset rng donor_off)) in
    set_region
      (List.mapi
         (fun i x -> if i = target_pos then set_offset x new_off else x)
         region)
  end

let mutate rng state ~directed_enabled tc =
  let tc = if directed_enabled then directed rng state tc else random_edit rng tc in
  let tc = if Rng.chance rng 0.6 then random_edit rng tc else tc in
  if Rng.chance rng 0.25 then enhance_similarity rng tc else tc
