(** Meltdown-style exploitability analysis (§7.3, §8.5, Listing 1).

    A proof-of-concept reads a protected (machine-mode-only) key bit by bit:
    the faulting access forwards the secret into the transient window
    (BOOM's lazy exception handling), where a channel-specific gadget turns
    the bit into a contention-induced timing difference of the whole run.
    A calibration pass with attacker-known bits fixes the decision
    threshold; per-trial noise (random alignment padding plus measurement
    jitter) models the interference a real attacker faces.

    On NutShell the fault squashes the pipeline at execute, the gadget
    never runs transiently, and the inference collapses to noise — the
    <2% key-recovery rate the paper reports for S13/S14. *)

type gadget =
  | Cache_probe  (** transient secret-indexed load; probe its line after *)
  | Channel_occupancy
      (** transient secret-gated far jump; its ICache refill occupies the
          interconnect while an attacker load is in flight *)
  | Mshr_block
      (** transient secret-indexed load whose set either collides with the
          attacker's probe in the MSHRs or not *)
  | Port_pressure  (** transient secret-gated divide occupies the divider *)

val gadget_for : string -> gadget option
(** The gadget family used to exploit a channel id; [None] when the paper
    built no PoC for it (S8–S10 were previously known). *)

type poc_result = {
  channel_id : string;
  dut : string;
  trials : int;
  key_bits : int;
  bit_accuracy : float;  (** correctly inferred bits / all bits *)
  key_success_rate : float;  (** trials recovering every bit of the key *)
  mean_margin : float;  (** avg |measurement - threshold|, in cycles *)
  avg_transient_window : float;  (** transient micro-ops actually executed *)
}

val run_poc :
  ?seed:int64 ->
  ?trials:int ->
  ?key_bits:int ->
  ?timer_granularity:int ->
  Sonar_uarch.Config.t ->
  channel_id:string ->
  gadget ->
  poc_result
(** [timer_granularity] models the §8.6 mitigation of restricting clock
    registers: the attacker's measurements (and calibration) are quantised
    to that many cycles. Granularities beyond the channel's timing margin
    collapse bit inference to chance. *)

val default_trials : int
val pp_result : Format.formatter -> poc_result -> unit

(** Exposed for tests: the raw attack program for a gadget/bit. *)
module For_tests : sig
  val program :
    gadget:gadget -> bit_index:int -> bit_value:int -> noise:int ->
    Sonar_isa.Program.t

  val measure :
    Sonar_uarch.Config.t ->
    gadget:gadget -> bit_index:int -> bit_value:int -> noise:int ->
    int * int
  (** (measured cycles, transient micro-ops issued). *)
end
