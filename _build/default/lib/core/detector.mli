(** Dual-differential side-channel detection (§7.1–7.2).

    Combines the CCD differential (which instructions are genuinely
    affected) with the contention-state differential (which contention
    points behaved differently under the two secrets). Together, a CCD
    finding plus the state discrepancies at the points it implicates
    identify and justify a contention side channel (Figure 5). *)

type finding = {
  core : int;
  position : int;  (** commit-order position *)
  instr : Sonar_isa.Instr.t;
  static_index : int;
  ccd0 : int;
  ccd1 : int;
  commit_delta : int;  (** cycle1 - cycle0 *)
}

type report = {
  findings : finding list;  (** CCD-affected instructions, all cores *)
  raw_timing_diffs : int;
      (** instructions whose absolute commit time differs (includes in-order
          propagation the CCD filter removes) *)
  state_diffs : (string * string) list;
      (** per contention point, how its states differ across secrets *)
  diverged : bool;  (** commit traces diverged in the middle *)
  total_delta : int;  (** whole-run cycle-count difference *)
}

val detect : Executor.pair -> report

val pp_report : Format.formatter -> report -> unit
