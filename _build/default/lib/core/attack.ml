open Sonar_isa
open Sonar_uarch

type gadget = Cache_probe | Channel_occupancy | Mshr_block | Port_pressure

let gadget_for = function
  | "S1" | "S2" | "S3" | "S4" -> Some Channel_occupancy
  | "S5" -> Some Mshr_block
  | "S6" | "S7" | "S11" | "S12" -> Some Cache_probe
  | "S13" -> Some Port_pressure
  | "S14" -> Some Channel_occupancy
  | _ -> None

type poc_result = {
  channel_id : string;
  dut : string;
  trials : int;
  key_bits : int;
  bit_accuracy : float;
  key_success_rate : float;
  mean_margin : float;
  avg_transient_window : float;
}

let default_trials = 20

(* Registers (attack programs are hand-rolled, free of the testcase
   conventions). *)
let a0 = Reg.of_int 10
let t0 = Reg.of_int 5
let t1 = Reg.of_int 6
let t2 = Reg.of_int 7
let t3 = Reg.of_int 28
let t4 = Reg.of_int 29
let t5 = Reg.of_int 30
let t6 = Reg.of_int 31
let s3 = Reg.of_int 19
let s7 = Reg.of_int 23

let ld rd base off = Instr.Load (Instr.LD, rd, base, off)
let add rd a b = Instr.Rtype (Instr.ADD, rd, a, b)
let addi rd a imm = Instr.Itype (Instr.ADDI, rd, a, imm)
let slli rd a sh = Instr.Itype (Instr.SLLI, rd, a, sh)
let div rd a b = Instr.Rtype (Instr.DIV, rd, a, b)
let andi rd a imm = Instr.Itype (Instr.ANDI, rd, a, imm)
let beqz r off = Instr.Branch (Instr.BEQ, r, Reg.x0, off)
let jal off = Instr.Jal (Reg.x0, off)
let nop = Asm.nop

let kernel_base = fst Layout.kernel_range

(* Listing 1, specialised per gadget.

   The program shape is identical for every bit (the bit offset comes from
   one [addi]) so one threshold calibrates all bits. The delay block
   (line 4 of Listing 1) is an older long-latency divide: the faulting load
   cannot retire past it, which holds the transient window open after the
   secret has been forwarded — without it the squash lands the same cycle
   the gadget becomes ready. [noise] varies the dependency depth of a
   fixed-size filler block, modelling alignment-preserving interference. *)
(* Returns the program plus the static index of the measured instruction
   (the attacker's rdcycle pair sits around it); [None] measures the whole
   run. *)
let attack_program ~gadget ~bit_index ~noise =
  let secret_word = Int64.add kernel_base (Int64.of_int (8 * bit_index)) in
  (* The gadget/probe lines are placed in a cache set far from the one the
     faulting load's own refill occupies, so the kernel line's MSHR cannot
     shadow the transient gadget (attackers likewise relocate their probe
     buffers per target offset). *)
  let kernel_set = bit_index / 8 mod 64 in
  let probe_off = (kernel_set + 32) mod 64 * 64 in
  let filler =
    List.init 3 (fun k ->
        if k < noise then addi s3 s3 1 else nop)
  in
  let delay_block =
    (* Two chained divides: the fault cannot retire for ~120 cycles, keeping
       the transient window open even when the faulting load's own refill is
       slowed by MSHR conflicts with the gadget lines. *)
    let s8 = Reg.of_int 24 and s9 = Reg.of_int 25 in
    Asm.li t1 0x7FFF000L
    @ [
        addi t3 Reg.x0 3;
        div s8 t1 t3;
        andi s9 s8 7;
        addi s9 s9 3;
        div s8 t1 s9;
      ]
  in
  let prelude =
    Asm.li a0 kernel_base
    @ [ addi a0 a0 (8 * bit_index) ]
    @ Asm.li t5 Layout.cold_base
    @ filler @ delay_block
  in
  let body, measure_off =
    match gadget with
    | Cache_probe ->
        (* Transient: load at cold_base + secret<<12; architectural re-run
           (suppressed fault leaves t0 = 0) touches cold_base + 0. The probe
           then reads cold_base + 4096: warm iff the transient secret was 1.
           The dependent guard chain keeps the probe itself out of the
           transient window — only the gadget load runs transiently. *)
        [
          ld t2 t5 192;  (* line 5: contender in flight (set 3) *)
          ld t0 a0 0;  (* line 6: faulting access *)
          slli t1 t0 12;
          addi t1 t1 probe_off;
          add t1 t1 t5;
          ld t3 t1 0;
        ]
        @ List.init 70 (fun _ -> addi s7 s7 1)
          (* probe guard: an independent chain long enough that the probe
             issues only after the fault has retired and squashed *)
        @ Asm.li t6 (Int64.add Layout.cold_base (Int64.of_int (4096 + probe_off)))
        @ [ andi t2 s7 0; add t6 t6 t2 ]
        |> fun head -> (head @ [ ld t4 t6 0; add t2 t4 t4 ], Some (List.length head))
    | Channel_occupancy ->
        (* Transient: a secret-gated far jump adds an ICache refill that
           contends with the contender load's response. *)
        (* The contender's address resolves through a short chain so its
           refill response becomes ready just after the transient jump's
           ICache refill — the grant then goes to the ICache read and the
           contender slips by the transfer beats. *)
        List.init 12 (fun _ -> addi s7 s7 1)
        @ [
            andi t2 s7 0;
            add t2 t2 t5;
            ld t2 t2 0;  (* contender: cold DCache read *)
            ld t0 a0 0;  (* faulting access *)
            beqz t0 (4 * 200);
            jal (4 * 100);
          ]
        @ List.init 200 (fun _ -> nop)
        @ [ add t4 t2 t2 ],
        None  (* whole-run time: the transient path's ICache refill both
                 contends with the in-flight contender and warms (or not)
                 the line the recovered path needs *)
    | Mshr_block ->
        (* Transient: load at cold_base + secret<<7 — set 0 (collides with
           the probe's set) or set 2. *)
        [
          ld t0 a0 0;
          slli t1 t0 7;
          addi t1 t1 probe_off;
          add t1 t1 t5;
          ld t3 t1 0;
        ]
        @ List.init 15 (fun _ -> addi s7 s7 1)
          (* probe guard: short, so the probe arrives while the transient
             refill still occupies its MSHR *)
        @ Asm.li t6
            (Int64.add Layout.cold_base (Int64.of_int (4096 + probe_off)))
        @ [ andi t2 s7 0; add t6 t6 t2 ]
        |> fun head -> (head @ [ ld t4 t6 0; add t2 t4 t4 ], Some (List.length head))
    | Port_pressure ->
        (* Transient: a secret-gated divide occupies the (M)DU; the
           architectural divide afterwards waits for it. *)
        ( [
            Instr.Lui (t1, 0x7FFF);
            addi s3 Reg.x0 3;
            ld t0 a0 0;
            beqz t0 8;
            div t3 t1 s3;
            div t4 t1 s3;
            add t2 t4 t4;
          ],
          Some 5 )
  in
  ( Program.make
      ~data:[ (secret_word, 0L) ]  (* overwritten by the key below *)
      ~start_priv:Program.User
      ~protected_range:(Some Layout.kernel_range)
      (prelude @ body @ [ Asm.halt ]),
    Option.map (fun off -> List.length prelude + off) measure_off )

let run_once cfg ~gadget ~bit_index ~bit_value ~noise =
  let program, measure_index = attack_program ~gadget ~bit_index ~noise in
  let secret_word = Int64.add kernel_base (Int64.of_int (8 * bit_index)) in
  let program =
    { program with Program.data = [ (secret_word, Int64.of_int bit_value) ] }
  in
  let r = Machine.run_single cfg program in
  let measured =
    match measure_index with
    | None -> r.cycles
    | Some idx -> (
        match
          List.find_opt
            (fun (c : Core_model.commit_record) ->
              c.c_eff.Sonar_isa.Golden.index = idx)
            r.cores.(0).commits
        with
        | Some c -> c.c_cycle
        | None -> r.cycles)
  in
  (measured, r.cores.(0).transient_executed)

(* Measurement noise: small jitter every run, plus rare large outliers
   (interrupts, contention from unrelated activity). *)
let jitter rng =
  let base = Rng.int rng 5 - 2 in
  if Rng.chance rng 0.02 then
    base + ((10 + Rng.int rng 30) * if Rng.bool rng then 1 else -1)
  else base

let run_poc ?(seed = 99L) ?(trials = default_trials) ?(key_bits = 128)
    ?(timer_granularity = 1) cfg ~channel_id gadget =
  (* Timer coarsening (§8.6): the attacker's clock reads are quantised to
     [timer_granularity] cycles, the mitigation of restricting clock
     registers. Granularities beyond the channel's margin collapse the
     inference to chance. *)
  let quantise v = v / timer_granularity * timer_granularity in
  let rng = Rng.create seed in
  let key = Array.init key_bits (fun _ -> Rng.int rng 2) in
  (* Per-bit calibration with attacker-planted values: baseline timings
     depend on which kernel line the bit lives in, so the attacker
     calibrates each offset (as cache attackers calibrate each slot). *)
  let calib = Hashtbl.create 16 in
  let threshold_for i =
    match Hashtbl.find_opt calib i with
    | Some t -> t
    | None ->
        let cal0, _ = run_once cfg ~gadget ~bit_index:i ~bit_value:0 ~noise:1 in
        let cal1, _ = run_once cfg ~gadget ~bit_index:i ~bit_value:1 ~noise:1 in
        let cal0 = quantise cal0 and cal1 = quantise cal1 in
        let t = (float_of_int (cal0 + cal1) /. 2., cal1 >= cal0) in
        Hashtbl.replace calib i t;
        t
  in
  let correct_bits = ref 0 in
  let perfect_keys = ref 0 in
  let margin_sum = ref 0. in
  let window_sum = ref 0 in
  let runs = ref 0 in
  for _trial = 1 to trials do
    let all_ok = ref true in
    Array.iteri
      (fun i bit ->
        let threshold, one_is_slower = threshold_for i in
        let noise = Rng.int rng 4 in
        let cycles, window = run_once cfg ~gadget ~bit_index:i ~bit_value:bit ~noise in
        let measure = float_of_int (quantise (cycles + jitter rng)) in
        let inferred =
          if one_is_slower then if measure >= threshold then 1 else 0
          else if measure <= threshold then 1
          else 0
        in
        margin_sum := !margin_sum +. Float.abs (measure -. threshold);
        window_sum := !window_sum + window;
        incr runs;
        if inferred = bit then incr correct_bits else all_ok := false)
      key;
    if !all_ok then incr perfect_keys
  done;
  let total_bits = trials * key_bits in
  {
    channel_id;
    dut = cfg.Config.name;
    trials;
    key_bits;
    bit_accuracy = float_of_int !correct_bits /. float_of_int total_bits;
    key_success_rate = float_of_int !perfect_keys /. float_of_int trials;
    mean_margin = !margin_sum /. float_of_int !runs;
    avg_transient_window = float_of_int !window_sum /. float_of_int !runs;
  }

let pp_result fmt r =
  Format.fprintf fmt
    "%-4s on %-8s: bit accuracy %5.1f%%, key success %5.1f%% (%d trials x \
     %d bits, margin %.1f cycles, transient window %.1f uops)"
    r.channel_id r.dut (100. *. r.bit_accuracy) (100. *. r.key_success_rate)
    r.trials r.key_bits r.mean_margin r.avg_transient_window

(* Exposed for tests and debugging. *)
module For_tests = struct
  let program ~gadget ~bit_index ~bit_value ~noise =
    let p, _ = attack_program ~gadget ~bit_index ~noise in
    let secret_word = Int64.add kernel_base (Int64.of_int (8 * bit_index)) in
    { p with Sonar_isa.Program.data = [ (secret_word, Int64.of_int bit_value) ] }

  let measure = run_once
end
