(** Commit-cycle-difference (CCD) metric and trace alignment (§7.1).

    An instruction's commit time can shift either because a side channel
    affected it or because an earlier instruction's delay propagated through
    in-order commit. The CCD — the distance between an instruction's commit
    cycle and its predecessor's — filters the propagation: if only in-order
    commit is at work, CCDs are identical across secret values; a CCD that
    changes with the secret marks an instruction {e genuinely} affected.

    Secret-dependent control flow can make the two commit traces diverge in
    the middle; alignment matches the common head forward and the common
    tail backward (suffix-region instructions, where contention effects
    surface, stay comparable). *)

type aligned = {
  position : int;  (** commit-order position in run 0 *)
  instr : Sonar_isa.Instr.t;
  static_index : int;
  cycle0 : int;
  cycle1 : int;
  ccd0 : int;  (** commit distance to the preceding commit, secret = 0 *)
  ccd1 : int;
}

val align :
  Sonar_uarch.Core_model.commit_record list ->
  Sonar_uarch.Core_model.commit_record list ->
  aligned list * bool
(** [(rows, diverged)]: [diverged] is true when the traces differ in the
    middle (head + tail alignment dropped some instructions). *)

val ccd_affected : aligned list -> aligned list
(** Rows whose CCD changes with the secret — the instructions genuinely
    affected by a side channel. *)

val timing_diff_count : aligned list -> int
(** Rows with any commit-time difference (including in-order propagation). *)
