(** Textual emission of circuits in the format accepted by {!Parser}. *)

val expr_to_string : Expr.t -> string
val stmt_to_string : Stmt.t -> string
val module_to_string : Fmodule.t -> string
val circuit_to_string : Circuit.t -> string
