(** SpecDoctor-style instrumentation baseline (§8.3.4).

    SpecDoctor instruments a module by analysing every pair of statements to
    decide which state elements feed its coverage monitors, which is O(n²) in
    the number of FIRRTL statements of a module. This module reproduces that
    cost model faithfully enough to compare scaling against Sonar's O(n)
    pass: for each statement it scans the whole module for def-use partners
    before deciding whether to tap the signal.

    The output taps every register through a parity-coverage output, which is
    what SpecDoctor's RTL-state hashing amounts to structurally. *)

type result = {
  circuit : Circuit.t;
  stmts_added : int;
  pair_checks : int;  (** number of statement pairs inspected — Θ(n²) *)
}

val instrument_module : Fmodule.t -> Fmodule.t * int * int
(** Returns (module', statements added, pair checks performed). *)

val instrument : Circuit.t -> result
