(** Top-level circuits: a named collection of modules.

    Hierarchy is pre-flattened (as in lowered FIRRTL after the
    lower-to-ground-types and inline passes); the analyses therefore run
    module by module. *)

type t = { name : string; modules : Fmodule.t list }

val make : string -> Fmodule.t list -> t
val find_module : t -> string -> Fmodule.t option
val module_count : t -> int

val stmt_count : t -> int
(** Total statements over all modules — the "lines of IR" measure used to
    report instrumentation code-size overhead (paper Table 2). *)

val map_modules : (Fmodule.t -> Fmodule.t) -> t -> t
val pp : Format.formatter -> t -> unit
