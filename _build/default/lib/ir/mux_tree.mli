(** Bottom-up MUX-cascade tracing — contention-point identification (§5.1).

    A contention point is the root of a maximal tree of cascaded 2:1 MUXes.
    Starting from each MUX that is not itself consumed in the [tval]/[fval]
    position of another MUX, the trace descends through [tval]/[fval] operands
    (directly nested MUXes, or references to signals whose definition is a
    MUX), collecting:

    - the {e requests}: the leaf expressions of the cascade tree;
    - the {e select signals}: every [sel] expression's referenced names;
    - the {e output}: the signal the root MUX drives.

    MUXes appearing in a [sel] position are not part of the cascade — they
    root their own trees (select computation is control, not data routing).

    Counting every 2:1 MUX instead (the naive strategy of Figure 6) is
    provided by {!naive_mux_count}. *)

type point = {
  id : string;  (** unique: ["<module>.<output>"] (plus index if embedded) *)
  module_name : string;
  component : Component.t;
  output : string;  (** signal driven by the root MUX *)
  selects : string list;  (** names referenced by select expressions *)
  requests : Expr.t list;  (** leaf expressions of the cascade tree *)
  depth : int;  (** maximal cascade depth (1 for a lone 2:1 MUX) *)
  absorbed_muxes : int;  (** 2:1 MUXes merged into this point's tree *)
}

val points_of_module : Fmodule.t -> point list
(** All contention points of a module, in definition order. Tracing through
    named signals is cycle-safe (combinational loops terminate the trace). *)

val naive_mux_count : Fmodule.t -> int
(** Total number of 2:1 MUX nodes in the module (Figure 6's baseline). *)

val request_count : point -> int
val pp_point : Format.formatter -> point -> unit
