exception Error of string

type state = { mutable tokens : Lexer.token list }

let fail msg = raise (Error msg)

let peek st = match st.tokens with [] -> Lexer.Eof | t :: _ -> t

let advance st =
  match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let token_str t = Format.asprintf "%a" Lexer.pp_token t

let expect st tok what =
  let got = peek st in
  if got = tok then advance st
  else fail (Printf.sprintf "expected %s, got %s" what (token_str got))

let expect_ident st what =
  match peek st with
  | Lexer.Ident s ->
      advance st;
      s
  | t -> fail (Printf.sprintf "expected %s (identifier), got %s" what (token_str t))

let expect_int st what =
  match peek st with
  | Lexer.Int v ->
      advance st;
      v
  | t -> fail (Printf.sprintf "expected %s (integer), got %s" what (token_str t))

let expect_keyword st kw =
  match peek st with
  | Lexer.Ident s when String.equal s kw -> advance st
  | t -> fail (Printf.sprintf "expected keyword %s, got %s" kw (token_str t))

(* "shl" -> needs one static int parameter, etc. *)
let primop_of_name name params =
  let open Expr in
  match (name, params) with
  | "add", [] -> Some Add
  | "sub", [] -> Some Sub
  | "and", [] -> Some And
  | "or", [] -> Some Or
  | "xor", [] -> Some Xor
  | "not", [] -> Some Not
  | "eq", [] -> Some Eq
  | "neq", [] -> Some Neq
  | "lt", [] -> Some Lt
  | "leq", [] -> Some Leq
  | "gt", [] -> Some Gt
  | "geq", [] -> Some Geq
  | "cat", [] -> Some Cat
  | "shl", [ n ] -> Some (Shl n)
  | "shr", [ n ] -> Some (Shr n)
  | "pad", [ n ] -> Some (Pad n)
  | "bits", [ hi; lo ] -> Some (Bits (hi, lo))
  | _ -> None

let parse_type st =
  expect_keyword st "UInt";
  expect st Lexer.Langle "<";
  let w = Int64.to_int (expect_int st "width") in
  expect st Lexer.Rangle ">";
  w

let rec parse_expr_st st =
  match peek st with
  | Lexer.Int _ -> fail "bare integers are not expressions; use UInt<w>(v)"
  | Lexer.Ident "mux" ->
      advance st;
      expect st Lexer.Lparen "(";
      let sel = parse_expr_st st in
      expect st Lexer.Comma ",";
      let tval = parse_expr_st st in
      expect st Lexer.Comma ",";
      let fval = parse_expr_st st in
      expect st Lexer.Rparen ")";
      Expr.mux sel tval fval
  | Lexer.Ident "UInt" ->
      advance st;
      expect st Lexer.Langle "<";
      let w = Int64.to_int (expect_int st "width") in
      expect st Lexer.Rangle ">";
      expect st Lexer.Lparen "(";
      let v = expect_int st "literal value" in
      expect st Lexer.Rparen ")";
      Expr.lit ~width:w v
  | Lexer.Ident name -> (
      advance st;
      (* Either a primop application or a plain reference. *)
      let params =
        if peek st = Lexer.Langle then begin
          advance st;
          let p0 = Int64.to_int (expect_int st "static parameter") in
          let ps =
            if peek st = Lexer.Comma then begin
              advance st;
              [ p0; Int64.to_int (expect_int st "static parameter") ]
            end
            else [ p0 ]
          in
          expect st Lexer.Rangle ">";
          Some ps
        end
        else None
      in
      match (params, peek st) with
      | None, Lexer.Lparen -> (
          match primop_of_name name [] with
          | Some op -> parse_prim_args st op
          | None -> fail (Printf.sprintf "unknown primitive operator %s" name))
      | Some ps, Lexer.Lparen -> (
          match primop_of_name name ps with
          | Some op -> parse_prim_args st op
          | None ->
              fail (Printf.sprintf "unknown parameterised operator %s" name))
      | Some _, _ -> fail (Printf.sprintf "operator %s lacks arguments" name)
      | None, _ -> Expr.reference name)
  | t -> fail (Printf.sprintf "expected expression, got %s" (token_str t))

and parse_prim_args st op =
  expect st Lexer.Lparen "(";
  let rec args acc =
    let e = parse_expr_st st in
    match peek st with
    | Lexer.Comma ->
        advance st;
        args (e :: acc)
    | Lexer.Rparen ->
        advance st;
        List.rev (e :: acc)
    | t -> fail (Printf.sprintf "expected , or ) in arguments, got %s" (token_str t))
  in
  let args = args [] in
  let expected = Expr.primop_arity op in
  if List.length args <> expected then
    fail
      (Printf.sprintf "operator %s expects %d argument(s), got %d"
         (Expr.primop_name op) expected (List.length args));
  Expr.prim op args

let parse_stmt st =
  match peek st with
  | Lexer.Ident "input" ->
      advance st;
      let name = expect_ident st "input name" in
      expect st Lexer.Colon ":";
      let width = parse_type st in
      Some (Stmt.Input { name; width })
  | Lexer.Ident "output" ->
      advance st;
      let name = expect_ident st "output name" in
      expect st Lexer.Colon ":";
      let width = parse_type st in
      Some (Stmt.Output { name; width })
  | Lexer.Ident "wire" ->
      advance st;
      let name = expect_ident st "wire name" in
      expect st Lexer.Colon ":";
      let width = parse_type st in
      Some (Stmt.Wire { name; width })
  | Lexer.Ident "reg" ->
      advance st;
      let name = expect_ident st "reg name" in
      expect st Lexer.Colon ":";
      let width = parse_type st in
      let reset =
        match peek st with
        | Lexer.Ident "reset" ->
            advance st;
            Some (expect_int st "reset value")
        | _ -> None
      in
      Some (Stmt.Reg { name; width; reset })
  | Lexer.Ident "node" ->
      advance st;
      let name = expect_ident st "node name" in
      expect st Lexer.Equals "=";
      let expr = parse_expr_st st in
      Some (Stmt.Node { name; expr })
  | Lexer.Ident "connect" ->
      advance st;
      let dst = expect_ident st "connect destination" in
      expect st Lexer.Equals "=";
      let src = parse_expr_st st in
      Some (Stmt.Connect { dst; src })
  | _ -> None

let parse_module_body st =
  expect_keyword st "module";
  let name = expect_ident st "module name" in
  expect st Lexer.Lbracket "[";
  let comp_name = expect_ident st "component tag" in
  let component =
    match Component.of_string comp_name with
    | Some c -> c
    | None -> fail (Printf.sprintf "unknown component tag %s" comp_name)
  in
  expect st Lexer.Rbracket "]";
  expect st Lexer.Colon ":";
  let rec stmts acc =
    match parse_stmt st with Some s -> stmts (s :: acc) | None -> List.rev acc
  in
  Fmodule.make ~component name (stmts [])

let parse input =
  let st = { tokens = Lexer.tokenize input } in
  expect_keyword st "circuit";
  let name = expect_ident st "circuit name" in
  expect st Lexer.Colon ":";
  let rec modules acc =
    match peek st with
    | Lexer.Ident "module" -> modules (parse_module_body st :: acc)
    | Lexer.Eof -> List.rev acc
    | t -> fail (Printf.sprintf "expected module or end of input, got %s" (token_str t))
  in
  Circuit.make name (modules [])

let parse_expr input =
  let st = { tokens = Lexer.tokenize input } in
  let e = parse_expr_st st in
  match peek st with
  | Lexer.Eof -> e
  | t -> fail (Printf.sprintf "trailing input after expression: %s" (token_str t))

let parse_module input =
  let st = { tokens = Lexer.tokenize input } in
  let m = parse_module_body st in
  match peek st with
  | Lexer.Eof -> m
  | t -> fail (Printf.sprintf "trailing input after module: %s" (token_str t))
