(** Coarse processor-component classification of circuit modules.

    The paper's Figure 7 reports contention points grouped by the pipeline
    component the enclosing module belongs to (frontend, ROB, LSU, execution,
    peripheral bus, other). Netlist generators tag every module with one of
    these, and the analyses aggregate per component. *)

type t =
  | Frontend
  | Rob
  | Lsu
  | Exec
  | Bus
  | Other

val all : t list
(** Every component, in the order used by reports. *)

val to_string : t -> string

val of_string : string -> t option
(** Inverse of {!to_string}; [None] for unknown tags. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

val compare : t -> t -> int
