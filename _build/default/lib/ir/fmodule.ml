type t = {
  name : string;
  component : Component.t;
  stmts : Stmt.t list;
}

let make ?(component = Component.Other) name stmts = { name; component; stmts }

let signals m =
  List.filter_map
    (fun s ->
      match Stmt.declared_name s with
      | Some n -> Some (n, Option.value ~default:0 (Stmt.declared_width s))
      | None -> None)
    m.stmts

let inputs m =
  List.filter_map
    (function Stmt.Input { name; width } -> Some (name, width) | _ -> None)
    m.stmts

let outputs m =
  List.filter_map
    (function Stmt.Output { name; width } -> Some (name, width) | _ -> None)
    m.stmts

let is_register m =
  let regs = Hashtbl.create 16 in
  List.iter
    (function Stmt.Reg { name; _ } -> Hashtbl.replace regs name () | _ -> ())
    m.stmts;
  fun name -> Hashtbl.mem regs name

let definitions m =
  let reg = is_register m in
  let defs = Hashtbl.create 64 in
  List.iter
    (function
      | Stmt.Node { name; expr } -> Hashtbl.replace defs name expr
      | Stmt.Connect { dst; src } when not (reg dst) -> Hashtbl.replace defs dst src
      | Stmt.Connect _ | Stmt.Input _ | Stmt.Output _ | Stmt.Wire _ | Stmt.Reg _
        ->
          ())
    m.stmts;
  defs

let registers m =
  let reg = is_register m in
  let regs = Hashtbl.create 16 in
  List.iter
    (function
      | Stmt.Reg { name; _ } -> Hashtbl.replace regs name None
      | Stmt.Connect { dst; src } when reg dst -> Hashtbl.replace regs dst (Some src)
      | Stmt.Connect _ | Stmt.Input _ | Stmt.Output _ | Stmt.Wire _ | Stmt.Node _
        ->
          ())
    m.stmts;
  regs

let stmt_count m = List.length m.stmts

let find_decl m name =
  List.find_opt
    (fun s ->
      match Stmt.declared_name s with Some n -> String.equal n name | None -> false)
    m.stmts

let pp fmt m =
  Format.fprintf fmt "@[<v 2>module %s [%a] :@,%a@]" m.name Component.pp
    m.component
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Stmt.pp)
    m.stmts
