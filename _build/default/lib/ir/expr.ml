type primop =
  | Add
  | Sub
  | And
  | Or
  | Xor
  | Not
  | Eq
  | Neq
  | Lt
  | Leq
  | Gt
  | Geq
  | Shl of int
  | Shr of int
  | Bits of int * int
  | Cat
  | Pad of int

type t =
  | Ref of string
  | Lit of { value : int64; width : int }
  | Mux of { sel : t; tval : t; fval : t }
  | Prim of { op : primop; args : t list }

let reference name = Ref name
let lit ?(width = 64) value = Lit { value; width = min width 63 }
let lit_int ?width v = lit ?width (Int64.of_int v)
let mux sel tval fval = Mux { sel; tval; fval }
let prim op args = Prim { op; args }

let is_lit = function Lit _ -> true | Ref _ | Mux _ | Prim _ -> false

let fold_refs f expr init =
  let rec go acc = function
    | Ref name -> f name acc
    | Lit _ -> acc
    | Mux { sel; tval; fval } -> go (go (go acc sel) tval) fval
    | Prim { args; _ } -> List.fold_left go acc args
  in
  go init expr

let refs expr =
  let seen = Hashtbl.create 8 in
  fold_refs
    (fun n acc ->
      if Hashtbl.mem seen n then acc
      else begin
        Hashtbl.add seen n ();
        n :: acc
      end)
    expr []
  |> List.rev

let count_muxes expr =
  let rec go acc = function
    | Ref _ | Lit _ -> acc
    | Mux { sel; tval; fval } -> go (go (go (acc + 1) sel) tval) fval
    | Prim { args; _ } -> List.fold_left go acc args
  in
  go 0 expr

let rec equal a b =
  match (a, b) with
  | Ref x, Ref y -> String.equal x y
  | Lit x, Lit y -> Int64.equal x.value y.value && x.width = y.width
  | Mux x, Mux y -> equal x.sel y.sel && equal x.tval y.tval && equal x.fval y.fval
  | Prim x, Prim y ->
      x.op = y.op
      && List.length x.args = List.length y.args
      && List.for_all2 equal x.args y.args
  | (Ref _ | Lit _ | Mux _ | Prim _), _ -> false

let primop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Not -> "not"
  | Eq -> "eq"
  | Neq -> "neq"
  | Lt -> "lt"
  | Leq -> "leq"
  | Gt -> "gt"
  | Geq -> "geq"
  | Shl n -> Printf.sprintf "shl<%d>" n
  | Shr n -> Printf.sprintf "shr<%d>" n
  | Bits (hi, lo) -> Printf.sprintf "bits<%d,%d>" hi lo
  | Cat -> "cat"
  | Pad n -> Printf.sprintf "pad<%d>" n

let primop_arity = function
  | Not | Shl _ | Shr _ | Bits _ | Pad _ -> 1
  | Add | Sub | And | Or | Xor | Eq | Neq | Lt | Leq | Gt | Geq | Cat -> 2

let pp_primop fmt op = Format.pp_print_string fmt (primop_name op)

let rec pp fmt = function
  | Ref name -> Format.pp_print_string fmt name
  | Lit { value; width } -> Format.fprintf fmt "UInt<%d>(%Ld)" width value
  | Mux { sel; tval; fval } ->
      Format.fprintf fmt "mux(%a, %a, %a)" pp sel pp tval pp fval
  | Prim { op; args } ->
      Format.fprintf fmt "%a(%a)" pp_primop op
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           pp)
        args
