type t =
  | Frontend
  | Rob
  | Lsu
  | Exec
  | Bus
  | Other

let all = [ Frontend; Rob; Lsu; Exec; Bus; Other ]

let to_string = function
  | Frontend -> "frontend"
  | Rob -> "rob"
  | Lsu -> "lsu"
  | Exec -> "exec"
  | Bus -> "bus"
  | Other -> "other"

let of_string = function
  | "frontend" -> Some Frontend
  | "rob" -> Some Rob
  | "lsu" -> Some Lsu
  | "exec" -> Some Exec
  | "bus" -> Some Bus
  | "other" -> Some Other
  | _ -> None

let pp fmt c = Format.pp_print_string fmt (to_string c)
let equal a b = a = b
let compare = Stdlib.compare
