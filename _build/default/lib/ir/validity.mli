(** Request-validity determination — the paper's Algorithm 1 (§5.2).

    Requests in a processor carry a data field and a validity field that, by
    circuit-programming convention, share a common name prefix (e.g. BOOM's
    ROB commit request: data [io_commit_uops_inst], validity
    [io_commit_valid]). The algorithm:

    + pattern-match for a [<prefix>_valid] signal sharing a prefix with the
      request's data field;
    + failing that, trace back to the data field's source signals and take
      the bitwise AND of their validities;
    + failing that, consider the request constantly valid.

    Literal requests are [Constant]; their interval states cannot depend on
    any input, so the point carries no side-channel risk (§5.2). *)

type status =
  | Direct of string  (** a [<prefix>_valid] signal names the validity *)
  | Derived of string list
      (** validity is the AND of these source-validity signals *)
  | Constant  (** the request is a literal *)
  | Always  (** no validity found: valid during every cycle *)

val has_valid : status -> bool
(** [true] for [Direct] and [Derived]: the request's validity is input-
    dependent, so its [reqsIntvl] is a meaningful runtime state. *)

val valid_signals : status -> string list
(** The concrete validity signal names ([[]] for [Constant]/[Always]). *)

val prefix_candidates : string -> string list
(** All prefixes of a flattened signal name obtained by stripping trailing
    underscore-separated segments, longest first. Exposed for testing:
    [prefix_candidates "io_commit_uops_inst"] is
    [["io_commit_uops"; "io_commit"; "io"]]. *)

type context
(** Precomputed per-module lookup tables (signal set and definitions).
    Classifying every request of a module through one context is linear in
    the module size instead of quadratic. *)

val context : Fmodule.t -> context

val determine_in : context -> Expr.t -> status
(** Determine the validity of a request (a MUX-tree leaf expression).
    Source tracing is depth-bounded and cycle-safe. *)

val determine : Fmodule.t -> Expr.t -> status
(** One-shot convenience wrapper over {!context} + {!determine_in}. *)

val pp : Format.formatter -> status -> unit
val equal : status -> status -> bool
