(** Expressions of the FIRRTL-like circuit IR.

    The IR is the *lowered* structural subset of FIRRTL that Sonar's analyses
    operate on: flat signal names (hierarchical fields are flattened with
    underscores, e.g. [io_commit_valid]), unsigned literals, 2:1 multiplexers,
    and a fixed set of primitive combinational operators. All widths are in
    bits and limited to 63 so values fit an OCaml [int64] with headroom. *)

type primop =
  | Add
  | Sub
  | And
  | Or
  | Xor
  | Not
  | Eq
  | Neq
  | Lt
  | Leq
  | Gt
  | Geq
  | Shl of int  (** static left shift *)
  | Shr of int  (** static logical right shift *)
  | Bits of int * int  (** [Bits (hi, lo)]: bit-slice extraction *)
  | Cat  (** concatenation, first argument is the high part *)
  | Pad of int  (** zero-extend to the given width *)

type t =
  | Ref of string  (** reference to a named signal *)
  | Lit of { value : int64; width : int }  (** unsigned literal *)
  | Mux of { sel : t; tval : t; fval : t }  (** 2:1 multiplexer *)
  | Prim of { op : primop; args : t list }  (** primitive operator *)

val reference : string -> t
val lit : ?width:int -> int64 -> t

val lit_int : ?width:int -> int -> t
(** Convenience wrapper over {!lit} for small literals. *)

val mux : t -> t -> t -> t
(** [mux sel tval fval]. *)

val prim : primop -> t list -> t

val is_lit : t -> bool
(** [true] iff the expression is a literal constant. *)

val refs : t -> string list
(** All signal names referenced, left to right, without duplicates. *)

val fold_refs : (string -> 'a -> 'a) -> t -> 'a -> 'a

val count_muxes : t -> int
(** Number of [Mux] nodes contained in the expression (the "naive 2:1 MUX"
    count of the paper's Figure 6 counts every one of these). *)

val equal : t -> t -> bool
val pp_primop : Format.formatter -> primop -> unit
val pp : Format.formatter -> t -> unit
val primop_name : primop -> string

val primop_arity : primop -> int
(** Expected number of arguments. *)
