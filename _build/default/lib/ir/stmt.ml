type t =
  | Input of { name : string; width : int }
  | Output of { name : string; width : int }
  | Wire of { name : string; width : int }
  | Reg of { name : string; width : int; reset : int64 option }
  | Node of { name : string; expr : Expr.t }
  | Connect of { dst : string; src : Expr.t }

let declared_name = function
  | Input { name; _ }
  | Output { name; _ }
  | Wire { name; _ }
  | Reg { name; _ }
  | Node { name; _ } ->
      Some name
  | Connect _ -> None

let declared_width = function
  | Input { width; _ } | Output { width; _ } | Wire { width; _ } | Reg { width; _ }
    ->
      Some width
  | Node _ | Connect _ -> None

let pp fmt = function
  | Input { name; width } -> Format.fprintf fmt "input %s : UInt<%d>" name width
  | Output { name; width } ->
      Format.fprintf fmt "output %s : UInt<%d>" name width
  | Wire { name; width } -> Format.fprintf fmt "wire %s : UInt<%d>" name width
  | Reg { name; width; reset = None } ->
      Format.fprintf fmt "reg %s : UInt<%d>" name width
  | Reg { name; width; reset = Some r } ->
      Format.fprintf fmt "reg %s : UInt<%d> reset %Ld" name width r
  | Node { name; expr } -> Format.fprintf fmt "node %s = %a" name Expr.pp expr
  | Connect { dst; src } -> Format.fprintf fmt "connect %s = %a" dst Expr.pp src

let equal a b =
  match (a, b) with
  | Node x, Node y -> String.equal x.name y.name && Expr.equal x.expr y.expr
  | Connect x, Connect y -> String.equal x.dst y.dst && Expr.equal x.src y.src
  | x, y -> x = y
