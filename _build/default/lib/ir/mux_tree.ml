type point = {
  id : string;
  module_name : string;
  component : Component.t;
  output : string;
  selects : string list;
  requests : Expr.t list;
  depth : int;
  absorbed_muxes : int;
}

(* Accumulator threaded through a single cascade trace. *)
type trace = {
  mutable sels : string list;
  mutable leaves : Expr.t list;
  mutable muxes : int;
  mutable max_depth : int;
}

let all_defined_exprs m =
  List.filter_map
    (function
      | Stmt.Node { name; expr } -> Some (name, expr)
      | Stmt.Connect { dst; src } -> Some (dst, src)
      | Stmt.Input _ | Stmt.Output _ | Stmt.Wire _ | Stmt.Reg _ -> None)
    m.Fmodule.stmts

let naive_mux_count m =
  List.fold_left (fun acc (_, e) -> acc + Expr.count_muxes e) 0 (all_defined_exprs m)

(* Names whose definition is a MUX at the top of its expression: cascades
   extend through these. *)
let mux_rooted_defs defs =
  let table = Hashtbl.create 32 in
  Hashtbl.iter
    (fun name expr -> match expr with Expr.Mux _ -> Hashtbl.replace table name expr | _ -> ())
    defs;
  table

let points_of_module m =
  let defs = Hashtbl.create 64 in
  List.iter (fun (n, e) -> Hashtbl.replace defs n e) (all_defined_exprs m);
  let mux_defs = mux_rooted_defs defs in
  (* Trace one cascade rooted at [expr]. [visited] prevents loops through
     named signals. Depth counts nested 2:1 levels. *)
  (* MUXes inside select expressions are not part of the cascade: they root
     their own trees and are collected into [sel_roots]. *)
  let trace_root root_expr =
    let tr = { sels = []; leaves = []; muxes = 0; max_depth = 0 } in
    let sel_roots = ref [] in
    let visited = Hashtbl.create 8 in
    let rec sel_muxes expr =
      match expr with
      | Expr.Mux _ -> sel_roots := expr :: !sel_roots
      | Expr.Ref _ | Expr.Lit _ -> ()
      | Expr.Prim { args; _ } -> List.iter sel_muxes args
    in
    let rec descend depth expr =
      match expr with
      | Expr.Mux { sel; tval; fval } ->
          tr.muxes <- tr.muxes + 1;
          if depth > tr.max_depth then tr.max_depth <- depth;
          tr.sels <- List.rev_append (Expr.refs sel) tr.sels;
          sel_muxes sel;
          leaf (depth + 1) tval;
          leaf (depth + 1) fval
      | _ -> assert false
    and leaf depth expr =
      match expr with
      | Expr.Mux _ -> descend depth expr
      | Expr.Ref name when Hashtbl.mem mux_defs name && not (Hashtbl.mem visited name)
        ->
          Hashtbl.replace visited name ();
          descend depth (Hashtbl.find mux_defs name)
      | other ->
          (* The trace stops here: [other] is a request. MUXes nested under
             non-MUX operators inside it root their own points. *)
          (match other with
          | Expr.Prim { args; _ } -> List.iter sel_muxes args
          | Expr.Ref _ | Expr.Lit _ | Expr.Mux _ -> ());
          tr.leaves <- other :: tr.leaves
    in
    descend 1 root_expr;
    (tr, List.rev !sel_roots)
  in
  (* A named MUX definition is absorbed (not a separate point) when some
     other expression consumes it in a tval/fval position. *)
  let absorbed = Hashtbl.create 32 in
  let rec mark_absorbed in_data_pos expr =
    match expr with
    | Expr.Mux { sel; tval; fval } ->
        mark_absorbed false sel;
        mark_absorbed true tval;
        mark_absorbed true fval
    | Expr.Ref name when in_data_pos && Hashtbl.mem mux_defs name ->
        Hashtbl.replace absorbed name ()
    | Expr.Ref _ | Expr.Lit _ -> ()
    | Expr.Prim { args; _ } -> List.iter (mark_absorbed false) args
  in
  Hashtbl.iter (fun _ expr -> mark_absorbed false expr) defs;
  (* Roots: (a) named defs whose top expr is a MUX and which are not absorbed;
     (b) maximal MUX subexpressions embedded in non-MUX contexts. *)
  let dedup l =
    let seen = Hashtbl.create 8 in
    List.filter (fun x ->
        if Hashtbl.mem seen x then false
        else begin
          Hashtbl.add seen x ();
          true
        end)
      l
  in
  let points = ref [] in
  let emit p = points := p :: !points in
  (* Tracing one root may reveal further roots inside its select
     expressions; those are traced too (recursively). *)
  let rec make_point ~output ~id root_expr =
    let tr, sel_roots = trace_root root_expr in
    emit
      {
        id;
        module_name = m.Fmodule.name;
        component = m.Fmodule.component;
        output;
        selects = dedup (List.rev tr.sels);
        requests = List.rev tr.leaves;
        depth = tr.max_depth;
        absorbed_muxes = tr.muxes;
      };
    List.iteri
      (fun i sub -> make_point ~output ~id:(Printf.sprintf "%s.sel%d" id i) sub)
      sel_roots
  in
  (* Embedded roots inside an arbitrary expression; [idx] disambiguates. *)
  let rec embedded_roots output idx expr =
    match expr with
    | Expr.Mux _ ->
        let id = Printf.sprintf "%s.%s.%d" m.Fmodule.name output !idx in
        incr idx;
        make_point ~output ~id expr
    | Expr.Ref _ | Expr.Lit _ -> ()
    | Expr.Prim { args; _ } -> List.iter (embedded_roots output idx) args
  in
  List.iter
    (fun (name, expr) ->
      match expr with
      | Expr.Mux _ ->
          if not (Hashtbl.mem absorbed name) then
            make_point ~output:name
              ~id:(Printf.sprintf "%s.%s" m.Fmodule.name name)
              expr
      | _ ->
          let idx = ref 0 in
          embedded_roots name idx expr)
    (all_defined_exprs m);
  List.rev !points

let request_count p = List.length p.requests

let pp_point fmt p =
  Format.fprintf fmt
    "@[<v 2>point %s (component %a):@,\
     output %s, depth %d, %d mux(es)@,\
     selects: %a@,\
     requests: %a@]"
    p.id Component.pp p.component p.output p.depth p.absorbed_muxes
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       Format.pp_print_string)
    p.selects
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       Expr.pp)
    p.requests
