type t = { name : string; modules : Fmodule.t list }

let make name modules = { name; modules }

let find_module c name =
  List.find_opt (fun (m : Fmodule.t) -> String.equal m.name name) c.modules

let module_count c = List.length c.modules

let stmt_count c =
  List.fold_left (fun acc m -> acc + Fmodule.stmt_count m) 0 c.modules

let map_modules f c = { c with modules = List.map f c.modules }

let pp fmt c =
  Format.fprintf fmt "@[<v 2>circuit %s :@,%a@]" c.name
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Fmodule.pp)
    c.modules
