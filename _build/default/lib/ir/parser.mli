(** Recursive-descent parser for the textual circuit format.

    Grammar (whitespace-insensitive; [;] comments):
    {v
    circuit  ::= "circuit" IDENT ":" module*
    module   ::= "module" IDENT "[" IDENT "]" ":" stmt*
    stmt     ::= "input" IDENT ":" type
               | "output" IDENT ":" type
               | "wire" IDENT ":" type
               | "reg" IDENT ":" type ("reset" INT)?
               | "node" IDENT "=" expr
               | "connect" IDENT "=" expr
    type     ::= "UInt" "<" INT ">"
    expr     ::= "mux" "(" expr "," expr "," expr ")"
               | "UInt" "<" INT ">" "(" INT ")"
               | PRIMOP ("<" INT ("," INT)? ">")? "(" expr ("," expr)* ")"
               | IDENT
    v}
    The printer ({!Printer}) emits exactly this grammar, so
    [parse (Printer.circuit_to_string c)] round-trips. *)

exception Error of string

val parse : string -> Circuit.t
(** @raise Error on syntax errors, with a descriptive message. *)

val parse_expr : string -> Expr.t
(** Parse a standalone expression (used in tests). *)

val parse_module : string -> Fmodule.t
(** Parse a standalone module (without the enclosing circuit header). *)
