(** Tokenizer for the textual circuit format.

    The format is whitespace-insensitive: statements are recognised by their
    leading keyword, so no indentation tracking is required. Comments run
    from [;] to end of line. *)

type token =
  | Ident of string
  | Int of int64
  | Colon
  | Comma
  | Equals
  | Lparen
  | Rparen
  | Langle
  | Rangle
  | Lbracket
  | Rbracket
  | Eof

exception Error of string
(** Raised on an unexpected character; the message includes the position. *)

val tokenize : string -> token list
(** Tokenize a full input. @raise Error on invalid input. *)

val pp_token : Format.formatter -> token -> unit
