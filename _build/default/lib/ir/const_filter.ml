type classified = {
  point : Mux_tree.point;
  validities : Validity.status list;
  monitored : bool;
  single_valid : bool;
}

let classify_in ctx (point : Mux_tree.point) =
  let validities = List.map (Validity.determine_in ctx) point.requests in
  let with_valid = List.filter Validity.has_valid validities in
  let non_constant =
    List.exists (function Validity.Constant -> false | _ -> true) validities
  in
  {
    point;
    validities;
    monitored = non_constant && with_valid <> [];
    single_valid = List.length with_valid = 1;
  }

let classify m point = classify_in (Validity.context m) point

let classify_module m =
  let ctx = Validity.context m in
  List.map (classify_in ctx) (Mux_tree.points_of_module m)
let monitored = List.filter (fun c -> c.monitored)
let filtered_out = List.filter (fun c -> not c.monitored)
