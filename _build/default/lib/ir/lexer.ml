type token =
  | Ident of string
  | Int of int64
  | Colon
  | Comma
  | Equals
  | Lparen
  | Rparen
  | Langle
  | Rangle
  | Lbracket
  | Rbracket
  | Eof

exception Error of string

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '.'
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let rec skip_line i = if i < n && input.[i] <> '\n' then skip_line (i + 1) else i in
  let rec go i acc =
    if i >= n then List.rev (Eof :: acc)
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | ';' -> go (skip_line i) acc
      | ':' -> go (i + 1) (Colon :: acc)
      | ',' -> go (i + 1) (Comma :: acc)
      | '=' -> go (i + 1) (Equals :: acc)
      | '(' -> go (i + 1) (Lparen :: acc)
      | ')' -> go (i + 1) (Rparen :: acc)
      | '<' -> go (i + 1) (Langle :: acc)
      | '>' -> go (i + 1) (Rangle :: acc)
      | '[' -> go (i + 1) (Lbracket :: acc)
      | ']' -> go (i + 1) (Rbracket :: acc)
      | c when is_digit c ->
          let j = ref i in
          while !j < n && is_digit input.[!j] do
            incr j
          done;
          let text = String.sub input i (!j - i) in
          go !j (Int (Int64.of_string text) :: acc)
      | c when is_ident_start c ->
          let j = ref i in
          while !j < n && is_ident_char input.[!j] do
            incr j
          done;
          let text = String.sub input i (!j - i) in
          go !j (Ident text :: acc)
      | c -> raise (Error (Printf.sprintf "unexpected character %C at offset %d" c i))
  in
  go 0 []

let pp_token fmt = function
  | Ident s -> Format.fprintf fmt "ident %s" s
  | Int v -> Format.fprintf fmt "int %Ld" v
  | Colon -> Format.pp_print_string fmt ":"
  | Comma -> Format.pp_print_string fmt ","
  | Equals -> Format.pp_print_string fmt "="
  | Lparen -> Format.pp_print_string fmt "("
  | Rparen -> Format.pp_print_string fmt ")"
  | Langle -> Format.pp_print_string fmt "<"
  | Rangle -> Format.pp_print_string fmt ">"
  | Lbracket -> Format.pp_print_string fmt "["
  | Rbracket -> Format.pp_print_string fmt "]"
  | Eof -> Format.pp_print_string fmt "<eof>"
