type result = {
  circuit : Circuit.t;
  stmts_added : int;
  pair_checks : int;
}

let uses name stmt =
  match stmt with
  | Stmt.Node { expr; _ } -> List.mem name (Expr.refs expr)
  | Stmt.Connect { src; _ } -> List.mem name (Expr.refs src)
  | Stmt.Input _ | Stmt.Output _ | Stmt.Wire _ | Stmt.Reg _ -> false

let instrument_module m =
  let stmts = m.Fmodule.stmts in
  let pair_checks = ref 0 in
  (* For each declared signal, scan the whole module for consumers — the
     quadratic def-use sweep SpecDoctor performs per statement. *)
  let tapped =
    List.filter_map
      (fun s ->
        match Stmt.declared_name s with
        | None -> None
        | Some name ->
            let consumers =
              List.filter
                (fun other ->
                  incr pair_checks;
                  uses name other)
                stmts
            in
            let is_reg = match s with Stmt.Reg _ -> true | _ -> false in
            if is_reg && consumers <> [] then Some name else None)
      stmts
  in
  let added = ref [] in
  List.iteri
    (fun i name ->
      let out = Printf.sprintf "__sd_cov%d" i in
      added := Stmt.Output { name = out; width = 1 } :: !added;
      added :=
        Stmt.Connect
          {
            dst = out;
            src = Expr.prim (Expr.Bits (0, 0)) [ Expr.reference name ];
          }
        :: !added)
    tapped;
  let new_stmts = List.rev !added in
  ( { m with Fmodule.stmts = stmts @ new_stmts },
    List.length new_stmts,
    !pair_checks )

let instrument circuit =
  let stmts_added = ref 0 in
  let pair_checks = ref 0 in
  let modules =
    List.map
      (fun m ->
        let m', added, checks = instrument_module m in
        stmts_added := !stmts_added + added;
        pair_checks := !pair_checks + checks;
        m')
      circuit.Circuit.modules
  in
  {
    circuit = { circuit with Circuit.modules };
    stmts_added = !stmts_added;
    pair_checks = !pair_checks;
  }
