let with_buffer pp v =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  pp fmt v;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let expr_to_string = with_buffer Expr.pp
let stmt_to_string = with_buffer Stmt.pp
let module_to_string = with_buffer Fmodule.pp
let circuit_to_string c = with_buffer Circuit.pp c ^ "\n"
