(** Statements of the FIRRTL-like circuit IR.

    A module body is a flat sequence of statements. [Node] binds a named
    combinational expression (the lowered form of FIRRTL's [node]); [Connect]
    drives a previously declared wire, register, or output. Registers update
    on the implicit clock edge from the last value connected to them. *)

type t =
  | Input of { name : string; width : int }
  | Output of { name : string; width : int }
  | Wire of { name : string; width : int }
  | Reg of { name : string; width : int; reset : int64 option }
      (** [reset] is the synchronous reset value, if any. *)
  | Node of { name : string; expr : Expr.t }
  | Connect of { dst : string; src : Expr.t }

val declared_name : t -> string option
(** The signal a statement declares ([Input]/[Output]/[Wire]/[Reg]/[Node]);
    [None] for [Connect]. *)

val declared_width : t -> int option

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
