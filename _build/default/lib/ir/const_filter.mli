(** Filtering contention points without side-channel risk (§5.2).

    A contention point whose requests are all constants, or none of whose
    requests carries a validity signal, has an input-independent [reqsIntvl]
    (constantly 0 when every request is always valid). Instrumenting such
    points wastes simulation time without adding detection capability; the
    paper reports ~31% of traced points fall in this category. *)

type classified = {
  point : Mux_tree.point;
  validities : Validity.status list;  (** one per request, in order *)
  monitored : bool;  (** survives the filter: worth dynamic monitoring *)
  single_valid : bool;
      (** exactly one request carries a validity signal — the paper's
          Figure 9 "dominated by a single signal" class *)
}

val classify : Fmodule.t -> Mux_tree.point -> classified
(** Determine every request's validity and apply the filter. *)

val classify_in : Validity.context -> Mux_tree.point -> classified
(** Same, reusing a precomputed per-module context (linear overall). *)

val classify_module : Fmodule.t -> classified list
(** {!Mux_tree.points_of_module} composed with {!classify}. *)

val monitored : classified list -> classified list
val filtered_out : classified list -> classified list
