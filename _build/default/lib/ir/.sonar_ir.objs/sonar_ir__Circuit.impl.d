lib/ir/circuit.ml: Fmodule Format List String
