lib/ir/analysis.mli: Circuit Component Const_filter Format
