lib/ir/mux_tree.ml: Component Expr Fmodule Format Hashtbl List Printf Stmt
