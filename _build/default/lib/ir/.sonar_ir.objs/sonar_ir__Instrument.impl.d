lib/ir/instrument.ml: Circuit Const_filter Expr Fmodule List Mux_tree Printf Stmt Validity
