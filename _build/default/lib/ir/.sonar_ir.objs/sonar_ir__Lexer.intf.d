lib/ir/lexer.mli: Format
