lib/ir/printer.mli: Circuit Expr Fmodule Stmt
