lib/ir/mux_tree.mli: Component Expr Fmodule Format
