lib/ir/instrument.mli: Circuit Const_filter Fmodule
