lib/ir/expr.ml: Format Hashtbl Int64 List Printf String
