lib/ir/validity.mli: Expr Fmodule Format
