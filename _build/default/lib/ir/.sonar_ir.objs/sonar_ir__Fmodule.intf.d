lib/ir/fmodule.mli: Component Expr Format Hashtbl Stmt
