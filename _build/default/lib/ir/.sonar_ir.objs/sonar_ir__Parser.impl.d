lib/ir/parser.ml: Circuit Component Expr Fmodule Format Int64 Lexer List Printf Stmt String
