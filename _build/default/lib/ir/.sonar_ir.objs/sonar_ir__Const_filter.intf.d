lib/ir/const_filter.mli: Fmodule Mux_tree Validity
