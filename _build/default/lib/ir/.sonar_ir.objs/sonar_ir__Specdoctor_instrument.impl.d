lib/ir/specdoctor_instrument.ml: Circuit Expr Fmodule List Printf Stmt
