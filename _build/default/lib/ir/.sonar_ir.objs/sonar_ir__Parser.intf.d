lib/ir/parser.mli: Circuit Expr Fmodule
