lib/ir/fmodule.ml: Component Format Hashtbl List Option Stmt String
