lib/ir/circuit.mli: Fmodule Format
