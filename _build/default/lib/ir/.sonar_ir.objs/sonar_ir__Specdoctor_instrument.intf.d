lib/ir/specdoctor_instrument.mli: Circuit Fmodule
