lib/ir/analysis.ml: Circuit Component Const_filter Format List Mux_tree
