lib/ir/component.mli: Format
