lib/ir/stmt.ml: Expr Format String
