lib/ir/printer.ml: Buffer Circuit Expr Fmodule Format Stmt
