lib/ir/validity.ml: Expr Fmodule Format Hashtbl List String
