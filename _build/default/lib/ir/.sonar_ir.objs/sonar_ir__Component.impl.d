lib/ir/component.ml: Format Stdlib
