lib/ir/const_filter.ml: List Mux_tree Validity
