(** Circuit modules.

    A module is a named, component-tagged sequence of statements. The name
    ["Fmodule"] avoids clashing with OCaml's [Module] keyword family. *)

type t = {
  name : string;
  component : Component.t;
  stmts : Stmt.t list;
}

val make : ?component:Component.t -> string -> Stmt.t list -> t

val signals : t -> (string * int) list
(** All declared signals with widths, in declaration order. [Node]s get
    width 0 (their width is that of the bound expression). *)

val inputs : t -> (string * int) list
val outputs : t -> (string * int) list

val definitions : t -> (string, Expr.t) Hashtbl.t
(** Map from signal name to its defining expression: a [Node] binding or the
    (last) [Connect] driving a wire or output. Registers and inputs have no
    combinational definition and are absent. *)

val registers : t -> (string, Expr.t option) Hashtbl.t
(** Map from register name to its next-value expression (the last [Connect]
    driving it), or [None] if never driven. *)

val stmt_count : t -> int

val find_decl : t -> string -> Stmt.t option
(** Declaration statement of a signal, if any. *)

val pp : Format.formatter -> t -> unit
