type status =
  | Direct of string
  | Derived of string list
  | Constant
  | Always

let has_valid = function Direct _ | Derived _ -> true | Constant | Always -> false

let valid_signals = function
  | Direct v -> [ v ]
  | Derived vs -> vs
  | Constant | Always -> []

let prefix_candidates name =
  let rec go acc name =
    match String.rindex_opt name '_' with
    | Some i when i > 0 ->
        let prefix = String.sub name 0 i in
        go (prefix :: acc) prefix
    | Some _ | None -> List.rev acc
  in
  go [] name

(* Max depth for backwards source tracing; processor request paths are
   shallow, and the bound keeps adversarial inputs linear. *)
let max_trace_depth = 4

type context = {
  signal_set : (string, unit) Hashtbl.t;
  defs : (string, Expr.t) Hashtbl.t;
}

let context m =
  let signal_set = Hashtbl.create 64 in
  List.iter (fun (n, _) -> Hashtbl.replace signal_set n ()) (Fmodule.signals m);
  { signal_set; defs = Fmodule.definitions m }

let determine_in { signal_set; defs } request =
  let exists n = Hashtbl.mem signal_set n in
  let direct_valid name =
    (* The validity field shares the data field's prefix (line 3 of
       Algorithm 1). Prefer the longest matching prefix. *)
    List.find_map
      (fun prefix ->
        let candidate = prefix ^ "_valid" in
        if exists candidate && not (String.equal candidate name) then Some candidate
        else None)
      (prefix_candidates name)
  in
  let rec sources_valid depth visited expr =
    (* Collect validities of the expression's source signals (lines 4-7). *)
    if depth > max_trace_depth then []
    else
      Expr.fold_refs
        (fun name acc ->
          if Hashtbl.mem visited name then acc
          else begin
            Hashtbl.replace visited name ();
            match direct_valid name with
            | Some v -> v :: acc
            | None -> (
                match Hashtbl.find_opt defs name with
                | Some def -> sources_valid (depth + 1) visited def @ acc
                | None -> acc)
          end)
        expr []
  in
  if Expr.is_lit request then Constant
  else
    let direct =
      match request with Expr.Ref name -> direct_valid name | _ -> None
    in
    match direct with
    | Some v -> Direct v
    | None -> (
        let visited = Hashtbl.create 8 in
        (* For a plain reference, trace through its definition; for compound
           expressions, their refs are the sources. *)
        let start =
          match request with
          | Expr.Ref name -> (
              match Hashtbl.find_opt defs name with
              | Some def -> def
              | None -> request)
          | _ -> request
        in
        (match request with
        | Expr.Ref name -> Hashtbl.replace visited name ()
        | _ -> ());
        match List.sort_uniq String.compare (sources_valid 0 visited start) with
        | [] -> Always
        | [ v ] -> Direct v
        | vs -> Derived vs)

let pp fmt = function
  | Direct v -> Format.fprintf fmt "valid(%s)" v
  | Derived vs ->
      Format.fprintf fmt "derived(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " & ")
           Format.pp_print_string)
        vs
  | Constant -> Format.pp_print_string fmt "constant"
  | Always -> Format.pp_print_string fmt "always-valid"

let equal a b =
  match (a, b) with
  | Direct x, Direct y -> String.equal x y
  | Derived x, Derived y -> List.equal String.equal x y
  | Constant, Constant | Always, Always -> true
  | (Direct _ | Derived _ | Constant | Always), _ -> false

let determine m request = determine_in (context m) request
