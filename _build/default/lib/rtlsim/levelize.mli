(** Levelization: topological ordering of a module's combinational signals.

    Sources are inputs, registers, and literals; every node/wire/output is
    scheduled after the signals its defining expression reads. Registers
    break cycles by construction (their value is read from the previous
    cycle's state). *)

exception Combinational_cycle of string list
(** Raised with the cycle's member signals when the combinational graph is
    cyclic and therefore unsimulatable. *)

val order : Sonar_ir.Fmodule.t -> string list
(** Evaluation order over combinationally defined signals (nodes, wires and
    outputs with definitions). @raise Combinational_cycle *)
