(** Minimal VCD (Value Change Dump) waveform writer.

    Attach to a compiled engine, call {!dump} once per cycle, and
    {!contents} yields a standard VCD document viewable in GTKWave. Only
    signals that changed since the previous dump are emitted. *)

type t

val create : ?signals:string list -> Engine.t -> t
(** Track the given signals (default: all of the engine's signals). *)

val dump : t -> unit
(** Record the current cycle's values. *)

val contents : t -> string
(** The complete VCD document accumulated so far. *)

val write_file : t -> string -> unit
