(** Cycle-accurate simulation engine for a single IR module.

    The engine levelizes the module once ({!compile}), then [step] evaluates
    every combinational signal in dependency order, computes the next value
    of every register from its drive expression, and latches — standard
    two-phase synchronous semantics, the same evaluation model Verilator
    gives the paper. *)

type t

exception Unknown_signal of string

val compile : Sonar_ir.Fmodule.t -> t
(** @raise Levelize.Combinational_cycle on cyclic combinational logic. *)

val poke : t -> string -> Bitvec.t -> unit
(** Drive an input. @raise Unknown_signal if not an input. *)

val poke_int : t -> string -> int -> unit

val step : t -> unit
(** Advance one clock cycle: settle combinational logic, latch registers. *)

val settle : t -> unit
(** Re-evaluate combinational logic without latching (to observe outputs
    after a {!poke} mid-cycle). *)

val peek : t -> string -> Bitvec.t
(** Read any signal's current value. @raise Unknown_signal *)

val peek_int : t -> string -> int
val cycle : t -> int
(** Cycles elapsed since {!compile} or {!reset}. *)

val reset : t -> unit
(** Restore registers to their reset values (0 when unspecified), zero
    inputs, and rewind the cycle counter. *)

val signal_names : t -> string list
(** All signals, in declaration order (used by the VCD writer). *)

val signal_width : t -> string -> int
