open Sonar_ir

exception Combinational_cycle of string list

let order (m : Fmodule.t) =
  let defs = Fmodule.definitions m in
  let regs = Fmodule.registers m in
  let is_comb name = Hashtbl.mem defs name && not (Hashtbl.mem regs name) in
  (* Colours: 0 unvisited, 1 on stack, 2 done. *)
  let colour = Hashtbl.create 64 in
  let out = ref [] in
  let rec visit path name =
    match Hashtbl.find_opt colour name with
    | Some 2 -> ()
    | Some 1 ->
        let rec upto acc = function
          | [] -> acc
          | n :: _ when String.equal n name -> acc
          | n :: rest -> upto (n :: acc) rest
        in
        raise (Combinational_cycle (name :: upto [] path))
    | Some _ | None ->
        if is_comb name then begin
          Hashtbl.replace colour name 1;
          let expr = Hashtbl.find defs name in
          List.iter
            (fun dep -> if is_comb dep then visit (name :: path) dep)
            (Expr.refs expr);
          Hashtbl.replace colour name 2;
          out := name :: !out
        end
        else Hashtbl.replace colour name 2
  in
  List.iter
    (fun s ->
      match Stmt.declared_name s with
      | Some n when is_comb n -> visit [] n
      | Some _ | None -> ())
    m.Fmodule.stmts;
  List.rev !out
