type t = {
  engine : Engine.t;
  buf : Buffer.t;
  signals : (string * string) list;  (** name, VCD identifier code *)
  previous : (string, int64) Hashtbl.t;
  mutable timestamp : int;
}

(* Short printable identifier codes starting at '!', then two-char codes. *)
let id_code i =
  let alphabet = 94 in
  let chr k = Char.chr (33 + k) in
  if i < alphabet then String.make 1 (chr i)
  else
    let hi = (i / alphabet) - 1 and lo = i mod alphabet in
    Printf.sprintf "%c%c" (chr hi) (chr lo)

let create ?signals engine =
  let names = Option.value ~default:(Engine.signal_names engine) signals in
  let signals = List.mapi (fun i n -> (n, id_code i)) names in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "$timescale 1ns $end\n$scope module dut $end\n";
  List.iter
    (fun (name, code) ->
      Buffer.add_string buf
        (Printf.sprintf "$var wire %d %s %s $end\n" (Engine.signal_width engine name)
           code name))
    signals;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  { engine; buf; signals; previous = Hashtbl.create 64; timestamp = 0 }

let binary_of_value v width =
  let b = Bytes.make width '0' in
  for i = 0 to width - 1 do
    if Int64.logand (Int64.shift_right_logical v (width - 1 - i)) 1L = 1L then
      Bytes.set b i '1'
  done;
  Bytes.to_string b

let dump t =
  Buffer.add_string t.buf (Printf.sprintf "#%d\n" t.timestamp);
  List.iter
    (fun (name, code) ->
      let bv = Engine.peek t.engine name in
      let v = Bitvec.value bv in
      let changed =
        match Hashtbl.find_opt t.previous name with
        | Some prev -> not (Int64.equal prev v)
        | None -> true
      in
      if changed then begin
        Hashtbl.replace t.previous name v;
        let width = Bitvec.width bv in
        if width = 1 then
          Buffer.add_string t.buf (Printf.sprintf "%Ld%s\n" v code)
        else
          Buffer.add_string t.buf
            (Printf.sprintf "b%s %s\n" (binary_of_value v width) code)
      end)
    t.signals;
  t.timestamp <- t.timestamp + 1

let contents t = Buffer.contents t.buf

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (contents t))
