lib/rtlsim/engine.mli: Bitvec Sonar_ir
