lib/rtlsim/bitvec.mli: Format
