lib/rtlsim/monitor.mli: Engine Sonar_ir
