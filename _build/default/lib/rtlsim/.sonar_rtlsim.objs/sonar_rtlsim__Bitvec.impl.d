lib/rtlsim/bitvec.ml: Format Int64 Printf
