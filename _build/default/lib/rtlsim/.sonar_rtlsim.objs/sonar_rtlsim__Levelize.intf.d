lib/rtlsim/levelize.mli: Sonar_ir
