lib/rtlsim/engine.ml: Array Bitvec Expr Fmodule Hashtbl Int64 Levelize List Option Sonar_ir Stmt
