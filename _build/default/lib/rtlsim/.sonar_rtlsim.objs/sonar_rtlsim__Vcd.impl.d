lib/rtlsim/vcd.ml: Bitvec Buffer Bytes Char Engine Fun Hashtbl Int64 List Option Printf String
