lib/rtlsim/levelize.ml: Expr Fmodule Hashtbl List Sonar_ir Stmt String
