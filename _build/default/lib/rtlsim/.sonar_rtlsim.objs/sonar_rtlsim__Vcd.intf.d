lib/rtlsim/vcd.mli: Engine
