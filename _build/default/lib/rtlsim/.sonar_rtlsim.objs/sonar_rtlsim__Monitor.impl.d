lib/rtlsim/monitor.ml: Array Engine List Sonar_ir String
