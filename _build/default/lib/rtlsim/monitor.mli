(** Runtime [reqsIntvl] collection over an instrumented module.

    Attach a monitor to a compiled {!Engine.t} and sample it once per cycle
    (after [Engine.step]). For every instrumented contention point it
    tracks, within an optional monitoring window:

    - the minimum interval between valid requests from distinct sources
      (pairwise [reqsIntvl]);
    - the minimum interval between consecutive valid requests from the same
      source;
    - whether a {e volatile contention} was triggered (two distinct sources
      valid in the same cycle, i.e. pairwise interval 0). *)

type point_state = {
  point_id : string;
  mutable min_pair_interval : int option;
  mutable min_self_interval : int option;
  mutable triggered : bool;
  mutable request_hits : int;  (** total valid-request observations *)
}

type t

val create : Engine.t -> Sonar_ir.Instrument.point_monitor list -> t

val set_window : t -> start:int -> stop:int -> unit
(** Restrict sampling to cycles in [start, stop] (inclusive). *)

val clear_window : t -> unit
val sample : t -> unit
(** Read the engine's monitor outputs for the current cycle. *)

val states : t -> point_state list
val find : t -> string -> point_state option
(** Look up a point's state by id. *)
