open Sonar_ir

exception Unknown_signal of string

type signal = {
  name : string;
  width : int;
  mutable value : Bitvec.t;
  is_input : bool;
}

type t = {
  signals : (string, signal) Hashtbl.t;
  order : (signal * Expr.t) array;  (** combinational, in evaluation order *)
  regs : (signal * Expr.t option * int64) array;  (** reg, drive, reset *)
  names : string list;
  mutable cycles : int;
}

let find t name =
  match Hashtbl.find_opt t.signals name with
  | Some s -> s
  | None -> raise (Unknown_signal name)

(* Expression width inference, mirroring Bitvec's result widths. *)
let rec infer_width t expr =
  match expr with
  | Expr.Ref name -> (find t name).width
  | Expr.Lit { width; _ } -> width
  | Expr.Mux { tval; fval; _ } -> max (infer_width t tval) (infer_width t fval)
  | Expr.Prim { op; args } -> (
      let arg n = infer_width t (List.nth args n) in
      match op with
      | Expr.Eq | Expr.Neq | Expr.Lt | Expr.Leq | Expr.Gt | Expr.Geq -> 1
      | Expr.Not -> arg 0
      | Expr.Shl n -> min 63 (arg 0 + n)
      | Expr.Shr n -> max 1 (arg 0 - n)
      | Expr.Bits (hi, lo) -> hi - lo + 1
      | Expr.Pad n -> n
      | Expr.Cat -> min 63 (arg 0 + arg 1)
      | Expr.Add | Expr.Sub | Expr.And | Expr.Or | Expr.Xor -> max (arg 0) (arg 1))

let rec eval t expr =
  match expr with
  | Expr.Ref name -> (find t name).value
  | Expr.Lit { value; width } -> Bitvec.make ~width value
  | Expr.Mux { sel; tval; fval } ->
      if Bitvec.is_true (eval t sel) then eval t tval else eval t fval
  | Expr.Prim { op; args } -> (
      match (op, args) with
      | Expr.Not, [ a ] -> Bitvec.lognot (eval t a)
      | Expr.Shl n, [ a ] -> Bitvec.shl n (eval t a)
      | Expr.Shr n, [ a ] -> Bitvec.shr n (eval t a)
      | Expr.Bits (hi, lo), [ a ] -> Bitvec.bits ~hi ~lo (eval t a)
      | Expr.Pad n, [ a ] -> Bitvec.pad n (eval t a)
      | Expr.Add, [ a; b ] -> Bitvec.add (eval t a) (eval t b)
      | Expr.Sub, [ a; b ] -> Bitvec.sub (eval t a) (eval t b)
      | Expr.And, [ a; b ] -> Bitvec.logand (eval t a) (eval t b)
      | Expr.Or, [ a; b ] -> Bitvec.logor (eval t a) (eval t b)
      | Expr.Xor, [ a; b ] -> Bitvec.logxor (eval t a) (eval t b)
      | Expr.Eq, [ a; b ] -> Bitvec.eq (eval t a) (eval t b)
      | Expr.Neq, [ a; b ] -> Bitvec.neq (eval t a) (eval t b)
      | Expr.Lt, [ a; b ] -> Bitvec.lt (eval t a) (eval t b)
      | Expr.Leq, [ a; b ] -> Bitvec.leq (eval t a) (eval t b)
      | Expr.Gt, [ a; b ] -> Bitvec.gt (eval t a) (eval t b)
      | Expr.Geq, [ a; b ] -> Bitvec.geq (eval t a) (eval t b)
      | _ -> invalid_arg "Engine.eval: arity mismatch")

let compile (m : Fmodule.t) =
  let t =
    {
      signals = Hashtbl.create 128;
      order = [||];
      regs = [||];
      names = [];
      cycles = 0;
    }
  in
  let names = ref [] in
  let declare name width is_input =
    if not (Hashtbl.mem t.signals name) then begin
      Hashtbl.replace t.signals name
        { name; width; value = Bitvec.zero width; is_input };
      names := name :: !names
    end
  in
  (* First declare everything with an explicit width. *)
  List.iter
    (fun s ->
      match s with
      | Stmt.Input { name; width } -> declare name width true
      | Stmt.Output { name; width } | Stmt.Wire { name; width } ->
          declare name width false
      | Stmt.Reg { name; width; _ } -> declare name width false
      | Stmt.Node _ | Stmt.Connect _ -> ())
    m.Fmodule.stmts;
  (* Nodes take their expression's inferred width; forward references inside
     node chains are resolved by a pre-pass declaring them at 63 bits then
     refining in evaluation order. *)
  let defs = Fmodule.definitions m in
  let order_names = Levelize.order m in
  List.iter
    (fun name -> if not (Hashtbl.mem t.signals name) then declare name 63 false)
    order_names;
  List.iter
    (fun name ->
      let expr = Hashtbl.find defs name in
      match Fmodule.find_decl m name with
      | Some (Stmt.Node _) | None ->
          let s = Hashtbl.find t.signals name in
          let w = infer_width t expr in
          s.value <- Bitvec.zero w;
          Hashtbl.replace t.signals name { s with width = w; value = Bitvec.zero w }
      | Some _ -> ())
    order_names;
  let order =
    Array.of_list
      (List.map (fun name -> (Hashtbl.find t.signals name, Hashtbl.find defs name)) order_names)
  in
  let reg_table = Fmodule.registers m in
  let regs =
    m.Fmodule.stmts
    |> List.filter_map (function
         | Stmt.Reg { name; reset; _ } ->
             let drive = Option.join (Hashtbl.find_opt reg_table name) in
             let reset = Option.value ~default:0L reset in
             Some (Hashtbl.find t.signals name, drive, reset)
         | _ -> None)
    |> Array.of_list
  in
  let t = { t with order; regs; names = List.rev !names } in
  (* Initialise registers to reset values and settle once. *)
  Array.iter
    (fun ((s : signal), _, reset) -> s.value <- Bitvec.make ~width:s.width reset)
    t.regs;
  Array.iter (fun ((s : signal), expr) -> s.value <- Bitvec.pad s.width (eval t expr)) t.order;
  t

let settle t =
  Array.iter (fun ((s : signal), expr) -> s.value <- Bitvec.pad s.width (eval t expr)) t.order

let step t =
  settle t;
  let next =
    Array.map
      (fun ((s : signal), drive, _) ->
        match drive with
        | Some expr -> Bitvec.pad s.width (eval t expr)
        | None -> s.value)
      t.regs
  in
  Array.iteri (fun i ((s : signal), _, _) -> s.value <- next.(i)) t.regs;
  settle t;
  t.cycles <- t.cycles + 1

let poke t name v =
  let s = find t name in
  if not s.is_input then raise (Unknown_signal (name ^ " is not an input"));
  s.value <- Bitvec.pad s.width v

let poke_int t name v = poke t name (Bitvec.make ~width:(find t name).width (Int64.of_int v))
let peek t name = (find t name).value
let peek_int t name = Bitvec.to_int (peek t name)
let cycle t = t.cycles

let reset t =
  Array.iter
    (fun ((s : signal), _, reset) -> s.value <- Bitvec.make ~width:s.width reset)
    t.regs;
  Hashtbl.iter
    (fun _ s -> if s.is_input then s.value <- Bitvec.zero s.width)
    t.signals;
  settle t;
  t.cycles <- 0

let signal_names t = t.names
let signal_width t name = (find t name).width
