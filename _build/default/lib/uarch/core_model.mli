(** Cycle-accurate out-of-order core timing model.

    Trace-driven: the golden model supplies the dynamic instruction stream
    (architectural trace plus, for every faulting instruction, the
    transient sequential continuation with forwarded data). The pipeline
    model fetches through the ICache, dispatches into a ROB, issues
    out-of-order under resource constraints (ALUs, multiplier, divider,
    memory unit, writeback ports), accesses the shared memory system, and
    commits in order, recording each architectural instruction's commit
    cycle — the raw signal behind the CCD metric (§7.1).

    Exception policy follows the configuration: with {!Config.Lazy_at_commit}
    a faulting instruction squashes younger (transient) work only when it
    reaches the commit head; with {!Config.Early_at_execute} the squash
    happens as soon as it issues, keeping the transient window shut. *)

type commit_record = {
  c_eff : Sonar_isa.Golden.effect;
  c_cycle : int;  (** commit cycle *)
  c_dispatch : int;  (** cycle the instruction entered the ROB *)
}

type t

val create :
  Config.t ->
  Cpoint.registry ->
  Memsys.t ->
  core_id:int ->
  outcome:Sonar_isa.Golden.outcome ->
  secret_range:(int * int) option ->
  drives_window:bool ->
  t
(** [secret_range]: static instruction-index range of the secret-dependent
    region; the core opens the registry's monitoring window when the first
    such instruction dispatches and closes it when the last commits
    (when [drives_window]). With no range the window opens at cycle 0. *)

val step : t -> cycle:int -> unit
(** Advance all pipeline stages by one cycle. *)

val finished : t -> bool
(** Trace fully committed and all buffers drained. *)

val commits : t -> commit_record list
(** Committed architectural instructions in commit order. *)

val transient_executed : t -> int
(** Transient micro-ops that issued before being squashed (the size of the
    Meltdown window actually exploited). *)

val cycles_run : t -> int
