lib/uarch/branch_pred.ml: Config Hashtbl Int64 Option
