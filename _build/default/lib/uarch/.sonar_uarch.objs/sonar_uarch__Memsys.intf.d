lib/uarch/memsys.mli: Config Cpoint
