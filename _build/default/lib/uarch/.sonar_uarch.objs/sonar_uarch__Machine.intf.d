lib/uarch/machine.mli: Config Core_model Cpoint Sonar_ir Sonar_isa
