lib/uarch/core_model.ml: Array Branch_pred Config Cpoint Exec_unit Golden Hashtbl Instr Int64 List Memsys Option Printf Reg Sonar_ir Sonar_isa
