lib/uarch/exec_unit.ml: Config Cpoint Int64 List Option Printf Sonar_ir
