lib/uarch/machine.ml: Array Core_model Cpoint List Memsys Sonar_ir Sonar_isa
