lib/uarch/cpoint.ml: Array Config Hashtbl Int64 List Printf Sonar_ir String
