lib/uarch/exec_unit.mli: Config Cpoint
