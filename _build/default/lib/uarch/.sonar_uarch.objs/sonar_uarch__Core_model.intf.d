lib/uarch/core_model.mli: Config Cpoint Memsys Sonar_isa
