lib/uarch/cpoint.mli: Config Hashtbl Sonar_ir
