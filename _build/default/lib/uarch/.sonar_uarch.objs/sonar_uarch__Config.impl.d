lib/uarch/config.ml: Format List String
