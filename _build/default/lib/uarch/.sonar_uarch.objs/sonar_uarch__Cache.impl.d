lib/uarch/cache.ml: Array Config Hashtbl Int64 Option
