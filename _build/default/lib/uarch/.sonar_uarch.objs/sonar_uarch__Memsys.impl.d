lib/uarch/memsys.ml: Array Cache Config Cpoint Fun Hashtbl Int64 List Option Printf Sonar_ir String
