(** A whole machine: one or two cores over a shared L2 / interconnect.

    [run] executes a program per core to completion (or the cycle budget)
    and returns, per core, the commit trace plus the contention-state
    snapshots the fuzzer consumes. In the dual-core scenario of the paper's
    testcase template (Figure 4b), core 0 is the victim (it drives the
    monitoring window) and core 1 the attacker. *)

type core_input = {
  program : Sonar_isa.Program.t;
  secret_range : (int * int) option;
      (** static instruction-index range of the secret-dependent region *)
}

type core_result = {
  commits : Core_model.commit_record list;
  transient_executed : int;
}

type result = {
  cores : core_result array;
  cycles : int;  (** total cycles simulated *)
  snapshots : Cpoint.snapshot list;
  window : (int * int) option;  (** monitoring-window bounds, cycles *)
  point_stats : point_stat list;
  hit_cycle_limit : bool;
}

and point_stat = {
  ps_name : string;
  ps_component : Sonar_ir.Component.t;
  ps_fanout : int;
  ps_max_subs : int;
  ps_single_valid : bool;
  ps_min_pair : int option;
  ps_triggered : (Cpoint.kind * int) list;
  ps_weight : float;  (** netlist contention points contributed *)
  ps_pair_intervals : (int * int) list;
      (** per source pair, the minimum in-window interval *)
  ps_n_sources : int;
}

val default_max_cycles : int

val run :
  ?max_cycles:int -> Config.t -> core_input array -> result
(** @raise Invalid_argument on 0 or more than 2 cores. *)

val run_single :
  ?max_cycles:int ->
  ?secret_range:(int * int) option ->
  Config.t ->
  Sonar_isa.Program.t ->
  result
