(* Command-line interface to the Sonar framework.

     sonar analyze  --dut boom            static identification & filtering
     sonar fuzz     --dut boom -n 500     guided fuzzing campaign
     sonar report   trace.jsonl           offline report from a JSONL trace
     sonar channels [--id S5]             measure the Table 3 channels
     sonar attack   --id S11 -t 10        Meltdown-style PoC

   Machine-readable output: `--format json` (analyze/fuzz/channels) emits
   one stable JSON document on stdout; `sonar fuzz --trace FILE` streams
   the campaign's telemetry events as JSONL (schema: DESIGN.md §9), and
   `sonar report` turns such a trace into a markdown/HTML document plus a
   JSON sidecar. *)

open Cmdliner
module Json = Sonar.Json
module Telemetry = Sonar.Telemetry

let dut_arg =
  let doc = "Design under test: boom or nutshell." in
  Arg.(value & opt string "boom" & info [ "dut" ] ~docv:"DUT" ~doc)

let format_arg =
  let doc = "Output format: $(b,text) (human-readable) or $(b,json) (one \
             stable JSON document on stdout)." in
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FMT" ~doc)

let config_of_name name =
  match Sonar_uarch.Config.by_name name with
  | Some cfg -> Ok cfg
  | None -> Error (`Msg (Printf.sprintf "unknown DUT %s (boom|nutshell)" name))

let unknown_channel id =
  Printf.eprintf "unknown channel id %s; valid ids: %s\n" id
    (String.concat ", " (List.map (fun c -> c.Sonar.Channels.id) Sonar.Channels.all));
  1

(* Install the profiling hooks of every instrumented pipeline stage, feeding
   one span recorder; returns the uninstaller. *)
let install_profiler emit =
  let recorder = Telemetry.Span.recorder emit in
  let set h =
    Sonar_ir.Analysis.set_profiler h;
    Sonar_ir.Instrument.set_profiler h;
    Sonar_rtlsim.Engine.set_profiler h
  in
  set (Some (Telemetry.Span.hook recorder));
  fun () -> set None

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)

let json_of_summary dut (s : Sonar_ir.Analysis.summary) : Json.t =
  Json.Obj
    [
      ("command", Json.String "analyze");
      ("dut", Json.String dut);
      ("circuit", Json.String s.circuit_name);
      ("naive_mux_points", Json.Int s.naive_mux_points);
      ("identified_points", Json.Int s.identified_points);
      ("monitored_points", Json.Int s.monitored_points);
      ("reduction_vs_naive", Json.Float s.reduction_vs_naive);
      ("reduction_by_filter", Json.Float s.reduction_by_filter);
      ( "per_component",
        Json.List
          (List.map
             (fun (cs : Sonar_ir.Analysis.component_stats) ->
               Json.Obj
                 [
                   ( "component",
                     Json.String (Sonar_ir.Component.to_string cs.component) );
                   ("identified", Json.Int cs.identified);
                   ("monitored", Json.Int cs.monitored);
                 ])
             s.per_component) );
    ]

let pp_span_tree ppf tree =
  let rec render indent (n : Telemetry.Observatory.span_node) =
    Format.fprintf ppf "%s%s  %dx  %.3fs@." indent n.span_name n.calls n.seconds;
    List.iter (render (indent ^ "  ")) n.children
  in
  List.iter (render "") tree

let analyze dut format profile =
  match config_of_name dut with
  | Error (`Msg m) -> prerr_endline m; 1
  | Ok cfg ->
      let obs = if profile then Some (Telemetry.observatory ()) else None in
      let uninstall =
        match obs with
        | Some (sink, _) -> install_profiler sink.Telemetry.emit
        | None -> Fun.id
      in
      let summary =
        Fun.protect ~finally:uninstall @@ fun () ->
        let circuit = Sonar_dut.Netlist_gen.generate ~pad:false cfg in
        Sonar_ir.Analysis.summarize circuit
      in
      let snapshot = Option.map (fun (_, snap) -> snap ()) obs in
      (match format with
      | `Text ->
          Format.printf "%a@." Sonar_ir.Analysis.pp_summary summary;
          Option.iter
            (fun (s : Telemetry.Observatory.snapshot) ->
              Format.printf "@.profiling spans:@.%a" pp_span_tree s.span_tree)
            snapshot
      | `Json ->
          let doc =
            match (json_of_summary dut summary, snapshot) with
            | Json.Obj fields, Some s ->
                Json.Obj
                  (fields @ [ ("profile", Telemetry.Observatory.to_json s) ])
            | doc, _ -> doc
          in
          print_endline (Json.to_string doc));
      0

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)

(* Strict validation: a nonsensical value is a user error, not something to
   silently clamp — a clamped `--jobs 0` would report jobs=1 results under a
   flag that said otherwise. *)
let positive_or_die ~flag = function
  | Some v when v < 1 ->
      Printf.eprintf "sonar fuzz: %s must be >= 1 (got %d)\n" flag v;
      exit 1
  | v -> v

let list_strategies () =
  List.iter
    (fun (name, description) -> Printf.printf "%-18s %s\n" name description)
    Sonar.Feedback.all;
  0

let unknown_strategy name =
  Printf.eprintf "unknown strategy %s; valid strategies: %s\n" name
    (String.concat ", " Sonar.Feedback.names);
  1

let fuzz dut iterations seed strategy_name list random_mode dual jobs batch
    chunk no_checkpoint trace timings stats progress format =
  if list then list_strategies ()
  else
  let jobs = positive_or_die ~flag:"--jobs" jobs in
  let checkpoint = not no_checkpoint in
  let batch =
    Option.get (positive_or_die ~flag:"--batch" (Some batch))
  in
  let chunk = positive_or_die ~flag:"--chunk" chunk in
  (* --strategy NAME wins; --random remains shorthand for --strategy
     random; the default is the paper's policy. *)
  let strategy_name =
    match strategy_name with
    | Some name -> name
    | None -> if random_mode then "random" else "sonar"
  in
  match Sonar.Feedback.create strategy_name with
  | None -> unknown_strategy strategy_name
  | Some strategy -> (
  match config_of_name dut with
  | Error (`Msg m) -> prerr_endline m; 1
  | Ok cfg ->
      let jobs =
        match jobs with Some j -> j | None -> Sonar.Domain_pool.default_jobs ()
      in
      let trace_sink =
        Option.map (fun path -> Telemetry.jsonl_file ~timings path) trace
      in
      let agg = if stats then Some (Telemetry.aggregator ()) else None in
      let obs = if stats then Some (Telemetry.observatory ()) else None in
      let progress_sink =
        Option.map
          (fun every -> Telemetry.progress ~every:(max 1 every) ~total:iterations ())
          progress
      in
      let sinks =
        List.filter_map Fun.id
          [ trace_sink; Option.map fst agg; Option.map fst obs; progress_sink ]
      in
      let options =
        {
          Sonar.Fuzzer.Options.default with
          seed = Int64.of_int seed;
          dual;
          jobs;
          batch;
          chunk;
          checkpoint;
          sinks;
        }
      in
      (* Close the sinks however the campaign ends ([Telemetry.close] is
         idempotent, so the fuzzer's own close-on-raise path composes): a
         crash mid-campaign still leaves a flushed, parseable trace. *)
      let o =
        Fun.protect
          ~finally:(fun () -> List.iter Telemetry.close sinks)
          (fun () -> Sonar.Fuzzer.run ~options cfg strategy ~iterations)
      in
      let snapshot = Option.map (fun (_, snap) -> snap ()) agg in
      let observatory = Option.map (fun (_, snap) -> snap ()) obs in
      (match format with
      | `Json ->
          let meta =
            [
              ("command", Json.String "fuzz");
              ("dut", Json.String dut);
              ("iterations", Json.Int iterations);
              ("seed", Json.Int seed);
              ("strategy", Json.String strategy.Sonar.Feedback.name);
              ("dual", Json.Bool dual);
              ("jobs", Json.Int jobs);
              ("batch", Json.Int batch);
              ( "chunk",
                match chunk with
                | Some c -> Json.Int c
                | None -> Json.String "auto" );
              ("checkpoint", Json.Bool checkpoint);
            ]
          in
          let outcome_fields =
            match Sonar.Fuzzer.json_of_outcome o with
            | Json.Obj fields -> fields
            | other -> [ ("outcome", other) ]
          in
          let metrics =
            match snapshot with
            | Some s -> [ ("metrics", Telemetry.Metrics.to_json s) ]
            | None -> []
          in
          let obs_fields =
            match observatory with
            | Some s -> [ ("observatory", Telemetry.Observatory.to_json s) ]
            | None -> []
          in
          print_endline
            (Json.to_string (Json.Obj (meta @ outcome_fields @ metrics @ obs_fields)))
      | `Text ->
          Format.printf
            "%s, %d iterations (strategy %s):@.  contention coverage %.0f \
             netlist points@.  %d secret-reflecting timing differences in %d \
             testcases@."
            dut iterations strategy.Sonar.Feedback.name
            o.Sonar.Fuzzer.final_coverage o.final_timing_diffs
            o.testcases_with_diffs;
          List.iteri
            (fun k (iteration, report) ->
              if k < 3 then
                Format.printf "@.finding at iteration %d:@.%a@." iteration
                  Sonar.Detector.pp_report report)
            o.reports;
          Option.iter
            (fun s -> Format.printf "@.%a@." Telemetry.Metrics.pp s)
            snapshot;
          Option.iter
            (fun s ->
              Format.printf "@.%a@." (fun ppf -> Telemetry.Observatory.pp ppf) s)
            observatory);
      0)

(* ------------------------------------------------------------------ *)
(* report                                                              *)

let report trace top format output sidecar no_sidecar =
  match Sonar.Report.load trace with
  | Error msg ->
      Printf.eprintf "sonar report: %s\n" msg;
      1
  | Ok r ->
      if Sonar.Report.skipped r > 0 then
        Printf.eprintf "sonar report: skipped %d unparseable line(s) of %s\n"
          (Sonar.Report.skipped r) trace;
      let doc =
        match format with
        | `Markdown -> Sonar.Report.to_markdown ~top r
        | `Html -> Sonar.Report.to_html ~top r
      in
      (match output with
      | None -> print_string doc
      | Some path ->
          let oc = open_out path in
          output_string oc doc;
          close_out oc);
      if not no_sidecar then begin
        let path =
          match sidecar with Some p -> p | None -> trace ^ ".report.json"
        in
        let oc = open_out path in
        output_string oc (Json.to_string (Sonar.Report.to_json r));
        output_char oc '\n';
        close_out oc
      end;
      0

(* ------------------------------------------------------------------ *)
(* channels                                                            *)

let channels id format =
  let selected =
    match id with
    | Some id -> Option.map (fun c -> [ c ]) (Sonar.Channels.find id)
    | None -> Some Sonar.Channels.all
  in
  match selected with
  | None -> unknown_channel (Option.get id)
  | Some selected -> (
      let measurements = List.map Sonar.Channels.measure selected in
      match format with
      | `Text ->
          List.iter
            (fun m -> Format.printf "%a@." Sonar.Channels.pp_measurement m)
            measurements;
          0
      | `Json ->
          print_endline
            (Json.to_string
               (Json.Obj
                  [
                    ("command", Json.String "channels");
                    ( "channels",
                      Json.List
                        (List.map Sonar.Channels.json_of_measurement measurements)
                    );
                  ]));
          0)

(* ------------------------------------------------------------------ *)
(* attack                                                              *)

let attack id trials bits =
  match Sonar.Channels.find id with
  | None -> unknown_channel id
  | Some c -> (
      match Sonar.Attack.gadget_for id with
      | None ->
          Format.printf "%s was previously known; the paper builds no PoC for it@." id;
          0
      | Some gadget ->
          let cfg = Option.get (Sonar_uarch.Config.by_name c.dut) in
          let r =
            Sonar.Attack.run_poc ~trials ~key_bits:bits cfg ~channel_id:id gadget
          in
          Format.printf "%a@." Sonar.Attack.pp_result r;
          0)

(* ------------------------------------------------------------------ *)
(* command definitions                                                 *)

let analyze_cmd =
  let doc = "identify and filter contention points in a DUT netlist" in
  let profile =
    Arg.(
      value
      & flag
      & info [ "profile" ]
          ~doc:
            "Record profiling spans around the analysis pipeline \
             (identification, counting, filtering) and print the span tree.")
  in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(const analyze $ dut_arg $ format_arg $ profile)

let fuzz_cmd =
  let doc = "run a contention-guided fuzzing campaign" in
  let iters =
    Arg.(value & opt int 200 & info [ "n"; "iterations" ] ~docv:"N" ~doc:"Iterations.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.") in
  let strategy =
    Arg.(
      value
      & opt (some string) None
      & info [ "strategy" ] ~docv:"NAME"
          ~doc:
            "Feedback strategy driving the campaign (see \
             $(b,--list-strategies)). Default: $(b,sonar), the paper's \
             policy; $(b,--random) is shorthand for $(b,--strategy random).")
  in
  let list =
    Arg.(
      value
      & flag
      & info [ "list-strategies" ]
          ~doc:"List the shipped feedback strategies and exit.")
  in
  let random_mode =
    Arg.(value & flag & info [ "random" ] ~doc:"Disable all guidance (baseline).")
  in
  let dual =
    Arg.(value & flag & info [ "dual" ] ~doc:"Dual-core testcases (Figure 4b).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for parallel testcase execution (default: \
             \\$(b,SONAR_JOBS) or the core count). Results are identical \
             for every N; only wall-clock changes.")
  in
  let batch =
    Arg.(
      value
      & opt int Sonar.Fuzzer.default_batch
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "Generation size (candidates drawn before feedback lands). \
             Shapes the campaign; keep it fixed when comparing runs.")
  in
  let chunk =
    Arg.(
      value
      & opt (some int) None
      & info [ "chunk" ] ~docv:"N"
          ~doc:
            "Testcases per parallel executor task (a slice of the \
             generation). Default: derived from --jobs (about two slices \
             per worker). Results are identical for every N; only \
             wall-clock changes.")
  in
  let no_checkpoint =
    Arg.(
      value
      & flag
      & info [ "no-checkpoint" ]
          ~doc:
            "Disable prefix-checkpointed dual runs: simulate each \
             testcase's shared pre-secret prefix twice instead of once. \
             Results and traces are bit-identical either way; only the \
             simulated-cycle statistics (cycles_simulated, cycles_saved, \
             checkpoint_hits) change.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write the campaign's telemetry events to $(docv) as JSONL \
             (one event per line; deterministic for a fixed seed/batch, \
             independent of --jobs).")
  in
  let timings =
    Arg.(
      value
      & flag
      & info [ "timings" ]
          ~doc:
            "Include the wall-clock event class (phase timings and \
             profiling spans) in the $(b,--trace) file. These events are \
             not deterministic, so traces written with this flag are not \
             byte-comparable across runs.")
  in
  let stats =
    Arg.(
      value
      & flag
      & info [ "stats" ]
          ~doc:
            "Aggregate telemetry in memory and report campaign metrics \
             (counters, per-phase wall-clock, events/sec) plus the \
             contention observatory (interval histograms, coverage \
             heatmap, profiling span tree) at the end.")
  in
  let progress =
    Arg.(
      value
      & opt (some int) None
      & info [ "progress" ] ~docv:"N"
          ~doc:"Report progress on stderr every $(docv) testcases.")
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const fuzz $ dut_arg $ iters $ seed $ strategy $ list $ random_mode
      $ dual $ jobs $ batch $ chunk $ no_checkpoint $ trace $ timings $ stats
      $ progress $ format_arg)

let report_cmd =
  let doc = "build an offline report from a JSONL telemetry trace" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Replays a trace written by $(b,sonar fuzz --trace FILE) into a \
         self-contained document: campaign summary, coverage over \
         iterations, top contention points by minimum observed interval \
         (with sparkline histograms), per-component coverage heatmap, \
         profiling span tree (when the trace was written with \
         $(b,--timings)), and CCD finding summaries.";
      `P
        "A machine-readable JSON sidecar is written next to the trace \
         ($(i,TRACE).report.json) unless $(b,--no-sidecar) is given.";
    ]
  in
  let trace =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE" ~doc:"JSONL telemetry trace to report on.")
  in
  let top =
    Arg.(
      value
      & opt int 10
      & info [ "top" ] ~docv:"N"
          ~doc:"Contention points shown in the histogram table.")
  in
  let format =
    Arg.(
      value
      & opt
          (enum [ ("md", `Markdown); ("markdown", `Markdown); ("html", `Html) ])
          `Markdown
      & info [ "format" ] ~docv:"FMT" ~doc:"Report format: $(b,md) or $(b,html).")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the report to $(docv) instead of stdout.")
  in
  let sidecar =
    Arg.(
      value
      & opt (some string) None
      & info [ "sidecar" ] ~docv:"FILE"
          ~doc:"JSON sidecar path (default: $(i,TRACE).report.json).")
  in
  let no_sidecar =
    Arg.(value & flag & info [ "no-sidecar" ] ~doc:"Do not write the JSON sidecar.")
  in
  Cmd.v (Cmd.info "report" ~doc ~man)
    Term.(const report $ trace $ top $ format $ output $ sidecar $ no_sidecar)

let channels_cmd =
  let doc = "measure the catalogued side channels (Table 3)" in
  let id =
    Arg.(value & opt (some string) None & info [ "id" ] ~docv:"Sx" ~doc:"Channel id.")
  in
  Cmd.v (Cmd.info "channels" ~doc) Term.(const channels $ id $ format_arg)

let attack_cmd =
  let doc = "run a Meltdown-style exploitability PoC (§8.5)" in
  let id = Arg.(value & opt string "S11" & info [ "id" ] ~docv:"Sx" ~doc:"Channel id.") in
  let trials = Arg.(value & opt int 5 & info [ "t"; "trials" ] ~doc:"Trials.") in
  let bits = Arg.(value & opt int 32 & info [ "bits" ] ~doc:"Key bits.") in
  Cmd.v (Cmd.info "attack" ~doc) Term.(const attack $ id $ trials $ bits)

let () =
  let doc = "Sonar: hardware fuzzing for contention side channels" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "sonar" ~version:"1.0.0" ~doc)
          [ analyze_cmd; fuzz_cmd; report_cmd; channels_cmd; attack_cmd ]))
