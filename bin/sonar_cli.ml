(* Command-line interface to the Sonar framework.

     sonar analyze  --dut boom            static identification & filtering
     sonar fuzz     --dut boom -n 500     guided fuzzing campaign
     sonar channels [--id S5]             measure the Table 3 channels
     sonar attack   --id S11 -t 10        Meltdown-style PoC
*)

open Cmdliner

let dut_arg =
  let doc = "Design under test: boom or nutshell." in
  Arg.(value & opt string "boom" & info [ "dut" ] ~docv:"DUT" ~doc)

let config_of_name name =
  match Sonar_uarch.Config.by_name name with
  | Some cfg -> Ok cfg
  | None -> Error (`Msg (Printf.sprintf "unknown DUT %s (boom|nutshell)" name))

let analyze dut =
  match config_of_name dut with
  | Error (`Msg m) -> prerr_endline m; 1
  | Ok cfg ->
      let circuit = Sonar_dut.Netlist_gen.generate ~pad:false cfg in
      Format.printf "%a@." Sonar_ir.Analysis.pp_summary
        (Sonar_ir.Analysis.summarize circuit);
      0

let fuzz dut iterations seed random_mode dual jobs =
  match config_of_name dut with
  | Error (`Msg m) -> prerr_endline m; 1
  | Ok cfg ->
      let strategy =
        if random_mode then Sonar.Fuzzer.random_strategy
        else Sonar.Fuzzer.full_strategy
      in
      let jobs =
        match jobs with Some j -> max 1 j | None -> Sonar.Domain_pool.default_jobs ()
      in
      let o =
        Sonar.Fuzzer.run ~seed:(Int64.of_int seed) ~dual ~jobs cfg strategy
          ~iterations
      in
      Format.printf
        "%s, %d iterations (%s):@.  contention coverage %.0f netlist points@.  \
         %d secret-reflecting timing differences in %d testcases@."
        dut iterations
        (if random_mode then "random testing" else "guided")
        o.Sonar.Fuzzer.final_coverage o.final_timing_diffs o.testcases_with_diffs;
      List.iteri
        (fun k (iteration, report) ->
          if k < 3 then
            Format.printf "@.finding at iteration %d:@.%a@." iteration
              Sonar.Detector.pp_report report)
        o.reports;
      0

let channels id =
  let selected =
    match id with
    | Some id -> (
        match Sonar.Channels.find id with Some c -> [ c ] | None -> [])
    | None -> Sonar.Channels.all
  in
  if selected = [] then begin
    prerr_endline "unknown channel id (S1..S14)";
    1
  end
  else begin
    List.iter
      (fun c ->
        Format.printf "%a@." Sonar.Channels.pp_measurement
          (Sonar.Channels.measure c))
      selected;
    0
  end

let attack id trials bits =
  match Sonar.Channels.find id with
  | None -> prerr_endline "unknown channel id (S1..S14)"; 1
  | Some c -> (
      match Sonar.Attack.gadget_for id with
      | None ->
          Format.printf "%s was previously known; the paper builds no PoC for it@." id;
          0
      | Some gadget ->
          let cfg = Option.get (Sonar_uarch.Config.by_name c.dut) in
          let r =
            Sonar.Attack.run_poc ~trials ~key_bits:bits cfg ~channel_id:id gadget
          in
          Format.printf "%a@." Sonar.Attack.pp_result r;
          0)

let analyze_cmd =
  let doc = "identify and filter contention points in a DUT netlist" in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const analyze $ dut_arg)

let fuzz_cmd =
  let doc = "run a contention-guided fuzzing campaign" in
  let iters =
    Arg.(value & opt int 200 & info [ "n"; "iterations" ] ~docv:"N" ~doc:"Iterations.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.") in
  let random_mode =
    Arg.(value & flag & info [ "random" ] ~doc:"Disable all guidance (baseline).")
  in
  let dual =
    Arg.(value & flag & info [ "dual" ] ~doc:"Dual-core testcases (Figure 4b).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for parallel testcase execution (default: \
             \\$(b,SONAR_JOBS) or the core count). Results are identical \
             for every N; only wall-clock changes.")
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(const fuzz $ dut_arg $ iters $ seed $ random_mode $ dual $ jobs)

let channels_cmd =
  let doc = "measure the catalogued side channels (Table 3)" in
  let id =
    Arg.(value & opt (some string) None & info [ "id" ] ~docv:"Sx" ~doc:"Channel id.")
  in
  Cmd.v (Cmd.info "channels" ~doc) Term.(const channels $ id)

let attack_cmd =
  let doc = "run a Meltdown-style exploitability PoC (§8.5)" in
  let id = Arg.(value & opt string "S11" & info [ "id" ] ~docv:"Sx" ~doc:"Channel id.") in
  let trials = Arg.(value & opt int 5 & info [ "t"; "trials" ] ~doc:"Trials.") in
  let bits = Arg.(value & opt int 32 & info [ "bits" ] ~doc:"Key bits.") in
  Cmd.v (Cmd.info "attack" ~doc) Term.(const attack $ id $ trials $ bits)

let () =
  let doc = "Sonar: hardware fuzzing for contention side channels" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "sonar" ~version:"1.0.0" ~doc)
          [ analyze_cmd; fuzz_cmd; channels_cmd; attack_cmd ]))
