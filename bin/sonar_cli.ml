(* Command-line interface to the Sonar framework.

     sonar analyze  --dut boom            static identification & filtering
     sonar fuzz     --dut boom -n 500     guided fuzzing campaign
     sonar report   trace.jsonl ...       offline report from JSONL trace(s)
     sonar serve    trace.jsonl           HTTP observability over a trace
     sonar channels [--id S5]             measure the Table 3 channels
     sonar attack   --id S11 -t 10        Meltdown-style PoC

   Machine-readable output: `--format json` (analyze/fuzz/channels) emits
   one stable JSON document on stdout; `sonar fuzz --trace FILE` streams
   the campaign's telemetry events as JSONL (schema: DESIGN.md §9), and
   `sonar report` turns one or more such traces (rotated segments or
   per-shard files) into a markdown/HTML document plus a JSON sidecar.
   Live campaigns expose /healthz, /snapshot and /metrics (Prometheus)
   via `sonar fuzz --serve PORT`; `sonar serve` does the same offline. *)

open Cmdliner
module Json = Sonar.Json
module Telemetry = Sonar.Telemetry

let dut_arg =
  let doc = "Design under test: boom or nutshell." in
  Arg.(value & opt string "boom" & info [ "dut" ] ~docv:"DUT" ~doc)

let format_arg =
  let doc = "Output format: $(b,text) (human-readable) or $(b,json) (one \
             stable JSON document on stdout)." in
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FMT" ~doc)

let config_of_name name =
  match Sonar_uarch.Config.by_name name with
  | Some cfg -> Ok cfg
  | None -> Error (`Msg (Printf.sprintf "unknown DUT %s (boom|nutshell)" name))

let unknown_channel id =
  Printf.eprintf "unknown channel id %s; valid ids: %s\n" id
    (String.concat ", " (List.map (fun c -> c.Sonar.Channels.id) Sonar.Channels.all));
  1

(* Install the profiling hooks of every instrumented pipeline stage, feeding
   one span recorder; returns the uninstaller. *)
let install_profiler emit =
  let recorder = Telemetry.Span.recorder emit in
  let set h =
    Sonar_ir.Analysis.set_profiler h;
    Sonar_ir.Instrument.set_profiler h;
    Sonar_rtlsim.Engine.set_profiler h
  in
  set (Some (Telemetry.Span.hook recorder));
  fun () -> set None

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)

let json_of_summary dut (s : Sonar_ir.Analysis.summary) : Json.t =
  Json.Obj
    [
      ("command", Json.String "analyze");
      ("dut", Json.String dut);
      ("circuit", Json.String s.circuit_name);
      ("naive_mux_points", Json.Int s.naive_mux_points);
      ("identified_points", Json.Int s.identified_points);
      ("monitored_points", Json.Int s.monitored_points);
      ("reduction_vs_naive", Json.Float s.reduction_vs_naive);
      ("reduction_by_filter", Json.Float s.reduction_by_filter);
      ( "per_component",
        Json.List
          (List.map
             (fun (cs : Sonar_ir.Analysis.component_stats) ->
               Json.Obj
                 [
                   ( "component",
                     Json.String (Sonar_ir.Component.to_string cs.component) );
                   ("identified", Json.Int cs.identified);
                   ("monitored", Json.Int cs.monitored);
                 ])
             s.per_component) );
    ]

let pp_span_tree ppf tree =
  let rec render indent (n : Telemetry.Observatory.span_node) =
    Format.fprintf ppf "%s%s  %dx  %.3fs@." indent n.span_name n.calls n.seconds;
    List.iter (render (indent ^ "  ")) n.children
  in
  List.iter (render "") tree

let analyze dut format profile =
  match config_of_name dut with
  | Error (`Msg m) -> prerr_endline m; 1
  | Ok cfg ->
      let obs = if profile then Some (Telemetry.observatory ()) else None in
      let uninstall =
        match obs with
        | Some (sink, _) -> install_profiler sink.Telemetry.emit
        | None -> Fun.id
      in
      let summary =
        Fun.protect ~finally:uninstall @@ fun () ->
        let circuit = Sonar_dut.Netlist_gen.generate ~pad:false cfg in
        Sonar_ir.Analysis.summarize circuit
      in
      let snapshot = Option.map (fun (_, snap) -> snap ()) obs in
      (match format with
      | `Text ->
          Format.printf "%a@." Sonar_ir.Analysis.pp_summary summary;
          Option.iter
            (fun (s : Telemetry.Observatory.snapshot) ->
              Format.printf "@.profiling spans:@.%a" pp_span_tree s.span_tree)
            snapshot
      | `Json ->
          let doc =
            match (json_of_summary dut summary, snapshot) with
            | Json.Obj fields, Some s ->
                Json.Obj
                  (fields @ [ ("profile", Telemetry.Observatory.to_json s) ])
            | doc, _ -> doc
          in
          print_endline (Json.to_string doc));
      0

(* ------------------------------------------------------------------ *)
(* live observability (fuzz --serve and the serve subcommand)          *)

(* A mutex-synchronized aggregator + observatory pair and the standard
   three HTTP routes over their snapshots. The returned sink is safe to
   feed from the campaign domain while the server domain snapshots. *)
let live_observability ?(status = "running") ~extra_health () =
  let mutex = Mutex.create () in
  let agg_sink, agg_snap = Telemetry.aggregator () in
  let obs_sink, obs_snap = Telemetry.observatory () in
  let status = ref status in
  let sink =
    Telemetry.synchronized mutex
      (Telemetry.make
         ~close:(fun () ->
           agg_sink.Telemetry.close ();
           obs_sink.Telemetry.close ())
         (fun ev ->
           agg_sink.Telemetry.emit ev;
           obs_sink.Telemetry.emit ev;
           match ev with
           | Telemetry.Campaign_end e -> status := e.outcome
           | Telemetry.Campaign_start _ -> ()
           | _ -> ()))
  in
  let snap () =
    Mutex.protect mutex (fun () -> (agg_snap (), obs_snap (), !status))
  in
  let handler =
    Sonar.Serve.routes
      ~healthz:(fun () ->
        let m, _, st = snap () in
        Json.Obj
          ([ ("status", Json.String st) ]
          @ extra_health
          @ [
              ("generations", Json.Int m.Telemetry.Metrics.generations);
              ("testcases", Json.Int m.testcases);
              ("coverage", Json.Float m.coverage);
              ("corpus_size", Json.Int m.corpus_size);
              ("wall_seconds", Json.Float m.wall_seconds);
            ]))
      ~snapshot:(fun () ->
        let m, o, _ = snap () in
        Json.Obj
          [
            ("metrics", Telemetry.Metrics.to_json m);
            ("observatory", Telemetry.Observatory.to_json o);
          ])
      ~metrics:(fun () ->
        let m, o, _ = snap () in
        Sonar.Serve.prometheus m o)
  in
  (sink, handler)

let valid_port ~flag = function
  | Some p when p < 0 || p > 65535 ->
      Printf.eprintf "sonar: %s must be a port number 0-65535 (got %d)\n" flag p;
      exit 1
  | p -> p

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)

(* Strict validation: a nonsensical value is a user error, not something to
   silently clamp — a clamped `--jobs 0` would report jobs=1 results under a
   flag that said otherwise. *)
let positive_or_die ~flag = function
  | Some v when v < 1 ->
      Printf.eprintf "sonar fuzz: %s must be >= 1 (got %d)\n" flag v;
      exit 1
  | v -> v

let list_strategies () =
  List.iter
    (fun (name, description) -> Printf.printf "%-18s %s\n" name description)
    Sonar.Feedback.all;
  0

let unknown_strategy name =
  Printf.eprintf "unknown strategy %s; valid strategies: %s\n" name
    (String.concat ", " Sonar.Feedback.names);
  1

let fuzz dut iterations seed strategy_name list random_mode dual jobs batch
    chunk no_checkpoint trace timings rotate_bytes rotate_generations
    serve_port stats progress format =
  if list then list_strategies ()
  else
  let jobs = positive_or_die ~flag:"--jobs" jobs in
  let checkpoint = not no_checkpoint in
  let batch =
    Option.get (positive_or_die ~flag:"--batch" (Some batch))
  in
  let chunk = positive_or_die ~flag:"--chunk" chunk in
  let rotate_bytes = positive_or_die ~flag:"--rotate-bytes" rotate_bytes in
  let rotate_generations =
    positive_or_die ~flag:"--rotate-generations" rotate_generations
  in
  let rotate = rotate_bytes <> None || rotate_generations <> None in
  if rotate && trace = None then begin
    Printf.eprintf
      "sonar fuzz: --rotate-bytes/--rotate-generations need --trace FILE\n";
    exit 1
  end;
  let serve_port = valid_port ~flag:"--serve" serve_port in
  (* --strategy NAME wins; --random remains shorthand for --strategy
     random; the default is the paper's policy. *)
  let strategy_name =
    match strategy_name with
    | Some name -> name
    | None -> if random_mode then "random" else "sonar"
  in
  match Sonar.Feedback.create strategy_name with
  | None -> unknown_strategy strategy_name
  | Some strategy -> (
  match config_of_name dut with
  | Error (`Msg m) -> prerr_endline m; 1
  | Ok cfg ->
      let jobs =
        match jobs with Some j -> j | None -> Sonar.Domain_pool.default_jobs ()
      in
      let trace_sink =
        Option.map
          (fun path ->
            if rotate then
              Telemetry.rotating_jsonl ~timings ?max_bytes:rotate_bytes
                ?max_generations:rotate_generations path
            else Telemetry.jsonl_file ~timings path)
          trace
      in
      let agg = if stats then Some (Telemetry.aggregator ()) else None in
      let obs = if stats then Some (Telemetry.observatory ()) else None in
      let progress_sink =
        Option.map
          (fun every -> Telemetry.progress ~every:(max 1 every) ~total:iterations ())
          progress
      in
      let live =
        Option.map
          (fun port ->
            let extra_health =
              [ ("iterations_target", Json.Int iterations) ]
            in
            let sink, handler = live_observability ~extra_health () in
            let server = Sonar.Serve.start ~port handler in
            Printf.eprintf
              "sonar fuzz: observability on http://127.0.0.1:%d/ \
               (healthz, snapshot, metrics)\n%!"
              (Sonar.Serve.port server);
            (sink, server))
          serve_port
      in
      let sinks =
        List.filter_map Fun.id
          [ trace_sink; Option.map fst agg; Option.map fst obs; progress_sink;
            Option.map fst live ]
      in
      let options =
        {
          Sonar.Fuzzer.Options.default with
          seed = Int64.of_int seed;
          dual;
          jobs;
          batch;
          chunk;
          checkpoint;
          sinks;
        }
      in
      (* Close the sinks however the campaign ends ([Telemetry.close] is
         idempotent, so the fuzzer's own close-on-raise path composes): a
         crash mid-campaign still leaves a flushed, parseable trace. *)
      let o =
        Fun.protect
          ~finally:(fun () ->
            List.iter Telemetry.close sinks;
            Option.iter (fun (_, server) -> Sonar.Serve.stop server) live)
          (fun () -> Sonar.Fuzzer.run ~options cfg strategy ~iterations)
      in
      let snapshot = Option.map (fun (_, snap) -> snap ()) agg in
      let observatory = Option.map (fun (_, snap) -> snap ()) obs in
      (match format with
      | `Json ->
          let meta =
            [
              ("command", Json.String "fuzz");
              ("dut", Json.String dut);
              ("iterations", Json.Int iterations);
              ("seed", Json.Int seed);
              ("strategy", Json.String strategy.Sonar.Feedback.name);
              ("dual", Json.Bool dual);
              ("jobs", Json.Int jobs);
              ("batch", Json.Int batch);
              ( "chunk",
                match chunk with
                | Some c -> Json.Int c
                | None -> Json.String "auto" );
              ("checkpoint", Json.Bool checkpoint);
            ]
          in
          let outcome_fields =
            match Sonar.Fuzzer.json_of_outcome o with
            | Json.Obj fields -> fields
            | other -> [ ("outcome", other) ]
          in
          let metrics =
            match snapshot with
            | Some s -> [ ("metrics", Telemetry.Metrics.to_json s) ]
            | None -> []
          in
          let obs_fields =
            match observatory with
            | Some s -> [ ("observatory", Telemetry.Observatory.to_json s) ]
            | None -> []
          in
          print_endline
            (Json.to_string (Json.Obj (meta @ outcome_fields @ metrics @ obs_fields)))
      | `Text ->
          Format.printf
            "%s, %d iterations (strategy %s):@.  contention coverage %.0f \
             netlist points@.  %d secret-reflecting timing differences in %d \
             testcases@."
            dut iterations strategy.Sonar.Feedback.name
            o.Sonar.Fuzzer.final_coverage o.final_timing_diffs
            o.testcases_with_diffs;
          List.iteri
            (fun k (iteration, report) ->
              if k < 3 then
                Format.printf "@.finding at iteration %d:@.%a@." iteration
                  Sonar.Detector.pp_report report)
            o.reports;
          Option.iter
            (fun s -> Format.printf "@.%a@." Telemetry.Metrics.pp s)
            snapshot;
          Option.iter
            (fun s ->
              Format.printf "@.%a@." (fun ppf -> Telemetry.Observatory.pp ppf) s)
            observatory);
      0)

(* ------------------------------------------------------------------ *)
(* report                                                              *)

let report traces top format output sidecar no_sidecar strict label =
  match Sonar.Report.load_many ?label traces with
  | Error msg ->
      Printf.eprintf "sonar report: %s\n" msg;
      1
  | Ok r ->
      let shown =
        match label with Some l -> l | None -> String.concat ", " traces
      in
      if Sonar.Report.skipped r > 0 then
        Printf.eprintf "sonar report: skipped %d unparseable line(s) of %s\n"
          (Sonar.Report.skipped r) shown;
      let doc =
        match format with
        | `Markdown -> Sonar.Report.to_markdown ~top r
        | `Html -> Sonar.Report.to_html ~top r
      in
      (match output with
      | None -> print_string doc
      | Some path ->
          let oc = open_out path in
          output_string oc doc;
          close_out oc);
      if not no_sidecar then begin
        let path =
          match sidecar with
          | Some p -> p
          | None -> List.hd traces ^ ".report.json"
        in
        let oc = open_out path in
        output_string oc (Json.to_string (Sonar.Report.to_json r));
        output_char oc '\n';
        close_out oc
      end;
      if strict && Sonar.Report.skipped r > 0 then begin
        Printf.eprintf
          "sonar report: --strict: %d line(s) did not parse\n"
          (Sonar.Report.skipped r);
        2
      end
      else 0

(* ------------------------------------------------------------------ *)
(* serve                                                               *)

(* Replay trace file(s) through the live observability sink, then serve
   the endpoints until interrupted. Resync lines (segment-head state
   replays written by rotation) are dropped once a real event has been
   seen, mirroring the report merger, so counters are not double-counted
   when several rotated segments are given. With --follow, the last file
   keeps being tailed for appended complete lines — point it at the
   trace of a campaign still running. *)
let serve traces port follow =
  let port = Option.get (valid_port ~flag:"--port" (Some port)) in
  let extra_health =
    [ ("traces", Json.List (List.map (fun t -> Json.String t) traces)) ]
  in
  let sink, handler =
    live_observability ~status:"replaying" ~extra_health ()
  in
  let seen_real = ref false in
  let feed line =
    if String.trim line <> "" then
      match Json.of_string line with
      | exception Json.Parse_error _ -> ()
      | doc -> (
          match Telemetry.event_of_json doc with
          | None -> ()
          | Some ev ->
              let resync = Telemetry.json_is_resync doc in
              if not (resync && !seen_real) then begin
                if not resync then seen_real := true;
                sink.Telemetry.emit ev
              end)
  in
  let replay_whole path =
    let ic = open_in_bin path in
    (try
       while true do
         feed (input_line ic)
       done
     with End_of_file -> ());
    close_in ic
  in
  (* The tailed file is consumed by byte offset, complete lines only, so
     a line caught mid-write is fed on the next poll instead of half now. *)
  let carry = Buffer.create 256 in
  let offset = ref 0 in
  let drain path =
    match open_in_bin path with
    | exception Sys_error msg -> Printf.eprintf "sonar serve: %s\n%!" msg
    | ic ->
        let len = in_channel_length ic in
        if len > !offset then begin
          seek_in ic !offset;
          Buffer.add_string carry (really_input_string ic (len - !offset));
          offset := len;
          let data = Buffer.contents carry in
          Buffer.clear carry;
          let rec split start =
            match String.index_from_opt data start '\n' with
            | Some i ->
                feed (String.sub data start (i - start));
                split (i + 1)
            | None ->
                Buffer.add_substring carry data start
                  (String.length data - start)
          in
          split 0
        end;
        close_in ic
  in
  let rec replay = function
    | [] -> ()
    | [ last ] -> drain last
    | f :: rest ->
        replay_whole f;
        replay rest
  in
  replay traces;
  let server = Sonar.Serve.start ~port handler in
  Printf.eprintf
    "sonar serve: %d trace file(s) replayed; listening on \
     http://127.0.0.1:%d/ (healthz, snapshot, metrics)%s\n%!"
    (List.length traces) (Sonar.Serve.port server)
    (if follow then " — following" else "");
  let last = List.nth traces (List.length traces - 1) in
  while true do
    Unix.sleepf (if follow then 0.5 else 3600.);
    if follow then drain last
  done;
  0

(* ------------------------------------------------------------------ *)
(* channels                                                            *)

let channels id format =
  let selected =
    match id with
    | Some id -> Option.map (fun c -> [ c ]) (Sonar.Channels.find id)
    | None -> Some Sonar.Channels.all
  in
  match selected with
  | None -> unknown_channel (Option.get id)
  | Some selected -> (
      let measurements = List.map Sonar.Channels.measure selected in
      match format with
      | `Text ->
          List.iter
            (fun m -> Format.printf "%a@." Sonar.Channels.pp_measurement m)
            measurements;
          0
      | `Json ->
          print_endline
            (Json.to_string
               (Json.Obj
                  [
                    ("command", Json.String "channels");
                    ( "channels",
                      Json.List
                        (List.map Sonar.Channels.json_of_measurement measurements)
                    );
                  ]));
          0)

(* ------------------------------------------------------------------ *)
(* attack                                                              *)

let attack id trials bits =
  match Sonar.Channels.find id with
  | None -> unknown_channel id
  | Some c -> (
      match Sonar.Attack.gadget_for id with
      | None ->
          Format.printf "%s was previously known; the paper builds no PoC for it@." id;
          0
      | Some gadget ->
          let cfg = Option.get (Sonar_uarch.Config.by_name c.dut) in
          let r =
            Sonar.Attack.run_poc ~trials ~key_bits:bits cfg ~channel_id:id gadget
          in
          Format.printf "%a@." Sonar.Attack.pp_result r;
          0)

(* ------------------------------------------------------------------ *)
(* command definitions                                                 *)

let analyze_cmd =
  let doc = "identify and filter contention points in a DUT netlist" in
  let profile =
    Arg.(
      value
      & flag
      & info [ "profile" ]
          ~doc:
            "Record profiling spans around the analysis pipeline \
             (identification, counting, filtering) and print the span tree.")
  in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(const analyze $ dut_arg $ format_arg $ profile)

let fuzz_cmd =
  let doc = "run a contention-guided fuzzing campaign" in
  let iters =
    Arg.(value & opt int 200 & info [ "n"; "iterations" ] ~docv:"N" ~doc:"Iterations.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.") in
  let strategy =
    Arg.(
      value
      & opt (some string) None
      & info [ "strategy" ] ~docv:"NAME"
          ~doc:
            "Feedback strategy driving the campaign (see \
             $(b,--list-strategies)). Default: $(b,sonar), the paper's \
             policy; $(b,--random) is shorthand for $(b,--strategy random).")
  in
  let list =
    Arg.(
      value
      & flag
      & info [ "list-strategies" ]
          ~doc:"List the shipped feedback strategies and exit.")
  in
  let random_mode =
    Arg.(value & flag & info [ "random" ] ~doc:"Disable all guidance (baseline).")
  in
  let dual =
    Arg.(value & flag & info [ "dual" ] ~doc:"Dual-core testcases (Figure 4b).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for parallel testcase execution (default: \
             \\$(b,SONAR_JOBS) or the core count). Results are identical \
             for every N; only wall-clock changes.")
  in
  let batch =
    Arg.(
      value
      & opt int Sonar.Fuzzer.default_batch
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "Generation size (candidates drawn before feedback lands). \
             Shapes the campaign; keep it fixed when comparing runs.")
  in
  let chunk =
    Arg.(
      value
      & opt (some int) None
      & info [ "chunk" ] ~docv:"N"
          ~doc:
            "Testcases per parallel executor task (a slice of the \
             generation). Default: derived from --jobs (about two slices \
             per worker). Results are identical for every N; only \
             wall-clock changes.")
  in
  let no_checkpoint =
    Arg.(
      value
      & flag
      & info [ "no-checkpoint" ]
          ~doc:
            "Disable prefix-checkpointed dual runs: simulate each \
             testcase's shared pre-secret prefix twice instead of once. \
             Results and traces are bit-identical either way; only the \
             simulated-cycle statistics (cycles_simulated, cycles_saved, \
             checkpoint_hits) change.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write the campaign's telemetry events to $(docv) as JSONL \
             (one event per line; deterministic for a fixed seed/batch, \
             independent of --jobs).")
  in
  let timings =
    Arg.(
      value
      & flag
      & info [ "timings" ]
          ~doc:
            "Include the wall-clock event class (phase timings and \
             profiling spans) in the $(b,--trace) file. These events are \
             not deterministic, so traces written with this flag are not \
             byte-comparable across runs.")
  in
  let rotate_bytes =
    Arg.(
      value
      & opt (some int) None
      & info [ "rotate-bytes" ] ~docv:"N"
          ~doc:
            "Rotate the $(b,--trace) file into numbered segments \
             ($(i,FILE).0000, $(i,FILE).0001, …) once a segment exceeds \
             $(docv) bytes. Rotation happens only at generation \
             boundaries; every segment is self-contained (state-replay \
             header) and $(b,sonar report) merges them back \
             byte-identically.")
  in
  let rotate_generations =
    Arg.(
      value
      & opt (some int) None
      & info [ "rotate-generations" ] ~docv:"N"
          ~doc:
            "Rotate the $(b,--trace) file after every $(docv) \
             generations (combinable with $(b,--rotate-bytes); whichever \
             threshold trips first).")
  in
  let serve =
    Arg.(
      value
      & opt (some int) None
      & info [ "serve" ] ~docv:"PORT"
          ~doc:
            "Serve live observability over HTTP on 127.0.0.1:$(docv) \
             while the campaign runs: $(b,/healthz), $(b,/snapshot) \
             (JSON) and $(b,/metrics) (Prometheus text format). Port 0 \
             picks a free port (printed on stderr).")
  in
  let stats =
    Arg.(
      value
      & flag
      & info [ "stats" ]
          ~doc:
            "Aggregate telemetry in memory and report campaign metrics \
             (counters, per-phase wall-clock, events/sec) plus the \
             contention observatory (interval histograms, coverage \
             heatmap, profiling span tree) at the end.")
  in
  let progress =
    Arg.(
      value
      & opt (some int) None
      & info [ "progress" ] ~docv:"N"
          ~doc:"Report progress on stderr every $(docv) testcases.")
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const fuzz $ dut_arg $ iters $ seed $ strategy $ list $ random_mode
      $ dual $ jobs $ batch $ chunk $ no_checkpoint $ trace $ timings
      $ rotate_bytes $ rotate_generations $ serve $ stats $ progress
      $ format_arg)

let report_cmd =
  let doc = "build an offline report from a JSONL telemetry trace" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Replays a trace written by $(b,sonar fuzz --trace FILE) into a \
         self-contained document: campaign summary, coverage over \
         iterations, top contention points by minimum observed interval \
         (with sparkline histograms), per-component coverage heatmap, \
         profiling span tree (when the trace was written with \
         $(b,--timings)), and CCD finding summaries.";
      `P
        "A machine-readable JSON sidecar is written next to the trace \
         ($(i,TRACE).report.json) unless $(b,--no-sidecar) is given.";
    ]
  in
  let traces =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"TRACE"
          ~doc:
            "JSONL telemetry trace(s) to report on. Several files — \
             rotated segments (give them in segment order, e.g. via a \
             shell glob) or per-shard campaign traces — merge into one \
             report.")
  in
  let top =
    Arg.(
      value
      & opt int 10
      & info [ "top" ] ~docv:"N"
          ~doc:"Contention points shown in the histogram table.")
  in
  let format =
    Arg.(
      value
      & opt
          (enum [ ("md", `Markdown); ("markdown", `Markdown); ("html", `Html) ])
          `Markdown
      & info [ "format" ] ~docv:"FMT" ~doc:"Report format: $(b,md) or $(b,html).")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the report to $(docv) instead of stdout.")
  in
  let sidecar =
    Arg.(
      value
      & opt (some string) None
      & info [ "sidecar" ] ~docv:"FILE"
          ~doc:"JSON sidecar path (default: $(i,TRACE).report.json).")
  in
  let no_sidecar =
    Arg.(value & flag & info [ "no-sidecar" ] ~doc:"Do not write the JSON sidecar.")
  in
  let strict =
    Arg.(
      value
      & flag
      & info [ "strict" ]
          ~doc:
            "Exit with status 2 when any input line fails to parse \
             (after still writing the report and sidecar for whatever \
             did parse).")
  in
  let label =
    Arg.(
      value
      & opt (some string) None
      & info [ "label" ] ~docv:"NAME"
          ~doc:
            "Override the trace label shown in the report (default: the \
             input paths). Pass the same label to compare a merged \
             multi-file report against a single-trace report \
             byte-for-byte.")
  in
  Cmd.v (Cmd.info "report" ~doc ~man)
    Term.(
      const report $ traces $ top $ format $ output $ sidecar $ no_sidecar
      $ strict $ label)

let serve_cmd =
  let doc = "serve HTTP observability endpoints over a telemetry trace" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Replays one or more JSONL traces (rotated segments merge, as in \
         $(b,sonar report)) into in-memory metrics and serves \
         $(b,/healthz), $(b,/snapshot) (JSON) and $(b,/metrics) \
         (Prometheus text format) on 127.0.0.1 until interrupted.";
      `P
        "With $(b,--follow), the last trace keeps being tailed for \
         appended events — point it at the $(b,--trace) file of a \
         campaign that is still running. For in-process live serving, \
         see $(b,sonar fuzz --serve).";
    ]
  in
  let traces =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"TRACE" ~doc:"JSONL telemetry trace(s) to serve.")
  in
  let port =
    Arg.(
      value
      & opt int 8642
      & info [ "port" ] ~docv:"PORT"
          ~doc:"Port to listen on (0 picks a free port, printed on stderr).")
  in
  let follow =
    Arg.(
      value
      & flag
      & info [ "follow" ]
          ~doc:"Keep tailing the last trace file for appended events.")
  in
  Cmd.v (Cmd.info "serve" ~doc ~man)
    Term.(const serve $ traces $ port $ follow)

let channels_cmd =
  let doc = "measure the catalogued side channels (Table 3)" in
  let id =
    Arg.(value & opt (some string) None & info [ "id" ] ~docv:"Sx" ~doc:"Channel id.")
  in
  Cmd.v (Cmd.info "channels" ~doc) Term.(const channels $ id $ format_arg)

let attack_cmd =
  let doc = "run a Meltdown-style exploitability PoC (§8.5)" in
  let id = Arg.(value & opt string "S11" & info [ "id" ] ~docv:"Sx" ~doc:"Channel id.") in
  let trials = Arg.(value & opt int 5 & info [ "t"; "trials" ] ~doc:"Trials.") in
  let bits = Arg.(value & opt int 32 & info [ "bits" ] ~doc:"Key bits.") in
  Cmd.v (Cmd.info "attack" ~doc) Term.(const attack $ id $ trials $ bits)

let () =
  let doc = "Sonar: hardware fuzzing for contention side channels" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "sonar" ~version:"1.0.0" ~doc)
          [ analyze_cmd; fuzz_cmd; report_cmd; serve_cmd; channels_cmd;
            attack_cmd ]))
