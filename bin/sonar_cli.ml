(* Command-line interface to the Sonar framework.

     sonar analyze  --dut boom            static identification & filtering
     sonar fuzz     --dut boom -n 500     guided fuzzing campaign
     sonar channels [--id S5]             measure the Table 3 channels
     sonar attack   --id S11 -t 10        Meltdown-style PoC

   Machine-readable output: `--format json` (analyze/fuzz/channels) emits
   one stable JSON document on stdout; `sonar fuzz --trace FILE` streams
   the campaign's telemetry events as JSONL (schema: DESIGN.md §9). *)

open Cmdliner
module Json = Sonar.Json
module Telemetry = Sonar.Telemetry

let dut_arg =
  let doc = "Design under test: boom or nutshell." in
  Arg.(value & opt string "boom" & info [ "dut" ] ~docv:"DUT" ~doc)

let format_arg =
  let doc = "Output format: $(b,text) (human-readable) or $(b,json) (one \
             stable JSON document on stdout)." in
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FMT" ~doc)

let config_of_name name =
  match Sonar_uarch.Config.by_name name with
  | Some cfg -> Ok cfg
  | None -> Error (`Msg (Printf.sprintf "unknown DUT %s (boom|nutshell)" name))

let unknown_channel id =
  Printf.eprintf "unknown channel id %s; valid ids: %s\n" id
    (String.concat ", " (List.map (fun c -> c.Sonar.Channels.id) Sonar.Channels.all));
  1

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)

let json_of_summary dut (s : Sonar_ir.Analysis.summary) : Json.t =
  Json.Obj
    [
      ("command", Json.String "analyze");
      ("dut", Json.String dut);
      ("circuit", Json.String s.circuit_name);
      ("naive_mux_points", Json.Int s.naive_mux_points);
      ("identified_points", Json.Int s.identified_points);
      ("monitored_points", Json.Int s.monitored_points);
      ("reduction_vs_naive", Json.Float s.reduction_vs_naive);
      ("reduction_by_filter", Json.Float s.reduction_by_filter);
      ( "per_component",
        Json.List
          (List.map
             (fun (cs : Sonar_ir.Analysis.component_stats) ->
               Json.Obj
                 [
                   ( "component",
                     Json.String (Sonar_ir.Component.to_string cs.component) );
                   ("identified", Json.Int cs.identified);
                   ("monitored", Json.Int cs.monitored);
                 ])
             s.per_component) );
    ]

let analyze dut format =
  match config_of_name dut with
  | Error (`Msg m) -> prerr_endline m; 1
  | Ok cfg ->
      let circuit = Sonar_dut.Netlist_gen.generate ~pad:false cfg in
      let summary = Sonar_ir.Analysis.summarize circuit in
      (match format with
      | `Text -> Format.printf "%a@." Sonar_ir.Analysis.pp_summary summary
      | `Json -> print_endline (Json.to_string (json_of_summary dut summary)));
      0

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)

let fuzz dut iterations seed random_mode dual jobs batch trace stats progress
    format =
  match config_of_name dut with
  | Error (`Msg m) -> prerr_endline m; 1
  | Ok cfg ->
      let strategy =
        if random_mode then Sonar.Fuzzer.random_strategy
        else Sonar.Fuzzer.full_strategy
      in
      let jobs =
        match jobs with Some j -> max 1 j | None -> Sonar.Domain_pool.default_jobs ()
      in
      let trace_sink = Option.map (fun path -> Telemetry.jsonl_file path) trace in
      let agg = if stats then Some (Telemetry.aggregator ()) else None in
      let progress_sink =
        Option.map
          (fun every -> Telemetry.progress ~every:(max 1 every) ~total:iterations ())
          progress
      in
      let sinks =
        List.filter_map Fun.id [ trace_sink; Option.map fst agg; progress_sink ]
      in
      let options =
        {
          Sonar.Fuzzer.Options.default with
          seed = Int64.of_int seed;
          dual;
          jobs;
          batch;
          sinks;
        }
      in
      let o = Sonar.Fuzzer.run ~options cfg strategy ~iterations in
      List.iter Telemetry.close sinks;
      let snapshot = Option.map (fun (_, snap) -> snap ()) agg in
      (match format with
      | `Json ->
          let meta =
            [
              ("command", Json.String "fuzz");
              ("dut", Json.String dut);
              ("iterations", Json.Int iterations);
              ("seed", Json.Int seed);
              ( "strategy",
                Json.String (if random_mode then "random" else "guided") );
              ("dual", Json.Bool dual);
              ("jobs", Json.Int jobs);
              ("batch", Json.Int batch);
            ]
          in
          let outcome_fields =
            match Sonar.Fuzzer.json_of_outcome o with
            | Json.Obj fields -> fields
            | other -> [ ("outcome", other) ]
          in
          let metrics =
            match snapshot with
            | Some s -> [ ("metrics", Telemetry.Metrics.to_json s) ]
            | None -> []
          in
          print_endline (Json.to_string (Json.Obj (meta @ outcome_fields @ metrics)))
      | `Text ->
          Format.printf
            "%s, %d iterations (%s):@.  contention coverage %.0f netlist points@.  \
             %d secret-reflecting timing differences in %d testcases@."
            dut iterations
            (if random_mode then "random testing" else "guided")
            o.Sonar.Fuzzer.final_coverage o.final_timing_diffs
            o.testcases_with_diffs;
          List.iteri
            (fun k (iteration, report) ->
              if k < 3 then
                Format.printf "@.finding at iteration %d:@.%a@." iteration
                  Sonar.Detector.pp_report report)
            o.reports;
          Option.iter
            (fun s -> Format.printf "@.%a@." Telemetry.Metrics.pp s)
            snapshot);
      0

(* ------------------------------------------------------------------ *)
(* channels                                                            *)

let channels id format =
  let selected =
    match id with
    | Some id -> Option.map (fun c -> [ c ]) (Sonar.Channels.find id)
    | None -> Some Sonar.Channels.all
  in
  match selected with
  | None -> unknown_channel (Option.get id)
  | Some selected -> (
      let measurements = List.map Sonar.Channels.measure selected in
      match format with
      | `Text ->
          List.iter
            (fun m -> Format.printf "%a@." Sonar.Channels.pp_measurement m)
            measurements;
          0
      | `Json ->
          print_endline
            (Json.to_string
               (Json.Obj
                  [
                    ("command", Json.String "channels");
                    ( "channels",
                      Json.List
                        (List.map Sonar.Channels.json_of_measurement measurements)
                    );
                  ]));
          0)

(* ------------------------------------------------------------------ *)
(* attack                                                              *)

let attack id trials bits =
  match Sonar.Channels.find id with
  | None -> unknown_channel id
  | Some c -> (
      match Sonar.Attack.gadget_for id with
      | None ->
          Format.printf "%s was previously known; the paper builds no PoC for it@." id;
          0
      | Some gadget ->
          let cfg = Option.get (Sonar_uarch.Config.by_name c.dut) in
          let r =
            Sonar.Attack.run_poc ~trials ~key_bits:bits cfg ~channel_id:id gadget
          in
          Format.printf "%a@." Sonar.Attack.pp_result r;
          0)

(* ------------------------------------------------------------------ *)
(* command definitions                                                 *)

let analyze_cmd =
  let doc = "identify and filter contention points in a DUT netlist" in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const analyze $ dut_arg $ format_arg)

let fuzz_cmd =
  let doc = "run a contention-guided fuzzing campaign" in
  let iters =
    Arg.(value & opt int 200 & info [ "n"; "iterations" ] ~docv:"N" ~doc:"Iterations.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.") in
  let random_mode =
    Arg.(value & flag & info [ "random" ] ~doc:"Disable all guidance (baseline).")
  in
  let dual =
    Arg.(value & flag & info [ "dual" ] ~doc:"Dual-core testcases (Figure 4b).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for parallel testcase execution (default: \
             \\$(b,SONAR_JOBS) or the core count). Results are identical \
             for every N; only wall-clock changes.")
  in
  let batch =
    Arg.(
      value
      & opt int Sonar.Fuzzer.default_batch
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "Generation size (candidates drawn before feedback lands). \
             Shapes the campaign; keep it fixed when comparing runs.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write the campaign's telemetry events to $(docv) as JSONL \
             (one event per line; deterministic for a fixed seed/batch, \
             independent of --jobs).")
  in
  let stats =
    Arg.(
      value
      & flag
      & info [ "stats" ]
          ~doc:
            "Aggregate telemetry in memory and report campaign metrics \
             (counters, per-phase wall-clock, events/sec) at the end.")
  in
  let progress =
    Arg.(
      value
      & opt (some int) None
      & info [ "progress" ] ~docv:"N"
          ~doc:"Report progress on stderr every $(docv) testcases.")
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const fuzz $ dut_arg $ iters $ seed $ random_mode $ dual $ jobs $ batch
      $ trace $ stats $ progress $ format_arg)

let channels_cmd =
  let doc = "measure the catalogued side channels (Table 3)" in
  let id =
    Arg.(value & opt (some string) None & info [ "id" ] ~docv:"Sx" ~doc:"Channel id.")
  in
  Cmd.v (Cmd.info "channels" ~doc) Term.(const channels $ id $ format_arg)

let attack_cmd =
  let doc = "run a Meltdown-style exploitability PoC (§8.5)" in
  let id = Arg.(value & opt string "S11" & info [ "id" ] ~docv:"Sx" ~doc:"Channel id.") in
  let trials = Arg.(value & opt int 5 & info [ "t"; "trials" ] ~doc:"Trials.") in
  let bits = Arg.(value & opt int 32 & info [ "bits" ] ~doc:"Key bits.") in
  Cmd.v (Cmd.info "attack" ~doc) Term.(const attack $ id $ trials $ bits)

let () =
  let doc = "Sonar: hardware fuzzing for contention side channels" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "sonar" ~version:"1.0.0" ~doc)
          [ analyze_cmd; fuzz_cmd; channels_cmd; attack_cmd ]))
