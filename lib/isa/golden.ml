type fault =
  | Load_access_fault
  | Store_access_fault
  | Illegal_instruction
  | Breakpoint
  | Env_call

type mem_access = {
  addr : int64;
  size : int;
  is_store : bool;
  value : int64;
  sc_success : bool option;
}

type effect = {
  seq : int;
  index : int;
  pc : int64;
  instr : Instr.t;
  wb : (Reg.t * int64) option;
  mem : mem_access option;
  taken : bool option;
  fault : fault option;
  transient : bool;
}

type exit_reason = Fell_through | Ebreak_halt | Max_instrs

type outcome = {
  trace : effect array;
  transients : (int * effect array) list;
  regs : int64 array;
  memory : Memory.t;
  exit_reason : exit_reason;
}

let default_max_instrs = 4096
let default_transient_window = 128

type state = {
  regs : int64 array;
  mem : Memory.t;
  mutable pc : int64;
  mutable priv : Program.priv;
  mutable reservation : int64 option;
}

let clone s =
  {
    regs = Array.copy s.regs;
    mem = Memory.copy s.mem;
    pc = s.pc;
    priv = s.priv;
    reservation = s.reservation;
  }

let get s r = if Reg.equal r Reg.x0 then 0L else s.regs.(Reg.to_int r)

let set s r v = if not (Reg.equal r Reg.x0) then s.regs.(Reg.to_int r) <- v

let sext32 v = Int64.of_int32 (Int64.to_int32 v)

(* High 64 bits of the unsigned 128-bit product, 32-bit limb decomposition.
   Every partial product and sum stays exact modulo 2^64, so int64 wraparound
   with logical shifts is correct. *)
let umulh a b =
  let mask = 0xFFFF_FFFFL in
  let al = Int64.logand a mask and ah = Int64.shift_right_logical a 32 in
  let bl = Int64.logand b mask and bh = Int64.shift_right_logical b 32 in
  let ll = Int64.mul al bl in
  let lh = Int64.mul al bh in
  let hl = Int64.mul ah bl in
  let hh = Int64.mul ah bh in
  let cross =
    Int64.add
      (Int64.add (Int64.shift_right_logical ll 32) (Int64.logand lh mask))
      (Int64.logand hl mask)
  in
  Int64.add
    (Int64.add hh
       (Int64.add (Int64.shift_right_logical lh 32) (Int64.shift_right_logical hl 32)))
    (Int64.shift_right_logical cross 32)

(* Signed and signed×unsigned variants derived from the unsigned high word. *)
let smulh a b =
  let h = umulh a b in
  let h = if Int64.compare a 0L < 0 then Int64.sub h b else h in
  if Int64.compare b 0L < 0 then Int64.sub h a else h

let sumulh a b =
  let h = umulh a b in
  if Int64.compare a 0L < 0 then Int64.sub h b else h

let rop_eval (op : Instr.rop) a b =
  let shamt64 = Int64.to_int (Int64.logand b 63L) in
  let shamt32 = Int64.to_int (Int64.logand b 31L) in
  let w32 f = sext32 (f ()) in
  match op with
  | ADD -> Int64.add a b
  | SUB -> Int64.sub a b
  | SLL -> Int64.shift_left a shamt64
  | SRL -> Int64.shift_right_logical a shamt64
  | SRA -> Int64.shift_right a shamt64
  | SLT -> if Int64.compare a b < 0 then 1L else 0L
  | SLTU -> if Int64.unsigned_compare a b < 0 then 1L else 0L
  | AND -> Int64.logand a b
  | OR -> Int64.logor a b
  | XOR -> Int64.logxor a b
  | ADDW -> w32 (fun () -> Int64.add a b)
  | SUBW -> w32 (fun () -> Int64.sub a b)
  | SLLW -> w32 (fun () -> Int64.shift_left a shamt32)
  | SRLW ->
      sext32
        (Int64.shift_right_logical (Int64.logand a 0xFFFF_FFFFL) shamt32)
  | SRAW -> sext32 (Int64.shift_right (sext32 a) shamt32)
  | MUL -> Int64.mul a b
  | MULH -> smulh a b
  | MULHU -> umulh a b
  | MULHSU -> sumulh a b
  | DIV ->
      if Int64.equal b 0L then -1L
      else if Int64.equal a Int64.min_int && Int64.equal b (-1L) then Int64.min_int
      else Int64.div a b
  | DIVU -> if Int64.equal b 0L then -1L else Int64.unsigned_div a b
  | REM ->
      if Int64.equal b 0L then a
      else if Int64.equal a Int64.min_int && Int64.equal b (-1L) then 0L
      else Int64.rem a b
  | REMU -> if Int64.equal b 0L then a else Int64.unsigned_rem a b
  | MULW -> w32 (fun () -> Int64.mul a b)
  | DIVW ->
      let a = sext32 a and b = sext32 b in
      if Int64.equal b 0L then -1L
      else if Int64.equal a (-2147483648L) && Int64.equal b (-1L) then
        -2147483648L
      else sext32 (Int64.div a b)
  | DIVUW ->
      let a = Int64.logand a 0xFFFF_FFFFL and b = Int64.logand b 0xFFFF_FFFFL in
      if Int64.equal b 0L then -1L else sext32 (Int64.div a b)
  | REMW ->
      let a = sext32 a and b = sext32 b in
      if Int64.equal b 0L then a
      else if Int64.equal a (-2147483648L) && Int64.equal b (-1L) then 0L
      else sext32 (Int64.rem a b)
  | REMUW ->
      let a = Int64.logand a 0xFFFF_FFFFL and b = Int64.logand b 0xFFFF_FFFFL in
      if Int64.equal b 0L then sext32 a else sext32 (Int64.rem a b)

let iop_eval (op : Instr.iop) a imm =
  let imm64 = Int64.of_int imm in
  match op with
  | ADDI -> Int64.add a imm64
  | SLTI -> if Int64.compare a imm64 < 0 then 1L else 0L
  | SLTIU -> if Int64.unsigned_compare a imm64 < 0 then 1L else 0L
  | ANDI -> Int64.logand a imm64
  | ORI -> Int64.logor a imm64
  | XORI -> Int64.logxor a imm64
  | SLLI -> Int64.shift_left a (imm land 63)
  | SRLI -> Int64.shift_right_logical a (imm land 63)
  | SRAI -> Int64.shift_right a (imm land 63)
  | ADDIW -> sext32 (Int64.add a imm64)
  | SLLIW -> sext32 (Int64.shift_left a (imm land 31))
  | SRLIW -> sext32 (Int64.shift_right_logical (Int64.logand a 0xFFFF_FFFFL) (imm land 31))
  | SRAIW -> sext32 (Int64.shift_right (sext32 a) (imm land 31))

let branch_eval (op : Instr.branch_op) a b =
  match op with
  | BEQ -> Int64.equal a b
  | BNE -> not (Int64.equal a b)
  | BLT -> Int64.compare a b < 0
  | BGE -> Int64.compare a b >= 0
  | BLTU -> Int64.unsigned_compare a b < 0
  | BGEU -> Int64.unsigned_compare a b >= 0

let load_size : Instr.load_op -> int * bool = function
  | LB -> (1, true)
  | LH -> (2, true)
  | LW -> (4, true)
  | LD -> (8, true)
  | LBU -> (1, false)
  | LHU -> (2, false)
  | LWU -> (4, false)

let store_size : Instr.store_op -> int = function
  | SB -> 1
  | SH -> 2
  | SW -> 4
  | SD -> 8

let protected program addr =
  match program.Program.protected_range with
  | Some (lo, hi) ->
      Int64.unsigned_compare addr lo >= 0 && Int64.unsigned_compare addr hi < 0
  | None -> false

(* Execute one instruction. [forward_faults]: execute loads that fault as if
   the data were forwarded (transient semantics). Returns the effect; state
   is updated, including [s.pc]. *)
let exec_one program s ~seq ~index ~transient ~forward_faults =
  let instr = program.Program.instrs.(index) in
  let pc = s.pc in
  let next = Int64.add pc 4L in
  let basic ?wb ?mem ?taken ?fault () =
    { seq; index; pc; instr; wb; mem; taken; fault; transient }
  in
  let user_mode = s.priv = Program.User in
  match instr with
  | Instr.Rtype (op, rd, rs1, rs2) ->
      let v = rop_eval op (get s rs1) (get s rs2) in
      set s rd v;
      s.pc <- next;
      basic ~wb:(rd, v) ()
  | Instr.Itype (op, rd, rs1, imm) ->
      let v = iop_eval op (get s rs1) imm in
      set s rd v;
      s.pc <- next;
      basic ~wb:(rd, v) ()
  | Instr.Lui (rd, imm) ->
      let v = sext32 (Int64.shift_left (Int64.of_int imm) 12) in
      set s rd v;
      s.pc <- next;
      basic ~wb:(rd, v) ()
  | Instr.Auipc (rd, imm) ->
      let v = Int64.add pc (sext32 (Int64.shift_left (Int64.of_int imm) 12)) in
      set s rd v;
      s.pc <- next;
      basic ~wb:(rd, v) ()
  | Instr.Load (op, rd, base, off) ->
      let addr = Int64.add (get s base) (Int64.of_int off) in
      let size, signed = load_size op in
      if user_mode && protected program addr then begin
        let value =
          if signed then Memory.load_signed s.mem ~addr ~size
          else Memory.load s.mem ~addr ~size
        in
        s.pc <- next;
        if forward_faults then begin
          (* Transient semantics: the faulting load's data is forwarded. *)
          set s rd value;
          basic ~wb:(rd, value)
            ~mem:{ addr; size; is_store = false; value; sc_success = None }
            ~fault:Load_access_fault ()
        end
        else
          basic
            ~mem:{ addr; size; is_store = false; value = 0L; sc_success = None }
            ~fault:Load_access_fault ()
      end
      else begin
        let value =
          if signed then Memory.load_signed s.mem ~addr ~size
          else Memory.load s.mem ~addr ~size
        in
        set s rd value;
        s.pc <- next;
        basic ~wb:(rd, value)
          ~mem:{ addr; size; is_store = false; value; sc_success = None }
          ()
      end
  | Instr.Store (op, data, base, off) ->
      let addr = Int64.add (get s base) (Int64.of_int off) in
      let size = store_size op in
      let value = get s data in
      if user_mode && protected program addr then begin
        s.pc <- next;
        basic
          ~mem:{ addr; size; is_store = true; value; sc_success = None }
          ~fault:Store_access_fault ()
      end
      else begin
        Memory.store s.mem ~addr ~size value;
        s.pc <- next;
        basic ~mem:{ addr; size; is_store = true; value; sc_success = None } ()
      end
  | Instr.Branch (op, rs1, rs2, off) ->
      let taken = branch_eval op (get s rs1) (get s rs2) in
      s.pc <- (if taken then Int64.add pc (Int64.of_int off) else next);
      basic ~taken ()
  | Instr.Jal (rd, off) ->
      set s rd next;
      s.pc <- Int64.add pc (Int64.of_int off);
      if Reg.equal rd Reg.x0 then basic ~taken:true ()
      else basic ~wb:(rd, next) ~taken:true ()
  | Instr.Jalr (rd, base, off) ->
      let target = Int64.logand (Int64.add (get s base) (Int64.of_int off)) (-2L) in
      set s rd next;
      s.pc <- target;
      if Reg.equal rd Reg.x0 then basic ~taken:true ()
      else basic ~wb:(rd, next) ~taken:true ()
  | Instr.Csr (op, rd, rs1, _csr) ->
      (* CSRs are modelled as reading 0; timing-relevant counters are filled
         in by the micro-architectural models at commit. *)
      let _ = op and _ = rs1 in
      set s rd 0L;
      s.pc <- next;
      basic ~wb:(rd, 0L) ()
  | Instr.Lr_d (rd, base) ->
      let addr = get s base in
      if user_mode && protected program addr then begin
        s.pc <- next;
        basic
          ~mem:{ addr; size = 8; is_store = false; value = 0L; sc_success = None }
          ~fault:Load_access_fault ()
      end
      else begin
        let value = Memory.load s.mem ~addr ~size:8 in
        set s rd value;
        s.reservation <- Some addr;
        s.pc <- next;
        basic ~wb:(rd, value)
          ~mem:{ addr; size = 8; is_store = false; value; sc_success = None }
          ()
      end
  | Instr.Sc_d (rd, data, base) ->
      let addr = get s base in
      let value = get s data in
      let success = s.reservation = Some addr in
      s.reservation <- None;
      if success then Memory.store s.mem ~addr ~size:8 value;
      let rd_val = if success then 0L else 1L in
      set s rd rd_val;
      s.pc <- next;
      basic ~wb:(rd, rd_val)
        ~mem:{ addr; size = 8; is_store = true; value; sc_success = Some success }
        ()
  | Instr.Fence ->
      s.pc <- next;
      basic ()
  | Instr.Ecall ->
      s.priv <- Program.Machine;
      s.pc <- next;
      basic ~fault:Env_call ()
  | Instr.Ebreak ->
      s.pc <- next;
      basic ~fault:Breakpoint ()
  | Instr.Mret ->
      s.priv <- Program.User;
      s.pc <- next;
      basic ()

let initial_state program =
  let s =
    {
      regs = Array.make 32 0L;
      mem = Memory.create ();
      pc = program.Program.base;
      priv = program.Program.start_priv;
      reservation = None;
    }
  in
  List.iter (fun (addr, v) -> Memory.store s.mem ~addr ~size:8 v) program.Program.data;
  s

(* Transient continuation: re-execute the faulting instruction on a cloned
   state with fault forwarding (its destination receives the protected
   data), then run the sequential successors for up to [window]
   instructions. The returned array covers only the successors — the
   faulting instruction itself already sits in the architectural trace. *)
let transient_continuation program s window start_seq =
  let s = clone s in
  (match Program.pc_to_index program s.pc with
  | Some index ->
      ignore
        (exec_one program s ~seq:start_seq ~index ~transient:true
           ~forward_faults:true)
  | None -> ());
  let effs = ref [] in
  let count = ref 0 in
  (try
     while !count < window do
       match Program.pc_to_index program s.pc with
       | None -> raise Exit
       | Some index ->
           let eff =
             exec_one program s ~seq:(start_seq + !count) ~index ~transient:true
               ~forward_faults:true
           in
           effs := eff :: !effs;
           incr count;
           if eff.instr = Instr.Ebreak then raise Exit
     done
   with Exit -> ());
  Array.of_list (List.rev !effs)

(* Architectural access faults — the only trigger for transient forking —
   occur exactly when a user-mode load/store/lr targets the protected
   range ([exec_one]'s own condition, evaluated on the same pre-state).
   Predicting the fault up front lets [run] skip the pre-execution
   snapshot on the non-faulting path: cloning is a register-file copy plus
   a memory [Hashtbl.copy] per instruction, and was the dominant per-run
   allocation of the whole fuzz execute phase. *)
let will_access_fault program s index =
  s.priv = Program.User
  &&
  match program.Program.instrs.(index) with
  | Instr.Load (_, _, base, off) ->
      protected program (Int64.add (get s base) (Int64.of_int off))
  | Instr.Store (_, _, base, off) ->
      protected program (Int64.add (get s base) (Int64.of_int off))
  | Instr.Lr_d (_, base) -> protected program (get s base)
  | _ -> false

let run ?(max_instrs = default_max_instrs)
    ?(transient_window = default_transient_window) program =
  let s = initial_state program in
  let trace = ref [] in
  let transients = ref [] in
  let seq = ref 0 in
  let exit_reason = ref Fell_through in
  (try
     while !seq < max_instrs do
       match Program.pc_to_index program s.pc with
       | None -> raise Exit
       | Some index ->
           (* Snapshot the pre-execution state for transient forking, only
              when this instruction will actually fault. *)
           let pre =
             if will_access_fault program s index then Some (clone s) else None
           in
           let eff =
             exec_one program s ~seq:!seq ~index ~transient:false
               ~forward_faults:false
           in
           trace := eff :: !trace;
           (match (eff.fault, pre) with
           | Some (Load_access_fault | Store_access_fault), Some pre ->
               let cont =
                 transient_continuation program pre transient_window (!seq + 1)
               in
               transients := (!seq, cont) :: !transients
           | Some (Load_access_fault | Store_access_fault), None ->
               (* [will_access_fault] mirrors [exec_one]'s fault condition
                  exactly; a fault without a snapshot is a bug. *)
               assert false
           | (Some _ | None), _ -> ());
           incr seq;
           if eff.instr = Instr.Ebreak then begin
             exit_reason := Ebreak_halt;
             raise Exit
           end
     done;
     exit_reason := Max_instrs
   with Exit -> ());
  {
    trace = Array.of_list (List.rev !trace);
    transients = List.rev !transients;
    regs = Array.copy s.regs;
    memory = s.mem;
    exit_reason = !exit_reason;
  }

let pp_fault fmt f =
  Format.pp_print_string fmt
    (match f with
    | Load_access_fault -> "load-access-fault"
    | Store_access_fault -> "store-access-fault"
    | Illegal_instruction -> "illegal-instruction"
    | Breakpoint -> "breakpoint"
    | Env_call -> "env-call")

let pp_effect fmt e =
  Format.fprintf fmt "[%d] %08Lx %a%s%s" e.seq e.pc Instr.pp e.instr
    (match e.fault with
    | Some f -> Format.asprintf " !%a" pp_fault f
    | None -> "")
    (if e.transient then " (transient)" else "")
