type entry = {
  code : string;  (** VCD identifier code *)
  slot : int;
  width : int;
  mutable prev : int;  (** last dumped raw value *)
  mutable has_prev : bool;
}

type t = {
  engine : Engine.t;
  buf : Buffer.t;
  entries : entry array;
  mutable timestamp : int;
}

(* Short printable identifier codes starting at '!', then two-char codes. *)
let id_code i =
  let alphabet = 94 in
  let chr k = Char.chr (33 + k) in
  if i < alphabet then String.make 1 (chr i)
  else
    let hi = (i / alphabet) - 1 and lo = i mod alphabet in
    Printf.sprintf "%c%c" (chr hi) (chr lo)

let create ?signals engine =
  let names = Option.value ~default:(Engine.signal_names engine) signals in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "$timescale 1ns $end\n$scope module dut $end\n";
  let entries =
    List.mapi
      (fun i name ->
        (* Resolve each signal to its engine slot once; dumping reads slots
           directly instead of hashing names every timestep. *)
        let slot = Engine.slot engine name in
        let code = id_code i in
        let width = Engine.slot_width engine slot in
        Buffer.add_string buf
          (Printf.sprintf "$var wire %d %s %s $end\n" width code name);
        { code; slot; width; prev = 0; has_prev = false })
      names
    |> Array.of_list
  in
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  { engine; buf; entries; timestamp = 0 }

let binary_of_value v width =
  let b = Bytes.make width '0' in
  for i = 0 to width - 1 do
    if Int64.logand (Int64.shift_right_logical v (width - 1 - i)) 1L = 1L then
      Bytes.set b i '1'
  done;
  Bytes.to_string b

let dump t =
  Buffer.add_string t.buf (Printf.sprintf "#%d\n" t.timestamp);
  Array.iter
    (fun e ->
      let v = Engine.read_slot t.engine e.slot in
      if (not e.has_prev) || e.prev <> v then begin
        e.prev <- v;
        e.has_prev <- true;
        let v64 = Engine.read_slot64 t.engine e.slot in
        if e.width = 1 then
          Buffer.add_string t.buf (Printf.sprintf "%Ld%s\n" v64 e.code)
        else
          Buffer.add_string t.buf
            (Printf.sprintf "b%s %s\n" (binary_of_value v64 e.width) e.code)
      end)
    t.entries;
  t.timestamp <- t.timestamp + 1

let contents t = Buffer.contents t.buf

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (contents t))
