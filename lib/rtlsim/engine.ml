open Sonar_ir

exception Unknown_signal of string

type backend = Tree | Compiled | Bitsliced

let max_lanes = 63

(* Slot-resolved engine core.

   Every signal is resolved to an integer slot at compile time; the value
   store is a flat native-[int] array. Widths are limited to 63 bits
   (Bitvec's invariant), which is exactly the width of OCaml's native
   immediate integer — so a stored value is the untagged 63-bit pattern of
   the signal, and reading or writing a slot never allocates. (An
   [int64 array] store would be unboxed in memory but every read would box
   its result without flambda, putting an allocation on the per-cycle hot
   path; the native-int store is what makes [step] allocation-free.)

   Two backends share the store:

   - [Tree]: the original tree-walking interpreter over [Expr.t], boxing a
     [Bitvec.t] per intermediate value. Kept as the reference oracle for
     differential testing and as the "uncompiled" baseline the bench
     compares against.
   - [Compiled]: each levelized expression is lowered once to an
     index-resolved closure [unit -> int] over the store, with widths and
     masks resolved statically. [step] then runs two flat closure sweeps
     plus a register latch through a preallocated scratch array — no
     hashtable lookups, no [Bitvec] boxing, no per-cycle allocation.
   - [Bitsliced]: the store is transposed into bit planes — each signal
     owns [width] native ints, and plane [b] packs bit [b] of up to 63
     independent stimulus lanes (one lane per bit of the 63-bit native
     int). Each levelized expression is lowered once to a plane-wise
     closure: mux/and/or/xor/not/eq are pure bitwise ops stepping all
     lanes at once, add/sub are ripple-carry over planes, comparisons
     come from the borrow-out of a plane-wise subtraction. The register
     latch is the same preallocated scratch-array swap, so [step] stays
     allocation-free while advancing 63 testcases per call. *)

type t = {
  store : int array;  (** slot -> current value (63-bit pattern, masked) *)
  widths : int array;  (** slot -> width *)
  names : string array;  (** slot -> name, declaration order *)
  slots : (string, int) Hashtbl.t;
  is_input : bool array;
  comb_slots : int array;  (** combinational signals, levelized order *)
  comb_exprs : Expr.t array;
  comb_fns : (unit -> int) array;  (** [Compiled] only; value pre-masked *)
  reg_slots : int array;
  reg_drives : Expr.t option array;
  reg_fns : (unit -> int) array;  (** [Compiled] only; next value *)
  reg_resets : int array;
  scratch : int array;  (** next-register buffer, reused every [step] *)
  planes : int array array;
      (** [Bitsliced] only: slot -> [width] planes, plane [b] = bit [b] of
          all 63 lanes; [[||]] on the scalar backends *)
  bs_comb_fns : (unit -> unit) array;  (** [Bitsliced]: write slot planes *)
  bs_reg_fns : (unit -> unit) array;  (** [Bitsliced]: write reg scratch *)
  bs_reg_scratch : int array array;  (** per-register plane scratch, reused *)
  backend : backend;
  mutable cycles : int;
}

let backend t = t.backend

(* --- slot API --- *)

let num_slots t = Array.length t.store

let slot t name =
  match Hashtbl.find_opt t.slots name with
  | Some s -> s
  | None -> raise (Unknown_signal name)

let slot_name t s = t.names.(s)
let slot_width t s = t.widths.(s)

(* Re-assemble one lane's value from a signal's planes: bit [b] of the
   result is bit [lane] of plane [b]. Allocation-free; for width-63
   signals the top plane lands on the native sign bit, preserving
   [read_slot]'s signed-pattern semantics. *)
let plane_read_lane (planes : int array) ~lane =
  let v = ref 0 in
  for b = Array.length planes - 1 downto 0 do
    v := (!v lsl 1) lor ((Array.unsafe_get planes b lsr lane) land 1)
  done;
  !v

let read_slot t s =
  match t.backend with
  | Tree | Compiled -> t.store.(s)
  | Bitsliced -> plane_read_lane t.planes.(s) ~lane:0

let read_slot64 t s =
  (* Stored values are masked to <= 63 bits, so clearing the sign-extension
     bit of [of_int] recovers the unsigned value. *)
  Int64.logand (Int64.of_int (read_slot t s)) 0x7FFF_FFFF_FFFF_FFFFL

let lanes t = match t.backend with Bitsliced -> max_lanes | Tree | Compiled -> 1

let read_slot_lane t s ~lane =
  match t.backend with
  | Bitsliced ->
      if lane < 0 || lane >= max_lanes then
        invalid_arg "Engine.read_slot_lane: lane out of range";
      plane_read_lane t.planes.(s) ~lane
  | Tree | Compiled ->
      if lane <> 0 then
        invalid_arg "Engine.read_slot_lane: scalar backend has a single lane";
      t.store.(s)

let read_slot_mask t s =
  match t.backend with
  | Bitsliced ->
      let p = t.planes.(s) in
      let acc = ref 0 in
      for b = 0 to Array.length p - 1 do
        acc := !acc lor Array.unsafe_get p b
      done;
      !acc
  | Tree | Compiled -> if t.store.(s) <> 0 then 1 else 0

let read_slot_lanes_into t s (dst : int array) =
  let n = Array.length dst in
  match t.backend with
  | Bitsliced ->
      if n > max_lanes then
        invalid_arg "Engine.read_slot_lanes_into: more than 63 lanes";
      Array.fill dst 0 n 0;
      let p = t.planes.(s) in
      for b = 0 to Array.length p - 1 do
        let pb = Array.unsafe_get p b in
        for lane = 0 to n - 1 do
          Array.unsafe_set dst lane
            (Array.unsafe_get dst lane lor (((pb lsr lane) land 1) lsl b))
        done
      done
  | Tree | Compiled ->
      if n <> 1 then
        invalid_arg "Engine.read_slot_lanes_into: scalar backend has one lane";
      dst.(0) <- t.store.(s)

let read_slot_lanes t s =
  let dst = Array.make (lanes t) 0 in
  read_slot_lanes_into t s dst;
  dst

(* --- native-int bit operations (mirroring Bitvec) --- *)

let native_mask w = if w >= 63 then -1 else (1 lsl w) - 1
let mask64 w = Int64.sub (Int64.shift_left 1L w) 1L

(* Validate a width the way [Bitvec.make] does, so compile-time width errors
   raise the same exception the interpreter would. *)
let check_width w =
  ignore (Bitvec.make ~width:w 0L);
  w

let to_native (v : Bitvec.t) = Int64.to_int (Bitvec.value v)

let of_native t s = Bitvec.make ~width:t.widths.(s) (Int64.of_int (read_slot t s))

(* --- width inference, mirroring Bitvec's result widths --- *)

let rec infer_width_of lookup expr =
  match expr with
  | Expr.Ref name -> lookup name
  | Expr.Lit { width; _ } -> width
  | Expr.Mux { tval; fval; _ } ->
      max (infer_width_of lookup tval) (infer_width_of lookup fval)
  | Expr.Prim { op; args } -> (
      let arg n =
        match List.nth_opt args n with
        | Some e -> infer_width_of lookup e
        | None -> invalid_arg "Engine.infer_width: arity mismatch"
      in
      match op with
      | Expr.Eq | Expr.Neq | Expr.Lt | Expr.Leq | Expr.Gt | Expr.Geq -> 1
      | Expr.Not -> arg 0
      | Expr.Shl n -> min 63 (arg 0 + n)
      | Expr.Shr n -> max 1 (arg 0 - n)
      | Expr.Bits (hi, lo) -> hi - lo + 1
      | Expr.Pad n -> n
      | Expr.Cat -> min 63 (arg 0 + arg 1)
      | Expr.Add | Expr.Sub | Expr.And | Expr.Or | Expr.Xor -> max (arg 0) (arg 1))

(* --- tree-walking interpreter (the reference oracle) --- *)

let rec eval t expr =
  match expr with
  | Expr.Ref name -> of_native t (slot t name)
  | Expr.Lit { value; width } -> Bitvec.make ~width value
  | Expr.Mux { sel; tval; fval } ->
      (* Both branches are padded to the mux's result width (the wider of
         the two), as in FIRRTL; this keeps intermediate widths static, so
         the compiled path can resolve every mask at compile time. *)
      let tv = eval t tval in
      let fv = eval t fval in
      let w = max (Bitvec.width tv) (Bitvec.width fv) in
      Bitvec.pad w (if Bitvec.is_true (eval t sel) then tv else fv)
  | Expr.Prim { op; args } -> (
      match (op, args) with
      | Expr.Not, [ a ] -> Bitvec.lognot (eval t a)
      | Expr.Shl n, [ a ] -> Bitvec.shl n (eval t a)
      | Expr.Shr n, [ a ] -> Bitvec.shr n (eval t a)
      | Expr.Bits (hi, lo), [ a ] -> Bitvec.bits ~hi ~lo (eval t a)
      | Expr.Pad n, [ a ] -> Bitvec.pad n (eval t a)
      | Expr.Add, [ a; b ] -> Bitvec.add (eval t a) (eval t b)
      | Expr.Sub, [ a; b ] -> Bitvec.sub (eval t a) (eval t b)
      | Expr.And, [ a; b ] -> Bitvec.logand (eval t a) (eval t b)
      | Expr.Or, [ a; b ] -> Bitvec.logor (eval t a) (eval t b)
      | Expr.Xor, [ a; b ] -> Bitvec.logxor (eval t a) (eval t b)
      | Expr.Eq, [ a; b ] -> Bitvec.eq (eval t a) (eval t b)
      | Expr.Neq, [ a; b ] -> Bitvec.neq (eval t a) (eval t b)
      | Expr.Lt, [ a; b ] -> Bitvec.lt (eval t a) (eval t b)
      | Expr.Leq, [ a; b ] -> Bitvec.leq (eval t a) (eval t b)
      | Expr.Gt, [ a; b ] -> Bitvec.gt (eval t a) (eval t b)
      | Expr.Geq, [ a; b ] -> Bitvec.geq (eval t a) (eval t b)
      | Expr.Cat, [ a; b ] -> Bitvec.cat (eval t a) (eval t b)
      | _ -> invalid_arg "Engine.eval: arity mismatch")

(* --- closure compilation --- *)

(* Lower an expression to a closure over the store. Returns the closure and
   the expression's static width; the closure's result is always masked to
   that width, mirroring Bitvec's result-width rules bit for bit. Width
   errors (invalid slices, cat overflow) surface at compile time with the
   same [Bitvec.Width_error] the interpreter raises at eval time. *)
let rec compile_expr t expr : (unit -> int) * int =
  let go e = compile_expr t e in
  match expr with
  | Expr.Ref name ->
      let s = slot t name in
      let st = t.store in
      ((fun () -> Array.unsafe_get st s), t.widths.(s))
  | Expr.Lit { value; width } ->
      let w = check_width width in
      let v = Int64.to_int (Int64.logand value (mask64 w)) in
      ((fun () -> v), w)
  | Expr.Mux { sel; tval; fval } ->
      let fs, _ = go sel in
      let ft, wt = go tval in
      let ff, wf = go fval in
      (* Branch values are masked to their own width <= max wt wf, so the
         pad to the result width is a no-op on the value. *)
      ((fun () -> if fs () <> 0 then ft () else ff ()), max wt wf)
  | Expr.Prim { op; args } -> (
      match (op, args) with
      | Expr.Not, [ a ] ->
          let fa, wa = go a in
          let m = native_mask wa in
          ((fun () -> lnot (fa ()) land m), wa)
      | Expr.Shl n, [ a ] ->
          let fa, wa = go a in
          let w = min 63 (wa + n) in
          let m = native_mask w in
          if n >= 63 then ((fun () -> 0), w)
          else ((fun () -> (fa () lsl n) land m), w)
      | Expr.Shr n, [ a ] ->
          let fa, wa = go a in
          let w = max 1 (wa - n) in
          let m = native_mask w in
          if n >= 63 then ((fun () -> 0), w)
          else ((fun () -> (fa () lsr n) land m), w)
      | Expr.Bits (hi, lo), [ a ] ->
          if hi < lo || lo < 0 then
            raise
              (Bitvec.Width_error (Printf.sprintf "invalid slice [%d:%d]" hi lo));
          let fa, _ = go a in
          let w = check_width (hi - lo + 1) in
          let m = native_mask w in
          if lo >= 63 then ((fun () -> 0), w)
          else ((fun () -> (fa () lsr lo) land m), w)
      | Expr.Pad n, [ a ] ->
          let fa, _ = go a in
          let w = check_width n in
          let m = native_mask w in
          ((fun () -> fa () land m), w)
      | Expr.Cat, [ a; b ] ->
          let fa, wa = go a in
          let fb, wb = go b in
          if wa + wb > 63 then
            raise (Bitvec.Width_error "cat result exceeds 63 bits");
          ((fun () -> (fa () lsl wb) lor fb ()), wa + wb)
      | Expr.Add, [ a; b ] ->
          let fa, wa = go a in
          let fb, wb = go b in
          let m = native_mask (max wa wb) in
          ((fun () -> (fa () + fb ()) land m), max wa wb)
      | Expr.Sub, [ a; b ] ->
          let fa, wa = go a in
          let fb, wb = go b in
          let m = native_mask (max wa wb) in
          ((fun () -> (fa () - fb ()) land m), max wa wb)
      | Expr.And, [ a; b ] ->
          let fa, wa = go a in
          let fb, wb = go b in
          ((fun () -> fa () land fb ()), max wa wb)
      | Expr.Or, [ a; b ] ->
          let fa, wa = go a in
          let fb, wb = go b in
          ((fun () -> fa () lor fb ()), max wa wb)
      | Expr.Xor, [ a; b ] ->
          let fa, wa = go a in
          let fb, wb = go b in
          ((fun () -> fa () lxor fb ()), max wa wb)
      | Expr.Eq, [ a; b ] ->
          let fa, _ = go a in
          let fb, _ = go b in
          ((fun () -> if fa () = fb () then 1 else 0), 1)
      | Expr.Neq, [ a; b ] ->
          let fa, _ = go a in
          let fb, _ = go b in
          ((fun () -> if fa () <> fb () then 1 else 0), 1)
      | Expr.Lt, [ a; b ] ->
          let fa, _ = go a in
          let fb, _ = go b in
          (* Unsigned comparison of 63-bit patterns: flipping the native
             sign bit turns signed [<] into unsigned [<]. *)
          ((fun () -> if fa () lxor min_int < fb () lxor min_int then 1 else 0), 1)
      | Expr.Leq, [ a; b ] ->
          let fa, _ = go a in
          let fb, _ = go b in
          ((fun () -> if fa () lxor min_int <= fb () lxor min_int then 1 else 0), 1)
      | Expr.Gt, [ a; b ] ->
          let fa, _ = go a in
          let fb, _ = go b in
          ((fun () -> if fa () lxor min_int > fb () lxor min_int then 1 else 0), 1)
      | Expr.Geq, [ a; b ] ->
          let fa, _ = go a in
          let fb, _ = go b in
          ((fun () -> if fa () lxor min_int >= fb () lxor min_int then 1 else 0), 1)
      | _ -> invalid_arg "Engine.compile: arity mismatch")

(* Combinational assignment: the expression value re-masked to the signal's
   declared width (outputs may be narrower than their drive). *)
let compile_assign t ~width expr =
  let f, w = compile_expr t expr in
  if w <= width then f
  else
    let m = native_mask width in
    fun () -> f () land m

(* --- bit-sliced (plane-wise) compilation --- *)

(* Lower an expression to a plane-wise closure. The closure returns a
   preallocated buffer of exactly [w] planes ([w] = the expression's static
   width, the same width [compile_expr] computes); plane [b] packs bit [b]
   of all 63 lanes, so one bitwise op on a plane advances every lane at
   once. Buffers are allocated at compile time and reused on every call —
   stepping never allocates. Consumers read only planes below an argument's
   static width and treat higher planes as zero, which is the plane-wise
   mirror of the scalar backend's width masks: masking to [w] bits {e is}
   having only [w] planes. Width errors surface at compile time with the
   same [Bitvec.Width_error] the other backends raise. *)
let rec compile_bs_expr t expr : (unit -> int array) * int =
  let go e = compile_bs_expr t e in
  (* Per-lane borrow-out of the plane-wise subtraction [a - b], i.e. the
     63-lane mask of unsigned [a < b]. *)
  let borrow fa wa fb wb =
    let w = max wa wb in
    fun () ->
      let av = fa () and bv = fb () in
      let bor = ref 0 in
      for b = 0 to w - 1 do
        let x = if b < wa then Array.unsafe_get av b else 0 in
        let y = if b < wb then Array.unsafe_get bv b else 0 in
        bor := (lnot x land y) lor (lnot (x lxor y) land !bor)
      done;
      !bor
  in
  (* 63-lane mask of plane-wise [a <> b]. *)
  let differs fa wa fb wb =
    let w = max wa wb in
    fun () ->
      let av = fa () and bv = fb () in
      let acc = ref 0 in
      for b = 0 to w - 1 do
        let x = if b < wa then Array.unsafe_get av b else 0 in
        let y = if b < wb then Array.unsafe_get bv b else 0 in
        acc := !acc lor (x lxor y)
      done;
      !acc
  in
  let bit1 f =
    let out = Array.make 1 0 in
    ( (fun () ->
        Array.unsafe_set out 0 (f ());
        out),
      1 )
  in
  match expr with
  | Expr.Ref name ->
      let s = slot t name in
      let p = t.planes.(s) in
      ((fun () -> p), t.widths.(s))
  | Expr.Lit { value; width } ->
      let w = check_width width in
      let v = Int64.logand value (mask64 w) in
      let buf =
        Array.init w (fun b ->
            if Int64.logand (Int64.shift_right_logical v b) 1L = 1L then -1
            else 0)
      in
      ((fun () -> buf), w)
  | Expr.Mux { sel; tval; fval } ->
      let fs, ws = go sel in
      let ft, wt = go tval in
      let ff, wf = go fval in
      let w = max wt wf in
      let out = Array.make w 0 in
      ( (fun () ->
          (* The scalar backends select on [sel <> 0]; plane-wise that is
             the OR over every sel plane, one select mask for all lanes. *)
          let sv = fs () in
          let m = ref 0 in
          for b = 0 to ws - 1 do
            m := !m lor Array.unsafe_get sv b
          done;
          let m = !m in
          let tv = ft () and fv = ff () in
          for b = 0 to w - 1 do
            let tb = if b < wt then Array.unsafe_get tv b else 0 in
            let fb = if b < wf then Array.unsafe_get fv b else 0 in
            Array.unsafe_set out b ((tb land m) lor (fb land lnot m))
          done;
          out),
        w )
  | Expr.Prim { op; args } -> (
      match (op, args) with
      | Expr.Not, [ a ] ->
          let fa, wa = go a in
          let out = Array.make wa 0 in
          ( (fun () ->
              let av = fa () in
              for b = 0 to wa - 1 do
                Array.unsafe_set out b (lnot (Array.unsafe_get av b))
              done;
              out),
            wa )
      | Expr.Shl n, [ a ] ->
          let fa, wa = go a in
          let w = min 63 (wa + n) in
          let out = Array.make w 0 in
          ( (fun () ->
              let av = fa () in
              for b = 0 to w - 1 do
                Array.unsafe_set out b
                  (if b >= n && b - n < wa then Array.unsafe_get av (b - n)
                   else 0)
              done;
              out),
            w )
      | Expr.Shr n, [ a ] ->
          let fa, wa = go a in
          let w = max 1 (wa - n) in
          let out = Array.make w 0 in
          ( (fun () ->
              let av = fa () in
              for b = 0 to w - 1 do
                Array.unsafe_set out b
                  (if b + n < wa then Array.unsafe_get av (b + n) else 0)
              done;
              out),
            w )
      | Expr.Bits (hi, lo), [ a ] ->
          if hi < lo || lo < 0 then
            raise
              (Bitvec.Width_error (Printf.sprintf "invalid slice [%d:%d]" hi lo));
          let fa, wa = go a in
          let w = check_width (hi - lo + 1) in
          let out = Array.make w 0 in
          ( (fun () ->
              let av = fa () in
              for b = 0 to w - 1 do
                Array.unsafe_set out b
                  (if lo + b < wa then Array.unsafe_get av (lo + b) else 0)
              done;
              out),
            w )
      | Expr.Pad n, [ a ] ->
          let fa, wa = go a in
          let w = check_width n in
          let out = Array.make w 0 in
          let k = min wa w in
          ( (fun () ->
              Array.blit (fa ()) 0 out 0 k;
              out),
            w )
      | Expr.Cat, [ a; b ] ->
          let fa, wa = go a in
          let fb, wb = go b in
          if wa + wb > 63 then
            raise (Bitvec.Width_error "cat result exceeds 63 bits");
          let out = Array.make (wa + wb) 0 in
          ( (fun () ->
              Array.blit (fb ()) 0 out 0 wb;
              Array.blit (fa ()) 0 out wb wa;
              out),
            wa + wb )
      | Expr.Add, [ a; b ] ->
          let fa, wa = go a in
          let fb, wb = go b in
          let w = max wa wb in
          let out = Array.make w 0 in
          ( (fun () ->
              let av = fa () and bv = fb () in
              let carry = ref 0 in
              for b = 0 to w - 1 do
                let x = if b < wa then Array.unsafe_get av b else 0 in
                let y = if b < wb then Array.unsafe_get bv b else 0 in
                let c = !carry in
                Array.unsafe_set out b (x lxor y lxor c);
                carry := (x land y) lor (c land (x lxor y))
              done;
              out),
            w )
      | Expr.Sub, [ a; b ] ->
          let fa, wa = go a in
          let fb, wb = go b in
          let w = max wa wb in
          let out = Array.make w 0 in
          ( (fun () ->
              let av = fa () and bv = fb () in
              let bor = ref 0 in
              for b = 0 to w - 1 do
                let x = if b < wa then Array.unsafe_get av b else 0 in
                let y = if b < wb then Array.unsafe_get bv b else 0 in
                let bin = !bor in
                Array.unsafe_set out b (x lxor y lxor bin);
                bor := (lnot x land y) lor (lnot (x lxor y) land bin)
              done;
              out),
            w )
      | Expr.And, [ a; b ] ->
          let fa, wa = go a in
          let fb, wb = go b in
          let w = max wa wb in
          let out = Array.make w 0 in
          ( (fun () ->
              let av = fa () and bv = fb () in
              for b = 0 to w - 1 do
                let x = if b < wa then Array.unsafe_get av b else 0 in
                let y = if b < wb then Array.unsafe_get bv b else 0 in
                Array.unsafe_set out b (x land y)
              done;
              out),
            w )
      | Expr.Or, [ a; b ] ->
          let fa, wa = go a in
          let fb, wb = go b in
          let w = max wa wb in
          let out = Array.make w 0 in
          ( (fun () ->
              let av = fa () and bv = fb () in
              for b = 0 to w - 1 do
                let x = if b < wa then Array.unsafe_get av b else 0 in
                let y = if b < wb then Array.unsafe_get bv b else 0 in
                Array.unsafe_set out b (x lor y)
              done;
              out),
            w )
      | Expr.Xor, [ a; b ] ->
          let fa, wa = go a in
          let fb, wb = go b in
          let w = max wa wb in
          let out = Array.make w 0 in
          ( (fun () ->
              let av = fa () and bv = fb () in
              for b = 0 to w - 1 do
                let x = if b < wa then Array.unsafe_get av b else 0 in
                let y = if b < wb then Array.unsafe_get bv b else 0 in
                Array.unsafe_set out b (x lxor y)
              done;
              out),
            w )
      | Expr.Eq, [ a; b ] ->
          let fa, wa = go a in
          let fb, wb = go b in
          let d = differs fa wa fb wb in
          bit1 (fun () -> lnot (d ()))
      | Expr.Neq, [ a; b ] ->
          let fa, wa = go a in
          let fb, wb = go b in
          let d = differs fa wa fb wb in
          bit1 d
      | Expr.Lt, [ a; b ] ->
          let fa, wa = go a in
          let fb, wb = go b in
          bit1 (borrow fa wa fb wb)
      | Expr.Gt, [ a; b ] ->
          let fa, wa = go a in
          let fb, wb = go b in
          bit1 (borrow fb wb fa wa)
      | Expr.Leq, [ a; b ] ->
          let fa, wa = go a in
          let fb, wb = go b in
          let gt = borrow fb wb fa wa in
          bit1 (fun () -> lnot (gt ()))
      | Expr.Geq, [ a; b ] ->
          let fa, wa = go a in
          let fb, wb = go b in
          let lt = borrow fa wa fb wb in
          bit1 (fun () -> lnot (lt ()))
      | _ -> invalid_arg "Engine.compile: arity mismatch")

(* Plane-wise assignment into a slot's planes, truncating or zero-extending
   to the signal's declared width (outputs may be narrower than their
   drive), mirroring [compile_assign]'s re-mask. *)
let compile_bs_assign t ~slot:s expr =
  let fn, w = compile_bs_expr t expr in
  let dst = t.planes.(s) in
  let width = Array.length dst in
  let k = min w width in
  if width <= w then fun () -> Array.blit (fn ()) 0 dst 0 k
  else fun () ->
    Array.blit (fn ()) 0 dst 0 k;
    Array.fill dst k (width - k) 0

(* Next-value closure for register [idx], writing into its plane scratch
   (the slot's planes must not change until every drive has been read). *)
let compile_bs_reg t ~idx ~slot:s drive =
  let scratch = t.bs_reg_scratch.(idx) in
  let width = Array.length scratch in
  match drive with
  | None ->
      let src = t.planes.(s) in
      fun () -> Array.blit src 0 scratch 0 width
  | Some expr ->
      let fn, w = compile_bs_expr t expr in
      let k = min w width in
      if width <= w then fun () -> Array.blit (fn ()) 0 scratch 0 k
      else fun () ->
        Array.blit (fn ()) 0 scratch 0 k;
        Array.fill scratch k (width - k) 0

(* Broadcast a scalar 63-bit pattern to all 63 lanes of a plane array. *)
let broadcast_planes (dst : int array) v =
  for b = 0 to Array.length dst - 1 do
    dst.(b) <- (if (v lsr b) land 1 = 1 then -1 else 0)
  done

(* --- settle / step --- *)

let settle_tree t =
  let n = Array.length t.comb_slots in
  for i = 0 to n - 1 do
    let s = Array.unsafe_get t.comb_slots i in
    let v = eval t (Array.unsafe_get t.comb_exprs i) in
    Array.unsafe_set t.store s (to_native (Bitvec.pad t.widths.(s) v))
  done

let settle_compiled t =
  let fns = t.comb_fns and slots = t.comb_slots and st = t.store in
  for i = 0 to Array.length fns - 1 do
    Array.unsafe_set st (Array.unsafe_get slots i) ((Array.unsafe_get fns i) ())
  done

let settle_bitsliced t =
  let fns = t.bs_comb_fns in
  for i = 0 to Array.length fns - 1 do
    (Array.unsafe_get fns i) ()
  done

let settle t =
  match t.backend with
  | Tree -> settle_tree t
  | Compiled -> settle_compiled t
  | Bitsliced -> settle_bitsliced t

let step_tree t =
  settle_tree t;
  let n = Array.length t.reg_slots in
  for i = 0 to n - 1 do
    let s = t.reg_slots.(i) in
    t.scratch.(i) <-
      (match t.reg_drives.(i) with
      | Some expr -> to_native (Bitvec.pad t.widths.(s) (eval t expr))
      | None -> t.store.(s))
  done;
  for i = 0 to n - 1 do
    t.store.(t.reg_slots.(i)) <- t.scratch.(i)
  done;
  settle_tree t

let step_compiled t =
  settle_compiled t;
  let fns = t.reg_fns and slots = t.reg_slots in
  let scratch = t.scratch and st = t.store in
  let n = Array.length slots in
  for i = 0 to n - 1 do
    Array.unsafe_set scratch i ((Array.unsafe_get fns i) ())
  done;
  for i = 0 to n - 1 do
    Array.unsafe_set st (Array.unsafe_get slots i) (Array.unsafe_get scratch i)
  done;
  settle_compiled t

let step_bitsliced t =
  settle_bitsliced t;
  let fns = t.bs_reg_fns in
  for i = 0 to Array.length fns - 1 do
    (Array.unsafe_get fns i) ()
  done;
  let slots = t.reg_slots and scratch = t.bs_reg_scratch in
  for i = 0 to Array.length slots - 1 do
    let src = Array.unsafe_get scratch i in
    Array.blit src 0 t.planes.(Array.unsafe_get slots i) 0 (Array.length src)
  done;
  settle_bitsliced t

let step t =
  (match t.backend with
  | Tree -> step_tree t
  | Compiled -> step_compiled t
  | Bitsliced -> step_bitsliced t);
  t.cycles <- t.cycles + 1

(* --- compilation --- *)

(* Profiling hook; see [Sonar_ir.Analysis.set_profiler] — same contract. *)
let profiler : (string -> unit -> unit) option ref = ref None

let set_profiler h = profiler := h

let compile ?(backend = Compiled) (m : Fmodule.t) =
  let finish =
    match !profiler with
    | None -> Fun.id
    | Some enter -> enter "engine.compile"
  in
  Fun.protect ~finally:finish @@ fun () ->
  let slots = Hashtbl.create 128 in
  let decls = Hashtbl.create 128 in
  List.iter
    (fun s ->
      match Stmt.declared_name s with
      | Some n -> if not (Hashtbl.mem decls n) then Hashtbl.replace decls n s
      | None -> ())
    m.Fmodule.stmts;
  let rev_names = ref [] in
  let n_slots = ref 0 in
  let widths_tbl = Hashtbl.create 128 in
  let inputs_tbl = Hashtbl.create 16 in
  let declare name width is_input =
    if not (Hashtbl.mem slots name) then begin
      Hashtbl.replace slots name !n_slots;
      Hashtbl.replace widths_tbl name width;
      if is_input then Hashtbl.replace inputs_tbl name ();
      rev_names := name :: !rev_names;
      incr n_slots
    end
  in
  (* First declare everything with an explicit width. *)
  List.iter
    (fun s ->
      match s with
      | Stmt.Input { name; width } -> declare name width true
      | Stmt.Output { name; width } | Stmt.Wire { name; width } ->
          declare name width false
      | Stmt.Reg { name; width; _ } -> declare name width false
      | Stmt.Node _ | Stmt.Connect _ -> ())
    m.Fmodule.stmts;
  (* Nodes take their expression's inferred width; forward references inside
     node chains are resolved by a pre-pass declaring them at 63 bits then
     refining in evaluation order. *)
  let defs = Fmodule.definitions m in
  let order_names = Levelize.order m in
  List.iter (fun name -> declare name 63 false) order_names;
  List.iter
    (fun name ->
      match Hashtbl.find_opt decls name with
      | Some (Stmt.Node _) | None ->
          let w =
            infer_width_of
              (fun n -> Hashtbl.find widths_tbl n)
              (Hashtbl.find defs name)
          in
          Hashtbl.replace widths_tbl name w
      | Some _ -> ())
    order_names;
  let names = Array.of_list (List.rev !rev_names) in
  let widths = Array.map (fun n -> Hashtbl.find widths_tbl n) names in
  let is_input = Array.map (fun n -> Hashtbl.mem inputs_tbl n) names in
  let comb_slots =
    Array.of_list (List.map (fun n -> Hashtbl.find slots n) order_names)
  in
  let comb_exprs =
    Array.of_list (List.map (fun n -> Hashtbl.find defs n) order_names)
  in
  let reg_table = Fmodule.registers m in
  let reg_list =
    List.filter_map
      (function
        | Stmt.Reg { name; reset; _ } ->
            let drive = Option.join (Hashtbl.find_opt reg_table name) in
            let reset = Option.value ~default:0L reset in
            Some (Hashtbl.find slots name, drive, reset)
        | _ -> None)
      m.Fmodule.stmts
  in
  let reg_slots = Array.of_list (List.map (fun (s, _, _) -> s) reg_list) in
  let reg_drives = Array.of_list (List.map (fun (_, d, _) -> d) reg_list) in
  let reg_resets =
    Array.of_list
      (List.map
         (fun (s, _, r) -> Int64.to_int (Int64.logand r (mask64 widths.(s))))
         reg_list)
  in
  let t =
    {
      store = Array.make (Array.length names) 0;
      widths;
      names;
      slots;
      is_input;
      comb_slots;
      comb_exprs;
      comb_fns = [||];
      reg_slots;
      reg_drives;
      reg_fns = [||];
      reg_resets;
      scratch = Array.make (Array.length reg_slots) 0;
      planes =
        (if backend = Bitsliced then Array.map (fun w -> Array.make w 0) widths
         else [||]);
      bs_comb_fns = [||];
      bs_reg_fns = [||];
      bs_reg_scratch =
        (if backend = Bitsliced then
           Array.map (fun s -> Array.make widths.(s) 0) reg_slots
         else [||]);
      backend;
      cycles = 0;
    }
  in
  let t =
    match backend with
    | Tree ->
        (* Validate widths eagerly, exactly as the compiled backends do:
           lower every expression through the scalar compiler and discard
           the closures, so [compile] is the only place width errors can
           surface on any backend. *)
        Array.iter2
          (fun s expr ->
            let (_ : unit -> int) = compile_assign t ~width:widths.(s) expr in
            ())
          comb_slots comb_exprs;
        Array.iteri
          (fun i drive ->
            match drive with
            | Some expr ->
                let (_ : unit -> int) =
                  compile_assign t ~width:widths.(reg_slots.(i)) expr
                in
                ()
            | None -> ())
          reg_drives;
        t
    | Compiled ->
        let comb_fns =
          Array.map2
            (fun s expr -> compile_assign t ~width:widths.(s) expr)
            comb_slots comb_exprs
        in
        let reg_fns =
          Array.map2
            (fun s drive ->
              match drive with
              | Some expr -> compile_assign t ~width:widths.(s) expr
              | None ->
                  let st = t.store in
                  fun () -> Array.unsafe_get st s)
            reg_slots reg_drives
        in
        { t with comb_fns; reg_fns }
    | Bitsliced ->
        let bs_comb_fns =
          Array.map2
            (fun s expr -> compile_bs_assign t ~slot:s expr)
            comb_slots comb_exprs
        in
        let bs_reg_fns =
          Array.init (Array.length reg_slots) (fun i ->
              compile_bs_reg t ~idx:i ~slot:reg_slots.(i) reg_drives.(i))
        in
        { t with bs_comb_fns; bs_reg_fns }
  in
  (* Initialise registers to reset values and settle once. *)
  (match t.backend with
  | Tree | Compiled ->
      Array.iteri (fun i s -> t.store.(s) <- t.reg_resets.(i)) t.reg_slots
  | Bitsliced ->
      Array.iteri
        (fun i s -> broadcast_planes t.planes.(s) t.reg_resets.(i))
        t.reg_slots);
  settle t;
  t

(* --- peek / poke / reset --- *)

let input_slot t name =
  let s = slot t name in
  if not t.is_input.(s) then raise (Unknown_signal (name ^ " is not an input"));
  s

let poke t name v =
  let s = input_slot t name in
  let nv = to_native (Bitvec.pad t.widths.(s) v) in
  match t.backend with
  | Tree | Compiled -> t.store.(s) <- nv
  | Bitsliced ->
      (* Scalar pokes broadcast to every lane, so lane-oblivious consumers
         (the VCD writer, single-stimulus tests) keep working unchanged. *)
      broadcast_planes t.planes.(s) nv

let poke_int t name v =
  poke t name (Bitvec.make ~width:t.widths.(slot t name) (Int64.of_int v))

let poke_lane t name ~lane v =
  let s = input_slot t name in
  match t.backend with
  | Bitsliced ->
      if lane < 0 || lane >= max_lanes then
        invalid_arg "Engine.poke_lane: lane out of range";
      let p = t.planes.(s) in
      let m = 1 lsl lane in
      let nm = lnot m in
      for b = 0 to Array.length p - 1 do
        if (v lsr b) land 1 = 1 then p.(b) <- p.(b) lor m
        else p.(b) <- p.(b) land nm
      done
  | Tree | Compiled ->
      if lane <> 0 then
        invalid_arg "Engine.poke_lane: scalar backend has a single lane";
      poke_int t name v

let poke_lanes t name vals =
  let s = input_slot t name in
  match t.backend with
  | Bitsliced ->
      let n = Array.length vals in
      if n > max_lanes then invalid_arg "Engine.poke_lanes: more than 63 lanes";
      let p = t.planes.(s) in
      for b = 0 to Array.length p - 1 do
        let m = ref 0 in
        for lane = 0 to n - 1 do
          m := !m lor (((vals.(lane) lsr b) land 1) lsl lane)
        done;
        p.(b) <- !m
      done
  | Tree | Compiled ->
      if Array.length vals <> 1 then
        invalid_arg "Engine.poke_lanes: scalar backend has a single lane";
      poke_int t name vals.(0)

let peek t name = of_native t (slot t name)
let peek_int t name = read_slot t (slot t name)
let cycle t = t.cycles

let reset t =
  (match t.backend with
  | Tree | Compiled ->
      Array.iteri (fun i s -> t.store.(s) <- t.reg_resets.(i)) t.reg_slots;
      Array.iteri (fun s inp -> if inp then t.store.(s) <- 0) t.is_input
  | Bitsliced ->
      Array.iteri
        (fun i s -> broadcast_planes t.planes.(s) t.reg_resets.(i))
        t.reg_slots;
      Array.iteri
        (fun s inp ->
          if inp then
            let p = t.planes.(s) in
            Array.fill p 0 (Array.length p) 0)
        t.is_input);
  settle t;
  t.cycles <- 0

let signal_names t = Array.to_list t.names
let signal_width t name = t.widths.(slot t name)
