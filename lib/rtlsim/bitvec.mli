(** Width-tracked bit vectors backed by [int64].

    Widths are limited to 1..63 bits so every value is a non-negative
    [int64]; all operations mask their result to the target width. This
    covers the netlists Sonar manipulates (counters, valid bits, indices,
    small data fields). *)

type t = private { value : int64; width : int }

exception Width_error of string

val make : width:int -> int64 -> t
(** Mask the value to [width] bits. @raise Width_error if [width] ∉ [1,63]. *)

val zero : int -> t
val one : int -> t
val value : t -> int64
val width : t -> int
val to_int : t -> int
val is_true : t -> bool
(** Non-zero test. *)

val add : t -> t -> t
val sub : t -> t -> t
(** Two's-complement wrap within the result width. *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

val eq : t -> t -> t
val neq : t -> t -> t
val lt : t -> t -> t
val leq : t -> t -> t
val gt : t -> t -> t
val geq : t -> t -> t
(** Comparisons return a 1-bit value. *)

val shl : int -> t -> t
val shr : int -> t -> t
val bits : hi:int -> lo:int -> t -> t
(** Slice extraction; result width is [hi - lo + 1]. *)

val cat : t -> t -> t
(** [cat hi lo]: concatenation, first argument in the high bits. *)

val pad : int -> t -> t
(** Zero-extend (or re-mask, if narrower) to the given width. *)

val mux : t -> t -> t -> t
(** [mux sel tval fval]. The result is padded to the wider branch's width
    (as in FIRRTL), so a mux's width does not depend on the selected
    branch — the invariant that lets {!Engine} resolve every intermediate
    width statically when compiling to closures. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
