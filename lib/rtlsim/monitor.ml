type point_state = {
  point_id : string;
  mutable min_pair_interval : int option;
  mutable min_self_interval : int option;
  mutable triggered : bool;
  mutable request_hits : int;
}

type tracked = {
  state : point_state;
  valid_slots : int array;  (** engine slots of the valid outputs *)
  fired : bool array;  (** per-sample scratch, reused *)
  last_valid : int array;  (** -1 = never *)
}

type t = {
  engine : Engine.t;
  tracked : tracked array;
  mutable window : (int * int) option;
}

let create engine monitors =
  let tracked =
    List.map
      (fun (pm : Sonar_ir.Instrument.point_monitor) ->
        (* Resolve output names to slots once; sampling then reads the
           engine's store directly. *)
        let valid_slots =
          Array.of_list (List.map (Engine.slot engine) pm.valid_outputs)
        in
        {
          state =
            {
              point_id = pm.point_id;
              min_pair_interval = None;
              min_self_interval = None;
              triggered = false;
              request_hits = 0;
            };
          valid_slots;
          fired = Array.make (Array.length valid_slots) false;
          last_valid = Array.make (Array.length valid_slots) (-1);
        })
      monitors
    |> Array.of_list
  in
  { engine; tracked; window = None }

let set_window t ~start ~stop = t.window <- Some (start, stop)
let clear_window t = t.window <- None

let update_min current candidate =
  match current with Some m when m <= candidate -> current | _ -> Some candidate

let sample t =
  let cycle = Engine.cycle t.engine in
  let in_window =
    match t.window with
    | None -> true
    | Some (start, stop) -> cycle >= start && cycle <= stop
  in
  Array.iter
    (fun tr ->
      let n = Array.length tr.valid_slots in
      let fired = tr.fired in
      for i = 0 to n - 1 do
        fired.(i) <- Engine.read_slot t.engine tr.valid_slots.(i) <> 0
      done;
      if in_window then begin
        for i = 0 to n - 1 do
          if fired.(i) then begin
            tr.state.request_hits <- tr.state.request_hits + 1;
            (* Same-source consecutive interval. *)
            if tr.last_valid.(i) >= 0 then
              tr.state.min_self_interval <-
                update_min tr.state.min_self_interval (cycle - tr.last_valid.(i));
            (* Pairwise interval against every other source's last firing
               (including simultaneous firings this cycle). *)
            for j = 0 to n - 1 do
              if j <> i then begin
                let last_j = if fired.(j) then cycle else tr.last_valid.(j) in
                if last_j >= 0 then begin
                  let interval = cycle - last_j in
                  tr.state.min_pair_interval <-
                    update_min tr.state.min_pair_interval interval;
                  if interval = 0 then tr.state.triggered <- true
                end
              end
            done
          end
        done
      end;
      (* Last-valid bookkeeping runs regardless of the window so intervals
         across the window edge are measured correctly. *)
      for i = 0 to n - 1 do
        if fired.(i) then tr.last_valid.(i) <- cycle
      done)
    t.tracked

let states t = Array.to_list (Array.map (fun tr -> tr.state) t.tracked)

let find t id =
  List.find_opt (fun (s : point_state) -> String.equal s.point_id id) (states t)
