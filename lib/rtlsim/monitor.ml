type point_state = {
  point_id : string;
  mutable min_pair_interval : int option;
  mutable min_self_interval : int option;
  mutable triggered : bool;
  mutable request_hits : int;
}

type tracked = {
  state : point_state;
  valid_slots : int array;  (** engine slots of the valid outputs *)
  fired : bool array;  (** per-sample scratch, reused *)
  last_valid : int array;  (** -1 = never *)
}

type t = {
  engine : Engine.t;
  tracked : tracked array;
  mutable window : (int * int) option;
}

let create engine monitors =
  let tracked =
    List.map
      (fun (pm : Sonar_ir.Instrument.point_monitor) ->
        (* Resolve output names to slots once; sampling then reads the
           engine's store directly. *)
        let valid_slots =
          Array.of_list (List.map (Engine.slot engine) pm.valid_outputs)
        in
        {
          state =
            {
              point_id = pm.point_id;
              min_pair_interval = None;
              min_self_interval = None;
              triggered = false;
              request_hits = 0;
            };
          valid_slots;
          fired = Array.make (Array.length valid_slots) false;
          last_valid = Array.make (Array.length valid_slots) (-1);
        })
      monitors
    |> Array.of_list
  in
  { engine; tracked; window = None }

let set_window t ~start ~stop = t.window <- Some (start, stop)
let clear_window t = t.window <- None

let update_min current candidate =
  match current with Some m when m <= candidate -> current | _ -> Some candidate

let sample t =
  let cycle = Engine.cycle t.engine in
  let in_window =
    match t.window with
    | None -> true
    | Some (start, stop) -> cycle >= start && cycle <= stop
  in
  Array.iter
    (fun tr ->
      let n = Array.length tr.valid_slots in
      let fired = tr.fired in
      for i = 0 to n - 1 do
        fired.(i) <- Engine.read_slot t.engine tr.valid_slots.(i) <> 0
      done;
      if in_window then begin
        for i = 0 to n - 1 do
          if fired.(i) then begin
            tr.state.request_hits <- tr.state.request_hits + 1;
            (* Same-source consecutive interval. *)
            if tr.last_valid.(i) >= 0 then
              tr.state.min_self_interval <-
                update_min tr.state.min_self_interval (cycle - tr.last_valid.(i));
            (* Pairwise interval against every other source's last firing
               (including simultaneous firings this cycle). *)
            for j = 0 to n - 1 do
              if j <> i then begin
                let last_j = if fired.(j) then cycle else tr.last_valid.(j) in
                if last_j >= 0 then begin
                  let interval = cycle - last_j in
                  tr.state.min_pair_interval <-
                    update_min tr.state.min_pair_interval interval;
                  if interval = 0 then tr.state.triggered <- true
                end
              end
            done
          end
        done
      end;
      (* Last-valid bookkeeping runs regardless of the window so intervals
         across the window edge are measured correctly. *)
      for i = 0 to n - 1 do
        if fired.(i) then tr.last_valid.(i) <- cycle
      done)
    t.tracked

let states t = Array.to_list (Array.map (fun tr -> tr.state) t.tracked)

let find t id =
  List.find_opt (fun (s : point_state) -> String.equal s.point_id id) (states t)

(* Batch sampling over a bit-sliced engine: the same interval bookkeeping
   as [sample], replicated per lane. One [Engine.read_slot_mask] per valid
   output covers all 63 lanes' truthiness at once; the per-lane updates
   then run only for lanes whose source actually fired this cycle. *)
module Batch = struct
  type lane_tracked = {
    b_states : point_state array;  (** lane -> state *)
    b_valid_slots : int array;
    b_fired : int array;  (** per source: 63-lane fired mask, reused *)
    b_last_valid : int array array;  (** source -> lane -> cycle, -1 = never *)
  }

  type t = {
    b_engine : Engine.t;
    b_lanes : int;
    b_tracked : lane_tracked array;
    mutable b_window : (int * int) option;
  }

  let create engine monitors =
    let lanes = Engine.lanes engine in
    let tracked =
      List.map
        (fun (pm : Sonar_ir.Instrument.point_monitor) ->
          let valid_slots =
            Array.of_list (List.map (Engine.slot engine) pm.valid_outputs)
          in
          let n = Array.length valid_slots in
          {
            b_states =
              Array.init lanes (fun _ ->
                  {
                    point_id = pm.point_id;
                    min_pair_interval = None;
                    min_self_interval = None;
                    triggered = false;
                    request_hits = 0;
                  });
            b_valid_slots = valid_slots;
            b_fired = Array.make n 0;
            b_last_valid = Array.make_matrix n lanes (-1);
          })
        monitors
      |> Array.of_list
    in
    { b_engine = engine; b_lanes = lanes; b_tracked = tracked; b_window = None }

  let lanes t = t.b_lanes
  let set_window t ~start ~stop = t.b_window <- Some (start, stop)
  let clear_window t = t.b_window <- None

  let sample t =
    let cycle = Engine.cycle t.b_engine in
    let in_window =
      match t.b_window with
      | None -> true
      | Some (start, stop) -> cycle >= start && cycle <= stop
    in
    Array.iter
      (fun tr ->
        let n = Array.length tr.b_valid_slots in
        let fired = tr.b_fired in
        for i = 0 to n - 1 do
          fired.(i) <- Engine.read_slot_mask t.b_engine tr.b_valid_slots.(i)
        done;
        if in_window then
          for i = 0 to n - 1 do
            let fi = fired.(i) in
            if fi <> 0 then
              for lane = 0 to t.b_lanes - 1 do
                if (fi lsr lane) land 1 = 1 then begin
                  let st = tr.b_states.(lane) in
                  st.request_hits <- st.request_hits + 1;
                  let lvi = tr.b_last_valid.(i) in
                  if lvi.(lane) >= 0 then
                    st.min_self_interval <-
                      update_min st.min_self_interval (cycle - lvi.(lane));
                  for j = 0 to n - 1 do
                    if j <> i then begin
                      let last_j =
                        if (fired.(j) lsr lane) land 1 = 1 then cycle
                        else tr.b_last_valid.(j).(lane)
                      in
                      if last_j >= 0 then begin
                        let interval = cycle - last_j in
                        st.min_pair_interval <-
                          update_min st.min_pair_interval interval;
                        if interval = 0 then st.triggered <- true
                      end
                    end
                  done
                end
              done
          done;
        (* As in [sample]: last-valid bookkeeping runs outside the window
           too, so intervals across the window edge are measured. *)
        for i = 0 to n - 1 do
          let fi = fired.(i) in
          if fi <> 0 then begin
            let lvi = tr.b_last_valid.(i) in
            for lane = 0 to t.b_lanes - 1 do
              if (fi lsr lane) land 1 = 1 then lvi.(lane) <- cycle
            done
          end
        done)
      t.b_tracked

  let states t ~lane =
    if lane < 0 || lane >= t.b_lanes then
      invalid_arg "Monitor.Batch.states: lane out of range";
    Array.to_list (Array.map (fun tr -> tr.b_states.(lane)) t.b_tracked)

  let find t ~lane id =
    List.find_opt
      (fun (s : point_state) -> String.equal s.point_id id)
      (states t ~lane)
end
