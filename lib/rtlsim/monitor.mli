(** Runtime [reqsIntvl] collection over an instrumented module.

    Attach a monitor to a compiled {!Engine.t} and sample it once per cycle
    (after [Engine.step]). For every instrumented contention point it
    tracks, within an optional monitoring window:

    - the minimum interval between valid requests from distinct sources
      (pairwise [reqsIntvl]);
    - the minimum interval between consecutive valid requests from the same
      source;
    - whether a {e volatile contention} was triggered (two distinct sources
      valid in the same cycle, i.e. pairwise interval 0). *)

type point_state = {
  point_id : string;
  mutable min_pair_interval : int option;
  mutable min_self_interval : int option;
  mutable triggered : bool;
  mutable request_hits : int;  (** total valid-request observations *)
}

type t

val create : Engine.t -> Sonar_ir.Instrument.point_monitor list -> t

val set_window : t -> start:int -> stop:int -> unit
(** Restrict sampling to cycles in [start, stop] (inclusive). *)

val clear_window : t -> unit
val sample : t -> unit
(** Read the engine's monitor outputs for the current cycle. *)

val states : t -> point_state list
val find : t -> string -> point_state option
(** Look up a point's state by id. *)

(** Batch sampling over a bit-sliced engine: one {!point_state} per
    (point, lane), updated with the same interval bookkeeping as the scalar
    monitor but for all of the engine's lanes in one {!Batch.sample} call
    (a single {!Engine.read_slot_mask} read per valid output covers every
    lane's truthiness). On a scalar engine it degrades to one lane and
    matches the scalar monitor exactly. *)
module Batch : sig
  type t

  val create : Engine.t -> Sonar_ir.Instrument.point_monitor list -> t
  val lanes : t -> int
  val set_window : t -> start:int -> stop:int -> unit
  val clear_window : t -> unit

  val sample : t -> unit
  (** Read the engine's monitor outputs for the current cycle, every lane. *)

  val states : t -> lane:int -> point_state list
  (** One lane's per-point states, in the same order as the scalar
      {!val-states}. *)

  val find : t -> lane:int -> string -> point_state option
end
