type t = { value : int64; width : int }

exception Width_error of string

let mask width = Int64.sub (Int64.shift_left 1L width) 1L

let make ~width value =
  if width < 1 || width > 63 then
    raise (Width_error (Printf.sprintf "width %d out of range 1..63" width));
  { value = Int64.logand value (mask width); width }

let zero width = make ~width 0L
let one width = make ~width 1L
let value t = t.value
let width t = t.width
let to_int t = Int64.to_int t.value
let is_true t = not (Int64.equal t.value 0L)

let result_width a b = max a.width b.width
let binop f a b = make ~width:(result_width a b) (f a.value b.value)
let add = binop Int64.add
let sub = binop Int64.sub
let logand = binop Int64.logand
let logor = binop Int64.logor
let logxor = binop Int64.logxor
let lognot a = make ~width:a.width (Int64.lognot a.value)

let bool1 b = make ~width:1 (if b then 1L else 0L)
let eq a b = bool1 (Int64.equal a.value b.value)
let neq a b = bool1 (not (Int64.equal a.value b.value))
let lt a b = bool1 (Int64.unsigned_compare a.value b.value < 0)
let leq a b = bool1 (Int64.unsigned_compare a.value b.value <= 0)
let gt a b = bool1 (Int64.unsigned_compare a.value b.value > 0)
let geq a b = bool1 (Int64.unsigned_compare a.value b.value >= 0)

let shl n a = make ~width:(min 63 (a.width + n)) (Int64.shift_left a.value n)

let shr n a =
  let w = max 1 (a.width - n) in
  make ~width:w (Int64.shift_right_logical a.value n)

let bits ~hi ~lo a =
  if hi < lo || lo < 0 then
    raise (Width_error (Printf.sprintf "invalid slice [%d:%d]" hi lo));
  make ~width:(hi - lo + 1) (Int64.shift_right_logical a.value lo)

let cat hi lo =
  let w = hi.width + lo.width in
  if w > 63 then raise (Width_error "cat result exceeds 63 bits");
  make ~width:w (Int64.logor (Int64.shift_left hi.value lo.width) lo.value)

let pad w a = make ~width:w a.value
let mux sel tval fval =
  let w = max tval.width fval.width in
  pad w (if is_true sel then tval else fval)
let equal a b = Int64.equal a.value b.value && a.width = b.width
let pp fmt t = Format.fprintf fmt "%Ld:%d" t.value t.width
