(** Cycle-accurate simulation engine for a single IR module.

    The engine levelizes the module once ({!compile}), resolves every signal
    name to an integer {e slot} into a flat native-int value store, then
    [step] evaluates every combinational signal in dependency order, computes
    the next value of every register from its drive expression, and latches —
    standard two-phase synchronous semantics, the same evaluation model
    Verilator gives the paper.

    Two backends share the slot store:

    - {!Compiled} (the default): every levelized expression is lowered once
      to an index-resolved closure with widths and masks resolved statically;
      [step] performs no name lookups, no [Bitvec] boxing, and no per-cycle
      heap allocation (the register latch reuses a preallocated scratch
      array).
    - {!Tree}: the original tree-walking interpreter over the expression
      trees, kept as the reference oracle — the compiled path is
      differential-tested against it bit for bit. *)

type t

type backend =
  | Tree  (** tree-walking interpreter (reference oracle) *)
  | Compiled  (** slot-resolved closures, allocation-free stepping *)

exception Unknown_signal of string

val set_profiler : (string -> unit -> unit) option -> unit
(** Install a profiling hook around {!compile} (span name
    ["engine.compile"], one span per compiled module); same contract as
    {!Sonar_ir.Analysis.set_profiler}. *)

val compile : ?backend:backend -> Sonar_ir.Fmodule.t -> t
(** Build an engine; [backend] defaults to {!Compiled}.
    @raise Levelize.Combinational_cycle on cyclic combinational logic.
    @raise Bitvec.Width_error on width-invalid expressions (e.g. a [cat]
    wider than 63 bits) — the {!Tree} backend raises the same error lazily,
    on first evaluation. *)

val backend : t -> backend

val poke : t -> string -> Bitvec.t -> unit
(** Drive an input. @raise Unknown_signal if not an input. *)

val poke_int : t -> string -> int -> unit

val step : t -> unit
(** Advance one clock cycle: settle combinational logic, latch registers.
    On the {!Compiled} backend this performs zero heap allocation. *)

val settle : t -> unit
(** Re-evaluate combinational logic without latching (to observe outputs
    after a {!poke} mid-cycle). *)

val peek : t -> string -> Bitvec.t
(** Read any signal's current value. @raise Unknown_signal *)

val peek_int : t -> string -> int
val cycle : t -> int
(** Cycles elapsed since {!compile} or {!reset}. *)

val reset : t -> unit
(** Restore registers to their reset values (0 when unspecified), zero
    inputs, and rewind the cycle counter. *)

val signal_names : t -> string list
(** All signals, in declaration order (used by the VCD writer). *)

val signal_width : t -> string -> int

(** {2 Slot API}

    Consumers on the per-cycle path (the runtime monitor, the VCD writer)
    resolve names to slots once and then read slots directly — no string
    hashing per sample. *)

val num_slots : t -> int

val slot : t -> string -> int
(** Resolve a signal name to its slot. @raise Unknown_signal *)

val slot_name : t -> int -> string
val slot_width : t -> int -> int

val read_slot : t -> int -> int
(** The slot's current value as its raw 63-bit pattern (allocation-free).
    Values of width-63 signals with the top bit set read as negative ints;
    use {!read_slot64} for the unsigned value. *)

val read_slot64 : t -> int -> int64
(** The slot's current value, zero-extended to a non-negative [int64]. *)
