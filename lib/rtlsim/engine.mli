(** Cycle-accurate simulation engine for a single IR module.

    The engine levelizes the module once ({!compile}), resolves every signal
    name to an integer {e slot} into a flat native-int value store, then
    [step] evaluates every combinational signal in dependency order, computes
    the next value of every register from its drive expression, and latches —
    standard two-phase synchronous semantics, the same evaluation model
    Verilator gives the paper.

    Three backends share the compile/step API:

    - {!Compiled} (the default): every levelized expression is lowered once
      to an index-resolved closure with widths and masks resolved statically;
      [step] performs no name lookups, no [Bitvec] boxing, and no per-cycle
      heap allocation (the register latch reuses a preallocated scratch
      array).
    - {!Bitsliced}: a bit-plane–transposed store that steps up to
      {!max_lanes} (= 63) independent stimulus lanes per [step]. Each signal
      owns [width] native ints; plane [b] packs bit [b] of all lanes, so
      every lowered operation is a handful of bitwise ops advancing all 63
      lanes at once (add/sub ripple-carry over planes, comparisons via
      borrow-out). Stepping stays allocation-free. Scalar [poke] broadcasts
      to every lane and scalar reads ({!peek}, {!read_slot}) observe lane 0,
      so lane-oblivious consumers work unchanged; per-lane stimulus goes
      through the lane API below.
    - {!Tree}: the original tree-walking interpreter over the expression
      trees, kept as the reference oracle — the compiled paths are
      differential-tested against it bit for bit. *)

type t

type backend =
  | Tree  (** tree-walking interpreter (reference oracle) *)
  | Compiled  (** slot-resolved closures, allocation-free stepping *)
  | Bitsliced
      (** bit-plane transposed store, 63 stimulus lanes per step *)

exception Unknown_signal of string

val set_profiler : (string -> unit -> unit) option -> unit
(** Install a profiling hook around {!compile} (span name
    ["engine.compile"], one span per compiled module); same contract as
    {!Sonar_ir.Analysis.set_profiler}. *)

val compile : ?backend:backend -> Sonar_ir.Fmodule.t -> t
(** Build an engine; [backend] defaults to {!Compiled}.
    @raise Levelize.Combinational_cycle on cyclic combinational logic.
    @raise Bitvec.Width_error on width-invalid expressions (e.g. a [cat]
    wider than 63 bits) — eagerly, at compile time, on every backend. *)

val backend : t -> backend

val poke : t -> string -> Bitvec.t -> unit
(** Drive an input. @raise Unknown_signal if not an input. *)

val poke_int : t -> string -> int -> unit

val step : t -> unit
(** Advance one clock cycle: settle combinational logic, latch registers.
    On the {!Compiled} backend this performs zero heap allocation. *)

val settle : t -> unit
(** Re-evaluate combinational logic without latching (to observe outputs
    after a {!poke} mid-cycle). *)

val peek : t -> string -> Bitvec.t
(** Read any signal's current value. @raise Unknown_signal *)

val peek_int : t -> string -> int
val cycle : t -> int
(** Cycles elapsed since {!compile} or {!reset}. *)

val reset : t -> unit
(** Restore registers to their reset values (0 when unspecified), zero
    inputs, and rewind the cycle counter. *)

val signal_names : t -> string list
(** All signals, in declaration order (used by the VCD writer). *)

val signal_width : t -> string -> int

(** {2 Slot API}

    Consumers on the per-cycle path (the runtime monitor, the VCD writer)
    resolve names to slots once and then read slots directly — no string
    hashing per sample. *)

val num_slots : t -> int

val slot : t -> string -> int
(** Resolve a signal name to its slot. @raise Unknown_signal *)

val slot_name : t -> int -> string
val slot_width : t -> int -> int

val read_slot : t -> int -> int
(** The slot's current value as its raw 63-bit pattern (allocation-free).
    Values of width-63 signals with the top bit set read as negative ints;
    use {!read_slot64} for the unsigned value. On the {!Bitsliced} backend
    this reads lane 0. *)

val read_slot64 : t -> int -> int64
(** The slot's current value, zero-extended to a non-negative [int64]. *)

(** {2 Lane API}

    The {!Bitsliced} backend simulates up to {!max_lanes} independent
    stimulus lanes at once; these entry points address a single lane, or
    transpose a whole batch in or out. On the scalar backends they degrade
    to the single lane 0, so batch-agnostic code can be written against
    them uniformly. *)

val max_lanes : int
(** 63 — one lane per bit of OCaml's native immediate integer. *)

val lanes : t -> int
(** {!max_lanes} on {!Bitsliced}, 1 otherwise. *)

val poke_lane : t -> string -> lane:int -> int -> unit
(** Drive an input for one lane only, leaving the other lanes' stimulus
    untouched (value masked to the input's width).
    @raise Unknown_signal if not an input.
    @raise Invalid_argument if [lane] is out of range. *)

val poke_lanes : t -> string -> int array -> unit
(** Bulk transpose-in: drive an input with one value per lane. Lanes past
    the array's length are driven to 0. *)

val read_slot_lane : t -> int -> lane:int -> int
(** One lane's value of a slot, with {!read_slot}'s signed width-63
    caveat. Allocation-free. *)

val read_slot_lanes_into : t -> int -> int array -> unit
(** Bulk transpose-out: fill [dst.(lane)] with each lane's value of the
    slot (reads [Array.length dst] lanes). Allocation-free. *)

val read_slot_lanes : t -> int -> int array
(** Allocating convenience wrapper over {!read_slot_lanes_into}, one cell
    per {!lanes}. *)

val read_slot_mask : t -> int -> int
(** Per-lane truthiness in one word: bit [lane] is set iff the slot's value
    in that lane is non-zero ([0] or [1] on scalar backends). This is the
    batch monitor's sampling primitive — one read covers all 63 lanes. *)
