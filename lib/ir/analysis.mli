(** End-to-end static analysis driver: identification, filtering, and
    per-component aggregation over a whole circuit (Figures 6 and 7). *)

type component_stats = {
  component : Component.t;
  identified : int;  (** contention points found by bottom-up tracing *)
  monitored : int;  (** points surviving the constant-state filter *)
}

type summary = {
  circuit_name : string;
  naive_mux_points : int;
      (** every 2:1 MUX counted as a point (Figure 6's baseline) *)
  identified_points : int;  (** bottom-up traced contention points *)
  monitored_points : int;  (** after filtering states without risk *)
  per_component : component_stats list;
  reduction_vs_naive : float;  (** fraction removed by bottom-up tracing *)
  reduction_by_filter : float;  (** fraction removed by the §5.2 filter *)
}

val set_profiler : (string -> unit -> unit) option -> unit
(** Install a profiling hook: [enter name] is called when an analysis phase
    begins and the closure it returns when the phase ends (even on raise).
    The telemetry layer bridges this to hierarchical [span_begin]/[span_end]
    events; the default ([None]) costs nothing. Span names:
    ["analysis"], ["analysis.naive_mux_count"], ["analysis.identify"],
    ["analysis.filter"]. *)

val classified_of_circuit : Circuit.t -> Const_filter.classified list
(** Classified contention points of every module, in module order. *)

val summarize : Circuit.t -> summary
val pp_summary : Format.formatter -> summary -> unit
