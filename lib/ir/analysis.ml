type component_stats = {
  component : Component.t;
  identified : int;
  monitored : int;
}

type summary = {
  circuit_name : string;
  naive_mux_points : int;
  identified_points : int;
  monitored_points : int;
  per_component : component_stats list;
  reduction_vs_naive : float;
  reduction_by_filter : float;
}

(* Profiling hook: the telemetry layer (which this library cannot depend
   on) installs a span recorder here; [enter name] opens a span and the
   returned closure ends it. Default: no-op, zero overhead. *)
let profiler : (string -> unit -> unit) option ref = ref None

let set_profiler h = profiler := h

let span name f =
  match !profiler with
  | None -> f ()
  | Some enter -> Fun.protect ~finally:(enter name) f

let classified_of_circuit (c : Circuit.t) =
  span "analysis.identify" (fun () ->
      List.concat_map Const_filter.classify_module c.modules)

let summarize (c : Circuit.t) =
  span "analysis" @@ fun () ->
  let naive =
    span "analysis.naive_mux_count" (fun () ->
        List.fold_left (fun acc m -> acc + Mux_tree.naive_mux_count m) 0 c.modules)
  in
  let classified = classified_of_circuit c in
  let identified = List.length classified in
  let monitored =
    span "analysis.filter" (fun () ->
        List.length (Const_filter.monitored classified))
  in
  let per_component =
    List.map
      (fun component ->
        let here =
          List.filter
            (fun (cl : Const_filter.classified) ->
              Component.equal cl.point.Mux_tree.component component)
            classified
        in
        {
          component;
          identified = List.length here;
          monitored = List.length (Const_filter.monitored here);
        })
      Component.all
  in
  let frac removed total = if total = 0 then 0. else float_of_int removed /. float_of_int total in
  {
    circuit_name = c.name;
    naive_mux_points = naive;
    identified_points = identified;
    monitored_points = monitored;
    per_component;
    reduction_vs_naive = frac (naive - identified) naive;
    reduction_by_filter = frac (identified - monitored) identified;
  }

let pp_summary fmt s =
  Format.fprintf fmt
    "@[<v>circuit %s:@,\
     naive 2:1-MUX points: %d@,\
     bottom-up contention points: %d (%.1f%% reduction)@,\
     monitored after filtering: %d (%.1f%% reduction)@,\
     per component:@,%a@]"
    s.circuit_name s.naive_mux_points s.identified_points
    (100. *. s.reduction_vs_naive)
    s.monitored_points
    (100. *. s.reduction_by_filter)
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun fmt cs ->
         Format.fprintf fmt "  %-9s identified %6d  monitored %6d"
           (Component.to_string cs.component)
           cs.identified cs.monitored))
    s.per_component
