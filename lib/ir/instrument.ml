type point_monitor = {
  point_id : string;
  valid_outputs : string list;
  intvl_output : string option;
}

type result = {
  circuit : Circuit.t;
  monitors : point_monitor list;
  stmts_added : int;
  points_instrumented : int;
}

let max_pairs = 16
let counter_width = 32

(* Sentinel exposed on the interval output before two requests were seen. *)
let no_interval = 0xFFFFL

let and_fold = function
  | [] -> Expr.lit ~width:1 1L
  | [ v ] -> Expr.reference v
  | v :: rest ->
      List.fold_left
        (fun acc n -> Expr.prim Expr.And [ acc; Expr.reference n ])
        (Expr.reference v) rest

let absdiff a b =
  Expr.mux
    (Expr.prim Expr.Geq [ a; b ])
    (Expr.prim Expr.Sub [ a; b ])
    (Expr.prim Expr.Sub [ b; a ])

let min_fold = function
  | [] -> Expr.lit ~width:counter_width no_interval
  | [ e ] -> e
  | e :: rest ->
      List.fold_left (fun acc x -> Expr.mux (Expr.prim Expr.Lt [ x; acc ]) x acc) e rest

let rec pairs_upto cap = function
  | [] | [ _ ] -> []
  | x :: rest ->
      let with_x = List.map (fun y -> (x, y)) rest in
      let here = if List.length with_x > cap then [] else with_x in
      let remaining = cap - List.length here in
      if remaining <= 0 then here else here @ pairs_upto remaining rest

let instrument_module m classified =
  let monitored = Const_filter.monitored classified in
  if monitored = [] then (m, [], 0)
  else begin
    let added = ref [] in
    let emit s = added := s :: !added in
    let cycle = "__mon_cycle" in
    emit (Stmt.Reg { name = cycle; width = counter_width; reset = Some 0L });
    emit
      (Stmt.Connect
         {
           dst = cycle;
           src = Expr.prim Expr.Add [ Expr.reference cycle; Expr.lit ~width:counter_width 1L ];
         });
    let monitors =
      List.mapi
        (fun k (c : Const_filter.classified) ->
          let base = Printf.sprintf "__mon%d" k in
          (* Requests whose validity is observable, with their valid exprs. *)
          let observable =
            List.filteri
              (fun _ (v : Validity.status) -> Validity.has_valid v)
              c.validities
            |> List.map (fun v -> and_fold (Validity.valid_signals v))
          in
          let valid_outputs =
            List.mapi
              (fun i valid_expr ->
                let vname = Printf.sprintf "%s_v%d" base i in
                emit (Stmt.Output { name = vname; width = 1 });
                emit (Stmt.Connect { dst = vname; src = valid_expr });
                vname)
              observable
          in
          let intvl_output =
            if List.length observable < 2 then None
            else begin
              let lasts =
                List.mapi
                  (fun i valid_expr ->
                    let last = Printf.sprintf "%s_last%d" base i in
                    emit
                      (Stmt.Reg { name = last; width = counter_width; reset = Some 0L });
                    emit
                      (Stmt.Connect
                         {
                           dst = last;
                           src =
                             Expr.mux valid_expr (Expr.reference cycle)
                               (Expr.reference last);
                         });
                    let seen = Printf.sprintf "%s_seen%d" base i in
                    emit (Stmt.Reg { name = seen; width = 1; reset = Some 0L });
                    emit
                      (Stmt.Connect
                         {
                           dst = seen;
                           src = Expr.mux valid_expr (Expr.lit ~width:1 1L) (Expr.reference seen);
                         });
                    (* Combinational "current" last value: updates the same
                       cycle the request fires. *)
                    let current =
                      Expr.mux valid_expr (Expr.reference cycle) (Expr.reference last)
                    in
                    (current, Expr.reference seen))
                  observable
              in
              let pair_intvls =
                pairs_upto max_pairs lasts
                |> List.map (fun ((ci, si), (cj, sj)) ->
                       Expr.mux
                         (Expr.prim Expr.And [ si; sj ])
                         (absdiff ci cj)
                         (Expr.lit ~width:counter_width no_interval))
              in
              let iname = Printf.sprintf "%s_intvl" base in
              emit (Stmt.Node { name = iname ^ "_min"; expr = min_fold pair_intvls });
              emit (Stmt.Output { name = iname; width = counter_width });
              emit
                (Stmt.Connect { dst = iname; src = Expr.reference (iname ^ "_min") });
              Some iname
            end
          in
          { point_id = c.point.Mux_tree.id; valid_outputs; intvl_output })
        monitored
    in
    let stmts = List.rev !added in
    ( { m with Fmodule.stmts = m.Fmodule.stmts @ stmts },
      monitors,
      List.length stmts )
  end

(* Profiling hook; see [Analysis.set_profiler] — same contract. *)
let profiler : (string -> unit -> unit) option ref = ref None

let set_profiler h = profiler := h

let instrument circuit =
  let finish =
    match !profiler with None -> Fun.id | Some enter -> enter "instrument"
  in
  Fun.protect ~finally:finish @@ fun () ->
  let monitors = ref [] in
  let stmts_added = ref 0 in
  let points = ref 0 in
  let modules =
    List.map
      (fun m ->
        let classified = Const_filter.classify_module m in
        let m', mons, added = instrument_module m classified in
        monitors := !monitors @ mons;
        stmts_added := !stmts_added + added;
        points := !points + List.length mons;
        m')
      circuit.Circuit.modules
  in
  {
    circuit = { circuit with Circuit.modules };
    monitors = !monitors;
    stmts_added = !stmts_added;
    points_instrumented = !points;
  }
