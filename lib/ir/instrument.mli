(** Monitor instrumentation pass (§5, §8.3.1).

    For every monitored contention point the pass appends, inside the
    defining module:

    - one output [__mon<k>_v<i>] per request that carries a validity signal,
      driven by that request's validity expression (the AND of its validity
      signals) — these let a runtime monitor observe request arrivals;
    - a per-module cycle counter register;
    - per-request last-valid-cycle registers and a combinational minimum of
      pairwise |last_i - last_j| exposed as output [__mon<k>_intvl] — the
      hardware [reqsIntvl] monitor.

    The pass is a single traversal of the module plus constant work per
    instrumented point, i.e. O(n) in the number of statements — the paper
    contrasts this with SpecDoctor's O(n²) instrumentation (§8.3.4).

    Pair enumeration is capped at {!max_pairs} per point to bound the code
    size on very wide arbiters. *)

type point_monitor = {
  point_id : string;  (** the contention point's {!Mux_tree.point.id} *)
  valid_outputs : string list;  (** [__mon<k>_v<i>] output names, in order *)
  intvl_output : string option;
      (** [__mon<k>_intvl] output, present when ≥ 2 requests are monitorable *)
}

type result = {
  circuit : Circuit.t;
  monitors : point_monitor list;
  stmts_added : int;  (** instrumentation code size (Table 2's "#New") *)
  points_instrumented : int;
}

val max_pairs : int

val set_profiler : (string -> unit -> unit) option -> unit
(** Install a profiling hook around {!instrument} (span name
    ["instrument"]); same contract as {!Analysis.set_profiler}. *)

val instrument_module :
  Fmodule.t -> Const_filter.classified list -> Fmodule.t * point_monitor list * int
(** Instrument one module given its classified points; returns the rewritten
    module, its monitors, and the number of statements added. *)

val instrument : Circuit.t -> result
(** Classify and instrument every module of a circuit. *)
