type t = {
  btb : (int64, int64) Hashtbl.t;
  counters : (int64, int) Hashtbl.t;  (* 2-bit saturating, 0-3 *)
}

let create (_cfg : Config.t) = { btb = Hashtbl.create 64; counters = Hashtbl.create 64 }
let counter t pc = Option.value ~default:1 (Hashtbl.find_opt t.counters pc)

let predict t ~pc ~taken ~target =
  let dir_pred = counter t pc >= 2 in
  let target_known =
    match Hashtbl.find_opt t.btb pc with
    | Some btb_target -> Int64.equal btb_target target
    | None -> false
  in
  if taken then dir_pred && target_known else not dir_pred

let predict_jump t ~pc ~target =
  match Hashtbl.find_opt t.btb pc with
  | Some btb_target -> Int64.equal btb_target target
  | None -> false

let update t ~pc ~taken ~target =
  let c = counter t pc in
  Hashtbl.replace t.counters pc (if taken then min 3 (c + 1) else max 0 (c - 1));
  if taken then Hashtbl.replace t.btb pc target

let update_jump t ~pc ~target = Hashtbl.replace t.btb pc target

let reset t =
  Hashtbl.reset t.btb;
  Hashtbl.reset t.counters

type save = {
  mutable s_btb : (int64 * int64) list;
  mutable s_counters : (int64 * int) list;
}

let make_save () = { s_btb = []; s_counters = [] }

let capture t sv =
  sv.s_btb <- Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.btb [];
  sv.s_counters <- Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counters []

let restore t sv =
  Hashtbl.reset t.btb;
  List.iter (fun (k, v) -> Hashtbl.replace t.btb k v) sv.s_btb;
  Hashtbl.reset t.counters;
  List.iter (fun (k, v) -> Hashtbl.replace t.counters k v) sv.s_counters
