type access_result = Ready of int | Waiting | Blocked of string

type transfer = {
  line : int64;
  kind : [ `I | `D ];
  core : int;
  requester_seq : int;
  writeback : bool;
  tainted : bool;
  mutable ready_at : int;
  mutable granted_at : int option;
  mutable complete_at : int option;
  mutable processed : bool;
  mshr_idx : int option;
}

type mshr_entry = { m_line : int64; m_set : int; m_tainted : bool }

type waiter = { w_rob : int; w_tainted : bool }

type t = {
  cfg : Config.t;
  reg : Cpoint.registry;
  cores : int;
  l1i : Cache.t array;
  l1d : Cache.t array;
  l2 : Cache.t;
  mutable transfers : transfer list;
  mutable channel_busy_until : int;
  mshrs : mshr_entry option array array;  (** [core].(idx) *)
  load_waiters : (int * int64, waiter list ref) Hashtbl.t;
  store_waiters : (int * int64, waiter list ref) Hashtbl.t;
  load_ready_tbl : (int * int, int) Hashtbl.t;  (** (core, rob) -> cycle *)
  store_ready_tbl : (int * int, int) Hashtbl.t;
  ifetch_ready_tbl : (int * int64, int) Hashtbl.t;  (** (core, line) -> cycle *)
  icache_port_busy : int array;  (** per core: busy-until cycle *)
  write_lb_busy : int array;  (** per core: write line buffer busy-until *)
  p_channel : Cpoint.t;
  p_l2 : Cpoint.t;
  p_mshr : Cpoint.t array;
  p_icache_port : Cpoint.t array;
  p_lb_read : Cpoint.t array;
  p_lb_write : Cpoint.t array;
  p_dfill : Cpoint.t array;
  p_dport : Cpoint.t array;
}

(* D-channel sources: per core iread/dread/wb. *)
let channel_source ~core ~kind ~writeback =
  (core * 3) + if writeback then 2 else match kind with `I -> 0 | `D -> 1

let create (cfg : Config.t) reg ~cores =
  let open Sonar_ir.Component in
  let channel_sources =
    List.concat_map
      (fun c ->
        [
          Printf.sprintf "c%d.iread" c;
          Printf.sprintf "c%d.dread" c;
          Printf.sprintf "c%d.wb" c;
        ])
      (List.init cores Fun.id)
  in
  let channel_name =
    if String.equal cfg.bus_protocol "TileLink" then "tilelink.d_channel"
    else "bus.req"
  in
  let per_core name component sources ?persistent_subs () =
    Array.init cores (fun c ->
        Cpoint.point reg
          ~name:(Printf.sprintf "c%d.%s" c name)
          ~component ~sources ?persistent_subs ())
  in
  let l1d_cache = Cache.create cfg.dcache in
  let dcache_sets = Cache.n_sets l1d_cache in
  {
    cfg;
    reg;
    cores;
    l1i = Array.init cores (fun _ -> Cache.create cfg.icache);
    l1d =
      Array.init cores (fun i ->
          if i = 0 then l1d_cache else Cache.create cfg.dcache);
    l2 = Cache.create cfg.l2;
    transfers = [];
    channel_busy_until = 0;
    mshrs = Array.init cores (fun _ -> Array.make (max cfg.mshrs 1) None);
    load_waiters = Hashtbl.create 32;
    store_waiters = Hashtbl.create 32;
    load_ready_tbl = Hashtbl.create 32;
    store_ready_tbl = Hashtbl.create 32;
    ifetch_ready_tbl = Hashtbl.create 32;
    icache_port_busy = Array.make cores (-1);
    write_lb_busy = Array.make cores (-1);
    p_channel =
      Cpoint.point reg ~name:channel_name ~component:Bus ~sources:channel_sources ();
    p_l2 =
      Cpoint.point reg ~name:"l2.req_port" ~component:Bus
        ~sources:
          (List.concat_map
             (fun c -> [ Printf.sprintf "c%d.i" c; Printf.sprintf "c%d.d" c ])
             (List.init cores Fun.id))
        ();
    p_mshr =
      per_core "mshr.alloc" Lsu [ "pri"; "sec"; "blocked" ]
        ~persistent_subs:dcache_sets ();
    p_icache_port =
      per_core "icache.port" Frontend [ "fetch_read"; "refill_write" ] ();
    p_lb_read = per_core "linebuffer.read" Lsu [ "older"; "younger" ] ();
    p_lb_write = per_core "linebuffer.write" Lsu [ "evict_wb"; "store_wb" ] ();
    p_dfill =
      per_core "dcache.fill" Lsu [ "load"; "store" ] ~persistent_subs:dcache_sets ();
    p_dport = per_core "lsu.dcache_port" Lsu [ "load"; "store" ] ();
  }

let reset t =
  (* Rewind all run state to what [create] builds, reusing every array,
     cache line and hashtable. The contention points themselves are reset
     through their registry ([Cpoint.reset]); this only clears the memory
     hierarchy. Paired with a registry reset, a reused memsys is
     bit-identical in behavior to a freshly created one. *)
  Array.iter Cache.reset t.l1i;
  Array.iter Cache.reset t.l1d;
  Cache.reset t.l2;
  t.transfers <- [];
  t.channel_busy_until <- 0;
  Array.iter (fun m -> Array.fill m 0 (Array.length m) None) t.mshrs;
  Hashtbl.reset t.load_waiters;
  Hashtbl.reset t.store_waiters;
  Hashtbl.reset t.load_ready_tbl;
  Hashtbl.reset t.store_ready_tbl;
  Hashtbl.reset t.ifetch_ready_tbl;
  Array.fill t.icache_port_busy 0 (Array.length t.icache_port_busy) (-1);
  Array.fill t.write_lb_busy 0 (Array.length t.write_lb_busy) (-1)

(* Checkpoint support.  Transfers are mutable records, so capture deep-
   copies each one (preserving list order — grant arbitration folds over
   the list).  Waiter lists are captured as [(key, contents)] and restored
   into fresh refs with their order preserved.  The remaining hashtables
   are read only via [find_opt], so assoc-list replay is faithful. *)

type save = {
  mutable s_transfers : transfer list;
  mutable s_channel_busy_until : int;
  s_mshrs : mshr_entry option array array;
  mutable s_load_waiters : ((int * int64) * waiter list) list;
  mutable s_store_waiters : ((int * int64) * waiter list) list;
  mutable s_load_ready : ((int * int) * int) list;
  mutable s_store_ready : ((int * int) * int) list;
  mutable s_ifetch_ready : ((int * int64) * int) list;
  s_icache_port_busy : int array;
  s_write_lb_busy : int array;
  s_l1i : Cache.save array;
  s_l1d : Cache.save array;
  s_l2 : Cache.save;
}

let make_save t =
  {
    s_transfers = [];
    s_channel_busy_until = 0;
    s_mshrs = Array.map (fun m -> Array.make (Array.length m) None) t.mshrs;
    s_load_waiters = [];
    s_store_waiters = [];
    s_load_ready = [];
    s_store_ready = [];
    s_ifetch_ready = [];
    s_icache_port_busy = Array.make t.cores (-1);
    s_write_lb_busy = Array.make t.cores (-1);
    s_l1i = Array.map Cache.make_save t.l1i;
    s_l1d = Array.map Cache.make_save t.l1d;
    s_l2 = Cache.make_save t.l2;
  }

let assoc_of_tbl tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []

let tbl_of_assoc tbl assoc =
  Hashtbl.reset tbl;
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) assoc

let capture t sv =
  sv.s_transfers <- List.map (fun tr -> { tr with ready_at = tr.ready_at }) t.transfers;
  sv.s_channel_busy_until <- t.channel_busy_until;
  Array.iteri (fun i m -> Array.blit m 0 sv.s_mshrs.(i) 0 (Array.length m)) t.mshrs;
  sv.s_load_waiters <-
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.load_waiters [];
  sv.s_store_waiters <-
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.store_waiters [];
  sv.s_load_ready <- assoc_of_tbl t.load_ready_tbl;
  sv.s_store_ready <- assoc_of_tbl t.store_ready_tbl;
  sv.s_ifetch_ready <- assoc_of_tbl t.ifetch_ready_tbl;
  Array.blit t.icache_port_busy 0 sv.s_icache_port_busy 0 t.cores;
  Array.blit t.write_lb_busy 0 sv.s_write_lb_busy 0 t.cores;
  Array.iteri (fun i c -> Cache.capture c sv.s_l1i.(i)) t.l1i;
  Array.iteri (fun i c -> Cache.capture c sv.s_l1d.(i)) t.l1d;
  Cache.capture t.l2 sv.s_l2

let restore t sv =
  t.transfers <- List.map (fun tr -> { tr with ready_at = tr.ready_at }) sv.s_transfers;
  t.channel_busy_until <- sv.s_channel_busy_until;
  Array.iteri (fun i m -> Array.blit sv.s_mshrs.(i) 0 m 0 (Array.length m)) t.mshrs;
  Hashtbl.reset t.load_waiters;
  List.iter (fun (k, l) -> Hashtbl.replace t.load_waiters k (ref l)) sv.s_load_waiters;
  Hashtbl.reset t.store_waiters;
  List.iter (fun (k, l) -> Hashtbl.replace t.store_waiters k (ref l)) sv.s_store_waiters;
  tbl_of_assoc t.load_ready_tbl sv.s_load_ready;
  tbl_of_assoc t.store_ready_tbl sv.s_store_ready;
  tbl_of_assoc t.ifetch_ready_tbl sv.s_ifetch_ready;
  Array.blit sv.s_icache_port_busy 0 t.icache_port_busy 0 t.cores;
  Array.blit sv.s_write_lb_busy 0 t.write_lb_busy 0 t.cores;
  Array.iteri (fun i c -> Cache.restore c sv.s_l1i.(i)) t.l1i;
  Array.iteri (fun i c -> Cache.restore c sv.s_l1d.(i)) t.l1d;
  Cache.restore t.l2 sv.s_l2

let find_transfer t ~core ~kind ~line =
  List.find_opt
    (fun tr ->
      tr.core = core && tr.kind = kind && Int64.equal tr.line line
      && not tr.writeback && not tr.processed)
    t.transfers

let l2_ready_time t ~cycle ~line ~seq ~tainted =
  (* L2 lookup; on L2 miss the data comes from memory and fills L2. *)
  match Cache.lookup t.l2 line with
  | Some _ -> cycle + t.cfg.l2_latency
  | None ->
      ignore (Cache.fill t.l2 line ~seq ~cycle ~tainted);
      cycle + t.cfg.mem_latency

let start_refill t ~core ~kind ~line ~seq ~cycle ~mshr_idx ~tainted =
  Cpoint.request t.reg t.p_l2 ~tainted
    ~source:((core * 2) + match kind with `I -> 0 | `D -> 1)
    ~data:line;
  let tr =
    {
      line;
      kind;
      core;
      requester_seq = seq;
      writeback = false;
      tainted;
      ready_at = l2_ready_time t ~cycle ~line ~seq ~tainted;
      granted_at = None;
      complete_at = None;
      processed = false;
      mshr_idx;
    }
  in
  t.transfers <- tr :: t.transfers

(* Draining a 64-byte victim line through the write line buffer's 8-byte
   port takes 8 cycles; a second writeback arriving within that window is
   delayed until the buffer frees (S7). *)
let write_lb_occupancy = 8

let enqueue_writeback t ~core ~line ~cycle ~tainted =
  let p = t.p_lb_write.(core) in
  Cpoint.request t.reg p ~tainted ~source:0 ~data:line;
  let start = max cycle (t.write_lb_busy.(core) + 1) in
  let delay = start - cycle in
  if delay > 0 then Cpoint.request t.reg p ~tainted ~source:1 ~data:line;
  t.write_lb_busy.(core) <- start + write_lb_occupancy - 1;
  let tr =
    {
      line;
      kind = `D;
      core;
      requester_seq = -1;
      writeback = true;
      tainted;
      ready_at = cycle + delay;
      granted_at = None;
      complete_at = None;
      processed = false;
      mshr_idx = None;
    }
  in
  t.transfers <- tr :: t.transfers

(* --- Instruction fetch --- *)

let ifetch t ~core ~addr ~cycle ~tainted =
  let line = Cache.line_addr t.l1i.(core) addr in
  let port = t.p_icache_port.(core) in
  Cpoint.request t.reg port ~tainted ~source:0 ~data:line;
  if t.icache_port_busy.(core) >= cycle then Blocked "icache port busy (refill)"
  else
    match Cache.lookup t.l1i.(core) addr with
    | Some _ -> Ready (cycle + t.cfg.icache.hit_latency)
    | None -> (
        match find_transfer t ~core ~kind:`I ~line with
        | Some _ -> Waiting
        | None ->
            start_refill t ~core ~kind:`I ~line ~seq:(-1) ~cycle ~mshr_idx:None
              ~tainted;
            Waiting)

let ifetch_ready t ~core ~addr =
  let line = Cache.line_addr t.l1i.(core) addr in
  Hashtbl.find_opt t.ifetch_ready_tbl (core, line)

(* --- Data loads --- *)

let add_waiter tbl key rob tainted =
  let w = { w_rob = rob; w_tainted = tainted } in
  match Hashtbl.find_opt tbl key with
  | Some l -> if not (List.exists (fun x -> x.w_rob = rob) !l) then l := w :: !l
  | None -> Hashtbl.replace tbl key (ref [ w ])

let mshr_lookup t ~core ~line =
  let set = Cache.set_index t.l1d.(core) line in
  let entries = t.mshrs.(core) in
  let n = Array.length entries in
  let rec go i free same_set =
    if i >= n then (free, same_set)
    else
      match entries.(i) with
      | None -> go (i + 1) (if free = None then Some i else free) same_set
      | Some e ->
          if Int64.equal e.m_line line then (free, `Same_line)
          else if e.m_set = set && same_set = `None then
            go (i + 1) free (`Same_set e.m_tainted)
          else go (i + 1) free same_set
  in
  go 0 None `None

let d_miss_in_flight t core =
  List.exists
    (fun tr -> tr.core = core && tr.kind = `D && not tr.writeback && not tr.processed)
    t.transfers

let dmem_access t ~core ~seq ~rob ~addr ~cycle ~tainted ~is_store ~is_sc =
  let l1d = t.l1d.(core) in
  let line = Cache.line_addr l1d addr in
  let source = if is_store then 1 else 0 in
  Cpoint.request t.reg t.p_dport.(core) ~tainted ~source ~data:line;
  match Cache.lookup l1d addr with
  | Some info ->
      if is_store then begin
        (* S10: store-conditionals dirty the line regardless of success. *)
        ignore (Cache.mark_dirty l1d addr);
        if is_sc then
          Cpoint.persistent t.reg t.p_dfill.(core) ~tainted ~source:1
            ~sub:(Cache.set_index l1d line) ~data:line
      end
      else if info.filler_seq > seq then
        (* S11: hit on a line filled by a younger in-flight instruction. *)
        Cpoint.persistent t.reg t.p_dfill.(core)
          ~tainted:(tainted || info.filler_tainted)
          ~source:0 ~sub:(Cache.set_index l1d line) ~data:line;
      Ready (cycle + t.cfg.dcache.hit_latency)
  | None -> (
      (* S12: miss on a line another instruction's fill recently evicted. *)
      (if not is_store then
         match Cache.recently_evicted l1d addr with
         | Some (evictor, ev_tainted) when evictor <> seq ->
             Cpoint.persistent t.reg t.p_dfill.(core)
               ~tainted:(tainted || ev_tainted) ~source:0
               ~sub:(Cache.set_index l1d line) ~data:line
         | Some _ | None -> ());
      let waiters = if is_store then t.store_waiters else t.load_waiters in
      match find_transfer t ~core ~kind:`D ~line with
      | Some _ ->
          (* sec-mode reuse of the in-flight MSHR. *)
          Cpoint.request t.reg t.p_mshr.(core) ~tainted ~source:1 ~data:line;
          add_waiter waiters (core, line) rob tainted;
          Waiting
      | None ->
          if t.cfg.mshrs = 0 then begin
            (* Blocking cache: one outstanding data miss. *)
            if d_miss_in_flight t core then Blocked "blocking cache: miss in flight"
            else begin
              start_refill t ~core ~kind:`D ~line ~seq ~cycle ~mshr_idx:None
                ~tainted;
              add_waiter waiters (core, line) rob tainted;
              Waiting
            end
          end
          else begin
            let free, conflict = mshr_lookup t ~core ~line in
            match conflict with
            | `Same_set occupant_tainted ->
                (* S5: set-index match, tag mismatch — refused until the
                   occupying MSHR retires ("false sharing path blocking"). *)
                Cpoint.request t.reg t.p_mshr.(core) ~tainted ~source:2 ~data:line;
                Cpoint.persistent t.reg t.p_mshr.(core)
                  ~tainted:(tainted || occupant_tainted) ~source:2
                  ~sub:(Cache.set_index t.l1d.(core) line)
                  ~data:line;
                Blocked "mshr set conflict"
            | `Same_line | `None -> (
                match free with
                | None -> Blocked "mshrs full"
                | Some idx ->
                    Cpoint.request t.reg t.p_mshr.(core) ~tainted ~source:0
                      ~data:line;
                    t.mshrs.(core).(idx) <-
                      Some
                        {
                          m_line = line;
                          m_set = Cache.set_index t.l1d.(core) line;
                          m_tainted = tainted;
                        };
                    start_refill t ~core ~kind:`D ~line ~seq ~cycle
                      ~mshr_idx:(Some idx) ~tainted;
                    add_waiter waiters (core, line) rob tainted;
                    Waiting)
          end)

let dload t ~core ~seq ~rob ~addr ~cycle ~tainted =
  dmem_access t ~core ~seq ~rob ~addr ~cycle ~tainted ~is_store:false ~is_sc:false

let dstore t ~core ~seq ~rob ~addr ~is_sc ~cycle ~tainted =
  dmem_access t ~core ~seq ~rob ~addr ~cycle ~tainted ~is_store:true ~is_sc

let load_ready t ~core ~rob = Hashtbl.find_opt t.load_ready_tbl (core, rob)
let store_ready t ~core ~rob = Hashtbl.find_opt t.store_ready_tbl (core, rob)

(* --- Channel arbitration and completion --- *)

let read_beats = 8
let writeback_beats = 1

let grant_priority tr =
  (* ICache reads first, then DCache reads, then writebacks. *)
  if tr.writeback then 2 else match tr.kind with `I -> 0 | `D -> 1

let complete_transfer t tr ~cycle =
  tr.processed <- true;
  if tr.writeback then ()
  else begin
    (match tr.mshr_idx with
    | Some idx -> t.mshrs.(tr.core).(idx) <- None
    | None -> ());
    match tr.kind with
    | `I ->
        ignore
          (Cache.fill t.l1i.(tr.core) tr.line ~seq:tr.requester_seq ~cycle
             ~tainted:tr.tainted);
        (* The refill write occupies the ICache port, blocking fetch (S14). *)
        Cpoint.request t.reg t.p_icache_port.(tr.core) ~tainted:tr.tainted
          ~source:1 ~data:tr.line;
        t.icache_port_busy.(tr.core) <- cycle;
        Hashtbl.replace t.ifetch_ready_tbl (tr.core, tr.line) (cycle + 1)
    | `D -> (
        let victim =
          Cache.fill t.l1d.(tr.core) tr.line ~seq:tr.requester_seq ~cycle
            ~tainted:tr.tainted
        in
        (* Evicting a dirty victim stalls the fill until the victim has a
           write-line-buffer slot (plus the handoff): the cost behind the
           store-conditional channel S10 and the write-buffer channel S7. *)
        let wb_penalty =
          match victim with
          | Some v when v.was_dirty ->
              let before = t.write_lb_busy.(tr.core) in
              enqueue_writeback t ~core:tr.core ~line:v.victim_addr ~cycle
                ~tainted:tr.tainted;
              6 + max 0 (before + 1 - cycle)
          | Some _ | None -> 0
        in
        (* Wake loads through the read line buffer: youngest first, one per
           cycle (S6). *)
        (match Hashtbl.find_opt t.load_waiters (tr.core, tr.line) with
        | Some waiters ->
            let sorted =
              List.sort (fun a b -> compare b.w_rob a.w_rob) !waiters
            in
            let n = List.length sorted in
            List.iteri
              (fun i w ->
                if n > 1 then
                  Cpoint.request t.reg t.p_lb_read.(tr.core) ~tainted:w.w_tainted
                    ~source:(if i = 0 then 1 else 0)
                    ~data:tr.line;
                Hashtbl.replace t.load_ready_tbl (tr.core, w.w_rob)
                  (cycle + 1 + (4 * i) + wb_penalty))
              sorted;
            Hashtbl.remove t.load_waiters (tr.core, tr.line)
        | None -> ());
        match Hashtbl.find_opt t.store_waiters (tr.core, tr.line) with
        | Some waiters ->
            ignore (Cache.mark_dirty t.l1d.(tr.core) tr.line);
            List.iter
              (fun w ->
                Hashtbl.replace t.store_ready_tbl (tr.core, w.w_rob)
                  (cycle + 1 + wb_penalty))
              !waiters;
            Hashtbl.remove t.store_waiters (tr.core, tr.line)
        | None -> ())
  end

let tick t ~cycle =
  (* Completions due this cycle. *)
  List.iter
    (fun tr ->
      match tr.complete_at with
      | Some c when c <= cycle && not tr.processed -> complete_transfer t tr ~cycle
      | Some _ | None -> ())
    t.transfers;
  t.transfers <- List.filter (fun tr -> not tr.processed) t.transfers;
  (* Channel grant. *)
  if t.channel_busy_until <= cycle then begin
    let ready =
      List.filter (fun tr -> tr.granted_at = None && tr.ready_at <= cycle) t.transfers
    in
    match ready with
    | [] -> ()
    | _ ->
        List.iter
          (fun tr ->
            Cpoint.request t.reg t.p_channel ~tainted:tr.tainted
              ~source:
                (channel_source ~core:tr.core ~kind:tr.kind ~writeback:tr.writeback)
              ~data:tr.line)
          ready;
        let winner =
          List.fold_left
            (fun best tr ->
              match best with
              | None -> Some tr
              | Some b ->
                  if grant_priority tr < grant_priority b then Some tr else best)
            None ready
        in
        Option.iter
          (fun tr ->
            Cpoint.grant t.reg t.p_channel
              ~source:
                (channel_source ~core:tr.core ~kind:tr.kind ~writeback:tr.writeback);
            let beats = if tr.writeback then writeback_beats else read_beats in
            tr.granted_at <- Some cycle;
            tr.complete_at <- Some (cycle + beats);
            t.channel_busy_until <- cycle + beats)
          winner
  end

let dcache_probe t ~core ~addr = Cache.probe t.l1d.(core) addr
let busy t = t.transfers <> []
