(** Runtime contention points and their registry.

    Every arbitration site in the timing models (TileLink D-channel grant,
    writeback-port select, MSHR allocation, line-buffer port, ...) registers
    a contention point and reports request/grant activity each cycle. The
    registry tracks, inside the monitoring window (§6.1):

    - per-source valid-request counts;
    - minimum pairwise interval between valid requests from distinct
      sources ([reqsIntvl]) and minimum same-source consecutive interval;
    - triggered {e volatile} sub-points (a source pair that requested in the
      same cycle) and {e persistent} sub-points (reported explicitly by
      storage-like resources, keyed by e.g. cache set);
    - an order-sensitive digest of the event stream, used by the detector's
      contention-state differential comparison (§7.2).

    Each point carries a netlist [fanout] (how many netlist MUX points it
    maps to, see DESIGN.md); a triggered sub-point contributes
    [fanout / max_subs] netlist points to coverage, which reproduces the
    cluster-shaped growth of Figure 8. *)

type kind = Volatile | Persistent

val data_buckets : int
(** Data classes per source pair: a volatile sub-point id is
    [pair * data_buckets + bucket]. *)

type t = private {
  name : string;
  component : Sonar_ir.Component.t;
  fanout : int;
  max_subs : int;  (** volatile pairs + declared persistent subs *)
  single_valid : bool;
      (** the requests are themselves the valid signals (slot-style points) —
          the class Figure 9 reports as dominating early contentions *)
  sources : string array;
  last_valid : int array;  (** per source; -1 = never *)
  hits : int array;  (** in-window valid requests per source *)
  mutable min_pair : int option;
  mutable min_self : int option;
  mutable active_sources : int;
      (** sources with at least one in-window request, maintained
          incrementally (avoids an O(sources) rescan per request) *)
  mutable single_valid_dominated : bool;
      (** every in-window event so far came from one source (Figure 9) *)
  triggered : (kind * int, unit) Hashtbl.t;
  pair_min : (int, int) Hashtbl.t;
      (** per risky source pair, the minimum interval observed — the
          fuzzer's per-pair convergence targets *)
  last_tainted : bool array;
      (** was each source's most recent request secret-dependent *)
  mutable digest : int;
  mutable event_count : int;
}

type registry

val create : Config.t -> registry

val reset : registry -> unit
(** Rewind every registered point's observations (hits, intervals,
    triggered sub-points, digests) and the registry's window/cycle state to
    cold start, keeping the registered points themselves. Because point
    registration is structural — a function of the config and core count
    only — a reset registry behaves bit-identically to a fresh one; this is
    what lets {!Machine.Ctx} reuse a registry across runs without
    reallocating its tables. *)

val point :
  registry ->
  name:string ->
  component:Sonar_ir.Component.t ->
  sources:string list ->
  ?persistent_subs:int ->
  ?single_valid:bool ->
  unit ->
  t
(** Get-or-create. [persistent_subs] declares how many persistent sub-points
    exist (e.g. cache sets); volatile sub-points are the source pairs. A
    single-source point triggers on its first in-window request (the
    "dominated by a single valid signal" class of Figure 9). *)

val request : registry -> t -> tainted:bool -> source:int -> data:int64 -> unit
(** Report a valid request this cycle from [source]. [tainted] marks a
    request derived from secret-dependent instructions; only contention
    involving at least one tainted request is {e risky} (secret-dependent,
    §6.1) — pair intervals and triggers are recorded for risky pairs only. *)

val grant : registry -> t -> source:int -> unit
(** Report the arbitration winner (folded into the digest). *)

val persistent :
  registry -> t -> tainted:bool -> source:int -> sub:int -> data:int64 -> unit
(** Report a persistent-contention event on sub-point [sub]. Only tainted
    events count as triggers (untainted ones still feed the digest). *)

val set_cycle : registry -> int -> unit
val open_window : registry -> unit
val close_window : registry -> unit
val window_open : registry -> bool
val window_bounds : registry -> (int * int) option
(** First and last cycle the window was open, once closed. *)

val points : registry -> t list

type save
(** Preallocated registry checkpoint: one buffer per registered point plus
    the window/cycle state. Make it {e after} all points are registered
    (registration is structural, so the point set is stable once the cores
    exist); capture/restore then run allocation-light. *)

val make_save : registry -> save
val capture : registry -> save -> unit
val restore : registry -> save -> unit

val triggered_weight : t -> float
(** Netlist contention points this point contributes to coverage:
    [fanout × triggered_subs / max_subs]. *)

val triggered_subs : t -> (kind * int) list

val pair_intervals : t -> (int * int) list
(** Sorted (pair id, minimum interval) pairs observed in the window. *)

val pair_name : t -> int -> string
(** Human-readable source pair, e.g. ["dread-iread"]. *)

type snapshot = {
  point_name : string;
  s_hits : int array;
  s_min_pair : int option;
  s_min_self : int option;
  s_triggered : (kind * int) list;
  s_digest : int;
}

val snapshot : t -> snapshot
val snapshots : registry -> snapshot list

val diff_snapshots : snapshot list -> snapshot list -> (string * string) list
(** Contention-state discrepancies between two runs, as
    [(point name, human-readable difference)] pairs — the lower table of the
    paper's Figure 5. *)
