(** Set-associative write-back cache timing model with LRU replacement.

    Tracks tags, validity, dirtiness and filler identity per line. Values
    are not stored (the golden model supplies data); this model only answers
    hit/miss questions and produces victim information, which is what the
    contention channels need. Filler identity (which dynamic instruction
    brought a line in, and when) supports the persistent-channel detectors
    (S11: hit on a line filled by a younger instruction; S12: miss on a
    recently evicted line). *)

type fill_info = { filler_seq : int; fill_cycle : int; filler_tainted : bool }

type victim = { victim_addr : int64; was_dirty : bool }

type t

val create : Config.cache_cfg -> t
val n_sets : t -> int
val set_index : t -> int64 -> int
val line_addr : t -> int64 -> int64
(** Align an address down to its cache line. *)

val probe : t -> int64 -> bool
(** Hit test without touching replacement state. *)

val lookup : t -> int64 -> fill_info option
(** Hit test that updates LRU; returns the line's fill info on hit. *)

val fill : t -> int64 -> seq:int -> cycle:int -> tainted:bool -> victim option
(** Install a line (clean); returns the evicted victim if one was valid. *)

val mark_dirty : t -> int64 -> bool
(** Mark the line holding this address dirty; [false] if not present. *)

val is_dirty : t -> int64 -> bool

val recently_evicted : t -> int64 -> (int * bool) option
(** If this address's line was evicted from its set recently, the dynamic
    sequence number of the instruction whose fill evicted it and that
    fill's taint (S12). *)

val reset : t -> unit
(** Return the cache to its cold-start state (all lines invalid and clean,
    LRU clock rewound, eviction history cleared) without reallocating the
    line arrays. A reset cache behaves bit-identically to a fresh
    {!create} of the same configuration — the property the reusable
    {!Machine.Ctx} run contexts rely on. *)

type save
(** Preallocated checkpoint buffer sized for one cache's line arrays. *)

val make_save : t -> save
val capture : t -> save -> unit
val restore : t -> save -> unit
(** [restore t sv] returns [t] to the exact state [capture t sv] saw:
    observable behaviour after restore is bit-identical to the captured
    cache. A [save] may only be restored into a cache of the same
    geometry it was made for. *)
