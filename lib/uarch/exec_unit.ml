type wb_class = Wb_alu | Wb_mul | Wb_div | Wb_mem

type pending_wb = { id : int; cls : wb_class; since : int; tainted : bool }

type t = {
  cfg : Config.t;
  reg : Cpoint.registry;
  mutable alu_used : int;  (** ALU issue slots used this cycle *)
  mutable mem_used : int;
  mutable mul_issued : bool;  (** pipelined IMUL accepts one op per cycle *)
  mutable div_busy_until : int;
  mutable mdu_busy_until : int;
  mutable pending_wb : pending_wb list;
  p_wb : Cpoint.t;
  p_issue_alu : Cpoint.t;
  p_issue_mem : Cpoint.t;
  p_div : Cpoint.t;
  p_mdu : Cpoint.t option;
}

let create (cfg : Config.t) reg ~core =
  let open Sonar_ir.Component in
  let pt ?single_valid name component sources =
    Cpoint.point reg
      ~name:(Printf.sprintf "c%d.%s" core name)
      ~component ~sources ?single_valid ()
  in
  {
    cfg;
    reg;
    alu_used = 0;
    mem_used = 0;
    mul_issued = false;
    div_busy_until = -1;
    mdu_busy_until = -1;
    pending_wb = [];
    p_wb = pt "exec.wb_port" Exec [ "alu"; "imul"; "div"; "mem" ];
    p_issue_alu =
      pt ~single_valid:true "exec.issue_alu" Exec
        (List.init cfg.int_alus (Printf.sprintf "slot%d"));
    p_issue_mem =
      pt ~single_valid:true "exec.issue_mem" Exec
        (List.init cfg.mem_units (Printf.sprintf "slot%d"));
    p_div = pt "exec.div_req" Exec [ "older"; "younger" ];
    p_mdu = (if cfg.unified_mdu then Some (pt "mdu.req" Exec [ "mul"; "div" ]) else None);
  }

let new_cycle t ~cycle =
  ignore cycle;
  t.alu_used <- 0;
  t.mem_used <- 0;
  t.mul_issued <- false

let try_issue_alu t ~cycle ~tainted =
  if t.alu_used < t.cfg.int_alus then begin
    Cpoint.request ~tainted t.reg t.p_issue_alu ~source:t.alu_used ~data:(Int64.of_int cycle);
    t.alu_used <- t.alu_used + 1;
    Some (cycle + 1)
  end
  else None

(* Operand-dependent latencies. The divider iterates over the dividend's
   significant bits; the paper observes 57-70 cycle effects on BOOM (S9) and
   4-63 on NutShell's MDU (S13). *)
let bits64 v =
  let rec go acc v = if Int64.equal v 0L then acc else go (acc + 1) (Int64.shift_right_logical v 1) in
  go 0 v

let div_latency (cfg : Config.t) operand =
  if cfg.unified_mdu then 20 + (bits64 operand * 2 / 3) else 55 + (bits64 operand / 8)

let mul_latency (cfg : Config.t) = if cfg.unified_mdu then 8 else 3

let try_issue_mul t ~cycle ~operand ~tainted =
  if t.cfg.unified_mdu then begin
    let p = Option.get t.p_mdu in
    Cpoint.request ~tainted t.reg p ~source:0 ~data:operand;
    if t.mdu_busy_until >= cycle then None
    else begin
      let lat = mul_latency t.cfg in
      t.mdu_busy_until <- cycle + lat - 1;
      Cpoint.grant t.reg p ~source:0;
      Some (cycle + lat)
    end
  end
  else if t.mul_issued then None
  else begin
    t.mul_issued <- true;
    Some (cycle + mul_latency t.cfg)
  end

let try_issue_div t ~cycle ~operand ~tainted =
  if t.cfg.unified_mdu then begin
    let p = Option.get t.p_mdu in
    Cpoint.request ~tainted t.reg p ~source:1 ~data:operand;
    if t.mdu_busy_until >= cycle then None
    else begin
      let lat = div_latency t.cfg operand in
      t.mdu_busy_until <- cycle + lat - 1;
      Cpoint.grant t.reg p ~source:1;
      Some (cycle + lat)
    end
  end
  else begin
    Cpoint.request ~tainted t.reg t.p_div
      ~source:(if t.div_busy_until >= cycle then 0 else 1)
      ~data:operand;
    if t.div_busy_until >= cycle then None
    else begin
      let lat = div_latency t.cfg operand in
      t.div_busy_until <- cycle + lat - 1;
      Some (cycle + lat)
    end
  end

let try_issue_mem t ~cycle ~tainted =
  if t.mem_used < t.cfg.mem_units then begin
    Cpoint.request ~tainted t.reg t.p_issue_mem ~source:t.mem_used ~data:(Int64.of_int cycle);
    t.mem_used <- t.mem_used + 1;
    true
  end
  else false

let wb_source = function Wb_alu -> 0 | Wb_mul -> 1 | Wb_div -> 2 | Wb_mem -> 3

let reset t =
  t.alu_used <- 0;
  t.mem_used <- 0;
  t.mul_issued <- false;
  t.div_busy_until <- -1;
  t.mdu_busy_until <- -1;
  t.pending_wb <- []

type save = {
  mutable s_alu_used : int;
  mutable s_mem_used : int;
  mutable s_mul_issued : bool;
  mutable s_div_busy_until : int;
  mutable s_mdu_busy_until : int;
  mutable s_pending_wb : pending_wb list;
}

let make_save () =
  {
    s_alu_used = 0;
    s_mem_used = 0;
    s_mul_issued = false;
    s_div_busy_until = -1;
    s_mdu_busy_until = -1;
    s_pending_wb = [];
  }

let capture t sv =
  sv.s_alu_used <- t.alu_used;
  sv.s_mem_used <- t.mem_used;
  sv.s_mul_issued <- t.mul_issued;
  sv.s_div_busy_until <- t.div_busy_until;
  sv.s_mdu_busy_until <- t.mdu_busy_until;
  (* [pending_wb] holds immutable records; sharing the spine is safe. *)
  sv.s_pending_wb <- t.pending_wb

let restore t sv =
  t.alu_used <- sv.s_alu_used;
  t.mem_used <- sv.s_mem_used;
  t.mul_issued <- sv.s_mul_issued;
  t.div_busy_until <- sv.s_div_busy_until;
  t.mdu_busy_until <- sv.s_mdu_busy_until;
  t.pending_wb <- sv.s_pending_wb

let purge_writeback t ~keep =
  t.pending_wb <- List.filter (fun p -> keep p.id) t.pending_wb

let request_writeback t cls ~id ~cycle ~tainted =
  t.pending_wb <- { id; cls; since = cycle; tainted } :: t.pending_wb

let arbitrate_writeback t ~cycle =
  match t.pending_wb with
  | [] -> []
  | pending ->
      List.iter
        (fun p ->
          Cpoint.request ~tainted:p.tainted t.reg t.p_wb ~source:(wb_source p.cls)
            ~data:(Int64.of_int p.id))
        pending;
      let sorted =
        List.sort
          (fun a b ->
            match compare (wb_source a.cls) (wb_source b.cls) with
            | 0 -> compare a.id b.id
            | c -> c)
          pending
      in
      let rec split n acc = function
        | [] -> (List.rev acc, [])
        | rest when n = 0 -> (List.rev acc, rest)
        | x :: rest -> split (n - 1) (x :: acc) rest
      in
      let granted, losers = split t.cfg.wb_ports [] sorted in
      List.iter (fun p -> Cpoint.grant t.reg t.p_wb ~source:(wb_source p.cls)) granted;
      ignore cycle;
      t.pending_wb <- losers;
      List.map (fun p -> p.id) granted
