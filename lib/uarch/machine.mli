(** A whole machine: one or two cores over a shared L2 / interconnect.

    [run] executes a program per core to completion (or the cycle budget)
    and returns, per core, the commit trace plus the contention-state
    snapshots the fuzzer consumes. In the dual-core scenario of the paper's
    testcase template (Figure 4b), core 0 is the victim (it drives the
    monitoring window) and core 1 the attacker. *)

type core_input = {
  program : Sonar_isa.Program.t;
  secret_range : (int * int) option;
      (** static instruction-index range of the secret-dependent region *)
}

type core_result = {
  commits : Core_model.commit_record list;
  transient_executed : int;
}

type result = {
  cores : core_result array;
  cycles : int;  (** total cycles simulated *)
  snapshots : Cpoint.snapshot list;
  window : (int * int) option;  (** monitoring-window bounds, cycles *)
  point_stats : point_stat list;
  hit_cycle_limit : bool;
}

and point_stat = {
  ps_name : string;
  ps_component : Sonar_ir.Component.t;
  ps_fanout : int;
  ps_max_subs : int;
  ps_single_valid : bool;
  ps_min_pair : int option;
  ps_triggered : (Cpoint.kind * int) list;
  ps_weight : float;  (** netlist contention points contributed *)
  ps_pair_intervals : (int * int) list;
      (** per source pair, the minimum in-window interval *)
  ps_n_sources : int;
}

val default_max_cycles : int

(** Reusable run context: caches the contention-point registry and memory
    hierarchy (the dominant per-run heap allocations — cache line arrays,
    point tables) across {!run} calls, resetting them to cold start at each
    acquisition. A context is {e not} thread-safe: keep one per domain (the
    executor keeps one per worker via the {!Sonar.Domain_pool} worker-local
    storage API). Results are bit-identical with and without a context —
    asserted by the tests — so reuse is purely a throughput optimisation:
    it is what keeps the parallel execute phase from serialising on
    stop-the-world minor collections. *)
module Ctx : sig
  type t

  val create : Config.t -> t
  (** Cheap; the underlying registry/hierarchy is allocated lazily on the
      first {!run} per core count. *)

  val config : t -> Config.t
end

val run :
  ?max_cycles:int -> ?ctx:Ctx.t -> Config.t -> core_input array -> result
(** @raise Invalid_argument on 0 or more than 2 cores, or when [ctx] was
    created for a different configuration. *)

val run_single :
  ?max_cycles:int ->
  ?secret_range:(int * int) option ->
  Config.t ->
  Sonar_isa.Program.t ->
  result
