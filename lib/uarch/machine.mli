(** A whole machine: one or two cores over a shared L2 / interconnect.

    [run] executes a program per core to completion (or the cycle budget)
    and returns, per core, the commit trace plus the contention-state
    snapshots the fuzzer consumes. In the dual-core scenario of the paper's
    testcase template (Figure 4b), core 0 is the victim (it drives the
    monitoring window) and core 1 the attacker. *)

type core_input = {
  program : Sonar_isa.Program.t;
  secret_range : (int * int) option;
      (** static instruction-index range of the secret-dependent region *)
}

type core_result = {
  commits : Core_model.commit_record list;
  transient_executed : int;
}

type result = {
  cores : core_result array;
  cycles : int;  (** total cycles simulated *)
  snapshots : Cpoint.snapshot list;
  window : (int * int) option;  (** monitoring-window bounds, cycles *)
  point_stats : point_stat list;
  hit_cycle_limit : bool;
}

and point_stat = {
  ps_name : string;
  ps_component : Sonar_ir.Component.t;
  ps_fanout : int;
  ps_max_subs : int;
  ps_single_valid : bool;
  ps_min_pair : int option;
  ps_triggered : (Cpoint.kind * int) list;
  ps_weight : float;  (** netlist contention points contributed *)
  ps_pair_intervals : (int * int) list;
      (** per source pair, the minimum in-window interval *)
  ps_n_sources : int;
}

type dual_stats = {
  fork_cycle : int option;
      (** cycle at which the checkpoint was captured, when one was *)
  cycles_saved : int;
      (** simulated cycles run 1 skipped by resuming from the checkpoint
          (0 when checkpointing was off, not viable, or never captured) *)
}

val default_max_cycles : int

(** Reusable run context: caches the contention-point registry and memory
    hierarchy (the dominant per-run heap allocations — cache line arrays,
    point tables) across {!run} calls, resetting them to cold start at each
    acquisition. A context is {e not} thread-safe: keep one per domain (the
    executor keeps one per worker via the {!Sonar.Domain_pool} worker-local
    storage API). Results are bit-identical with and without a context —
    asserted by the tests — so reuse is purely a throughput optimisation:
    it is what keeps the parallel execute phase from serialising on
    stop-the-world minor collections. *)
module Ctx : sig
  type t

  val create : Config.t -> t
  (** Cheap; the underlying registry/hierarchy is allocated lazily on the
      first {!run} per core count. *)

  val config : t -> Config.t

  val fingerprint : t -> int
  (** {!Config.fingerprint} of the context's configuration, precomputed at
      {!create} — the cheap cache-lookup key the executor's scratch-context
      table compares instead of structural config equality. *)
end

val run :
  ?max_cycles:int -> ?ctx:Ctx.t -> Config.t -> core_input array -> result
(** @raise Invalid_argument on 0 or more than 2 cores, or when [ctx] was
    created for a different configuration. *)

val run_dual :
  ?max_cycles:int ->
  ?ctx:Ctx.t ->
  ?checkpoint:bool ->
  Config.t ->
  core_input array ->
  core_input array ->
  result * result * dual_stats
(** Run the same machine under two secrets. With [checkpoint] (default
    [true]), run 0 executes in full while the machine state is snapshotted
    at the top of the first cycle in which a secret-divergent instruction
    could reach a pipeline stage that reads the divergence: fetch, for
    instructions whose {e fetch-visible} effects (pc, opcode, branch
    direction, fault) differ; issue, for instructions differing only in
    {e backend-read} fields (memory addresses, mul/div latency operands),
    which may be fetched and dispatched freely — no stage before issue
    reads them — and are snapshotted only once their source operands could
    be ready, riding out the dependency chains in front of them.
    Divergence confined to fields the timing model never reads (loaded or
    stored data, ALU results) forces no snapshot at all: such runs
    capture at the final cycle and run 1 is skipped entirely. Run 1
    otherwise restores the snapshot, re-points divergent fetch-buffer,
    ROB, store-buffer and commit-log entries at its own golden trace, and
    resumes from the capture cycle, skipping the shared prefix. Golden
    simulation of a core whose program is identical across secrets (the
    attacker core) runs once and is shared. Both results are bit-identical
    to two independent {!run} calls — the determinism invariant the
    equivalence tests assert — so checkpointing is purely a
    simulated-cycle optimisation.
    @raise Invalid_argument on 0 or more than 2 cores, mismatched core
    counts, or a [ctx] for a different configuration. *)

val run_single :
  ?max_cycles:int ->
  ?secret_range:(int * int) option ->
  Config.t ->
  Sonar_isa.Program.t ->
  result
