type kind = Volatile | Persistent

type t = {
  name : string;
  component : Sonar_ir.Component.t;
  fanout : int;
  max_subs : int;
  single_valid : bool;
  sources : string array;
  last_valid : int array;
  hits : int array;
  mutable min_pair : int option;
  mutable min_self : int option;
  mutable active_sources : int;  (* sources with hits > 0, kept incrementally *)
  mutable single_valid_dominated : bool;
  triggered : (kind * int, unit) Hashtbl.t;
  pair_min : (int, int) Hashtbl.t;  (* per risky source pair: min interval *)
  last_tainted : bool array;  (* was each source's latest request tainted *)
  mutable digest : int;
  mutable event_count : int;
}

type registry = {
  config : Config.t;
  table : (string, t) Hashtbl.t;
  mutable order : t list;  (* reverse registration order *)
  mutable cycle : int;
  mutable open_ : bool;
  mutable first_open : int option;
  mutable last_open : int option;
}

let create config =
  {
    config;
    table = Hashtbl.create 64;
    order = [];
    cycle = 0;
    open_ = false;
    first_open = None;
    last_open = None;
  }

let reset_point p =
  Array.fill p.last_valid 0 (Array.length p.last_valid) (-1);
  Array.fill p.hits 0 (Array.length p.hits) 0;
  Array.fill p.last_tainted 0 (Array.length p.last_tainted) false;
  p.min_pair <- None;
  p.min_self <- None;
  p.active_sources <- 0;
  p.single_valid_dominated <- true;
  Hashtbl.reset p.triggered;
  Hashtbl.reset p.pair_min;
  p.digest <- Hashtbl.hash p.name;
  p.event_count <- 0

let reset reg =
  (* Registered points survive a reset (registration is structural: it
     depends only on the config and core count, never on the program), but
     every per-run observation is rewound to the state [create] + fresh
     [point] calls would produce — reuse must be bit-identical to a fresh
     registry. *)
  List.iter reset_point reg.order;
  reg.cycle <- 0;
  reg.open_ <- false;
  reg.first_open <- None;
  reg.last_open <- None

(* Sub-point granularity: each (source pair, data bucket) combination is a
   distinct netlist sub-point. Wide arbiters route many data fields through
   many MUX bits, so distinct data classes exercise distinct netlist MUXes;
   this is what makes contention coverage keep growing with testcase
   diversity (Figure 8) instead of saturating after a handful of runs. *)
let data_buckets = 64

let bucket_of data =
  Int64.to_int (Int64.unsigned_rem (Int64.mul data 0x9E3779B9L) (Int64.of_int data_buckets))

let point reg ~name ~component ~sources ?(persistent_subs = 0)
    ?(single_valid = false) () =
  match Hashtbl.find_opt reg.table name with
  | Some p -> p
  | None ->
      let n = List.length sources in
      let volatile_pairs = max 1 (n * (n - 1) / 2) in
      let p =
        {
          name;
          component;
          fanout = Config.fanout_of reg.config name;
          max_subs = (volatile_pairs * data_buckets) + persistent_subs;
          single_valid = single_valid || n = 1;
          sources = Array.of_list sources;
          last_valid = Array.make n (-1);
          hits = Array.make n 0;
          min_pair = None;
          min_self = None;
          active_sources = 0;
          single_valid_dominated = true;
          triggered = Hashtbl.create 8;
          pair_min = Hashtbl.create 8;
          last_tainted = Array.make n false;
          digest = Hashtbl.hash name;
          event_count = 0;
        }
      in
      Hashtbl.replace reg.table name p;
      reg.order <- p :: reg.order;
      p

let update_min current candidate =
  match current with Some m when m <= candidate -> current | _ -> Some candidate

let mix digest v = (digest * 0x01000193) lxor (v land 0xFFFFFF)

let pair_sub n i j =
  let i, j = if i < j then (i, j) else (j, i) in
  (* Index of pair (i, j) with i < j in the triangular enumeration. *)
  (i * (2 * n - i - 1) / 2) + (j - i - 1)

let request reg p ~tainted ~source ~data =
  let n = Array.length p.sources in
  if source < 0 || source >= n then invalid_arg "Cpoint.request: bad source";
  let cycle = reg.cycle in
  if reg.open_ then begin
    if p.hits.(source) = 0 then p.active_sources <- p.active_sources + 1;
    p.hits.(source) <- p.hits.(source) + 1;
    p.event_count <- p.event_count + 1;
    p.digest <- mix (mix p.digest (source + (cycle land 0xFF))) (Int64.to_int data land 0xFFFF);
    (* Single-valid dominance: demoted once a second source shows activity.
       [active_sources] is maintained incrementally above, so this is O(1)
       per request instead of an O(sources) rescan. *)
    if p.single_valid_dominated && p.active_sources > 1 then
      p.single_valid_dominated <- false;
    (* A lone-source point triggers on its first risky in-window request:
       its valid signal is the request itself and is trivially asserted. *)
    if n = 1 && tainted then
      Hashtbl.replace p.triggered (Volatile, bucket_of data) ();
    (* Same-source consecutive interval. *)
    if p.last_valid.(source) >= 0 then
      p.min_self <- update_min p.min_self (cycle - p.last_valid.(source));
    (* Pairwise intervals against other sources' latest firing. Only risky
       pairs — those with a secret-dependent member — are recorded: they
       are the ones that can leak, and the only ones used for guidance
       (§6.1: secret-dependent contention). *)
    for other = 0 to n - 1 do
      if other <> source && p.last_valid.(other) >= 0 then begin
        let interval = cycle - p.last_valid.(other) in
        if tainted || p.last_tainted.(other) then begin
          p.min_pair <- update_min p.min_pair interval;
          let pair = pair_sub n source other in
          (match Hashtbl.find_opt p.pair_min pair with
          | Some m when m <= interval -> ()
          | Some _ | None -> Hashtbl.replace p.pair_min pair interval);
          if interval = 0 then
            Hashtbl.replace p.triggered
              (Volatile, (pair * data_buckets) + bucket_of data)
              ()
        end
      end
    done
  end;
  p.last_valid.(source) <- cycle;
  p.last_tainted.(source) <- tainted

let grant reg p ~source =
  if reg.open_ then p.digest <- mix p.digest (0x5A + source)

let persistent reg p ~tainted ~source ~sub ~data =
  if reg.open_ then begin
    p.event_count <- p.event_count + 1;
    p.digest <- mix (mix p.digest (0xBEEF + source)) (Int64.to_int data land 0xFFFF);
    if tainted then begin
      let n = Array.length p.sources in
      let volatile_slots = max 1 (n * (n - 1) / 2) * data_buckets in
      let persistent_slots = max 1 (p.max_subs - volatile_slots) in
      Hashtbl.replace p.triggered
        (Persistent, volatile_slots + (sub mod persistent_slots))
        ()
    end
  end

let set_cycle reg c =
  reg.cycle <- c;
  if reg.open_ then reg.last_open <- Some c

let open_window reg =
  reg.open_ <- true;
  if reg.first_open = None then reg.first_open <- Some reg.cycle;
  reg.last_open <- Some reg.cycle

let close_window reg = reg.open_ <- false
let window_open reg = reg.open_

let window_bounds reg =
  match (reg.first_open, reg.last_open) with
  | Some a, Some b -> Some (a, b)
  | _ -> None

let points reg = List.rev reg.order

let triggered_subs p =
  Hashtbl.fold (fun k () acc -> k :: acc) p.triggered [] |> List.sort compare

let pair_intervals p =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) p.pair_min [] |> List.sort compare

(* Invert the triangular pair enumeration of [pair_sub]. *)
let pair_name p pair =
  let n = Array.length p.sources in
  let rec find i =
    if i >= n - 1 then (0, 1)
    else begin
      let row = (n - 1 - i) in
      let start = pair_sub n i (i + 1) in
      if pair < start + row then (i, i + 1 + (pair - start)) else find (i + 1)
    end
  in
  let i, j = find 0 in
  if i < n && j < n then Printf.sprintf "%s-%s" p.sources.(i) p.sources.(j)
  else string_of_int pair

let triggered_weight p =
  float_of_int p.fanout *. float_of_int (Hashtbl.length p.triggered)
  /. float_of_int p.max_subs

(* Checkpoint support: a registry-level save holds one preallocated buffer
   per registered point (in [points] order — registration is structural,
   so the order is stable for a given config + core count) plus the
   window/cycle state.  Hashtables are captured as association lists and
   replayed with [Hashtbl.replace]; all readers use [find_opt] /
   [length] / [fold]+sort, so insertion order never shows through. *)

type point_save = {
  ps_last_valid : int array;
  ps_hits : int array;
  ps_last_tainted : bool array;
  mutable ps_min_pair : int option;
  mutable ps_min_self : int option;
  mutable ps_active_sources : int;
  mutable ps_single_valid_dominated : bool;
  mutable ps_triggered : (kind * int) list;
  mutable ps_pair_min : (int * int) list;
  mutable ps_digest : int;
  mutable ps_event_count : int;
}

type save = {
  sv_points : (t * point_save) array;
  mutable sv_cycle : int;
  mutable sv_open : bool;
  mutable sv_first_open : int option;
  mutable sv_last_open : int option;
}

let make_save reg =
  {
    sv_points =
      Array.of_list
        (List.map
           (fun p ->
             let n = Array.length p.sources in
             ( p,
               {
                 ps_last_valid = Array.make n (-1);
                 ps_hits = Array.make n 0;
                 ps_last_tainted = Array.make n false;
                 ps_min_pair = None;
                 ps_min_self = None;
                 ps_active_sources = 0;
                 ps_single_valid_dominated = true;
                 ps_triggered = [];
                 ps_pair_min = [];
                 ps_digest = 0;
                 ps_event_count = 0;
               } ))
           (points reg));
    sv_cycle = 0;
    sv_open = false;
    sv_first_open = None;
    sv_last_open = None;
  }

let capture reg sv =
  Array.iter
    (fun (p, ps) ->
      let n = Array.length p.sources in
      Array.blit p.last_valid 0 ps.ps_last_valid 0 n;
      Array.blit p.hits 0 ps.ps_hits 0 n;
      Array.blit p.last_tainted 0 ps.ps_last_tainted 0 n;
      ps.ps_min_pair <- p.min_pair;
      ps.ps_min_self <- p.min_self;
      ps.ps_active_sources <- p.active_sources;
      ps.ps_single_valid_dominated <- p.single_valid_dominated;
      ps.ps_triggered <- Hashtbl.fold (fun k () acc -> k :: acc) p.triggered [];
      ps.ps_pair_min <- Hashtbl.fold (fun k v acc -> (k, v) :: acc) p.pair_min [];
      ps.ps_digest <- p.digest;
      ps.ps_event_count <- p.event_count)
    sv.sv_points;
  sv.sv_cycle <- reg.cycle;
  sv.sv_open <- reg.open_;
  sv.sv_first_open <- reg.first_open;
  sv.sv_last_open <- reg.last_open

let restore reg sv =
  Array.iter
    (fun (p, ps) ->
      let n = Array.length p.sources in
      Array.blit ps.ps_last_valid 0 p.last_valid 0 n;
      Array.blit ps.ps_hits 0 p.hits 0 n;
      Array.blit ps.ps_last_tainted 0 p.last_tainted 0 n;
      p.min_pair <- ps.ps_min_pair;
      p.min_self <- ps.ps_min_self;
      p.active_sources <- ps.ps_active_sources;
      p.single_valid_dominated <- ps.ps_single_valid_dominated;
      Hashtbl.reset p.triggered;
      List.iter (fun k -> Hashtbl.replace p.triggered k ()) ps.ps_triggered;
      Hashtbl.reset p.pair_min;
      List.iter (fun (k, v) -> Hashtbl.replace p.pair_min k v) ps.ps_pair_min;
      p.digest <- ps.ps_digest;
      p.event_count <- ps.ps_event_count)
    sv.sv_points;
  reg.cycle <- sv.sv_cycle;
  reg.open_ <- sv.sv_open;
  reg.first_open <- sv.sv_first_open;
  reg.last_open <- sv.sv_last_open

type snapshot = {
  point_name : string;
  s_hits : int array;
  s_min_pair : int option;
  s_min_self : int option;
  s_triggered : (kind * int) list;
  s_digest : int;
}

let snapshot p =
  {
    point_name = p.name;
    s_hits = Array.copy p.hits;
    s_min_pair = p.min_pair;
    s_min_self = p.min_self;
    s_triggered = triggered_subs p;
    s_digest = p.digest;
  }

let snapshots reg = List.map snapshot (points reg)

let opt_str = function None -> "-" | Some v -> string_of_int v

let diff_snapshots a b =
  let tb = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace tb s.point_name s) b;
  List.filter_map
    (fun sa ->
      match Hashtbl.find_opt tb sa.point_name with
      | None -> Some (sa.point_name, "present only under secret=0")
      | Some sb ->
          let diffs = ref [] in
          if sa.s_hits <> sb.s_hits then
            diffs :=
              Printf.sprintf "request counts %s vs %s"
                (String.concat "," (Array.to_list (Array.map string_of_int sa.s_hits)))
                (String.concat "," (Array.to_list (Array.map string_of_int sb.s_hits)))
              :: !diffs;
          if sa.s_min_pair <> sb.s_min_pair then
            diffs :=
              Printf.sprintf "min reqsIntvl %s vs %s" (opt_str sa.s_min_pair)
                (opt_str sb.s_min_pair)
              :: !diffs;
          if sa.s_triggered <> sb.s_triggered then
            diffs :=
              Printf.sprintf "triggered sub-points %d vs %d"
                (List.length sa.s_triggered) (List.length sb.s_triggered)
              :: !diffs;
          if !diffs = [] && sa.s_digest <> sb.s_digest then
            diffs := [ "event stream differs" ];
          if !diffs = [] then None
          else Some (sa.point_name, String.concat "; " (List.rev !diffs)))
    a
