(** Cycle-accurate out-of-order core timing model.

    Trace-driven: the golden model supplies the dynamic instruction stream
    (architectural trace plus, for every faulting instruction, the
    transient sequential continuation with forwarded data). The pipeline
    model fetches through the ICache, dispatches into a ROB, issues
    out-of-order under resource constraints (ALUs, multiplier, divider,
    memory unit, writeback ports), accesses the shared memory system, and
    commits in order, recording each architectural instruction's commit
    cycle — the raw signal behind the CCD metric (§7.1).

    Exception policy follows the configuration: with {!Config.Lazy_at_commit}
    a faulting instruction squashes younger (transient) work only when it
    reaches the commit head; with {!Config.Early_at_execute} the squash
    happens as soon as it issues, keeping the transient window shut. *)

type commit_record = {
  c_eff : Sonar_isa.Golden.effect;
  c_cycle : int;  (** commit cycle *)
  c_dispatch : int;  (** cycle the instruction entered the ROB *)
}

type t

val create :
  Config.t ->
  Cpoint.registry ->
  Memsys.t ->
  core_id:int ->
  outcome:Sonar_isa.Golden.outcome ->
  secret_range:(int * int) option ->
  drives_window:bool ->
  t
(** [secret_range]: static instruction-index range of the secret-dependent
    region; the core opens the registry's monitoring window when the first
    such instruction dispatches and closes it when the last commits
    (when [drives_window]). With no range the window opens at cycle 0. *)

val prepare :
  t ->
  outcome:Sonar_isa.Golden.outcome ->
  secret_range:(int * int) option ->
  unit
(** Re-arm an existing core for a new run with a new golden trace: every
    dynamic field rewinds to what {!create} initialises (same core_id,
    same [drives_window] role, same registered contention points). Must be
    paired with {!Cpoint.reset} / {!Memsys.reset} on the shared state. A
    prepared core behaves bit-identically to a fresh {!create}. *)

val step : t -> cycle:int -> unit
(** Advance all pipeline stages by one cycle. *)

val fetch_bound : t -> cycle:int -> int
(** Exclusive upper bound on the architectural trace positions fetch can
    consume during the coming cycle, evaluated at the top of the cycle.
    While every core's bound stays ≤ its dual-run {e fetch-visible} fork
    position, the coming cycle's front end is secret-independent — one half
    of the checkpoint capture test. *)

val rob_issue_reaches : t -> fork:int -> cycle:int -> bool
(** Whether the ROB holds a uop at or past trace position [fork] whose
    divergent backend-read fields could be read this cycle, evaluated at
    the top of the cycle — the other half of the capture test, with
    [fork] the first {!exec_visible_equal}-divergent position. A
    divergent store trips the test as soon as it is in the ROB (younger
    loads search store addresses); a divergent load or mul/div only once
    its operands could be ready — its fields are read at its own issue —
    which rides out the dependency chain delaying it. *)

val exec_visible_equal :
  Config.t -> Sonar_isa.Golden.effect -> Sonar_isa.Golden.effect -> bool
(** Whether two effects agree on every field the backend reads once a uop
    has entered the ROB: the memory address, the writeback magnitude for
    divides (the divider's data-dependent latency operand), and — only
    under a unified MDU, whose issue path records the operand as
    contention-point data — the magnitude for multiplies (BOOM's
    pipelined IMUL has constant latency and never touches the operand).
    Effects differing only in loaded / stored data or ALU results are
    invisible to the timing model — such uops may issue, complete and
    commit before a dual-run checkpoint is captured; {!restore} re-points
    their records (fetch buffer, ROB, store buffer, commit log) at the
    new run's trace. Assumes equal instructions (below the fetch-visible
    fork). *)

type save
(** Preallocated checkpoint buffer for one core's dynamic pipeline state
    (fetch state, fetch buffer, ROB, store buffer, taint, predictor,
    execution units, commit log). The golden trace itself is not saved —
    {!prepare} supplies the new run's trace before {!restore}. *)

val make_save : unit -> save
val capture : t -> save -> unit

val restore : ?fork:int -> t -> save -> unit
(** Overwrite the dynamic state with a captured checkpoint. When [fork]
    is given, fetch-buffer and ROB uops at trace positions ≥ [fork] are
    re-pointed at the {e current} golden trace (call {!prepare} with the
    new outcome first): such uops may carry the captured run's divergent
    values, which are unread until the uop's first post-dispatch issue
    opportunity — after the capture, by {!rob_reaches}. Default
    [max_int]: no re-pointing. *)

val finished : t -> bool
(** Trace fully committed and all buffers drained. *)

val commits : t -> commit_record list
(** Committed architectural instructions in commit order. *)

val transient_executed : t -> int
(** Transient micro-ops that issued before being squashed (the size of the
    Meltdown window actually exploited). *)

val cycles_run : t -> int
