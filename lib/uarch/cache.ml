type fill_info = { filler_seq : int; fill_cycle : int; filler_tainted : bool }

type line = {
  mutable tag : int64;
  mutable valid : bool;
  mutable dirty : bool;
  mutable lru : int;
  mutable info : fill_info;
}

type victim = { victim_addr : int64; was_dirty : bool }

type t = {
  sets : line array array;
  line_bytes : int;
  n_sets : int;
  ways : int;
  index_bits : int;
  offset_bits : int;
  mutable tick : int;
  (* Per set: last few evicted tags with the evicting fill's seq (S12). *)
  evicted : (int * int64, int * bool) Hashtbl.t;
}

let log2 n =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v / 2) in
  go 0 n

let create (cfg : Config.cache_cfg) =
  let total = cfg.size_kb * 1024 in
  let n_sets = max 1 (total / (cfg.ways * cfg.line_bytes)) in
  {
    sets =
      Array.init n_sets (fun _ ->
          Array.init cfg.ways (fun _ ->
              {
                tag = 0L;
                valid = false;
                dirty = false;
                lru = 0;
                info = { filler_seq = -1; fill_cycle = -1; filler_tainted = false };
              }));
    line_bytes = cfg.line_bytes;
    n_sets;
    ways = cfg.ways;
    index_bits = log2 n_sets;
    offset_bits = log2 cfg.line_bytes;
    tick = 0;
    evicted = Hashtbl.create 64;
  }

let n_sets t = t.n_sets

let set_index t addr =
  Int64.to_int
    (Int64.logand
       (Int64.shift_right_logical addr t.offset_bits)
       (Int64.of_int (t.n_sets - 1)))

let tag_of t addr = Int64.shift_right_logical addr (t.offset_bits + t.index_bits)

let line_addr t addr =
  Int64.logand addr (Int64.lognot (Int64.of_int (t.line_bytes - 1)))

let find_line t addr =
  let set = t.sets.(set_index t addr) in
  let tag = tag_of t addr in
  let rec go i =
    if i >= t.ways then None
    else if set.(i).valid && Int64.equal set.(i).tag tag then Some set.(i)
    else go (i + 1)
  in
  go 0

let probe t addr = Option.is_some (find_line t addr)

let lookup t addr =
  match find_line t addr with
  | Some line ->
      t.tick <- t.tick + 1;
      line.lru <- t.tick;
      Some line.info
  | None -> None

let reconstruct_addr t set_idx tag =
  Int64.logor
    (Int64.shift_left tag (t.offset_bits + t.index_bits))
    (Int64.shift_left (Int64.of_int set_idx) t.offset_bits)

let fill t addr ~seq ~cycle ~tainted =
  let set_idx = set_index t addr in
  let set = t.sets.(set_idx) in
  let tag = tag_of t addr in
  (* Reuse an existing line for the same tag, else the LRU way. *)
  let line =
    match find_line t addr with
    | Some l -> l
    | None ->
        let victim = ref set.(0) in
        Array.iter
          (fun l ->
            if not l.valid then victim := l
            else if !victim.valid && l.lru < !victim.lru then victim := l)
          set;
        !victim
  in
  let evicted =
    if line.valid && not (Int64.equal line.tag tag) then begin
      Hashtbl.replace t.evicted (set_idx, line.tag) (seq, tainted);
      Some
        { victim_addr = reconstruct_addr t set_idx line.tag; was_dirty = line.dirty }
    end
    else None
  in
  t.tick <- t.tick + 1;
  line.tag <- tag;
  line.valid <- true;
  line.dirty <- false;
  line.lru <- t.tick;
  line.info <- { filler_seq = seq; fill_cycle = cycle; filler_tainted = tainted };
  evicted

let mark_dirty t addr =
  match find_line t addr with
  | Some line ->
      line.dirty <- true;
      true
  | None -> false

let is_dirty t addr =
  match find_line t addr with Some line -> line.dirty | None -> false

let recently_evicted t addr =
  Hashtbl.find_opt t.evicted (set_index t addr, tag_of t addr)

let reset t =
  (* Restores the cold-start state exactly: stale [tag]/[lru]/[info] on
     invalidated lines are never read before being overwritten by [fill]
     (victim selection among invalid ways ignores them), but [tick] feeds
     every line's LRU stamp, so it must rewind for reuse to be
     bit-identical to a fresh cache. *)
  Array.iter
    (fun set ->
      Array.iter
        (fun l ->
          l.valid <- false;
          l.dirty <- false)
        set)
    t.sets;
  t.tick <- 0;
  Hashtbl.reset t.evicted

(* Checkpoint support: capture the full observable cache state (valid
   lines only — invalid lines carry no readable state, see [reset]) into
   preallocated arrays, and restore it later.  Restore first invalidates
   everything, then reinstalls each saved line in place, so any line
   filled between capture and restore disappears and the LRU clock
   rewinds — restored state is bit-identical to the captured one. *)

type save = {
  mutable n_saved : int;
  s_set : int array;
  s_way : int array;
  s_tag : int64 array;
  s_dirty : bool array;
  s_lru : int array;
  s_info : fill_info array;
  mutable s_tick : int;
  mutable s_evicted : ((int * int64) * (int * bool)) list;
}

let make_save t =
  let n = t.n_sets * t.ways in
  {
    n_saved = 0;
    s_set = Array.make n 0;
    s_way = Array.make n 0;
    s_tag = Array.make n 0L;
    s_dirty = Array.make n false;
    s_lru = Array.make n 0;
    s_info =
      Array.make n { filler_seq = -1; fill_cycle = -1; filler_tainted = false };
    s_tick = 0;
    s_evicted = [];
  }

let capture t sv =
  let k = ref 0 in
  for set_idx = 0 to t.n_sets - 1 do
    let set = t.sets.(set_idx) in
    for way = 0 to t.ways - 1 do
      let l = set.(way) in
      if l.valid then begin
        sv.s_set.(!k) <- set_idx;
        sv.s_way.(!k) <- way;
        sv.s_tag.(!k) <- l.tag;
        sv.s_dirty.(!k) <- l.dirty;
        sv.s_lru.(!k) <- l.lru;
        sv.s_info.(!k) <- l.info;
        incr k
      end
    done
  done;
  sv.n_saved <- !k;
  sv.s_tick <- t.tick;
  sv.s_evicted <- Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.evicted []

let restore t sv =
  Array.iter (fun set -> Array.iter (fun l -> l.valid <- false) set) t.sets;
  for i = 0 to sv.n_saved - 1 do
    let l = t.sets.(sv.s_set.(i)).(sv.s_way.(i)) in
    l.tag <- sv.s_tag.(i);
    l.valid <- true;
    l.dirty <- sv.s_dirty.(i);
    l.lru <- sv.s_lru.(i);
    l.info <- sv.s_info.(i)
  done;
  t.tick <- sv.s_tick;
  Hashtbl.reset t.evicted;
  List.iter (fun (k, v) -> Hashtbl.replace t.evicted k v) sv.s_evicted
