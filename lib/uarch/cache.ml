type fill_info = { filler_seq : int; fill_cycle : int; filler_tainted : bool }

type line = {
  mutable tag : int64;
  mutable valid : bool;
  mutable dirty : bool;
  mutable lru : int;
  mutable info : fill_info;
}

type victim = { victim_addr : int64; was_dirty : bool }

type t = {
  sets : line array array;
  line_bytes : int;
  n_sets : int;
  ways : int;
  index_bits : int;
  offset_bits : int;
  mutable tick : int;
  (* Per set: last few evicted tags with the evicting fill's seq (S12). *)
  evicted : (int * int64, int * bool) Hashtbl.t;
}

let log2 n =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v / 2) in
  go 0 n

let create (cfg : Config.cache_cfg) =
  let total = cfg.size_kb * 1024 in
  let n_sets = max 1 (total / (cfg.ways * cfg.line_bytes)) in
  {
    sets =
      Array.init n_sets (fun _ ->
          Array.init cfg.ways (fun _ ->
              {
                tag = 0L;
                valid = false;
                dirty = false;
                lru = 0;
                info = { filler_seq = -1; fill_cycle = -1; filler_tainted = false };
              }));
    line_bytes = cfg.line_bytes;
    n_sets;
    ways = cfg.ways;
    index_bits = log2 n_sets;
    offset_bits = log2 cfg.line_bytes;
    tick = 0;
    evicted = Hashtbl.create 64;
  }

let n_sets t = t.n_sets

let set_index t addr =
  Int64.to_int
    (Int64.logand
       (Int64.shift_right_logical addr t.offset_bits)
       (Int64.of_int (t.n_sets - 1)))

let tag_of t addr = Int64.shift_right_logical addr (t.offset_bits + t.index_bits)

let line_addr t addr =
  Int64.logand addr (Int64.lognot (Int64.of_int (t.line_bytes - 1)))

let find_line t addr =
  let set = t.sets.(set_index t addr) in
  let tag = tag_of t addr in
  let rec go i =
    if i >= t.ways then None
    else if set.(i).valid && Int64.equal set.(i).tag tag then Some set.(i)
    else go (i + 1)
  in
  go 0

let probe t addr = Option.is_some (find_line t addr)

let lookup t addr =
  match find_line t addr with
  | Some line ->
      t.tick <- t.tick + 1;
      line.lru <- t.tick;
      Some line.info
  | None -> None

let reconstruct_addr t set_idx tag =
  Int64.logor
    (Int64.shift_left tag (t.offset_bits + t.index_bits))
    (Int64.shift_left (Int64.of_int set_idx) t.offset_bits)

let fill t addr ~seq ~cycle ~tainted =
  let set_idx = set_index t addr in
  let set = t.sets.(set_idx) in
  let tag = tag_of t addr in
  (* Reuse an existing line for the same tag, else the LRU way. *)
  let line =
    match find_line t addr with
    | Some l -> l
    | None ->
        let victim = ref set.(0) in
        Array.iter
          (fun l ->
            if not l.valid then victim := l
            else if !victim.valid && l.lru < !victim.lru then victim := l)
          set;
        !victim
  in
  let evicted =
    if line.valid && not (Int64.equal line.tag tag) then begin
      Hashtbl.replace t.evicted (set_idx, line.tag) (seq, tainted);
      Some
        { victim_addr = reconstruct_addr t set_idx line.tag; was_dirty = line.dirty }
    end
    else None
  in
  t.tick <- t.tick + 1;
  line.tag <- tag;
  line.valid <- true;
  line.dirty <- false;
  line.lru <- t.tick;
  line.info <- { filler_seq = seq; fill_cycle = cycle; filler_tainted = tainted };
  evicted

let mark_dirty t addr =
  match find_line t addr with
  | Some line ->
      line.dirty <- true;
      true
  | None -> false

let is_dirty t addr =
  match find_line t addr with Some line -> line.dirty | None -> false

let recently_evicted t addr =
  Hashtbl.find_opt t.evicted (set_index t addr, tag_of t addr)

let reset t =
  (* Restores the cold-start state exactly: stale [tag]/[lru]/[info] on
     invalidated lines are never read before being overwritten by [fill]
     (victim selection among invalid ways ignores them), but [tick] feeds
     every line's LRU stamp, so it must rewind for reuse to be
     bit-identical to a fresh cache. *)
  Array.iter
    (fun set ->
      Array.iter
        (fun l ->
          l.valid <- false;
          l.dirty <- false)
        set)
    t.sets;
  t.tick <- 0;
  Hashtbl.reset t.evicted
