(** The shared memory hierarchy: per-core L1 I/D caches, MSHRs, line
    buffers, a shared L2, and the TileLink-style D-channel that carries
    refill data (8 beats per cache-line read) and writebacks (1 beat).

    This is where contention channels S1–S7 and S10–S14 live:

    - D-channel occupancy: a granted read holds the channel 8 cycles,
      blocking other ready responses (S1–S4). Grant priority is
      ICache read > DCache read > writeback, which makes a younger fetch
      block an older data response.
    - MSHR allocation: a miss whose set index matches an in-flight MSHR but
      whose tag differs is refused until that MSHR retires — the paper's
      "false sharing path blocking" (S5).
    - Read line buffer: when several loads wait on one refill, the youngest
      is served first and others slip a cycle (S6). Dirty-victim
      writebacks contend for the single write line buffer (S7).
    - DCache persistent effects: hit-on-younger-fill (S11), miss-on-
      recently-evicted (S12), dirty-marking by store-conditionals (S10).
    - ICache port: a refill write blocks the fetch read that cycle (S14,
      modelled on every configuration but exposed on NutShell's
      single-ported ICache). *)

type t

type access_result =
  | Ready of int  (** data/fill available at this cycle *)
  | Waiting  (** refill in flight; poll the matching [*_ready] function *)
  | Blocked of string  (** resource refusal (MSHR conflict/full, port); retry *)

val create : Config.t -> Cpoint.registry -> cores:int -> t

val reset : t -> unit
(** Rewind caches, MSHRs, in-flight transfers, waiter tables and port
    busy-state to cold start without reallocating anything. Must be paired
    with {!Cpoint.reset} on the owning registry; together they make a
    reused hierarchy bit-identical in behavior to a fresh {!create} — the
    contract behind {!Machine.Ctx} run-context reuse. *)

type save
(** Preallocated checkpoint buffer for one hierarchy (caches, MSHRs,
    in-flight transfers, waiter/ready tables, port busy-state). *)

val make_save : t -> save
val capture : t -> save -> unit
val restore : t -> save -> unit
(** [restore t sv] makes the hierarchy behave bit-identically to the
    state [capture t sv] saw. Pair with {!Cpoint.restore} on the owning
    registry. *)

val ifetch :
  t -> core:int -> addr:int64 -> cycle:int -> tainted:bool -> access_result
(** [tainted] marks accesses on behalf of secret-dependent instructions;
    the flag rides every derived request (refill, channel transfer, fill,
    victim writeback) so the contention registry can tell risky contention
    apart (§6.1). *)

val ifetch_ready : t -> core:int -> addr:int64 -> int option
(** Cycle the fetch line became available, once its refill completed. *)

val dload :
  t ->
  core:int -> seq:int -> rob:int -> addr:int64 -> cycle:int -> tainted:bool ->
  access_result

val load_ready : t -> core:int -> rob:int -> int option

val dstore :
  t ->
  core:int -> seq:int -> rob:int -> addr:int64 -> is_sc:bool -> cycle:int ->
  tainted:bool ->
  access_result
(** Store-buffer drain into the DCache. Store-conditionals mark the line
    dirty regardless of their architectural success (S10). *)

val store_ready : t -> core:int -> rob:int -> int option

val tick : t -> cycle:int -> unit
(** Advance channel arbitration, transfers, refill completions. Call once
    per machine cycle after the cores have issued their accesses. *)

val dcache_probe : t -> core:int -> addr:int64 -> bool
(** Hit test without side effects (used by tests and examples). *)

val busy : t -> bool
(** Any transfer still in flight (used for drain loops at end of run). *)
