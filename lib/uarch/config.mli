(** Processor configurations (paper Table 1).

    Two presets model the evaluated DUTs: {!boom} (BOOM-like: wide fetch,
    large ROB, separate pipelined IMUL and unpipelined DIV units, MSHRs,
    TileLink interconnect, lazy exception handling) and {!nutshell}
    (NutShell-like: narrow, small ROB, unified non-pipelined MDU, no MSHRs,
    early exception detection). *)

type exception_policy =
  | Lazy_at_commit
      (** faults raised when the instruction reaches the commit head (BOOM) —
          a wide transient window for Meltdown-style leakage *)
  | Early_at_execute
      (** faults squash the pipeline as soon as the instruction executes
          (NutShell) — transient window barely opens (§8.5: accuracy <2%) *)

type cache_cfg = {
  size_kb : int;
  ways : int;
  line_bytes : int;
  hit_latency : int;
}

type t = {
  name : string;
  isa : string;
  privilege : string;
  pipeline_stages : int;
  fetch_width : int;
  fetch_buffer : int;
  decode_width : int;
  commit_width : int;
  rob_entries : int;
  int_phys_regs : int;
  fp_phys_regs : int option;
  int_alus : int;
  mem_units : int;
  fp_units : int option;
  ldq_entries : int option;
  stq_entries : int;
  unified_mdu : bool;  (** NutShell: one non-pipelined unit for MUL and DIV *)
  wb_ports : int;  (** shared execution-unit response ports *)
  icache : cache_cfg;
  dcache : cache_cfg;
  l2 : cache_cfg;
  mshrs : int;  (** 0 = misses handled one at a time, blocking *)
  mem_latency : int;  (** cycles from L2 miss to data *)
  l2_latency : int;
  branch_predictor : string;
  bus_protocol : string;
  exception_policy : exception_policy;
  mispredict_penalty : int;
  (* Netlist fanout: how many netlist-level MUX contention points each
     runtime arbitration site corresponds to (see DESIGN.md §1). *)
  fanout : (string * int) list;
}

val boom : t
val nutshell : t
val by_name : string -> t option
val fanout_of : t -> string -> int
(** Fanout of a runtime contention point (1 when unlisted). *)

val pp : Format.formatter -> t -> unit
(** Render the Table 1 column for this configuration. *)

val fingerprint : t -> int
(** Structural hash of the whole configuration. Two configs with equal
    fingerprints are treated as interchangeable by scratch-context caches
    ({!Executor}); configs are small immutable records, so the hash covers
    every field. *)
