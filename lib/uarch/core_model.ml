open Sonar_isa

type commit_record = {
  c_eff : Golden.effect;
  c_cycle : int;
  c_dispatch : int;
}

type uop_state = Dispatched | Issued | Wait_mem | Exec_done | Done

type uop = {
  eff : Golden.effect;
  trace_pos : int;  (* -1 for transient micro-ops *)
  transient : bool;
  secret_dep : bool;
  id : int;
  mutable state : uop_state;
  mutable complete_at : int;
  mutable dispatch_cycle : int;
  mutable mispredicted : bool;
  mutable resolved_target : int64;  (* actual target, for predictor training *)
  mutable tainted : bool;
      (* secret-dependent, directly (static region / transient) or through
         a register data dependency resolved at dispatch *)
}

type fetch_source = Arch | Trans of Golden.effect array * int

type stbuf_state = Drain_new | Drain_waiting

type stbuf_entry = {
  sb_uop : uop;
  mutable sb_state : stbuf_state;
}

type t = {
  cfg : Config.t;
  reg : Cpoint.registry;
  ms : Memsys.t;
  core_id : int;
  mutable trace : Golden.effect array;
  transients : (int, Golden.effect array) Hashtbl.t;
  mutable secret_range : (int * int) option;
  drives_window : bool;
  mutable secret_total : int;
  mutable secret_committed : int;
  (* Fetch state *)
  mutable fetch_pos : int;
  mutable fetch_source : fetch_source;
  mutable fetch_stall_until : int;
  mutable fetch_halted : bool;
  mutable blocked_on_branch : int option;  (* uop id *)
  line_avail : (int64, int) Hashtbl.t;
  line_pending : (int64, unit) Hashtbl.t;
  (* Pipeline structures (oldest first). *)
  mutable fb : uop list;
  mutable rob : uop list;
  mutable stbuf : stbuf_entry list;
  by_id : (int, uop) Hashtbl.t;
  taint_reg : bool array;  (* architectural-register taint, dispatch order *)
  mutable next_id : int;
  pool : Exec_unit.t;
  bp : Branch_pred.t;
  (* Results *)
  mutable commit_log : commit_record list;  (* reverse order *)
  mutable transient_issued : int;
  mutable cycles : int;
  mutable pending_early_squash : uop option;
  (* Contention points owned by the core. *)
  p_fb_enq : Cpoint.t;
  p_pc_sel : Cpoint.t;
  p_icache_mshr : Cpoint.t;
  p_bpd_update : Cpoint.t;
  p_rob_enq : Cpoint.t;
  p_rob_commit : Cpoint.t;
  p_rob_exception : Cpoint.t;
  p_ldq_stq : Cpoint.t;
  p_stq_drain : Cpoint.t;
}

let count_secret trace range =
  match range with
  | None -> 0
  | Some (lo, hi) ->
      Array.fold_left
        (fun acc (e : Golden.effect) ->
          if e.index >= lo && e.index <= hi then acc + 1 else acc)
        0 trace

let create cfg reg ms ~core_id ~outcome ~secret_range ~drives_window =
  let open Sonar_ir.Component in
  let pt ?single_valid ?persistent_subs name component sources =
    Cpoint.point reg
      ~name:(Printf.sprintf "c%d.%s" core_id name)
      ~component ~sources ?persistent_subs ?single_valid ()
  in
  let transients = Hashtbl.create 4 in
  List.iter
    (fun (pos, cont) -> Hashtbl.replace transients pos cont)
    outcome.Golden.transients;
  let t =
    {
      cfg;
      reg;
      ms;
      core_id;
      trace = outcome.Golden.trace;
      transients;
      secret_range;
      drives_window;
      secret_total = count_secret outcome.Golden.trace secret_range;
      secret_committed = 0;
      fetch_pos = 0;
      fetch_source = Arch;
      fetch_stall_until = 0;
      fetch_halted = false;
      blocked_on_branch = None;
      line_avail = Hashtbl.create 32;
      line_pending = Hashtbl.create 8;
      fb = [];
      rob = [];
      stbuf = [];
      by_id = Hashtbl.create 64;
      taint_reg = Array.make 32 false;
      next_id = 0;
      pool = Exec_unit.create cfg reg ~core:core_id;
      bp = Branch_pred.create cfg;
      commit_log = [];
      transient_issued = 0;
      cycles = 0;
      pending_early_squash = None;
      p_fb_enq =
        pt ~single_valid:true "frontend.fb_enq" Frontend
          (List.init cfg.fetch_width (Printf.sprintf "slot%d"));
      p_pc_sel = pt "frontend.pc_sel" Frontend [ "seq"; "branch"; "exception" ];
      p_icache_mshr = pt "icache.mshr" Frontend [ "fetch_miss" ];
      p_bpd_update = pt "bpd.update" Frontend [ "update" ];
      p_rob_enq =
        pt ~single_valid:true "rob.enq" Rob
          (List.init cfg.decode_width (Printf.sprintf "slot%d"));
      p_rob_commit =
        pt ~single_valid:true "rob.commit" Rob
          (List.init cfg.commit_width (Printf.sprintf "slot%d"));
      p_rob_exception = pt "rob.exception" Rob [ "exception" ];
      p_ldq_stq = pt "lsu.ldq_stq_idx" Lsu [ "load"; "store" ];
      p_stq_drain = pt "stq.drain" Lsu [ "drain_valid" ];
    }
  in
  (* With no secret-dependent region the whole run is the window. *)
  if drives_window && secret_range = None then Cpoint.open_window reg;
  t

let prepare t ~outcome ~secret_range =
  (* Re-arm an existing core for a new run: same role (core_id,
     drives_window, registered points), new golden trace. Rewinds every
     dynamic field to what [create] initialises, so a prepared core
     behaves bit-identically to a fresh one — the [Machine.Ctx] per-core
     reuse contract. *)
  t.trace <- outcome.Golden.trace;
  Hashtbl.reset t.transients;
  List.iter
    (fun (pos, cont) -> Hashtbl.replace t.transients pos cont)
    outcome.Golden.transients;
  t.secret_range <- secret_range;
  t.secret_total <- count_secret outcome.Golden.trace secret_range;
  t.secret_committed <- 0;
  t.fetch_pos <- 0;
  t.fetch_source <- Arch;
  t.fetch_stall_until <- 0;
  t.fetch_halted <- false;
  t.blocked_on_branch <- None;
  Hashtbl.reset t.line_avail;
  Hashtbl.reset t.line_pending;
  t.fb <- [];
  t.rob <- [];
  t.stbuf <- [];
  Hashtbl.reset t.by_id;
  Array.fill t.taint_reg 0 (Array.length t.taint_reg) false;
  t.next_id <- 0;
  Exec_unit.reset t.pool;
  Branch_pred.reset t.bp;
  t.commit_log <- [];
  t.transient_issued <- 0;
  t.cycles <- 0;
  t.pending_early_squash <- None;
  if t.drives_window && secret_range = None then Cpoint.open_window t.reg

let line_of t pc =
  Int64.logand pc (Int64.lognot (Int64.of_int (t.cfg.icache.line_bytes - 1)))

(* --- Fetch --- *)

let peek_next t =
  match t.fetch_source with
  | Arch ->
      if t.fetch_pos < Array.length t.trace then
        Some (t.trace.(t.fetch_pos), t.fetch_pos, false)
      else None
  | Trans (cont, idx) ->
      if idx < Array.length cont then Some (cont.(idx), -1, true) else None

let consume_next t =
  match t.fetch_source with
  | Arch -> t.fetch_pos <- t.fetch_pos + 1
  | Trans (cont, idx) -> t.fetch_source <- Trans (cont, idx + 1)

let is_secret_dep t (eff : Golden.effect) =
  match t.secret_range with
  | Some (lo, hi) -> eff.index >= lo && eff.index <= hi
  | None -> false

let next_pc_after t pos (eff : Golden.effect) =
  (* Actual next PC, for jump-target prediction. *)
  match t.fetch_source with
  | Arch when pos >= 0 && pos + 1 < Array.length t.trace -> t.trace.(pos + 1).pc
  | Arch | Trans _ -> Int64.add eff.pc 4L

let line_ready t line ~cycle ~tainted =
  match Hashtbl.find_opt t.line_avail line with
  | Some c -> c <= cycle
  | None ->
      if Hashtbl.mem t.line_pending line then begin
        match Memsys.ifetch_ready t.ms ~core:t.core_id ~addr:line with
        | Some c ->
            Hashtbl.remove t.line_pending line;
            Hashtbl.replace t.line_avail line c;
            c <= cycle
        | None -> false
      end
      else begin
        match Memsys.ifetch t.ms ~core:t.core_id ~addr:line ~cycle ~tainted with
        | Memsys.Ready c ->
            Hashtbl.replace t.line_avail line c;
            c <= cycle
        | Memsys.Waiting ->
            Cpoint.request ~tainted t.reg t.p_icache_mshr ~source:0 ~data:line;
            Hashtbl.replace t.line_pending line ();
            false
        | Memsys.Blocked _ -> false
      end

let fb_count t = List.length t.fb

let make_uop t eff trace_pos transient ~cycle =
  let id = t.next_id in
  t.next_id <- id + 1;
  let u =
    {
      eff;
      trace_pos;
      transient;
      secret_dep = is_secret_dep t eff;
      id;
      state = Dispatched;
      complete_at = max_int;
      dispatch_cycle = cycle;
      mispredicted = false;
      resolved_target = 0L;
      tainted = is_secret_dep t eff || transient;
    }
  in
  Hashtbl.replace t.by_id id u;
  u

let step_fetch t ~cycle =
  if
    t.fetch_halted || cycle < t.fetch_stall_until
    || t.blocked_on_branch <> None
  then ()
  else begin
    let budget = ref t.cfg.fetch_width in
    let fetched_any = ref false in
    let fetched_tainted = ref false in
    let stop = ref false in
    while (not !stop) && !budget > 0 && fb_count t < t.cfg.fetch_buffer do
      match peek_next t with
      | None -> stop := true
      | Some (eff, pos, transient) ->
          let static_taint = is_secret_dep t eff || transient in
          let line = line_of t eff.pc in
          if not (line_ready t line ~cycle ~tainted:static_taint) then stop := true
          else begin
            consume_next t;
            let u = make_uop t eff pos transient ~cycle in
            let slot = t.cfg.fetch_width - !budget in
            Cpoint.request ~tainted:u.tainted t.reg t.p_fb_enq ~source:slot
              ~data:eff.pc;
            t.fb <- t.fb @ [ u ];
            decr budget;
            fetched_any := true;
            if u.tainted then fetched_tainted := true;
            (* Branch prediction. *)
            (match eff.instr with
            | Instr.Branch (_, _, _, off) ->
                Cpoint.request ~tainted:u.tainted t.reg t.p_bpd_update ~source:0
                  ~data:eff.pc;
                let taken = Option.value ~default:false eff.taken in
                let target = Int64.add eff.pc (Int64.of_int off) in
                u.resolved_target <- target;
                let correct = Branch_pred.predict t.bp ~pc:eff.pc ~taken ~target in
                if not correct then begin
                  u.mispredicted <- true;
                  t.blocked_on_branch <- Some u.id;
                  stop := true
                end
            | Instr.Jal (_, off) ->
                let target = Int64.add eff.pc (Int64.of_int off) in
                u.resolved_target <- target;
                if not (Branch_pred.predict_jump t.bp ~pc:eff.pc ~target) then begin
                  u.mispredicted <- true;
                  t.blocked_on_branch <- Some u.id;
                  stop := true
                end
            | Instr.Jalr _ ->
                let target = next_pc_after t pos eff in
                u.resolved_target <- target;
                if not (Branch_pred.predict_jump t.bp ~pc:eff.pc ~target) then begin
                  u.mispredicted <- true;
                  t.blocked_on_branch <- Some u.id;
                  stop := true
                end
            | _ -> ());
            (* Architectural faults fork the transient continuation. *)
            (if (not transient) && pos >= 0 then
               match eff.fault with
               | Some (Golden.Load_access_fault | Golden.Store_access_fault) -> (
                   match Hashtbl.find_opt t.transients pos with
                   | Some cont -> t.fetch_source <- Trans (cont, 0)
                   | None -> ())
               | Some _ | None -> ());
            if eff.instr = Instr.Ebreak && not transient then begin
              t.fetch_halted <- true;
              stop := true
            end
          end
    done;
    if !fetched_any then
      Cpoint.request ~tainted:!fetched_tainted t.reg t.p_pc_sel ~source:0
        ~data:(Int64.of_int cycle)
  end

(* --- Dispatch --- *)

let dests_in_flight t =
  List.length
    (List.filter (fun u -> Option.is_some (Instr.dest u.eff.Golden.instr)) t.rob)

let loads_in_flight t =
  List.length (List.filter (fun u -> Instr.is_load u.eff.Golden.instr) t.rob)

let stores_in_flight t =
  List.length (List.filter (fun u -> Instr.is_store u.eff.Golden.instr) t.rob)
  + List.length t.stbuf

let step_dispatch t ~cycle =
  let phys_budget = max 8 (t.cfg.int_phys_regs - 32) in
  let budget = ref t.cfg.decode_width in
  let stop = ref false in
  while (not !stop) && !budget > 0 do
    match t.fb with
    | [] -> stop := true
    | u :: rest ->
        let rob_full = List.length t.rob >= t.cfg.rob_entries in
        let phys_full =
          Option.is_some (Instr.dest u.eff.Golden.instr)
          && dests_in_flight t >= phys_budget
        in
        let ldq_full =
          Instr.is_load u.eff.Golden.instr
          &&
          match t.cfg.ldq_entries with
          | Some n -> loads_in_flight t >= n
          | None -> false
        in
        let stq_full =
          Instr.is_store u.eff.Golden.instr
          && stores_in_flight t >= t.cfg.stq_entries
        in
        if rob_full || phys_full || ldq_full || stq_full then stop := true
        else begin
          t.fb <- rest;
          u.dispatch_cycle <- cycle;
          (* Forward dataflow taint: dispatch happens in program order. *)
          u.tainted <-
            u.tainted
            || List.exists
                 (fun r -> t.taint_reg.(Reg.to_int r))
                 (Instr.sources u.eff.Golden.instr);
          (match Instr.dest u.eff.Golden.instr with
          | Some d -> t.taint_reg.(Reg.to_int d) <- u.tainted
          | None -> ());
          t.rob <- t.rob @ [ u ];
          let slot = t.cfg.decode_width - !budget in
          Cpoint.request ~tainted:u.tainted t.reg t.p_rob_enq ~source:slot
            ~data:u.eff.Golden.pc;
          decr budget;
          if t.drives_window && u.secret_dep && not (Cpoint.window_open t.reg)
          then Cpoint.open_window t.reg
        end
  done

(* --- Operand readiness --- *)

let producer_of t u reg_src =
  (* Youngest older uop in the ROB writing [reg_src]. *)
  List.fold_left
    (fun acc v ->
      if v.id < u.id then
        match Instr.dest v.eff.Golden.instr with
        | Some d when Reg.equal d reg_src -> (
            match acc with
            | Some best when best.id > v.id -> acc
            | Some _ | None -> Some v)
        | Some _ | None -> acc
      else acc)
    None t.rob

let value_ready v ~cycle =
  match v.state with
  | Exec_done | Done -> v.complete_at <= cycle
  | Dispatched | Issued | Wait_mem -> false

let operands_ready t u ~cycle =
  List.for_all
    (fun r ->
      Reg.equal r Reg.x0
      ||
      match producer_of t u r with
      | Some v -> value_ready v ~cycle
      | None -> true)
    (Instr.sources u.eff.Golden.instr)

(* Older store to the same 8-byte word: forwarding source or hazard. *)
let older_store_same_addr t u =
  match u.eff.Golden.mem with
  | None -> None
  | Some m ->
      let word a = Int64.logand a (-8L) in
      List.fold_left
        (fun acc v ->
          if v.id < u.id && Instr.is_store v.eff.Golden.instr then
            match v.eff.Golden.mem with
            | Some vm when Int64.equal (word vm.addr) (word m.addr) -> Some v
            | Some _ | None -> acc
          else acc)
        None t.rob

let in_store_buffer t addr =
  let word a = Int64.logand a (-8L) in
  List.exists
    (fun e ->
      match e.sb_uop.eff.Golden.mem with
      | Some m -> Int64.equal (word m.addr) (word addr)
      | None -> false)
    t.stbuf

(* --- Issue --- *)

type op_class = Class_alu | Class_mul | Class_div | Class_load | Class_store

let classify (i : Instr.t) =
  match i with
  | Instr.Rtype ((MUL | MULH | MULHSU | MULHU | MULW), _, _, _) -> Class_mul
  | Instr.Rtype ((DIV | DIVU | REM | REMU | DIVW | DIVUW | REMW | REMUW), _, _, _)
    ->
      Class_div
  | _ when Instr.is_load i -> Class_load
  | _ when Instr.is_store i -> Class_store
  | _ -> Class_alu

let magnitude_of (e : Golden.effect) =
  match e.Golden.wb with Some (_, v) -> v | None -> 1024L

let operand_magnitude (u : uop) = magnitude_of u.eff

(* Equality on every effect field the backend reads once a uop has entered
   the ROB: the memory address (load/store issue, store-forwarding search,
   store-buffer drain) and, where the configuration makes it observable,
   the writeback magnitude (the data-dependent latency operand).  The
   divider's latency is operand-dependent in both modelled designs, and
   NutShell's unified MDU additionally records the operand as
   contention-point data on every request — but BOOM's pipelined IMUL has
   a constant latency and its issue path never touches the operand, so
   multiply magnitudes are exec-visible only under a unified MDU.  Loaded
   / stored data and ALU results are never read by the timing model —
   they flow only into the commit log, which a checkpoint restore
   re-points.  With equal instructions, [mem] presence, size and
   direction are equal by construction, so only the address matters. *)
let exec_visible_equal (cfg : Config.t) (a : Golden.effect) (b : Golden.effect) =
  (match (a.Golden.mem, b.Golden.mem) with
  | Some ma, Some mb -> Int64.equal ma.Golden.addr mb.Golden.addr
  | None, None -> true
  | Some _, None | None, Some _ -> false)
  &&
  match classify a.Golden.instr with
  | Class_div -> Int64.equal (magnitude_of a) (magnitude_of b)
  | Class_mul when cfg.Config.unified_mdu ->
      Int64.equal (magnitude_of a) (magnitude_of b)
  | Class_mul | Class_alu | Class_load | Class_store -> true

let is_access_fault = function
  | Some (Golden.Load_access_fault | Golden.Store_access_fault) -> true
  | Some _ | None -> false

let step_issue t ~cycle =
  List.iter
    (fun u ->
      if u.state = Dispatched && operands_ready t u ~cycle then begin
        let early_fault =
          is_access_fault u.eff.Golden.fault
          && t.cfg.exception_policy = Config.Early_at_execute
          && not u.transient
        in
        match classify u.eff.Golden.instr with
        | Class_alu ->
            (match Exec_unit.try_issue_alu t.pool ~cycle ~tainted:u.tainted with
            | Some c ->
                u.state <- Issued;
                u.complete_at <- c;
                if u.transient then t.transient_issued <- t.transient_issued + 1
            | None -> ())
        | Class_mul ->
            (match
               Exec_unit.try_issue_mul t.pool ~cycle ~operand:(operand_magnitude u)
                 ~tainted:u.tainted
             with
            | Some c ->
                u.state <- Issued;
                u.complete_at <- c;
                if u.transient then t.transient_issued <- t.transient_issued + 1
            | None -> ())
        | Class_div ->
            (match
               Exec_unit.try_issue_div t.pool ~cycle ~operand:(operand_magnitude u)
                 ~tainted:u.tainted
             with
            | Some c ->
                u.state <- Issued;
                u.complete_at <- c;
                if u.transient then t.transient_issued <- t.transient_issued + 1
            | None -> ())
        | Class_store ->
            if Exec_unit.try_issue_mem t.pool ~cycle ~tainted:u.tainted then begin
              Cpoint.request ~tainted:u.tainted t.reg t.p_ldq_stq ~source:1
                ~data:u.eff.Golden.pc;
              u.state <- Issued;
              u.complete_at <- cycle + 1;
              if u.transient then t.transient_issued <- t.transient_issued + 1;
              if early_fault && t.pending_early_squash = None then
                t.pending_early_squash <- Some u
            end
        | Class_load ->
            if Exec_unit.try_issue_mem t.pool ~cycle ~tainted:u.tainted then begin
              Cpoint.request ~tainted:u.tainted t.reg t.p_ldq_stq ~source:0
                ~data:u.eff.Golden.pc;
              if early_fault then begin
                u.state <- Issued;
                u.complete_at <- cycle + 1;
                if u.transient then t.transient_issued <- t.transient_issued + 1;
                if t.pending_early_squash = None then
                  t.pending_early_squash <- Some u
              end
              else begin
                match older_store_same_addr t u with
                | Some v ->
                    if value_ready v ~cycle then begin
                      (* Store-to-load forwarding. *)
                      u.state <- Issued;
                      u.complete_at <- cycle + 1;
                      if u.transient then
                        t.transient_issued <- t.transient_issued + 1
                    end
                    (* Hazard: stay Dispatched, mem slot wasted this cycle. *)
                | None -> (
                    let addr =
                      match u.eff.Golden.mem with
                      | Some m -> m.addr
                      | None -> 0L
                    in
                    if in_store_buffer t addr then begin
                      u.state <- Issued;
                      u.complete_at <- cycle + 1;
                      if u.transient then
                        t.transient_issued <- t.transient_issued + 1
                    end
                    else
                      match
                        Memsys.dload t.ms ~core:t.core_id ~seq:u.id ~rob:u.id
                          ~addr ~cycle ~tainted:u.tainted
                      with
                      | Memsys.Ready c ->
                          u.state <- Issued;
                          u.complete_at <- c;
                          if u.transient then
                            t.transient_issued <- t.transient_issued + 1
                      | Memsys.Waiting ->
                          u.state <- Wait_mem;
                          if u.transient then
                            t.transient_issued <- t.transient_issued + 1
                      | Memsys.Blocked _ -> ())
              end
            end
      end)
    t.rob

(* --- Squash --- *)

let squash_younger t ~than_id =
  let keep u = u.id <= than_id in
  List.iter
    (fun u -> if not (keep u) then Hashtbl.remove t.by_id u.id)
    (t.rob @ t.fb);
  t.rob <- List.filter keep t.rob;
  t.fb <- List.filter keep t.fb;
  Exec_unit.purge_writeback t.pool ~keep:(fun id -> id <= than_id);
  (match t.blocked_on_branch with
  | Some id when id > than_id -> t.blocked_on_branch <- None
  | Some _ | None -> ())

let handle_fault_redirect t u ~cycle =
  Cpoint.request ~tainted:u.tainted t.reg t.p_rob_exception ~source:0
    ~data:u.eff.Golden.pc;
  Cpoint.request ~tainted:u.tainted t.reg t.p_pc_sel ~source:2
    ~data:u.eff.Golden.pc;
  squash_younger t ~than_id:u.id;
  t.fetch_source <- Arch;
  t.fetch_pos <- u.trace_pos + 1;
  t.fetch_halted <- false;
  t.fetch_stall_until <- cycle + t.cfg.mispredict_penalty

(* --- Complete / writeback --- *)

let wb_class_of u =
  match classify u.eff.Golden.instr with
  | Class_alu -> Exec_unit.Wb_alu
  | Class_mul -> Exec_unit.Wb_mul
  | Class_div -> Exec_unit.Wb_div
  | Class_load | Class_store -> Exec_unit.Wb_mem

let step_complete t ~cycle =
  List.iter
    (fun u ->
      match u.state with
      | Issued when u.complete_at <= cycle ->
          (* Control resolves here: train the predictor, unblock fetch. *)
          (match u.eff.Golden.instr with
          | Instr.Branch _ ->
              Branch_pred.update t.bp ~pc:u.eff.Golden.pc
                ~taken:(Option.value ~default:false u.eff.Golden.taken)
                ~target:u.resolved_target
          | Instr.Jal _ | Instr.Jalr _ ->
              Branch_pred.update_jump t.bp ~pc:u.eff.Golden.pc
                ~target:u.resolved_target
          | _ -> ());
          if u.mispredicted then begin
            t.blocked_on_branch <- None;
            t.fetch_stall_until <- max t.fetch_stall_until (cycle + 2);
            Cpoint.request ~tainted:u.tainted t.reg t.p_pc_sel ~source:1
              ~data:u.eff.Golden.pc;
            u.mispredicted <- false
          end;
          if
            Instr.is_store u.eff.Golden.instr
            && Option.is_none (Instr.dest u.eff.Golden.instr)
          then u.state <- Done
          else if Option.is_none (Instr.dest u.eff.Golden.instr) then
            u.state <- Done
          else begin
            u.state <- Exec_done;
            Exec_unit.request_writeback t.pool (wb_class_of u) ~id:u.id ~cycle
              ~tainted:u.tainted
          end
      | Wait_mem -> (
          match Memsys.load_ready t.ms ~core:t.core_id ~rob:u.id with
          | Some c when c <= cycle ->
              u.complete_at <- c;
              if u.mispredicted then begin
                t.blocked_on_branch <- None;
                t.fetch_stall_until <- max t.fetch_stall_until (cycle + 2);
                u.mispredicted <- false
              end;
              u.state <- Exec_done;
              Exec_unit.request_writeback t.pool (wb_class_of u) ~id:u.id ~cycle
                ~tainted:u.tainted
          | Some _ | None -> ())
      | Dispatched | Issued | Exec_done | Done -> ())
    t.rob

let step_writeback t ~cycle =
  let granted = Exec_unit.arbitrate_writeback t.pool ~cycle in
  List.iter
    (fun id ->
      match Hashtbl.find_opt t.by_id id with
      | Some u when u.state = Exec_done ->
          u.state <- Done;
          u.complete_at <- min u.complete_at cycle
      | Some _ | None -> ())
    granted

(* --- Commit --- *)

let step_commit t ~cycle =
  let budget = ref t.cfg.commit_width in
  let stop = ref false in
  while (not !stop) && !budget > 0 do
    match t.rob with
    | u :: rest when u.state = Done && u.complete_at <= cycle ->
        assert (not u.transient);
        t.rob <- rest;
        Hashtbl.remove t.by_id u.id;
        let slot = t.cfg.commit_width - !budget in
        Cpoint.request ~tainted:u.tainted t.reg t.p_rob_commit ~source:slot
          ~data:u.eff.Golden.pc;
        decr budget;
        t.commit_log <-
          { c_eff = u.eff; c_cycle = cycle; c_dispatch = u.dispatch_cycle }
          :: t.commit_log;
        if Instr.is_store u.eff.Golden.instr then
          t.stbuf <- t.stbuf @ [ { sb_uop = u; sb_state = Drain_new } ];
        if u.secret_dep then begin
          t.secret_committed <- t.secret_committed + 1;
          if t.drives_window && t.secret_committed >= t.secret_total then
            Cpoint.close_window t.reg
        end;
        (* Lazy exception handling: the squash happens here. *)
        if
          is_access_fault u.eff.Golden.fault
          && t.cfg.exception_policy = Config.Lazy_at_commit
        then begin
          handle_fault_redirect t u ~cycle;
          stop := true
        end
    | _ -> stop := true
  done

(* --- Store buffer drain --- *)

let step_stbuf t ~cycle =
  match t.stbuf with
  | [] -> ()
  | entry :: rest -> (
      let u = entry.sb_uop in
      let addr = match u.eff.Golden.mem with Some m -> m.addr | None -> 0L in
      let is_sc =
        match u.eff.Golden.instr with Instr.Sc_d _ -> true | _ -> false
      in
      match entry.sb_state with
      | Drain_new -> (
          Cpoint.request ~tainted:u.tainted t.reg t.p_stq_drain ~source:0
            ~data:addr;
          match
            Memsys.dstore t.ms ~core:t.core_id ~seq:u.id ~rob:u.id ~addr ~is_sc
              ~cycle ~tainted:u.tainted
          with
          | Memsys.Ready _ -> t.stbuf <- rest
          | Memsys.Waiting -> entry.sb_state <- Drain_waiting
          | Memsys.Blocked _ -> ())
      | Drain_waiting -> (
          match Memsys.store_ready t.ms ~core:t.core_id ~rob:u.id with
          | Some c when c <= cycle -> t.stbuf <- rest
          | Some _ | None -> ()))

(* --- Top level --- *)

let step t ~cycle =
  t.cycles <- cycle;
  Exec_unit.new_cycle t.pool ~cycle;
  step_complete t ~cycle;
  step_writeback t ~cycle;
  step_commit t ~cycle;
  step_issue t ~cycle;
  (match t.pending_early_squash with
  | Some u ->
      t.pending_early_squash <- None;
      handle_fault_redirect t u ~cycle
  | None -> ());
  step_stbuf t ~cycle;
  step_dispatch t ~cycle;
  step_fetch t ~cycle

let fetch_done t =
  match t.fetch_source with
  | Arch -> t.fetch_halted || t.fetch_pos >= Array.length t.trace
  | Trans _ -> false

let finished t = fetch_done t && t.fb = [] && t.rob = [] && t.stbuf = []
let commits t = List.rev t.commit_log
let transient_executed t = t.transient_issued
let cycles_run t = t.cycles

(* Exclusive upper bound on the architectural trace positions fetch can
   consume during the coming cycle, evaluated at the top of the cycle
   (before any stage steps).  Used by the dual-run checkpoint logic: as
   long as every core's bound stays at or below its fork position, the
   cycle is guaranteed to behave identically under both secrets.

   Soundness of each arm:
   - [Trans]: transient fetch consumes no architectural positions, and
     leaving [Trans] happens only through [handle_fault_redirect], which
     both stalls fetch past this cycle and moves [fetch_pos] backward.
   - halted / stalled / blocked-on-branch: no stage running this cycle
     can re-enable fetch for {e this} cycle — mispredict resolution and
     fault redirects always set [fetch_stall_until > cycle].
   - otherwise fetch consumes at most [fetch_width] positions, further
     limited by fetch-buffer backpressure: dispatch (which runs before
     fetch) frees at most [decode_width] buffer slots — and clamped at the
     first position whose instruction line is {e known} not to be ready
     this cycle ([line_known_unready] below): fetch consumes positions in
     order and [step_fetch] stops at the first [line_ready] failure.

   The line clamp is exact, not just sound, for lines the core has already
   touched: [ifetch_ready_tbl] entries are written only by [Memsys.tick],
   which runs after every core's [step] within a cycle, so the table this
   query sees at the top of the cycle is the table [step_fetch] sees.
   Untouched lines are conservatively assumed ready (a first-touch
   [Memsys.ifetch] could hit). *)
let line_known_unready t line ~cycle =
  match Hashtbl.find_opt t.line_avail line with
  | Some c -> c > cycle
  | None ->
      Hashtbl.mem t.line_pending line
      &&
      (* Pure variant of [line_ready]'s pending path: peek at the refill
         completion without migrating the entry between the core tables. *)
      (match Memsys.ifetch_ready t.ms ~core:t.core_id ~addr:line with
      | Some c -> c > cycle
      | None -> true)

let fetch_bound t ~cycle =
  match t.fetch_source with
  | Trans _ -> t.fetch_pos
  | Arch ->
      if t.fetch_halted || cycle < t.fetch_stall_until || t.blocked_on_branch <> None
      then t.fetch_pos
      else begin
        let fb = fb_count t in
        let headroom =
          min t.cfg.fetch_width
            (t.cfg.fetch_buffer - fb + min fb t.cfg.decode_width)
        in
        let last = min (t.fetch_pos + headroom) (Array.length t.trace) in
        let bound = ref (t.fetch_pos + headroom) in
        (try
           for p = t.fetch_pos to last - 1 do
             if line_known_unready t (line_of t t.trace.(p).Golden.pc) ~cycle
             then begin
               bound := p;
               raise Exit
             end
           done
         with Exit -> ());
        !bound
      end

(* Whether the ROB holds a uop at or past the architectural position
   [fork] whose divergent backend-read fields could be read this cycle.
   Complements [fetch_bound] in the dual-run capture test.

   A divergent {e store}'s address can be read by any younger load's
   forwarding search the moment both sit in the ROB, so its mere presence
   trips the test.  A divergent load or mul/div is read only at its {e own}
   issue ([Memsys.dload] address / latency operand), which requires its
   operands ready — so the test defers until the cycle that could happen,
   riding out the operand-dependency chain in front of it (the testcase
   template's coupling chains delay exactly this readiness).

   [producer_possibly_ready] predicts [value_ready] as evaluated inside
   [step_issue], which runs {e after} complete/writeback within the cycle:
   an [Issued] producer with [complete_at <= cycle] completes first (an
   [Exec_done] or [Done] producer already has [complete_at <= cycle] — the
   only transitions into those states require it); a [Wait_mem] producer
   is released exactly when [Memsys.load_ready] says so, and the ready
   table is written only by [Memsys.tick], which runs after every core's
   [step] — so the top-of-cycle query sees the table [step_complete] sees.
   Only [Dispatched] producers (which issue at the earliest this cycle,
   completing later) and [Issued] ones with [complete_at > cycle] provably
   stay unready.  Transient uops carry position -1 and never trip the
   test. *)
let producer_possibly_ready t v ~cycle =
  match v.state with
  | Exec_done | Done -> true
  | Wait_mem -> (
      match Memsys.load_ready t.ms ~core:t.core_id ~rob:v.id with
      | Some c -> c <= cycle
      | None -> false)
  | Issued -> v.complete_at <= cycle
  | Dispatched -> false

let could_issue t u ~cycle =
  List.for_all
    (fun r ->
      Reg.equal r Reg.x0
      ||
      match producer_of t u r with
      | Some v -> producer_possibly_ready t v ~cycle
      | None -> true)
    (Instr.sources u.eff.Golden.instr)

let rob_issue_reaches t ~fork ~cycle =
  List.exists
    (fun u ->
      u.trace_pos >= fork
      && (u.state <> Dispatched
         || Instr.is_store u.eff.Golden.instr
         || could_issue t u ~cycle))
    t.rob

(* Checkpoint support.  Uops are mutable, so capture deep-copies each one
   ([{ u with state = u.state }] — the immutable [eff] is shared); [by_id]
   is exactly fb ∪ rob (commit removes an entry before any store-buffer
   insertion), so restore rebuilds it instead of saving it.  The commit
   log's records are immutable, so its spine is shared.  [fetch_source]'s
   [Trans] payload is replaced, never mutated, so saving it by value is
   faithful. *)

type save = {
  mutable s_secret_committed : int;
  mutable s_fetch_pos : int;
  mutable s_fetch_source : fetch_source;
  mutable s_fetch_stall_until : int;
  mutable s_fetch_halted : bool;
  mutable s_blocked_on_branch : int option;
  mutable s_line_avail : (int64 * int) list;
  mutable s_line_pending : int64 list;
  mutable s_fb : uop list;
  mutable s_rob : uop list;
  mutable s_stbuf : (uop * stbuf_state) list;
  s_taint_reg : bool array;
  mutable s_next_id : int;
  s_pool : Exec_unit.save;
  s_bp : Branch_pred.save;
  mutable s_commit_log : commit_record list;
  mutable s_transient_issued : int;
  mutable s_cycles : int;
}

let make_save () =
  {
    s_secret_committed = 0;
    s_fetch_pos = 0;
    s_fetch_source = Arch;
    s_fetch_stall_until = 0;
    s_fetch_halted = false;
    s_blocked_on_branch = None;
    s_line_avail = [];
    s_line_pending = [];
    s_fb = [];
    s_rob = [];
    s_stbuf = [];
    s_taint_reg = Array.make 32 false;
    s_next_id = 0;
    s_pool = Exec_unit.make_save ();
    s_bp = Branch_pred.make_save ();
    s_commit_log = [];
    s_transient_issued = 0;
    s_cycles = 0;
  }

let copy_uop u = { u with state = u.state }

let capture t sv =
  (* [pending_early_squash] is set and consumed within one [step], so it
     is always [None] at a cycle boundary. *)
  assert (t.pending_early_squash = None);
  sv.s_secret_committed <- t.secret_committed;
  sv.s_fetch_pos <- t.fetch_pos;
  sv.s_fetch_source <- t.fetch_source;
  sv.s_fetch_stall_until <- t.fetch_stall_until;
  sv.s_fetch_halted <- t.fetch_halted;
  sv.s_blocked_on_branch <- t.blocked_on_branch;
  sv.s_line_avail <- Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.line_avail [];
  sv.s_line_pending <- Hashtbl.fold (fun k () acc -> k :: acc) t.line_pending [];
  sv.s_fb <- List.map copy_uop t.fb;
  sv.s_rob <- List.map copy_uop t.rob;
  sv.s_stbuf <- List.map (fun e -> (copy_uop e.sb_uop, e.sb_state)) t.stbuf;
  Array.blit t.taint_reg 0 sv.s_taint_reg 0 32;
  sv.s_next_id <- t.next_id;
  Exec_unit.capture t.pool sv.s_pool;
  Branch_pred.capture t.bp sv.s_bp;
  sv.s_commit_log <- t.commit_log;
  sv.s_transient_issued <- t.transient_issued;
  sv.s_cycles <- t.cycles

let restore ?(fork = max_int) t sv =
  t.secret_committed <- sv.s_secret_committed;
  t.fetch_pos <- sv.s_fetch_pos;
  t.fetch_source <- sv.s_fetch_source;
  t.fetch_stall_until <- sv.s_fetch_stall_until;
  t.fetch_halted <- sv.s_fetch_halted;
  t.blocked_on_branch <- sv.s_blocked_on_branch;
  Hashtbl.reset t.line_avail;
  List.iter (fun (k, v) -> Hashtbl.replace t.line_avail k v) sv.s_line_avail;
  Hashtbl.reset t.line_pending;
  List.iter (fun k -> Hashtbl.replace t.line_pending k ()) sv.s_line_pending;
  (* Uops at or past [fork] were captured with run 0's effect records.
     None of the fields the two runs disagree on was ever read — the
     capture fires before the first cycle in which issue could touch a
     uop whose {e backend-read} fields ([exec_visible_equal]) diverge,
     and uops diverging only in unread data may have issued, completed,
     even committed — so re-pointing every record at the current —
     [prepare]d — trace makes the restored state exactly what the other
     run would have built.  All dynamic uop fields (taint, prediction
     outcome, resolved target, dispatch cycle, issue timing) are
     equal across the runs up to that point, so the shallow rebuild is
     faithful. *)
  let repoint u =
    if u.trace_pos >= fork then { u with eff = t.trace.(u.trace_pos) } else u
  in
  t.fb <- (if fork = max_int then sv.s_fb else List.map repoint sv.s_fb);
  t.rob <- (if fork = max_int then sv.s_rob else List.map repoint sv.s_rob);
  t.stbuf <-
    List.map
      (fun (u, st) -> { sb_uop = repoint u; sb_state = st })
      sv.s_stbuf;
  Hashtbl.reset t.by_id;
  List.iter (fun u -> Hashtbl.replace t.by_id u.id u) t.fb;
  List.iter (fun u -> Hashtbl.replace t.by_id u.id u) t.rob;
  Array.blit sv.s_taint_reg 0 t.taint_reg 0 32;
  t.next_id <- sv.s_next_id;
  Exec_unit.restore t.pool sv.s_pool;
  Branch_pred.restore t.bp sv.s_bp;
  (* The [k]-th commit (commit order = architectural trace order; the log
     is most-recent-first) is trace position [k] — re-point committed
     records past [fork] too, so the commit trace reports the new run's
     data. *)
  t.commit_log <-
    (if fork = max_int then sv.s_commit_log
     else begin
       let len = List.length sv.s_commit_log in
       List.mapi
         (fun j r ->
           let pos = len - 1 - j in
           if pos >= fork then { r with c_eff = t.trace.(pos) } else r)
         sv.s_commit_log
     end);
  t.transient_issued <- sv.s_transient_issued;
  t.cycles <- sv.s_cycles;
  t.pending_early_squash <- None
