(** Branch direction and target prediction (BTB + 2-bit counters).

    Prediction ({!predict}, {!predict_jump}) is read-only: it reports
    whether the current predictor state would have predicted the branch
    correctly. State updates ({!update}, {!update_jump}) happen when the
    branch {e resolves} in the pipeline — squashed transient branches never
    update, so no oracle knowledge of transient outcomes can leak into
    later fetch behaviour. *)

type t

val create : Config.t -> t

val predict : t -> pc:int64 -> taken:bool -> target:int64 -> bool
(** Would the current state predict this (direction, target) correctly? *)

val predict_jump : t -> pc:int64 -> target:int64 -> bool
(** Unconditional jumps: correct iff the BTB already holds the target. *)

val update : t -> pc:int64 -> taken:bool -> target:int64 -> unit
(** Train with the resolved outcome. *)

val update_jump : t -> pc:int64 -> target:int64 -> unit
val reset : t -> unit

type save

val make_save : unit -> save
val capture : t -> save -> unit
val restore : t -> save -> unit
(** Checkpoint the BTB and counter tables; [restore] makes later
    predictions bit-identical to the captured state. *)
