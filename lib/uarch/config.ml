type exception_policy = Lazy_at_commit | Early_at_execute

type cache_cfg = {
  size_kb : int;
  ways : int;
  line_bytes : int;
  hit_latency : int;
}

type t = {
  name : string;
  isa : string;
  privilege : string;
  pipeline_stages : int;
  fetch_width : int;
  fetch_buffer : int;
  decode_width : int;
  commit_width : int;
  rob_entries : int;
  int_phys_regs : int;
  fp_phys_regs : int option;
  int_alus : int;
  mem_units : int;
  fp_units : int option;
  ldq_entries : int option;
  stq_entries : int;
  unified_mdu : bool;
  wb_ports : int;
  icache : cache_cfg;
  dcache : cache_cfg;
  l2 : cache_cfg;
  mshrs : int;
  mem_latency : int;
  l2_latency : int;
  branch_predictor : string;
  bus_protocol : string;
  exception_policy : exception_policy;
  mispredict_penalty : int;
  fanout : (string * int) list;
}

(* Fanouts: how many netlist-level MUX contention points each runtime
   arbitration site maps to. The totals are calibrated to the paper's
   Figure 7 monitored-point counts (BOOM 6620, NutShell 2976); the same
   numbers size the generated netlists in Sonar_dut. *)
let boom_fanout =
  [
    ("tilelink.d_channel", 420);
    ("l2.req_port", 180);
    ("frontend.fb_enq", 570);
    ("frontend.pc_sel", 310);
    ("icache.mshr", 150);
    ("bpd.update", 300);
    ("rob.enq", 600);
    ("rob.commit", 560);
    ("rob.exception", 240);
    ("exec.wb_port", 360);
    ("exec.issue_alu", 460);
    ("exec.issue_mem", 260);
    ("exec.div_req", 120);
    ("lsu.ldq_stq_idx", 540);
    ("lsu.dcache_port", 330);
    ("mshr.alloc", 260);
    ("linebuffer.read", 190);
    ("linebuffer.write", 170);
    ("dcache.fill", 440);
    ("stq.drain", 220);
  ]

let nutshell_fanout =
  [
    ("bus.req", 260);
    ("frontend.fb_enq", 180);
    ("frontend.pc_sel", 150);
    ("icache.port", 190);
    ("rob.enq", 330);
    ("rob.commit", 260);
    ("rob.exception", 120);
    ("exec.wb_port", 180);
    ("exec.issue_alu", 230);
    ("exec.issue_mem", 140);
    ("mdu.req", 160);
    ("lsu.ldq_stq_idx", 240);
    ("lsu.dcache_port", 210);
    ("dcache.fill", 230);
    ("stq.drain", 96);
  ]

let boom =
  {
    name = "boom";
    isa = "RV64GC";
    privilege = "U/S/M";
    pipeline_stages = 10;
    fetch_width = 8;
    fetch_buffer = 24;
    decode_width = 4;
    commit_width = 4;
    rob_entries = 96;
    int_phys_regs = 100;
    fp_phys_regs = Some 96;
    int_alus = 3;
    mem_units = 1;
    fp_units = Some 1;
    ldq_entries = Some 24;
    stq_entries = 24;
    unified_mdu = false;
    wb_ports = 2;
    icache = { size_kb = 32; ways = 8; line_bytes = 64; hit_latency = 1 };
    dcache = { size_kb = 32; ways = 8; line_bytes = 64; hit_latency = 3 };
    l2 = { size_kb = 512; ways = 8; line_bytes = 64; hit_latency = 14 };
    mshrs = 2;
    mem_latency = 40;
    l2_latency = 14;
    branch_predictor = "uBTB+BTB+TAGE";
    bus_protocol = "TileLink";
    exception_policy = Lazy_at_commit;
    mispredict_penalty = 10;
    fanout = boom_fanout;
  }

let nutshell =
  {
    name = "nutshell";
    isa = "RV64 IMAC/Zicsr/Zifencei";
    privilege = "U/S/M";
    pipeline_stages = 9;
    fetch_width = 2;
    fetch_buffer = 8;
    decode_width = 2;
    commit_width = 2;
    rob_entries = 32;
    int_phys_regs = 32;
    fp_phys_regs = None;
    int_alus = 2;
    mem_units = 1;
    fp_units = None;
    ldq_entries = None;
    stq_entries = 8;
    unified_mdu = true;
    wb_ports = 1;
    icache = { size_kb = 32; ways = 4; line_bytes = 64; hit_latency = 1 };
    dcache = { size_kb = 32; ways = 4; line_bytes = 64; hit_latency = 2 };
    l2 = { size_kb = 128; ways = 8; line_bytes = 64; hit_latency = 10 };
    mshrs = 0;
    mem_latency = 30;
    l2_latency = 10;
    branch_predictor = "BTB+PHT";
    bus_protocol = "SimpleBus+AXI4";
    exception_policy = Early_at_execute;
    mispredict_penalty = 9;
    fanout = nutshell_fanout;
  }

let by_name = function
  | "boom" -> Some boom
  | "nutshell" -> Some nutshell
  | _ -> None

let fanout_of t name =
  (* Runtime points are registered with a per-core "c<k>." prefix; the
     fanout table is keyed by the bare point name. *)
  let bare =
    if String.length name > 3 && name.[0] = 'c' && String.contains name '.' then
      let dot = String.index name '.' in
      if
        dot >= 2
        && String.for_all
             (fun ch -> ch >= '0' && ch <= '9')
             (String.sub name 1 (dot - 1))
      then String.sub name (dot + 1) (String.length name - dot - 1)
      else name
    else name
  in
  match List.assoc_opt bare t.fanout with Some f -> f | None -> 1

let pp fmt t =
  let opt_int = function Some v -> string_of_int v | None -> "-" in
  Format.fprintf fmt
    "@[<v>%-18s %s@,%-18s %s@,%-18s %s@,%-18s %d@,%-18s %d@,%-18s %d@,\
     %-18s %s@,%-18s %d/%s@,%-18s %d/%s/%d@,%-18s %d@,%-18s %s/%d@,\
     %-18s %d/%dKB@,%-18s %d@,%-18s %d KB@,%-18s %s@]"
    "Name" t.name "Supported ISA" t.isa "Privilege" t.privilege
    "Pipeline Stages" t.pipeline_stages "Fetch Width" t.fetch_width
    "Fetch Buffer" t.fetch_buffer "BrPred" t.branch_predictor
    "Int/Fp PhyRegs" t.int_phys_regs (opt_int t.fp_phys_regs)
    "Mem/Fp/Int Func" t.mem_units (opt_int t.fp_units) t.int_alus
    "ROB Entry" t.rob_entries "Ld/St Queue"
    (match t.ldq_entries with Some n -> string_of_int n | None -> "-")
    t.stq_entries "I/DCache" t.icache.size_kb t.dcache.size_kb "L1 MSHR"
    t.mshrs "L2 Cache" t.l2.size_kb "Bus Protocol" t.bus_protocol

let fingerprint (t : t) = Hashtbl.hash_param 1000 1000 t
