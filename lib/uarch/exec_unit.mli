(** Execution-unit pool: ALUs, a pipelined integer multiplier, an
    unpipelined divider (BOOM) or a unified non-pipelined multiply-divide
    unit (NutShell), plus the shared writeback-port arbiter.

    Contention channels hosted here:
    - S8: completed ALU, IMUL and DIV operations contend for the shared
      response (writeback) ports; ALU responses win, others slip cycles.
    - S9: the divider is unpipelined — a younger division that enters first
      blocks an older one for the full operand-dependent latency.
    - S13: NutShell's MDU serves both multiplications and divisions and is
      non-pipelined, so any younger MUL/DIV occupying it stalls an older
      one. *)

type wb_class = Wb_alu | Wb_mul | Wb_div | Wb_mem

type t

val create : Config.t -> Cpoint.registry -> core:int -> t

val new_cycle : t -> cycle:int -> unit
(** Reset per-cycle issue-slot accounting. Call at the top of each cycle. *)

val try_issue_alu : t -> cycle:int -> tainted:bool -> int option
(** Completion cycle if an ALU slot is free this cycle. *)

val try_issue_mul : t -> cycle:int -> operand:int64 -> tainted:bool -> int option
val try_issue_div : t -> cycle:int -> operand:int64 -> tainted:bool -> int option
(** Divide latency is operand-dependent (quotient width). [None] = unit
    busy; the refused request is recorded at the unit's contention point. *)

val try_issue_mem : t -> cycle:int -> tainted:bool -> bool
(** A memory-unit (address-generation) slot this cycle. *)

val request_writeback : t -> wb_class -> id:int -> cycle:int -> tainted:bool -> unit
(** Register a completed operation wanting a response port. *)

val arbitrate_writeback : t -> cycle:int -> int list
(** Ids granted a response port this cycle (ALU > MUL > DIV > MEM priority,
    then oldest id first); losers stay queued. *)

val purge_writeback : t -> keep:(int -> bool) -> unit
(** Drop queued writeback requests whose id fails [keep] (pipeline squash). *)

val div_latency : Config.t -> int64 -> int
val mul_latency : Config.t -> int

val reset : t -> unit
(** Return the pool to its just-created dynamic state (issue accounting
    zeroed, units idle, writeback queue empty). Contention points stay
    registered. *)

type save

val make_save : unit -> save
val capture : t -> save -> unit
val restore : t -> save -> unit
