type core_input = {
  program : Sonar_isa.Program.t;
  secret_range : (int * int) option;
}

type core_result = {
  commits : Core_model.commit_record list;
  transient_executed : int;
}

type result = {
  cores : core_result array;
  cycles : int;
  snapshots : Cpoint.snapshot list;
  window : (int * int) option;
  point_stats : point_stat list;
  hit_cycle_limit : bool;
}

and point_stat = {
  ps_name : string;
  ps_component : Sonar_ir.Component.t;
  ps_fanout : int;
  ps_max_subs : int;
  ps_single_valid : bool;
  ps_min_pair : int option;
  ps_triggered : (Cpoint.kind * int) list;
  ps_weight : float;
  ps_pair_intervals : (int * int) list;
  ps_n_sources : int;
}

let default_max_cycles = 200_000

module Ctx = struct
  type slot = { s_reg : Cpoint.registry; s_ms : Memsys.t }

  type t = {
    ctx_cfg : Config.t;
    mutable slots : (int * slot) list;  (* keyed by core count (1 or 2) *)
  }

  let create cfg = { ctx_cfg = cfg; slots = [] }
  let config t = t.ctx_cfg

  (* Acquire the (registry, memsys) pair for this core count, reset to cold
     start; allocate it on first use. The dominant per-run allocations —
     cache line arrays (the L2 alone is thousands of line records) and the
     contention-point tables — happen once per (context, core count)
     instead of twice per testcase. *)
  let slot t ~cores =
    match List.assoc_opt cores t.slots with
    | Some { s_reg; s_ms } ->
        Cpoint.reset s_reg;
        Memsys.reset s_ms;
        (s_reg, s_ms)
    | None ->
        let reg = Cpoint.create t.ctx_cfg in
        let ms = Memsys.create t.ctx_cfg reg ~cores in
        t.slots <- (cores, { s_reg = reg; s_ms = ms }) :: t.slots;
        (reg, ms)
end

let point_stat (p : Cpoint.t) =
  {
    ps_name = p.name;
    ps_component = p.component;
    ps_fanout = p.fanout;
    ps_max_subs = p.max_subs;
    ps_n_sources = Array.length p.sources;
    ps_single_valid = p.single_valid;
    ps_min_pair = p.min_pair;
    ps_triggered = Cpoint.triggered_subs p;
    ps_weight = Cpoint.triggered_weight p;
    ps_pair_intervals = Cpoint.pair_intervals p;
  }

let run ?(max_cycles = default_max_cycles) ?ctx cfg inputs =
  let n = Array.length inputs in
  if n < 1 || n > 2 then invalid_arg "Machine.run: 1 or 2 cores";
  let reg, ms =
    match ctx with
    | None ->
        let reg = Cpoint.create cfg in
        (reg, Memsys.create cfg reg ~cores:n)
    | Some ctx ->
        if not (Ctx.config ctx == cfg || Ctx.config ctx = cfg) then
          invalid_arg "Machine.run: ctx was created for a different config";
        Ctx.slot ctx ~cores:n
  in
  let cores =
    Array.mapi
      (fun i input ->
        let outcome = Sonar_isa.Golden.run input.program in
        Core_model.create cfg reg ms ~core_id:i ~outcome
          ~secret_range:input.secret_range ~drives_window:(i = 0))
      inputs
  in
  let cycle = ref 0 in
  let all_done () = Array.for_all Core_model.finished cores && not (Memsys.busy ms) in
  while (not (all_done ())) && !cycle < max_cycles do
    Cpoint.set_cycle reg !cycle;
    Array.iter (fun c -> Core_model.step c ~cycle:!cycle) cores;
    Memsys.tick ms ~cycle:!cycle;
    incr cycle
  done;
  {
    cores =
      Array.map
        (fun c ->
          {
            commits = Core_model.commits c;
            transient_executed = Core_model.transient_executed c;
          })
        cores;
    cycles = !cycle;
    snapshots = Cpoint.snapshots reg;
    window = Cpoint.window_bounds reg;
    point_stats = List.map point_stat (Cpoint.points reg);
    hit_cycle_limit = !cycle >= max_cycles;
  }

let run_single ?max_cycles ?(secret_range = None) cfg program =
  run ?max_cycles cfg [| { program; secret_range } |]
