type core_input = {
  program : Sonar_isa.Program.t;
  secret_range : (int * int) option;
}

type core_result = {
  commits : Core_model.commit_record list;
  transient_executed : int;
}

type result = {
  cores : core_result array;
  cycles : int;
  snapshots : Cpoint.snapshot list;
  window : (int * int) option;
  point_stats : point_stat list;
  hit_cycle_limit : bool;
}

and point_stat = {
  ps_name : string;
  ps_component : Sonar_ir.Component.t;
  ps_fanout : int;
  ps_max_subs : int;
  ps_single_valid : bool;
  ps_min_pair : int option;
  ps_triggered : (Cpoint.kind * int) list;
  ps_weight : float;
  ps_pair_intervals : (int * int) list;
  ps_n_sources : int;
}

type dual_stats = { fork_cycle : int option; cycles_saved : int }

let default_max_cycles = 200_000

module Ctx = struct
  type checkpoint_bufs = {
    k_reg : Cpoint.save;
    k_ms : Memsys.save;
    k_cores : Core_model.save array;
  }

  type slot = {
    s_reg : Cpoint.registry;
    s_ms : Memsys.t;
    mutable s_cores : Core_model.t array option;
        (* cached per-core models, re-armed via [Core_model.prepare] *)
    mutable s_kbufs : checkpoint_bufs option;
        (* preallocated dual-run checkpoint buffers; made lazily once the
           cores exist (all contention points are registered by then, so
           the registry save covers every point) *)
  }

  type t = {
    ctx_cfg : Config.t;
    ctx_fp : int;
    mutable slots : (int * slot) list;  (* keyed by core count (1 or 2) *)
  }

  let create cfg =
    { ctx_cfg = cfg; ctx_fp = Config.fingerprint cfg; slots = [] }

  let config t = t.ctx_cfg
  let fingerprint t = t.ctx_fp

  (* Acquire the slot for this core count with its registry and memory
     hierarchy reset to cold start; allocate it on first use. The dominant
     per-run allocations — cache line arrays (the L2 alone is thousands of
     line records), the contention-point tables, and (via [s_cores]) the
     per-core pipeline models — happen once per (context, core count)
     instead of twice per testcase. *)
  let slot t ~cores =
    match List.assoc_opt cores t.slots with
    | Some sl ->
        Cpoint.reset sl.s_reg;
        Memsys.reset sl.s_ms;
        sl
    | None ->
        let reg = Cpoint.create t.ctx_cfg in
        let ms = Memsys.create t.ctx_cfg reg ~cores in
        let sl = { s_reg = reg; s_ms = ms; s_cores = None; s_kbufs = None } in
        t.slots <- (cores, sl) :: t.slots;
        sl
end

let point_stat (p : Cpoint.t) =
  {
    ps_name = p.name;
    ps_component = p.component;
    ps_fanout = p.fanout;
    ps_max_subs = p.max_subs;
    ps_n_sources = Array.length p.sources;
    ps_single_valid = p.single_valid;
    ps_min_pair = p.min_pair;
    ps_triggered = Cpoint.triggered_subs p;
    ps_weight = Cpoint.triggered_weight p;
    ps_pair_intervals = Cpoint.pair_intervals p;
  }

(* Build (or re-arm, under a context) the per-run machine state for the
   given inputs and their precomputed golden outcomes. *)
let acquire ?ctx cfg inputs outcomes =
  let n = Array.length inputs in
  match ctx with
  | None ->
      let reg = Cpoint.create cfg in
      let ms = Memsys.create cfg reg ~cores:n in
      let cores =
        Array.init n (fun i ->
            Core_model.create cfg reg ms ~core_id:i ~outcome:outcomes.(i)
              ~secret_range:inputs.(i).secret_range ~drives_window:(i = 0))
      in
      (reg, ms, cores, None)
  | Some ctx ->
      if not (Ctx.config ctx == cfg || Ctx.config ctx = cfg) then
        invalid_arg "Machine.run: ctx was created for a different config";
      let sl = Ctx.slot ctx ~cores:n in
      let cores =
        match sl.Ctx.s_cores with
        | Some cores ->
            Array.iteri
              (fun i c ->
                Core_model.prepare c ~outcome:outcomes.(i)
                  ~secret_range:inputs.(i).secret_range)
              cores;
            cores
        | None ->
            let cores =
              Array.init n (fun i ->
                  Core_model.create cfg sl.Ctx.s_reg sl.Ctx.s_ms ~core_id:i
                    ~outcome:outcomes.(i)
                    ~secret_range:inputs.(i).secret_range
                    ~drives_window:(i = 0))
            in
            sl.Ctx.s_cores <- Some cores;
            cores
      in
      (sl.Ctx.s_reg, sl.Ctx.s_ms, cores, Some sl)

let sim_loop reg ms cores ~from ~max_cycles =
  let cycle = ref from in
  let all_done () =
    Array.for_all Core_model.finished cores && not (Memsys.busy ms)
  in
  while (not (all_done ())) && !cycle < max_cycles do
    Cpoint.set_cycle reg !cycle;
    Array.iter (fun c -> Core_model.step c ~cycle:!cycle) cores;
    Memsys.tick ms ~cycle:!cycle;
    incr cycle
  done;
  !cycle

let collect reg cores ~cycles ~max_cycles =
  {
    cores =
      Array.map
        (fun c ->
          {
            commits = Core_model.commits c;
            transient_executed = Core_model.transient_executed c;
          })
        cores;
    cycles;
    snapshots = Cpoint.snapshots reg;
    window = Cpoint.window_bounds reg;
    point_stats = List.map point_stat (Cpoint.points reg);
    hit_cycle_limit = cycles >= max_cycles;
  }

let check_core_count n name =
  if n < 1 || n > 2 then invalid_arg (name ^ ": 1 or 2 cores")

let run ?(max_cycles = default_max_cycles) ?ctx cfg inputs =
  check_core_count (Array.length inputs) "Machine.run";
  let outcomes =
    Array.map (fun input -> Sonar_isa.Golden.run input.program) inputs
  in
  let reg, ms, cores, _slot = acquire ?ctx cfg inputs outcomes in
  let cycles = sim_loop reg ms cores ~from:0 ~max_cycles in
  collect reg cores ~cycles ~max_cycles

let run_single ?max_cycles ?(secret_range = None) cfg program =
  run ?max_cycles cfg [| { program; secret_range } |]

(* --- Prefix-checkpointed dual runs --- *)

(* Cap a fork bound at the smallest position whose transient continuation
   differs between the outcomes or exists under only one secret —
   consuming a faulting position switches fetch to its transient
   continuation within the same cycle, and transient uops carry no trace
   position, so a checkpoint cannot re-point them afterwards.  Structural
   comparison of whole continuations (values included): transient uops do
   reach issue, where values are read. *)
let cap_at_transient_divergence (o0 : Sonar_isa.Golden.outcome)
    (o1 : Sonar_isa.Golden.outcome) bound =
  let fork = ref bound in
  List.iter
    (fun (pos, cont0) ->
      if pos < !fork then
        match List.assoc_opt pos o1.transients with
        | Some cont1 -> if not (cont0 = cont1) then fork := pos
        | None -> fork := pos)
    o0.transients;
  List.iter
    (fun ((pos : int), _) ->
      if pos < !fork && not (List.mem_assoc pos o0.transients) then fork := pos)
    o1.transients;
  !fork

(* The {e value} fork: the first architectural trace position at which the
   two runs' golden effects differ at all — the longest common prefix of
   the golden traces (structural comparison covers pc, instruction,
   writeback value, memory effect, branch direction and fault), capped at
   transient divergence.  A uop at or past this position must not reach
   issue before the checkpoint is captured (issue reads values); it
   {e may} be fetched and dispatched, where nothing reads values —
   restore re-points such uops at the other run's trace.  The bound is
   exclusive.  Physically shared outcomes (same program, see [run_dual])
   place no constraint at all. *)
let fork_position (o0 : Sonar_isa.Golden.outcome) (o1 : Sonar_isa.Golden.outcome)
    =
  if o0 == o1 then max_int
  else begin
    let t0 = o0.trace and t1 = o1.trace in
    let n = min (Array.length t0) (Array.length t1) in
    let lcp = ref n in
    (try
       for i = 0 to n - 1 do
         if not (t0.(i) = t1.(i)) then begin
           lcp := i;
           raise Exit
         end
       done
     with Exit -> ());
    cap_at_transient_divergence o0 o1 !lcp
  end

(* Equality on every effect field the front end can read: [wb] and [mem]
   are the written-back / loaded-or-stored values, which no stage before
   issue inspects, so they are excluded. *)
let fetch_visible_equal (a : Sonar_isa.Golden.effect)
    (b : Sonar_isa.Golden.effect) =
  a.Sonar_isa.Golden.seq = b.Sonar_isa.Golden.seq
  && a.index = b.index && a.pc = b.pc && a.instr = b.instr
  && a.taken = b.taken && a.fault = b.fault && a.transient = b.transient

(* The {e fetch} fork: the first architectural trace position whose
   fetch-visible fields differ between the runs (or where one trace ends),
   ≥ [fork_issue] since positions below it are fully equal.  Fetch must
   not consume this position before the checkpoint is captured — the
   front end reads pc / instruction / branch direction / fault at fetch
   time — but positions in [fork_issue, fork_fetch) differ only in values
   and may be fetched freely.  Two adjustments: an indirect jump ([Jalr])
   fetched at [d - 1] predicts through position [d]'s pc (or through its
   absence at trace end), so the bound pulls back to the jump; and the
   same transient cap as [fork_position] applies, since a faulting
   position's continuation is consumed by fetch in the same cycle. *)
let fork_fetch_position (o0 : Sonar_isa.Golden.outcome)
    (o1 : Sonar_isa.Golden.outcome) ~fork_issue =
  if o0 == o1 then max_int
  else begin
    let t0 = o0.trace and t1 = o1.trace in
    let n = min (Array.length t0) (Array.length t1) in
    (* Equal-length traces with no fetch-visible difference place no
       fetch constraint at all; the end-of-trace bound [n] matters only
       when one run keeps fetching where the other stops. *)
    let d = ref (if Array.length t0 = Array.length t1 then max_int else n) in
    (try
       for i = fork_issue to n - 1 do
         if not (fetch_visible_equal t0.(i) t1.(i)) then begin
           d := i;
           raise Exit
         end
       done
     with Exit -> ());
    (if !d >= 1 && (!d < n || Array.length t0 <> Array.length t1) then
       match t0.(!d - 1).Sonar_isa.Golden.instr with
       | Sonar_isa.Instr.Jalr _ -> d := !d - 1
       | _ -> ());
    cap_at_transient_divergence o0 o1 !d
  end

(* The {e execution} fork: the first position whose backend-read fields
   differ — memory address, or operand magnitude for mul/div (see
   [Core_model.exec_visible_equal]).  A uop at or past this position must
   not reach issue before the capture.  Positions in [fork_issue,
   fork_exec) diverge only in fields the timing model never reads (loaded
   or stored data, ALU results): uops from them may issue, complete and
   commit before the capture, behaving cycle-identically under both
   secrets — restore re-points their effect records wherever they ended
   up, commit log included.  Same transient cap as the other forks:
   transient uops read values at issue and cannot be re-pointed. *)
let fork_exec_position cfg (o0 : Sonar_isa.Golden.outcome)
    (o1 : Sonar_isa.Golden.outcome) ~fork_issue =
  if o0 == o1 then max_int
  else begin
    let t0 = o0.trace and t1 = o1.trace in
    let n = min (Array.length t0) (Array.length t1) in
    (* As for the fetch fork: positions past the shorter trace's end are
       constrained through the fetch arm, so equal-length traces with no
       backend-read difference place no ROB constraint. *)
    let d = ref (if Array.length t0 = Array.length t1 then max_int else n) in
    (try
       for i = fork_issue to n - 1 do
         if not (Core_model.exec_visible_equal cfg t0.(i) t1.(i)) then begin
           d := i;
           raise Exit
         end
       done
     with Exit -> ());
    cap_at_transient_divergence o0 o1 !d
  end

let run_dual ?(max_cycles = default_max_cycles) ?ctx ?(checkpoint = true) cfg
    inputs0 inputs1 =
  let n = Array.length inputs0 in
  check_core_count n "Machine.run_dual";
  if Array.length inputs1 <> n then
    invalid_arg "Machine.run_dual: core count mismatch";
  let outcomes0 =
    Array.map (fun (i : core_input) -> Sonar_isa.Golden.run i.program) inputs0
  in
  (* A core whose program is unchanged across secrets (the attacker in the
     Figure 4b template) reuses run 0's golden outcome physically — the
     golden half of the per-run reuse, and the marker [fork_position] uses
     to lift the fork constraint for that core. *)
  let outcomes1 =
    Array.mapi
      (fun i (input : core_input) ->
        if input.program = inputs0.(i).program then outcomes0.(i)
        else Sonar_isa.Golden.run input.program)
      inputs1
  in
  let run_full inputs outcomes =
    let reg, ms, cores, _slot = acquire ?ctx cfg inputs outcomes in
    let cycles = sim_loop reg ms cores ~from:0 ~max_cycles in
    collect reg cores ~cycles ~max_cycles
  in
  (* Checkpointing forks the taint pipeline too, so it requires identical
     secret ranges per core; with differing ranges (never the case for
     materialized testcases) fall back to two full runs. *)
  let viable =
    checkpoint
    && Array.for_all2
         (fun (a : core_input) (b : core_input) ->
           a.secret_range = b.secret_range)
         inputs0 inputs1
  in
  if not viable then begin
    let r0 = run_full inputs0 outcomes0 in
    let r1 = run_full inputs1 outcomes1 in
    (r0, r1, { fork_cycle = None; cycles_saved = 0 })
  end
  else begin
    let forks =
      Array.init n (fun i -> fork_position outcomes0.(i) outcomes1.(i))
    in
    let forks_fetch =
      Array.init n (fun i ->
          fork_fetch_position outcomes0.(i) outcomes1.(i)
            ~fork_issue:forks.(i))
    in
    let forks_exec =
      Array.init n (fun i ->
          fork_exec_position cfg outcomes0.(i) outcomes1.(i)
            ~fork_issue:forks.(i))
    in
    let reg, ms, cores, slot = acquire ?ctx cfg inputs0 outcomes0 in
    let fresh_kbufs () =
      {
        Ctx.k_reg = Cpoint.make_save reg;
        k_ms = Memsys.make_save ms;
        k_cores = Array.map (fun _ -> Core_model.make_save ()) cores;
      }
    in
    let kbufs =
      match slot with
      | Some sl -> (
          match sl.Ctx.s_kbufs with
          | Some k -> k
          | None ->
              let k = fresh_kbufs () in
              sl.Ctx.s_kbufs <- Some k;
              k)
      | None -> fresh_kbufs ()
    in
    (* Run 0, capturing the machine state at the top of the first cycle
       in which a divergent position could reach a stage that reads its
       divergence: fetch must stay below the fetch-visible fork, and no
       ROB uop at or past the execution fork may become readable — a
       divergent store as soon as it dispatches (younger loads search
       store addresses), a divergent load or mul/div once its operands
       could be ready for its own issue.  Up to that cycle both runs
       are cycle-for-cycle identical except for the effect records of
       value-divergent uops (fetch buffer, ROB, store buffer, commit
       log), none of which has been read — restore re-points them at
       run 1's trace. *)
    let captured = ref (-1) in
    let cycle = ref 0 in
    let all_done () =
      Array.for_all Core_model.finished cores && not (Memsys.busy ms)
    in
    let must_capture () =
      let rec go i =
        i < n
        && (Core_model.fetch_bound cores.(i) ~cycle:!cycle > forks_fetch.(i)
           || Core_model.rob_issue_reaches cores.(i) ~fork:forks_exec.(i)
                ~cycle:!cycle
           || go (i + 1))
      in
      go 0
    in
    while (not (all_done ())) && !cycle < max_cycles do
      if !captured < 0 && must_capture () then begin
        Cpoint.capture reg kbufs.Ctx.k_reg;
        Memsys.capture ms kbufs.Ctx.k_ms;
        Array.iteri (fun i c -> Core_model.capture c kbufs.Ctx.k_cores.(i)) cores;
        captured := !cycle
      end;
      Cpoint.set_cycle reg !cycle;
      Array.iter (fun c -> Core_model.step c ~cycle:!cycle) cores;
      Memsys.tick ms ~cycle:!cycle;
      incr cycle
    done;
    let r0 = collect reg cores ~cycles:!cycle ~max_cycles in
    (* If the capture test stayed false for the whole of run 0 — no
       divergent field was ever read (a secret whose dependent values are
       never address- or latency-forming), or the budget cut the run short
       of the fork — then run 1 is the same run cycle for cycle.  Capture
       the final state: the resume below has nothing left to simulate and
       run 1 costs only the restore. *)
    if !captured < 0 then begin
      Cpoint.capture reg kbufs.Ctx.k_reg;
      Memsys.capture ms kbufs.Ctx.k_ms;
      Array.iteri (fun i c -> Core_model.capture c kbufs.Ctx.k_cores.(i)) cores;
      captured := !cycle
    end;
    (* Re-arm each core for run 1's golden trace, then overwrite the
       dynamic state with the checkpoint (restore wins on everything it
       saves, including the registry's window state), re-pointing
       value-divergent uop and commit records at the new trace.  Resuming
       at the capture cycle replays exactly what a full run 1 would have
       done from that point. *)
    Array.iteri
      (fun i c ->
        Core_model.prepare c ~outcome:outcomes1.(i)
          ~secret_range:inputs1.(i).secret_range)
      cores;
    Cpoint.restore reg kbufs.Ctx.k_reg;
    Memsys.restore ms kbufs.Ctx.k_ms;
    Array.iteri
      (fun i c -> Core_model.restore ~fork:forks.(i) c kbufs.Ctx.k_cores.(i))
      cores;
    let cycles1 = sim_loop reg ms cores ~from:!captured ~max_cycles in
    let r1 = collect reg cores ~cycles:cycles1 ~max_cycles in
    (r0, r1, { fork_cycle = Some !captured; cycles_saved = !captured })
  end
