open Sonar_isa
open Sonar_uarch

(* A scenario is a secret-independent instruction sequence; only the secret
   bit in memory differs between the two runs, so every timing difference
   the detector reports is caused by the channel under test. [victim_off]
   designates the instruction whose commit-time shift measures the channel;
   the first body instruction (the secret load, identical timing in both
   runs) serves as the baseline. *)
type spec = {
  pre : Instr.t list;
  body : Instr.t list;
  victim_off : int;  (** index into [body] *)
}

type t = {
  id : string;
  dut : string;
  resource : string;
  description : string;
  is_new : bool;
  paper_band : int * int;
  expected_points : string list;
  volatile : bool;
  spec : spec;
}

(* Register conventions shared by the scenarios. *)
let a0 = Reg.of_int 10  (* secret address *)
let t0 = Reg.of_int 5  (* secret value *)
let t1 = Reg.of_int 6
let t2 = Reg.of_int 7
let t3 = Reg.of_int 28
let t4 = Reg.of_int 29
let t5 = Reg.of_int 30  (* cold-region base *)
let t6 = Reg.of_int 31
let s2 = Reg.of_int 18
let s3 = Reg.of_int 19
let s4 = Reg.of_int 20
let s5 = Reg.of_int 21
let _s6 = Reg.of_int 22
let s7 = Reg.of_int 23

let nop = Asm.nop
let ld rd base off = Instr.Load (Instr.LD, rd, base, off)
let sd data base off = Instr.Store (Instr.SD, data, base, off)
let add rd a b = Instr.Rtype (Instr.ADD, rd, a, b)
let addi rd a imm = Instr.Itype (Instr.ADDI, rd, a, imm)
let slli rd a sh = Instr.Itype (Instr.SLLI, rd, a, sh)
let andi rd a imm = Instr.Itype (Instr.ANDI, rd, a, imm)
let div rd a b = Instr.Rtype (Instr.DIV, rd, a, b)
let mul rd a b = Instr.Rtype (Instr.MUL, rd, a, b)
let beqz r off = Instr.Branch (Instr.BEQ, r, Reg.x0, off)
let jal off = Instr.Jal (Reg.x0, off)
let gap n = List.init n (fun _ -> nop)

let cold k = Int64.add Layout.cold_base (Int64.of_int k)

(* Fixed scenario prelude: secret base, cold base, and a warming load of the
   secret's line so branches on the secret resolve quickly and identically
   in both runs. *)
let fixed_pre = Asm.li a0 Layout.secret_addr @ Asm.li t5 Layout.cold_base @ [ ld s2 a0 0 ]

let materialize spec ~secret =
  let prelude = fixed_pre @ spec.pre in
  let lo = List.length prelude in
  let instrs = prelude @ spec.body @ [ Asm.halt ] in
  let hi = lo + List.length spec.body - 1 in
  [|
    {
      Machine.program =
        Program.make ~data:[ (Layout.secret_addr, Int64.of_int secret) ] instrs;
      secret_range = Some (lo, hi);
    };
  |]

let victim_index c = List.length fixed_pre + List.length c.spec.pre + c.spec.victim_off
let baseline_index c = List.length fixed_pre + List.length c.spec.pre

(* The secret load plus a cold-or-warm data access at a 4 KiB stride:
   cold_base+0 is warmed in [pre]; cold_base+4096 stays cold, so secret=1
   turns the access into a miss whose refill occupies the D-channel. *)
let secret_stride_load =
  [ ld t0 a0 0; slli t1 t0 12; add t1 t1 t5; ld t2 t1 0 ]

(* S1: the far jump's ICache refill contends with the (secret-cold) DCache
   read's response on the D-channel; ICache reads win the grant. *)
let s1_spec =
  {
    pre = [ ld t6 t5 0 ];
    body = secret_stride_load @ [ jal (4 * 256) ] @ gap 255 @ [ add t4 t2 t2 ];
    victim_off = 4 + 1 + 255;
  }

(* S2/S14: a secret-gated extra far jump adds a second instruction-fetch
   refill that blocks the one the common path needs. *)
let s2_spec =
  let k1_gap = 253 and k2_gap = 252 in
  (* Body indices: 0 ld, 1 bnez, 2 jal->K2 (secret=0), 3 jal->K1 (secret=1),
     4.. gap, 257 K1's jal->K2, 258.. gap, 510 victim. *)
  {
    pre = [];
    body =
      [
        ld t0 a0 0;
        Instr.Branch (Instr.BNE, t0, Reg.x0, 8);
        jal (4 * 508);  (* secret=0: directly to K2 at index 510 *)
        jal (4 * 254);  (* secret=1: to K1 at index 257 *)
      ]
      @ gap k1_gap
      @ [ jal (4 * 253) ]  (* K1 -> K2 *)
      @ gap k2_gap
      @ [ add t4 t4 t4 ];
    victim_off = 510;
  }

(* S3: the secret-cold DCache read is granted the channel first and its
   8-beat occupancy delays the far jump's ICache refill; the victim does not
   depend on the load, so only the fetch delay shows. *)
let s3_spec =
  {
    pre = [ ld t6 t5 0 ];
    body = secret_stride_load @ [ jal (4 * 256) ] @ gap 255 @ [ add t4 t4 t4 ];
    victim_off = 4 + 1 + 255;
  }

(* S4: two DCache reads in flight (two MSHRs); their responses serialise on
   the D-channel, delaying the younger one by the transfer beats. *)
let s4_spec =
  {
    pre = [ ld t6 t5 0 ] @ Asm.li s4 (cold 8256);
    body =
      [
        ld t0 a0 0;
        ld t2 s4 0;  (* older victim load: always cold, set 1 *)
        slli t1 t0 12;
        add t1 t1 t5;
        ld t3 t1 0;  (* younger load: warm (secret=0) / cold set 0 (secret=1) *)
        jal (4 * 252);  (* far fetch keeps the channel busy while both
                           responses become ready; the grant tie then goes
                           to the younger transfer *)
      ]
      @ gap 251
      @ [ add t4 t2 t2 ];
    victim_off = 1;  (* the older load itself: older than every
                        secret-modulated event, so in-order commit cannot
                        pollute its timing *)
  }

(* S5: MSHR false-sharing path blocking — when the secret maps the first
   miss into the same set (with a different tag) as the second, the second
   is refused until the first retires. *)
let s5_spec =
  {
    pre = Asm.li s4 (cold 4096);
    body =
      [
        ld t0 a0 0;
        slli t1 t0 7;  (* secret=0: set 0 (conflict); secret=1: set 2 *)
        add t1 t1 t5;
        ld t2 t1 0;
        ld t3 s4 0;  (* set 0, different tag *)
        add t4 t3 t3;
      ];
    victim_off = 4;
  }

(* S6: a secret-gated younger load to the same missing line is served from
   the read line buffer first, pushing the older load's data back. *)
let s6_spec =
  {
    pre = Asm.li s4 (cold 2048);
    body =
      [
        ld t0 a0 0;
        ld t2 s4 0;  (* older load, cold *)
        beqz t0 8;
        ld t3 s4 8;  (* younger load, same line (secret=1 only) *)
        add t4 t2 t2;
      ];
    victim_off = 1;
  }

(* S7: two dirty victims evicted back-to-back contend for the write line
   buffer; the second fill stalls until the buffer frees. The pre fills
   both sets completely (8 ways) with the dirty line touched first, so the
   conflicting loads evict exactly the dirty LRU ways. *)
let s7_spec =
  (* Set 4 holds two writeback candidates: WA (tag 0, always dirty) and WB
     (tag 1, dirtied only when secret=1). Eight conflicting loads (tags
     2..9) fill the set's free ways and then evict WA and WB back-to-back;
     WB's writeback finds the write line buffer still draining WA's, so the
     final fill pays the buffer wait — but only when WB was dirty. *)
  let conflicts =
    List.concat
      (List.init 8 (fun k ->
           Asm.li t6 (cold (0x100 + (4096 * (k + 2)))) @ [ ld t4 t6 0 ]))
  in
  {
    pre =
      Asm.li s4 (cold 0x100)
      @ [ ld s7 s4 0; sd s2 s4 0 ]  (* WA: dirty, LRU *)
      @ Asm.li s5 (cold (0x100 + 4096))
      @ [ ld s7 s5 0 ];  (* WB: clean for now *)
    body =
      [
        ld t0 a0 0;
        beqz t0 8;
        sd s2 s5 0;  (* secret=1: dirty WB *)
        ld s7 s5 0;  (* equalise WB's recency in both runs *)
      ]
      @ conflicts
      @ [ add t3 t4 t4 ];
    victim_off = 4 + List.length conflicts;
  }

(* S8: a secret-gated ALU burst saturates the shared response ports while
   the divide tries to write back; ALU responses win the arbitration. *)
let s8_spec =
  let burst = 12 in
  {
    pre = [];
    body =
      [
        ld t0 a0 0;
        Instr.Lui (t1, 0x7FFF);
        addi t3 Reg.x0 3;
        div t2 t1 t3;
        beqz t0 (4 * (burst + 1));
      ]
      @ List.init burst (fun _ -> add t4 t4 t4)
      @ [ add t6 t2 t2 ];
    victim_off = 3;
  }

(* S9: the younger divide's operand (an earlier cold load) arrives first, so
   it enters the unpipelined divider ahead of the older divide, whose
   operand comes back a few cycles later; the older divide then waits the
   full division latency. *)
let s9_spec =
  {
    pre = [];
    body =
      [
        ld t0 a0 0;
        ld t2 t5 0;  (* operand of the (gated) blocking divide: cold line A *)
        ld t3 t5 4096;  (* operand of the victim divide: cold line B, later *)
        addi s3 Reg.x0 3;
        beqz t0 8;
        div t4 t1 t2;  (* secret=1: occupies the divider for ~60 cycles *)
        div t6 t3 s3;  (* victim divide *)
        add s7 t6 t6;
      ];
    victim_off = 6;
  }

(* S10: the store-conditional dirties its line regardless of success; the
   eighth conflicting load must evict it, paying the dirty-writeback cost. *)
let s10_spec =
  let conflicts =
    List.concat
      (List.init 8 (fun k ->
           Asm.li t6 (cold (0x200 + (4096 * (k + 1)))) @ [ ld t4 t6 0 ]))
  in
  {
    pre = Asm.li s4 (cold 0x200) @ [ ld s7 s4 0 ];  (* W present, clean *)
    body =
      ([
         ld t0 a0 0;
         beqz t0 12;
         Instr.Lr_d (t3, s4);
         Instr.Sc_d (t2, t3, s4);  (* secret=1: W dirtied *)
       ]
      @ conflicts
      @ [ add s7 t4 t4 ]);
    victim_off = 4 + List.length conflicts;
  }

(* S11: the older load's address resolves slowly (cold load feeding a
   divide); the secret-gated younger load to the same line executes first
   and fills it, turning the older load's miss into a hit. *)
let s11_spec =
  {
    pre = Asm.li s4 (cold 0x300) @ [ addi s3 Reg.x0 3 ];
    body =
      [
        ld t0 a0 0;
        ld t2 t5 0;  (* slow producer *)
        div t1 t2 s3;  (* stretch the dependency past the younger's fill *)
        andi t3 t1 0;
        add t3 t3 s4;
        ld t6 t3 0;  (* older load, slow address *)
        beqz t0 8;
        ld t4 s4 0;  (* younger load (secret=1): executes first, fills line *)
        add s7 t6 t6;
      ];
    victim_off = 5;
  }

(* S12: the secret-gated younger load's fill evicts exactly the line the
   older (slowly-addressed) load needs, costing it a second miss. *)
let s12_spec =
  let set_off = 0x380 in
  {
    pre =
      List.concat
        (List.init 8 (fun k ->
             Asm.li t6 (cold (set_off + (4096 * k))) @ [ ld s7 t6 0 ]))
      @ Asm.li s4 (cold set_off)  (* older load's line = way 0 (LRU) *)
      @ Asm.li s5 (cold (set_off + (4096 * 8)))  (* tag 8: the evictor *)
      @ [ addi s3 Reg.x0 3 ];
    body =
      [
        ld t0 a0 0;
        ld t2 t5 0;  (* slow producer *)
        div t1 t2 s3;
        andi t3 t1 0;
        add t3 t3 s4;
        ld t6 t3 0;  (* older load, slow address *)
        beqz t0 8;
        ld t4 s5 0;  (* younger load (secret=1): executes first, evicts way 0 *)
        add s7 t6 t6;
      ];
    victim_off = 5;
  }

(* S13 (NutShell): like S9, on the unified non-pipelined MDU — a gated
   younger multiply occupies it while the older divide waits. *)
let s13_spec =
  {
    pre = [];
    body =
      [
        ld t0 a0 0;
        ld t2 t5 0;  (* shared operand: both MDU ops become ready together *)
        addi s3 Reg.x0 3;
        beqz t0 8;
        mul t4 t2 t2;  (* secret=1: occupies the non-pipelined MDU *)
        div t6 t2 s3;  (* victim divide, blocked while the MDU is busy *)
        add s7 t6 t6;
      ];
    victim_off = 5;
  }

let all =
  [
    {
      id = "S1";
      dut = "boom";
      resource = "TileLink";
      description =
        "The younger ICache read instruction blocks the older DCache \
         read/writeback instruction due to TileLink D-Channel contention.";
      is_new = true;
      paper_band = (40, 40);
      expected_points = [ "tilelink.d_channel" ];
      volatile = true;
      spec = s1_spec;
    };
    {
      id = "S2";
      dut = "boom";
      resource = "TileLink";
      description =
        "The younger ICache read instruction blocks the older ICache \
         read/writeback instruction due to TileLink D-Channel contention.";
      is_new = true;
      paper_band = (32, 37);
      expected_points = [ "tilelink.d_channel" ];
      volatile = true;
      spec = s2_spec;
    };
    {
      id = "S3";
      dut = "boom";
      resource = "TileLink";
      description =
        "Due to TileLink D-Channel contention, the younger DCache read \
         instruction blocks the older ICache read/writeback instruction.";
      is_new = true;
      paper_band = (1, 38);
      expected_points = [ "tilelink.d_channel" ];
      volatile = true;
      spec = s3_spec;
    };
    {
      id = "S4";
      dut = "boom";
      resource = "TileLink";
      description =
        "Due to TileLink D-Channel contention, the younger DCache read \
         instruction blocks the older DCache read/writeback instruction.";
      is_new = true;
      paper_band = (9, 9);
      expected_points = [ "tilelink.d_channel" ];
      volatile = true;
      spec = s4_spec;
    };
    {
      id = "S5";
      dut = "boom";
      resource = "MSHR";
      description =
        "The younger load instruction occupies an MSHR and blocks the older \
         one because their addresses have the same set index but different \
         tags.";
      is_new = true;
      paper_band = (40, 40);
      expected_points = [ "c0.mshr.alloc" ];
      volatile = true;
      spec = s5_spec;
    };
    {
      id = "S6";
      dut = "boom";
      resource = "LineBuffer";
      description =
        "When a younger and an older load instruction access the read \
         linebuffer simultaneously, the younger one is prioritized, delaying \
         the older one.";
      is_new = true;
      paper_band = (9, 9);
      expected_points = [ "c0.linebuffer.read" ];
      volatile = true;
      spec = s6_spec;
    };
    {
      id = "S7";
      dut = "boom";
      resource = "LineBuffer";
      description =
        "When a younger and an older store instruction access the write \
         linebuffer simultaneously, the younger one is prioritized, delaying \
         the older one.";
      is_new = true;
      paper_band = (2, 8);
      expected_points = [ "c0.linebuffer.write" ];
      volatile = true;
      spec = s7_spec;
    };
    {
      id = "S8";
      dut = "boom";
      resource = "EXE Unit";
      description =
        "When requests from alu, imul, and div simultaneously contend for \
         the response port of the execution unit, the request from alu is \
         prioritized, while others are delayed.";
      is_new = false;
      paper_band = (1, 11);
      expected_points = [ "c0.exec.wb_port" ];
      volatile = true;
      spec = s8_spec;
    };
    {
      id = "S9";
      dut = "boom";
      resource = "Div Unit";
      description =
        "The younger division instruction blocks the older one by entering \
         the execution unit first.";
      is_new = false;
      paper_band = (57, 70);
      expected_points = [ "c0.exec.div_req" ];
      volatile = true;
      spec = s9_spec;
    };
    {
      id = "S10";
      dut = "boom";
      resource = "L1 DCache";
      description =
        "The younger store conditional instruction writes data to cache and \
         marks it dirty regardless of success, delaying older instructions \
         accessing the same cacheline due to the required cache writeback.";
      is_new = false;
      paper_band = (12, 31);
      expected_points = [ "c0.dcache.fill"; "c0.linebuffer.write" ];
      volatile = false;
      spec = s10_spec;
    };
    {
      id = "S11";
      dut = "boom";
      resource = "L1 DCache";
      description =
        "The younger and older instructions access the same cacheline, with \
         the younger instruction executing first, causing the older \
         instruction to hit in the cache and thus be executed faster.";
      is_new = true;
      paper_band = (59, 59);
      expected_points = [ "c0.dcache.fill" ];
      volatile = false;
      spec = s11_spec;
    };
    {
      id = "S12";
      dut = "boom";
      resource = "L1 DCache";
      description =
        "The younger load instruction loads data into the cache and evicts \
         a cacheline that is needed by the older load instruction, causing \
         the older instruction to be delayed.";
      is_new = true;
      paper_band = (18, 18);
      expected_points = [ "c0.dcache.fill" ];
      volatile = false;
      spec = s12_spec;
    };
    {
      id = "S13";
      dut = "nutshell";
      resource = "MDU";
      description =
        "Multiplication and division instructions share the non-pipelined \
         Multiply-Divide Unit; a younger multiplication occupying the MDU \
         blocks the older division.";
      is_new = true;
      paper_band = (4, 63);
      expected_points = [ "c0.mdu.req" ];
      volatile = true;
      spec = s13_spec;
    };
    {
      id = "S14";
      dut = "nutshell";
      resource = "L1 ICache";
      description =
        "Contention on the shared read/write port of the L1 ICache can \
         delay instruction fetches.";
      is_new = true;
      paper_band = (8, 8);
      expected_points = [ "c0.icache.port"; "bus.req" ];
      volatile = true;
      spec = s2_spec;
    };
  ]

let find id = List.find_opt (fun c -> String.equal c.id id) all
let for_dut dut = List.filter (fun c -> String.equal c.dut dut) all
let build c ~secret = materialize c.spec ~secret

type measurement = {
  channel : t;
  time_difference : int;
  in_band : bool;
  points_implicated : bool;
  report : Detector.report;
}

let config_of c =
  match Config.by_name c.dut with
  | Some cfg -> cfg
  | None -> invalid_arg ("unknown DUT " ^ c.dut)

let measure ?max_cycles c =
  let cfg = config_of c in
  let pair = Executor.run_pair ?max_cycles cfg (fun ~secret -> build c ~secret) in
  let report = Detector.detect pair in
  let rows, _ =
    Ccd.align pair.run0.Machine.cores.(0).commits pair.run1.Machine.cores.(0).commits
  in
  let shift_of index =
    List.find_map
      (fun (r : Ccd.aligned) ->
        if r.static_index = index then Some (r.cycle1 - r.cycle0) else None)
      rows
  in
  let time_difference =
    match (shift_of (victim_index c), shift_of (baseline_index c)) with
    | Some v, Some b -> abs (v - b)
    | Some v, None -> abs v
    | None, _ ->
        (* Victim not aligned (diverging traces): fall back to the largest
           commit shift among CCD findings or the run-length delta. *)
        List.fold_left
          (fun acc (f : Detector.finding) -> max acc (abs f.commit_delta))
          (abs report.total_delta) report.findings
  in
  let lo, hi = c.paper_band in
  (* Tolerant band: our substrate is a timing model, not the authors' RTL;
     the effect must exist with the right order of magnitude. S14's scenario
     gates a whole extra fetch hop, whose cost in our model includes full
     miss serialisation on top of the port conflict (see EXPERIMENTS.md). *)
  let hi_mult = match c.id with "S14" -> 16 | _ -> 4 in
  let in_band =
    time_difference >= max 1 (lo / 4) && time_difference <= hi * hi_mult
  in
  let points_implicated =
    List.exists
      (fun (point, _) ->
        List.exists
          (fun expected ->
            String.equal point expected
            || String.length point > String.length expected
               && String.sub point
                    (String.length point - String.length expected)
                    (String.length expected)
                  = expected)
          c.expected_points)
      report.state_diffs
  in
  { channel = c; time_difference; in_band; points_implicated; report }

let json_of_measurement m : Json.t =
  Json.Obj
    [
      ("id", Json.String m.channel.id);
      ("resource", Json.String m.channel.resource);
      ("dut", Json.String m.channel.dut);
      ("new", Json.Bool m.channel.is_new);
      ("time_difference", Json.Int m.time_difference);
      ( "paper_band",
        Json.List
          [ Json.Int (fst m.channel.paper_band); Json.Int (snd m.channel.paper_band) ]
      );
      ("in_band", Json.Bool m.in_band);
      ("points_implicated", Json.Bool m.points_implicated);
      ("ccd_findings", Json.Int (List.length m.report.Detector.findings));
      ("total_delta", Json.Int m.report.Detector.total_delta);
    ]

let pp_measurement fmt m =
  Format.fprintf fmt "%-4s %-10s %-9s delta %4d cycles (paper %d-%d) %s%s"
    m.channel.id m.channel.resource m.channel.dut m.time_difference
    (fst m.channel.paper_band) (snd m.channel.paper_band)
    (if m.in_band then "[band ok]" else "[off band]")
    (if m.points_implicated then " [point implicated]" else " [point missing]")
