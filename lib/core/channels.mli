(** Catalogue of the 14 contention side channels of Table 3.

    Each channel carries a hand-built scenario: a program pair (secret 0/1)
    with identical or near-identical control flow in which the secret
    modulates whether the channel's contention occurs. Running a scenario
    measures the resulting commit-timing difference and checks that the
    dual-differential detector implicates the expected contention point —
    the reproduction of Table 3's "Time Difference" column and of the
    justification methodology (§7.2).

    Scenario construction notes (per channel) live in the implementation;
    the substitutions relative to the paper's RTL experiments are recorded
    in DESIGN.md. *)

type spec = {
  pre : Sonar_isa.Instr.t list;  (** setup: warming, base registers *)
  body : Sonar_isa.Instr.t list;  (** the secret-dependent region *)
  victim_off : int;
      (** index (into [body]) of the instruction whose commit-time shift
          measures the channel *)
}

type t = {
  id : string;  (** "S1" .. "S14" *)
  dut : string;  (** "boom" or "nutshell" *)
  resource : string;
  description : string;
  is_new : bool;  (** newly discovered by Sonar (Table 3's "New?") *)
  paper_band : int * int;  (** the paper's reported cycle difference range *)
  expected_points : string list;
      (** contention points the state differential must implicate *)
  volatile : bool;
  spec : spec;
}

val build : t -> secret:int -> Sonar_uarch.Machine.core_input array
val victim_index : t -> int
(** Static instruction index of the victim in the materialised program. *)

val baseline_index : t -> int

val all : t list
(** S1–S14 in order. *)

val find : string -> t option
val for_dut : string -> t list

type measurement = {
  channel : t;
  time_difference : int;  (** max |commit-cycle delta| over CCD findings *)
  in_band : bool;  (** within (or above the floor of) a tolerant band *)
  points_implicated : bool;
      (** the expected contention point appears in the state differential *)
  report : Detector.report;
}

val measure : ?max_cycles:int -> t -> measurement
(** Run the scenario under both secrets and evaluate it. *)

val pp_measurement : Format.formatter -> measurement -> unit

val json_of_measurement : measurement -> Json.t
(** Stable JSON form (the CLI's [--format json] document; shares the
    {!Json} serialiser with the telemetry trace). *)
