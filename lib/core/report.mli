(** Offline campaign reports (the [sonar report] subcommand).

    Replays a JSONL telemetry trace (written by {!Telemetry.jsonl_file})
    into a self-contained document: campaign summary, coverage-over-
    iterations series, top contention points by minimum observed interval
    (with sparkline histograms), per-component coverage heatmap, merged
    profiling span tree, and CCD finding summaries.

    Building a report is a pure fold over the event stream, so the report
    of a deterministic trace is itself deterministic. Unparseable or
    unknown lines are counted ({!skipped}) rather than fatal — a trace cut
    short by a crash still yields a report of everything before the cut. *)

type t

val of_events : ?source:string -> ?skipped:int -> Telemetry.event list -> t
(** Fold an event stream into a report. [source] labels the report header
    (defaults to ["<events>"]); [skipped] is carried into the summary. *)

val of_lines : ?source:string -> string list -> t
(** Parse each non-blank line as one JSON event document; lines that fail
    to parse or decode count as skipped. *)

val load : string -> (t, string) result
(** Read a JSONL trace file. [Error] only when the file cannot be opened;
    malformed content degrades to skipped lines. *)

val skipped : t -> int
(** Lines of the input that did not decode to a known event. *)

val events : t -> int
(** Events folded into the report. *)

val to_markdown : ?top:int -> t -> string
(** GitHub-flavoured markdown; [top] (default 10) caps the contention-point
    table. *)

val to_html : ?top:int -> t -> string
(** Single-file HTML document (inline CSS, no external assets). *)

val to_json : t -> Json.t
(** Machine-readable sidecar: summary counters, the per-generation series,
    finding records, and the {!Telemetry.Observatory.to_json} snapshot. *)
