(** Offline campaign reports (the [sonar report] subcommand).

    Replays one or more JSONL telemetry traces (written by
    {!Telemetry.jsonl_file} or {!Telemetry.rotating_jsonl}) into a
    self-contained document: campaign summary, coverage-over-iterations
    series, top contention points by minimum observed interval (with
    sparkline histograms), per-component coverage heatmap, merged
    profiling span tree, and CCD finding summaries.

    {b Merging.} Multiple inputs are stitched into campaign streams and
    merged. Rotated segments of one campaign (recognised by the
    [{"resync":true}] state-replay lines {!Telemetry.rotating_jsonl}
    stamps on segment heads) reassemble into exactly the unrotated event
    stream, so their report is byte-identical to the single-trace report.
    Distinct campaigns — per-shard traces, or several [campaign_start]
    headers inside one concatenated file — merge cluster-level: counters
    sum, interval histograms sum per (point, source-pair) key, heatmaps
    sum per component, span trees merge structurally. Reporting the files
    [a b] is byte-identical to reporting their concatenation.

    Building a report is a pure fold over the event stream, so the report
    of a deterministic trace is itself deterministic. Unparseable or
    unknown lines are counted ({!skipped}) rather than fatal — a trace cut
    short by a crash still yields a report of everything before the cut. *)

type t

val of_events : ?source:string -> ?skipped:int -> Telemetry.event list -> t
(** Fold one campaign's event stream into a report. [source] labels the
    report header (defaults to ["<events>"]); [skipped] is carried into
    the summary. *)

val of_lines : ?source:string -> string list -> t
(** Parse each non-blank line as one JSON event document; lines that fail
    to parse or decode count as skipped. Equivalent to {!of_traces} with a
    single input. *)

val of_traces : ?label:string -> (string * string list) list -> t
(** Parse and merge several (source, lines) inputs, in the order given:
    rotation segments reassemble, distinct campaigns merge (see above).
    [label] overrides the source shown in the report header (default: the
    sources joined with [", "]) — pass the same label when comparing a
    merged report against a single-trace report byte-for-byte. *)

val load : string -> (t, string) result
(** Read a JSONL trace file. [Error] only when the file cannot be opened;
    malformed content degrades to skipped lines. *)

val load_many : ?label:string -> string list -> (t, string) result
(** {!of_traces} over files: read every path (in the order given — pass
    rotation segments in segment order, e.g. via a shell glob) and merge.
    [Error] when any file cannot be opened. *)

val skipped : t -> int
(** Lines of the input that did not decode to a known event. *)

val events : t -> int
(** Events folded into the report (state-replay resync lines dropped
    during merging are not counted). *)

val outcome : t -> string option
(** The [campaign_end] outcome: [Some "completed"], [Some "crashed"]
    ([Some "mixed"] across merged shards that disagree), or [None] when
    at least one merged trace has no footer — i.e. the campaign is still
    running or was killed hard. *)

val campaigns : t -> int
(** Distinct campaigns merged into this report (1 for a plain trace or a
    set of rotation segments). *)

val to_markdown : ?top:int -> t -> string
(** GitHub-flavoured markdown; [top] (default 10) caps the contention-point
    table. The header under the title always states the event and
    skipped-line counts. *)

val to_html : ?top:int -> t -> string
(** Single-file HTML document (inline CSS, no external assets). *)

val to_json : t -> Json.t
(** Machine-readable sidecar: summary counters, the per-generation series,
    finding records, and the {!Telemetry.Observatory.to_json} snapshot. *)
