type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing.                                                           *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Deterministic float form: integral values as "n.0", otherwise the
   shortest of %.15g / %.17g that round-trips. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if not (Float.is_finite f) then Buffer.add_string buf "null"
      else Buffer.add_string buf (float_repr f)
  | String s -> escape_string buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string doc =
  let buf = Buffer.create 256 in
  write buf doc;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: recursive descent over the raw string.                     *)

type parser_state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') -> advance st; go ()
    | _ -> ()
  in
  go ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_hex4 st =
  if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
  let s = String.sub st.src st.pos 4 in
  st.pos <- st.pos + 4;
  match int_of_string_opt ("0x" ^ s) with
  | Some v -> v
  | None -> fail st "invalid \\u escape"

let add_utf8 buf cp =
  (* Encode one code point; escapes beyond the BMP are not combined from
     surrogate pairs (each half encodes independently), which is enough for
     the ASCII-dominated documents this module serialises. *)
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st; Buffer.contents buf
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some '"' -> advance st; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance st; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance st; Buffer.add_char buf '/'; go ()
        | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
        | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
        | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
        | Some 'b' -> advance st; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance st; Buffer.add_char buf '\012'; go ()
        | Some 'u' -> advance st; add_utf8 buf (parse_hex4 st); go ()
        | _ -> fail st "invalid escape")
    | Some c -> advance st; Buffer.add_char buf c; go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  let is_float = String.exists (function '.' | 'e' | 'E' -> true | _ -> false) s in
  if is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail st "invalid number"
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> fail st "invalid number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then (advance st; Obj [])
      else begin
        let rec fields acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' -> advance st; fields ((k, v) :: acc)
          | Some '}' -> advance st; Obj (List.rev ((k, v) :: acc))
          | _ -> fail st "expected ',' or '}'"
        in
        fields []
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then (advance st; List [])
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' -> advance st; items (v :: acc)
          | Some ']' -> advance st; List (List.rev (v :: acc))
          | _ -> fail st "expected ',' or ']'"
        in
        items []
      end
  | Some '"' -> String (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected '%c'" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors.                                                          *)

let member key = function
  | Obj fields -> ( match List.assoc_opt key fields with Some v -> v | None -> Null)
  | _ -> Null

let to_int = function
  | Int i -> i
  | _ -> raise (Parse_error "expected an integer")

let to_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | _ -> raise (Parse_error "expected a number")

let to_str = function
  | String s -> s
  | _ -> raise (Parse_error "expected a string")
