type point = string * int

type entry = {
  tc : Testcase.t;
  intervals : (point * int) list;
}

type t = {
  ring : entry option array;  (* capacity max_entries; oldest overwritten *)
  mutable next : int;  (* next write slot *)
  mutable count : int;
  best : (point, int) Hashtbl.t;
  attempts : (point, int) Hashtbl.t;
      (* selections of a target since its best last improved; stuck targets
         (e.g. structurally impossible pairs) lose selection weight *)
}

let create ?(max_entries = 256) () =
  if max_entries < 1 then invalid_arg "Corpus.create: max_entries must be >= 1";
  {
    ring = Array.make max_entries None;
    next = 0;
    count = 0;
    best = Hashtbl.create 64;
    attempts = Hashtbl.create 64;
  }

let size t = t.count

let capacity t = Array.length t.ring

let entries t =
  let cap = capacity t in
  List.init t.count (fun i -> Option.get t.ring.((t.next - 1 - i + (2 * cap)) mod cap))

let add_entry ?emit t e =
  (* Overwriting the slot evicts the oldest entry once the ring is full. *)
  (match (t.ring.(t.next), emit) with
  | Some old, Some emit ->
      emit
        (Telemetry.Corpus_evicted
           { testcase_id = old.tc.Testcase.id; corpus_size = t.count })
  | _ -> ());
  t.ring.(t.next) <- Some e;
  t.next <- (t.next + 1) mod capacity t;
  if t.count < capacity t then t.count <- t.count + 1

let add ?emit t tc ~intervals =
  List.iter
    (fun (point, v) ->
      match Hashtbl.find_opt t.best point with
      | Some best when best <= v -> ()
      | Some _ | None ->
          Hashtbl.replace t.best point v;
          Hashtbl.remove t.attempts point)
    intervals;
  add_entry ?emit t { tc; intervals };
  match emit with
  | Some emit ->
      emit
        (Telemetry.Corpus_retained
           { testcase_id = tc.Testcase.id; corpus_size = t.count })
  | None -> ()

let consider ?emit t tc ~intervals =
  let improves =
    List.exists
      (fun (point, v) ->
        match Hashtbl.find_opt t.best point with
        | Some best -> v < best
        | None -> true)
      intervals
  in
  if improves then begin
    add ?emit t tc ~intervals;
    true
  end
  else false

let select t rng =
  (* Points with smaller non-zero best intervals are more likely to be
     chosen (weighted sampling, §6.2.1 "more likely to be selected"). *)
  let candidates =
    Hashtbl.fold (fun point v acc -> if v > 0 then (point, v) :: acc else acc) t.best []
    |> List.sort compare
  in
  let target =
    match candidates with
    | [] -> None
    | _ ->
        let weight (point, v) =
          let stuck =
            Option.value ~default:0 (Hashtbl.find_opt t.attempts point)
          in
          1. /. (float_of_int ((v * v) + 1) *. (1. +. (float_of_int stuck /. 8.)))
        in
        let total = List.fold_left (fun a c -> a +. weight c) 0. candidates in
        let roll = float_of_int (Rng.int rng 1_000_000) /. 1_000_000. *. total in
        let rec walk acc = function
          | [ last ] -> Some last
          | c :: rest -> if acc +. weight c >= roll then Some c else walk (acc +. weight c) rest
          | [] -> None
        in
        walk 0. candidates
  in
  match target with
  | None -> None
  | Some (point, v) -> (
      Hashtbl.replace t.attempts point
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.attempts point));
      let all = entries t in
      let achievers =
        List.filter
          (fun e ->
            match List.assoc_opt point e.intervals with
            | Some ev -> ev = v
            | None -> false)
          all
      in
      match achievers with
      | [] -> (
          (* Fall back to any seed if bookkeeping and entries diverged
             (e.g. after eviction). *)
          match all with
          | [] -> None
          | es -> Some (Rng.pick rng es, point))
      | es -> Some (Rng.pick rng es, point))

let best_interval t point = Hashtbl.find_opt t.best point
