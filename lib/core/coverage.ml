open Sonar_uarch

type meta = {
  fanout : int;
  pairs : int;
  persistent_slots : int;
  single_valid : bool;
  component : Sonar_ir.Component.t;
}

type t = {
  subs : (string * Cpoint.kind * int, unit) Hashtbl.t;
  pairs_seen : (string * int, unit) Hashtbl.t;
  metas : (string, meta) Hashtbl.t;
  mutable total : float;
  mutable sv_weight : float;
  comp_weight : (Sonar_ir.Component.t, float) Hashtbl.t;
}

let create () =
  {
    subs = Hashtbl.create 1024;
    pairs_seen = Hashtbl.create 256;
    metas = Hashtbl.create 64;
    total = 0.;
    sv_weight = 0.;
    comp_weight = Hashtbl.create 8;
  }

let note_meta t (ps : Machine.point_stat) =
  if not (Hashtbl.mem t.metas ps.ps_name) then begin
    let pairs = max 1 (ps.ps_n_sources * (ps.ps_n_sources - 1) / 2) in
    Hashtbl.replace t.metas ps.ps_name
      {
        fanout = ps.ps_fanout;
        pairs;
        persistent_slots = max 0 (ps.ps_max_subs - (pairs * Cpoint.data_buckets));
        single_valid = ps.ps_single_valid;
        component = ps.ps_component;
      }
  end

(* Fanout shares (see interface). *)
let shares meta =
  if meta.persistent_slots > 0 then (0.4, 0.3, 0.3) else (0.55, 0.45, 0.)

let credit t name meta w =
  t.total <- t.total +. w;
  if meta.single_valid then t.sv_weight <- t.sv_weight +. w;
  let cur = Option.value ~default:0. (Hashtbl.find_opt t.comp_weight meta.component) in
  Hashtbl.replace t.comp_weight meta.component (cur +. w);
  ignore name

let absorb_run t (r : Machine.result) =
  let added = ref 0. in
  List.iter
    (fun (ps : Machine.point_stat) ->
      note_meta t ps;
      let meta = Hashtbl.find t.metas ps.ps_name in
      let pair_share, bucket_share, persist_share = shares meta in
      let fanout = float_of_int meta.fanout in
      List.iter
        (fun (kind, sub) ->
          let key = (ps.ps_name, kind, sub) in
          if not (Hashtbl.mem t.subs key) then begin
            Hashtbl.replace t.subs key ();
            let w =
              match kind with
              | Cpoint.Volatile ->
                  let pair = sub / Cpoint.data_buckets in
                  let bucket_w =
                    bucket_share *. fanout
                    /. float_of_int (meta.pairs * Cpoint.data_buckets)
                  in
                  if Hashtbl.mem t.pairs_seen (ps.ps_name, pair) then bucket_w
                  else begin
                    Hashtbl.replace t.pairs_seen (ps.ps_name, pair) ();
                    bucket_w +. (pair_share *. fanout /. float_of_int meta.pairs)
                  end
              | Cpoint.Persistent ->
                  persist_share *. fanout
                  /. float_of_int (max 1 meta.persistent_slots)
            in
            credit t ps.ps_name meta w;
            added := !added +. w
          end)
        ps.ps_triggered)
    r.point_stats;
  !added

let add_pair t (pair : Executor.pair) =
  absorb_run t pair.run0 +. absorb_run t pair.run1

let total t = t.total
let distinct_subs t = Hashtbl.length t.subs
let single_valid_weight t = if t.total = 0. then 0. else t.sv_weight /. t.total

let per_component t =
  List.map
    (fun c -> (c, Option.value ~default:0. (Hashtbl.find_opt t.comp_weight c)))
    Sonar_ir.Component.all

let add_pair_delta t (pair : Executor.pair) =
  let before = per_component t in
  let added = add_pair t pair in
  let delta =
    List.map2
      (fun (c, b) (_, a) -> (Sonar_ir.Component.to_string c, a -. b))
      before (per_component t)
    |> List.filter (fun (_, d) -> d > 0.)
  in
  (added, delta)

let heatmap t =
  List.map
    (fun (c, w) -> (Sonar_ir.Component.to_string c, w))
    (per_component t)
