(* Power-of-two bucketed integer histograms for contention intervals.

   Bucket 0 holds the value 0; bucket k (k >= 1) holds [2^(k-1), 2^k - 1].
   63 buckets cover every non-negative OCaml int, so [add] never clips.
   Counts are exact integers and accumulation is order-independent, which
   keeps every derived trace event deterministic. *)

let max_buckets = 64

type t = {
  mutable total : int;
  mutable min_v : int;
  mutable max_v : int;
  counts : int array;
}

let create () =
  { total = 0; min_v = max_int; max_v = min_int; counts = Array.make max_buckets 0 }

let copy h = { h with counts = Array.copy h.counts }

let bucket_of v =
  if v <= 0 then 0
  else begin
    (* 1 + floor(log2 v): the number of significant bits of v. *)
    let b = ref 0 and v = ref v in
    while !v > 0 do
      incr b;
      v := !v lsr 1
    done;
    !b
  end

let bucket_range k =
  if k <= 0 then (0, 0) else (1 lsl (k - 1), (1 lsl k) - 1)

let add h v =
  let v = max 0 v in
  h.total <- h.total + 1;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v;
  let b = bucket_of v in
  h.counts.(b) <- h.counts.(b) + 1

let total h = h.total
let min_value h = if h.total = 0 then None else Some h.min_v
let max_value h = if h.total = 0 then None else Some h.max_v

let counts h =
  let acc = ref [] in
  for b = max_buckets - 1 downto 0 do
    if h.counts.(b) > 0 then acc := (b, h.counts.(b)) :: !acc
  done;
  !acc

let of_counts ~min_value ~max_value buckets =
  let h = create () in
  List.iter
    (fun (b, c) ->
      if b >= 0 && b < max_buckets && c > 0 then begin
        h.counts.(b) <- h.counts.(b) + c;
        h.total <- h.total + c
      end)
    buckets;
  if h.total > 0 then begin
    h.min_v <- min_value;
    h.max_v <- max_value
  end;
  h

let merge a b =
  let h = copy a in
  Array.iteri (fun i c -> h.counts.(i) <- h.counts.(i) + c) b.counts;
  h.total <- a.total + b.total;
  if b.total > 0 then begin
    if b.min_v < h.min_v then h.min_v <- b.min_v;
    if b.max_v > h.max_v then h.max_v <- b.max_v
  end;
  h

(* Eight-level unicode bars over the populated bucket range, scaled to the
   fullest bucket; empty buckets inside the range render as spaces so gaps
   in the distribution stay visible. *)
let spark_levels = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                      "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                      "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline h =
  match counts h with
  | [] -> ""
  | nonzero ->
      let lo = fst (List.hd nonzero) in
      let hi = List.fold_left (fun a (b, _) -> max a b) lo nonzero in
      let peak = List.fold_left (fun a (_, c) -> max a c) 1 nonzero in
      let buf = Buffer.create (hi - lo + 1) in
      for b = lo to hi do
        let c = h.counts.(b) in
        if c = 0 then Buffer.add_char buf ' '
        else
          let level = (c * (Array.length spark_levels - 1) + peak - 1) / peak in
          Buffer.add_string buf spark_levels.(min level (Array.length spark_levels - 1))
      done;
      Buffer.contents buf

let to_json h : Json.t =
  Json.Obj
    [
      ("total", Json.Int h.total);
      ("min", if h.total = 0 then Json.Null else Json.Int h.min_v);
      ("max", if h.total = 0 then Json.Null else Json.Int h.max_v);
      ( "buckets",
        Json.List
          (List.map
             (fun (b, c) -> Json.List [ Json.Int b; Json.Int c ])
             (counts h)) );
    ]

let of_json doc =
  let open Json in
  try
    let buckets =
      match member "buckets" doc with
      | List items ->
          List.map
            (function
              | List [ Int b; Int c ] -> (b, c)
              | _ -> raise (Parse_error "bad bucket"))
            items
      | _ -> raise (Parse_error "buckets must be a list")
    in
    let min_value = match member "min" doc with Int i -> i | _ -> 0 in
    let max_value = match member "max" doc with Int i -> i | _ -> 0 in
    Some (of_counts ~min_value ~max_value buckets)
  with Parse_error _ -> None

(* ------------------------------------------------------------------ *)
(* Registry: keyed histograms with incremental dirty tracking, so the
   fuzzer can flush only the (point, source-pair) distributions touched
   during the generation that just folded. *)

type key = string * int

type registry = {
  table : (key, t) Hashtbl.t;
  dirty : (key, unit) Hashtbl.t;
}

let registry () = { table = Hashtbl.create 256; dirty = Hashtbl.create 64 }

let observe r ~point ~src_pair v =
  let key = (point, src_pair) in
  let h =
    match Hashtbl.find_opt r.table key with
    | Some h -> h
    | None ->
        let h = create () in
        Hashtbl.add r.table key h;
        h
  in
  add h v;
  Hashtbl.replace r.dirty key ()

let compare_key (na, pa) (nb, pb) =
  match String.compare na nb with 0 -> Int.compare pa pb | c -> c

let sorted_of_table table =
  Hashtbl.fold (fun k h acc -> ((k, h) :: acc)) table []
  |> List.sort (fun (a, _) (b, _) -> compare_key a b)

let to_list r = sorted_of_table r.table

let drain_dirty r =
  let keys = Hashtbl.fold (fun k () acc -> k :: acc) r.dirty [] in
  Hashtbl.reset r.dirty;
  List.sort compare_key keys
  |> List.map (fun k -> (k, Hashtbl.find r.table k))
