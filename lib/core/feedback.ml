type target = Corpus.point * int option

type operator = Composite | Directed | Random_edit | Similarity

let operator_name = function
  | Composite -> "composite"
  | Directed -> "directed"
  | Random_edit -> "random_edit"
  | Similarity -> "similarity"

type selection = {
  entry : Corpus.entry;
  target : target option;
  op : operator;
}

type observation = {
  iteration : int;
  testcase : Testcase.t;
  pair : Executor.pair;
  intervals : (Corpus.point * int) list;
  triggered : ((string * Sonar_uarch.Cpoint.kind * int) * float) list;
  coverage_added : float;
  coverage_total : float;
  component_delta : (string * float) list;
  report : Detector.report;
  target : target option;
  op : operator option;
}

type campaign = {
  corpus : Corpus.t;
  mstate : Mutation.state;
  emit : (Telemetry.event -> unit) option;
  mutate_ratio : float;
}

type t = {
  name : string;
  description : string;
  mutate_ratio : float;
  directed_mutation : bool;
  select : campaign -> Rng.t -> selection option;
  consider : campaign -> Testcase.t -> observation -> bool;
  reward : campaign -> observation -> unit;
}

(* ------------------------------------------------------------------ *)
(* The seed policy family (legacy strategy booleans).                  *)

type flags = {
  retention : bool;
  selection : bool;
  directed_mutation : bool;
}

(* Directed-mutation feedback: did the chased interval shrink? Shared by
   every strategy whose selections carry a target. *)
let directed_reward (c : campaign) (obs : observation) =
  match obs.target with
  | None -> ()
  | Some (point, before) ->
      let after = List.assoc_opt point obs.intervals in
      let improved =
        match (before, after) with
        | Some b, Some a -> a < b
        | None, Some _ -> true
        | _, None -> false
      in
      let dir_before = c.mstate.Mutation.dir in
      Mutation.feedback c.mstate ~improved;
      (match c.emit with
      | Some emit when c.mstate.Mutation.dir <> dir_before ->
          emit
            (Telemetry.Mutation_flip
               {
                 iteration = obs.iteration;
                 direction =
                   (match c.mstate.Mutation.dir with
                   | Mutation.Grow -> "grow"
                   | Mutation.Shrink -> "shrink");
               })
      | Some _ | None -> ())

let of_flags ?name ?description ?(mutate_ratio = 0.8) (f : flags) =
  let name =
    match name with
    | Some n -> n
    | None ->
        Printf.sprintf "flags:%c%c%c"
          (if f.retention then 'r' else '-')
          (if f.selection then 's' else '-')
          (if f.directed_mutation then 'd' else '-')
  in
  let description =
    match description with
    | Some d -> d
    | None -> "seed policy family (legacy strategy booleans)"
  in
  (* The draw sequence below is the historical fuzzer's, verbatim: the
     seed-determinism tests assert bit-identical outcomes through it. *)
  let select (c : campaign) rng =
    if f.selection then
      match Corpus.select c.corpus rng with
      | Some (entry, point) when Rng.chance rng 0.75 ->
          Some
            {
              entry;
              target = Some (point, Corpus.best_interval c.corpus point);
              op = Composite;
            }
      | Some _ | None -> None
    else if
      f.retention && Corpus.size c.corpus > 0
      && Rng.chance rng c.mutate_ratio
    then
      (* Retention without selection: mutate a random seed. *)
      match Corpus.select c.corpus rng with
      | Some (entry, _) -> Some { entry; target = None; op = Composite }
      | None -> None
    else None
  in
  let consider (c : campaign) tc (obs : observation) =
    if f.retention then
      Corpus.consider ?emit:c.emit c.corpus tc ~intervals:obs.intervals
    else false
  in
  {
    name;
    description;
    mutate_ratio;
    directed_mutation = f.directed_mutation;
    select;
    consider;
    reward = directed_reward;
  }

let sonar =
  of_flags ~name:"sonar"
    ~description:
      "the paper's policy: min-interval retention, interval-weighted \
       selection, adaptive directed mutation (the reference)"
    { retention = true; selection = true; directed_mutation = true }

let random =
  of_flags ~name:"random"
    ~description:
      "blind baseline: a fresh random testcase every iteration, nothing \
       retained (Figure 8's comparison)"
    { retention = false; selection = false; directed_mutation = false }

(* ------------------------------------------------------------------ *)
(* Competitor strategies.                                              *)

(* Uniform seed selection shared by the coverage-guided competitors: with
   probability [mutate_ratio], mutate a uniformly random corpus entry. *)
let uniform_select op (c : campaign) rng =
  if Corpus.size c.corpus > 0 && Rng.chance rng c.mutate_ratio then
    Some { entry = Rng.pick rng (Corpus.entries c.corpus); target = None; op }
  else None

let timing_coverage () =
  (* WhisperFuzz-style: the novelty domain is (point, source pair,
     power-of-two interval bucket) cells — "timing coverage" — plus
     per-component heatmap weight. *)
  let seen : (Corpus.point * int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let consider (c : campaign) tc (obs : observation) =
    let cell (point, v) = (point, Histogram.bucket_of v) in
    (* Novelty is judged against the pre-observation set, then every cell
       is marked, so the verdict is insensitive to list order. *)
    let novel_cell =
      List.exists (fun iv -> not (Hashtbl.mem seen (cell iv))) obs.intervals
    in
    List.iter (fun iv -> Hashtbl.replace seen (cell iv) ()) obs.intervals;
    if novel_cell || obs.component_delta <> [] then begin
      Corpus.add ?emit:c.emit c.corpus tc ~intervals:obs.intervals;
      true
    end
    else false
  in
  {
    name = "timing-coverage";
    description =
      "WhisperFuzz-style: retain on new (point, pair, interval-bucket) \
       timing-coverage cells or new heatmap weight; uniform selection";
    mutate_ratio = 0.8;
    directed_mutation = false;
    select = uniform_select Composite;
    consider;
    reward = (fun _ _ -> ());
  }

let state_transition () =
  (* ProcessorFuzz-style: the novelty domain is consecutive commit-label
     transitions in the golden trace. A label is coarse on purpose —
     instruction class x (branch taken) x (faulted) x (transient) — so
     the transition space saturates at a rate the corpus can follow. *)
  let seen : ((int * bool * bool * bool) * (int * bool * bool * bool), unit)
      Hashtbl.t =
    Hashtbl.create 1024
  in
  let instr_class i =
    let open Sonar_isa in
    if Instr.uses_mul_div i then 0
    else if Instr.is_load i then 1
    else if Instr.is_store i then 2
    else if Instr.is_branch i then 3
    else 4
  in
  let label (e : Sonar_isa.Golden.effect) =
    (instr_class e.instr, e.taken = Some true, e.fault <> None, e.transient)
  in
  let consider (c : campaign) tc (obs : observation) =
    let novel = ref false in
    let walk_core (core : Sonar_uarch.Machine.core_result) =
      let rec pairs = function
        | (a : Sonar_uarch.Core_model.commit_record)
          :: ((b : Sonar_uarch.Core_model.commit_record) :: _ as rest) ->
            let key = (label a.c_eff, label b.c_eff) in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.replace seen key ();
              novel := true
            end;
            pairs rest
        | _ -> ()
      in
      pairs core.commits
    in
    Array.iter walk_core obs.pair.Executor.run0.Sonar_uarch.Machine.cores;
    Array.iter walk_core obs.pair.Executor.run1.Sonar_uarch.Machine.cores;
    if !novel then begin
      Corpus.add ?emit:c.emit c.corpus tc ~intervals:obs.intervals;
      true
    end
    else false
  in
  {
    name = "state-transition";
    description =
      "ProcessorFuzz-style: retain on novel consecutive commit-label \
       transitions in the golden trace; uniform selection";
    mutate_ratio = 0.8;
    directed_mutation = false;
    select = uniform_select Composite;
    consider;
    reward = (fun _ _ -> ());
  }

let bandit () =
  (* ReFuzz-style contextual epsilon-greedy bandit: context = the seed's
     secret flavor, arms = the four mutation operators, payoff = coverage
     added plus a bonus per CCD finding. All randomness flows through the
     per-candidate rng, and statistics update in fold order, so campaigns
     stay bit-identical across jobs and chunk. *)
  let ops = [| Composite; Directed; Random_edit; Similarity |] in
  let n_arms = Array.length ops in
  let n_ctx = 4 in
  let counts = Array.make_matrix n_ctx n_arms 0 in
  let sums = Array.make_matrix n_ctx n_arms 0. in
  let flavor_class (tc : Testcase.t) =
    match tc.Testcase.flavor with
    | Testcase.Neutral -> 0
    | Testcase.Stride _ -> 1
    | Testcase.Latency _ -> 2
    | Testcase.Gated _ -> 3
  in
  let arm_of = function
    | Composite -> 0
    | Directed -> 1
    | Random_edit -> 2
    | Similarity -> 3
  in
  (* Unvisited arms score +inf (each gets explored once per context);
     ties break toward the lowest arm index, deterministically. *)
  let best_arm ctx =
    let best = ref 0 and best_v = ref neg_infinity in
    for a = 0 to n_arms - 1 do
      let v =
        if counts.(ctx).(a) = 0 then infinity
        else sums.(ctx).(a) /. float_of_int counts.(ctx).(a)
      in
      if v > !best_v then begin
        best := a;
        best_v := v
      end
    done;
    !best
  in
  let select (c : campaign) rng =
    if Corpus.size c.corpus > 0 && Rng.chance rng c.mutate_ratio then begin
      let entry = Rng.pick rng (Corpus.entries c.corpus) in
      let ctx = flavor_class entry.Corpus.tc in
      let arm =
        if Rng.chance rng 0.2 then Rng.int rng n_arms else best_arm ctx
      in
      Some { entry; target = None; op = ops.(arm) }
    end
    else None
  in
  let reward _c (obs : observation) =
    match obs.op with
    | None -> ()
    | Some op ->
        let ctx = flavor_class obs.testcase in
        let a = arm_of op in
        counts.(ctx).(a) <- counts.(ctx).(a) + 1;
        sums.(ctx).(a) <-
          sums.(ctx).(a) +. obs.coverage_added
          +. (5. *. float_of_int (List.length obs.report.Detector.findings))
  in
  let consider (c : campaign) tc (obs : observation) =
    if Corpus.consider ?emit:c.emit c.corpus tc ~intervals:obs.intervals then
      true
    else if obs.coverage_added > 0. then begin
      (* Coverage-bearing testcases feed the arm statistics even when they
         do not improve any interval. *)
      Corpus.add ?emit:c.emit c.corpus tc ~intervals:obs.intervals;
      true
    end
    else false
  in
  {
    name = "bandit";
    description =
      "ReFuzz-style contextual bandit: epsilon-greedy over mutation \
       operators, context = seed flavor, payoff = coverage + findings";
    mutate_ratio = 0.8;
    directed_mutation = true;
    select;
    consider;
    reward;
  }

(* ------------------------------------------------------------------ *)
(* Registry.                                                           *)

let builders =
  [
    ("sonar", fun () -> sonar);
    ("random", fun () -> random);
    ("timing-coverage", timing_coverage);
    ("state-transition", state_transition);
    ("bandit", bandit);
  ]

let names = List.map fst builders

let all = List.map (fun (name, build) -> (name, (build ()).description)) builders

let create name =
  match List.assoc_opt name builders with
  | Some build -> Some (build ())
  | None -> None
