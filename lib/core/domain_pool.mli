(** A fixed pool of {!Domain.t} workers with future-returning submission.

    The pool backs every parallel stage of the pipeline: the executor fans
    the two secret-runs of a testcase pair across it, the fuzzer executes a
    whole generation of candidates on it, and the bench harness runs
    independent per-DUT computations on it concurrently.

    Scheduling is work-stealing-lite: tasks go through one shared queue, and
    {!await} {e helps} — while the awaited future is pending it pops and
    runs queued tasks itself instead of blocking. This keeps nested
    submission (a pooled task that itself submits and awaits subtasks)
    deadlock-free and lets the submitting domain contribute a full worker's
    throughput during fork-join phases.

    Determinism: the pool only affects {e when} a task runs, never its
    inputs; all Sonar tasks are pure functions of their arguments (the
    machine model allocates all mutable state per run), so results are
    independent of worker count and scheduling order. *)

type t

val default_jobs : unit -> int
(** Pool size used when none is given: [SONAR_JOBS] if set to a positive
    integer, else {!Domain.recommended_domain_count}. Always at least 1. *)

val create : ?jobs:int -> unit -> t
(** Spawn a pool of [jobs] worker domains (default {!default_jobs},
    clamped to at least 1). *)

val jobs : t -> int

val shutdown : t -> unit
(** Finish queued tasks, join all workers. Idempotent. Submitting to a
    shut-down pool raises [Invalid_argument]. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run the function, [shutdown] (also on exception). *)

type 'a future

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task; it runs on some worker (or inside an {!await}). *)

val await : 'a future -> 'a
(** Block until the future completes, helping to run queued tasks in the
    meantime. Re-raises the task's exception (with its backtrace) if it
    failed. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map]: submit one task per element, await in order. *)

(** {2 Worker-local storage}

    Scratch state a task can reuse across the tasks that happen to run on
    the same domain — e.g. the executor's per-worker {!Sonar_uarch.Machine.Ctx}
    run contexts, which keep the simulation hot loop from re-allocating
    cache and contention-point tables on every testcase. Values are
    per-domain (the helping {!await} means the submitting domain can also
    run tasks, and gets its own value), initialised lazily on first {!get}.

    Determinism caveat: worker-local values persist across tasks, so a task
    must never let them influence its {e result} — only its speed. Reused
    contexts are reset to cold start at acquisition and tested to be
    bit-identical to fresh ones. *)

type 'a key

val create_key : (unit -> 'a) -> 'a key
(** [create_key init] declares a worker-local slot; each domain that calls
    {!get} materialises its own value with [init] on first access. *)

val get : 'a key -> 'a
(** This domain's value for [key], created with the key's initialiser on
    first access. Usable from pool workers and ordinary domains alike. *)

val run_on_each : t -> (unit -> unit) -> unit
(** Run [f] exactly once on every worker domain of the pool and wait for
    all of them — e.g. to eagerly initialise worker-local state before a
    timed section. Blocks until every worker has run [f]; do not call it
    while long-running tasks are still queued (the barrier waits for every
    worker to become available). *)
