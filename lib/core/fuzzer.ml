type strategy = Feedback.t

let full_strategy = Feedback.sonar
let random_strategy = Feedback.random

type series_point = {
  iteration : int;
  coverage : float;
  timing_diffs : int;
  corpus_size : int;
}

type outcome = {
  series : series_point list;
  final_coverage : float;
  final_timing_diffs : int;
  testcases_with_diffs : int;
  contentions_triggered_testcases : int;
  single_valid_share_first20 : float;
  reports : (int * Detector.report) list;
  cycles_simulated : int;
  cycles_saved : int;
  checkpoint_hits : int;
}

(* Sized for the compiled engine: one testcase is cheap enough that
   feedback at a finer granularity buys nothing, while a larger generation
   gives the chunked parallel executor full slices to hand each worker. *)
let default_batch = 64

module Options = struct
  type t = {
    seed : int64;
    dual : bool;
    max_cycles : int option;
    jobs : int;
    batch : int;
    chunk : int option;
    checkpoint : bool;
    sinks : Telemetry.sink list;
  }

  let default =
    {
      seed = 1L;
      dual = false;
      max_cycles = None;
      jobs = 1;
      batch = default_batch;
      chunk = None;
      checkpoint = true;
      sinks = [];
    }
end

(* A generated candidate awaiting execution: its iteration number, the
   directed-mutation target captured at generation time (pre-mutation best
   interval included), the operator that produced it (None = fresh), and
   the testcase itself. *)
type candidate = {
  cand_iteration : int;
  cand_target : Feedback.target option;
  cand_op : Feedback.operator option;
  cand_tc : Testcase.t;
}

let apply_operator rng mstate ~directed_enabled op tc =
  match (op : Feedback.operator) with
  | Feedback.Composite -> Mutation.mutate rng mstate ~directed_enabled tc
  | Feedback.Directed -> Mutation.directed rng mstate tc
  | Feedback.Random_edit -> Mutation.random_edit rng tc
  | Feedback.Similarity -> Mutation.enhance_similarity rng tc

let run ?(options = Options.default) cfg (strategy : Feedback.t) ~iterations =
  let { Options.seed; dual; max_cycles; jobs; batch; chunk; checkpoint; sinks }
      =
    options
  in
  if batch < 1 then invalid_arg "Fuzzer.run: batch must be >= 1";
  if jobs < 1 then invalid_arg "Fuzzer.run: jobs must be >= 1";
  (match chunk with
  | Some c when c < 1 -> invalid_arg "Fuzzer.run: chunk must be >= 1"
  | Some _ | None -> ());
  (* With no sinks, no event is ever constructed: the telemetry layer costs
     nothing on the hot path and the outcome is bit-identical to a run that
     predates it (asserted in the tests). *)
  let telemetry_on = sinks <> [] in
  let emit ev = Telemetry.emit_all sinks ev in
  let emit_opt = if telemetry_on then Some emit else None in
  (* Observatory state: per-(point, source-pair) interval histograms filled
     by the executor, flushed as interval_histogram events at each
     generation end. Profiling spans bracket the pipeline stages; both are
     created only when someone is listening. *)
  let hists = if telemetry_on then Some (Telemetry.Histogram.registry ()) else None in
  let span =
    if telemetry_on then
      let recorder = Telemetry.Span.recorder emit in
      fun name -> Telemetry.Span.enter recorder name
    else fun _ () -> ()
  in
  let rng = Rng.create seed in
  let corpus = Corpus.create () in
  let mstate = Mutation.create_state () in
  let coverage = Coverage.create () in
  let timing_diffs = ref 0 in
  let tcs_with_diffs = ref 0 in
  let tcs_with_contention = ref 0 in
  let cycles_simulated = ref 0 in
  let cycles_saved = ref 0 in
  let checkpoint_hits = ref 0 in
  let series = ref [] in
  let reports = ref [] in
  let sv_weight_20 = ref 0. and total_weight_20 = ref 0. in
  (* Campaign context handed to every strategy hook. The strategy's
     mutate-vs-generate ratio is resolved once here, so a record update on
     a preset ([{ Feedback.sonar with mutate_ratio = 0.5 }]) genuinely
     tunes the campaign. *)
  let campaign =
    {
      Feedback.corpus;
      mstate;
      emit = emit_opt;
      mutate_ratio = strategy.Feedback.mutate_ratio;
    }
  in
  (* Generation phase: draw one candidate, sequentially, against the corpus
     and strategy state as of the previous generation. Every candidate gets
     its own split RNG stream, so the draw depends only on the (seed,
     iteration-order) prefix — never on worker count or scheduling. *)
  let generate iteration =
    let crng = Rng.split rng in
    match strategy.Feedback.select campaign crng with
    | Some sel ->
        let tc =
          apply_operator crng mstate
            ~directed_enabled:strategy.Feedback.directed_mutation
            sel.Feedback.op sel.Feedback.entry.Corpus.tc
        in
        {
          cand_iteration = iteration;
          cand_target = sel.Feedback.target;
          cand_op = Some sel.Feedback.op;
          cand_tc = tc;
        }
    | None ->
        {
          cand_iteration = iteration;
          cand_target = None;
          cand_op = None;
          cand_tc = Testcase.random crng ~id:iteration ~dual;
        }
  in
  (* Fold phase: absorb one executed candidate. Runs sequentially in
     candidate order, so coverage / corpus / detector / mutation-feedback
     updates — and the telemetry events they emit — are identical for every
     worker count. *)
  let fold cand pair =
    let iteration = cand.cand_iteration in
    let saved = pair.Executor.cp.Sonar_uarch.Machine.cycles_saved in
    cycles_simulated :=
      !cycles_simulated
      + pair.Executor.run0.Sonar_uarch.Machine.cycles
      + pair.Executor.run1.Sonar_uarch.Machine.cycles
      - saved;
    cycles_saved := !cycles_saved + saved;
    if saved > 0 then incr checkpoint_hits;
    let intervals = Executor.min_intervals pair in
    let added, component_delta = Coverage.add_pair_delta coverage pair in
    if added > 0. then begin
      incr tcs_with_contention;
      if telemetry_on then
        emit
          (Telemetry.Contention_triggered
             { iteration; added; coverage = Coverage.total coverage })
    end;
    if iteration = 20 then begin
      total_weight_20 := Coverage.total coverage;
      sv_weight_20 := Coverage.single_valid_weight coverage *. !total_weight_20
    end;
    let report = Detector.detect pair in
    let n_findings = List.length report.Detector.findings in
    if n_findings > 0 then begin
      timing_diffs := !timing_diffs + n_findings;
      incr tcs_with_diffs;
      reports := (iteration, report) :: !reports;
      if telemetry_on then
        emit
          (Telemetry.Ccd_finding
             {
               iteration;
               findings = n_findings;
               total_delta = report.Detector.total_delta;
             })
    end;
    (* Strategy hooks, in the order the legacy fold emitted its events:
       reward (directed-mutation feedback / learner updates, which may
       emit Mutation_flip) before consider (retention, which may emit
       Corpus_evicted / Corpus_retained). *)
    let obs =
      {
        Feedback.iteration;
        testcase = cand.cand_tc;
        pair;
        intervals;
        triggered = Executor.triggered pair;
        coverage_added = added;
        coverage_total = Coverage.total coverage;
        component_delta;
        report;
        target = cand.cand_target;
        op = cand.cand_op;
      }
    in
    strategy.Feedback.reward campaign obs;
    ignore (strategy.Feedback.consider campaign cand.cand_tc obs);
    series :=
      {
        iteration;
        coverage = Coverage.total coverage;
        timing_diffs = !timing_diffs;
        corpus_size = Corpus.size corpus;
      }
      :: !series
  in
  let now () = if telemetry_on then Unix.gettimeofday () else 0. in
  let campaign_t0 = now () in
  let iteration = ref 0 in
  (* The trace footer, emitted exactly once however the campaign ends, so a
     partial trace is machine-distinguishable from a completed one. On the
     crash path each sink gets its own guarded emit — a sink may itself be
     what crashed the campaign. *)
  let campaign_end outcome =
    Telemetry.Campaign_end
      {
        outcome;
        iterations_done = !iteration;
        coverage = Coverage.total coverage;
        timing_diffs = !timing_diffs;
        corpus_size = Corpus.size corpus;
        wall_seconds = Some (now () -. campaign_t0);
      }
  in
  let run_generations pool =
    let end_campaign = span "campaign" in
    let generation = ref 0 in
    while !iteration < iterations do
      incr generation;
      let k = min batch (iterations - !iteration) in
      if telemetry_on then
        emit
          (Telemetry.Generation_start
             {
               generation = !generation;
               first_iteration = !iteration + 1;
               size = k;
             });
      let end_generation = span "generation" in
      let sim_before = !cycles_simulated in
      let saved_before = !cycles_saved in
      let hits_before = !checkpoint_hits in
      let t0 = now () in
      let end_generate = span "generate" in
      let candidates = List.init k (fun j -> generate (!iteration + j + 1)) in
      end_generate ();
      let t1 = now () in
      let end_execute = span "execute" in
      let pairs =
        Executor.execute_batch ?max_cycles ?pool ?chunk ~checkpoint
          ?emit:emit_opt ?hists cfg
          (List.map (fun c -> c.cand_tc) candidates)
      in
      end_execute ();
      let t2 = now () in
      let end_feedback = span "feedback" in
      List.iter2 fold candidates pairs;
      end_feedback ();
      iteration := !iteration + k;
      if telemetry_on then begin
        let t3 = now () in
        let timing phase seconds =
          emit (Telemetry.Phase_timing { generation = !generation; phase; seconds })
        in
        timing Telemetry.Generate (t1 -. t0);
        timing Telemetry.Execute (t2 -. t1);
        timing Telemetry.Feedback (t3 -. t2);
        emit
          (Telemetry.Checkpoint_stats
             {
               generation = !generation;
               testcases = k;
               hits = !checkpoint_hits - hits_before;
               cycles_saved = !cycles_saved - saved_before;
               cycles_simulated = !cycles_simulated - sim_before;
             });
        Option.iter
          (fun reg ->
            Telemetry.flush_histograms reg ~generation:!generation emit)
          hists;
        emit
          (Telemetry.Coverage_heatmap
             { generation = !generation; components = Coverage.heatmap coverage });
        emit
          (Telemetry.Generation_end
             {
               generation = !generation;
               iterations_done = !iteration;
               coverage = Coverage.total coverage;
               timing_diffs = !timing_diffs;
               corpus_size = Corpus.size corpus;
             })
      end;
      end_generation ()
    done;
    end_campaign ()
  in
  (* Trace header: the outcome-determining campaign inputs. Emitted before
     any generation, and never the wall-clock knobs (jobs/chunk/checkpoint)
     — traces stay byte-identical across those. *)
  if telemetry_on then
    emit
      (Telemetry.Campaign_start
         { strategy = strategy.Feedback.name; seed; iterations; batch; dual });
  (* Exception safety: a crashing DUT (or sink) must still leave attached
     trace files flushed and parseable, so close every sink before
     re-raising. On the success path sinks stay open — callers may keep
     streaming into them (and [Telemetry.close] is idempotent anyway). *)
  (try
     if jobs > 1 then
       Domain_pool.with_pool ~jobs (fun pool -> run_generations (Some pool))
     else run_generations None;
     if telemetry_on then emit (campaign_end "completed")
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     if telemetry_on then begin
       let footer = campaign_end "crashed" in
       List.iter (fun s -> try s.Telemetry.emit footer with _ -> ()) sinks
     end;
     List.iter (fun s -> try Telemetry.close s with _ -> ()) sinks;
     Printexc.raise_with_backtrace e bt);
  {
    series = List.rev !series;
    final_coverage = Coverage.total coverage;
    final_timing_diffs = !timing_diffs;
    testcases_with_diffs = !tcs_with_diffs;
    contentions_triggered_testcases = !tcs_with_contention;
    single_valid_share_first20 =
      (if !total_weight_20 = 0. then 0. else !sv_weight_20 /. !total_weight_20);
    reports = List.rev !reports;
    cycles_simulated = !cycles_simulated;
    cycles_saved = !cycles_saved;
    checkpoint_hits = !checkpoint_hits;
  }

let json_of_outcome o : Json.t =
  Json.Obj
    [
      ("final_coverage", Json.Float o.final_coverage);
      ("final_timing_diffs", Json.Int o.final_timing_diffs);
      ("testcases_with_diffs", Json.Int o.testcases_with_diffs);
      ( "contentions_triggered_testcases",
        Json.Int o.contentions_triggered_testcases );
      ("single_valid_share_first20", Json.Float o.single_valid_share_first20);
      ("cycles_simulated", Json.Int o.cycles_simulated);
      ("cycles_saved", Json.Int o.cycles_saved);
      ("checkpoint_hits", Json.Int o.checkpoint_hits);
      ( "findings",
        Json.List
          (List.map
             (fun (iteration, (r : Detector.report)) ->
               Json.Obj
                 [
                   ("iteration", Json.Int iteration);
                   ("findings", Json.Int (List.length r.Detector.findings));
                   ("raw_timing_diffs", Json.Int r.raw_timing_diffs);
                   ("total_delta", Json.Int r.total_delta);
                   ("diverged", Json.Bool r.diverged);
                 ])
             o.reports) );
    ]
