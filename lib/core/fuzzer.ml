type strategy = {
  retention : bool;
  selection : bool;
  directed_mutation : bool;
}

let full_strategy = { retention = true; selection = true; directed_mutation = true }
let random_strategy = { retention = false; selection = false; directed_mutation = false }

type series_point = {
  iteration : int;
  coverage : float;
  timing_diffs : int;
  corpus_size : int;
}

type outcome = {
  series : series_point list;
  final_coverage : float;
  final_timing_diffs : int;
  testcases_with_diffs : int;
  contentions_triggered_testcases : int;
  single_valid_share_first20 : float;
  reports : (int * Detector.report) list;
}

let default_batch = 8

(* A generated candidate awaiting execution: its iteration number, the
   directed-mutation target captured at generation time (pre-mutation best
   interval included), and the testcase itself. *)
type candidate = {
  cand_iteration : int;
  cand_target : (Corpus.point * int option) option;
  cand_tc : Testcase.t;
}

let run ?(seed = 1L) ?(dual = false) ?max_cycles ?(jobs = 1) ?(batch = default_batch)
    cfg strategy ~iterations =
  if batch < 1 then invalid_arg "Fuzzer.run: batch must be >= 1";
  let rng = Rng.create seed in
  let corpus = Corpus.create () in
  let mstate = Mutation.create_state () in
  let coverage = Coverage.create () in
  let timing_diffs = ref 0 in
  let tcs_with_diffs = ref 0 in
  let tcs_with_contention = ref 0 in
  let series = ref [] in
  let reports = ref [] in
  let sv_weight_20 = ref 0. and total_weight_20 = ref 0. in
  (* Generation phase: draw one candidate, sequentially, against the corpus
     and mutation state as of the previous generation. Every candidate gets
     its own split RNG stream, so the draw depends only on the (seed,
     iteration-order) prefix — never on worker count or scheduling. *)
  let generate iteration =
    let crng = Rng.split rng in
    let fresh () = Testcase.random crng ~id:iteration ~dual in
    if strategy.selection then begin
      match Corpus.select corpus crng with
      | Some (entry, point) when Rng.chance crng 0.75 ->
          let tc =
            Mutation.mutate crng mstate
              ~directed_enabled:strategy.directed_mutation entry.tc
          in
          {
            cand_iteration = iteration;
            cand_target = Some (point, Corpus.best_interval corpus point);
            cand_tc = tc;
          }
      | Some _ | None ->
          { cand_iteration = iteration; cand_target = None; cand_tc = fresh () }
    end
    else if strategy.retention && Corpus.size corpus > 0 && Rng.chance crng 0.8
    then begin
      (* Retention without selection: mutate a random seed. *)
      let tc =
        match Corpus.select corpus crng with
        | Some (entry, _) ->
            Mutation.mutate crng mstate
              ~directed_enabled:strategy.directed_mutation entry.tc
        | None -> fresh ()
      in
      { cand_iteration = iteration; cand_target = None; cand_tc = tc }
    end
    else { cand_iteration = iteration; cand_target = None; cand_tc = fresh () }
  in
  (* Fold phase: absorb one executed candidate. Runs sequentially in
     candidate order, so coverage / corpus / detector / mutation-feedback
     updates are identical for every worker count. *)
  let fold cand pair =
    let iteration = cand.cand_iteration in
    let intervals = Executor.min_intervals pair in
    let added = Coverage.add_pair coverage pair in
    if added > 0. then incr tcs_with_contention;
    if iteration = 20 then begin
      total_weight_20 := Coverage.total coverage;
      sv_weight_20 := Coverage.single_valid_weight coverage *. !total_weight_20
    end;
    let report = Detector.detect pair in
    let n_findings = List.length report.Detector.findings in
    if n_findings > 0 then begin
      timing_diffs := !timing_diffs + n_findings;
      incr tcs_with_diffs;
      reports := (iteration, report) :: !reports
    end;
    (* Directed-mutation feedback: did the target interval shrink? *)
    (match cand.cand_target with
    | Some (point, before) ->
        let after = List.assoc_opt point intervals in
        let improved =
          match (before, after) with
          | Some b, Some a -> a < b
          | None, Some _ -> true
          | _, None -> false
        in
        Mutation.feedback mstate ~improved
    | None -> ());
    if strategy.retention then ignore (Corpus.consider corpus cand.cand_tc ~intervals);
    series :=
      {
        iteration;
        coverage = Coverage.total coverage;
        timing_diffs = !timing_diffs;
        corpus_size = Corpus.size corpus;
      }
      :: !series
  in
  let run_generations pool =
    let iteration = ref 0 in
    while !iteration < iterations do
      let k = min batch (iterations - !iteration) in
      let candidates = List.init k (fun j -> generate (!iteration + j + 1)) in
      let pairs =
        Executor.execute_batch ?max_cycles ?pool cfg
          (List.map (fun c -> c.cand_tc) candidates)
      in
      List.iter2 fold candidates pairs;
      iteration := !iteration + k
    done
  in
  if jobs > 1 then
    Domain_pool.with_pool ~jobs (fun pool -> run_generations (Some pool))
  else run_generations None;
  {
    series = List.rev !series;
    final_coverage = Coverage.total coverage;
    final_timing_diffs = !timing_diffs;
    testcases_with_diffs = !tcs_with_diffs;
    contentions_triggered_testcases = !tcs_with_contention;
    single_valid_share_first20 =
      (if !total_weight_20 = 0. then 0. else !sv_weight_20 /. !total_weight_20);
    reports = List.rev !reports;
  }
