open Sonar_uarch

type pair = {
  run0 : Machine.result;
  run1 : Machine.result;
}

let run_pair ?max_cycles cfg build =
  {
    run0 = Machine.run ?max_cycles cfg (build ~secret:0);
    run1 = Machine.run ?max_cycles cfg (build ~secret:1);
  }

let execute ?max_cycles cfg tc =
  run_pair ?max_cycles cfg (fun ~secret -> Testcase.materialize tc ~secret)

let execute_batch ?max_cycles ?pool cfg tcs =
  match pool with
  | None -> List.map (execute ?max_cycles cfg) tcs
  | Some pool ->
      (* Fan both secret-runs of every testcase across the pool, then
         assemble pairs in submission order. [Machine.run] allocates all of
         its mutable state (cores, memsys, cpoint registries) per call, so
         the runs are independent; see domain_pool.mli. *)
      let futures =
        List.map
          (fun tc ->
            let run secret () =
              Machine.run ?max_cycles cfg (Testcase.materialize tc ~secret)
            in
            (Domain_pool.submit pool (run 0), Domain_pool.submit pool (run 1)))
          tcs
      in
      List.map
        (fun (f0, f1) ->
          { run0 = Domain_pool.await f0; run1 = Domain_pool.await f1 })
        futures

let min_opt a b =
  match (a, b) with
  | Some x, Some y -> Some (min x y)
  | (Some _ as s), None | None, (Some _ as s) -> s
  | None, None -> None

let min_intervals pair =
  (* Keyed per (point, source pair); tuple keys avoid allocating a
     formatted string per interval per run on the fuzzer's hot path. *)
  let table = Hashtbl.create 64 in
  let absorb (r : Machine.result) =
    List.iter
      (fun (ps : Machine.point_stat) ->
        List.iter
          (fun (pair_id, v) ->
            let key = (ps.ps_name, pair_id) in
            match min_opt (Hashtbl.find_opt table key) (Some v) with
            | Some v -> Hashtbl.replace table key v
            | None -> ())
          ps.ps_pair_intervals)
      r.point_stats
  in
  absorb pair.run0;
  absorb pair.run1;
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) table [] |> List.sort compare

let triggered pair =
  let table = Hashtbl.create 64 in
  let absorb (r : Machine.result) =
    List.iter
      (fun (ps : Machine.point_stat) ->
        let w = float_of_int ps.ps_fanout /. float_of_int ps.ps_max_subs in
        List.iter
          (fun (kind, sub) ->
            Hashtbl.replace table (ps.ps_name, kind, sub) w)
          ps.ps_triggered)
      r.point_stats
  in
  absorb pair.run0;
  absorb pair.run1;
  Hashtbl.fold (fun k w acc -> (k, w) :: acc) table [] |> List.sort compare

let single_valid_share pair =
  let single = Hashtbl.create 32 in
  List.iter
    (fun (ps : Machine.point_stat) ->
      if ps.ps_single_valid then Hashtbl.replace single ps.ps_name ())
    pair.run0.point_stats;
  let total = ref 0. and sv = ref 0. in
  List.iter
    (fun (((name, _, _) : string * Cpoint.kind * int), w) ->
      total := !total +. w;
      if Hashtbl.mem single name then sv := !sv +. w)
    (triggered pair);
  if !total = 0. then 0. else !sv /. !total
