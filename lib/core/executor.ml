open Sonar_uarch

type pair = {
  run0 : Machine.result;
  run1 : Machine.result;
}

let run_pair ?max_cycles cfg build =
  {
    run0 = Machine.run ?max_cycles cfg (build ~secret:0);
    run1 = Machine.run ?max_cycles cfg (build ~secret:1);
  }

let executed_event tc pair =
  Telemetry.Testcase_executed
    {
      testcase_id = tc.Testcase.id;
      cycles0 = pair.run0.Machine.cycles;
      cycles1 = pair.run1.Machine.cycles;
    }

let execute ?max_cycles ?emit cfg tc =
  let pair =
    run_pair ?max_cycles cfg (fun ~secret -> Testcase.materialize tc ~secret)
  in
  (match emit with Some emit -> emit (executed_event tc pair) | None -> ());
  pair

(* Monomorphic comparator for the sorted [min_intervals] output below. The
   ordering is identical to polymorphic [compare] on the same tuples
   (byte-lexicographic strings), but dispatches directly; table keys are
   unique, so comparing the keys alone is a total order on the entries. *)
let compare_interval ((na, pa), _) ((nb, pb), _) =
  match String.compare na nb with 0 -> Int.compare pa pb | c -> c

let min_intervals pair =
  (* Keyed per (point, source pair); tuple keys avoid allocating a
     formatted string per interval per run on the fuzzer's hot path. The
     table is pre-sized to the interval count so absorption never rehashes. *)
  let size (r : Machine.result) =
    List.fold_left
      (fun a (ps : Machine.point_stat) -> a + List.length ps.ps_pair_intervals)
      0 r.point_stats
  in
  let table = Hashtbl.create (max 16 (size pair.run0 + size pair.run1)) in
  let absorb (r : Machine.result) =
    List.iter
      (fun (ps : Machine.point_stat) ->
        let name = ps.ps_name in
        List.iter
          (fun (pair_id, v) ->
            let key = (name, pair_id) in
            match Hashtbl.find_opt table key with
            | Some m when m <= v -> ()
            | Some _ | None -> Hashtbl.replace table key v)
          ps.ps_pair_intervals)
      r.point_stats
  in
  absorb pair.run0;
  absorb pair.run1;
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) table []
  |> List.sort compare_interval

let observe_intervals hists pair =
  List.iter
    (fun ((point, src_pair), v) ->
      Telemetry.Histogram.observe hists ~point ~src_pair v)
    (min_intervals pair)

let execute_batch ?max_cycles ?pool ?emit ?hists cfg tcs =
  let observe pair =
    match hists with Some h -> observe_intervals h pair | None -> ()
  in
  match pool with
  | None ->
      List.map
        (fun tc ->
          let pair = execute ?max_cycles ?emit cfg tc in
          observe pair;
          pair)
        tcs
  | Some pool ->
      (* Fan both secret-runs of every testcase across the pool, then
         assemble pairs in submission order. [Machine.run] allocates all of
         its mutable state (cores, memsys, cpoint registries) per call, so
         the runs are independent; see domain_pool.mli. Telemetry is only
         ever emitted here, on the awaiting domain, per candidate in
         submission order — never from a worker — so traces are identical
         to the sequential path's. *)
      let futures =
        List.map
          (fun tc ->
            let run secret () =
              Machine.run ?max_cycles cfg (Testcase.materialize tc ~secret)
            in
            (tc, Domain_pool.submit pool (run 0), Domain_pool.submit pool (run 1)))
          tcs
      in
      List.map
        (fun (tc, f0, f1) ->
          let pair =
            { run0 = Domain_pool.await f0; run1 = Domain_pool.await f1 }
          in
          (match emit with
          | Some emit -> emit (executed_event tc pair)
          | None -> ());
          observe pair;
          pair)
        futures

(* Monomorphic comparator for [triggered]: identical ordering to polymorphic
   [compare] on the same tuples (byte-lexicographic strings, constructor
   order for [Cpoint.kind]), but dispatches directly; table keys are unique,
   so comparing the keys alone is a total order on the entries. *)
let kind_rank = function Cpoint.Volatile -> 0 | Cpoint.Persistent -> 1

let compare_triggered ((na, ka, sa), _) ((nb, kb, sb), _) =
  match String.compare na nb with
  | 0 -> (
      match Int.compare (kind_rank ka) (kind_rank kb) with
      | 0 -> Int.compare sa sb
      | c -> c)
  | c -> c

let triggered pair =
  let size (r : Machine.result) =
    List.fold_left
      (fun a (ps : Machine.point_stat) -> a + List.length ps.ps_triggered)
      0 r.point_stats
  in
  let table = Hashtbl.create (max 16 (size pair.run0 + size pair.run1)) in
  let absorb (r : Machine.result) =
    List.iter
      (fun (ps : Machine.point_stat) ->
        let name = ps.ps_name in
        let w = float_of_int ps.ps_fanout /. float_of_int ps.ps_max_subs in
        List.iter
          (fun (kind, sub) -> Hashtbl.replace table (name, kind, sub) w)
          ps.ps_triggered)
      r.point_stats
  in
  absorb pair.run0;
  absorb pair.run1;
  Hashtbl.fold (fun k w acc -> (k, w) :: acc) table []
  |> List.sort compare_triggered

let single_valid_share pair =
  let single = Hashtbl.create 32 in
  List.iter
    (fun (ps : Machine.point_stat) ->
      if ps.ps_single_valid then Hashtbl.replace single ps.ps_name ())
    pair.run0.point_stats;
  let total = ref 0. and sv = ref 0. in
  List.iter
    (fun (((name, _, _) : string * Cpoint.kind * int), w) ->
      total := !total +. w;
      if Hashtbl.mem single name then sv := !sv +. w)
    (triggered pair);
  if !total = 0. then 0. else !sv /. !total
