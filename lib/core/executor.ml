open Sonar_uarch

type pair = {
  run0 : Machine.result;
  run1 : Machine.result;
  cp : Machine.dual_stats;
}

(* Worker-local scratch: one reusable [Machine.Ctx] per (domain, config).
   Contexts are reset to cold start at every acquisition inside
   [Machine.run], so results are bit-identical to fresh machines (tested);
   keeping them domain-local means the hot loop re-allocates neither cache
   line arrays nor contention-point tables per testcase, which is what
   stops stop-the-world minor collections from serialising the pool. *)
let scratch_key : (string, Machine.Ctx.t) Hashtbl.t Domain_pool.key =
  Domain_pool.create_key (fun () -> Hashtbl.create 4)

(* [fp] is the caller-precomputed [Config.fingerprint cfg]: batch entry
   points hash the config once and reuse the key across every lookup,
   instead of structurally comparing the whole config record per call.
   (A same-name fingerprint collision would surface as [Machine.run]'s
   own config guard raising, never as silent state sharing.) *)
let scratch_ctx (cfg : Config.t) ~fp =
  let tbl = Domain_pool.get scratch_key in
  match Hashtbl.find_opt tbl cfg.Config.name with
  | Some ctx when Machine.Ctx.fingerprint ctx = fp -> ctx
  | Some _ | None ->
      let ctx = Machine.Ctx.create cfg in
      Hashtbl.replace tbl cfg.Config.name ctx;
      ctx

let run_pair ?max_cycles ?ctx ?checkpoint cfg build =
  (* Even the sequential one-off path runs on the calling domain's scratch
     context (unless the caller supplies its own), so single-threaded
     campaigns get the same allocation reuse as pool workers. *)
  let ctx =
    match ctx with
    | Some ctx -> ctx
    | None -> scratch_ctx cfg ~fp:(Config.fingerprint cfg)
  in
  let run0, run1, cp =
    Machine.run_dual ?max_cycles ~ctx ?checkpoint cfg (build ~secret:0)
      (build ~secret:1)
  in
  { run0; run1; cp }

let executed_event tc pair =
  Telemetry.Testcase_executed
    {
      testcase_id = tc.Testcase.id;
      cycles0 = pair.run0.Machine.cycles;
      cycles1 = pair.run1.Machine.cycles;
    }

let execute ?max_cycles ?checkpoint ?emit cfg tc =
  let pair =
    run_pair ?max_cycles ?checkpoint cfg (fun ~secret ->
        Testcase.materialize tc ~secret)
  in
  (match emit with Some emit -> emit (executed_event tc pair) | None -> ());
  pair

(* Monomorphic comparator for the sorted [min_intervals] output below. The
   ordering is identical to polymorphic [compare] on the same tuples
   (byte-lexicographic strings), but dispatches directly; table keys are
   unique, so comparing the keys alone is a total order on the entries. *)
let compare_interval ((na, pa), _) ((nb, pb), _) =
  match String.compare na nb with 0 -> Int.compare pa pb | c -> c

let min_intervals pair =
  (* Keyed per (point, source pair); tuple keys avoid allocating a
     formatted string per interval per run on the fuzzer's hot path. The
     table is pre-sized to the interval count so absorption never rehashes. *)
  let size (r : Machine.result) =
    List.fold_left
      (fun a (ps : Machine.point_stat) -> a + List.length ps.ps_pair_intervals)
      0 r.point_stats
  in
  let table = Hashtbl.create (max 16 (size pair.run0 + size pair.run1)) in
  let absorb (r : Machine.result) =
    List.iter
      (fun (ps : Machine.point_stat) ->
        let name = ps.ps_name in
        List.iter
          (fun (pair_id, v) ->
            let key = (name, pair_id) in
            match Hashtbl.find_opt table key with
            | Some m when m <= v -> ()
            | Some _ | None -> Hashtbl.replace table key v)
          ps.ps_pair_intervals)
      r.point_stats
  in
  absorb pair.run0;
  absorb pair.run1;
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) table []
  |> List.sort compare_interval

let observe_intervals hists pair =
  List.iter
    (fun ((point, src_pair), v) ->
      Telemetry.Histogram.observe hists ~point ~src_pair v)
    (min_intervals pair)

(* Both secret-runs of one testcase, on this domain's scratch context, in
   the same order as the sequential path (secret 0 then 1). *)
let run_pair_scratch ?max_cycles ?checkpoint ~fp cfg tc =
  let ctx = scratch_ctx cfg ~fp in
  let run0, run1, cp =
    Machine.run_dual ?max_cycles ~ctx ?checkpoint cfg
      (Testcase.materialize tc ~secret:0)
      (Testcase.materialize tc ~secret:1)
  in
  { run0; run1; cp }

let auto_chunk ~jobs n =
  (* Aim for ~2 slices per worker: coarse enough that per-task dispatch and
     future plumbing are amortised over many simulated runs, fine enough
     that an expensive straggler testcase does not idle the other workers
     at the generation barrier. *)
  max 1 ((n + (2 * jobs) - 1) / (2 * jobs))

let rec chunk_list k = function
  | [] -> []
  | xs ->
      let rec take acc i = function
        | rest when i = k -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | x :: rest -> take (x :: acc) (i + 1) rest
      in
      let slice, rest = take [] 0 xs in
      slice :: chunk_list k rest

let execute_batch ?max_cycles ?pool ?chunk ?checkpoint ?emit ?hists cfg tcs =
  (match chunk with
  | Some c when c < 1 ->
      invalid_arg "Executor.execute_batch: chunk must be >= 1"
  | Some _ | None -> ());
  (* One config hash per batch; every scratch lookup below compares this
     precomputed key instead of the config record. *)
  let fp = Config.fingerprint cfg in
  let observe pair =
    match hists with Some h -> observe_intervals h pair | None -> ()
  in
  let finish tc pair =
    (match emit with Some emit -> emit (executed_event tc pair) | None -> ());
    observe pair;
    pair
  in
  match pool with
  | None ->
      (* Sequential path: same scratch reuse as the workers (the calling
         domain has its own worker-local context), so jobs=1 enjoys the
         allocation win too and the jobs comparison isolates parallelism. *)
      List.map
        (fun tc -> finish tc (run_pair_scratch ?max_cycles ?checkpoint ~fp cfg tc))
        tcs
  | Some pool ->
      (* Chunked fan-out: one pool task is a slice of the generation — both
         secret-runs of ~[chunk] candidates — not a single run, so the
         per-task submit/await cost is amortised over many simulated runs.
         Each task runs on some worker's scratch context. Results are
         assembled, and telemetry emitted, here on the awaiting domain, per
         candidate in submission order — never from a worker — so outcomes,
         histograms and traces are bit-identical for every (jobs, chunk). *)
      let chunk =
        match chunk with
        | Some c -> c
        | None -> auto_chunk ~jobs:(Domain_pool.jobs pool) (List.length tcs)
      in
      let futures =
        List.map
          (fun slice ->
            let slice_arr = Array.of_list slice in
            ( slice,
              Domain_pool.submit pool (fun () ->
                  Array.map
                    (run_pair_scratch ?max_cycles ?checkpoint ~fp cfg)
                    slice_arr) ))
          (chunk_list chunk tcs)
      in
      List.concat_map
        (fun (slice, future) ->
          let pairs = Domain_pool.await future in
          List.mapi (fun i tc -> finish tc pairs.(i)) slice)
        futures

(* Monomorphic comparator for [triggered]: identical ordering to polymorphic
   [compare] on the same tuples (byte-lexicographic strings, constructor
   order for [Cpoint.kind]), but dispatches directly; table keys are unique,
   so comparing the keys alone is a total order on the entries. *)
let kind_rank = function Cpoint.Volatile -> 0 | Cpoint.Persistent -> 1

let compare_triggered ((na, ka, sa), _) ((nb, kb, sb), _) =
  match String.compare na nb with
  | 0 -> (
      match Int.compare (kind_rank ka) (kind_rank kb) with
      | 0 -> Int.compare sa sb
      | c -> c)
  | c -> c

let triggered pair =
  let size (r : Machine.result) =
    List.fold_left
      (fun a (ps : Machine.point_stat) -> a + List.length ps.ps_triggered)
      0 r.point_stats
  in
  let table = Hashtbl.create (max 16 (size pair.run0 + size pair.run1)) in
  let absorb (r : Machine.result) =
    List.iter
      (fun (ps : Machine.point_stat) ->
        let name = ps.ps_name in
        let w = float_of_int ps.ps_fanout /. float_of_int ps.ps_max_subs in
        List.iter
          (fun (kind, sub) -> Hashtbl.replace table (name, kind, sub) w)
          ps.ps_triggered)
      r.point_stats
  in
  absorb pair.run0;
  absorb pair.run1;
  Hashtbl.fold (fun k w acc -> (k, w) :: acc) table []
  |> List.sort compare_triggered

let single_valid_share pair =
  let single = Hashtbl.create 32 in
  List.iter
    (fun (ps : Machine.point_stat) ->
      if ps.ps_single_valid then Hashtbl.replace single ps.ps_name ())
    pair.run0.point_stats;
  let total = ref 0. and sv = ref 0. in
  List.iter
    (fun (((name, _, _) : string * Cpoint.kind * int), w) ->
      total := !total +. w;
      if Hashtbl.mem single name then sv := !sv +. w)
    (triggered pair);
  if !total = 0. then 0. else !sv /. !total
