(** Comparison fuzzers.

    {b Random testing} — Sonar with every guidance strategy disabled
    (fresh random testcase each iteration): the baseline of Figure 8.

    {b SpecDoctor-style} — a transient-execution-focused fuzzer: testcases
    always carry a faulting (Meltdown-style) secret region, and feedback is
    coverage of triggered contention points rather than request intervals
    (SpecDoctor retains testcases reaching new RTL states; it has no notion
    of inter-request timing). The Figure 11 comparison measures how many
    {e new} contention points each approach keeps finding. *)

val random_testing :
  ?seed:int64 ->
  ?dual:bool ->
  ?max_cycles:int ->
  Sonar_uarch.Config.t ->
  iterations:int ->
  Fuzzer.outcome
[@@ocaml.deprecated
  "use Fuzzer.run with the Feedback.random strategy preset instead"]
(** One-line wrapper over {!Fuzzer.run} with {!Feedback.random}; kept for
    one release now that the random baseline is just a strategy preset. *)

val specdoctor :
  ?seed:int64 ->
  ?max_cycles:int ->
  Sonar_uarch.Config.t ->
  iterations:int ->
  Fuzzer.series_point list
(** Cumulative triggered-contention series for the SpecDoctor-style fuzzer
    ([timing_diffs] is left 0 — it does not run the CCD detector). *)
