(* Offline campaign reports: replay a JSONL telemetry trace into a
   self-contained markdown or HTML document (plus a JSON form for
   machines). Everything here is a pure fold over the event stream — the
   report of a trace is as deterministic as the trace itself. *)

type t = {
  source : string;
  strategy : string option;  (* from the campaign_start trace header *)
  outcome : string option;  (* from the campaign_end trace footer *)
  wall_seconds : float option;  (* footer wall-clock (timings traces only) *)
  campaigns : int;  (* distinct campaigns merged into this report *)
  events : int;
  skipped : int;
  testcases : int;
  generations : int;
  iterations_done : int;
  final_coverage : float;
  final_timing_diffs : int;
  final_corpus_size : int;
  contention_testcases : int;
  retained : int;
  evicted : int;
  direction_flips : int;
  phase_seconds : (string * float) list;
  series : (int * int * float * int * int) list;
      (* generation, iterations_done, coverage, timing_diffs, corpus_size *)
  findings : (int * int * int) list;  (* iteration, findings, total_delta *)
  observatory : Telemetry.Observatory.snapshot;
}

let of_events ?(source = "<events>") ?(skipped = 0) events =
  let obs_sink, obs_snapshot = Telemetry.observatory () in
  let n = ref 0 in
  let strategy = ref None in
  let outcome = ref None in
  let wall_seconds = ref None in
  let testcases = ref 0 in
  let generations = ref 0 in
  let iterations_done = ref 0 in
  let coverage = ref 0. in
  let timing_diffs = ref 0 in
  let corpus_size = ref 0 in
  let contention = ref 0 in
  let retained = ref 0 in
  let evicted = ref 0 in
  let flips = ref 0 in
  let phases = Hashtbl.create 4 in
  let series = ref [] in
  let findings = ref [] in
  List.iter
    (fun ev ->
      incr n;
      obs_sink.Telemetry.emit ev;
      match ev with
      | Telemetry.Campaign_start e -> strategy := Some e.strategy
      | Telemetry.Generation_start _ -> ()
      | Telemetry.Testcase_executed _ -> incr testcases
      | Telemetry.Contention_triggered e ->
          incr contention;
          coverage := e.coverage
      | Telemetry.Ccd_finding e ->
          findings := (e.iteration, e.findings, e.total_delta) :: !findings
      | Telemetry.Corpus_retained e ->
          incr retained;
          corpus_size := e.corpus_size
      | Telemetry.Corpus_evicted _ -> incr evicted
      | Telemetry.Mutation_flip _ -> incr flips
      | Telemetry.Generation_end e ->
          incr generations;
          iterations_done := e.iterations_done;
          coverage := e.coverage;
          timing_diffs := e.timing_diffs;
          corpus_size := e.corpus_size;
          series :=
            (e.generation, e.iterations_done, e.coverage, e.timing_diffs,
             e.corpus_size)
            :: !series
      | Telemetry.Phase_timing e ->
          let k = Telemetry.phase_name e.phase in
          Hashtbl.replace phases k
            (e.seconds +. Option.value ~default:0. (Hashtbl.find_opt phases k))
      | Telemetry.Campaign_end e ->
          outcome := Some e.outcome;
          wall_seconds := e.wall_seconds;
          iterations_done := e.iterations_done;
          coverage := e.coverage;
          timing_diffs := e.timing_diffs;
          corpus_size := e.corpus_size
      | Telemetry.Interval_histogram _ | Telemetry.Coverage_heatmap _
      | Telemetry.Span_begin _ | Telemetry.Span_end _
      | Telemetry.Checkpoint_stats _ ->
          (* absorbed by the observatory sink above (or, for checkpoint
             stats, excluded from traces in the first place) *)
          ())
    events;
  {
    source;
    strategy = !strategy;
    outcome = !outcome;
    wall_seconds = !wall_seconds;
    campaigns = 1;
    events = !n;
    skipped;
    testcases = !testcases;
    generations = !generations;
    iterations_done = !iterations_done;
    final_coverage = !coverage;
    final_timing_diffs = !timing_diffs;
    final_corpus_size = !corpus_size;
    contention_testcases = !contention;
    retained = !retained;
    evicted = !evicted;
    direction_flips = !flips;
    phase_seconds =
      List.filter_map
        (fun k ->
          Option.map (fun s -> (k, s)) (Hashtbl.find_opt phases k))
        [ "generate"; "execute"; "feedback" ];
    series = List.rev !series;
    findings = List.rev !findings;
    observatory = obs_snapshot ();
  }

(* ------------------------------------------------------------------ *)
(* Multi-trace assembly: parse lines, stitch rotation segments back into
   their campaign's stream, split distinct campaigns, merge.             *)

(* One decoded trace line; [presync] marks the state-replay lines that
   [Telemetry.rotating_jsonl] writes at the head of later segments. *)
type parsed = { pev : Telemetry.event; presync : bool }

let parse_lines ~skipped lines =
  List.filter_map
    (fun line ->
      if String.trim line = "" then None
      else
        match Json.of_string line with
        | exception Json.Parse_error _ ->
            incr skipped;
            None
        | doc -> (
            match Telemetry.event_of_json doc with
            | Some pev -> Some { pev; presync = Telemetry.json_is_resync doc }
            | None ->
                incr skipped;
                None))
    lines

(* Split one interleaved parsed stream into campaign event streams.

   Resync lines replay state the campaign already emitted: once the
   current campaign holds a real (non-resync) event they are dropped, so
   reassembled rotation segments recover exactly the unrotated stream. A
   resync head with no preceding stream (reporting a lone later segment)
   is kept — it is precisely what makes that segment self-contained.

   A real campaign_start against a non-empty stream opens a new campaign;
   that rule is file-agnostic, so reporting [a b] and reporting their
   concatenation split identically. *)
let split_campaigns parsed =
  let campaigns = ref [] in
  let cur = ref [] in
  let seen_real = ref false in
  let flush () =
    if !cur <> [] then campaigns := List.rev !cur :: !campaigns;
    cur := [];
    seen_real := false
  in
  List.iter
    (fun { pev; presync } ->
      if presync then begin
        if not !seen_real then cur := pev :: !cur
      end
      else begin
        (match pev with
        | Telemetry.Campaign_start _ when !cur <> [] -> flush ()
        | _ -> ());
        cur := pev :: !cur;
        seen_real := true
      end)
    parsed;
  flush ();
  List.rev !campaigns

(* Cluster-level merge of two campaign folds: counters sum, the
   observatory merges structurally, series and findings concatenate. *)
let merge a b =
  let sum_phases () =
    List.filter_map
      (fun k ->
        let get r = List.assoc_opt k r.phase_seconds in
        match (get a, get b) with
        | None, None -> None
        | x, y ->
            Some
              ( k,
                Option.value ~default:0. x +. Option.value ~default:0. y ))
      [ "generate"; "execute"; "feedback" ]
  in
  {
    source = a.source;
    strategy =
      (match (a.strategy, b.strategy) with
      | Some x, Some y when x = y -> Some x
      | Some _, Some _ -> Some "mixed"
      | x, None -> x
      | None, y -> y);
    outcome =
      (* None (no footer) poisons: the merged set contains a trace whose
         campaign never ended, so the cluster is incomplete. *)
      (match (a.outcome, b.outcome) with
      | None, _ | _, None -> None
      | Some x, Some y when x = y -> Some x
      | Some "crashed", Some _ | Some _, Some "crashed" -> Some "crashed"
      | Some _, Some _ -> Some "mixed");
    wall_seconds =
      (match (a.wall_seconds, b.wall_seconds) with
      | Some x, Some y -> Some (x +. y)
      | x, None -> x
      | None, y -> y);
    campaigns = a.campaigns + b.campaigns;
    events = a.events + b.events;
    skipped = a.skipped + b.skipped;
    testcases = a.testcases + b.testcases;
    generations = a.generations + b.generations;
    iterations_done = a.iterations_done + b.iterations_done;
    final_coverage = a.final_coverage +. b.final_coverage;
    final_timing_diffs = a.final_timing_diffs + b.final_timing_diffs;
    final_corpus_size = a.final_corpus_size + b.final_corpus_size;
    contention_testcases = a.contention_testcases + b.contention_testcases;
    retained = a.retained + b.retained;
    evicted = a.evicted + b.evicted;
    direction_flips = a.direction_flips + b.direction_flips;
    phase_seconds = sum_phases ();
    series = a.series @ b.series;
    findings = a.findings @ b.findings;
    observatory = Telemetry.Observatory.merge a.observatory b.observatory;
  }

let of_traces ?label sources =
  let label =
    match label with
    | Some l -> l
    | None -> String.concat ", " (List.map fst sources)
  in
  let skipped = ref 0 in
  let parsed = List.concat_map (fun (_, lines) -> parse_lines ~skipped lines) sources in
  match split_campaigns parsed with
  | [] -> of_events ~source:label ~skipped:!skipped []
  | first :: rest ->
      let r0 = of_events ~source:label ~skipped:!skipped first in
      List.fold_left
        (fun acc events -> merge acc (of_events ~source:label events))
        r0 rest

let of_lines ?source lines =
  let label = Option.value ~default:"<lines>" source in
  of_traces ~label [ (label, lines) ]

let read_lines path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      close_in ic;
      Ok (List.rev !lines)

let load_many ?label paths =
  let rec read acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
        match read_lines p with
        | Error msg -> Error msg
        | Ok lines -> read ((p, lines) :: acc) rest)
  in
  Result.map (of_traces ?label) (read [] paths)

let load path = load_many ~label:path [ path ]

let skipped r = r.skipped
let events r = r.events
let outcome r = r.outcome
let campaigns r = r.campaigns

(* ------------------------------------------------------------------ *)
(* Section model shared by the markdown and HTML renderers.            *)

type block =
  | Table of string list * string list list  (* headers, rows *)
  | Pre of string
  | Para of string

type section = { title : string; blocks : block list }

let spark_glyphs = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                     "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                     "\xe2\x96\x87"; "\xe2\x96\x88" |]

(* One glyph per value, scaled to the series maximum; long series are
   resampled (by last-value-in-bin) to [width] columns. *)
let spark_of_floats ?(width = 60) values =
  match values with
  | [] -> ""
  | _ ->
      let values =
        let n = List.length values in
        if n <= width then values
        else
          let arr = Array.of_list values in
          List.init width (fun i -> arr.(((i + 1) * n / width) - 1))
      in
      let peak = List.fold_left Float.max 1e-9 values in
      String.concat ""
        (List.map
           (fun v ->
             let level =
               int_of_float (Float.round (7. *. Float.max 0. v /. peak))
             in
             spark_glyphs.(max 0 (min 7 level)))
           values)

let bar ?(width = 24) ~peak v =
  let n = int_of_float (Float.round (float_of_int width *. v /. Float.max peak 1e-9)) in
  String.concat "" (List.init (max 0 (min width n)) (fun _ -> "\xe2\x96\x88"))

let fmt_f = Printf.sprintf "%.1f"
let fmt_s = Printf.sprintf "%.3fs"

(* One line under the title, rendered in both markdown and HTML: the
   reader learns up front how much of the input actually decoded. *)
let header_para r =
  Printf.sprintf "Replayed %d events, %d skipped lines%s." r.events r.skipped
    (if r.campaigns > 1 then
       Printf.sprintf " across %d merged campaigns" r.campaigns
     else "")

let summary_section r =
  let rows =
    [ [ "trace"; r.source ] ]
    @ (match r.strategy with
      | Some s -> [ [ "strategy"; s ] ]
      | None -> [])
    @ [
      [ "outcome";
        Option.value ~default:"incomplete (no campaign_end)" r.outcome ];
    ]
    @ (match r.wall_seconds with
      | Some w -> [ [ "campaign wall-clock"; fmt_s w ] ]
      | None -> [])
    @ (if r.campaigns > 1 then
         [ [ "campaigns merged"; string_of_int r.campaigns ] ]
       else [])
    @ [
      [ "events"; string_of_int r.events ];
      [ "skipped lines"; string_of_int r.skipped ];
      [ "testcases"; string_of_int r.testcases ];
      [ "generations"; string_of_int r.generations ];
      [ "iterations done"; string_of_int r.iterations_done ];
      [ "contention coverage"; fmt_f r.final_coverage ];
      [ "contention testcases"; string_of_int r.contention_testcases ];
      [ "timing differences (CCD)"; string_of_int r.final_timing_diffs ];
      [ "finding testcases"; string_of_int (List.length r.findings) ];
      [ "corpus size"; string_of_int r.final_corpus_size ];
      [ "retained / evicted";
        Printf.sprintf "%d / %d" r.retained r.evicted ];
      [ "direction flips"; string_of_int r.direction_flips ];
    ]
    @ List.map (fun (k, s) -> [ k ^ " wall-clock"; fmt_s s ]) r.phase_seconds
  in
  { title = "Summary"; blocks = [ Table ([ "metric"; "value" ], rows) ] }

let coverage_section r =
  if r.series = [] then
    { title = "Coverage over iterations";
      blocks = [ Para "No generation_end events in the trace." ] }
  else
    let spark =
      spark_of_floats (List.map (fun (_, _, c, _, _) -> c) r.series)
    in
    let n = List.length r.series in
    let sampled =
      (* at most 16 table rows, evenly spaced, always including the last *)
      let arr = Array.of_list r.series in
      let k = min 16 n in
      List.init k (fun i -> arr.(((i + 1) * n / k) - 1))
    in
    let rows =
      List.map
        (fun (g, it, cov, diffs, corpus) ->
          [ string_of_int g; string_of_int it; fmt_f cov; string_of_int diffs;
            string_of_int corpus ])
        sampled
    in
    {
      title = "Coverage over iterations";
      blocks =
        [
          Pre ("coverage  " ^ spark);
          Table
            ( [ "generation"; "iterations"; "coverage"; "timing diffs";
                "corpus" ],
              rows );
        ];
    }

let points_section ~top r =
  let points = r.observatory.Telemetry.Observatory.points in
  if points = [] then
    { title = "Contention points by minimum interval";
      blocks = [ Para "No interval_histogram events in the trace." ] }
  else
    let rows =
      List.filteri (fun i _ -> i < top) points
      |> List.map (fun (p : Telemetry.Observatory.point_hist) ->
             let h = p.hist in
             [
               p.point;
               string_of_int p.src_pair;
               string_of_int (Telemetry.Histogram.total h);
               string_of_int
                 (Option.value ~default:0 (Telemetry.Histogram.min_value h));
               string_of_int
                 (Option.value ~default:0 (Telemetry.Histogram.max_value h));
               Telemetry.Histogram.sparkline h;
             ])
    in
    {
      title = "Contention points by minimum interval";
      blocks =
        [
          Para
            (Printf.sprintf
               "Top %d of %d (point, source-pair) interval distributions; \
                buckets are powers of two, bars scale to the fullest bucket."
               (min top (List.length points))
               (List.length points));
          Table
            ([ "point"; "pair"; "n"; "min"; "max"; "distribution" ], rows);
        ];
    }

let heatmap_section r =
  let heatmap = r.observatory.Telemetry.Observatory.heatmap in
  if heatmap = [] then
    { title = "Coverage heatmap";
      blocks = [ Para "No coverage_heatmap events in the trace." ] }
  else
    let peak = List.fold_left (fun a (_, w) -> Float.max a w) 0. heatmap in
    let rows =
      List.map
        (fun (name, w) -> [ name; fmt_f w; bar ~peak w ])
        heatmap
    in
    { title = "Coverage heatmap";
      blocks = [ Table ([ "component"; "weight"; "share" ], rows) ] }

let spans_section r =
  let tree = r.observatory.Telemetry.Observatory.span_tree in
  if tree = [] then
    { title = "Profiling spans";
      blocks =
        [
          Para
            "No span events in the trace (spans are wall-clock data; rerun \
             with the timings opt-in, e.g. `sonar fuzz --trace FILE \
             --timings`).";
        ] }
  else
    let buf = Buffer.create 256 in
    let rec render indent (n : Telemetry.Observatory.span_node) =
      Buffer.add_string buf
        (Printf.sprintf "%-*s %6dx %10.3fs\n"
           (max (String.length indent + String.length n.span_name) 30)
           (indent ^ n.span_name)
           n.calls n.seconds);
      List.iter (render (indent ^ "  ")) n.children
    in
    List.iter (render "") tree;
    { title = "Profiling spans"; blocks = [ Pre (Buffer.contents buf) ] }

let findings_section r =
  if r.findings = [] then
    { title = "CCD findings";
      blocks = [ Para "No secret-reflecting timing differences recorded." ] }
  else
    let total = List.fold_left (fun a (_, n, _) -> a + n) 0 r.findings in
    let rows =
      List.filteri (fun i _ -> i < 20) r.findings
      |> List.map (fun (it, n, delta) ->
             [ string_of_int it; string_of_int n; string_of_int delta ])
    in
    {
      title = "CCD findings";
      blocks =
        [
          Para
            (Printf.sprintf
               "%d findings across %d testcases (first %d testcases shown)."
               total (List.length r.findings)
               (min 20 (List.length r.findings)));
          Table ([ "iteration"; "findings"; "total delta" ], rows);
        ];
    }

let sections ?(top = 10) r =
  [
    summary_section r;
    coverage_section r;
    points_section ~top r;
    heatmap_section r;
    spans_section r;
    findings_section r;
  ]

(* ------------------------------------------------------------------ *)
(* Renderers.                                                          *)

let render_markdown ~header secs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "# Sonar campaign report\n\n";
  Buffer.add_string buf (header ^ "\n");
  List.iter
    (fun s ->
      Buffer.add_string buf (Printf.sprintf "\n## %s\n\n" s.title);
      List.iter
        (function
          | Para p -> Buffer.add_string buf (p ^ "\n\n")
          | Pre p ->
              Buffer.add_string buf "```\n";
              Buffer.add_string buf p;
              if p <> "" && p.[String.length p - 1] <> '\n' then
                Buffer.add_char buf '\n';
              Buffer.add_string buf "```\n\n"
          | Table (headers, rows) ->
              let line cells =
                "| " ^ String.concat " | " cells ^ " |\n"
              in
              Buffer.add_string buf (line headers);
              Buffer.add_string buf
                (line (List.map (fun _ -> "---") headers));
              List.iter (fun r -> Buffer.add_string buf (line r)) rows;
              Buffer.add_char buf '\n')
        s.blocks)
    secs;
  Buffer.contents buf

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_html ~header secs =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n\
     <title>Sonar campaign report</title>\n\
     <style>\n\
     body{font-family:system-ui,sans-serif;margin:2rem auto;max-width:60rem;\
     padding:0 1rem;color:#1a1a1a}\n\
     table{border-collapse:collapse;margin:0.5rem 0}\n\
     th,td{border:1px solid #ccc;padding:0.25rem 0.6rem;text-align:left;\
     font-variant-numeric:tabular-nums}\n\
     th{background:#f2f2f2}\n\
     pre{background:#f7f7f7;padding:0.75rem;overflow-x:auto}\n\
     </style></head><body>\n<h1>Sonar campaign report</h1>\n";
  Buffer.add_string buf
    (Printf.sprintf "<p>%s</p>\n" (html_escape header));
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "<h2>%s</h2>\n" (html_escape s.title));
      List.iter
        (function
          | Para p ->
              Buffer.add_string buf
                (Printf.sprintf "<p>%s</p>\n" (html_escape p))
          | Pre p ->
              Buffer.add_string buf
                (Printf.sprintf "<pre>%s</pre>\n" (html_escape p))
          | Table (headers, rows) ->
              Buffer.add_string buf "<table><thead><tr>";
              List.iter
                (fun h ->
                  Buffer.add_string buf
                    (Printf.sprintf "<th>%s</th>" (html_escape h)))
                headers;
              Buffer.add_string buf "</tr></thead><tbody>\n";
              List.iter
                (fun r ->
                  Buffer.add_string buf "<tr>";
                  List.iter
                    (fun c ->
                      Buffer.add_string buf
                        (Printf.sprintf "<td>%s</td>" (html_escape c)))
                    r;
                  Buffer.add_string buf "</tr>\n")
                rows;
              Buffer.add_string buf "</tbody></table>\n")
        s.blocks)
    secs;
  Buffer.add_string buf "</body></html>\n";
  Buffer.contents buf

let to_markdown ?top r = render_markdown ~header:(header_para r) (sections ?top r)
let to_html ?top r = render_html ~header:(header_para r) (sections ?top r)

let to_json r : Json.t =
  Json.Obj
    [
      ( "summary",
        Json.Obj
          [
            ("source", Json.String r.source);
            ( "strategy",
              match r.strategy with
              | Some s -> Json.String s
              | None -> Json.Null );
            ( "outcome",
              match r.outcome with
              | Some o -> Json.String o
              | None -> Json.Null );
            ( "wall_seconds",
              match r.wall_seconds with
              | Some w -> Json.Float w
              | None -> Json.Null );
            ("campaigns", Json.Int r.campaigns);
            ("events", Json.Int r.events);
            ("skipped", Json.Int r.skipped);
            ("testcases", Json.Int r.testcases);
            ("generations", Json.Int r.generations);
            ("iterations_done", Json.Int r.iterations_done);
            ("final_coverage", Json.Float r.final_coverage);
            ("final_timing_diffs", Json.Int r.final_timing_diffs);
            ("final_corpus_size", Json.Int r.final_corpus_size);
            ("contention_testcases", Json.Int r.contention_testcases);
            ("retained", Json.Int r.retained);
            ("evicted", Json.Int r.evicted);
            ("direction_flips", Json.Int r.direction_flips);
            ( "phase_seconds",
              Json.Obj
                (List.map (fun (k, s) -> (k, Json.Float s)) r.phase_seconds) );
          ] );
      ( "series",
        Json.List
          (List.map
             (fun (g, it, cov, diffs, corpus) ->
               Json.Obj
                 [
                   ("generation", Json.Int g);
                   ("iterations_done", Json.Int it);
                   ("coverage", Json.Float cov);
                   ("timing_diffs", Json.Int diffs);
                   ("corpus_size", Json.Int corpus);
                 ])
             r.series) );
      ( "findings",
        Json.List
          (List.map
             (fun (it, n, delta) ->
               Json.Obj
                 [
                   ("iteration", Json.Int it);
                   ("findings", Json.Int n);
                   ("total_delta", Json.Int delta);
                 ])
             r.findings) );
      ("observatory", Telemetry.Observatory.to_json r.observatory);
    ]
