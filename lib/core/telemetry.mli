(** Structured campaign telemetry: typed events emitted by the fuzzing
    pipeline ({!Fuzzer}, {!Executor}, {!Corpus}), delivered to pluggable
    sinks.

    {b Determinism.} Every event except {!event.Phase_timing} is a pure
    function of (seed, strategy, iterations, batch): events from pool
    workers are never emitted concurrently — the executor materialises them
    when it assembles results in submission order, and the fuzzer folds
    feedback sequentially — so a trace is bit-identical for every [jobs]
    value. [Phase_timing] carries wall-clock seconds and is therefore
    excluded from the JSONL trace unless explicitly requested.

    {b Threading.} Sinks are invoked only from the domain that called
    {!Fuzzer.run}; they need not be thread-safe.

    {b Overhead.} The fuzzer skips event construction entirely when the
    sink list is empty, so a campaign with no telemetry pays nothing on the
    hot path. *)

type phase = Generate | Execute | Feedback

val phase_name : phase -> string
(** "generate" / "execute" / "feedback". *)

type event =
  | Generation_start of { generation : int; first_iteration : int; size : int }
      (** A generation of [size] candidates begins. *)
  | Testcase_executed of { testcase_id : int; cycles0 : int; cycles1 : int }
      (** One testcase ran under both secrets; per-run simulated cycles. *)
  | Contention_triggered of { iteration : int; added : float; coverage : float }
      (** The testcase contributed new contention coverage. *)
  | Ccd_finding of { iteration : int; findings : int; total_delta : int }
      (** The detector reported secret-reflecting timing differences. *)
  | Corpus_retained of { testcase_id : int; corpus_size : int }
      (** The corpus kept a testcase (it improved some best interval). *)
  | Corpus_evicted of { testcase_id : int; corpus_size : int }
      (** The ring buffer overwrote its oldest entry. *)
  | Mutation_flip of { iteration : int; direction : string }
      (** Directed mutation reversed course ("grow" or "shrink"). *)
  | Generation_end of {
      generation : int;
      iterations_done : int;
      coverage : float;
      timing_diffs : int;
      corpus_size : int;
    }  (** All candidates of a generation executed and folded. *)
  | Phase_timing of { generation : int; phase : phase; seconds : float }
      (** Wall-clock spent in one phase of a generation.
          {b Not deterministic}; excluded from traces by default. *)

type sink = {
  emit : event -> unit;
  close : unit -> unit;  (** flush and release resources; idempotent. *)
}

val null : sink
(** Discards everything. *)

val make : ?close:(unit -> unit) -> (event -> unit) -> sink

val close : sink -> unit

val emit_all : sink list -> event -> unit

(** {1 JSON encoding}

    One object per event: [{"event":"<name>", ...payload}]. The schema is
    documented in DESIGN.md §9 and is shared with the CLI's
    [--format json] output via {!Json}. *)

val json_of_event : event -> Json.t

val event_of_json : Json.t -> event option
(** Inverse of {!json_of_event}; [None] on unknown or malformed
    documents. *)

val jsonl : ?timings:bool -> (string -> unit) -> sink
(** A trace writer calling the function once per event with one compact
    JSON document (no trailing newline). [timings] (default [false])
    includes the non-deterministic [Phase_timing] events. *)

val jsonl_file : ?timings:bool -> string -> sink
(** {!jsonl} over a freshly created file, one event per line; the sink's
    [close] closes the file. *)

(** {1 In-memory aggregation} *)

module Metrics : sig
  type snapshot = {
    events : int;  (** total events seen, all kinds *)
    generations : int;
    testcases : int;
    contention_testcases : int;
    ccd_findings : int;  (** findings summed over reports *)
    finding_testcases : int;  (** testcases with at least one finding *)
    retained : int;
    evicted : int;
    direction_flips : int;
    coverage : float;  (** latest cumulative contention coverage *)
    corpus_size : int;
    generate_seconds : float;
    execute_seconds : float;
    feedback_seconds : float;
    wall_seconds : float;  (** since the aggregator was created *)
    events_per_second : float;
    testcases_per_second : float;
    pool_utilization : float;
        (** share of campaign wall-clock spent in the execute phase (the
            part the worker pool parallelises) *)
  }

  val to_json : snapshot -> Json.t

  val pp : Format.formatter -> snapshot -> unit
end

val aggregator : unit -> sink * (unit -> Metrics.snapshot)
(** A counting sink plus its snapshot function (callable at any time,
    including mid-campaign). *)

val progress : ?out:out_channel -> every:int -> total:int -> unit -> sink
(** A human progress reporter (default on [stderr]): after each generation
    that completes at least [every] testcases since the last report, prints
    one line with testcases done / [total], coverage, timing differences,
    corpus size, and testcases/sec. *)
