(** Structured campaign telemetry: typed events emitted by the fuzzing
    pipeline ({!Fuzzer}, {!Executor}, {!Corpus}), delivered to pluggable
    sinks.

    {b Determinism.} Every event except {!event.Phase_timing} is a pure
    function of (seed, strategy, iterations, batch): events from pool
    workers are never emitted concurrently — the executor materialises them
    when it assembles results in submission order, and the fuzzer folds
    feedback sequentially — so a trace is bit-identical for every [jobs]
    value. [Phase_timing] carries wall-clock seconds and is therefore
    excluded from the JSONL trace unless explicitly requested.

    {b Threading.} Sinks are invoked only from the domain that called
    {!Fuzzer.run}; they need not be thread-safe.

    {b Overhead.} The fuzzer skips event construction entirely when the
    sink list is empty, so a campaign with no telemetry pays nothing on the
    hot path. *)

module Histogram = Histogram
(** Re-exported so observatory consumers need only [Telemetry]. *)

type phase = Generate | Execute | Feedback

val phase_name : phase -> string
(** "generate" / "execute" / "feedback". *)

type event =
  | Campaign_start of {
      strategy : string;  (** {!Feedback.t.name} driving the campaign *)
      seed : int64;
      iterations : int;
      batch : int;
      dual : bool;
    }
      (** Trace header: the campaign's outcome-determining inputs, emitted
          once before the first generation. Deliberately excludes
          jobs/chunk/checkpoint — those are wall-clock knobs, and traces
          must stay byte-identical across them. *)
  | Generation_start of { generation : int; first_iteration : int; size : int }
      (** A generation of [size] candidates begins. *)
  | Testcase_executed of { testcase_id : int; cycles0 : int; cycles1 : int }
      (** One testcase ran under both secrets; per-run simulated cycles. *)
  | Contention_triggered of { iteration : int; added : float; coverage : float }
      (** The testcase contributed new contention coverage. *)
  | Ccd_finding of { iteration : int; findings : int; total_delta : int }
      (** The detector reported secret-reflecting timing differences. *)
  | Corpus_retained of { testcase_id : int; corpus_size : int }
      (** The corpus kept a testcase (it improved some best interval). *)
  | Corpus_evicted of { testcase_id : int; corpus_size : int }
      (** The ring buffer overwrote its oldest entry. *)
  | Mutation_flip of { iteration : int; direction : string }
      (** Directed mutation reversed course ("grow" or "shrink"). *)
  | Generation_end of {
      generation : int;
      iterations_done : int;
      coverage : float;
      timing_diffs : int;
      corpus_size : int;
    }  (** All candidates of a generation executed and folded. *)
  | Phase_timing of { generation : int; phase : phase; seconds : float }
      (** Wall-clock spent in one phase of a generation.
          {b Not deterministic}; excluded from traces by default. *)
  | Interval_histogram of {
      generation : int;
      point : string;  (** contention point name *)
      src_pair : int;  (** source-pair id within the point *)
      total : int;  (** observations so far (cumulative) *)
      min_interval : int;
      max_interval : int;
      buckets : (int * int) list;  (** {!Histogram.counts} form *)
    }
      (** Cumulative interval distribution of one (point, source-pair),
          emitted at each generation end for every key touched during that
          generation. Deterministic. *)
  | Coverage_heatmap of { generation : int; components : (string * float) list }
      (** Cumulative contention-coverage weight per netlist component,
          emitted at each generation end. Deterministic. *)
  | Span_begin of { span_id : int; parent : int option; name : string }
      (** A profiling span opened ([parent = None] at the root). In the
          timings opt-in class: excluded from traces by default. *)
  | Span_end of { span_id : int; name : string; seconds : float }
      (** A profiling span closed after [seconds] of wall-clock.
          {b Not deterministic}; excluded from traces by default. *)
  | Checkpoint_stats of {
      generation : int;
      testcases : int;  (** dual runs folded into this event *)
      hits : int;  (** dual runs that resumed from a captured checkpoint *)
      cycles_saved : int;  (** simulated cycles skipped by prefix reuse *)
      cycles_simulated : int;  (** cycles actually simulated (after reuse) *)
    }
      (** Per-generation checkpointing efficiency. Deterministic, but a
          function of the checkpoint {e option}, not of the fuzzing
          outcome — excluded from traces by default so checkpoint-on and
          checkpoint-off campaigns produce byte-identical traces. *)
  | Campaign_end of {
      outcome : string;  (** ["completed"] or ["crashed"] *)
      iterations_done : int;
      coverage : float;
      timing_diffs : int;
      corpus_size : int;
      wall_seconds : float option;
    }
      (** Trace footer: the campaign's final counters. Emitted exactly once,
          as the last event — also on the crash path, so a partial trace
          from a crashed campaign is machine-distinguishable (footer with
          [outcome = "crashed"]) from a completed one ([outcome =
          "completed"]) and from one killed hard (no footer at all).
          [wall_seconds] is wall-clock data: the JSONL writers drop the
          field unless [timings] is set, keeping default traces
          byte-identical across runs and [--jobs] values. *)

val is_timing_event : event -> bool
(** Whether the event belongs to the wall-clock (timings opt-in) class:
    {!event.Phase_timing}, {!event.Span_begin}, {!event.Span_end}. *)

val is_execution_event : event -> bool
(** Whether the event describes {e how} the campaign executed rather than
    what it found ({!event.Checkpoint_stats}): deterministic, yet excluded
    from traces by default because it varies with execution options (e.g.
    [--no-checkpoint]) that must not perturb the trace. *)

type sink = {
  emit : event -> unit;
  close : unit -> unit;  (** flush and release resources; idempotent. *)
}

val null : sink
(** Discards everything. *)

val make : ?close:(unit -> unit) -> (event -> unit) -> sink

val close : sink -> unit

val emit_all : sink list -> event -> unit

val synchronized : Mutex.t -> sink -> sink
(** Wrap a sink so [emit] and [close] hold the mutex. Sinks are normally
    invoked only from the campaign's own domain; use this when another
    domain also reads the sink's state under the same mutex — e.g. the
    {!Serve} HTTP domain snapshotting a live aggregator/observatory. *)

(** {1 JSON encoding}

    One object per event: [{"event":"<name>", ...payload}]. The schema is
    documented in DESIGN.md §9 and is shared with the CLI's
    [--format json] output via {!Json}. *)

val json_of_event : event -> Json.t

val event_of_json : Json.t -> event option
(** Inverse of {!json_of_event}; [None] on unknown or malformed
    documents. Unknown extra fields (e.g. the rotation [resync] marker)
    are ignored. *)

val json_is_resync : Json.t -> bool
(** Whether an event document carries the [{"resync":true}] marker that
    {!rotating_jsonl} stamps on the state-replay events at the head of
    every segment after the first. Consumers merging segments drop marked
    events once they already hold the campaign's state; consumers reading
    a lone segment replay them to rebuild it. *)

val jsonl : ?timings:bool -> (string -> unit) -> sink
(** A trace writer calling the function once per event with one compact
    JSON document (no trailing newline). [timings] (default [false])
    includes the wall-clock event class ({!is_timing_event}:
    [Phase_timing] and the profiling spans) and the [wall_seconds] field
    of {!event.Campaign_end} (dropped otherwise, so default traces stay
    deterministic). *)

val jsonl_file : ?timings:bool -> string -> sink
(** {!jsonl} over a freshly created file, one event per line; the sink's
    [close] closes the file. The channel is flushed after every
    [generation_end] and [campaign_end] line, so a campaign killed hard
    still leaves its completed generations on disk and a follower
    ([tail -f], [sonar serve --follow]) sees progress as it happens. *)

(** {1 Bounded trace lifecycle: rotation} *)

val segment_path : string -> int -> string
(** [segment_path base i] is the path of segment [i] of a rotating trace:
    [base.0000], [base.0001], … — zero-padded so a shell glob
    ([base.*]) lists segments in order. *)

val rotating_jsonl :
  ?timings:bool -> ?max_bytes:int -> ?max_generations:int -> string -> sink
(** A {!jsonl_file} whose output rolls over into numbered segments
    ({!segment_path}) so week-long campaigns never grow one unbounded
    file. Rollover happens only {e after} a [generation_end] line, once
    the current segment holds at least [max_bytes] bytes ([max_bytes] is
    therefore a soft threshold, overshot by at most one generation) or
    [max_generations] generations; at least one threshold is required
    ([Invalid_argument] otherwise, as is a threshold [< 1]). Like
    {!jsonl_file}, the current segment is flushed at every generation
    boundary and on the campaign footer.

    Every segment after the first is self-contained: it opens with a
    replay of the [campaign_start] header plus the latest cumulative
    [interval_histogram] (one per key, sorted) and [coverage_heatmap]
    events, each stamped with [{"resync":true}] ({!json_is_resync}).
    Replaying a lone segment therefore rebuilds the full observatory
    state, while a merger that drops the marked lines recovers exactly
    the unrotated event stream — byte-identical reports either way. *)

(** {1 In-memory aggregation} *)

module Metrics : sig
  type snapshot = {
    events : int;  (** total events seen, all kinds *)
    generations : int;
    testcases : int;
    contention_testcases : int;
    ccd_findings : int;  (** findings summed over reports *)
    finding_testcases : int;  (** testcases with at least one finding *)
    retained : int;
    evicted : int;
    direction_flips : int;
    coverage : float;  (** latest cumulative contention coverage *)
    corpus_size : int;
    generate_seconds : float;
    execute_seconds : float;
    feedback_seconds : float;
    wall_seconds : float;  (** since the aggregator was created *)
    events_per_second : float;
    testcases_per_second : float;
    pool_utilization : float;
        (** share of campaign wall-clock spent in the execute phase (the
            part the worker pool parallelises) *)
    cycles_simulated : int;  (** cycles actually simulated (after reuse) *)
    cycles_saved : int;  (** cycles skipped via prefix checkpointing *)
    checkpoint_hits : int;  (** dual runs that resumed from a checkpoint *)
  }

  val to_json : snapshot -> Json.t

  val pp : Format.formatter -> snapshot -> unit
end

val aggregator : unit -> sink * (unit -> Metrics.snapshot)
(** A counting sink plus its snapshot function (callable at any time,
    including mid-campaign). *)

(** {1 Profiling spans}

    A recorder turns lexical regions into hierarchical {!event.Span_begin} /
    {!event.Span_end} events: span ids are sequential, the parent is
    whatever span is open on the recorder's stack, and durations come from
    the recorder's clock (injectable for deterministic tests). Spans are
    wall-clock data and therefore live in the timings opt-in class. *)

module Span : sig
  type recorder

  val recorder : ?clock:(unit -> float) -> (event -> unit) -> recorder
  (** [clock] defaults to [Unix.gettimeofday]. *)

  val enter : recorder -> string -> unit -> unit
  (** Open a span; the returned closure ends it (idempotent). *)

  val wrap : recorder -> string -> (unit -> 'a) -> 'a
  (** Run a thunk inside a span; the span ends even if the thunk raises. *)

  val hook : recorder -> string -> unit -> unit
  (** {!enter} in the shape the IR/RTL-sim profiler hooks expect
      ({!Sonar_ir.Analysis.set_profiler} and friends). *)
end

val flush_histograms :
  Histogram.registry -> generation:int -> (event -> unit) -> unit
(** Emit one {!event.Interval_histogram} per dirty registry key (sorted, so
    emission order is deterministic) and clear the dirty set. *)

(** {1 Contention observatory} *)

module Observatory : sig
  type point_hist = {
    point : string;
    src_pair : int;
    hist : Histogram.t;  (** latest cumulative distribution *)
  }

  type span_node = {
    span_name : string;
    calls : int;  (** same-named spans merged under one node *)
    seconds : float;  (** summed over merged spans *)
    children : span_node list;
  }

  type snapshot = {
    points : point_hist list;
        (** ascending by (min interval, point, source pair) — the fuzzer's
            "closest to contention" order *)
    heatmap : (string * float) list;  (** latest per-component weights *)
    span_tree : span_node list;
  }

  val to_json : snapshot -> Json.t

  val pp : ?top:int -> Format.formatter -> snapshot -> unit
  (** Sparkline table of the [top] (default 10) points, the heatmap as
      horizontal bars, and the merged span tree. *)

  val build_span_tree : (int * int option * string * float) list -> span_node list
  (** Merge raw (id, parent, name, seconds) spans — in begin order — into a
      tree grouping same-named spans under the same parent path. Spans whose
      parent id is absent become roots (tolerates truncated traces). *)

  val merge_span_trees : span_node list -> span_node list -> span_node list
  (** Merge two span forests: same-named nodes under the same parent path
      combine (calls and seconds summed, children merged recursively);
      first-forest name order is preserved, new names append. *)

  val merge : snapshot -> snapshot -> snapshot
  (** Cluster-level merge of two campaign snapshots (e.g. per-shard
      traces): interval histograms with the same (point, source-pair) key
      sum via {!Histogram.merge} and the points re-sort by the usual
      (min interval, point, pair) order; heatmap weights sum per
      component; span trees merge via {!merge_span_trees}. *)
end

val observatory : unit -> sink * (unit -> Observatory.snapshot)
(** A sink accumulating {!event.Interval_histogram},
    {!event.Coverage_heatmap} and span events into an
    {!Observatory.snapshot} (callable at any time); all other events are
    ignored. *)

val progress : ?out:out_channel -> every:int -> total:int -> unit -> sink
(** A human progress reporter (default on [stderr]): after each generation
    that completes at least [every] testcases since the last report, prints
    one line with testcases done / [total], coverage, timing differences,
    corpus size, and testcases/sec, plus a final line when the campaign
    ends. The channel is flushed after every report line (and again on
    [close]), so progress stays visible when the channel is a pipe — CI
    log capture, [sonar serve] supervision — where line buffering would
    otherwise sit on the output indefinitely. *)
