(** Live campaign observability over HTTP.

    A minimal HTTP/1.1 server (plain [Unix] sockets, no dependencies)
    run from its own domain so a running campaign can be scraped without
    touching the fuzzing loop. The intended wiring — what
    [sonar fuzz --serve PORT] does — is an {!Telemetry.aggregator} and
    {!Telemetry.observatory} wrapped in {!Telemetry.synchronized} on a
    shared mutex; the handler snapshots them under the same mutex, so
    scrapes see a consistent view.

    Endpoints built by {!routes}:
    - [GET /healthz] — liveness plus campaign state (small JSON doc);
    - [GET /snapshot] — the full {!Telemetry.Metrics.snapshot} and
      {!Telemetry.Observatory.snapshot} as one JSON document;
    - [GET /metrics] — Prometheus text exposition format ({!prometheus}).

    The server answers one request per connection ([Connection: close]),
    GET only; anything else gets 405. Requests are served sequentially —
    scraping traffic, not a web service. *)

type response = { status : int; content_type : string; body : string }

type handler = string -> response option
(** Maps a request path (query string already stripped) to a response;
    [None] means 404. *)

val ok_json : Json.t -> response
(** 200 with [application/json]. *)

val ok_text : string -> response
(** 200 with the Prometheus text exposition content type. *)

type t

val start : ?host:string -> port:int -> handler -> t
(** Bind [host] (default ["127.0.0.1"]) : [port] (0 picks a free port —
    read it back with {!port}) and serve from a freshly spawned domain.
    Raises [Unix.Unix_error] if the bind fails. *)

val port : t -> int
(** The actually-bound port. *)

val stop : t -> unit
(** Stop accepting, join the server domain, close the socket.
    Idempotent. *)

val routes :
  healthz:(unit -> Json.t) ->
  snapshot:(unit -> Json.t) ->
  metrics:(unit -> string) ->
  handler
(** The standard three-endpoint handler described above. *)

val prometheus :
  Telemetry.Metrics.snapshot -> Telemetry.Observatory.snapshot -> string
(** Render both snapshots in the Prometheus text exposition format:
    campaign counters ([sonar_testcases_total], [sonar_ccd_findings_total],
    [sonar_cycles_saved_total], …), gauges ([sonar_coverage],
    [sonar_corpus_size], …), per-phase [sonar_phase_seconds_total{phase=…}],
    one [sonar_point_min_interval_cycles{point=…,pair=…}] gauge per
    observatory point, and the merged interval distribution as a native
    histogram [sonar_interval_cycles] whose [le] boundaries are the
    power-of-two bucket upper bounds of {!Histogram.bucket_range}. *)
