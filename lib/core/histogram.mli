(** Power-of-two bucketed integer histograms, the unit of the contention
    observatory's per-(point, source-pair) interval distributions.

    Bucket 0 holds the value 0; bucket [k >= 1] holds the range
    [[2^(k-1), 2^k - 1]]. Counts are exact and accumulation commutes, so a
    histogram — and every trace event derived from one — is a deterministic
    function of the multiset of observed values. *)

type t

val create : unit -> t
val copy : t -> t

val add : t -> int -> unit
(** Record one observation (negative values clamp to 0). *)

val total : t -> int
val min_value : t -> int option
val max_value : t -> int option

val bucket_of : int -> int
(** The bucket index a value falls into. *)

val bucket_range : int -> int * int
(** Inclusive value range of a bucket. *)

val counts : t -> (int * int) list
(** Non-empty buckets as (bucket index, count), ascending. *)

val of_counts : min_value:int -> max_value:int -> (int * int) list -> t
(** Rebuild a histogram from {!counts} output plus its recorded extrema
    (bucket boundaries are too coarse to recover exact min/max). *)

val merge : t -> t -> t
(** Pointwise sum; the arguments are not mutated. *)

val sparkline : t -> string
(** Unicode bar rendering over the populated bucket range ([""] when
    empty); empty interior buckets render as spaces. *)

val to_json : t -> Json.t
(** [{"total":n,"min":m,"max":M,"buckets":[[bucket,count],...]}]; [min] and
    [max] are [null] when empty. *)

val of_json : Json.t -> t option

(** {1 Registry}

    Keyed histograms (key = contention point name × source-pair id) with a
    dirty set, so a producer can accumulate per testcase and flush only the
    keys touched since the previous flush — the mechanism behind the
    per-generation [interval_histogram] trace events. *)

type key = string * int

type registry

val registry : unit -> registry

val observe : registry -> point:string -> src_pair:int -> int -> unit
(** Add one interval observation for (point, source pair), creating the
    histogram on first sight and marking the key dirty. *)

val to_list : registry -> (key * t) list
(** Every histogram, sorted by key. *)

val drain_dirty : registry -> (key * t) list
(** The histograms touched since the last drain, sorted by key; clears the
    dirty set. The returned histograms are live (not copies). *)
