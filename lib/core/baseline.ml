let random_testing ?(seed = 1L) ?(dual = false) ?max_cycles cfg ~iterations =
  Fuzzer.run
    ~options:{ Fuzzer.Options.default with seed; dual; max_cycles }
    cfg Fuzzer.random_strategy ~iterations

(* SpecDoctor-style fuzzing: coverage-retained random mutation, secret
   regions biased to transient faults, no interval feedback. *)
let specdoctor ?(seed = 7L) ?max_cycles cfg ~iterations =
  let rng = Rng.create seed in
  let mstate = Mutation.create_state () in
  let coverage = Coverage.create () in
  let series = ref [] in
  (* Seed pool: testcases that reached new contention points. *)
  let pool = ref [] in
  let transient_flavor () =
    (* Always a gated transient-style body, as SpecDoctor's templates focus
       on secret-dependent transient windows. *)
    Testcase.Gated
      {
        body =
          [
            Sonar_isa.Instr.Itype (Sonar_isa.Instr.SLLI, Sonar_isa.Reg.of_int 6, Sonar_isa.Reg.of_int 5, 6);
            Sonar_isa.Instr.Rtype
              (Sonar_isa.Instr.ADD, Sonar_isa.Reg.of_int 6, Sonar_isa.Reg.of_int 6, Sonar_isa.Reg.of_int 11);
            Sonar_isa.Instr.Load (Sonar_isa.Instr.LD, Sonar_isa.Reg.of_int 7, Sonar_isa.Reg.of_int 6, 0);
          ];
      }
  in
  for iteration = 1 to iterations do
    let tc =
      match !pool with
      | seed_tc :: _ when Rng.chance rng 0.6 ->
          (* Random (undirected) mutation of a pool member. *)
          let chosen = Rng.pick rng !pool in
          ignore seed_tc;
          Mutation.mutate rng mstate ~directed_enabled:false chosen
      | _ ->
          (* SpecDoctor's generator has no dependency-chain structure and a
             fixed transient-focused secret region. *)
          let tc = Testcase.random rng ~id:iteration ~dual:false in
          { tc with flavor = transient_flavor (); chains = [] }
    in
    let pair = Executor.execute ?max_cycles cfg tc in
    let added = Coverage.add_pair coverage pair in
    if added > 0. then pool := tc :: !pool;
    series :=
      {
        Fuzzer.iteration;
        coverage = Coverage.total coverage;
        timing_diffs = 0;
        corpus_size = List.length !pool;
      }
      :: !series
  done;
  List.rev !series
