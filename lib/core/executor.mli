(** Testcase execution: one run per secret value.

    Runs start from cold machine state and are deterministic, so every
    timing difference between the two runs is caused by the secret — the
    differential setting the detector (§7) assumes. By default the two
    runs execute as a prefix-checkpointed dual run
    ({!Sonar_uarch.Machine.run_dual}): the shared prefix before the first
    secret-dependent instruction is simulated once, which is bit-identical
    to two full runs but skips [cp.cycles_saved] simulated cycles. *)

type pair = {
  run0 : Sonar_uarch.Machine.result;  (** secret = 0 *)
  run1 : Sonar_uarch.Machine.result;  (** secret = 1 *)
  cp : Sonar_uarch.Machine.dual_stats;
      (** checkpoint outcome for this dual run (fork cycle, cycles saved);
          deterministic per testcase, independent of jobs/chunk *)
}

val run_pair :
  ?max_cycles:int ->
  ?ctx:Sonar_uarch.Machine.Ctx.t ->
  ?checkpoint:bool ->
  Sonar_uarch.Config.t ->
  (secret:int -> Sonar_uarch.Machine.core_input array) ->
  pair
(** Low-level entry used both by the fuzzer (via {!execute}) and by the
    hand-built channel scenarios. Without [ctx], runs on the calling
    domain's reusable scratch context — sequential callers get the same
    allocation reuse as pool workers. [checkpoint] (default [true])
    toggles the prefix-checkpointed dual run. *)

val execute :
  ?max_cycles:int ->
  ?checkpoint:bool ->
  ?emit:(Telemetry.event -> unit) ->
  Sonar_uarch.Config.t ->
  Testcase.t ->
  pair
(** [emit] receives one {!Telemetry.event.Testcase_executed} after the two
    secret-runs complete. *)

val auto_chunk : jobs:int -> int -> int
(** [auto_chunk ~jobs n] is the chunk size {!execute_batch} derives when
    none is given for a batch of [n] testcases on a [jobs]-worker pool:
    [n] split into roughly two slices per worker ([ceil (n / (2*jobs))],
    at least 1) — coarse enough to amortise per-task dispatch over many
    simulated runs, fine enough that a straggler slice does not idle the
    pool at the generation barrier. *)

val execute_batch :
  ?max_cycles:int ->
  ?pool:Domain_pool.t ->
  ?chunk:int ->
  ?checkpoint:bool ->
  ?emit:(Telemetry.event -> unit) ->
  ?hists:Telemetry.Histogram.registry ->
  Sonar_uarch.Config.t ->
  Testcase.t list ->
  pair list
(** Execute every testcase; with [pool], fan the batch across it in
    {e chunks} — one pool task runs both secret-runs of a slice of
    [chunk] testcases (default {!auto_chunk}) on its worker's reusable
    {!Sonar_uarch.Machine.Ctx} scratch context, kept in
    {!Domain_pool} worker-local storage so the hot loop allocates no
    cache or contention-point tables per testcase. Sequential when no
    pool is given (the calling domain reuses its own scratch context).

    Results are in input order and element-wise identical to {!execute}
    per testcase for {e every} [(jobs, chunk)] value: a reused context is
    reset to cold start per run and behaves bit-identically to a fresh
    machine (tested). [emit] is invoked only from the calling domain, one
    {!Telemetry.event.Testcase_executed} per testcase in input order.
    [hists] accumulates each pair's {!min_intervals} likewise on the
    calling domain in input order, so the resulting distributions — and
    the trace events flushed from them — are independent of both pool
    size and chunking.

    @raise Invalid_argument when [chunk < 1]. *)

val min_intervals : pair -> ((string * int) * int) list
(** Per (contention point, source pair), the smaller of the two runs'
    minimum pairwise [reqsIntvl] (points that never saw two sources are
    absent). *)

val triggered : pair -> ((string * Sonar_uarch.Cpoint.kind * int) * float) list
(** Union over both runs of triggered sub-points, with the netlist weight
    ([fanout / max_subs]) each contributes to contention coverage. *)

val single_valid_share : pair -> float
(** Fraction of this pair's triggered weight located at single-valid points
    (Figure 9's dominance metric). *)
