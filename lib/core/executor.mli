(** Testcase execution: one run per secret value, on a fresh machine.

    Runs are cold-started and deterministic, so every timing difference
    between the two runs is caused by the secret — the differential setting
    the detector (§7) assumes. *)

type pair = {
  run0 : Sonar_uarch.Machine.result;  (** secret = 0 *)
  run1 : Sonar_uarch.Machine.result;  (** secret = 1 *)
}

val run_pair :
  ?max_cycles:int ->
  Sonar_uarch.Config.t ->
  (secret:int -> Sonar_uarch.Machine.core_input array) ->
  pair
(** Low-level entry used both by the fuzzer (via {!execute}) and by the
    hand-built channel scenarios. *)

val execute :
  ?max_cycles:int ->
  ?emit:(Telemetry.event -> unit) ->
  Sonar_uarch.Config.t ->
  Testcase.t ->
  pair
(** [emit] receives one {!Telemetry.event.Testcase_executed} after the two
    secret-runs complete. *)

val execute_batch :
  ?max_cycles:int ->
  ?pool:Domain_pool.t ->
  ?emit:(Telemetry.event -> unit) ->
  ?hists:Telemetry.Histogram.registry ->
  Sonar_uarch.Config.t ->
  Testcase.t list ->
  pair list
(** Execute every testcase, fanning the two secret-runs inside each pair
    across [pool] (sequential when no pool is given). Results are in input
    order and element-wise identical to {!execute} per testcase: each
    [Machine.run] allocates all of its mutable state per call, so the runs
    share nothing. [emit] is invoked only from the calling domain, one
    {!Telemetry.event.Testcase_executed} per testcase in input order —
    identical for every pool size. [hists] accumulates each pair's
    {!min_intervals} into the observatory's per-(point, source-pair)
    histogram registry, likewise on the calling domain in input order, so
    the resulting distributions — and the trace events flushed from them —
    are independent of the pool size. *)

val min_intervals : pair -> ((string * int) * int) list
(** Per (contention point, source pair), the smaller of the two runs'
    minimum pairwise [reqsIntvl] (points that never saw two sources are
    absent). *)

val triggered : pair -> ((string * Sonar_uarch.Cpoint.kind * int) * float) list
(** Union over both runs of triggered sub-points, with the netlist weight
    ([fanout / max_subs]) each contributes to contention coverage. *)

val single_valid_share : pair -> float
(** Fraction of this pair's triggered weight located at single-valid points
    (Figure 9's dominance metric). *)
