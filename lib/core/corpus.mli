(** Seed corpus with interval-based retention and selection (§6.2.1).

    A testcase is retained iff it lowers the smallest observed [reqsIntvl]
    at {e some} contention point. Selection prefers the contention point
    closest to, but not at, interval zero, and picks uniformly among the
    retained testcases achieving that minimum there. *)

type point = string * int
(** A tracked target: (contention point name, source-pair id). *)

type entry = {
  tc : Testcase.t;
  intervals : (point * int) list;  (** min pairwise interval per point *)
}

type t

val create : ?max_entries:int -> unit -> t

val add :
  ?emit:(Telemetry.event -> unit) ->
  t ->
  Testcase.t ->
  intervals:(point * int) list ->
  unit
(** Retain the testcase unconditionally (feedback strategies whose novelty
    criterion is not interval improvement — e.g. timing-coverage — still
    share the ring buffer and best-interval bookkeeping). Best intervals
    are updated where the testcase improves them; eviction and retention
    events reach [emit] as in {!consider}. *)

val consider :
  ?emit:(Telemetry.event -> unit) ->
  t ->
  Testcase.t ->
  intervals:(point * int) list ->
  bool
(** Add the testcase if it improves any point's best interval; returns
    whether it was retained. Beyond [max_entries] the oldest entry is
    evicted in O(1) (ring buffer overwrite). [emit] receives a
    {!Telemetry.event.Corpus_evicted} for the overwritten entry (if any)
    followed by a {!Telemetry.event.Corpus_retained} for the new one. *)

val select : t -> Rng.t -> (entry * point) option
(** A seed to mutate plus the target contention point (the one with the
    smallest non-zero best interval). [None] while the corpus is empty or
    every tracked point already reached zero. *)

val best_interval : t -> point -> int option
(** Best (smallest) interval recorded for a point so far. *)

val size : t -> int
(** Retained entry count; O(1). *)

val entries : t -> entry list
(** All retained entries, newest first. *)
