(** Minimal JSON document model shared by every machine-readable output of
    the framework: the telemetry JSONL trace writer, the CLI's
    [--format json] mode, and the bench harness's result files.

    Serialisation is deterministic: object fields print in the order given,
    floats use a shortest round-trip decimal form, and there is no
    whitespace — so two structurally equal documents serialise to the same
    bytes (the property the trace-determinism tests assert). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!of_string} with a position-annotated message. *)

val to_string : t -> string
(** Compact (whitespace-free) serialisation. Non-finite floats serialise as
    [null] (JSON has no representation for them). *)

val of_string : string -> t
(** Parse one JSON document; trailing non-whitespace raises
    {!Parse_error}. Numbers without [.], [e] or [E] parse as [Int]. *)

val member : string -> t -> t
(** Field lookup in an [Obj] ([Null] when absent or not an object). *)

val to_int : t -> int
(** @raise Parse_error when the value is not an [Int]. *)

val to_float : t -> float
(** Accepts [Float] and [Int]. @raise Parse_error otherwise. *)

val to_str : t -> string
(** @raise Parse_error when the value is not a [String]. *)
