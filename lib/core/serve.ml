(* Minimal HTTP/1.1 observability server on raw Unix sockets. One
   request per connection, GET only, served sequentially from a
   dedicated domain — sized for Prometheus scrapes and curl, nothing
   more. *)

type response = { status : int; content_type : string; body : string }
type handler = string -> response option

let ok_json doc =
  { status = 200; content_type = "application/json"; body = Json.to_string doc }

let ok_text body =
  { status = 200; content_type = "text/plain; version=0.0.4"; body }

let status_text = function
  | 200 -> "OK"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 400 -> "Bad Request"
  | _ -> "Internal Server Error"

(* ------------------------------------------------------------------ *)
(* Request/response plumbing.                                          *)

let write_all fd s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    pos := !pos + Unix.write_substring fd s !pos (len - !pos)
  done

let send fd r =
  write_all fd
    (Printf.sprintf
       "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
        Connection: close\r\n\r\n%s"
       r.status (status_text r.status) r.content_type
       (String.length r.body) r.body)

(* Read until the end of the request head; we never accept bodies, so
   this is all we need. Bounded so a garbage client can't grow the
   buffer without limit. *)
let read_head fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 512 in
  let rec loop () =
    if Buffer.length buf > 8192 then None
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> None
      | n ->
          Buffer.add_subbytes buf chunk 0 n;
          let s = Buffer.contents buf in
          let rec has_end i =
            i + 3 < String.length s
            && (String.sub s i 4 = "\r\n\r\n" || has_end (i + 1))
          in
          if has_end 0 then Some s else loop ()
  in
  try loop () with Unix.Unix_error _ -> None

let handle handler fd =
  (* a wedged client must not stall the accept loop forever *)
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0 with _ -> ());
  (match read_head fd with
  | None -> ()
  | Some head -> (
      let request_line =
        match String.index_opt head '\r' with
        | Some i -> String.sub head 0 i
        | None -> head
      in
      match String.split_on_char ' ' request_line with
      | [ "GET"; target; _version ] -> (
          let path =
            match String.index_opt target '?' with
            | Some i -> String.sub target 0 i
            | None -> target
          in
          match handler path with
          | Some r -> send fd r
          | None ->
              send fd
                { status = 404; content_type = "text/plain";
                  body = "not found\n" })
      | _ :: _ :: _ ->
          send fd
            { status = 405; content_type = "text/plain";
              body = "method not allowed\n" }
      | _ ->
          send fd
            { status = 400; content_type = "text/plain";
              body = "bad request\n" }));
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Server lifecycle.                                                   *)

type t = {
  sock : Unix.file_descr;
  bound_port : int;
  stopping : bool Atomic.t;
  domain : unit Domain.t;
  stopped : bool Atomic.t;
}

let serve_loop stopping sock handler =
  while not (Atomic.get stopping) do
    (* poll rather than block in accept: closing a socket another domain
       is blocked in does not reliably wake it up *)
    match Unix.select [ sock ] [] [] 0.1 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> Atomic.set stopping true
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept sock with
        | exception Unix.Unix_error _ -> ()
        | client, _ -> ( try handle handler client with _ -> (
            try Unix.close client with _ -> ())))
  done

let start ?(host = "127.0.0.1") ~port handler =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.listen sock 16
   with e ->
     (try Unix.close sock with _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let stopping = Atomic.make false in
  let domain = Domain.spawn (fun () -> serve_loop stopping sock handler) in
  { sock; bound_port; stopping; domain; stopped = Atomic.make false }

let port t = t.bound_port

let stop t =
  if not (Atomic.exchange t.stopped true) then begin
    Atomic.set t.stopping true;
    Domain.join t.domain;
    try Unix.close t.sock with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Standard routes.                                                    *)

let routes ~healthz ~snapshot ~metrics path =
  match path with
  | "/healthz" -> Some (ok_json (healthz ()))
  | "/snapshot" -> Some (ok_json (snapshot ()))
  | "/metrics" -> Some (ok_text (metrics ()))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition.                                         *)

let fmt_float = Printf.sprintf "%.12g"

let escape_label s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prometheus (m : Telemetry.Metrics.snapshot)
    (o : Telemetry.Observatory.snapshot) =
  let buf = Buffer.create 2048 in
  let family name kind help =
    Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  let int_metric name v =
    Buffer.add_string buf (Printf.sprintf "%s %d\n" name v)
  in
  let float_metric name v =
    Buffer.add_string buf (Printf.sprintf "%s %s\n" name (fmt_float v))
  in
  let counter name help v =
    family name "counter" help;
    int_metric name v
  in
  let gauge name help v =
    family name "gauge" help;
    float_metric name v
  in
  counter "sonar_events_total" "Telemetry events seen" m.events;
  counter "sonar_generations_total" "Fuzzing generations completed"
    m.generations;
  counter "sonar_testcases_total" "Testcases executed" m.testcases;
  counter "sonar_contention_testcases_total"
    "Testcases that triggered new contention" m.contention_testcases;
  counter "sonar_ccd_findings_total"
    "Secret-reflecting timing differences found" m.ccd_findings;
  counter "sonar_finding_testcases_total"
    "Testcases with at least one CCD finding" m.finding_testcases;
  counter "sonar_corpus_retained_total" "Testcases retained in the corpus"
    m.retained;
  counter "sonar_corpus_evicted_total" "Testcases evicted from the corpus"
    m.evicted;
  counter "sonar_direction_flips_total" "Mutation direction flips"
    m.direction_flips;
  counter "sonar_cycles_simulated_total"
    "Cycles actually simulated (after checkpoint reuse)" m.cycles_simulated;
  counter "sonar_cycles_saved_total"
    "Cycles skipped via prefix checkpointing" m.cycles_saved;
  counter "sonar_checkpoint_hits_total"
    "Dual runs resumed from a prefix checkpoint" m.checkpoint_hits;
  gauge "sonar_coverage" "Cumulative contention coverage" m.coverage;
  gauge "sonar_corpus_size" "Current corpus size"
    (float_of_int m.corpus_size);
  gauge "sonar_testcases_per_second" "Campaign throughput"
    m.testcases_per_second;
  gauge "sonar_pool_utilization"
    "Share of wall-clock spent in the execute phase" m.pool_utilization;
  family "sonar_wall_seconds" "gauge" "Campaign wall-clock so far";
  float_metric "sonar_wall_seconds" m.wall_seconds;
  family "sonar_phase_seconds_total" "counter"
    "Wall-clock per campaign phase";
  List.iter
    (fun (phase, v) ->
      float_metric
        (Printf.sprintf "sonar_phase_seconds_total{phase=\"%s\"}"
           (escape_label phase))
        v)
    [
      ("generate", m.generate_seconds);
      ("execute", m.execute_seconds);
      ("feedback", m.feedback_seconds);
    ];
  if o.points <> [] then begin
    family "sonar_point_min_interval_cycles" "gauge"
      "Minimum observed contention interval per (point, source pair)";
    List.iter
      (fun (p : Telemetry.Observatory.point_hist) ->
        match Telemetry.Histogram.min_value p.hist with
        | None -> ()
        | Some v ->
            int_metric
              (Printf.sprintf
                 "sonar_point_min_interval_cycles{point=\"%s\",pair=\"%d\"}"
                 (escape_label p.point) p.src_pair)
              v)
      o.points
  end;
  (* All points merged into one distribution: the per-bucket counts are
     already cumulative campaign state, so they render directly as a
     native histogram. le boundaries are the power-of-two bucket upper
     bounds; _sum is the bucket-midpoint estimate (exact values are not
     retained). *)
  let merged =
    List.fold_left
      (fun acc (p : Telemetry.Observatory.point_hist) ->
        Telemetry.Histogram.merge acc p.hist)
      (Telemetry.Histogram.create ())
      o.points
  in
  let counts = Telemetry.Histogram.counts merged in
  let total = Telemetry.Histogram.total merged in
  family "sonar_interval_cycles" "histogram"
    "Contention interval distribution across all points";
  let cum = ref 0 in
  let sum = ref 0. in
  List.iter
    (fun (bucket, n) ->
      let lo, hi = Telemetry.Histogram.bucket_range bucket in
      cum := !cum + n;
      sum := !sum +. (float_of_int n *. (float_of_int (lo + hi) /. 2.));
      int_metric
        (Printf.sprintf "sonar_interval_cycles_bucket{le=\"%d\"}" hi)
        !cum)
    counts;
  int_metric "sonar_interval_cycles_bucket{le=\"+Inf\"}" total;
  float_metric "sonar_interval_cycles_sum" !sum;
  int_metric "sonar_interval_cycles_count" total;
  Buffer.contents buf
