(** The Sonar fuzzing loop (§6) and its campaign statistics.

    Each iteration generates or mutates a testcase, executes it under both
    secret values, feeds contention intervals back into the corpus, and
    accumulates:

    - {e contention coverage}: the netlist-weighted set of triggered
      contention sub-points (Figure 8 top);
    - {e timing differences}: CCD findings that reflect the secret
      (Figure 8 bottom);
    - per-iteration series for plotting, and the detector reports of every
      finding-bearing testcase.

    The strategy record switches retention / selection / directed mutation
    independently (the Figure 10 breakdown). All-off is the random-testing
    baseline the paper compares against.

    {b Parallel execution.} The loop is organised in {e generations}: each
    generation draws [batch] candidates sequentially (each from its own
    {!Rng.split} stream), executes them across a {!Domain_pool} of [jobs]
    workers, then folds coverage / corpus / detector / mutation-feedback
    updates sequentially in candidate order. Selection and directed
    mutation therefore react to feedback at generation granularity, and the
    outcome is a pure function of (seed, strategy, iterations, batch) —
    bit-identical for every [jobs] value. *)

type strategy = {
  retention : bool;
  selection : bool;
  directed_mutation : bool;
}

val full_strategy : strategy
val random_strategy : strategy

type series_point = {
  iteration : int;
  coverage : float;  (** cumulative triggered contention points (weighted) *)
  timing_diffs : int;  (** cumulative secret-reflecting CCD findings *)
  corpus_size : int;
}

type outcome = {
  series : series_point list;  (** one per iteration, in order *)
  final_coverage : float;
  final_timing_diffs : int;
  testcases_with_diffs : int;
  contentions_triggered_testcases : int;
      (** testcases that triggered at least one contention *)
  single_valid_share_first20 : float;  (** Figure 9's dominance measure *)
  reports : (int * Detector.report) list;
      (** (iteration, report) for every testcase with CCD findings *)
}

val default_batch : int
(** Generation size used when [batch] is not given (8). *)

val run :
  ?seed:int64 ->
  ?dual:bool ->
  ?max_cycles:int ->
  ?jobs:int ->
  ?batch:int ->
  Sonar_uarch.Config.t ->
  strategy ->
  iterations:int ->
  outcome
(** [jobs] (default 1) sizes the worker pool candidates execute on; it
    affects wall-clock only, never the outcome. [batch] (default
    {!default_batch}) is the generation size and {e does} shape the
    campaign (feedback lands at generation boundaries); keep it fixed when
    comparing runs. *)
