(** The Sonar fuzzing loop (§6) and its campaign statistics.

    Each iteration generates or mutates a testcase, executes it under both
    secret values, feeds contention intervals back into the corpus, and
    accumulates:

    - {e contention coverage}: the netlist-weighted set of triggered
      contention sub-points (Figure 8 top);
    - {e timing differences}: CCD findings that reflect the secret
      (Figure 8 bottom);
    - per-iteration series for plotting, and the detector reports of every
      finding-bearing testcase.

    The feedback policy is a first-class {!Feedback.t} value: the loop
    dispatches seed selection, post-execution learning and retention
    through its hooks, so the paper's policy ({!Feedback.sonar}), the
    random baseline ({!Feedback.random}), the boolean breakdown of
    Figure 10 ({!Feedback.of_flags}) and the competitor strategies all run
    through one campaign loop.

    {b Parallel execution.} The loop is organised in {e generations}: each
    generation draws [batch] candidates sequentially (each from its own
    {!Rng.split} stream), executes them across a {!Domain_pool} of [jobs]
    workers in chunked slices of [chunk] candidates per task (each worker
    reusing a domain-local {!Sonar_uarch.Machine.Ctx} scratch context),
    then folds coverage / corpus / detector / mutation-feedback updates
    sequentially in candidate order. Selection and directed mutation
    therefore react to feedback at generation granularity, and the outcome
    is a pure function of (seed, strategy, iterations, batch) —
    bit-identical for every [jobs] and [chunk] value.

    {b Telemetry.} When {!Options.t.sinks} is non-empty, the campaign
    streams {!Telemetry.event}s: a {!Telemetry.event.Campaign_start}
    header naming the strategy, generation boundaries, phase timings,
    per-(point, source-pair) interval histograms, per-component coverage
    heatmaps and profiling spans from this module, per-testcase execution
    events from {!Executor}, retention/eviction events from {!Corpus}. All
    events except the wall-clock class ({!Telemetry.is_timing_event}:
    phase timings and spans) are deterministic and independent of [jobs];
    with no sinks nothing is constructed at all. If the campaign raises
    (a failing DUT, a crashing sink), every sink is closed before the
    exception propagates, so an attached {!Telemetry.jsonl_file} trace is
    flushed and stays parseable up to the point of failure. *)

type strategy = Feedback.t
(** The feedback policy driving a campaign. Build one from the registry
    ({!Feedback.create}), a preset, or {!Feedback.of_flags}. *)

val full_strategy : strategy
(** Alias of {!Feedback.sonar} — the paper's full policy. *)

val random_strategy : strategy
(** Alias of {!Feedback.random} — the blind random-testing baseline. *)

type series_point = {
  iteration : int;
  coverage : float;  (** cumulative triggered contention points (weighted) *)
  timing_diffs : int;  (** cumulative secret-reflecting CCD findings *)
  corpus_size : int;
}

type outcome = {
  series : series_point list;  (** one per iteration, in order *)
  final_coverage : float;
  final_timing_diffs : int;
  testcases_with_diffs : int;
  contentions_triggered_testcases : int;
      (** testcases that triggered at least one contention *)
  single_valid_share_first20 : float;  (** Figure 9's dominance measure *)
  reports : (int * Detector.report) list;
      (** (iteration, report) for every testcase with CCD findings *)
  cycles_simulated : int;
      (** cycles actually simulated across all dual runs (after
          checkpoint prefix reuse) *)
  cycles_saved : int;
      (** simulated cycles skipped by prefix checkpointing (0 when
          [Options.checkpoint] is off) *)
  checkpoint_hits : int;
      (** dual runs that resumed from a captured checkpoint *)
}

val default_batch : int
(** Generation size used when [batch] is not given (64 — sized for the
    compiled engine, where single testcases are cheap and the chunked
    parallel executor wants whole slices per worker). *)

(** Campaign configuration. Build one with a record update of
    {!Options.default} so adding fields stays source-compatible:
    [{ Options.default with seed = 7L; jobs = 4 }]. *)
module Options : sig
  type t = {
    seed : int64;  (** RNG seed (default [1L]) *)
    dual : bool;  (** dual-core testcases, Figure 4b (default [false]) *)
    max_cycles : int option;  (** per-run cycle budget override *)
    jobs : int;
        (** worker-pool size; wall-clock only, never the outcome
            (default 1) *)
    batch : int;
        (** generation size; {e does} shape the campaign — feedback lands
            at generation boundaries — keep it fixed when comparing runs
            (default {!default_batch}) *)
    chunk : int option;
        (** testcases per parallel executor task (a {e slice} of the
            generation); wall-clock only, never the outcome. [None]
            (default) derives {!Executor.auto_chunk} from [jobs] *)
    checkpoint : bool;
        (** prefix-checkpointed dual runs
            ({!Sonar_uarch.Machine.run_dual}): simulate the shared prefix
            before the first secret-dependent instruction once per
            testcase instead of twice. Simulated-cycle count only, never
            the fuzzing outcome — results are bit-identical either way
            (tested); only the [cycles_simulated] / [cycles_saved] /
            [checkpoint_hits] statistics differ (default [true]) *)
    sinks : Telemetry.sink list;
        (** telemetry destinations (default [[]]: zero overhead) *)
  }

  val default : t
end

val run :
  ?options:Options.t ->
  Sonar_uarch.Config.t ->
  strategy ->
  iterations:int ->
  outcome
(** Run a campaign. The outcome is a pure function of
    ([options.seed], [strategy], [iterations], [options.batch], and the
    DUT config) — [jobs] and [chunk] change only the wall-clock; sinks
    observe the campaign but never influence it.
    @raise Invalid_argument when [options.batch], [options.jobs], or
    [options.chunk] < 1. *)

val json_of_outcome : outcome -> Json.t
(** Stable JSON form of an outcome (the CLI's [--format json] document;
    the per-iteration series is omitted — use a telemetry trace for
    per-iteration data). *)
