(** First-class feedback strategies: the policy layer of the fuzzing loop.

    The seed fuzzer hard-wired one policy — retain on min-[reqsIntvl]
    improvement, select the point nearest zero — behind three booleans.
    This module makes the policy a value: {!Fuzzer.run} drives any {!t}
    through three hooks, and ships the paper's policy ({!sonar}) alongside
    a blind baseline ({!random}) and three competitors drawn from related
    work (see {!all}).

    {b The contract.} Per candidate, the fuzzer calls:

    + [select campaign rng] at generation time — pick a corpus seed to
      mutate (and the mutation {!operator} to apply, plus an optional
      directed-mutation {!target}), or [None] for a fresh random testcase;
    + [reward campaign observation] at fold time — learn from the executed
      candidate (directed-mutation feedback, bandit statistics, ...);
    + [consider campaign testcase observation] at fold time — decide
      retention; returns whether the testcase entered the corpus.

    Because the loop is organised in generations, every [select] of a
    generation sees the corpus and learner state as of the {e previous}
    generation boundary; [reward] and [consider] then run sequentially in
    candidate order. See DESIGN.md §"Feedback strategies".

    {b Determinism obligations for strategy authors.} The campaign outcome
    must stay a pure function of (seed, strategy, iterations, batch):

    - draw randomness only from the [rng] handed to [select] (a
      per-candidate {!Rng.split} stream), never from global state;
    - update internal learner state only inside the hooks (they run on the
      campaign's domain, in candidate order, for every [jobs]/[chunk]);
    - treat the [intervals]/[triggered]/[component_delta] lists of an
      {!observation} as {e sets} — retention decisions must not depend on
      their order (asserted by a qcheck property in the test suite);
    - stateful strategies must be fresh per campaign: build them through
      {!create} (one instance per call) rather than sharing a value across
      runs. *)

type target = Corpus.point * int option
(** A directed-mutation target: the contention point being chased and its
    best (smallest) interval at selection time — the baseline {!Fuzzer}
    compares against post-execution to decide [improved]. *)

(** Mutation operator applied to a selected seed ({!Mutation}'s four
    entry points). Strategies that learn over operators (the bandit) pick
    one per selection; the classic presets always use {!Composite}. *)
type operator =
  | Composite  (** {!Mutation.mutate}: directed + occasional random edit *)
  | Directed  (** {!Mutation.directed}: chain length along learned dir *)
  | Random_edit  (** {!Mutation.random_edit}: blind insert/delete/replace *)
  | Similarity  (** {!Mutation.enhance_similarity}: align mem offsets *)

val operator_name : operator -> string

type selection = {
  entry : Corpus.entry;  (** the corpus seed to mutate *)
  target : target option;  (** directed-mutation target, if chasing one *)
  op : operator;
}

type observation = {
  iteration : int;
  testcase : Testcase.t;  (** the executed candidate *)
  pair : Executor.pair;  (** both secret-runs, full results *)
  intervals : (Corpus.point * int) list;
      (** {!Executor.min_intervals}: min in-window interval per
          (point, source pair) — unordered set semantics *)
  triggered : ((string * Sonar_uarch.Cpoint.kind * int) * float) list;
      (** {!Executor.triggered}: weighted triggered sub-points *)
  coverage_added : float;  (** new campaign coverage this testcase added *)
  coverage_total : float;  (** cumulative campaign coverage after it *)
  component_delta : (string * float) list;
      (** per-component share of [coverage_added] (only components that
          gained weight; unordered set semantics) *)
  report : Detector.report;  (** CCD findings + state differentials *)
  target : target option;  (** echoed from the {!selection}, if any *)
  op : operator option;  (** [None] when the candidate was fresh *)
}
(** Everything one executed candidate produced, packaged for the hooks. *)

type campaign = {
  corpus : Corpus.t;
  mstate : Mutation.state;  (** shared directed-mutation direction *)
  emit : (Telemetry.event -> unit) option;
      (** [Some] iff telemetry sinks are attached; pass it to
          {!Corpus.consider} / {!Corpus.add} so retention events reach the
          trace *)
  mutate_ratio : float;
      (** the strategy's mutate-vs-generate ratio, resolved once at
          campaign start (see {!t.mutate_ratio}) *)
}
(** Campaign-lifetime context handed to every hook. *)

type t = {
  name : string;  (** CLI / telemetry identifier, e.g. ["sonar"] *)
  description : string;  (** one line for [--list-strategies] *)
  mutate_ratio : float;
      (** probability of mutating a corpus seed instead of generating a
          fresh testcase, for strategies that draw that choice (the seed
          policy's hard-coded [0.8], now tunable per strategy) *)
  directed_mutation : bool;
      (** whether {!Composite} mutation may apply the directed operator *)
  select : campaign -> Rng.t -> selection option;
  consider : campaign -> Testcase.t -> observation -> bool;
  reward : campaign -> observation -> unit;
}

(** {1 Presets derived from the legacy strategy booleans} *)

type flags = {
  retention : bool;  (** corpus retention on min-interval improvement *)
  selection : bool;  (** interval-weighted point/seed selection (§6.2.1) *)
  directed_mutation : bool;  (** adaptive chain-length mutation (§6.2) *)
}

val of_flags :
  ?name:string -> ?description:string -> ?mutate_ratio:float -> flags -> t
(** The seed policy family: [of_flags] reproduces the historical fuzzer
    behaviour for any boolean combination — the same RNG draw sequence,
    retention rule and directed-mutation feedback — so outcomes are
    bit-identical to the pre-interface fuzzer. [mutate_ratio] defaults to
    the historical [0.8] (only drawn on the retention-without-selection
    path). Stateless: the returned value may be shared across campaigns. *)

val sonar : t
(** The paper's full policy (all flags on): interval-guided selection,
    min-interval retention, adaptive directed mutation. The reference the
    competitors are benchmarked against. *)

val random : t
(** All flags off: a fresh random testcase every iteration, nothing
    retained — the Figure 8 baseline. *)

(** {1 Competitor strategies}

    Stateful: each call builds a fresh learner. Use one instance per
    campaign. *)

val timing_coverage : unit -> t
(** WhisperFuzz-style timing coverage: a testcase is retained when it
    lands a (point, source-pair) interval in a never-seen
    {!Histogram.bucket_of} cell, or adds per-component heatmap weight.
    Selection mutates a uniformly random corpus seed. *)

val state_transition : unit -> t
(** ProcessorFuzz-style state-transition coverage over the golden commit
    trace: retain on a never-seen consecutive pair of commit labels
    (instruction class x branch-taken x faulted x transient), uniform
    seed selection. *)

val bandit : unit -> t
(** ReFuzz-style contextual epsilon-greedy bandit over mutation operators:
    the context is the seed's secret flavor, the four arms are the
    {!operator}s, the payoff is coverage added plus a bonus per CCD
    finding. Deterministic given the campaign RNG. *)

(** {1 Registry} *)

val names : string list
(** The shipped strategy names, in benchmark order. *)

val all : (string * string) list
(** (name, one-line description) for each shipped strategy. *)

val create : string -> t option
(** Look up a shipped strategy by name; stateful strategies are built
    fresh on every call (one campaign per instance). [None] for unknown
    names. *)
