type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a cell = {
  mutable st : 'a state;
  cell_mutex : Mutex.t;
  cell_cond : Condition.t;
}

type task = Task : (unit -> 'a) * 'a cell -> task

type t = {
  mutex : Mutex.t;
  cond : Condition.t;  (* queue became non-empty, or shutdown *)
  queue : task Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  jobs : int;
}

type 'a future = {
  cell : 'a cell;
  pool : t;
}

let default_jobs () =
  let from_env =
    Option.bind (Sys.getenv_opt "SONAR_JOBS") (fun s ->
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 1 -> Some n
        | _ -> None)
  in
  match from_env with
  | Some n -> n
  | None -> max 1 (Domain.recommended_domain_count ())

let jobs t = t.jobs

let run_task (Task (f, cell)) =
  let result =
    match f () with
    | v -> Done v
    | exception e -> Failed (e, Printexc.get_raw_backtrace ())
  in
  Mutex.lock cell.cell_mutex;
  cell.st <- result;
  Condition.broadcast cell.cell_cond;
  Mutex.unlock cell.cell_mutex

let worker_loop t =
  let rec loop () =
    Mutex.lock t.mutex;
    let rec next () =
      if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
      else if t.stopping then None
      else begin
        Condition.wait t.cond t.mutex;
        next ()
      end
    in
    let task = next () in
    Mutex.unlock t.mutex;
    match task with
    | None -> ()
    | Some task ->
        run_task task;
        loop ()
  in
  loop ()

let create ?jobs () =
  let jobs =
    max 1 (match jobs with Some j -> j | None -> default_jobs ())
  in
  let t =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [];
      jobs;
    }
  in
  t.workers <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  let workers = t.workers in
  t.workers <- [];
  List.iter Domain.join workers

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let submit t f =
  let cell =
    { st = Pending; cell_mutex = Mutex.create (); cell_cond = Condition.create () }
  in
  Mutex.lock t.mutex;
  if t.stopping then begin
    Mutex.unlock t.mutex;
    invalid_arg "Domain_pool.submit: pool is shut down"
  end;
  Queue.push (Task (f, cell)) t.queue;
  Condition.signal t.cond;
  Mutex.unlock t.mutex;
  { cell; pool = t }

let try_pop t =
  Mutex.lock t.mutex;
  let task = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
  Mutex.unlock t.mutex;
  task

let await { cell; pool } =
  let rec wait () =
    Mutex.lock cell.cell_mutex;
    let st = cell.st in
    Mutex.unlock cell.cell_mutex;
    match st with
    | Done v -> v
    | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
    | Pending -> (
        (* Help: run someone else's queued task instead of blocking. *)
        match try_pop pool with
        | Some task ->
            run_task task;
            wait ()
        | None ->
            Mutex.lock cell.cell_mutex;
            (match cell.st with
            | Pending -> Condition.wait cell.cell_cond cell.cell_mutex
            | Done _ | Failed _ -> ());
            Mutex.unlock cell.cell_mutex;
            wait ())
  in
  wait ()

let map_list t f xs =
  let futures = List.map (fun x -> submit t (fun () -> f x)) xs in
  List.map await futures

(* --- Worker-local storage --- *)

type 'a key = 'a Domain.DLS.key

let create_key init = Domain.DLS.new_key init
let get key = Domain.DLS.get key

let run_on_each t f =
  (* One barrier task per worker: each blocks until all [jobs] tasks have
     started, so no worker can take two and every worker runs [f] exactly
     once. The caller waits on the cells directly — the helping [await]
     would let the calling domain steal a barrier task and leave one worker
     without one. *)
  let jobs = t.jobs in
  let m = Mutex.create () in
  let c = Condition.create () in
  let started = ref 0 in
  let barrier () =
    Mutex.lock m;
    incr started;
    if !started >= jobs then Condition.broadcast c
    else while !started < jobs do Condition.wait c m done;
    Mutex.unlock m;
    f ()
  in
  let futures = List.init jobs (fun _ -> submit t barrier) in
  List.iter
    (fun { cell; pool = _ } ->
      Mutex.lock cell.cell_mutex;
      let rec wait () =
        match cell.st with
        | Pending ->
            Condition.wait cell.cell_cond cell.cell_mutex;
            wait ()
        | Done () -> Mutex.unlock cell.cell_mutex
        | Failed (e, bt) ->
            Mutex.unlock cell.cell_mutex;
            Printexc.raise_with_backtrace e bt
      in
      wait ())
    futures
