module Histogram = Histogram

type phase = Generate | Execute | Feedback

let phase_name = function
  | Generate -> "generate"
  | Execute -> "execute"
  | Feedback -> "feedback"

let phase_of_name = function
  | "generate" -> Some Generate
  | "execute" -> Some Execute
  | "feedback" -> Some Feedback
  | _ -> None

type event =
  | Campaign_start of {
      strategy : string;
      seed : int64;
      iterations : int;
      batch : int;
      dual : bool;
    }
  | Generation_start of { generation : int; first_iteration : int; size : int }
  | Testcase_executed of { testcase_id : int; cycles0 : int; cycles1 : int }
  | Contention_triggered of { iteration : int; added : float; coverage : float }
  | Ccd_finding of { iteration : int; findings : int; total_delta : int }
  | Corpus_retained of { testcase_id : int; corpus_size : int }
  | Corpus_evicted of { testcase_id : int; corpus_size : int }
  | Mutation_flip of { iteration : int; direction : string }
  | Generation_end of {
      generation : int;
      iterations_done : int;
      coverage : float;
      timing_diffs : int;
      corpus_size : int;
    }
  | Phase_timing of { generation : int; phase : phase; seconds : float }
  | Interval_histogram of {
      generation : int;
      point : string;
      src_pair : int;
      total : int;
      min_interval : int;
      max_interval : int;
      buckets : (int * int) list;
    }
  | Coverage_heatmap of { generation : int; components : (string * float) list }
  | Span_begin of { span_id : int; parent : int option; name : string }
  | Span_end of { span_id : int; name : string; seconds : float }
  | Checkpoint_stats of {
      generation : int;
      testcases : int;
      hits : int;  (** dual runs that resumed from a captured checkpoint *)
      cycles_saved : int;
      cycles_simulated : int;
    }
  | Campaign_end of {
      outcome : string;
      iterations_done : int;
      coverage : float;
      timing_diffs : int;
      corpus_size : int;
      wall_seconds : float option;
    }

(* Span events carry (or bracket) wall-clock measurements, so they join
   Phase_timing in the timings opt-in class excluded from traces by
   default. *)
let is_timing_event = function
  | Phase_timing _ | Span_begin _ | Span_end _ -> true
  | _ -> false

(* Checkpoint statistics are deterministic per testcase (independent of
   jobs/chunk) but differ by construction between checkpoint modes, so
   they form their own opt-in class excluded from default traces: a
   --no-checkpoint campaign's trace stays byte-identical to the
   checkpointed one. *)
let is_execution_event = function Checkpoint_stats _ -> true | _ -> false

type sink = {
  emit : event -> unit;
  close : unit -> unit;
}

let null = { emit = ignore; close = ignore }

let make ?(close = ignore) emit = { emit; close }

let close s = s.close ()

let emit_all sinks ev = List.iter (fun s -> s.emit ev) sinks

let synchronized m s =
  {
    emit = (fun ev -> Mutex.protect m (fun () -> s.emit ev));
    close = (fun () -> Mutex.protect m (fun () -> s.close ()));
  }

(* ------------------------------------------------------------------ *)
(* JSON encoding (schema in DESIGN.md §9).                             *)

let json_of_event ev : Json.t =
  let obj name fields = Json.Obj (("event", Json.String name) :: fields) in
  match ev with
  | Campaign_start e ->
      obj "campaign_start"
        [
          ("strategy", Json.String e.strategy);
          ("seed", Json.Int (Int64.to_int e.seed));
          ("iterations", Json.Int e.iterations);
          ("batch", Json.Int e.batch);
          ("dual", Json.Bool e.dual);
        ]
  | Generation_start e ->
      obj "generation_start"
        [
          ("generation", Json.Int e.generation);
          ("first_iteration", Json.Int e.first_iteration);
          ("size", Json.Int e.size);
        ]
  | Testcase_executed e ->
      obj "testcase_executed"
        [
          ("testcase_id", Json.Int e.testcase_id);
          ("cycles0", Json.Int e.cycles0);
          ("cycles1", Json.Int e.cycles1);
        ]
  | Contention_triggered e ->
      obj "contention_triggered"
        [
          ("iteration", Json.Int e.iteration);
          ("added", Json.Float e.added);
          ("coverage", Json.Float e.coverage);
        ]
  | Ccd_finding e ->
      obj "ccd_finding"
        [
          ("iteration", Json.Int e.iteration);
          ("findings", Json.Int e.findings);
          ("total_delta", Json.Int e.total_delta);
        ]
  | Corpus_retained e ->
      obj "corpus_retained"
        [
          ("testcase_id", Json.Int e.testcase_id);
          ("corpus_size", Json.Int e.corpus_size);
        ]
  | Corpus_evicted e ->
      obj "corpus_evicted"
        [
          ("testcase_id", Json.Int e.testcase_id);
          ("corpus_size", Json.Int e.corpus_size);
        ]
  | Mutation_flip e ->
      obj "mutation_flip"
        [
          ("iteration", Json.Int e.iteration);
          ("direction", Json.String e.direction);
        ]
  | Generation_end e ->
      obj "generation_end"
        [
          ("generation", Json.Int e.generation);
          ("iterations_done", Json.Int e.iterations_done);
          ("coverage", Json.Float e.coverage);
          ("timing_diffs", Json.Int e.timing_diffs);
          ("corpus_size", Json.Int e.corpus_size);
        ]
  | Phase_timing e ->
      obj "phase_timing"
        [
          ("generation", Json.Int e.generation);
          ("phase", Json.String (phase_name e.phase));
          ("seconds", Json.Float e.seconds);
        ]
  | Interval_histogram e ->
      obj "interval_histogram"
        [
          ("generation", Json.Int e.generation);
          ("point", Json.String e.point);
          ("src_pair", Json.Int e.src_pair);
          ("total", Json.Int e.total);
          ("min_interval", Json.Int e.min_interval);
          ("max_interval", Json.Int e.max_interval);
          ( "buckets",
            Json.List
              (List.map
                 (fun (b, c) -> Json.List [ Json.Int b; Json.Int c ])
                 e.buckets) );
        ]
  | Coverage_heatmap e ->
      obj "coverage_heatmap"
        [
          ("generation", Json.Int e.generation);
          ( "components",
            Json.Obj (List.map (fun (name, w) -> (name, Json.Float w)) e.components)
          );
        ]
  | Span_begin e ->
      obj "span_begin"
        [
          ("span_id", Json.Int e.span_id);
          ( "parent",
            match e.parent with Some p -> Json.Int p | None -> Json.Null );
          ("name", Json.String e.name);
        ]
  | Span_end e ->
      obj "span_end"
        [
          ("span_id", Json.Int e.span_id);
          ("name", Json.String e.name);
          ("seconds", Json.Float e.seconds);
        ]
  | Checkpoint_stats e ->
      obj "checkpoint_stats"
        [
          ("generation", Json.Int e.generation);
          ("testcases", Json.Int e.testcases);
          ("hits", Json.Int e.hits);
          ("cycles_saved", Json.Int e.cycles_saved);
          ("cycles_simulated", Json.Int e.cycles_simulated);
        ]
  | Campaign_end e ->
      obj "campaign_end"
        ([
           ("outcome", Json.String e.outcome);
           ("iterations_done", Json.Int e.iterations_done);
           ("coverage", Json.Float e.coverage);
           ("timing_diffs", Json.Int e.timing_diffs);
           ("corpus_size", Json.Int e.corpus_size);
         ]
        @
        match e.wall_seconds with
        | Some w -> [ ("wall_seconds", Json.Float w) ]
        | None -> [])

let event_of_json doc =
  let open Json in
  try
    let i k = to_int (member k doc) in
    let f k = to_float (member k doc) in
    let s k = to_str (member k doc) in
    match to_str (member "event" doc) with
    | "campaign_start" ->
        let dual =
          match member "dual" doc with
          | Bool b -> b
          | _ -> raise (Parse_error "dual must be a bool")
        in
        Some
          (Campaign_start
             {
               strategy = s "strategy";
               seed = Int64.of_int (i "seed");
               iterations = i "iterations";
               batch = i "batch";
               dual;
             })
    | "generation_start" ->
        Some
          (Generation_start
             {
               generation = i "generation";
               first_iteration = i "first_iteration";
               size = i "size";
             })
    | "testcase_executed" ->
        Some
          (Testcase_executed
             {
               testcase_id = i "testcase_id";
               cycles0 = i "cycles0";
               cycles1 = i "cycles1";
             })
    | "contention_triggered" ->
        Some
          (Contention_triggered
             { iteration = i "iteration"; added = f "added"; coverage = f "coverage" })
    | "ccd_finding" ->
        Some
          (Ccd_finding
             {
               iteration = i "iteration";
               findings = i "findings";
               total_delta = i "total_delta";
             })
    | "corpus_retained" ->
        Some
          (Corpus_retained
             { testcase_id = i "testcase_id"; corpus_size = i "corpus_size" })
    | "corpus_evicted" ->
        Some
          (Corpus_evicted
             { testcase_id = i "testcase_id"; corpus_size = i "corpus_size" })
    | "mutation_flip" ->
        Some (Mutation_flip { iteration = i "iteration"; direction = s "direction" })
    | "generation_end" ->
        Some
          (Generation_end
             {
               generation = i "generation";
               iterations_done = i "iterations_done";
               coverage = f "coverage";
               timing_diffs = i "timing_diffs";
               corpus_size = i "corpus_size";
             })
    | "phase_timing" -> (
        match phase_of_name (s "phase") with
        | Some phase ->
            Some
              (Phase_timing
                 { generation = i "generation"; phase; seconds = f "seconds" })
        | None -> None)
    | "interval_histogram" ->
        let buckets =
          match member "buckets" doc with
          | List items ->
              List.map
                (function
                  | List [ Int b; Int c ] -> (b, c)
                  | _ -> raise (Parse_error "bad bucket"))
                items
          | _ -> raise (Parse_error "buckets must be a list")
        in
        Some
          (Interval_histogram
             {
               generation = i "generation";
               point = s "point";
               src_pair = i "src_pair";
               total = i "total";
               min_interval = i "min_interval";
               max_interval = i "max_interval";
               buckets;
             })
    | "coverage_heatmap" ->
        let components =
          match member "components" doc with
          | Obj fields -> List.map (fun (name, v) -> (name, to_float v)) fields
          | _ -> raise (Parse_error "components must be an object")
        in
        Some (Coverage_heatmap { generation = i "generation"; components })
    | "span_begin" ->
        let parent =
          match member "parent" doc with
          | Null -> None
          | Int p -> Some p
          | _ -> raise (Parse_error "parent must be int or null")
        in
        Some (Span_begin { span_id = i "span_id"; parent; name = s "name" })
    | "span_end" ->
        Some
          (Span_end { span_id = i "span_id"; name = s "name"; seconds = f "seconds" })
    | "checkpoint_stats" ->
        Some
          (Checkpoint_stats
             {
               generation = i "generation";
               testcases = i "testcases";
               hits = i "hits";
               cycles_saved = i "cycles_saved";
               cycles_simulated = i "cycles_simulated";
             })
    | "campaign_end" ->
        let wall_seconds =
          match member "wall_seconds" doc with
          | Null -> None
          | v -> Some (to_float v)
        in
        Some
          (Campaign_end
             {
               outcome = s "outcome";
               iterations_done = i "iterations_done";
               coverage = f "coverage";
               timing_diffs = i "timing_diffs";
               corpus_size = i "corpus_size";
               wall_seconds;
             })
    | _ -> None
  with Parse_error _ -> None

let json_is_resync doc = match Json.member "resync" doc with
  | Json.Bool b -> b
  | _ -> false

(* ------------------------------------------------------------------ *)
(* JSONL trace writer.                                                 *)

(* What the trace writers keep, and in what form. Campaign_end belongs to
   the deterministic class, but its wall_seconds field is wall-clock, so a
   non-timings trace carries the event with the field stripped. *)
let trace_form ~timings ev =
  if timings then Some ev
  else if is_timing_event ev || is_execution_event ev then None
  else
    match ev with
    | Campaign_end e -> Some (Campaign_end { e with wall_seconds = None })
    | ev -> Some ev

let jsonl ?(timings = false) write_line =
  make (fun ev ->
      match trace_form ~timings ev with
      | Some ev -> write_line (Json.to_string (json_of_event ev))
      | None -> ())

let jsonl_file ?timings path =
  let oc = open_out path in
  let closed = ref false in
  let line s =
    output_string oc s;
    output_char oc '\n'
  in
  let inner = jsonl ?timings line in
  {
    emit =
      (fun ev ->
        inner.emit ev;
        (* generation-boundary flush: a campaign killed hard still leaves
           its completed generations on disk, and a follower (tail -f,
           `sonar serve --follow`) sees progress as it happens *)
        match ev with
        | Generation_end _ | Campaign_end _ -> flush oc
        | _ -> ());
    close =
      (fun () ->
        if not !closed then begin
          closed := true;
          close_out oc
        end);
  }

(* ------------------------------------------------------------------ *)
(* Rotating JSONL trace writer: numbered segments, each self-contained. *)

let segment_path base i = Printf.sprintf "%s.%04d" base i

let rotating_jsonl ?(timings = false) ?max_bytes ?max_generations path =
  (match (max_bytes, max_generations) with
  | None, None ->
      invalid_arg
        "Telemetry.rotating_jsonl: set max_bytes and/or max_generations"
  | Some b, _ when b < 1 ->
      invalid_arg "Telemetry.rotating_jsonl: max_bytes must be >= 1"
  | _, Some g when g < 1 ->
      invalid_arg "Telemetry.rotating_jsonl: max_generations must be >= 1"
  | _ -> ());
  let seg = ref 0 in
  let oc = ref (open_out (segment_path path 0)) in
  let bytes = ref 0 in
  let gens = ref 0 in
  let closed = ref false in
  (* Cumulative campaign state replayed at the head of every later
     segment: the trace header, plus the latest interval_histogram per
     (point, source-pair) key and the latest coverage_heatmap — all three
     event kinds are cumulative by construction, so replaying the most
     recent one of each rebuilds the observatory exactly. *)
  let header = ref None in
  let heat = ref None in
  let hists : (Histogram.key, event) Hashtbl.t = Hashtbl.create 256 in
  let write_doc doc =
    let s = Json.to_string doc in
    output_string !oc s;
    output_char !oc '\n';
    bytes := !bytes + String.length s + 1
  in
  let resync_doc ev =
    match json_of_event ev with
    | Json.Obj fields -> Json.Obj (fields @ [ ("resync", Json.Bool true) ])
    | doc -> doc
  in
  let rotate () =
    close_out !oc;
    incr seg;
    oc := open_out (segment_path path !seg);
    bytes := 0;
    gens := 0;
    Option.iter (fun ev -> write_doc (resync_doc ev)) !header;
    Hashtbl.fold (fun k ev acc -> (k, ev) :: acc) hists []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.iter (fun (_, ev) -> write_doc (resync_doc ev));
    Option.iter (fun ev -> write_doc (resync_doc ev)) !heat
  in
  let emit ev =
    (match ev with
    | Campaign_start _ -> header := Some ev
    | Interval_histogram e -> Hashtbl.replace hists (e.point, e.src_pair) ev
    | Coverage_heatmap _ -> heat := Some ev
    | _ -> ());
    match trace_form ~timings ev with
    | None -> ()
    | Some wev -> (
        write_doc (json_of_event wev);
        (* Roll over only at generation boundaries, so every segment holds
           whole generations and the resync state is well-defined. Flush
           at the same boundaries (and on the footer) so a hard kill
           still leaves whole generations on disk for the merger. *)
        match ev with
        | Generation_end _ ->
            incr gens;
            if
              (match max_bytes with Some b -> !bytes >= b | None -> false)
              || match max_generations with
                 | Some g -> !gens >= g
                 | None -> false
            then rotate ();
            flush !oc
        | Campaign_end _ -> flush !oc
        | _ -> ())
  in
  {
    emit;
    close =
      (fun () ->
        if not !closed then begin
          closed := true;
          close_out !oc
        end);
  }

(* ------------------------------------------------------------------ *)
(* In-memory aggregation.                                              *)

module Metrics = struct
  type snapshot = {
    events : int;
    generations : int;
    testcases : int;
    contention_testcases : int;
    ccd_findings : int;
    finding_testcases : int;
    retained : int;
    evicted : int;
    direction_flips : int;
    coverage : float;
    corpus_size : int;
    generate_seconds : float;
    execute_seconds : float;
    feedback_seconds : float;
    wall_seconds : float;
    events_per_second : float;
    testcases_per_second : float;
    pool_utilization : float;
    cycles_simulated : int;
    cycles_saved : int;
    checkpoint_hits : int;
  }

  let to_json s : Json.t =
    Json.Obj
      [
        ("events", Json.Int s.events);
        ("generations", Json.Int s.generations);
        ("testcases", Json.Int s.testcases);
        ("contention_testcases", Json.Int s.contention_testcases);
        ("ccd_findings", Json.Int s.ccd_findings);
        ("finding_testcases", Json.Int s.finding_testcases);
        ("retained", Json.Int s.retained);
        ("evicted", Json.Int s.evicted);
        ("direction_flips", Json.Int s.direction_flips);
        ("coverage", Json.Float s.coverage);
        ("corpus_size", Json.Int s.corpus_size);
        ("generate_seconds", Json.Float s.generate_seconds);
        ("execute_seconds", Json.Float s.execute_seconds);
        ("feedback_seconds", Json.Float s.feedback_seconds);
        ("wall_seconds", Json.Float s.wall_seconds);
        ("events_per_second", Json.Float s.events_per_second);
        ("testcases_per_second", Json.Float s.testcases_per_second);
        ("pool_utilization", Json.Float s.pool_utilization);
        ("cycles_simulated", Json.Int s.cycles_simulated);
        ("cycles_saved", Json.Int s.cycles_saved);
        ("checkpoint_hits", Json.Int s.checkpoint_hits);
      ]

  let pp fmt s =
    Format.fprintf fmt
      "@[<v>campaign metrics:@,\
      \  testcases        %d (%.1f/s)@,\
      \  generations      %d@,\
      \  coverage         %.0f netlist points (%d testcases contributed)@,\
      \  CCD findings     %d in %d testcases@,\
      \  corpus           %d entries (%d retained, %d evicted)@,\
      \  direction flips  %d@,\
      \  checkpointing    %d cycles saved over %d simulated (%d hits)@,\
      \  phase wall-clock generate %.3fs | execute %.3fs | feedback %.3fs@,\
      \  total wall-clock %.3fs (pool utilization %.0f%%, %.0f events/s)@]"
      s.testcases s.testcases_per_second s.generations s.coverage
      s.contention_testcases s.ccd_findings s.finding_testcases s.corpus_size
      s.retained s.evicted s.direction_flips s.cycles_saved s.cycles_simulated
      s.checkpoint_hits s.generate_seconds s.execute_seconds s.feedback_seconds
      s.wall_seconds
      (100. *. s.pool_utilization)
      s.events_per_second
end

let aggregator () =
  let t0 = Unix.gettimeofday () in
  let events = ref 0 in
  let generations = ref 0 in
  let testcases = ref 0 in
  let contention_testcases = ref 0 in
  let ccd_findings = ref 0 in
  let finding_testcases = ref 0 in
  let retained = ref 0 in
  let evicted = ref 0 in
  let flips = ref 0 in
  let coverage = ref 0. in
  let corpus_size = ref 0 in
  let gen_s = ref 0. and exec_s = ref 0. and fb_s = ref 0. in
  let cycles_simulated = ref 0 in
  let cycles_saved = ref 0 in
  let checkpoint_hits = ref 0 in
  let emit ev =
    incr events;
    match ev with
    | Campaign_start _ | Generation_start _ -> ()
    | Testcase_executed _ -> incr testcases
    | Contention_triggered e ->
        incr contention_testcases;
        coverage := e.coverage
    | Ccd_finding e ->
        ccd_findings := !ccd_findings + e.findings;
        incr finding_testcases
    | Corpus_retained e ->
        incr retained;
        corpus_size := e.corpus_size
    | Corpus_evicted _ -> incr evicted
    | Mutation_flip _ -> incr flips
    | Generation_end e ->
        incr generations;
        coverage := e.coverage;
        corpus_size := e.corpus_size
    | Phase_timing e -> (
        match e.phase with
        | Generate -> gen_s := !gen_s +. e.seconds
        | Execute -> exec_s := !exec_s +. e.seconds
        | Feedback -> fb_s := !fb_s +. e.seconds)
    | Checkpoint_stats e ->
        cycles_simulated := !cycles_simulated + e.cycles_simulated;
        cycles_saved := !cycles_saved + e.cycles_saved;
        checkpoint_hits := !checkpoint_hits + e.hits
    | Campaign_end e ->
        coverage := e.coverage;
        corpus_size := e.corpus_size
    | Interval_histogram _ | Coverage_heatmap _ | Span_begin _ | Span_end _ ->
        ()
  in
  let snapshot () =
    let wall = Float.max 1e-9 (Unix.gettimeofday () -. t0) in
    {
      Metrics.events = !events;
      generations = !generations;
      testcases = !testcases;
      contention_testcases = !contention_testcases;
      ccd_findings = !ccd_findings;
      finding_testcases = !finding_testcases;
      retained = !retained;
      evicted = !evicted;
      direction_flips = !flips;
      coverage = !coverage;
      corpus_size = !corpus_size;
      generate_seconds = !gen_s;
      execute_seconds = !exec_s;
      feedback_seconds = !fb_s;
      wall_seconds = wall;
      events_per_second = float_of_int !events /. wall;
      testcases_per_second = float_of_int !testcases /. wall;
      pool_utilization = !exec_s /. wall;
      cycles_simulated = !cycles_simulated;
      cycles_saved = !cycles_saved;
      checkpoint_hits = !checkpoint_hits;
    }
  in
  (make emit, snapshot)

(* ------------------------------------------------------------------ *)
(* Hierarchical profiling spans.                                       *)

module Span = struct
  type recorder = {
    emit : event -> unit;
    clock : unit -> float;
    mutable next_id : int;
    mutable stack : int list;
  }

  let recorder ?(clock = Unix.gettimeofday) emit =
    { emit; clock; next_id = 1; stack = [] }

  let enter r name =
    let id = r.next_id in
    r.next_id <- id + 1;
    let parent = match r.stack with [] -> None | p :: _ -> Some p in
    r.stack <- id :: r.stack;
    r.emit (Span_begin { span_id = id; parent; name });
    let t0 = r.clock () in
    let ended = ref false in
    fun () ->
      if not !ended then begin
        ended := true;
        let seconds = r.clock () -. t0 in
        (* Tolerate out-of-order ends: drop just this id from the stack. *)
        r.stack <-
          (match r.stack with
          | top :: tl when top = id -> tl
          | st -> List.filter (fun x -> x <> id) st);
        r.emit (Span_end { span_id = id; name; seconds })
      end

  let wrap r name f =
    let finish = enter r name in
    Fun.protect ~finally:finish f

  let hook r name = enter r name
end

(* ------------------------------------------------------------------ *)
(* Observatory flush: per-generation histogram / heatmap events.       *)

let flush_histograms registry ~generation emit =
  List.iter
    (fun ((point, src_pair), h) ->
      emit
        (Interval_histogram
           {
             generation;
             point;
             src_pair;
             total = Histogram.total h;
             min_interval = Option.value ~default:0 (Histogram.min_value h);
             max_interval = Option.value ~default:0 (Histogram.max_value h);
             buckets = Histogram.counts h;
           }))
    (Histogram.drain_dirty registry)

(* ------------------------------------------------------------------ *)
(* Observatory sink: latest histograms + heatmap + span tree.          *)

module Observatory = struct
  type point_hist = {
    point : string;
    src_pair : int;
    hist : Histogram.t;
  }

  type span_node = {
    span_name : string;
    calls : int;
    seconds : float;
    children : span_node list;
  }

  type snapshot = {
    points : point_hist list;
    heatmap : (string * float) list;
    span_tree : span_node list;
  }

  (* Merge raw (id, parent, name, seconds) spans into a tree whose nodes
     group same-named spans under the same parent path, so a thousand
     "generation" spans condense into one row with calls = 1000. *)
  let build_span_tree spans =
    (* spans: (id, parent, name, seconds) in begin order. *)
    let ids = Hashtbl.create 64 in
    List.iter (fun (id, _, _, _) -> Hashtbl.replace ids id ()) spans;
    let children = Hashtbl.create 32 in
    let roots = ref [] in
    List.iter
      (fun ((_, parent, _, _) as sp) ->
        match parent with
        | Some p when Hashtbl.mem ids p ->
            let cur = Option.value ~default:[] (Hashtbl.find_opt children p) in
            Hashtbl.replace children p (sp :: cur)
        | _ -> roots := sp :: !roots)
      spans;
    let rec group level =
      (* keep first-seen name order *)
      let order = ref [] in
      let by_name = Hashtbl.create 8 in
      List.iter
        (fun ((_, _, name, _) as sp) ->
          if not (Hashtbl.mem by_name name) then begin
            order := name :: !order;
            Hashtbl.add by_name name []
          end;
          Hashtbl.replace by_name name (sp :: Hashtbl.find by_name name))
        level;
      List.rev_map
        (fun name ->
          let members = List.rev (Hashtbl.find by_name name) in
          let seconds =
            List.fold_left (fun a (_, _, _, s) -> a +. s) 0. members
          in
          let kids =
            List.concat_map
              (fun (id, _, _, _) ->
                List.rev
                  (Option.value ~default:[] (Hashtbl.find_opt children id)))
              members
          in
          {
            span_name = name;
            calls = List.length members;
            seconds;
            children = group kids;
          })
        !order
    in
    group (List.rev !roots)

  let rec merge_span_trees a b =
    let order = ref [] in
    let by_name = Hashtbl.create 8 in
    List.iter
      (fun n ->
        match Hashtbl.find_opt by_name n.span_name with
        | None ->
            order := n.span_name :: !order;
            Hashtbl.add by_name n.span_name n
        | Some m ->
            Hashtbl.replace by_name n.span_name
              {
                span_name = n.span_name;
                calls = m.calls + n.calls;
                seconds = m.seconds +. n.seconds;
                children = merge_span_trees m.children n.children;
              })
      (a @ b);
    List.rev_map (fun name -> Hashtbl.find by_name name) !order

  (* The fuzzer's "closest to contention" point order, shared with the
     observatory sink's snapshot. *)
  let sort_points points =
    List.stable_sort
      (fun (a : point_hist) b ->
        let mn p =
          Option.value ~default:max_int (Histogram.min_value p.hist)
        in
        compare (mn a, a.point, a.src_pair) (mn b, b.point, b.src_pair))
      points

  let merge a b =
    let points =
      let tbl = Hashtbl.create 256 in
      List.iter
        (fun p -> Hashtbl.replace tbl (p.point, p.src_pair) p.hist)
        a.points;
      List.iter
        (fun p ->
          let key = (p.point, p.src_pair) in
          match Hashtbl.find_opt tbl key with
          | None -> Hashtbl.add tbl key p.hist
          | Some h -> Hashtbl.replace tbl key (Histogram.merge h p.hist))
        b.points;
      Hashtbl.fold
        (fun (point, src_pair) hist acc -> { point; src_pair; hist } :: acc)
        tbl []
      |> sort_points
    in
    let heatmap =
      let weights = Hashtbl.create 16 in
      let order = ref [] in
      List.iter
        (fun (name, w) ->
          (match Hashtbl.find_opt weights name with
          | None -> order := name :: !order
          | Some _ -> ());
          Hashtbl.replace weights name
            (w +. Option.value ~default:0. (Hashtbl.find_opt weights name)))
        (a.heatmap @ b.heatmap);
      List.rev_map (fun name -> (name, Hashtbl.find weights name)) !order
    in
    {
      points;
      heatmap;
      span_tree = merge_span_trees a.span_tree b.span_tree;
    }

  let rec json_of_span n : Json.t =
    Json.Obj
      [
        ("name", Json.String n.span_name);
        ("calls", Json.Int n.calls);
        ("seconds", Json.Float n.seconds);
        ("children", Json.List (List.map json_of_span n.children));
      ]

  let to_json s : Json.t =
    Json.Obj
      [
        ( "points",
          Json.List
            (List.map
               (fun p ->
                 Json.Obj
                   [
                     ("point", Json.String p.point);
                     ("src_pair", Json.Int p.src_pair);
                     ("histogram", Histogram.to_json p.hist);
                   ])
               s.points) );
        ( "heatmap",
          Json.Obj (List.map (fun (name, w) -> (name, Json.Float w)) s.heatmap)
        );
        ("span_tree", Json.List (List.map json_of_span s.span_tree))
      ]

  let pp_spans fmt span_tree =
    let rec pp_node indent n =
      Format.fprintf fmt "%s%-*s %5dx %9.3fs@," indent
        (max 1 (28 - String.length indent))
        n.span_name n.calls n.seconds;
      List.iter (pp_node (indent ^ "  ")) n.children
    in
    List.iter (pp_node "  ") span_tree

  let pp ?(top = 10) fmt s =
    Format.fprintf fmt "@[<v>contention observatory:@,";
    (if s.points = [] then
       Format.fprintf fmt "  no interval observations@,"
     else begin
       Format.fprintf fmt
         "  top %d of %d (point, source-pair) interval distributions:@,"
         (min top (List.length s.points))
         (List.length s.points);
       Format.fprintf fmt "  %-34s %4s %6s %5s %5s  %s@," "point" "pair" "n"
         "min" "max" "distribution";
       List.iteri
         (fun i p ->
           if i < top then
             Format.fprintf fmt "  %-34s %4d %6d %5d %5d  %s@," p.point
               p.src_pair (Histogram.total p.hist)
               (Option.value ~default:0 (Histogram.min_value p.hist))
               (Option.value ~default:0 (Histogram.max_value p.hist))
               (Histogram.sparkline p.hist))
         s.points
     end);
    (if s.heatmap <> [] then begin
       Format.fprintf fmt "  coverage heatmap (weighted, per component):@,";
       let peak =
         List.fold_left (fun a (_, w) -> Float.max a w) 1e-9 s.heatmap
       in
       List.iter
         (fun (name, w) ->
           let bars = int_of_float (Float.round (24. *. w /. peak)) in
           Format.fprintf fmt "  %-10s %-24s %8.1f@," name
             (String.concat "" (List.init bars (fun _ -> "\xe2\x96\x88")))
             w)
         s.heatmap
     end);
    (if s.span_tree <> [] then begin
       Format.fprintf fmt "  profiling spans:@,";
       pp_spans fmt s.span_tree
     end);
    Format.fprintf fmt "@]"
end

let observatory () =
  let hists : (string * int, Histogram.t) Hashtbl.t = Hashtbl.create 256 in
  let heatmap = ref [] in
  let spans = ref [] in
  (* span_id -> seconds, patched when the end event arrives *)
  let emit = function
    | Interval_histogram e ->
        Hashtbl.replace hists (e.point, e.src_pair)
          (Histogram.of_counts ~min_value:e.min_interval
             ~max_value:e.max_interval e.buckets)
    | Coverage_heatmap e -> heatmap := e.components
    | Span_begin e -> spans := (e.span_id, e.parent, e.name, ref 0.) :: !spans
    | Span_end e -> (
        match List.find_opt (fun (id, _, _, _) -> id = e.span_id) !spans with
        | Some (_, _, _, seconds) -> seconds := e.seconds
        | None ->
            (* end without a begin (truncated trace): synthesise a root *)
            spans := (e.span_id, None, e.name, ref e.seconds) :: !spans)
    | _ -> ()
  in
  let snapshot () =
    let points =
      Hashtbl.fold
        (fun (point, src_pair) hist acc ->
          { Observatory.point; src_pair; hist } :: acc)
        hists []
      |> Observatory.sort_points
    in
    let span_list =
      List.rev_map (fun (id, parent, name, seconds) -> (id, parent, name, !seconds)) !spans
    in
    {
      Observatory.points;
      heatmap = !heatmap;
      span_tree = Observatory.build_span_tree span_list;
    }
  in
  (make emit, snapshot)

(* ------------------------------------------------------------------ *)
(* Periodic human progress reporter.                                   *)

let progress ?(out = stderr) ~every ~total () =
  if every < 1 then invalid_arg "Telemetry.progress: every must be >= 1";
  let t0 = Unix.gettimeofday () in
  let testcases = ref 0 in
  let timing_diffs = ref 0 in
  let last_report = ref 0 in
  (* Flush explicitly after every report line: when [out] is a pipe (CI log
     capture, `sonar serve` supervision) the channel is block-buffered, and
     an unflushed progress line is invisible exactly when someone is
     watching for it. *)
  let emit = function
    | Testcase_executed _ -> incr testcases
    | Generation_end e ->
        timing_diffs := e.timing_diffs;
        if !testcases - !last_report >= every || e.iterations_done >= total
        then begin
          last_report := !testcases;
          let dt = Float.max 1e-9 (Unix.gettimeofday () -. t0) in
          Printf.fprintf out
            "[sonar] %6d/%d testcases | coverage %8.0f | timing diffs %5d | \
             corpus %3d | %.1f tc/s\n"
            e.iterations_done total e.coverage !timing_diffs e.corpus_size
            (float_of_int !testcases /. dt);
          flush out
        end
    | Campaign_end e ->
        Printf.fprintf out
          "[sonar] campaign %s: %d/%d testcases | coverage %8.0f | timing \
           diffs %5d\n"
          e.outcome e.iterations_done total e.coverage e.timing_diffs;
        flush out
    | _ -> ()
  in
  make ~close:(fun () -> flush out) emit
