type phase = Generate | Execute | Feedback

let phase_name = function
  | Generate -> "generate"
  | Execute -> "execute"
  | Feedback -> "feedback"

let phase_of_name = function
  | "generate" -> Some Generate
  | "execute" -> Some Execute
  | "feedback" -> Some Feedback
  | _ -> None

type event =
  | Generation_start of { generation : int; first_iteration : int; size : int }
  | Testcase_executed of { testcase_id : int; cycles0 : int; cycles1 : int }
  | Contention_triggered of { iteration : int; added : float; coverage : float }
  | Ccd_finding of { iteration : int; findings : int; total_delta : int }
  | Corpus_retained of { testcase_id : int; corpus_size : int }
  | Corpus_evicted of { testcase_id : int; corpus_size : int }
  | Mutation_flip of { iteration : int; direction : string }
  | Generation_end of {
      generation : int;
      iterations_done : int;
      coverage : float;
      timing_diffs : int;
      corpus_size : int;
    }
  | Phase_timing of { generation : int; phase : phase; seconds : float }

type sink = {
  emit : event -> unit;
  close : unit -> unit;
}

let null = { emit = ignore; close = ignore }

let make ?(close = ignore) emit = { emit; close }

let close s = s.close ()

let emit_all sinks ev = List.iter (fun s -> s.emit ev) sinks

(* ------------------------------------------------------------------ *)
(* JSON encoding (schema in DESIGN.md §9).                             *)

let json_of_event ev : Json.t =
  let obj name fields = Json.Obj (("event", Json.String name) :: fields) in
  match ev with
  | Generation_start e ->
      obj "generation_start"
        [
          ("generation", Json.Int e.generation);
          ("first_iteration", Json.Int e.first_iteration);
          ("size", Json.Int e.size);
        ]
  | Testcase_executed e ->
      obj "testcase_executed"
        [
          ("testcase_id", Json.Int e.testcase_id);
          ("cycles0", Json.Int e.cycles0);
          ("cycles1", Json.Int e.cycles1);
        ]
  | Contention_triggered e ->
      obj "contention_triggered"
        [
          ("iteration", Json.Int e.iteration);
          ("added", Json.Float e.added);
          ("coverage", Json.Float e.coverage);
        ]
  | Ccd_finding e ->
      obj "ccd_finding"
        [
          ("iteration", Json.Int e.iteration);
          ("findings", Json.Int e.findings);
          ("total_delta", Json.Int e.total_delta);
        ]
  | Corpus_retained e ->
      obj "corpus_retained"
        [
          ("testcase_id", Json.Int e.testcase_id);
          ("corpus_size", Json.Int e.corpus_size);
        ]
  | Corpus_evicted e ->
      obj "corpus_evicted"
        [
          ("testcase_id", Json.Int e.testcase_id);
          ("corpus_size", Json.Int e.corpus_size);
        ]
  | Mutation_flip e ->
      obj "mutation_flip"
        [
          ("iteration", Json.Int e.iteration);
          ("direction", Json.String e.direction);
        ]
  | Generation_end e ->
      obj "generation_end"
        [
          ("generation", Json.Int e.generation);
          ("iterations_done", Json.Int e.iterations_done);
          ("coverage", Json.Float e.coverage);
          ("timing_diffs", Json.Int e.timing_diffs);
          ("corpus_size", Json.Int e.corpus_size);
        ]
  | Phase_timing e ->
      obj "phase_timing"
        [
          ("generation", Json.Int e.generation);
          ("phase", Json.String (phase_name e.phase));
          ("seconds", Json.Float e.seconds);
        ]

let event_of_json doc =
  let open Json in
  try
    let i k = to_int (member k doc) in
    let f k = to_float (member k doc) in
    let s k = to_str (member k doc) in
    match to_str (member "event" doc) with
    | "generation_start" ->
        Some
          (Generation_start
             {
               generation = i "generation";
               first_iteration = i "first_iteration";
               size = i "size";
             })
    | "testcase_executed" ->
        Some
          (Testcase_executed
             {
               testcase_id = i "testcase_id";
               cycles0 = i "cycles0";
               cycles1 = i "cycles1";
             })
    | "contention_triggered" ->
        Some
          (Contention_triggered
             { iteration = i "iteration"; added = f "added"; coverage = f "coverage" })
    | "ccd_finding" ->
        Some
          (Ccd_finding
             {
               iteration = i "iteration";
               findings = i "findings";
               total_delta = i "total_delta";
             })
    | "corpus_retained" ->
        Some
          (Corpus_retained
             { testcase_id = i "testcase_id"; corpus_size = i "corpus_size" })
    | "corpus_evicted" ->
        Some
          (Corpus_evicted
             { testcase_id = i "testcase_id"; corpus_size = i "corpus_size" })
    | "mutation_flip" ->
        Some (Mutation_flip { iteration = i "iteration"; direction = s "direction" })
    | "generation_end" ->
        Some
          (Generation_end
             {
               generation = i "generation";
               iterations_done = i "iterations_done";
               coverage = f "coverage";
               timing_diffs = i "timing_diffs";
               corpus_size = i "corpus_size";
             })
    | "phase_timing" -> (
        match phase_of_name (s "phase") with
        | Some phase ->
            Some
              (Phase_timing
                 { generation = i "generation"; phase; seconds = f "seconds" })
        | None -> None)
    | _ -> None
  with Parse_error _ -> None

(* ------------------------------------------------------------------ *)
(* JSONL trace writer.                                                 *)

let jsonl ?(timings = false) write_line =
  make (fun ev ->
      match ev with
      | Phase_timing _ when not timings -> ()
      | ev -> write_line (Json.to_string (json_of_event ev)))

let jsonl_file ?timings path =
  let oc = open_out path in
  let closed = ref false in
  let line s =
    output_string oc s;
    output_char oc '\n'
  in
  let inner = jsonl ?timings line in
  {
    emit = inner.emit;
    close =
      (fun () ->
        if not !closed then begin
          closed := true;
          close_out oc
        end);
  }

(* ------------------------------------------------------------------ *)
(* In-memory aggregation.                                              *)

module Metrics = struct
  type snapshot = {
    events : int;
    generations : int;
    testcases : int;
    contention_testcases : int;
    ccd_findings : int;
    finding_testcases : int;
    retained : int;
    evicted : int;
    direction_flips : int;
    coverage : float;
    corpus_size : int;
    generate_seconds : float;
    execute_seconds : float;
    feedback_seconds : float;
    wall_seconds : float;
    events_per_second : float;
    testcases_per_second : float;
    pool_utilization : float;
  }

  let to_json s : Json.t =
    Json.Obj
      [
        ("events", Json.Int s.events);
        ("generations", Json.Int s.generations);
        ("testcases", Json.Int s.testcases);
        ("contention_testcases", Json.Int s.contention_testcases);
        ("ccd_findings", Json.Int s.ccd_findings);
        ("finding_testcases", Json.Int s.finding_testcases);
        ("retained", Json.Int s.retained);
        ("evicted", Json.Int s.evicted);
        ("direction_flips", Json.Int s.direction_flips);
        ("coverage", Json.Float s.coverage);
        ("corpus_size", Json.Int s.corpus_size);
        ("generate_seconds", Json.Float s.generate_seconds);
        ("execute_seconds", Json.Float s.execute_seconds);
        ("feedback_seconds", Json.Float s.feedback_seconds);
        ("wall_seconds", Json.Float s.wall_seconds);
        ("events_per_second", Json.Float s.events_per_second);
        ("testcases_per_second", Json.Float s.testcases_per_second);
        ("pool_utilization", Json.Float s.pool_utilization);
      ]

  let pp fmt s =
    Format.fprintf fmt
      "@[<v>campaign metrics:@,\
      \  testcases        %d (%.1f/s)@,\
      \  generations      %d@,\
      \  coverage         %.0f netlist points (%d testcases contributed)@,\
      \  CCD findings     %d in %d testcases@,\
      \  corpus           %d entries (%d retained, %d evicted)@,\
      \  direction flips  %d@,\
      \  phase wall-clock generate %.3fs | execute %.3fs | feedback %.3fs@,\
      \  total wall-clock %.3fs (pool utilization %.0f%%, %.0f events/s)@]"
      s.testcases s.testcases_per_second s.generations s.coverage
      s.contention_testcases s.ccd_findings s.finding_testcases s.corpus_size
      s.retained s.evicted s.direction_flips s.generate_seconds
      s.execute_seconds s.feedback_seconds s.wall_seconds
      (100. *. s.pool_utilization)
      s.events_per_second
end

let aggregator () =
  let t0 = Unix.gettimeofday () in
  let events = ref 0 in
  let generations = ref 0 in
  let testcases = ref 0 in
  let contention_testcases = ref 0 in
  let ccd_findings = ref 0 in
  let finding_testcases = ref 0 in
  let retained = ref 0 in
  let evicted = ref 0 in
  let flips = ref 0 in
  let coverage = ref 0. in
  let corpus_size = ref 0 in
  let gen_s = ref 0. and exec_s = ref 0. and fb_s = ref 0. in
  let emit ev =
    incr events;
    match ev with
    | Generation_start _ -> ()
    | Testcase_executed _ -> incr testcases
    | Contention_triggered e ->
        incr contention_testcases;
        coverage := e.coverage
    | Ccd_finding e ->
        ccd_findings := !ccd_findings + e.findings;
        incr finding_testcases
    | Corpus_retained e ->
        incr retained;
        corpus_size := e.corpus_size
    | Corpus_evicted _ -> incr evicted
    | Mutation_flip _ -> incr flips
    | Generation_end e ->
        incr generations;
        coverage := e.coverage;
        corpus_size := e.corpus_size
    | Phase_timing e -> (
        match e.phase with
        | Generate -> gen_s := !gen_s +. e.seconds
        | Execute -> exec_s := !exec_s +. e.seconds
        | Feedback -> fb_s := !fb_s +. e.seconds)
  in
  let snapshot () =
    let wall = Float.max 1e-9 (Unix.gettimeofday () -. t0) in
    {
      Metrics.events = !events;
      generations = !generations;
      testcases = !testcases;
      contention_testcases = !contention_testcases;
      ccd_findings = !ccd_findings;
      finding_testcases = !finding_testcases;
      retained = !retained;
      evicted = !evicted;
      direction_flips = !flips;
      coverage = !coverage;
      corpus_size = !corpus_size;
      generate_seconds = !gen_s;
      execute_seconds = !exec_s;
      feedback_seconds = !fb_s;
      wall_seconds = wall;
      events_per_second = float_of_int !events /. wall;
      testcases_per_second = float_of_int !testcases /. wall;
      pool_utilization = !exec_s /. wall;
    }
  in
  (make emit, snapshot)

(* ------------------------------------------------------------------ *)
(* Periodic human progress reporter.                                   *)

let progress ?(out = stderr) ~every ~total () =
  if every < 1 then invalid_arg "Telemetry.progress: every must be >= 1";
  let t0 = Unix.gettimeofday () in
  let testcases = ref 0 in
  let timing_diffs = ref 0 in
  let last_report = ref 0 in
  let emit = function
    | Testcase_executed _ -> incr testcases
    | Generation_end e ->
        timing_diffs := e.timing_diffs;
        if !testcases - !last_report >= every || e.iterations_done >= total
        then begin
          last_report := !testcases;
          let dt = Float.max 1e-9 (Unix.gettimeofday () -. t0) in
          Printf.fprintf out
            "[sonar] %6d/%d testcases | coverage %8.0f | timing diffs %5d | \
             corpus %3d | %.1f tc/s\n\
             %!"
            e.iterations_done total e.coverage !timing_diffs e.corpus_size
            (float_of_int !testcases /. dt)
        end
    | _ -> ()
  in
  make emit
