(** Cumulative contention coverage with netlist-cluster weighting.

    The paper observes that "a single contention event may involve multiple
    data selections and thus map to several contention points" — the first
    trigger of a source pair lights up a cluster of netlist MUX points at
    once, after which further data classes (buckets) and storage sub-points
    add smaller increments. A point's fanout budget is therefore split:

    - 40% over its source pairs (paid once per newly triggered pair);
    - 30% over (pair × data-bucket) combinations;
    - 30% over persistent sub-points (when the point declares any;
      otherwise folded into the first two shares).

    One instance accumulates across a whole campaign; both the Sonar loop
    and the baseline fuzzers share this accounting, so Figure 8/10/11
    series are directly comparable. *)

type t

val create : unit -> t

val add_pair : t -> Executor.pair -> float
(** Absorb both runs of an executed testcase; returns the {e new} coverage
    weight this testcase contributed. *)

val add_pair_delta : t -> Executor.pair -> float * (string * float) list
(** {!add_pair} plus the per-component breakdown of the added weight (only
    components that gained; {!Sonar_ir.Component.all} order). The payload
    of {!Feedback.observation.component_delta}. *)

val total : t -> float

val distinct_subs : t -> int
(** Distinct (point, kind, sub) triples triggered so far. *)

val single_valid_weight : t -> float
(** Share of {!total} located at single-valid points (Figure 9). *)

val per_component : t -> (Sonar_ir.Component.t * float) list
(** Cumulative weight credited to each netlist component, in
    {!Sonar_ir.Component.all} order (zero for untouched components). *)

val heatmap : t -> (string * float) list
(** {!per_component} with component names as strings — the payload of the
    {!Telemetry.event.Coverage_heatmap} trace event. Deterministic order
    and contents for a fixed campaign prefix. *)
