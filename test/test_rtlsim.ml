(* Tests for the bit-vector, levelization, simulation engine, runtime
   monitor and VCD writer. *)

open Sonar_rtlsim

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let check64 = Alcotest.(check int64)

(* --- Bitvec --- *)

let bv w v = Bitvec.make ~width:w (Int64.of_int v)

let test_bitvec_masking () =
  check64 "mask to width" 3L (Bitvec.value (bv 2 7));
  check64 "full value" 255L (Bitvec.value (bv 8 255));
  checkb "width error low" true
    (match Bitvec.make ~width:0 1L with
    | exception Bitvec.Width_error _ -> true
    | _ -> false);
  checkb "width error high" true
    (match Bitvec.make ~width:64 1L with
    | exception Bitvec.Width_error _ -> true
    | _ -> false)

let test_bitvec_arith () =
  check64 "add wraps" 0L (Bitvec.value (Bitvec.add (bv 4 15) (bv 4 1)));
  check64 "sub wraps" 15L (Bitvec.value (Bitvec.sub (bv 4 0) (bv 4 1)));
  check64 "and" 4L (Bitvec.value (Bitvec.logand (bv 4 6) (bv 4 12)));
  check64 "or" 14L (Bitvec.value (Bitvec.logor (bv 4 6) (bv 4 12)));
  check64 "xor" 10L (Bitvec.value (Bitvec.logxor (bv 4 6) (bv 4 12)));
  check64 "not" 9L (Bitvec.value (Bitvec.lognot (bv 4 6)))

let test_bitvec_compare () =
  checkb "lt unsigned" true (Bitvec.is_true (Bitvec.lt (bv 8 3) (bv 8 200)));
  checkb "geq" true (Bitvec.is_true (Bitvec.geq (bv 8 200) (bv 8 200)));
  checkb "eq" true (Bitvec.is_true (Bitvec.eq (bv 8 42) (bv 8 42)));
  checkb "neq" false (Bitvec.is_true (Bitvec.neq (bv 8 42) (bv 8 42)))

let test_bitvec_shift_slice () =
  check64 "shl widens" 12L (Bitvec.value (Bitvec.shl 2 (bv 4 3)));
  checki "shl width" 6 (Bitvec.width (Bitvec.shl 2 (bv 4 3)));
  check64 "shr" 3L (Bitvec.value (Bitvec.shr 2 (bv 8 12)));
  check64 "bits" 5L (Bitvec.value (Bitvec.bits ~hi:4 ~lo:2 (bv 8 0b10100)));
  check64 "cat" 0xABL (Bitvec.value (Bitvec.cat (bv 4 0xA) (bv 4 0xB)));
  check64 "pad" 5L (Bitvec.value (Bitvec.pad 16 (bv 4 5)))

let prop_bitvec_add_commutes =
  QCheck2.Test.make ~name:"bitvec add commutes" ~count:300
    QCheck2.Gen.(pair (int_bound 0xFFFF) (int_bound 0xFFFF))
    (fun (a, b) ->
      Bitvec.equal (Bitvec.add (bv 16 a) (bv 16 b)) (Bitvec.add (bv 16 b) (bv 16 a)))

let prop_bitvec_mask_idempotent =
  QCheck2.Test.make ~name:"masking is idempotent" ~count:300
    QCheck2.Gen.(pair (int_range 1 63) (map Int64.of_int int))
    (fun (w, v) ->
      let x = Bitvec.make ~width:w v in
      Bitvec.equal x (Bitvec.make ~width:w (Bitvec.value x)))

(* --- Levelize / Engine --- *)

let counter_module =
  Sonar_ir.Parser.parse_module
    {|
module Counter [other] :
  input en : UInt<1>
  output out : UInt<8>
  reg count : UInt<8> reset 0
  node next = mux(en, add(count, UInt<8>(1)), count)
  connect count = next
  connect out = count
|}

let test_engine_counter () =
  let e = Engine.compile counter_module in
  Engine.poke_int e "en" 1;
  for _ = 1 to 5 do
    Engine.step e
  done;
  checki "counts to 5" 5 (Engine.peek_int e "out");
  Engine.poke_int e "en" 0;
  Engine.step e;
  checki "holds" 5 (Engine.peek_int e "out");
  checki "cycles" 6 (Engine.cycle e)

let test_engine_reset () =
  let e = Engine.compile counter_module in
  Engine.poke_int e "en" 1;
  Engine.step e;
  Engine.step e;
  Engine.reset e;
  checki "reset to 0" 0 (Engine.peek_int e "out");
  checki "cycle rewound" 0 (Engine.cycle e)

let test_engine_comb () =
  let m =
    Sonar_ir.Parser.parse_module
      {|
module Comb [other] :
  input a : UInt<8>
  input b : UInt<8>
  input s : UInt<1>
  output o : UInt<8>
  node picked = mux(s, a, b)
  connect o = picked
|}
  in
  let e = Engine.compile m in
  Engine.poke_int e "a" 11;
  Engine.poke_int e "b" 22;
  Engine.poke_int e "s" 1;
  Engine.settle e;
  checki "mux true" 11 (Engine.peek_int e "o");
  Engine.poke_int e "s" 0;
  Engine.settle e;
  checki "mux false" 22 (Engine.peek_int e "o")

let test_engine_unknown_signal () =
  let e = Engine.compile counter_module in
  checkb "unknown raises" true
    (match Engine.peek e "nonexistent" with
    | exception Engine.Unknown_signal _ -> true
    | _ -> false);
  checkb "poke non-input raises" true
    (match Engine.poke_int e "out" 1 with
    | exception Engine.Unknown_signal _ -> true
    | _ -> false)

let test_levelize_order () =
  let order = Levelize.order counter_module in
  checkb "both comb signals scheduled" true
    (List.mem "next" order && List.mem "out" order)

let test_levelize_cycle () =
  let m =
    Sonar_ir.Parser.parse_module
      {|
module Loop [other] :
  wire x : UInt<8>
  wire y : UInt<8>
  connect x = add(y, UInt<8>(1))
  connect y = add(x, UInt<8>(1))
|}
  in
  checkb "combinational cycle detected" true
    (match Levelize.order m with
    | exception Levelize.Combinational_cycle _ -> true
    | _ -> false)

let test_engine_tree_backend () =
  let e = Engine.compile ~backend:Engine.Tree counter_module in
  checkb "tree backend" true (Engine.backend e = Engine.Tree);
  Engine.poke_int e "en" 1;
  for _ = 1 to 5 do
    Engine.step e
  done;
  checki "interpreter counts to 5" 5 (Engine.peek_int e "out")

(* Regression: [cat] was handled by width inference but missing from the
   evaluator, so any netlist using concatenation raised at the first settle. *)
let cat_module =
  Sonar_ir.Parser.parse_module
    {|
module C [other] :
  input a : UInt<4>
  input b : UInt<4>
  output o : UInt<8>
  node j = cat(a, b)
  connect o = j
|}

let test_engine_cat () =
  List.iter
    (fun backend ->
      let e = Engine.compile ~backend cat_module in
      Engine.poke_int e "a" 0xA;
      Engine.poke_int e "b" 0xB;
      Engine.settle e;
      checki "cat(a, b)" 0xAB (Engine.peek_int e "o"))
    [ Engine.Tree; Engine.Compiled ]

(* Acceptance gate: a compiled [step] performs no per-cycle heap allocation
   attributable to value traffic. The slack below covers the constant-size
   boxes of the [Gc.minor_words] calls themselves; any per-cycle allocation
   would show up as >= 1 word x 1000 cycles. *)
let test_step_no_alloc () =
  let e = Engine.compile counter_module in
  Engine.poke_int e "en" 1;
  Engine.step e;
  let w0 = Gc.minor_words () in
  for _ = 1 to 1000 do
    Engine.step e
  done;
  let words = Gc.minor_words () -. w0 in
  checkb
    (Printf.sprintf "allocation-free step (%.0f minor words / 1000 cycles)" words)
    true (words < 64.)

(* Differential property: the engine's evaluation of a fixed expression
   over random inputs matches a direct OCaml interpretation. *)
let prop_engine_matches_interpreter =
  let m =
    Sonar_ir.Parser.parse_module
      {|
module X [other] :
  input a : UInt<8>
  input b : UInt<8>
  input s : UInt<1>
  output o : UInt<8>
  node t = mux(s, add(a, b), xor(a, b))
  connect o = t
|}
  in
  QCheck2.Test.make ~name:"engine matches reference semantics" ~count:200
    QCheck2.Gen.(triple (int_bound 255) (int_bound 255) (int_bound 1))
    (fun (a, b, s) ->
      let e = Engine.compile m in
      Engine.poke_int e "a" a;
      Engine.poke_int e "b" b;
      Engine.poke_int e "s" s;
      Engine.settle e;
      let expect = if s = 1 then (a + b) land 255 else a lxor b in
      Engine.peek_int e "o" = expect)

(* --- Compiled-vs-interpreted differential --- *)

(* Generator of random well-formed netlists: a few inputs and registers, a
   chain of nodes whose expressions draw on every primop (including [cat]),
   register drives over the full environment, and an output. Expression
   widths are tracked during generation (with the same result-width rules
   the engine uses) so [cat] never exceeds 63 bits. *)
let gen_netlist : Sonar_ir.Fmodule.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let open Sonar_ir in
  let gen_width = int_range 1 16 in
  let rec gen_expr env fuel =
    let ref_gen =
      let* name, w = oneofl env in
      return (Expr.reference name, w)
    in
    let lit_gen =
      let* w = gen_width in
      let* v = int_bound 0xFFFF in
      return (Expr.lit ~width:w (Int64.of_int v), w)
    in
    if fuel = 0 then oneof [ ref_gen; lit_gen ]
    else
      let sub = gen_expr env (fuel - 1) in
      let unop =
        let* a, wa = sub in
        let* k = int_range 0 4 in
        let* n = int_range 0 6 in
        return
          (match k with
          | 0 -> (Expr.prim Expr.Not [ a ], wa)
          | 1 -> (Expr.prim (Expr.Shl n) [ a ], min 63 (wa + n))
          | 2 -> (Expr.prim (Expr.Shr n) [ a ], max 1 (wa - n))
          | 3 -> (Expr.prim (Expr.Bits (n + 3, n)) [ a ], 4)
          | _ -> (Expr.prim (Expr.Pad (n + 1)) [ a ], n + 1))
      in
      let binop =
        let* a, wa = sub in
        let* b, wb = sub in
        let* k = int_range 0 9 in
        return
          (match k with
          | 0 -> (Expr.prim Expr.Add [ a; b ], max wa wb)
          | 1 -> (Expr.prim Expr.Sub [ a; b ], max wa wb)
          | 2 -> (Expr.prim Expr.And [ a; b ], max wa wb)
          | 3 -> (Expr.prim Expr.Or [ a; b ], max wa wb)
          | 4 -> (Expr.prim Expr.Xor [ a; b ], max wa wb)
          | 5 -> (Expr.prim Expr.Eq [ a; b ], 1)
          | 6 -> (Expr.prim Expr.Neq [ a; b ], 1)
          | 7 -> (Expr.prim Expr.Lt [ a; b ], 1)
          | 8 -> (Expr.prim Expr.Geq [ a; b ], 1)
          | _ ->
              if wa + wb <= 63 then (Expr.prim Expr.Cat [ a; b ], wa + wb)
              else (Expr.prim Expr.Or [ a; b ], max wa wb))
      in
      let mux_gen =
        let* s, _ = sub in
        let* a, wa = sub in
        let* b, wb = sub in
        return (Expr.mux s a b, max wa wb)
      in
      frequency
        [ (2, ref_gen); (1, lit_gen); (2, unop); (3, binop); (2, mux_gen) ]
  in
  let* n_inputs = int_range 1 3 in
  let* input_widths = list_repeat n_inputs gen_width in
  let inputs = List.mapi (fun i w -> (Printf.sprintf "in%d" i, w)) input_widths in
  let* n_regs = int_range 0 2 in
  let* reg_specs = list_repeat n_regs (pair gen_width (int_bound 1000)) in
  let regs =
    List.mapi
      (fun i (w, r) -> (Printf.sprintf "r%d" i, w, Int64.of_int r))
      reg_specs
  in
  let base_env = inputs @ List.map (fun (n, w, _) -> (n, w)) regs in
  let* n_nodes = int_range 1 5 in
  let rec build_nodes env acc k =
    if k = 0 then return (List.rev acc, env)
    else
      let* e, w = gen_expr env 3 in
      let name = Printf.sprintf "n%d" (List.length acc) in
      build_nodes ((name, w) :: env) ((name, e) :: acc) (k - 1)
  in
  let* nodes, env = build_nodes base_env [] n_nodes in
  let* reg_drives = list_repeat n_regs (gen_expr env 2) in
  let last_node = Printf.sprintf "n%d" (n_nodes - 1) in
  let stmts =
    List.map (fun (n, w) -> Stmt.Input { name = n; width = w }) inputs
    @ List.map
        (fun (n, w, r) -> Stmt.Reg { name = n; width = w; reset = Some r })
        regs
    @ List.map (fun (n, e) -> Stmt.Node { name = n; expr = e }) nodes
    @ List.map2
        (fun (n, _, _) (e, _) -> Stmt.Connect { dst = n; src = e })
        regs reg_drives
    @ [
        Stmt.Output { name = "out"; width = 8 };
        Stmt.Connect { dst = "out"; src = Expr.reference last_node };
      ]
  in
  return (Fmodule.make "Rand" stmts)

(* Drive both backends with the same pseudo-random input stream and require
   every signal to agree after every cycle. *)
let engines_agree m ~cycles ~seed =
  let a = Engine.compile ~backend:Engine.Tree m in
  let b = Engine.compile ~backend:Engine.Compiled m in
  let inputs = Sonar_ir.Fmodule.inputs m in
  let names = Engine.signal_names a in
  let state = ref (seed lor 1) in
  let agree () =
    List.for_all
      (fun n -> Bitvec.equal (Engine.peek a n) (Engine.peek b n))
      names
  in
  let ok = ref (agree ()) in
  for _ = 1 to cycles do
    List.iter
      (fun (n, _) ->
        state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
        Engine.poke_int a n !state;
        Engine.poke_int b n !state)
      inputs;
    Engine.step a;
    Engine.step b;
    ok := !ok && agree ()
  done;
  !ok

let prop_compiled_matches_interpreted =
  QCheck2.Test.make ~name:"compiled step = interpreted step (random netlists)"
    ~count:150
    QCheck2.Gen.(triple gen_netlist (int_range 1 15) (int_bound 0x3FFFFF))
    (fun (m, cycles, seed) -> engines_agree m ~cycles ~seed)

(* The same differential over the generated (and instrumented) boom and
   nutshell netlists — every module, every signal, every cycle. *)
let test_generated_netlist_differential () =
  List.iter
    (fun cfg ->
      let circuit = Sonar_dut.Netlist_gen.generate ~scale:0.02 ~pad:false cfg in
      let r = Sonar_ir.Instrument.instrument circuit in
      List.iter
        (fun m ->
          checkb
            (Printf.sprintf "%s/%s compiled = interpreted"
               cfg.Sonar_uarch.Config.name m.Sonar_ir.Fmodule.name)
            true
            (engines_agree m ~cycles:12 ~seed:(Hashtbl.hash m.Sonar_ir.Fmodule.name)))
        r.Sonar_ir.Instrument.circuit.Sonar_ir.Circuit.modules)
    [ Sonar_uarch.Config.boom; Sonar_uarch.Config.nutshell ]

(* --- Monitor --- *)

let monitored_engine () =
  let m = Sonar_dut.Netlist_gen.example_module () in
  let r = Sonar_ir.Instrument.instrument (Sonar_ir.Circuit.make "c" [ m ]) in
  let m' = List.hd r.Sonar_ir.Instrument.circuit.Sonar_ir.Circuit.modules in
  let e = Engine.compile m' in
  (e, Monitor.create e r.monitors)

let test_monitor_simultaneous () =
  let e, mon = monitored_engine () in
  Engine.poke_int e "io_ldq_idx_valid" 1;
  Engine.poke_int e "io_stq_idx_valid" 1;
  Engine.settle e;
  Monitor.sample mon;
  let st = List.hd (Monitor.states mon) in
  checkb "triggered" true st.Monitor.triggered;
  Alcotest.(check (option int)) "interval 0" (Some 0) st.min_pair_interval

let test_monitor_interval () =
  let e, mon = monitored_engine () in
  Engine.poke_int e "io_ldq_idx_valid" 1;
  Engine.settle e;
  Monitor.sample mon;
  Engine.poke_int e "io_ldq_idx_valid" 0;
  Engine.step e;
  Engine.step e;
  Monitor.sample mon;
  Engine.poke_int e "io_stq_idx_valid" 1;
  Engine.settle e;
  Monitor.sample mon;
  let st = List.hd (Monitor.states mon) in
  checkb "not simultaneous" false st.Monitor.triggered;
  Alcotest.(check (option int)) "interval 2" (Some 2) st.min_pair_interval

let test_monitor_window () =
  let e, mon = monitored_engine () in
  Monitor.set_window mon ~start:100 ~stop:200;
  Engine.poke_int e "io_ldq_idx_valid" 1;
  Engine.poke_int e "io_stq_idx_valid" 1;
  Engine.settle e;
  Monitor.sample mon;
  let st = List.hd (Monitor.states mon) in
  checkb "outside window ignored" false st.Monitor.triggered;
  checki "no hits recorded" 0 st.request_hits

(* The monitor's observable stream must be identical whichever engine
   backend it samples: same [reqsIntvl] minima, triggers, and hit counts
   after every cycle of the same stimulus on an instrumented netlist. *)
let test_monitor_stream_backends () =
  let m = Sonar_dut.Netlist_gen.example_module () in
  let r = Sonar_ir.Instrument.instrument (Sonar_ir.Circuit.make "c" [ m ]) in
  let m' = List.hd r.Sonar_ir.Instrument.circuit.Sonar_ir.Circuit.modules in
  let run backend =
    let e = Engine.compile ~backend m' in
    let mon = Monitor.create e r.monitors in
    let stream = ref [] in
    List.iter
      (fun (ld, st) ->
        Engine.poke_int e "io_ldq_idx_valid" ld;
        Engine.poke_int e "io_stq_idx_valid" st;
        Engine.step e;
        Monitor.sample mon;
        stream :=
          List.map
            (fun (s : Monitor.point_state) ->
              ( s.point_id,
                s.min_pair_interval,
                s.min_self_interval,
                s.triggered,
                s.request_hits ))
            (Monitor.states mon)
          :: !stream)
      [ (1, 0); (0, 0); (0, 0); (0, 1); (1, 1); (0, 0); (1, 0); (0, 1) ];
    List.rev !stream
  in
  checkb "identical reqsIntvl streams" true
    (run Engine.Tree = run Engine.Compiled)

(* --- VCD --- *)

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_vcd_output () =
  let e = Engine.compile counter_module in
  let vcd = Vcd.create e in
  Engine.poke_int e "en" 1;
  Vcd.dump vcd;
  Engine.step e;
  Vcd.dump vcd;
  let text = Vcd.contents vcd in
  checkb "has header" true (String.sub text 0 10 = "$timescale");
  checkb "declares count" true (contains "count" text);
  checkb "has timesteps" true (contains "#1" text)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sonar_rtlsim"
    [
      ( "bitvec",
        [
          Alcotest.test_case "masking" `Quick test_bitvec_masking;
          Alcotest.test_case "arithmetic" `Quick test_bitvec_arith;
          Alcotest.test_case "comparisons" `Quick test_bitvec_compare;
          Alcotest.test_case "shift/slice/cat" `Quick test_bitvec_shift_slice;
        ]
        @ qcheck [ prop_bitvec_add_commutes; prop_bitvec_mask_idempotent ] );
      ( "engine",
        [
          Alcotest.test_case "counter" `Quick test_engine_counter;
          Alcotest.test_case "reset" `Quick test_engine_reset;
          Alcotest.test_case "combinational" `Quick test_engine_comb;
          Alcotest.test_case "unknown signals" `Quick test_engine_unknown_signal;
          Alcotest.test_case "tree backend" `Quick test_engine_tree_backend;
          Alcotest.test_case "cat" `Quick test_engine_cat;
          Alcotest.test_case "allocation-free step" `Quick test_step_no_alloc;
        ]
        @ qcheck [ prop_engine_matches_interpreter ] );
      ( "compiled-differential",
        [
          Alcotest.test_case "generated boom/nutshell netlists" `Quick
            test_generated_netlist_differential;
          Alcotest.test_case "monitor stream across backends" `Quick
            test_monitor_stream_backends;
        ]
        @ qcheck [ prop_compiled_matches_interpreted ] );
      ( "levelize",
        [
          Alcotest.test_case "ordering" `Quick test_levelize_order;
          Alcotest.test_case "cycle detection" `Quick test_levelize_cycle;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "simultaneous trigger" `Quick test_monitor_simultaneous;
          Alcotest.test_case "interval measurement" `Quick test_monitor_interval;
          Alcotest.test_case "window gating" `Quick test_monitor_window;
        ] );
      ("vcd", [ Alcotest.test_case "waveform output" `Quick test_vcd_output ]);
    ]
