(* Tests for the bit-vector, levelization, simulation engine, runtime
   monitor and VCD writer. *)

open Sonar_rtlsim

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let check64 = Alcotest.(check int64)

(* --- Bitvec --- *)

let bv w v = Bitvec.make ~width:w (Int64.of_int v)

let test_bitvec_masking () =
  check64 "mask to width" 3L (Bitvec.value (bv 2 7));
  check64 "full value" 255L (Bitvec.value (bv 8 255));
  checkb "width error low" true
    (match Bitvec.make ~width:0 1L with
    | exception Bitvec.Width_error _ -> true
    | _ -> false);
  checkb "width error high" true
    (match Bitvec.make ~width:64 1L with
    | exception Bitvec.Width_error _ -> true
    | _ -> false)

let test_bitvec_arith () =
  check64 "add wraps" 0L (Bitvec.value (Bitvec.add (bv 4 15) (bv 4 1)));
  check64 "sub wraps" 15L (Bitvec.value (Bitvec.sub (bv 4 0) (bv 4 1)));
  check64 "and" 4L (Bitvec.value (Bitvec.logand (bv 4 6) (bv 4 12)));
  check64 "or" 14L (Bitvec.value (Bitvec.logor (bv 4 6) (bv 4 12)));
  check64 "xor" 10L (Bitvec.value (Bitvec.logxor (bv 4 6) (bv 4 12)));
  check64 "not" 9L (Bitvec.value (Bitvec.lognot (bv 4 6)))

let test_bitvec_compare () =
  checkb "lt unsigned" true (Bitvec.is_true (Bitvec.lt (bv 8 3) (bv 8 200)));
  checkb "geq" true (Bitvec.is_true (Bitvec.geq (bv 8 200) (bv 8 200)));
  checkb "eq" true (Bitvec.is_true (Bitvec.eq (bv 8 42) (bv 8 42)));
  checkb "neq" false (Bitvec.is_true (Bitvec.neq (bv 8 42) (bv 8 42)))

let test_bitvec_shift_slice () =
  check64 "shl widens" 12L (Bitvec.value (Bitvec.shl 2 (bv 4 3)));
  checki "shl width" 6 (Bitvec.width (Bitvec.shl 2 (bv 4 3)));
  check64 "shr" 3L (Bitvec.value (Bitvec.shr 2 (bv 8 12)));
  check64 "bits" 5L (Bitvec.value (Bitvec.bits ~hi:4 ~lo:2 (bv 8 0b10100)));
  check64 "cat" 0xABL (Bitvec.value (Bitvec.cat (bv 4 0xA) (bv 4 0xB)));
  check64 "pad" 5L (Bitvec.value (Bitvec.pad 16 (bv 4 5)))

let prop_bitvec_add_commutes =
  QCheck2.Test.make ~name:"bitvec add commutes" ~count:300
    QCheck2.Gen.(pair (int_bound 0xFFFF) (int_bound 0xFFFF))
    (fun (a, b) ->
      Bitvec.equal (Bitvec.add (bv 16 a) (bv 16 b)) (Bitvec.add (bv 16 b) (bv 16 a)))

let prop_bitvec_mask_idempotent =
  QCheck2.Test.make ~name:"masking is idempotent" ~count:300
    QCheck2.Gen.(pair (int_range 1 63) (map Int64.of_int int))
    (fun (w, v) ->
      let x = Bitvec.make ~width:w v in
      Bitvec.equal x (Bitvec.make ~width:w (Bitvec.value x)))

(* --- Levelize / Engine --- *)

let counter_module =
  Sonar_ir.Parser.parse_module
    {|
module Counter [other] :
  input en : UInt<1>
  output out : UInt<8>
  reg count : UInt<8> reset 0
  node next = mux(en, add(count, UInt<8>(1)), count)
  connect count = next
  connect out = count
|}

let test_engine_counter () =
  let e = Engine.compile counter_module in
  Engine.poke_int e "en" 1;
  for _ = 1 to 5 do
    Engine.step e
  done;
  checki "counts to 5" 5 (Engine.peek_int e "out");
  Engine.poke_int e "en" 0;
  Engine.step e;
  checki "holds" 5 (Engine.peek_int e "out");
  checki "cycles" 6 (Engine.cycle e)

let test_engine_reset () =
  let e = Engine.compile counter_module in
  Engine.poke_int e "en" 1;
  Engine.step e;
  Engine.step e;
  Engine.reset e;
  checki "reset to 0" 0 (Engine.peek_int e "out");
  checki "cycle rewound" 0 (Engine.cycle e)

let test_engine_comb () =
  let m =
    Sonar_ir.Parser.parse_module
      {|
module Comb [other] :
  input a : UInt<8>
  input b : UInt<8>
  input s : UInt<1>
  output o : UInt<8>
  node picked = mux(s, a, b)
  connect o = picked
|}
  in
  let e = Engine.compile m in
  Engine.poke_int e "a" 11;
  Engine.poke_int e "b" 22;
  Engine.poke_int e "s" 1;
  Engine.settle e;
  checki "mux true" 11 (Engine.peek_int e "o");
  Engine.poke_int e "s" 0;
  Engine.settle e;
  checki "mux false" 22 (Engine.peek_int e "o")

let test_engine_unknown_signal () =
  let e = Engine.compile counter_module in
  checkb "unknown raises" true
    (match Engine.peek e "nonexistent" with
    | exception Engine.Unknown_signal _ -> true
    | _ -> false);
  checkb "poke non-input raises" true
    (match Engine.poke_int e "out" 1 with
    | exception Engine.Unknown_signal _ -> true
    | _ -> false)

let test_levelize_order () =
  let order = Levelize.order counter_module in
  checkb "both comb signals scheduled" true
    (List.mem "next" order && List.mem "out" order)

let test_levelize_cycle () =
  let m =
    Sonar_ir.Parser.parse_module
      {|
module Loop [other] :
  wire x : UInt<8>
  wire y : UInt<8>
  connect x = add(y, UInt<8>(1))
  connect y = add(x, UInt<8>(1))
|}
  in
  checkb "combinational cycle detected" true
    (match Levelize.order m with
    | exception Levelize.Combinational_cycle _ -> true
    | _ -> false)

let test_engine_tree_backend () =
  let e = Engine.compile ~backend:Engine.Tree counter_module in
  checkb "tree backend" true (Engine.backend e = Engine.Tree);
  Engine.poke_int e "en" 1;
  for _ = 1 to 5 do
    Engine.step e
  done;
  checki "interpreter counts to 5" 5 (Engine.peek_int e "out")

(* Regression: [cat] was handled by width inference but missing from the
   evaluator, so any netlist using concatenation raised at the first settle. *)
let cat_module =
  Sonar_ir.Parser.parse_module
    {|
module C [other] :
  input a : UInt<4>
  input b : UInt<4>
  output o : UInt<8>
  node j = cat(a, b)
  connect o = j
|}

let test_engine_cat () =
  List.iter
    (fun backend ->
      let e = Engine.compile ~backend cat_module in
      Engine.poke_int e "a" 0xA;
      Engine.poke_int e "b" 0xB;
      Engine.settle e;
      checki "cat(a, b)" 0xAB (Engine.peek_int e "o"))
    [ Engine.Tree; Engine.Compiled; Engine.Bitsliced ]

(* Width errors surface at [compile] on every backend (the Tree backend
   used to raise lazily, on first evaluation). *)
let test_cat_overflow_compile_time () =
  let open Sonar_ir in
  let m =
    Fmodule.make "Wide"
      [
        Stmt.Input { name = "a"; width = 32 };
        Stmt.Input { name = "b"; width = 32 };
        Stmt.Node
          {
            name = "j";
            expr = Expr.prim Expr.Cat [ Expr.reference "a"; Expr.reference "b" ];
          };
        Stmt.Output { name = "o"; width = 63 };
        Stmt.Connect { dst = "o"; src = Expr.reference "j" };
      ]
  in
  List.iter
    (fun (name, backend) ->
      checkb
        (Printf.sprintf "64-bit cat fails at compile on %s" name)
        true
        (match Engine.compile ~backend m with
        | exception Bitvec.Width_error _ -> true
        | _ -> false))
    [
      ("tree", Engine.Tree);
      ("compiled", Engine.Compiled);
      ("bitsliced", Engine.Bitsliced);
    ]

(* Acceptance gate: a compiled or bit-sliced [step] performs no per-cycle
   heap allocation attributable to value traffic. The slack below covers
   the constant-size boxes of the [Gc.minor_words] calls themselves; any
   per-cycle allocation would show up as >= 1 word x 1000 cycles. *)
let test_step_no_alloc () =
  List.iter
    (fun (name, backend) ->
      let e = Engine.compile ~backend counter_module in
      Engine.poke_int e "en" 1;
      Engine.step e;
      let w0 = Gc.minor_words () in
      for _ = 1 to 1000 do
        Engine.step e
      done;
      let words = Gc.minor_words () -. w0 in
      checkb
        (Printf.sprintf "allocation-free %s step (%.0f minor words / 1000 cycles)"
           name words)
        true (words < 64.))
    [ ("compiled", Engine.Compiled); ("bitsliced", Engine.Bitsliced) ]

(* Differential property: the engine's evaluation of a fixed expression
   over random inputs matches a direct OCaml interpretation. *)
let prop_engine_matches_interpreter =
  let m =
    Sonar_ir.Parser.parse_module
      {|
module X [other] :
  input a : UInt<8>
  input b : UInt<8>
  input s : UInt<1>
  output o : UInt<8>
  node t = mux(s, add(a, b), xor(a, b))
  connect o = t
|}
  in
  QCheck2.Test.make ~name:"engine matches reference semantics" ~count:200
    QCheck2.Gen.(triple (int_bound 255) (int_bound 255) (int_bound 1))
    (fun (a, b, s) ->
      let e = Engine.compile m in
      Engine.poke_int e "a" a;
      Engine.poke_int e "b" b;
      Engine.poke_int e "s" s;
      Engine.settle e;
      let expect = if s = 1 then (a + b) land 255 else a lxor b in
      Engine.peek_int e "o" = expect)

(* --- Compiled-vs-interpreted differential --- *)

(* Generator of random well-formed netlists: a few inputs and registers, a
   chain of nodes whose expressions draw on every primop (including [cat]),
   register drives over the full environment, and an output. Expression
   widths are tracked during generation (with the same result-width rules
   the engine uses) so [cat] never exceeds 63 bits. *)
let gen_netlist : Sonar_ir.Fmodule.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let open Sonar_ir in
  let gen_width = int_range 1 16 in
  let rec gen_expr env fuel =
    let ref_gen =
      let* name, w = oneofl env in
      return (Expr.reference name, w)
    in
    let lit_gen =
      let* w = gen_width in
      let* v = int_bound 0xFFFF in
      return (Expr.lit ~width:w (Int64.of_int v), w)
    in
    if fuel = 0 then oneof [ ref_gen; lit_gen ]
    else
      let sub = gen_expr env (fuel - 1) in
      let unop =
        let* a, wa = sub in
        let* k = int_range 0 4 in
        let* n = int_range 0 6 in
        return
          (match k with
          | 0 -> (Expr.prim Expr.Not [ a ], wa)
          | 1 -> (Expr.prim (Expr.Shl n) [ a ], min 63 (wa + n))
          | 2 -> (Expr.prim (Expr.Shr n) [ a ], max 1 (wa - n))
          | 3 -> (Expr.prim (Expr.Bits (n + 3, n)) [ a ], 4)
          | _ -> (Expr.prim (Expr.Pad (n + 1)) [ a ], n + 1))
      in
      let binop =
        let* a, wa = sub in
        let* b, wb = sub in
        let* k = int_range 0 9 in
        return
          (match k with
          | 0 -> (Expr.prim Expr.Add [ a; b ], max wa wb)
          | 1 -> (Expr.prim Expr.Sub [ a; b ], max wa wb)
          | 2 -> (Expr.prim Expr.And [ a; b ], max wa wb)
          | 3 -> (Expr.prim Expr.Or [ a; b ], max wa wb)
          | 4 -> (Expr.prim Expr.Xor [ a; b ], max wa wb)
          | 5 -> (Expr.prim Expr.Eq [ a; b ], 1)
          | 6 -> (Expr.prim Expr.Neq [ a; b ], 1)
          | 7 -> (Expr.prim Expr.Lt [ a; b ], 1)
          | 8 -> (Expr.prim Expr.Geq [ a; b ], 1)
          | _ ->
              if wa + wb <= 63 then (Expr.prim Expr.Cat [ a; b ], wa + wb)
              else (Expr.prim Expr.Or [ a; b ], max wa wb))
      in
      let mux_gen =
        let* s, _ = sub in
        let* a, wa = sub in
        let* b, wb = sub in
        return (Expr.mux s a b, max wa wb)
      in
      frequency
        [ (2, ref_gen); (1, lit_gen); (2, unop); (3, binop); (2, mux_gen) ]
  in
  let* n_inputs = int_range 1 3 in
  let* input_widths = list_repeat n_inputs gen_width in
  let inputs = List.mapi (fun i w -> (Printf.sprintf "in%d" i, w)) input_widths in
  let* n_regs = int_range 0 2 in
  let* reg_specs = list_repeat n_regs (pair gen_width (int_bound 1000)) in
  let regs =
    List.mapi
      (fun i (w, r) -> (Printf.sprintf "r%d" i, w, Int64.of_int r))
      reg_specs
  in
  let base_env = inputs @ List.map (fun (n, w, _) -> (n, w)) regs in
  let* n_nodes = int_range 1 5 in
  let rec build_nodes env acc k =
    if k = 0 then return (List.rev acc, env)
    else
      let* e, w = gen_expr env 3 in
      let name = Printf.sprintf "n%d" (List.length acc) in
      build_nodes ((name, w) :: env) ((name, e) :: acc) (k - 1)
  in
  let* nodes, env = build_nodes base_env [] n_nodes in
  let* reg_drives = list_repeat n_regs (gen_expr env 2) in
  let last_node = Printf.sprintf "n%d" (n_nodes - 1) in
  let stmts =
    List.map (fun (n, w) -> Stmt.Input { name = n; width = w }) inputs
    @ List.map
        (fun (n, w, r) -> Stmt.Reg { name = n; width = w; reset = Some r })
        regs
    @ List.map (fun (n, e) -> Stmt.Node { name = n; expr = e }) nodes
    @ List.map2
        (fun (n, _, _) (e, _) -> Stmt.Connect { dst = n; src = e })
        regs reg_drives
    @ [
        Stmt.Output { name = "out"; width = 8 };
        Stmt.Connect { dst = "out"; src = Expr.reference last_node };
      ]
  in
  return (Fmodule.make "Rand" stmts)

(* Drive both backends with the same pseudo-random input stream and require
   every signal to agree after every cycle. *)
let engines_agree m ~cycles ~seed =
  let a = Engine.compile ~backend:Engine.Tree m in
  let b = Engine.compile ~backend:Engine.Compiled m in
  let inputs = Sonar_ir.Fmodule.inputs m in
  let names = Engine.signal_names a in
  let state = ref (seed lor 1) in
  let agree () =
    List.for_all
      (fun n -> Bitvec.equal (Engine.peek a n) (Engine.peek b n))
      names
  in
  let ok = ref (agree ()) in
  for _ = 1 to cycles do
    List.iter
      (fun (n, _) ->
        state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
        Engine.poke_int a n !state;
        Engine.poke_int b n !state)
      inputs;
    Engine.step a;
    Engine.step b;
    ok := !ok && agree ()
  done;
  !ok

let prop_compiled_matches_interpreted =
  QCheck2.Test.make ~name:"compiled step = interpreted step (random netlists)"
    ~count:150
    QCheck2.Gen.(triple gen_netlist (int_range 1 15) (int_bound 0x3FFFFF))
    (fun (m, cycles, seed) -> engines_agree m ~cycles ~seed)

(* --- Bit-sliced lane differential --- *)

(* Drive [active_lanes] lanes of one bit-sliced engine with independent
   pseudo-random input streams, and the same streams into [active_lanes]
   sequential compiled engines; every lane of every signal must agree after
   every cycle. Idle lanes (never poked) must behave as a compiled run under
   all-zero stimulus. *)
let lanes_agree ?(active_lanes = Engine.max_lanes) m ~cycles ~seed =
  let bs = Engine.compile ~backend:Engine.Bitsliced m in
  let refs =
    Array.init active_lanes (fun _ ->
        Engine.compile ~backend:Engine.Compiled m)
  in
  let idle_ref = Engine.compile ~backend:Engine.Compiled m in
  let inputs = Sonar_ir.Fmodule.inputs m in
  let names = Engine.signal_names bs in
  let states =
    Array.init active_lanes (fun l -> ref (((seed + (31 * l)) lor 1) land max_int))
  in
  let next l =
    let s = states.(l) in
    s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
    !s
  in
  let agree () =
    List.for_all
      (fun n ->
        let sb = Engine.slot bs n in
        let active_ok = ref true in
        for l = 0 to active_lanes - 1 do
          let expect = Engine.read_slot refs.(l) (Engine.slot refs.(l) n) in
          if Engine.read_slot_lane bs sb ~lane:l <> expect then
            active_ok := false
        done;
        let idle_expect = Engine.read_slot idle_ref (Engine.slot idle_ref n) in
        for l = active_lanes to Engine.max_lanes - 1 do
          if Engine.read_slot_lane bs sb ~lane:l <> idle_expect then
            active_ok := false
        done;
        !active_ok)
      names
  in
  let ok = ref (agree ()) in
  for _ = 1 to cycles do
    List.iter
      (fun (n, _) ->
        for l = 0 to active_lanes - 1 do
          let v = next l in
          Engine.poke_lane bs n ~lane:l v;
          Engine.poke_int refs.(l) n v
        done)
      inputs;
    Engine.step bs;
    Array.iter Engine.step refs;
    Engine.step idle_ref;
    ok := !ok && agree ()
  done;
  !ok

let prop_bitsliced_matches_compiled =
  QCheck2.Test.make
    ~name:"bit-sliced lanes = 63 sequential compiled runs (random netlists)"
    ~count:60
    QCheck2.Gen.(triple gen_netlist (int_range 1 8) (int_bound 0x3FFFFF))
    (fun (m, cycles, seed) -> lanes_agree m ~cycles ~seed)

(* The same differential over the generated (and instrumented) boom and
   nutshell netlists — every module, every signal, every cycle. *)
let test_generated_netlist_differential () =
  List.iter
    (fun cfg ->
      let circuit = Sonar_dut.Netlist_gen.generate ~scale:0.02 ~pad:false cfg in
      let r = Sonar_ir.Instrument.instrument circuit in
      List.iter
        (fun m ->
          checkb
            (Printf.sprintf "%s/%s compiled = interpreted"
               cfg.Sonar_uarch.Config.name m.Sonar_ir.Fmodule.name)
            true
            (engines_agree m ~cycles:12 ~seed:(Hashtbl.hash m.Sonar_ir.Fmodule.name)))
        r.Sonar_ir.Instrument.circuit.Sonar_ir.Circuit.modules)
    [ Sonar_uarch.Config.boom; Sonar_uarch.Config.nutshell ]

(* Every lane of a 63-lane bit-sliced run over the instrumented DUT
   netlists, against 63 sequential compiled runs. *)
let test_bitsliced_dut_differential () =
  List.iter
    (fun cfg ->
      let circuit = Sonar_dut.Netlist_gen.generate ~scale:0.02 ~pad:false cfg in
      let r = Sonar_ir.Instrument.instrument circuit in
      List.iter
        (fun m ->
          checkb
            (Printf.sprintf "%s/%s bit-sliced lanes = compiled"
               cfg.Sonar_uarch.Config.name m.Sonar_ir.Fmodule.name)
            true
            (lanes_agree m ~cycles:6 ~seed:(Hashtbl.hash m.Sonar_ir.Fmodule.name)))
        r.Sonar_ir.Instrument.circuit.Sonar_ir.Circuit.modules)
    [ Sonar_uarch.Config.boom; Sonar_uarch.Config.nutshell ]

(* Partial batches: 1, 2 and 62 active lanes — idle lanes must stay on the
   all-zero-stimulus trajectory and active lanes must still be exact. *)
let test_bitsliced_partial_batches () =
  let m =
    Sonar_ir.Parser.parse_module
      {|
module P [other] :
  input a : UInt<8>
  input b : UInt<8>
  output o : UInt<8>
  reg acc : UInt<8> reset 3
  node t = mux(gt(a, b), sub(a, b), add(acc, xor(a, b)))
  connect acc = t
  connect o = acc
|}
  in
  List.iter
    (fun active_lanes ->
      checkb
        (Printf.sprintf "%d active lanes" active_lanes)
        true
        (lanes_agree ~active_lanes m ~cycles:10 ~seed:(active_lanes * 7919)))
    [ 1; 2; 62 ]

(* Width-63 signals with the top bit set: [read_slot] / [read_slot_lane]
   return the raw 63-bit pattern (negative when bit 62 is set) on every
   backend; [read_slot64] recovers the unsigned value. *)
let test_bitsliced_width63_top_bit () =
  let open Sonar_ir in
  let m =
    Fmodule.make "W63"
      [
        Stmt.Input { name = "a"; width = 63 };
        Stmt.Node
          {
            name = "inc";
            expr =
              Expr.prim Expr.Add
                [ Expr.reference "a"; Expr.lit ~width:63 1L ];
          };
        Stmt.Output { name = "o"; width = 63 };
        Stmt.Connect { dst = "o"; src = Expr.reference "inc" };
      ]
  in
  let top = 1 lsl 62 in
  List.iter
    (fun backend ->
      let e = Engine.compile ~backend m in
      Engine.poke_int e "a" (top lor 5);
      Engine.settle e;
      let s = Engine.slot e "o" in
      checkb "raw pattern is negative" true (Engine.read_slot e s < 0);
      checki "raw pattern" (top lor 6) (Engine.read_slot e s);
      check64 "unsigned via read_slot64" 0x4000_0000_0000_0006L
        (Engine.read_slot64 e s))
    [ Engine.Tree; Engine.Compiled; Engine.Bitsliced ];
  (* Per-lane: distinct top-bit patterns in distinct lanes. *)
  let e = Engine.compile ~backend:Engine.Bitsliced m in
  Engine.poke_lane e "a" ~lane:7 (top lor 1);
  Engine.poke_lane e "a" ~lane:8 2;
  Engine.settle e;
  let s = Engine.slot e "o" in
  checki "lane 7 wraps through the top bit" (top lor 2)
    (Engine.read_slot_lane e s ~lane:7);
  checki "lane 8 stays small" 3 (Engine.read_slot_lane e s ~lane:8);
  checki "idle lane" 1 (Engine.read_slot_lane e s ~lane:0)

(* Shifts at and beyond the operand width, on all backends. *)
let test_bitsliced_shift_ge_width () =
  let open Sonar_ir in
  let m =
    Fmodule.make "Shifts"
      [
        Stmt.Input { name = "a"; width = 4 };
        Stmt.Node
          { name = "l"; expr = Expr.prim (Expr.Shl 60) [ Expr.reference "a" ] };
        Stmt.Node
          { name = "r"; expr = Expr.prim (Expr.Shr 4) [ Expr.reference "a" ] };
        Stmt.Node
          { name = "r2"; expr = Expr.prim (Expr.Shr 63) [ Expr.reference "a" ] };
        Stmt.Output { name = "o"; width = 63 };
        Stmt.Connect
          {
            dst = "o";
            src =
              Expr.prim Expr.Or
                [
                  Expr.reference "l";
                  Expr.prim Expr.Or
                    [ Expr.reference "r"; Expr.reference "r2" ];
                ];
          };
      ]
  in
  List.iter
    (fun backend ->
      let e = Engine.compile ~backend m in
      Engine.poke_int e "a" 0xF;
      Engine.settle e;
      (* shl 60 of a 4-bit value keeps only the bits below 63 — the native
         63-bit shift drops the same top bit the engine masks away. *)
      checki "shl into the top" (0xF lsl 60)
        (Engine.read_slot e (Engine.slot e "l"));
      checki "shr = width" 0 (Engine.read_slot e (Engine.slot e "r"));
      checki "shr 63" 0 (Engine.read_slot e (Engine.slot e "r2")))
    [ Engine.Tree; Engine.Compiled; Engine.Bitsliced ];
  checkb "shift differential across lanes" true
    (lanes_agree m ~cycles:8 ~seed:0xBEEF)

(* Unsigned comparisons: values with the top bit of their width set must
   compare as large, not negative, on every backend and every lane. *)
let test_bitsliced_unsigned_compares () =
  let open Sonar_ir in
  let cmp name op =
    Stmt.Node
      { name; expr = Expr.prim op [ Expr.reference "a"; Expr.reference "b" ] }
  in
  let m =
    Fmodule.make "Cmp"
      [
        Stmt.Input { name = "a"; width = 8 };
        Stmt.Input { name = "b"; width = 8 };
        cmp "lt" Expr.Lt;
        cmp "leq" Expr.Leq;
        cmp "gt" Expr.Gt;
        cmp "geq" Expr.Geq;
        cmp "eq" Expr.Eq;
        cmp "neq" Expr.Neq;
        Stmt.Output { name = "o"; width = 6 };
        Stmt.Connect
          {
            dst = "o";
            src =
              List.fold_left
                (fun acc n ->
                  Expr.prim Expr.Cat [ acc; Expr.reference n ])
                (Expr.reference "lt")
                [ "leq"; "gt"; "geq"; "eq"; "neq" ];
          };
      ]
  in
  List.iter
    (fun backend ->
      let e = Engine.compile ~backend m in
      let check_case a b =
        Engine.poke_int e "a" a;
        Engine.poke_int e "b" b;
        Engine.settle e;
        let get n = Engine.read_slot e (Engine.slot e n) in
        checki (Printf.sprintf "lt %d %d" a b) (if a < b then 1 else 0) (get "lt");
        checki (Printf.sprintf "leq %d %d" a b) (if a <= b then 1 else 0)
          (get "leq");
        checki (Printf.sprintf "gt %d %d" a b) (if a > b then 1 else 0) (get "gt");
        checki (Printf.sprintf "geq %d %d" a b) (if a >= b then 1 else 0)
          (get "geq");
        checki (Printf.sprintf "eq %d %d" a b) (if a = b then 1 else 0) (get "eq");
        checki (Printf.sprintf "neq %d %d" a b) (if a <> b then 1 else 0)
          (get "neq")
      in
      (* 200 > 3 unsigned; equal values; both top-bit-set values. *)
      check_case 200 3;
      check_case 3 200;
      check_case 200 200;
      check_case 255 128;
      check_case 0 255)
    [ Engine.Tree; Engine.Compiled; Engine.Bitsliced ];
  checkb "compare differential across lanes" true
    (lanes_agree m ~cycles:8 ~seed:0xCAFE)

(* Bulk transpose helpers round-trip: poke_lanes in, read_slot_lanes out. *)
let test_bitsliced_transpose_roundtrip () =
  let e = Engine.compile ~backend:Engine.Bitsliced cat_module in
  let vals_a = Array.init Engine.max_lanes (fun l -> (l * 3) land 0xF) in
  let vals_b = Array.init Engine.max_lanes (fun l -> (l + 9) land 0xF) in
  Engine.poke_lanes e "a" vals_a;
  Engine.poke_lanes e "b" vals_b;
  Engine.settle e;
  let o = Engine.read_slot_lanes e (Engine.slot e "o") in
  checki "63 lanes out" Engine.max_lanes (Array.length o);
  Array.iteri
    (fun l v ->
      checki (Printf.sprintf "lane %d" l) ((vals_a.(l) lsl 4) lor vals_b.(l)) v)
    o

(* --- Monitor --- *)

let monitored_engine () =
  let m = Sonar_dut.Netlist_gen.example_module () in
  let r = Sonar_ir.Instrument.instrument (Sonar_ir.Circuit.make "c" [ m ]) in
  let m' = List.hd r.Sonar_ir.Instrument.circuit.Sonar_ir.Circuit.modules in
  let e = Engine.compile m' in
  (e, Monitor.create e r.monitors)

let test_monitor_simultaneous () =
  let e, mon = monitored_engine () in
  Engine.poke_int e "io_ldq_idx_valid" 1;
  Engine.poke_int e "io_stq_idx_valid" 1;
  Engine.settle e;
  Monitor.sample mon;
  let st = List.hd (Monitor.states mon) in
  checkb "triggered" true st.Monitor.triggered;
  Alcotest.(check (option int)) "interval 0" (Some 0) st.min_pair_interval

let test_monitor_interval () =
  let e, mon = monitored_engine () in
  Engine.poke_int e "io_ldq_idx_valid" 1;
  Engine.settle e;
  Monitor.sample mon;
  Engine.poke_int e "io_ldq_idx_valid" 0;
  Engine.step e;
  Engine.step e;
  Monitor.sample mon;
  Engine.poke_int e "io_stq_idx_valid" 1;
  Engine.settle e;
  Monitor.sample mon;
  let st = List.hd (Monitor.states mon) in
  checkb "not simultaneous" false st.Monitor.triggered;
  Alcotest.(check (option int)) "interval 2" (Some 2) st.min_pair_interval

let test_monitor_window () =
  let e, mon = monitored_engine () in
  Monitor.set_window mon ~start:100 ~stop:200;
  Engine.poke_int e "io_ldq_idx_valid" 1;
  Engine.poke_int e "io_stq_idx_valid" 1;
  Engine.settle e;
  Monitor.sample mon;
  let st = List.hd (Monitor.states mon) in
  checkb "outside window ignored" false st.Monitor.triggered;
  checki "no hits recorded" 0 st.request_hits

(* The monitor's observable stream must be identical whichever engine
   backend it samples: same [reqsIntvl] minima, triggers, and hit counts
   after every cycle of the same stimulus on an instrumented netlist. *)
let test_monitor_stream_backends () =
  let m = Sonar_dut.Netlist_gen.example_module () in
  let r = Sonar_ir.Instrument.instrument (Sonar_ir.Circuit.make "c" [ m ]) in
  let m' = List.hd r.Sonar_ir.Instrument.circuit.Sonar_ir.Circuit.modules in
  let run backend =
    let e = Engine.compile ~backend m' in
    let mon = Monitor.create e r.monitors in
    let stream = ref [] in
    List.iter
      (fun (ld, st) ->
        Engine.poke_int e "io_ldq_idx_valid" ld;
        Engine.poke_int e "io_stq_idx_valid" st;
        Engine.step e;
        Monitor.sample mon;
        stream :=
          List.map
            (fun (s : Monitor.point_state) ->
              ( s.point_id,
                s.min_pair_interval,
                s.min_self_interval,
                s.triggered,
                s.request_hits ))
            (Monitor.states mon)
          :: !stream)
      [ (1, 0); (0, 0); (0, 0); (0, 1); (1, 1); (0, 0); (1, 0); (0, 1) ];
    List.rev !stream
  in
  let compiled = run Engine.Compiled in
  checkb "identical reqsIntvl streams (tree)" true (run Engine.Tree = compiled);
  (* Scalar pokes broadcast on the bit-sliced backend and the scalar monitor
     reads lane 0, so the stream must be identical there too. *)
  checkb "identical reqsIntvl streams (bitsliced)" true
    (run Engine.Bitsliced = compiled)

(* Batch sampling differential: every lane of a [Monitor.Batch] over a
   bit-sliced engine must report exactly the per-point state a scalar
   [Monitor] reports for a compiled run of that lane's stimulus — window
   gating included. *)
let test_monitor_batch_lanes () =
  let m = Sonar_dut.Netlist_gen.example_module () in
  let r = Sonar_ir.Instrument.instrument (Sonar_ir.Circuit.make "c" [ m ]) in
  let m' = List.hd r.Sonar_ir.Instrument.circuit.Sonar_ir.Circuit.modules in
  let cycles = 24 in
  (* Lane-dependent stimulus with distinct phases per source. *)
  let ld_stim lane cycle = if (cycle + lane) mod 3 = 0 then 1 else 0 in
  let st_stim lane cycle = if (cycle + (2 * lane)) mod 4 = 0 then 1 else 0 in
  let snapshot states =
    List.map
      (fun (s : Monitor.point_state) ->
        ( s.point_id,
          s.min_pair_interval,
          s.min_self_interval,
          s.triggered,
          s.request_hits ))
      states
  in
  let bs = Engine.compile ~backend:Engine.Bitsliced m' in
  let bmon = Monitor.Batch.create bs r.monitors in
  checki "batch lanes" Engine.max_lanes (Monitor.Batch.lanes bmon);
  Monitor.Batch.set_window bmon ~start:5 ~stop:18;
  for cycle = 0 to cycles - 1 do
    for lane = 0 to Engine.max_lanes - 1 do
      Engine.poke_lane bs "io_ldq_idx_valid" ~lane (ld_stim lane cycle);
      Engine.poke_lane bs "io_stq_idx_valid" ~lane (st_stim lane cycle)
    done;
    Engine.step bs;
    Monitor.Batch.sample bmon
  done;
  for lane = 0 to Engine.max_lanes - 1 do
    let e = Engine.compile ~backend:Engine.Compiled m' in
    let mon = Monitor.create e r.monitors in
    Monitor.set_window mon ~start:5 ~stop:18;
    for cycle = 0 to cycles - 1 do
      Engine.poke_int e "io_ldq_idx_valid" (ld_stim lane cycle);
      Engine.poke_int e "io_stq_idx_valid" (st_stim lane cycle);
      Engine.step e;
      Monitor.sample mon
    done;
    checkb
      (Printf.sprintf "lane %d batch = scalar monitor" lane)
      true
      (snapshot (Monitor.Batch.states bmon ~lane) = snapshot (Monitor.states mon))
  done

(* --- VCD --- *)

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_vcd_output () =
  let e = Engine.compile counter_module in
  let vcd = Vcd.create e in
  Engine.poke_int e "en" 1;
  Vcd.dump vcd;
  Engine.step e;
  Vcd.dump vcd;
  let text = Vcd.contents vcd in
  checkb "has header" true (String.sub text 0 10 = "$timescale");
  checkb "declares count" true (contains "count" text);
  checkb "has timesteps" true (contains "#1" text)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sonar_rtlsim"
    [
      ( "bitvec",
        [
          Alcotest.test_case "masking" `Quick test_bitvec_masking;
          Alcotest.test_case "arithmetic" `Quick test_bitvec_arith;
          Alcotest.test_case "comparisons" `Quick test_bitvec_compare;
          Alcotest.test_case "shift/slice/cat" `Quick test_bitvec_shift_slice;
        ]
        @ qcheck [ prop_bitvec_add_commutes; prop_bitvec_mask_idempotent ] );
      ( "engine",
        [
          Alcotest.test_case "counter" `Quick test_engine_counter;
          Alcotest.test_case "reset" `Quick test_engine_reset;
          Alcotest.test_case "combinational" `Quick test_engine_comb;
          Alcotest.test_case "unknown signals" `Quick test_engine_unknown_signal;
          Alcotest.test_case "tree backend" `Quick test_engine_tree_backend;
          Alcotest.test_case "cat" `Quick test_engine_cat;
          Alcotest.test_case "cat overflow at compile" `Quick
            test_cat_overflow_compile_time;
          Alcotest.test_case "allocation-free step" `Quick test_step_no_alloc;
        ]
        @ qcheck [ prop_engine_matches_interpreter ] );
      ( "compiled-differential",
        [
          Alcotest.test_case "generated boom/nutshell netlists" `Quick
            test_generated_netlist_differential;
          Alcotest.test_case "monitor stream across backends" `Quick
            test_monitor_stream_backends;
        ]
        @ qcheck [ prop_compiled_matches_interpreted ] );
      ( "bitsliced",
        [
          Alcotest.test_case "boom/nutshell lane differential" `Quick
            test_bitsliced_dut_differential;
          Alcotest.test_case "partial batches" `Quick
            test_bitsliced_partial_batches;
          Alcotest.test_case "width-63 top bit" `Quick
            test_bitsliced_width63_top_bit;
          Alcotest.test_case "shift >= width" `Quick
            test_bitsliced_shift_ge_width;
          Alcotest.test_case "unsigned compares" `Quick
            test_bitsliced_unsigned_compares;
          Alcotest.test_case "transpose round-trip" `Quick
            test_bitsliced_transpose_roundtrip;
          Alcotest.test_case "batch monitor lanes" `Quick
            test_monitor_batch_lanes;
        ]
        @ qcheck [ prop_bitsliced_matches_compiled ] );
      ( "levelize",
        [
          Alcotest.test_case "ordering" `Quick test_levelize_order;
          Alcotest.test_case "cycle detection" `Quick test_levelize_cycle;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "simultaneous trigger" `Quick test_monitor_simultaneous;
          Alcotest.test_case "interval measurement" `Quick test_monitor_interval;
          Alcotest.test_case "window gating" `Quick test_monitor_window;
        ] );
      ("vcd", [ Alcotest.test_case "waveform output" `Quick test_vcd_output ]);
    ]
