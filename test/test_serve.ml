(* Tests for the HTTP observability server: the Prometheus text
   exposition renderer, the three standard routes, and the socket
   lifecycle (real loopback requests against an ephemeral port). *)

open Sonar

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* --- fixtures --- *)

let metrics_fixture =
  {
    Telemetry.Metrics.events = 100;
    generations = 4;
    testcases = 50;
    contention_testcases = 7;
    ccd_findings = 3;
    finding_testcases = 2;
    retained = 5;
    evicted = 1;
    direction_flips = 2;
    coverage = 12.5;
    corpus_size = 5;
    generate_seconds = 0.5;
    execute_seconds = 1.5;
    feedback_seconds = 0.25;
    wall_seconds = 3.;
    events_per_second = 33.25;
    testcases_per_second = 16.5;
    pool_utilization = 0.5;
    cycles_simulated = 1000;
    cycles_saved = 200;
    checkpoint_hits = 9;
  }

let observatory_fixture events =
  let sink, snap = Telemetry.observatory () in
  List.iter sink.Telemetry.emit events;
  snap ()

let hist ~point ~src_pair ~total ~min_interval ~max_interval buckets =
  Telemetry.Interval_histogram
    { generation = 1; point; src_pair; total; min_interval; max_interval;
      buckets }

(* --- Prometheus exposition --- *)

let test_prometheus_counters () =
  let text = Serve.prometheus metrics_fixture (observatory_fixture []) in
  List.iter
    (fun needle -> checkb (needle ^ " present") true (contains ~needle text))
    [
      "# TYPE sonar_testcases_total counter\nsonar_testcases_total 50\n";
      "sonar_generations_total 4\n";
      "sonar_contention_testcases_total 7\n";
      "sonar_ccd_findings_total 3\n";
      "sonar_cycles_simulated_total 1000\n";
      "sonar_cycles_saved_total 200\n";
      "sonar_checkpoint_hits_total 9\n";
      "# TYPE sonar_coverage gauge\nsonar_coverage 12.5\n";
      "sonar_corpus_size 5\n";
      "sonar_phase_seconds_total{phase=\"generate\"} 0.5\n";
      "sonar_phase_seconds_total{phase=\"execute\"} 1.5\n";
      "sonar_phase_seconds_total{phase=\"feedback\"} 0.25\n";
    ];
  (* an empty observatory still renders a complete (empty) histogram *)
  checkb "+Inf bucket always present" true
    (contains ~needle:"sonar_interval_cycles_bucket{le=\"+Inf\"} 0\n" text);
  checkb "count always present" true
    (contains ~needle:"sonar_interval_cycles_count 0\n" text)

let test_prometheus_histogram () =
  (* buckets 1 (range 1..1, n=2) and 3 (range 4..7, n=4): the le series
     must be cumulative with power-of-two upper bounds *)
  let o =
    observatory_fixture
      [
        hist ~point:"p" ~src_pair:0 ~total:6 ~min_interval:1 ~max_interval:6
          [ (1, 2); (3, 4) ];
      ]
  in
  let text = Serve.prometheus metrics_fixture o in
  checkb "first bucket boundary" true
    (contains ~needle:"sonar_interval_cycles_bucket{le=\"1\"} 2\n" text);
  checkb "cumulative second bucket" true
    (contains ~needle:"sonar_interval_cycles_bucket{le=\"7\"} 6\n" text);
  checkb "+Inf equals the total" true
    (contains ~needle:"sonar_interval_cycles_bucket{le=\"+Inf\"} 6\n" text);
  checkb "count equals the total" true
    (contains ~needle:"sonar_interval_cycles_count 6\n" text);
  checkb "min-interval gauge per point" true
    (contains
       ~needle:"sonar_point_min_interval_cycles{point=\"p\",pair=\"0\"} 1\n"
       text);
  checkb "histogram family declared once" true
    (contains ~needle:"# TYPE sonar_interval_cycles histogram\n" text)

let test_prometheus_escaping () =
  let o =
    observatory_fixture
      [
        hist ~point:"a\"b\\c\nd" ~src_pair:1 ~total:1 ~min_interval:3
          ~max_interval:3 [ (2, 1) ];
      ]
  in
  let text = Serve.prometheus metrics_fixture o in
  checkb "label value escaped" true
    (contains
       ~needle:
         "sonar_point_min_interval_cycles{point=\"a\\\"b\\\\c\\nd\",pair=\"1\"} 3\n"
       text)

(* --- routes --- *)

let handler_fixture () =
  Serve.routes
    ~healthz:(fun () -> Json.Obj [ ("status", Json.String "running") ])
    ~snapshot:(fun () -> Json.Obj [ ("metrics", Json.Obj []) ])
    ~metrics:(fun () -> "sonar_testcases_total 50\n")

let test_routes () =
  let h = handler_fixture () in
  (match h "/healthz" with
  | Some r ->
      checki "healthz is 200" 200 r.Serve.status;
      checks "healthz is json" "application/json" r.content_type;
      checkb "healthz body parses" true
        (Json.of_string r.body <> Json.Null)
  | None -> Alcotest.fail "/healthz must resolve");
  (match h "/metrics" with
  | Some r ->
      checkb "prometheus content type" true
        (contains ~needle:"text/plain" r.Serve.content_type)
  | None -> Alcotest.fail "/metrics must resolve");
  checkb "snapshot resolves" true (h "/snapshot" <> None);
  checkb "unknown path is None" true (h "/other" = None)

(* --- socket lifecycle, real loopback requests --- *)

let http_request ?(meth = "GET") ~port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        Printf.sprintf "%s %s HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
          meth path
      in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 1024 in
      let rec loop () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            loop ()
      in
      loop ();
      Buffer.contents buf)

let status_of response = int_of_string (String.sub response 9 3)

let body_of response =
  let rec find i =
    if i + 3 >= String.length response then String.length response
    else if String.sub response i 4 = "\r\n\r\n" then i + 4
    else find (i + 1)
  in
  let i = find 0 in
  String.sub response i (String.length response - i)

let test_server_lifecycle () =
  let server = Serve.start ~port:0 (handler_fixture ()) in
  Fun.protect ~finally:(fun () -> Serve.stop server) @@ fun () ->
  let port = Serve.port server in
  checkb "ephemeral port assigned" true (port > 0);
  let health = http_request ~port "/healthz" in
  checki "healthz 200" 200 (status_of health);
  checks "healthz body" "running"
    Json.(to_str (member "status" (of_string (body_of health))));
  let metrics = http_request ~port "/metrics" in
  checki "metrics 200" 200 (status_of metrics);
  checkb "metrics body" true
    (contains ~needle:"sonar_testcases_total 50" (body_of metrics));
  checkb "query string stripped" true
    (status_of (http_request ~port "/snapshot?pretty=1") = 200);
  checki "unknown path 404" 404 (status_of (http_request ~port "/nope"));
  checki "non-GET 405" 405 (status_of (http_request ~meth:"POST" ~port "/healthz"))

let test_server_stop () =
  let server = Serve.start ~port:0 (handler_fixture ()) in
  let port = Serve.port server in
  checki "alive before stop" 200 (status_of (http_request ~port "/healthz"));
  Serve.stop server;
  Serve.stop server;
  (* idempotent *)
  checkb "connection refused after stop" true
    (match http_request ~port "/healthz" with
    | exception Unix.Unix_error _ -> true
    | _ -> false)

let () =
  Alcotest.run "sonar_serve"
    [
      ( "prometheus",
        [
          Alcotest.test_case "counters and gauges" `Quick
            test_prometheus_counters;
          Alcotest.test_case "interval histogram" `Quick
            test_prometheus_histogram;
          Alcotest.test_case "label escaping" `Quick test_prometheus_escaping;
        ] );
      ( "server",
        [
          Alcotest.test_case "routes" `Quick test_routes;
          Alcotest.test_case "lifecycle over loopback" `Quick
            test_server_lifecycle;
          Alcotest.test_case "stop" `Quick test_server_stop;
        ] );
    ]
