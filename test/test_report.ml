(* Tests for the offline trace-report builder behind `sonar report`:
   replaying a real campaign trace, resilience to malformed input, the
   markdown/HTML/JSON renderers, and report determinism. *)

open Sonar

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let nutshell = Sonar_uarch.Config.nutshell

let trace_lines ?(timings = false) ~iterations () =
  let lines = ref [] in
  let sink = Telemetry.jsonl ~timings (fun s -> lines := s :: !lines) in
  let o =
    Fuzzer.run
      ~options:{ Fuzzer.Options.default with seed = 23L; sinks = [ sink ] }
      nutshell Fuzzer.full_strategy ~iterations
  in
  (o, List.rev !lines)

let test_campaign_replay () =
  let o, lines = trace_lines ~iterations:24 () in
  let r = Report.of_lines ~source:"test" lines in
  checki "nothing skipped" 0 (Report.skipped r);
  checki "every line became an event" (List.length lines) (Report.events r);
  let md = Report.to_markdown r in
  List.iter
    (fun section -> checkb (section ^ " present") true (contains ~needle:section md))
    [
      "# Sonar campaign report";
      "## Summary";
      "## Coverage over iterations";
      "## Contention points by minimum interval";
      "## Coverage heatmap";
      "## Profiling spans";
      "## CCD findings";
    ];
  (* summary numbers come from the trace, which tracked the outcome *)
  checkb "testcase count in summary" true
    (contains ~needle:"| testcases | 24 |" md);
  checkb "final coverage in summary" true
    (contains
       ~needle:(Printf.sprintf "%.1f" o.Fuzzer.final_coverage)
       md);
  (* without --timings the trace has no spans; the section says so *)
  checkb "span section notes the timings opt-in" true
    (contains ~needle:"timings opt-in" md)

let test_span_tree_rendering () =
  let _, lines = trace_lines ~timings:true ~iterations:16 () in
  let md = Report.to_markdown (Report.of_lines lines) in
  checkb "campaign span row" true (contains ~needle:"campaign" md);
  checkb "execute span row" true (contains ~needle:"execute" md);
  checkb "no opt-in note when spans exist" false (contains ~needle:"timings opt-in" md)

let test_skipped_lines () =
  let _, lines = trace_lines ~iterations:8 () in
  let polluted =
    [ "not json at all"; {|{"event":"martian"}|}; "" ]
    @ lines
    @ [ {|{"truncated|} ]
  in
  let r = Report.of_lines polluted in
  checki "bad lines counted, blank ignored" 3 (Report.skipped r);
  checki "good events all kept" (List.length lines) (Report.events r);
  checkb "skip count surfaces in the summary" true
    (contains ~needle:"| skipped lines | 3 |" (Report.to_markdown r))

let test_empty_and_missing () =
  let r = Report.of_lines [] in
  checki "empty trace, zero events" 0 (Report.events r);
  checkb "empty trace still renders" true
    (contains ~needle:"No generation_end events" (Report.to_markdown r));
  match Report.load "/nonexistent/sonar-trace.jsonl" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loading a missing file must be an error"

let test_html_renderer () =
  let ev =
    Telemetry.Coverage_heatmap
      { generation = 1; components = [ ("a<b>&\"c", 1.0) ] }
  in
  let html = Report.to_html (Report.of_events [ ev ]) in
  checkb "is a complete document" true
    (contains ~needle:"<!DOCTYPE html>" html && contains ~needle:"</html>" html);
  checkb "component names are escaped" true
    (contains ~needle:"a&lt;b&gt;&amp;&quot;c" html);
  checkb "raw markup never leaks" false (contains ~needle:"a<b>" html)

let test_json_sidecar () =
  let _, lines = trace_lines ~iterations:16 () in
  let doc = Report.to_json (Report.of_lines ~source:"t" lines) in
  (* serialises and reparses; carries the sections machines consume *)
  let doc' = Json.of_string (Json.to_string doc) in
  checkb "sidecar round-trips" true (doc = doc');
  checks "source recorded" "t"
    Json.(to_str (member "source" (member "summary" doc)));
  checkb "series present" true
    (match Json.member "series" doc with Json.List (_ :: _) -> true | _ -> false);
  checkb "observatory present" true
    (match Json.member "observatory" doc with Json.Obj _ -> true | _ -> false)

let test_deterministic () =
  let _, a = trace_lines ~iterations:16 () in
  let _, b = trace_lines ~iterations:16 () in
  checks "same trace, byte-identical markdown"
    (Report.to_markdown (Report.of_lines a))
    (Report.to_markdown (Report.of_lines b));
  checks "same trace, byte-identical sidecar"
    (Json.to_string (Report.to_json (Report.of_lines a)))
    (Json.to_string (Report.to_json (Report.of_lines b)))

(* --- rotation, shard merging, campaign_end surfacing --- *)

let rotated_segments base =
  let rec go i acc =
    let p = Telemetry.segment_path base i in
    if Sys.file_exists p then go (i + 1) (p :: acc) else List.rev acc
  in
  go 0 []

let fresh_base () =
  let base = Filename.temp_file "sonar_report_rot" ".jsonl" in
  Sys.remove base;
  base

let test_rotated_merge_byte_identity () =
  (* The PR's determinism invariant: the merged report over rotated
     segments is byte-identical to the single-trace report, for every
     worker count. *)
  List.iter
    (fun jobs ->
      let base = fresh_base () in
      let rot = Telemetry.rotating_jsonl ~max_generations:2 base in
      let opts jobs sinks =
        { Fuzzer.Options.default with seed = 23L; batch = 8; jobs; sinks }
      in
      ignore
        (Fuzzer.run ~options:(opts jobs [ rot ]) nutshell Fuzzer.full_strategy
           ~iterations:40);
      Telemetry.close rot;
      let segments = rotated_segments base in
      checkb "campaign actually rotated" true (List.length segments > 1);
      let single = ref [] in
      let mem = Telemetry.jsonl (fun s -> single := s :: !single) in
      ignore
        (Fuzzer.run ~options:(opts 1 [ mem ]) nutshell Fuzzer.full_strategy
           ~iterations:40);
      let merged =
        match Report.load_many ~label:"campaign" segments with
        | Ok r -> r
        | Error msg -> Alcotest.fail msg
      in
      let reference = Report.of_lines ~source:"campaign" (List.rev !single) in
      checks
        (Printf.sprintf "markdown byte-identical (jobs=%d)" jobs)
        (Report.to_markdown reference)
        (Report.to_markdown merged);
      checks
        (Printf.sprintf "sidecar byte-identical (jobs=%d)" jobs)
        (Json.to_string (Report.to_json reference))
        (Json.to_string (Report.to_json merged));
      checki "still a single campaign" 1 (Report.campaigns merged);
      List.iter Sys.remove segments)
    [ 1; 2 ]

let test_rotated_merge_after_crash () =
  (* A campaign killed mid-segment leaves parseable segments whose merged
     report equals the plain-trace report of the same crashed campaign. *)
  let exception Boom in
  let run sinks =
    let n = ref 0 in
    let bomb =
      Telemetry.make (fun ev ->
          if not (Telemetry.is_timing_event ev) then begin
            incr n;
            if !n > 60 then raise Boom
          end)
    in
    match
      Fuzzer.run
        ~options:
          { Fuzzer.Options.default with seed = 23L; batch = 8;
            sinks = sinks @ [ bomb ] }
        nutshell Fuzzer.full_strategy ~iterations:64
    with
    | exception Boom -> ()
    | _ -> Alcotest.fail "expected the campaign to crash"
  in
  let base = fresh_base () in
  let rot = Telemetry.rotating_jsonl ~max_generations:1 base in
  run [ rot ];
  Telemetry.close rot;
  let segments = rotated_segments base in
  checkb "rotation happened before the crash" true (List.length segments > 1);
  let single = ref [] in
  let mem = Telemetry.jsonl (fun s -> single := s :: !single) in
  run [ mem ];
  let merged =
    match Report.load_many ~label:"campaign" segments with
    | Ok r -> r
    | Error msg -> Alcotest.fail msg
  in
  let reference = Report.of_lines ~source:"campaign" (List.rev !single) in
  checks "crashed campaign merges byte-identically"
    (Report.to_markdown reference)
    (Report.to_markdown merged);
  checkb "outcome survives the merge" true
    (Report.outcome merged = Some "crashed");
  checkb "crash surfaces in the summary" true
    (contains ~needle:"| outcome | crashed |" (Report.to_markdown merged));
  List.iter Sys.remove segments

let test_shard_merge_equals_concat () =
  (* Distinct campaigns (per-shard traces) merge cluster-level, and the
     merge is file-boundary-agnostic: report(a, b) = report(a ++ b). *)
  let shard seed =
    let lines = ref [] in
    let sink = Telemetry.jsonl (fun s -> lines := s :: !lines) in
    ignore
      (Fuzzer.run
         ~options:{ Fuzzer.Options.default with seed; sinks = [ sink ] }
         nutshell Fuzzer.full_strategy ~iterations:16);
    List.rev !lines
  in
  let a = shard 23L and b = shard 24L in
  let merged = Report.of_traces ~label:"fleet" [ ("a", a); ("b", b) ] in
  let concatenated = Report.of_lines ~source:"fleet" (a @ b) in
  checks "files vs concatenation, byte-identical"
    (Report.to_markdown concatenated)
    (Report.to_markdown merged);
  checki "two campaigns merged" 2 (Report.campaigns merged);
  checkb "both completed" true (Report.outcome merged = Some "completed");
  checkb "campaign count in the header" true
    (contains ~needle:"across 2 merged campaigns" (Report.to_markdown merged));
  checkb "campaigns-merged summary row" true
    (contains ~needle:"| campaigns merged | 2 |" (Report.to_markdown merged))

let test_outcome_surfacing () =
  let _, lines = trace_lines ~iterations:8 () in
  let md = Report.to_markdown (Report.of_lines lines) in
  checkb "completed outcome row" true
    (contains ~needle:"| outcome | completed |" md);
  checkb "header always counts events and skipped lines" true
    (contains
       ~needle:(Printf.sprintf "Replayed %d events, 0 skipped lines." (List.length lines))
       md);
  (* a trace cut before its footer reads as incomplete *)
  let truncated =
    List.filter
      (fun l ->
        match Telemetry.event_of_json (Json.of_string l) with
        | Some (Telemetry.Campaign_end _) -> false
        | _ -> true)
      lines
  in
  let r = Report.of_lines truncated in
  checkb "no footer, no outcome" true (Report.outcome r = None);
  checkb "incomplete outcome row" true
    (contains ~needle:"| outcome | incomplete (no campaign_end) |"
       (Report.to_markdown r));
  (* html carries the same header *)
  checkb "html header paragraph" true
    (contains ~needle:"skipped lines" (Report.to_html r))

let test_top_limits_points () =
  let _, lines = trace_lines ~iterations:24 () in
  let r = Report.of_lines lines in
  let count_rows md =
    (* data rows of the contention-point table: lines between its header
       separator and the next blank line *)
    match String.split_on_char '\n' md with
    | [] -> 0
    | all ->
        let rec after_header = function
          | [] -> []
          | l :: rest ->
              if contains ~needle:"| point | pair |" l then rest
              else after_header rest
        in
        let rec rows n = function
          | l :: rest when String.length l > 0 && l.[0] = '|' -> rows (n + 1) rest
          | _ -> n
        in
        rows (-1) (after_header all) (* -1 skips the --- separator row *)
  in
  checki "top=3 keeps three rows" 3 (count_rows (Report.to_markdown ~top:3 r));
  checkb "default keeps more" true (count_rows (Report.to_markdown r) > 3)

let () =
  Alcotest.run "sonar_report"
    [
      ( "report",
        [
          Alcotest.test_case "campaign replay" `Quick test_campaign_replay;
          Alcotest.test_case "span tree rendering" `Quick test_span_tree_rendering;
          Alcotest.test_case "skipped lines" `Quick test_skipped_lines;
          Alcotest.test_case "empty and missing input" `Quick test_empty_and_missing;
          Alcotest.test_case "html renderer" `Quick test_html_renderer;
          Alcotest.test_case "json sidecar" `Quick test_json_sidecar;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "top limits the point table" `Quick
            test_top_limits_points;
          Alcotest.test_case "rotated merge byte-identity" `Quick
            test_rotated_merge_byte_identity;
          Alcotest.test_case "rotated merge after a crash" `Quick
            test_rotated_merge_after_crash;
          Alcotest.test_case "shard merge equals concatenation" `Quick
            test_shard_merge_equals_concat;
          Alcotest.test_case "outcome surfacing" `Quick test_outcome_surfacing;
        ] );
    ]
