(* Tests for the offline trace-report builder behind `sonar report`:
   replaying a real campaign trace, resilience to malformed input, the
   markdown/HTML/JSON renderers, and report determinism. *)

open Sonar

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let nutshell = Sonar_uarch.Config.nutshell

let trace_lines ?(timings = false) ~iterations () =
  let lines = ref [] in
  let sink = Telemetry.jsonl ~timings (fun s -> lines := s :: !lines) in
  let o =
    Fuzzer.run
      ~options:{ Fuzzer.Options.default with seed = 23L; sinks = [ sink ] }
      nutshell Fuzzer.full_strategy ~iterations
  in
  (o, List.rev !lines)

let test_campaign_replay () =
  let o, lines = trace_lines ~iterations:24 () in
  let r = Report.of_lines ~source:"test" lines in
  checki "nothing skipped" 0 (Report.skipped r);
  checki "every line became an event" (List.length lines) (Report.events r);
  let md = Report.to_markdown r in
  List.iter
    (fun section -> checkb (section ^ " present") true (contains ~needle:section md))
    [
      "# Sonar campaign report";
      "## Summary";
      "## Coverage over iterations";
      "## Contention points by minimum interval";
      "## Coverage heatmap";
      "## Profiling spans";
      "## CCD findings";
    ];
  (* summary numbers come from the trace, which tracked the outcome *)
  checkb "testcase count in summary" true
    (contains ~needle:"| testcases | 24 |" md);
  checkb "final coverage in summary" true
    (contains
       ~needle:(Printf.sprintf "%.1f" o.Fuzzer.final_coverage)
       md);
  (* without --timings the trace has no spans; the section says so *)
  checkb "span section notes the timings opt-in" true
    (contains ~needle:"timings opt-in" md)

let test_span_tree_rendering () =
  let _, lines = trace_lines ~timings:true ~iterations:16 () in
  let md = Report.to_markdown (Report.of_lines lines) in
  checkb "campaign span row" true (contains ~needle:"campaign" md);
  checkb "execute span row" true (contains ~needle:"execute" md);
  checkb "no opt-in note when spans exist" false (contains ~needle:"timings opt-in" md)

let test_skipped_lines () =
  let _, lines = trace_lines ~iterations:8 () in
  let polluted =
    [ "not json at all"; {|{"event":"martian"}|}; "" ]
    @ lines
    @ [ {|{"truncated|} ]
  in
  let r = Report.of_lines polluted in
  checki "bad lines counted, blank ignored" 3 (Report.skipped r);
  checki "good events all kept" (List.length lines) (Report.events r);
  checkb "skip count surfaces in the summary" true
    (contains ~needle:"| skipped lines | 3 |" (Report.to_markdown r))

let test_empty_and_missing () =
  let r = Report.of_lines [] in
  checki "empty trace, zero events" 0 (Report.events r);
  checkb "empty trace still renders" true
    (contains ~needle:"No generation_end events" (Report.to_markdown r));
  match Report.load "/nonexistent/sonar-trace.jsonl" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loading a missing file must be an error"

let test_html_renderer () =
  let ev =
    Telemetry.Coverage_heatmap
      { generation = 1; components = [ ("a<b>&\"c", 1.0) ] }
  in
  let html = Report.to_html (Report.of_events [ ev ]) in
  checkb "is a complete document" true
    (contains ~needle:"<!DOCTYPE html>" html && contains ~needle:"</html>" html);
  checkb "component names are escaped" true
    (contains ~needle:"a&lt;b&gt;&amp;&quot;c" html);
  checkb "raw markup never leaks" false (contains ~needle:"a<b>" html)

let test_json_sidecar () =
  let _, lines = trace_lines ~iterations:16 () in
  let doc = Report.to_json (Report.of_lines ~source:"t" lines) in
  (* serialises and reparses; carries the sections machines consume *)
  let doc' = Json.of_string (Json.to_string doc) in
  checkb "sidecar round-trips" true (doc = doc');
  checks "source recorded" "t"
    Json.(to_str (member "source" (member "summary" doc)));
  checkb "series present" true
    (match Json.member "series" doc with Json.List (_ :: _) -> true | _ -> false);
  checkb "observatory present" true
    (match Json.member "observatory" doc with Json.Obj _ -> true | _ -> false)

let test_deterministic () =
  let _, a = trace_lines ~iterations:16 () in
  let _, b = trace_lines ~iterations:16 () in
  checks "same trace, byte-identical markdown"
    (Report.to_markdown (Report.of_lines a))
    (Report.to_markdown (Report.of_lines b));
  checks "same trace, byte-identical sidecar"
    (Json.to_string (Report.to_json (Report.of_lines a)))
    (Json.to_string (Report.to_json (Report.of_lines b)))

let test_top_limits_points () =
  let _, lines = trace_lines ~iterations:24 () in
  let r = Report.of_lines lines in
  let count_rows md =
    (* data rows of the contention-point table: lines between its header
       separator and the next blank line *)
    match String.split_on_char '\n' md with
    | [] -> 0
    | all ->
        let rec after_header = function
          | [] -> []
          | l :: rest ->
              if contains ~needle:"| point | pair |" l then rest
              else after_header rest
        in
        let rec rows n = function
          | l :: rest when String.length l > 0 && l.[0] = '|' -> rows (n + 1) rest
          | _ -> n
        in
        rows (-1) (after_header all) (* -1 skips the --- separator row *)
  in
  checki "top=3 keeps three rows" 3 (count_rows (Report.to_markdown ~top:3 r));
  checkb "default keeps more" true (count_rows (Report.to_markdown r) > 3)

let () =
  Alcotest.run "sonar_report"
    [
      ( "report",
        [
          Alcotest.test_case "campaign replay" `Quick test_campaign_replay;
          Alcotest.test_case "span tree rendering" `Quick test_span_tree_rendering;
          Alcotest.test_case "skipped lines" `Quick test_skipped_lines;
          Alcotest.test_case "empty and missing input" `Quick test_empty_and_missing;
          Alcotest.test_case "html renderer" `Quick test_html_renderer;
          Alcotest.test_case "json sidecar" `Quick test_json_sidecar;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "top limits the point table" `Quick
            test_top_limits_points;
        ] );
    ]
