(* Tests for the Sonar fuzzer: RNG, testcases, corpus, mutation, CCD,
   detector, coverage, fuzzing loop, the 14 channel scenarios and the
   Meltdown-style exploitability analysis. *)

open Sonar

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 0.0001))

(* --- Rng --- *)

let test_rng_determinism () =
  let a = Rng.create 1L and b = Rng.create 1L in
  for _ = 1 to 50 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_bounds () =
  let rng = Rng.create 2L in
  for _ = 1 to 200 do
    let v = Rng.int rng 7 in
    checkb "in bounds" true (v >= 0 && v < 7)
  done;
  checkb "zero bound rejected" true
    (match Rng.int rng 0 with exception Invalid_argument _ -> true | _ -> false)

let test_rng_split_independent () =
  let a = Rng.create 3L in
  let b = Rng.split a in
  checkb "split differs" true (Rng.int64 a <> Rng.int64 b)

let test_rng_shuffle_permutes () =
  let rng = Rng.create 4L in
  let l = [ 1; 2; 3; 4; 5; 6 ] in
  let s = Rng.shuffle rng l in
  Alcotest.(check (list int)) "same multiset" l (List.sort compare s)

(* --- Testcase --- *)

let test_testcase_materialize () =
  let rng = Rng.create 5L in
  let tc = Testcase.random rng ~id:1 ~dual:false in
  let inputs = Testcase.materialize tc ~secret:1 in
  checki "single core" 1 (Array.length inputs);
  let input = inputs.(0) in
  checkb "secret range present" true (input.Sonar_uarch.Machine.secret_range <> None);
  let lo, hi = Option.get input.secret_range in
  checkb "range well-formed" true (0 < lo && lo <= hi);
  checkb "range inside program" true
    (hi < Sonar_isa.Program.length input.program);
  (* The secret value lands in the data section. *)
  checkb "secret datum" true
    (List.exists
       (fun (a, v) -> Int64.equal a Layout.secret_addr && Int64.equal v 1L)
       input.program.Sonar_isa.Program.data)

let test_testcase_dual () =
  let rng = Rng.create 6L in
  let tc = Testcase.random rng ~id:1 ~dual:true in
  let inputs = Testcase.materialize tc ~secret:0 in
  checki "two cores" 2 (Array.length inputs);
  checkb "attacker has no secret range" true
    (inputs.(1).Sonar_uarch.Machine.secret_range = None)

let test_testcase_runs_cleanly () =
  (* Materialised testcases must execute to completion on both DUTs. *)
  let rng = Rng.create 7L in
  for i = 1 to 10 do
    let tc = Testcase.random rng ~id:i ~dual:false in
    List.iter
      (fun cfg ->
        let m =
          Sonar_uarch.Machine.run cfg (Testcase.materialize tc ~secret:(i land 1))
        in
        checkb "no cycle-limit hit" false m.Sonar_uarch.Machine.hit_cycle_limit)
      [ Sonar_uarch.Config.boom; Sonar_uarch.Config.nutshell ]
  done

let test_neutral_flavor_no_diff () =
  (* A Neutral testcase whose random regions do not consume secret-derived
     values behaves identically under both secrets. (Regions that feed the
     secret into an operand-dependent divide CAN leak — that is a genuine
     channel, not a test failure, so this test pins the regions.) *)
  let fixed_region =
    [
      Sonar_isa.Instr.Itype (Sonar_isa.Instr.ADDI, Sonar_isa.Reg.of_int 29,
                             Sonar_isa.Reg.of_int 29, 1);
      Sonar_isa.Instr.Load (Sonar_isa.Instr.LD, Sonar_isa.Reg.of_int 30,
                            Sonar_isa.Reg.of_int 11, 64);
      Sonar_isa.Instr.Store (Sonar_isa.Instr.SD, Sonar_isa.Reg.of_int 29,
                             Sonar_isa.Reg.of_int 11, 128);
    ]
  in
  let tc =
    {
      (Testcase.random (Rng.create 8L) ~id:1 ~dual:false) with
      flavor = Testcase.Neutral;
      prefix = fixed_region;
      suffix = fixed_region;
    }
  in
  let pair = Executor.execute Sonar_uarch.Config.boom tc in
  let report = Detector.detect pair in
  checki "no CCD findings" 0 (List.length report.Detector.findings);
  checki "no run-length delta" 0 report.total_delta

let test_latency_flavor_differs () =
  (* The divide's latency depends on the secret-derived operand. *)
  let rng = Rng.create 9L in
  let tc =
    {
      (Testcase.random rng ~id:1 ~dual:false) with
      flavor = Testcase.Latency { use_div = true };
    }
  in
  let pair = Executor.execute Sonar_uarch.Config.boom tc in
  let report = Detector.detect pair in
  checkb "latency flavor leaks timing" true
    (report.Detector.findings <> [] || report.total_delta <> 0)

(* --- Corpus --- *)

let dummy_tc = Testcase.random (Rng.create 10L) ~id:0 ~dual:false

let test_corpus_retention () =
  let c = Corpus.create () in
  checkb "first improves" true (Corpus.consider c dummy_tc ~intervals:[ (("p", 0), 5) ]);
  checkb "worse rejected" false (Corpus.consider c dummy_tc ~intervals:[ (("p", 0), 9) ]);
  checkb "equal rejected" false (Corpus.consider c dummy_tc ~intervals:[ (("p", 0), 5) ]);
  checkb "better accepted" true (Corpus.consider c dummy_tc ~intervals:[ (("p", 0), 2) ]);
  checkb "new point accepted" true (Corpus.consider c dummy_tc ~intervals:[ (("q", 1), 50) ]);
  checki "entries" 3 (Corpus.size c);
  Alcotest.(check (option int)) "best tracked" (Some 2) (Corpus.best_interval c ("p", 0))

let test_corpus_selection_prefers_small () =
  let c = Corpus.create () in
  ignore (Corpus.consider c dummy_tc ~intervals:[ (("big", 0), 500); (("small", 0), 1) ]);
  let rng = Rng.create 11L in
  let picks = ref 0 in
  for _ = 1 to 50 do
    match Corpus.select c rng with
    | Some (_, ("small", 0)) -> incr picks
    | _ -> ()
  done;
  checkb "small interval targeted mostly" true (!picks > 35)

let test_corpus_zero_not_selected () =
  let c = Corpus.create () in
  ignore (Corpus.consider c dummy_tc ~intervals:[ (("done", 0), 0) ]);
  checkb "nothing to chase" true (Corpus.select c (Rng.create 1L) = None)

let test_corpus_eviction_keeps_newest () =
  let c = Corpus.create ~max_entries:4 () in
  (* Strictly improving intervals so every candidate is retained. *)
  for i = 1 to 10 do
    let tc = { dummy_tc with Testcase.id = i } in
    checkb "retained" true (Corpus.consider c tc ~intervals:[ (("p", 0), 100 - i) ])
  done;
  checki "size clamped to max_entries" 4 (Corpus.size c);
  Alcotest.(check (list int)) "newest seeds survive, newest first"
    [ 10; 9; 8; 7 ]
    (List.map (fun (e : Corpus.entry) -> e.tc.Testcase.id) (Corpus.entries c))

(* --- Mutation --- *)

let chain_lengths (tc : Testcase.t) =
  List.map (fun (c : Testcase.chain) -> c.length) tc.chains

let test_mutation_directed_grow_shrink () =
  let rng = Rng.create 12L in
  let st = Mutation.create_state () in
  st.Mutation.dir <- Mutation.Grow;
  let tc' = Mutation.directed rng st dummy_tc in
  checkb "grow increases a chain" true
    (List.fold_left ( + ) 0 (chain_lengths tc')
    > List.fold_left ( + ) 0 (chain_lengths dummy_tc));
  st.Mutation.dir <- Mutation.Shrink;
  let tc'' = Mutation.directed rng st tc' in
  checkb "shrink decreases" true
    (List.fold_left ( + ) 0 (chain_lengths tc'')
    < List.fold_left ( + ) 0 (chain_lengths tc'))

let test_mutation_feedback_flips () =
  let st = Mutation.create_state () in
  let d0 = st.Mutation.dir in
  Mutation.feedback st ~improved:true;
  checkb "kept on improvement" true (st.Mutation.dir = d0);
  Mutation.feedback st ~improved:false;
  checkb "flipped on failure" true (st.Mutation.dir <> d0)

let test_mutation_preserves_flavor () =
  let rng = Rng.create 13L in
  let st = Mutation.create_state () in
  let tc = { dummy_tc with flavor = Testcase.Latency { use_div = true } } in
  let tc' = Mutation.mutate rng st ~directed_enabled:true tc in
  checkb "flavor preserved" true (tc'.Testcase.flavor = tc.Testcase.flavor)

let test_mutation_similarity_in_buffer () =
  let rng = Rng.create 14L in
  for _ = 1 to 20 do
    let tc = Mutation.enhance_similarity rng dummy_tc in
    List.iter
      (fun i ->
        match i with
        | Sonar_isa.Instr.Load (_, _, _, off) | Sonar_isa.Instr.Store (_, _, _, off)
          ->
            checkb "offset within base window" true (off >= 0 && off <= 4088)
        | _ -> ())
      (tc.Testcase.prefix @ tc.Testcase.suffix)
  done

(* --- CCD --- *)

let commit idx cycle : Sonar_uarch.Core_model.commit_record =
  {
    c_eff =
      {
        Sonar_isa.Golden.seq = idx;
        index = idx;
        pc = Int64.of_int (4 * idx);
        instr = Sonar_isa.Asm.nop;
        wb = None;
        mem = None;
        taken = None;
        fault = None;
        transient = false;
      };
    c_cycle = cycle;
    c_dispatch = cycle - 2;
  }

let test_ccd_inorder_propagation_filtered () =
  (* Paper Figure 5: a div is delayed by 1 cycle; the following mul commits
     later only because of in-order commit. Only the div's CCD changes. *)
  let run0 = [ commit 0 10; commit 1 20; commit 2 21 ] in
  let run1 = [ commit 0 10; commit 1 21; commit 2 22 ] in
  let rows, diverged = Ccd.align run0 run1 in
  checkb "aligned" false diverged;
  let affected = Ccd.ccd_affected rows in
  checki "only the div is genuinely affected" 1 (List.length affected);
  checki "it is instruction 1" 1 (List.hd affected).Ccd.static_index;
  checki "raw timing diffs include propagation" 2 (Ccd.timing_diff_count rows)

let test_ccd_divergent_traces () =
  let run0 = [ commit 0 1; commit 1 2; commit 5 9 ] in
  let run1 = [ commit 0 1; commit 2 3; commit 3 4; commit 5 9 ] in
  let rows, diverged = Ccd.align run0 run1 in
  checkb "diverged" true diverged;
  (* head = instr 0; tail = instr 5 *)
  checki "aligned rows" 2 (List.length rows)

(* --- Coverage --- *)

let test_coverage_accumulates_once () =
  let rng = Rng.create 15L in
  let tc = Testcase.random rng ~id:1 ~dual:false in
  let pair = Executor.execute Sonar_uarch.Config.boom tc in
  let cov = Coverage.create () in
  let first = Coverage.add_pair cov pair in
  checkb "first run adds coverage" true (first > 0.);
  let again = Coverage.add_pair cov pair in
  checkf "identical run adds nothing" 0. again;
  checkf "total stable" first (Coverage.total cov)

let test_coverage_components () =
  let rng = Rng.create 16L in
  let cov = Coverage.create () in
  for i = 1 to 5 do
    ignore
      (Coverage.add_pair cov
         (Executor.execute Sonar_uarch.Config.boom (Testcase.random rng ~id:i ~dual:false)))
  done;
  let per = Coverage.per_component cov in
  let sum = List.fold_left (fun a (_, w) -> a +. w) 0. per in
  checkb "component split sums to total" true
    (Float.abs (sum -. Coverage.total cov) < 1e-6)

(* --- Fuzzer --- *)

let test_fuzzer_deterministic () =
  let run () =
    Fuzzer.run
      ~options:{ Fuzzer.Options.default with seed = 17L }
      Sonar_uarch.Config.nutshell Fuzzer.full_strategy ~iterations:15
  in
  let a = run () and b = run () in
  checkf "same coverage" a.Fuzzer.final_coverage b.Fuzzer.final_coverage;
  checki "same diffs" a.final_timing_diffs b.final_timing_diffs

let test_fuzzer_jobs_bit_identical () =
  (* The whole outcome — series, coverage, reports — must not depend on the
     worker count, only on (seed, strategy, iterations, batch). *)
  let run jobs =
    Fuzzer.run
      ~options:{ Fuzzer.Options.default with seed = 17L; jobs }
      Sonar_uarch.Config.nutshell Fuzzer.full_strategy ~iterations:24
  in
  let sequential = run 1 and parallel = run 4 in
  checkb "bit-identical outcome for jobs=1 vs jobs=4" true
    (sequential = parallel)

let test_fuzzer_jobs_chunk_matrix strategy_name () =
  (* jobs and chunk are both wall-clock-only knobs: the outcome — series,
     coverage, reports — is a pure function of (seed, strategy, iterations,
     batch) for every combination, and for {e every} registered strategy
     (stateful learners included — their hooks run on the campaign's
     domain in candidate order). batch=8 keeps the campaign
     multi-generation so feedback boundaries are exercised. A fresh
     instance per campaign, as the {!Feedback.create} contract requires. *)
  let batch = 8 in
  let run jobs chunk =
    let strategy = Option.get (Feedback.create strategy_name) in
    Fuzzer.run
      ~options:{ Fuzzer.Options.default with seed = 17L; jobs; batch; chunk }
      Sonar_uarch.Config.nutshell strategy ~iterations:18
  in
  let reference = run 1 None in
  List.iter
    (fun jobs ->
      List.iter
        (fun chunk ->
          checkb
            (Printf.sprintf "bit-identical outcome (%s, jobs=%d chunk=%s)"
               strategy_name jobs
               (match chunk with Some c -> string_of_int c | None -> "auto"))
            true
            (run jobs chunk = reference))
        [ None; Some 1; Some 4; Some batch ])
    [ 1; 2; 3 ]

let test_fuzzer_strategy_traces_identical () =
  (* The default-class JSONL trace (everything but the wall-clock events)
     is part of the determinism contract: byte-identical across worker
     counts, for every strategy, with the campaign_start header naming the
     strategy as its first line. *)
  let trace strategy_name jobs =
    let buf = Buffer.create 4096 in
    let sink =
      Telemetry.jsonl (fun line ->
          Buffer.add_string buf line;
          Buffer.add_char buf '\n')
    in
    let strategy = Option.get (Feedback.create strategy_name) in
    ignore
      (Fuzzer.run
         ~options:
           {
             Fuzzer.Options.default with
             seed = 17L;
             jobs;
             batch = 6;
             sinks = [ sink ];
           }
         Sonar_uarch.Config.nutshell strategy ~iterations:12);
    Buffer.contents buf
  in
  List.iter
    (fun name ->
      let t1 = trace name 1 and t3 = trace name 3 in
      checkb (name ^ " trace byte-identical jobs=1 vs jobs=3") true
        (String.equal t1 t3);
      let header = List.hd (String.split_on_char '\n' t1) in
      let contains s sub =
        let n = String.length sub in
        let rec go i = i + n <= String.length s
          && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      checkb (name ^ " first trace line is campaign_start") true
        (contains header "\"event\":\"campaign_start\"");
      checkb (name ^ " header names the strategy") true
        (contains header ("\"strategy\":\"" ^ name ^ "\"")))
    Feedback.names

let test_feedback_registry () =
  checki "five shipped strategies" 5 (List.length Feedback.names);
  List.iter
    (fun name ->
      checkb (name ^ " resolvable") true (Feedback.create name <> None);
      checkb
        (name ^ " described")
        true
        (match List.assoc_opt name Feedback.all with
        | Some d -> String.length d > 0
        | None -> false))
    Feedback.names;
  checkb "unknown name rejected" true (Feedback.create "bogus" = None);
  checkb "sonar preset keeps the historical mutate ratio" true
    (Fuzzer.full_strategy.Feedback.mutate_ratio = 0.8);
  (* Stateful strategies must come out fresh per call: two instances may
     not share learner state (physical inequality of the closures is the
     observable proxy). *)
  checkb "bandit instances independent" true
    (Option.get (Feedback.create "bandit") !=
       Option.get (Feedback.create "bandit"))

(* Executed-candidate fixture shared by the order-insensitivity property:
   one real dual-run with non-empty intervals and triggered points. *)
let consider_fixture =
  lazy
    (let rng = Rng.create 99L in
     let tc = Testcase.random rng ~id:1 ~dual:false in
     let pair = Executor.execute Sonar_uarch.Config.nutshell tc in
     (tc, pair))

let prop_consider_order_insensitive =
  QCheck2.Test.make
    ~name:"consider is insensitive to observation-list ordering" ~count:30
    QCheck2.Gen.(int_bound 1_000_000)
    (fun salt ->
      let tc, pair = Lazy.force consider_fixture in
      let intervals = Executor.min_intervals pair in
      let triggered = Executor.triggered pair in
      let report = Detector.detect pair in
      List.for_all
        (fun name ->
          (* Fresh strategy + campaign per verdict so stateful learners
             start identical; only the list order differs. *)
          let verdict intervals triggered =
            let strategy = Option.get (Feedback.create name) in
            let campaign =
              {
                Feedback.corpus = Corpus.create ();
                mstate = Mutation.create_state ();
                emit = None;
                mutate_ratio = strategy.Feedback.mutate_ratio;
              }
            in
            let obs =
              {
                Feedback.iteration = 0;
                testcase = tc;
                pair;
                intervals;
                triggered;
                coverage_added = 0.;
                coverage_total = 0.;
                component_delta = [];
                report;
                target = None;
                op = Some Feedback.Composite;
              }
            in
            strategy.Feedback.reward campaign obs;
            strategy.Feedback.consider campaign tc obs
          in
          let shuffle l = Rng.shuffle (Rng.create (Int64.of_int salt)) l in
          verdict intervals triggered
          = verdict (shuffle intervals) (shuffle triggered))
        Feedback.names)

let test_auto_chunk () =
  (* ~2 slices per worker, never below 1, and the slices always cover the
     whole batch. *)
  checki "64 candidates on 2 workers" 16 (Executor.auto_chunk ~jobs:2 64);
  checki "ceiling division" 6 (Executor.auto_chunk ~jobs:3 31);
  checki "tiny batch still one testcase per task" 1
    (Executor.auto_chunk ~jobs:8 3);
  List.iter
    (fun (jobs, n) ->
      let c = Executor.auto_chunk ~jobs n in
      checkb (Printf.sprintf "chunk >= 1 (jobs=%d n=%d)" jobs n) true (c >= 1);
      let slices = (n + c - 1) / c in
      checkb
        (Printf.sprintf "at most 2*jobs slices (jobs=%d n=%d)" jobs n)
        true
        (n = 0 || slices <= 2 * jobs))
    [ (1, 1); (1, 64); (2, 64); (3, 17); (4, 64); (16, 5); (2, 0) ]

let test_executor_chunk_validation () =
  let cfg = Sonar_uarch.Config.nutshell in
  checkb "chunk=0 rejected" true
    (match Executor.execute_batch ~chunk:0 cfg [] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_worker_local_storage () =
  let key = Sonar.Domain_pool.create_key (fun () -> ref 0) in
  Sonar.Domain_pool.with_pool ~jobs:3 (fun pool ->
      (* run_on_each visits every worker exactly once per call, and each
         worker keeps its own slot across calls. *)
      let bump () = incr (Sonar.Domain_pool.get key) in
      Sonar.Domain_pool.run_on_each pool bump;
      Sonar.Domain_pool.run_on_each pool bump;
      let m = Mutex.create () in
      let counts = ref [] in
      Sonar.Domain_pool.run_on_each pool (fun () ->
          let v = !(Sonar.Domain_pool.get key) in
          Mutex.lock m;
          counts := v :: !counts;
          Mutex.unlock m);
      Alcotest.(check (list int))
        "every worker bumped its own slot twice" [ 2; 2; 2 ]
        (List.sort compare !counts));
  (* The calling domain has a slot of its own, untouched by the workers. *)
  checki "caller slot independent" 0 !(Sonar.Domain_pool.get key)

let minor_words_during f =
  let before = Gc.minor_words () in
  f ();
  Gc.minor_words () -. before

let test_executor_scratch_allocates_less () =
  (* Every executor path now runs on a reused worker-local Machine.Ctx —
     including one-off [Executor.execute] — so the baseline here is
     explicitly-fresh machines built through [Machine.run] without a
     context. The reused path must allocate a small fraction of that:
     cache line arrays, contention-point tables and the per-core pipeline
     models all come from the context instead of the minor heap, and the
     golden model no longer clones its full state (registers plus a memory
     hashtable) per instruction — it snapshots only at the rare access
     faults that actually fork a transient continuation. Measured at
     ~30k minor words per run (was ~90k before the lazy clone, ~190k
     before context reuse); the ratio and the absolute per-run ceiling
     below lock both wins in. *)
  let rng = Rng.create 31L in
  let tcs = List.init 4 (fun i -> Testcase.random rng ~id:(i + 1) ~dual:false) in
  let cfg = Sonar_uarch.Config.boom in
  ignore (Executor.execute_batch cfg tcs);
  let fresh =
    minor_words_during (fun () ->
        List.iter
          (fun tc ->
            ignore (Sonar_uarch.Machine.run cfg (Testcase.materialize tc ~secret:0));
            ignore (Sonar_uarch.Machine.run cfg (Testcase.materialize tc ~secret:1)))
          tcs)
  in
  let reused = minor_words_during (fun () -> ignore (Executor.execute_batch cfg tcs)) in
  checkb
    (Printf.sprintf "scratch path allocates less (fresh %.0f, reused %.0f)"
       fresh reused)
    true
    (reused < 0.35 *. fresh);
  (* 8 machine runs (4 testcases x 2 secrets): the execute phase must stay
     under 45k minor words per run. *)
  checkb
    (Printf.sprintf "per-run allocation ceiling (%.0f minor words / run)"
       (reused /. 8.))
    true
    (reused /. 8. < 45_000.)

let test_executor_batch_matches_sequential () =
  let rng = Rng.create 21L in
  let tcs = List.init 6 (fun i -> Testcase.random rng ~id:(i + 1) ~dual:false) in
  let cfg = Sonar_uarch.Config.nutshell in
  let sequential = List.map (Executor.execute cfg) tcs in
  let batched =
    Sonar.Domain_pool.with_pool ~jobs:3 (fun pool ->
        Executor.execute_batch ~pool cfg tcs)
  in
  checki "same length" (List.length sequential) (List.length batched);
  List.iteri
    (fun i (a, b) ->
      checkb (Printf.sprintf "pair %d identical" i) true (a = b))
    (List.combine sequential batched)

let test_domain_pool_basics () =
  Sonar.Domain_pool.with_pool ~jobs:2 (fun pool ->
      let squares =
        Sonar.Domain_pool.map_list pool (fun x -> x * x) [ 1; 2; 3; 4; 5 ]
      in
      Alcotest.(check (list int)) "ordered results" [ 1; 4; 9; 16; 25 ] squares;
      (* Nested submission: a pooled task that submits and awaits subtasks
         must not deadlock (await helps run queued work). *)
      let nested =
        Sonar.Domain_pool.await
          (Sonar.Domain_pool.submit pool (fun () ->
               List.fold_left ( + ) 0
                 (Sonar.Domain_pool.map_list pool (fun x -> 2 * x) [ 1; 2; 3 ])))
      in
      checki "nested fork-join" 12 nested;
      (* Exceptions propagate through await. *)
      checkb "exception propagates" true
        (match
           Sonar.Domain_pool.await
             (Sonar.Domain_pool.submit pool (fun () -> failwith "boom"))
         with
        | exception Failure m -> m = "boom"
        | _ -> false))

let test_fuzzer_series_monotonic () =
  let o =
    Fuzzer.run
      ~options:{ Fuzzer.Options.default with seed = 18L }
      Sonar_uarch.Config.boom Fuzzer.full_strategy ~iterations:25
  in
  checki "one point per iteration" 25 (List.length o.Fuzzer.series);
  let rec mono = function
    | (a : Fuzzer.series_point) :: (b : Fuzzer.series_point) :: rest ->
        a.coverage <= b.coverage && a.timing_diffs <= b.timing_diffs && mono (b :: rest)
    | _ -> true
  in
  checkb "cumulative series" true (mono o.series)

let test_fuzzer_finds_diffs () =
  let o =
    Fuzzer.run
      ~options:{ Fuzzer.Options.default with seed = 19L }
      Sonar_uarch.Config.boom Fuzzer.full_strategy ~iterations:40
  in
  checkb "finds timing differences" true (o.Fuzzer.final_timing_diffs > 0);
  checkb "keeps reports" true (o.reports <> [])

let test_baseline_specdoctor_runs () =
  let series =
    Baseline.specdoctor ~seed:20L Sonar_uarch.Config.boom ~iterations:10
  in
  checki "series length" 10 (List.length series);
  checkb "covers something" true
    ((List.nth series 9).Fuzzer.coverage > 0.)

(* --- Channels (Table 3) --- *)

let channel_case (c : Channels.t) =
  Alcotest.test_case (c.id ^ " " ^ c.resource) `Slow (fun () ->
      let m = Channels.measure c in
      checkb
        (Printf.sprintf "%s timing difference in band (got %d, paper %d-%d)"
           c.id m.Channels.time_difference (fst c.paper_band) (snd c.paper_band))
        true m.in_band;
      checkb (c.id ^ " contention point implicated") true m.points_implicated)

let test_channels_catalogue () =
  checki "fourteen channels" 14 (List.length Channels.all);
  checki "twelve on boom" 12 (List.length (Channels.for_dut "boom"));
  checki "two on nutshell" 2 (List.length (Channels.for_dut "nutshell"));
  checki "eleven new" 11
    (List.length (List.filter (fun c -> c.Channels.is_new) Channels.all));
  checkb "find works" true (Channels.find "S5" <> None);
  checkb "unknown id" true (Channels.find "S99" = None)

(* --- Attack (§8.5) --- *)

let test_attack_gadget_mapping () =
  checkb "S1 has a PoC" true (Attack.gadget_for "S1" <> None);
  checkb "S8 was known: no PoC" true (Attack.gadget_for "S8" = None);
  checkb "S9 was known: no PoC" true (Attack.gadget_for "S9" = None);
  checkb "S10 was known: no PoC" true (Attack.gadget_for "S10" = None)

let test_attack_boom_high_accuracy () =
  let r =
    Attack.run_poc ~trials:4 ~key_bits:24 Sonar_uarch.Config.boom
      ~channel_id:"S1" Attack.Channel_occupancy
  in
  checkb "boom channel PoC accurate" true (r.Attack.bit_accuracy > 0.9);
  checkb "transient window opened" true (r.avg_transient_window > 1.)

let test_attack_cache_probe_accuracy () =
  let r =
    Attack.run_poc ~trials:4 ~key_bits:24 Sonar_uarch.Config.boom
      ~channel_id:"S11" Attack.Cache_probe
  in
  checkb "cache-probe PoC accurate" true (r.Attack.bit_accuracy > 0.9)

let test_attack_timer_mitigation () =
  (* §8.6: coarsening the clock below the channel margin kills the PoC. *)
  let fine =
    Attack.run_poc ~trials:2 ~key_bits:16 ~timer_granularity:1
      Sonar_uarch.Config.boom ~channel_id:"S11" Attack.Cache_probe
  in
  let coarse =
    Attack.run_poc ~trials:2 ~key_bits:16 ~timer_granularity:512
      Sonar_uarch.Config.boom ~channel_id:"S11" Attack.Cache_probe
  in
  checkb "fine-grained clock leaks" true (fine.Attack.bit_accuracy > 0.9);
  checkb "coarse clock mitigates" true (coarse.Attack.bit_accuracy < 0.8)

let test_attack_nutshell_fails () =
  let r =
    Attack.run_poc ~trials:3 ~key_bits:16 Sonar_uarch.Config.nutshell
      ~channel_id:"S13" Attack.Port_pressure
  in
  checkb "nutshell PoC near chance" true (r.Attack.bit_accuracy < 0.75);
  checkf "no transient window" 0. r.avg_transient_window;
  checkb "key never recovered" true (r.key_success_rate < 0.02)

let () =
  Alcotest.run "sonar_core"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutes;
        ] );
      ( "testcase",
        [
          Alcotest.test_case "materialize" `Quick test_testcase_materialize;
          Alcotest.test_case "dual core" `Quick test_testcase_dual;
          Alcotest.test_case "runs cleanly" `Quick test_testcase_runs_cleanly;
          Alcotest.test_case "neutral flavor" `Quick test_neutral_flavor_no_diff;
          Alcotest.test_case "latency flavor leaks" `Quick test_latency_flavor_differs;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "retention" `Quick test_corpus_retention;
          Alcotest.test_case "selection bias" `Quick test_corpus_selection_prefers_small;
          Alcotest.test_case "zero ignored" `Quick test_corpus_zero_not_selected;
          Alcotest.test_case "eviction keeps newest" `Quick test_corpus_eviction_keeps_newest;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "domain pool basics" `Quick test_domain_pool_basics;
          Alcotest.test_case "worker-local storage" `Quick
            test_worker_local_storage;
          Alcotest.test_case "batch matches sequential" `Quick
            test_executor_batch_matches_sequential;
          Alcotest.test_case "auto chunk sizing" `Quick test_auto_chunk;
          Alcotest.test_case "chunk validation" `Quick
            test_executor_chunk_validation;
          Alcotest.test_case "scratch context allocates less" `Quick
            test_executor_scratch_allocates_less;
          Alcotest.test_case "jobs bit-identical" `Quick test_fuzzer_jobs_bit_identical;
        ]
        @ List.map
            (fun name ->
              Alcotest.test_case
                ("jobs x chunk bit-identical: " ^ name)
                `Quick
                (test_fuzzer_jobs_chunk_matrix name))
            Feedback.names
        @ [
            Alcotest.test_case "traces byte-identical across jobs" `Quick
              test_fuzzer_strategy_traces_identical;
          ] );
      ( "feedback",
        [
          Alcotest.test_case "registry" `Quick test_feedback_registry;
          QCheck_alcotest.to_alcotest prop_consider_order_insensitive;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "directed grow/shrink" `Quick test_mutation_directed_grow_shrink;
          Alcotest.test_case "feedback flips" `Quick test_mutation_feedback_flips;
          Alcotest.test_case "flavor preserved" `Quick test_mutation_preserves_flavor;
          Alcotest.test_case "similarity bounds" `Quick test_mutation_similarity_in_buffer;
        ] );
      ( "ccd",
        [
          Alcotest.test_case "in-order propagation filtered" `Quick
            test_ccd_inorder_propagation_filtered;
          Alcotest.test_case "divergent traces" `Quick test_ccd_divergent_traces;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "deduplication" `Quick test_coverage_accumulates_once;
          Alcotest.test_case "per-component split" `Quick test_coverage_components;
        ] );
      ( "fuzzer",
        [
          Alcotest.test_case "deterministic" `Quick test_fuzzer_deterministic;
          Alcotest.test_case "series monotonic" `Quick test_fuzzer_series_monotonic;
          Alcotest.test_case "finds differences" `Quick test_fuzzer_finds_diffs;
          Alcotest.test_case "specdoctor baseline" `Quick test_baseline_specdoctor_runs;
        ] );
      ( "channels",
        Alcotest.test_case "catalogue" `Quick test_channels_catalogue
        :: List.map channel_case Channels.all );
      ( "attack",
        [
          Alcotest.test_case "gadget mapping" `Quick test_attack_gadget_mapping;
          Alcotest.test_case "boom channel PoC" `Slow test_attack_boom_high_accuracy;
          Alcotest.test_case "cache probe PoC" `Slow test_attack_cache_probe_accuracy;
          Alcotest.test_case "nutshell PoC fails" `Slow test_attack_nutshell_fails;
          Alcotest.test_case "timer mitigation" `Slow test_attack_timer_mitigation;
        ] );
    ]
