(* Tests for the campaign telemetry subsystem: the Json document model,
   event JSON round-tripping, sink aggregation against a hand-run campaign,
   trace determinism across worker counts, and the Options-record API
   (equivalence with the deprecated legacy signature, null-sink
   non-interference). *)

open Sonar

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let checkf = Alcotest.(check (float 0.0001))

(* --- Json --- *)

let test_json_print () =
  checks "compact object" {|{"a":1,"b":[true,null,"x"]}|}
    (Json.to_string
       (Json.Obj
          [ ("a", Json.Int 1); ("b", Json.List [ Json.Bool true; Json.Null; Json.String "x" ]) ]));
  checks "integral float keeps a decimal" "2.0" (Json.to_string (Json.Float 2.));
  checks "negative int" "-17" (Json.to_string (Json.Int (-17)));
  checks "escapes" {|"a\"b\\c\nd"|} (Json.to_string (Json.String "a\"b\\c\nd"));
  checks "non-finite floats are null" "null" (Json.to_string (Json.Float Float.nan))

let test_json_parse () =
  checkb "object round-trip" true
    (Json.of_string {| { "x" : [1, 2.5, "s", false] , "y": null } |}
    = Json.Obj
        [
          ( "x",
            Json.List [ Json.Int 1; Json.Float 2.5; Json.String "s"; Json.Bool false ]
          );
          ("y", Json.Null);
        ]);
  checkb "exponent parses as float" true
    (match Json.of_string "1e3" with Json.Float f -> f = 1000. | _ -> false);
  checkb "string escapes" true (Json.of_string {|"aA\n"|} = Json.String "aA\n");
  checkb "trailing garbage rejected" true
    (match Json.of_string "1 x" with exception Json.Parse_error _ -> true | _ -> false);
  checkb "unterminated string rejected" true
    (match Json.of_string {|"abc|} with exception Json.Parse_error _ -> true | _ -> false)

let test_json_print_parse_identity () =
  let docs =
    [
      Json.Null;
      Json.Obj [];
      Json.List [];
      Json.Obj
        [
          ("n", Json.Int 42);
          ("f", Json.Float 3.25);
          ("deep", Json.Obj [ ("l", Json.List [ Json.List [ Json.Int 1 ] ]) ]);
          ("s", Json.String "tab\there");
        ];
    ]
  in
  List.iter
    (fun doc ->
      checkb "parse (print doc) = doc" true (Json.of_string (Json.to_string doc) = doc))
    docs

let test_json_member () =
  let doc = Json.of_string {|{"a":{"b":7}}|} in
  checki "nested member" 7 Json.(to_int (member "b" (member "a" doc)));
  checkb "missing member is Null" true (Json.member "zzz" doc = Json.Null);
  checkf "to_float accepts ints" 7. Json.(to_float (member "b" (member "a" doc)))

let test_json_unicode_escapes () =
  checkb "ASCII \\u escape" true (Json.of_string {|"A"|} = Json.String "A");
  checkb "2-byte UTF-8 code point" true
    (Json.of_string {|"é"|} = Json.String "\xc3\xa9");
  checkb "3-byte UTF-8 code point" true
    (Json.of_string {|"▁"|} = Json.String "\xe2\x96\x81");
  checkb "truncated \\u escape rejected" true
    (match Json.of_string {|"\u00|} with
    | exception Json.Parse_error _ -> true
    | _ -> false);
  checkb "non-hex \\u escape rejected" true
    (match Json.of_string {|"\uZZZZ"|} with
    | exception Json.Parse_error _ -> true
    | _ -> false);
  checkb "unknown escape rejected" true
    (match Json.of_string {|"\q"|} with
    | exception Json.Parse_error _ -> true
    | _ -> false)

let test_json_control_chars () =
  (* Control characters must escape on output and survive a round-trip. *)
  let s = "\x00\x01\x1f bell\x07" in
  let printed = Json.to_string (Json.String s) in
  checks "control chars printed as escapes"
    "\"\\u0000\\u0001\\u001f bell\\u0007\"" printed;
  checkb "and parse back to the same bytes" true
    (Json.of_string printed = Json.String s)

let test_json_deep_nesting () =
  let depth = 500 in
  let src =
    String.concat "" (List.init depth (fun _ -> "["))
    ^ "7"
    ^ String.concat "" (List.init depth (fun _ -> "]"))
  in
  let doc = Json.of_string src in
  let rec measure acc = function
    | Json.List [ inner ] -> measure (acc + 1) inner
    | Json.Int 7 -> acc
    | _ -> Alcotest.fail "unexpected shape"
  in
  checki "nesting depth preserved" depth (measure 0 doc);
  checks "deep document re-prints to its source" src (Json.to_string doc)

let test_json_error_positions () =
  (* Parse errors must carry a byte offset so a bad trace line is
     diagnosable. *)
  let offset_of src =
    (* messages read "... at offset N": recover N *)
    match Json.of_string src with
    | exception Json.Parse_error msg -> (
        match String.rindex_opt msg ' ' with
        | Some i ->
            int_of_string_opt (String.sub msg (i + 1) (String.length msg - i - 1))
        | None -> None)
    | _ -> None
  in
  checkb "trailing garbage offset" true (offset_of "1 x" = Some 2);
  checkb "truncated object reports end of input" true
    (offset_of {|{"a":|} = Some 5);
  checkb "truncated list reports end of input" true (offset_of "[1," = Some 3);
  checkb "empty input reports offset 0" true (offset_of "" = Some 0)

(* --- Json qcheck properties --- *)

(* Finite floats that survive [Float f -> print -> parse] exactly (the
   printer guarantees round-trip for every finite float; quotients of small
   ints keep counter-example shrinking readable). *)
let gen_safe_float =
  QCheck2.Gen.(
    map
      (fun (a, b) -> float_of_int a /. float_of_int (max 1 (abs b)))
      (pair (int_range (-10000) 10000) (int_range 1 1000)))

let gen_json =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        let scalar =
          oneof
            [
              return Json.Null;
              map (fun b -> Json.Bool b) bool;
              map (fun i -> Json.Int i) int;
              map (fun f -> Json.Float f) gen_safe_float;
              map (fun s -> Json.String s) (string_size (int_bound 12));
            ]
        in
        if n <= 0 then scalar
        else
          frequency
            [
              (2, scalar);
              ( 1,
                map
                  (fun l -> Json.List l)
                  (list_size (int_bound 4) (self (n / 2))) );
              ( 1,
                map
                  (fun kvs -> Json.Obj kvs)
                  (list_size (int_bound 4)
                     (pair (string_size (int_bound 8)) (self (n / 2)))) );
            ]))

let qcheck_json_roundtrip =
  QCheck2.Test.make ~name:"parse (print doc) = doc" ~count:300 gen_json
    (fun doc -> Json.of_string (Json.to_string doc) = doc)

let qcheck_json_string_bytes =
  (* Arbitrary bytes — including control characters and invalid UTF-8 —
     survive printing and reparsing unchanged. *)
  QCheck2.Test.make ~name:"any byte string round-trips" ~count:300
    QCheck2.Gen.(string_size (int_bound 40))
    (fun s -> Json.of_string (Json.to_string (Json.String s)) = Json.String s)

let qcheck_json_trailing_garbage =
  QCheck2.Test.make ~name:"trailing garbage always rejected" ~count:200
    gen_json
    (fun doc ->
      match Json.of_string (Json.to_string doc ^ " true") with
      | exception Json.Parse_error _ -> true
      | _ -> false)

let qcheck_json_truncation =
  (* Trace lines are objects, and an object is only closed by its final
     '}' — so every strict prefix of one must raise Parse_error (truncated
     input is never silently accepted). *)
  QCheck2.Test.make ~name:"truncated objects always rejected" ~count:100
    gen_json
    (fun doc ->
      let s = Json.to_string (Json.Obj [ ("event", doc) ]) in
      List.for_all
        (fun len ->
          match Json.of_string (String.sub s 0 len) with
          | exception Json.Parse_error _ -> true
          | _ -> false)
        (List.init (String.length s) Fun.id))

(* --- event JSON round-trip --- *)

let sample_events =
  [
    Telemetry.Campaign_start
      {
        strategy = "timing-coverage";
        seed = 23L;
        iterations = 400;
        batch = 64;
        dual = true;
      };
    Telemetry.Generation_start { generation = 1; first_iteration = 1; size = 8 };
    Telemetry.Testcase_executed { testcase_id = 3; cycles0 = 220; cycles1 = 224 };
    Telemetry.Contention_triggered { iteration = 3; added = 12.5; coverage = 40.25 };
    Telemetry.Ccd_finding { iteration = 4; findings = 2; total_delta = -3 };
    Telemetry.Corpus_retained { testcase_id = 4; corpus_size = 2 };
    Telemetry.Corpus_evicted { testcase_id = 1; corpus_size = 256 };
    Telemetry.Mutation_flip { iteration = 5; direction = "shrink" };
    Telemetry.Generation_end
      {
        generation = 1;
        iterations_done = 8;
        coverage = 40.25;
        timing_diffs = 2;
        corpus_size = 2;
      };
    Telemetry.Phase_timing
      { generation = 1; phase = Telemetry.Execute; seconds = 0.125 };
    Telemetry.Interval_histogram
      {
        generation = 2;
        point = "c0.exec.wb_port";
        src_pair = 1;
        total = 12;
        min_interval = 0;
        max_interval = 33;
        buckets = [ (0, 4); (3, 6); (6, 2) ];
      };
    Telemetry.Coverage_heatmap
      { generation = 2; components = [ ("exec", 12.5); ("lsu", 0.) ] };
    Telemetry.Span_begin { span_id = 1; parent = None; name = "campaign" };
    Telemetry.Span_begin { span_id = 2; parent = Some 1; name = "generation" };
    Telemetry.Span_end { span_id = 2; name = "generation"; seconds = 0.25 };
  ]

let test_event_json_roundtrip () =
  List.iter
    (fun ev ->
      match Telemetry.event_of_json (Telemetry.json_of_event ev) with
      | Some ev' -> checkb "decode (encode ev) = ev" true (ev = ev')
      | None -> Alcotest.fail "event failed to decode")
    sample_events;
  checkb "unknown event name rejected" true
    (Telemetry.event_of_json (Json.of_string {|{"event":"martian"}|}) = None);
  checkb "malformed payload rejected" true
    (Telemetry.event_of_json (Json.of_string {|{"event":"ccd_finding"}|}) = None)

(* --- interval histograms --- *)

let test_histogram_bucketing () =
  let open Telemetry.Histogram in
  checki "0 -> bucket 0" 0 (bucket_of 0);
  checki "1 -> bucket 1" 1 (bucket_of 1);
  checki "2 -> bucket 2" 2 (bucket_of 2);
  checki "3 -> bucket 2" 2 (bucket_of 3);
  checki "4 -> bucket 3" 3 (bucket_of 4);
  checki "7 -> bucket 3" 3 (bucket_of 7);
  checki "8 -> bucket 4" 4 (bucket_of 8);
  checkb "bucket 0 range" true (bucket_range 0 = (0, 0));
  checkb "bucket 3 range" true (bucket_range 3 = (4, 7));
  let h = create () in
  checkb "empty extrema" true (min_value h = None && max_value h = None);
  checks "empty sparkline" "" (sparkline h);
  List.iter (add h) [ 0; 0; 1; 3; 3; 3; 1000; -5 ];
  checki "total counts every add" 8 (total h);
  checkb "negative clamps to 0" true (min_value h = Some 0);
  checkb "max tracked" true (max_value h = Some 1000);
  checkb "counts ascending, non-empty buckets only" true
    (counts h = [ (0, 3); (1, 1); (2, 3); (10, 1) ])

let test_histogram_json_and_merge () =
  let open Telemetry.Histogram in
  let h = create () in
  List.iter (add h) [ 2; 2; 9; 70 ];
  (match of_json (to_json h) with
  | Some h' ->
      checkb "json round-trip preserves counts" true (counts h = counts h');
      checkb "json round-trip preserves extrema" true
        (min_value h = min_value h' && max_value h = max_value h')
  | None -> Alcotest.fail "histogram json did not decode");
  checkb "garbage json rejected" true (of_json (Json.Int 3) = None);
  let g = create () in
  List.iter (add g) [ 0; 9 ];
  let m = merge h g in
  checki "merge sums totals" (total h + total g) (total m);
  checkb "merge min" true (min_value m = Some 0);
  checkb "merge max" true (max_value m = Some 70);
  checkb "arguments not mutated" true (total h = 4 && total g = 2)

let test_histogram_registry_dirty () =
  let open Telemetry.Histogram in
  let r = registry () in
  observe r ~point:"b" ~src_pair:0 4;
  observe r ~point:"a" ~src_pair:1 7;
  observe r ~point:"a" ~src_pair:1 2;
  let drained = drain_dirty r in
  Alcotest.(check (list (pair string int)))
    "first drain: both keys, sorted"
    [ ("a", 1); ("b", 0) ]
    (List.map fst drained);
  checki "observations accumulate per key" 2
    (total (List.assoc ("a", 1) drained));
  checkb "second drain is empty" true (drain_dirty r = []);
  observe r ~point:"b" ~src_pair:0 1;
  Alcotest.(check (list (pair string int)))
    "only the touched key is dirty again"
    [ ("b", 0) ]
    (List.map fst (drain_dirty r));
  checki "registry keeps all histograms" 2 (List.length (to_list r))

(* --- span recorder --- *)

let test_span_recorder () =
  let events = ref [] in
  let t = ref 0. in
  let clock () =
    let v = !t in
    t := v +. 1.;
    v
  in
  let r = Telemetry.Span.recorder ~clock (fun e -> events := e :: !events) in
  let end_a = Telemetry.Span.enter r "a" in
  checki "wrap returns the thunk's value" 42
    (Telemetry.Span.wrap r "b" (fun () -> 42));
  end_a ();
  end_a ();
  (* ending twice must not re-emit *)
  let got = List.rev !events in
  checkb "begin/end sequence with nesting and durations" true
    (got
    = [
        Telemetry.Span_begin { span_id = 1; parent = None; name = "a" };
        Telemetry.Span_begin { span_id = 2; parent = Some 1; name = "b" };
        Telemetry.Span_end { span_id = 2; name = "b"; seconds = 1. };
        Telemetry.Span_end { span_id = 1; name = "a"; seconds = 3. };
      ]);
  (* wrap must end the span when the thunk raises *)
  (match Telemetry.Span.wrap r "c" (fun () -> raise Exit) with
  | exception Exit -> ()
  | _ -> Alcotest.fail "Exit did not propagate");
  checkb "raised span still ended" true
    (match !events with
    | Telemetry.Span_end { name = "c"; _ } :: _ -> true
    | _ -> false)

let test_span_tree_merging () =
  (* Two generations under one campaign, each with the same child names:
     same-named siblings merge with summed seconds and call counts. *)
  let spans =
    [
      (1, None, "campaign", 10.);
      (2, Some 1, "generation", 4.);
      (3, Some 2, "execute", 3.);
      (4, Some 1, "generation", 6.);
      (5, Some 4, "execute", 2.);
      (* orphan: parent id never began (truncated trace) -> becomes a root *)
      (9, Some 99, "stray", 1.);
    ]
  in
  match Telemetry.Observatory.build_span_tree spans with
  | [ root; stray ] ->
      checks "root name" "campaign" root.Telemetry.Observatory.span_name;
      checki "root calls" 1 root.calls;
      (match root.children with
      | [ gen ] ->
          checks "generations merged" "generation" gen.Telemetry.Observatory.span_name;
          checki "two generation calls" 2 gen.calls;
          checkf "seconds summed" 10. gen.seconds;
          (match gen.children with
          | [ ex ] ->
              checki "execute calls merged" 2 ex.Telemetry.Observatory.calls;
              checkf "execute seconds" 5. ex.seconds
          | kids -> Alcotest.failf "expected one merged child, got %d" (List.length kids))
      | kids -> Alcotest.failf "expected one child, got %d" (List.length kids));
      checks "orphan becomes a root" "stray" stray.Telemetry.Observatory.span_name
  | nodes -> Alcotest.failf "expected two roots, got %d" (List.length nodes)

(* --- campaign helpers --- *)

let nutshell = Sonar_uarch.Config.nutshell

let campaign ?(sinks = []) ?(jobs = 1) ?(batch = Fuzzer.Options.default.batch)
    ?chunk ~iterations () =
  Fuzzer.run
    ~options:{ Fuzzer.Options.default with seed = 23L; jobs; batch; chunk; sinks }
    nutshell Fuzzer.full_strategy ~iterations

(* --- aggregator vs a hand-run campaign --- *)

let test_aggregator_matches_outcome () =
  let sink, snap = Telemetry.aggregator () in
  let o = campaign ~sinks:[ sink ] ~batch:8 ~iterations:30 () in
  let m = snap () in
  checki "one executed event per iteration" 30 m.Telemetry.Metrics.testcases;
  checki "generations = ceil(30/8)" 4 m.generations;
  checkf "coverage tracks the outcome" o.Fuzzer.final_coverage m.coverage;
  checki "findings sum matches" o.final_timing_diffs m.ccd_findings;
  checki "finding testcases match" o.testcases_with_diffs m.finding_testcases;
  checki "contention testcases match" o.contentions_triggered_testcases
    m.contention_testcases;
  checki "corpus size matches the final series point"
    (List.nth o.series 29).Fuzzer.corpus_size m.corpus_size;
  checkb "retention happened" true (m.retained > 0);
  checkb "phase timings accumulated" true
    (m.generate_seconds >= 0. && m.execute_seconds > 0. && m.feedback_seconds > 0.);
  checkb "events/sec positive" true (m.events_per_second > 0.)

(* --- JSONL trace: parser round-trip and jobs-determinism --- *)

let trace_lines ?batch ?chunk ~jobs ~iterations () =
  let lines = ref [] in
  let sink = Telemetry.jsonl (fun s -> lines := s :: !lines) in
  ignore (campaign ~sinks:[ sink ] ?batch ?chunk ~jobs ~iterations ());
  List.rev !lines

let test_jsonl_roundtrip () =
  let lines = trace_lines ~jobs:1 ~iterations:16 () in
  checkb "trace not empty" true (lines <> []);
  List.iter
    (fun line ->
      match Telemetry.event_of_json (Json.of_string line) with
      | Some ev ->
          checks "re-encode reproduces the line byte-for-byte" line
            (Json.to_string (Telemetry.json_of_event ev))
      | None -> Alcotest.fail ("line did not decode to an event: " ^ line))
    lines;
  checkb "trace contains a generation_end" true
    (List.exists
       (fun l ->
         match Telemetry.event_of_json (Json.of_string l) with
         | Some (Telemetry.Generation_end _) -> true
         | _ -> false)
       lines)

let test_trace_jobs_deterministic () =
  (* The acceptance property: the JSONL trace is byte-identical for every
     (jobs, chunk) at fixed seed/batch — both knobs are wall-clock only
     (Phase_timing is excluded by default). batch=8 keeps the campaign
     multi-generation so generation events are exercised too. *)
  let batch = 8 in
  let reference =
    String.concat "\n" (trace_lines ~batch ~jobs:1 ~iterations:24 ())
  in
  checkb "trace not empty" true (reference <> "");
  List.iter
    (fun jobs ->
      List.iter
        (fun chunk ->
          let t =
            String.concat "\n"
              (trace_lines ~batch ?chunk ~jobs ~iterations:24 ())
          in
          checks
            (Printf.sprintf "byte-identical trace (jobs=%d chunk=%s)" jobs
               (match chunk with Some c -> string_of_int c | None -> "auto"))
            reference t)
        [ None; Some 1; Some 4; Some batch ])
    [ 1; 2; 3 ]

let test_jsonl_timings_opt_in () =
  let count ~timings =
    let phases = ref 0 and spans = ref 0 in
    let sink =
      Telemetry.jsonl ~timings (fun s ->
          match Telemetry.event_of_json (Json.of_string s) with
          | Some (Telemetry.Phase_timing _) -> incr phases
          | Some (Telemetry.Span_begin _ | Telemetry.Span_end _) -> incr spans
          | _ -> ())
    in
    ignore (campaign ~sinks:[ sink ] ~iterations:8 ());
    (!phases, !spans)
  in
  checkb "wall-clock class excluded by default" true (count ~timings:false = (0, 0));
  (* one 8-iteration generation: 3 phase timings; spans = campaign +
     generation + generate/execute/feedback, each a begin and an end *)
  checkb "phase timings and spans when opted in" true
    (count ~timings:true = (3, 10))

let test_jsonl_file_writes () =
  let path = Filename.temp_file "sonar_trace" ".jsonl" in
  let sink = Telemetry.jsonl_file path in
  ignore (campaign ~sinks:[ sink ] ~iterations:8 ());
  Telemetry.close sink;
  Telemetry.close sink;
  (* close is idempotent *)
  let ic = open_in path in
  let n = ref 0 in
  (try
     while true do
       let line = input_line ic in
       checkb "line parses" true (Json.of_string line <> Json.Null);
       incr n
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  checkb "several events on disk" true (!n > 8)

let test_partial_trace_on_raise () =
  (* Satellite property: a campaign that dies mid-run (here: a sink that
     raises, standing in for a crashing DUT) must still leave the attached
     trace file flushed, parseable line-by-line, and non-trivial. *)
  let path = Filename.temp_file "sonar_crash" ".jsonl" in
  let file_sink = Telemetry.jsonl_file path in
  let exception Boom in
  let n = ref 0 in
  let bomb =
    (* count the same event class the trace writer keeps, so the line-count
       assertion below is exact *)
    Telemetry.make (fun ev ->
        if not (Telemetry.is_timing_event ev) then begin
          incr n;
          if !n > 40 then raise Boom
        end)
  in
  (match campaign ~sinks:[ file_sink; bomb ] ~iterations:64 () with
  | exception Boom -> ()
  | _ -> Alcotest.fail "expected the campaign to propagate the failure");
  let ic = open_in path in
  let lines = ref 0 in
  (try
     while true do
       let line = input_line ic in
       (match Telemetry.event_of_json (Json.of_string line) with
       | Some _ -> ()
       | None -> Alcotest.fail ("partial trace line did not decode: " ^ line));
       incr lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  checkb "partial trace holds the events before the crash" true (!lines >= 40)

(* --- campaign_end footer --- *)

let decode line = Telemetry.event_of_json (Json.of_string line)

let test_campaign_end_footer () =
  let lines = trace_lines ~jobs:1 ~iterations:16 () in
  (match decode (List.nth lines (List.length lines - 1)) with
  | Some (Telemetry.Campaign_end e) ->
      checks "campaign completed" "completed" e.outcome;
      checki "footer carries the final iteration count" 16 e.iterations_done;
      checkb "wall-clock stripped from the default trace class" true
        (e.wall_seconds = None)
  | _ -> Alcotest.fail "trace must end with a campaign_end footer");
  (* with the timings opt-in the footer keeps its wall-clock *)
  let timed = ref [] in
  let sink = Telemetry.jsonl ~timings:true (fun s -> timed := s :: !timed) in
  ignore (campaign ~sinks:[ sink ] ~iterations:8 ());
  checkb "wall-clock present under --timings" true
    (List.exists
       (fun l ->
         match decode l with
         | Some (Telemetry.Campaign_end { wall_seconds = Some w; _ }) -> w >= 0.
         | _ -> false)
       !timed)

let test_campaign_end_on_crash () =
  (* the crash path still stamps a footer so a partial trace is
     distinguishable from a completed one *)
  let lines = ref [] in
  let trace = Telemetry.jsonl (fun s -> lines := s :: !lines) in
  let exception Boom in
  let n = ref 0 in
  let bomb =
    Telemetry.make (fun ev ->
        if not (Telemetry.is_timing_event ev) then begin
          incr n;
          if !n > 40 then raise Boom
        end)
  in
  (* batch 8: the bomb trips during the second generation, after the
     iteration counter has advanced past the first *)
  (match campaign ~sinks:[ trace; bomb ] ~batch:8 ~iterations:64 () with
  | exception Boom -> ()
  | _ -> Alcotest.fail "expected the campaign to propagate the failure");
  match decode (List.hd !lines) with
  | Some (Telemetry.Campaign_end e) ->
      checks "footer says crashed" "crashed" e.outcome;
      checkb "progress recorded up to the crash" true (e.iterations_done > 0)
  | _ -> Alcotest.fail "crashed trace must still end with a campaign_end"

(* --- rotating trace writer --- *)

let read_file_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !lines

let rotated_segments base =
  let rec go i acc =
    let p = Telemetry.segment_path base i in
    if Sys.file_exists p then go (i + 1) (p :: acc) else List.rev acc
  in
  go 0 []

let remove_segments base =
  List.iter Sys.remove (rotated_segments base)

let test_rotating_jsonl () =
  let base = Filename.temp_file "sonar_rot" ".jsonl" in
  Sys.remove base;
  let sink = Telemetry.rotating_jsonl ~max_generations:1 base in
  ignore (campaign ~sinks:[ sink ] ~batch:8 ~iterations:24 ());
  Telemetry.close sink;
  let segments = rotated_segments base in
  checkb "one segment per generation boundary" true (List.length segments >= 3);
  List.iteri
    (fun i seg ->
      let lines = read_file_lines seg in
      checkb "segment not empty" true (lines <> []);
      (* every segment is self-contained: it opens with a campaign_start
         (the real header for segment 0, a resync replay afterwards) *)
      (match decode (List.hd lines) with
      | Some (Telemetry.Campaign_start _) -> ()
      | _ -> Alcotest.failf "segment %d does not open with campaign_start" i);
      let resyncs =
        List.filter (fun l -> Telemetry.json_is_resync (Json.of_string l)) lines
      in
      if i = 0 then checki "no resync lines in segment 0" 0 (List.length resyncs)
      else checkb "later segments carry a resync head" true (resyncs <> []))
    segments;
  (* dropping the resync lines reassembles exactly the unrotated trace *)
  let reassembled =
    List.concat_map
      (fun seg ->
        List.filter
          (fun l -> not (Telemetry.json_is_resync (Json.of_string l)))
          (read_file_lines seg))
      segments
  in
  let unrotated = trace_lines ~batch:8 ~jobs:1 ~iterations:24 () in
  checks "reassembly is byte-identical"
    (String.concat "\n" unrotated)
    (String.concat "\n" reassembled);
  remove_segments base

let test_rotating_validation () =
  let bad f =
    match f () with exception Invalid_argument _ -> true | _ -> false
  in
  checkb "some threshold required" true
    (bad (fun () -> Telemetry.rotating_jsonl "/tmp/x.jsonl"));
  checkb "max_bytes >= 1" true
    (bad (fun () -> Telemetry.rotating_jsonl ~max_bytes:0 "/tmp/x.jsonl"));
  checkb "max_generations >= 1" true
    (bad (fun () -> Telemetry.rotating_jsonl ~max_generations:0 "/tmp/x.jsonl"))

(* --- synchronized sink --- *)

let test_synchronized_sink () =
  let count = ref 0 in
  let m = Mutex.create () in
  let sink = Telemetry.synchronized m (Telemetry.make (fun _ -> incr count)) in
  let ev =
    Telemetry.Testcase_executed { testcase_id = 1; cycles0 = 5; cycles1 = 5 }
  in
  let spin () =
    for _ = 1 to 10_000 do
      sink.Telemetry.emit ev
    done
  in
  let d1 = Domain.spawn spin and d2 = Domain.spawn spin in
  Domain.join d1;
  Domain.join d2;
  checki "no emission lost across domains" 20_000 !count

(* --- observatory merge --- *)

let test_observatory_merge () =
  let build emissions =
    let sink, snap = Telemetry.observatory () in
    List.iter sink.Telemetry.emit emissions;
    snap ()
  in
  let hist ~point ~total ~min_interval buckets =
    Telemetry.Interval_histogram
      { generation = 1; point; src_pair = 0; total; min_interval;
        max_interval = 9; buckets }
  in
  let a =
    build
      [
        hist ~point:"x" ~total:3 ~min_interval:2 [ (2, 3) ];
        Telemetry.Coverage_heatmap
          { generation = 1; components = [ ("exec", 1.) ] };
      ]
  in
  let b =
    build
      [
        hist ~point:"x" ~total:2 ~min_interval:1 [ (1, 2) ];
        hist ~point:"y" ~total:5 ~min_interval:4 [ (3, 5) ];
        Telemetry.Coverage_heatmap
          { generation = 1; components = [ ("exec", 2.); ("lsu", 1.) ] };
      ]
  in
  let m = Telemetry.Observatory.merge a b in
  (match m.Telemetry.Observatory.points with
  | [ p1; p2 ] ->
      checkb "same key summed, re-sorted by min interval" true
        (p1.Telemetry.Observatory.point = "x" && p2.point = "y");
      checki "histograms summed" 5 (Telemetry.Histogram.total p1.hist);
      checkb "merged min" true
        (Telemetry.Histogram.min_value p1.hist = Some 1)
  | pts -> Alcotest.failf "expected 2 merged points, got %d" (List.length pts));
  checkb "heatmap weights summed per component" true
    (m.heatmap = [ ("exec", 3.); ("lsu", 1.) ])

(* --- observatory sink --- *)

let test_observatory_snapshot () =
  let sink, snap = Telemetry.observatory () in
  let hist ~point ~src_pair ~total ~min_interval ~max_interval buckets =
    sink.Telemetry.emit
      (Telemetry.Interval_histogram
         { generation = 1; point; src_pair; total; min_interval; max_interval;
           buckets })
  in
  (* two keys; the second emission for ("x", 0) supersedes the first *)
  hist ~point:"x" ~src_pair:0 ~total:3 ~min_interval:2 ~max_interval:9 [ (2, 3) ];
  hist ~point:"y" ~src_pair:1 ~total:5 ~min_interval:0 ~max_interval:4 [ (0, 5) ];
  hist ~point:"x" ~src_pair:0 ~total:4 ~min_interval:1 ~max_interval:9 [ (1, 4) ];
  sink.Telemetry.emit
    (Telemetry.Coverage_heatmap { generation = 1; components = [ ("exec", 1.) ] });
  sink.Telemetry.emit
    (Telemetry.Coverage_heatmap
       { generation = 2; components = [ ("exec", 2.); ("lsu", 1.) ] });
  sink.Telemetry.emit
    (Telemetry.Span_begin { span_id = 1; parent = None; name = "campaign" });
  sink.Telemetry.emit
    (Telemetry.Span_end { span_id = 1; name = "campaign"; seconds = 2.5 });
  (* events the observatory ignores must be harmless *)
  sink.Telemetry.emit
    (Telemetry.Generation_end
       { generation = 2; iterations_done = 9; coverage = 1.; timing_diffs = 0;
         corpus_size = 1 });
  let s = snap () in
  (match s.Telemetry.Observatory.points with
  | [ a; b ] ->
      checkb "ascending by min interval" true
        (a.Telemetry.Observatory.point = "y" && b.point = "x");
      checki "latest cumulative histogram wins" 4
        (Telemetry.Histogram.total b.hist);
      checkb "decoded extrema preserved" true
        (Telemetry.Histogram.min_value b.hist = Some 1
        && Telemetry.Histogram.max_value b.hist = Some 9)
  | pts -> Alcotest.failf "expected 2 points, got %d" (List.length pts));
  checkb "latest heatmap wins" true
    (s.heatmap = [ ("exec", 2.); ("lsu", 1.) ]);
  (match s.span_tree with
  | [ root ] ->
      checkb "span tree assembled" true
        (root.Telemetry.Observatory.span_name = "campaign"
        && root.calls = 1 && root.seconds = 2.5)
  | t -> Alcotest.failf "expected 1 span root, got %d" (List.length t));
  checkb "snapshot serialises" true
    (match Telemetry.Observatory.to_json s with Json.Obj _ -> true | _ -> false)

(* --- corpus events --- *)

let test_corpus_events () =
  let events = ref [] in
  let emit ev = events := ev :: !events in
  let c = Corpus.create ~max_entries:2 () in
  let tc i = { (Testcase.random (Rng.create 1L) ~id:0 ~dual:false) with Testcase.id = i } in
  ignore (Corpus.consider ~emit c (tc 1) ~intervals:[ (("p", 0), 9) ]);
  ignore (Corpus.consider ~emit c (tc 2) ~intervals:[ (("p", 0), 8) ]);
  ignore (Corpus.consider ~emit c (tc 3) ~intervals:[ (("p", 0), 9) ]);
  (* no improvement: no events *)
  ignore (Corpus.consider ~emit c (tc 4) ~intervals:[ (("p", 0), 7) ]);
  let retained =
    List.filter_map
      (function Telemetry.Corpus_retained e -> Some e.testcase_id | _ -> None)
      (List.rev !events)
  in
  let evicted =
    List.filter_map
      (function Telemetry.Corpus_evicted e -> Some e.testcase_id | _ -> None)
      (List.rev !events)
  in
  Alcotest.(check (list int)) "retained ids in order" [ 1; 2; 4 ] retained;
  Alcotest.(check (list int)) "oldest entry evicted" [ 1 ] evicted

(* --- progress sink --- *)

let test_progress_reports () =
  let path = Filename.temp_file "sonar_progress" ".txt" in
  let oc = open_out path in
  let sink = Telemetry.progress ~out:oc ~every:8 ~total:16 () in
  ignore (campaign ~sinks:[ sink ] ~batch:8 ~iterations:16 ());
  (* the reporter flushes after every line, so the output is on disk
     before the channel is closed — an observer (tail -f, the serve
     follower) must not be starved by buffering *)
  let read () =
    let ic = open_in path in
    let contents = really_input_string ic (in_channel_length ic) in
    close_in ic;
    contents
  in
  let contents = read () in
  close_out oc;
  Sys.remove path;
  checkb "progress lines flushed as they happen" true
    (String.length contents > 0
    && String.length contents - String.length (String.concat "" (String.split_on_char '\n' contents)) >= 2);
  checkb "final line reports the campaign outcome" true
    (let rec contains i =
       i + 8 <= String.length contents
       && (String.sub contents i 8 = "campaign" || contains (i + 1))
     in
     contains 0)

(* --- Options record API --- *)

let test_options_record_equivalences () =
  (* Omitting ~options must mean exactly Options.default, and a record
     built field-by-field must behave like the record-update idiom —
     the invariants the removed run_legacy wrapper used to pin down. *)
  let implicit = Fuzzer.run nutshell Fuzzer.full_strategy ~iterations:15 in
  let explicit_default =
    Fuzzer.run ~options:Fuzzer.Options.default nutshell Fuzzer.full_strategy
      ~iterations:15
  in
  checkb "no ~options = Options.default" true (implicit = explicit_default);
  let via_update =
    Fuzzer.run
      ~options:{ Fuzzer.Options.default with seed = 17L; batch = 5 }
      nutshell Fuzzer.full_strategy ~iterations:15
  in
  let via_literal =
    Fuzzer.run
      ~options:
        {
          Fuzzer.Options.seed = 17L;
          dual = false;
          max_cycles = None;
          jobs = 1;
          batch = 5;
          chunk = None;
          checkpoint = true;
          sinks = [];
        }
      nutshell Fuzzer.full_strategy ~iterations:15
  in
  checkb "bit-identical outcomes" true (via_update = via_literal)

let test_null_sink_not_observable () =
  (* Attaching sinks (null or real) must not perturb the campaign. *)
  let bare = campaign ~iterations:16 () in
  let with_null = campaign ~sinks:[ Telemetry.null ] ~iterations:16 () in
  let agg, _ = Telemetry.aggregator () in
  let with_agg = campaign ~sinks:[ agg; Telemetry.null ] ~iterations:16 () in
  checkb "null sink: identical outcome" true (bare = with_null);
  checkb "aggregator: identical outcome" true (bare = with_agg)

let test_options_validation () =
  let run ?chunk ~batch ~jobs () =
    Fuzzer.run
      ~options:{ Fuzzer.Options.default with batch; jobs; chunk }
      nutshell Fuzzer.full_strategy ~iterations:4
  in
  let bad f = match f () with exception Invalid_argument _ -> true | _ -> false in
  checkb "batch < 1 rejected" true (bad (run ~batch:0 ~jobs:1));
  checkb "jobs < 1 rejected" true (bad (run ~batch:8 ~jobs:0));
  checkb "chunk < 1 rejected" true (bad (run ~chunk:0 ~batch:8 ~jobs:1))

let () =
  Alcotest.run "sonar_telemetry"
    [
      ( "json",
        [
          Alcotest.test_case "printing" `Quick test_json_print;
          Alcotest.test_case "parsing" `Quick test_json_parse;
          Alcotest.test_case "print/parse identity" `Quick
            test_json_print_parse_identity;
          Alcotest.test_case "member access" `Quick test_json_member;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode_escapes;
          Alcotest.test_case "control characters" `Quick test_json_control_chars;
          Alcotest.test_case "deep nesting" `Quick test_json_deep_nesting;
          Alcotest.test_case "error positions" `Quick test_json_error_positions;
        ] );
      ( "json properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_json_roundtrip;
            qcheck_json_string_bytes;
            qcheck_json_trailing_garbage;
            qcheck_json_truncation;
          ] );
      ( "events",
        [ Alcotest.test_case "json round-trip" `Quick test_event_json_roundtrip ] );
      ( "histograms",
        [
          Alcotest.test_case "bucketing and extrema" `Quick
            test_histogram_bucketing;
          Alcotest.test_case "json round-trip and merge" `Quick
            test_histogram_json_and_merge;
          Alcotest.test_case "registry dirty set" `Quick
            test_histogram_registry_dirty;
        ] );
      ( "spans",
        [
          Alcotest.test_case "recorder with injected clock" `Quick
            test_span_recorder;
          Alcotest.test_case "tree merging" `Quick test_span_tree_merging;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "aggregator matches campaign" `Quick
            test_aggregator_matches_outcome;
          Alcotest.test_case "jsonl round-trips" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "trace identical across jobs" `Quick
            test_trace_jobs_deterministic;
          Alcotest.test_case "timings are opt-in" `Quick test_jsonl_timings_opt_in;
          Alcotest.test_case "jsonl file writer" `Quick test_jsonl_file_writes;
          Alcotest.test_case "campaign_end footer" `Quick
            test_campaign_end_footer;
          Alcotest.test_case "campaign_end on crash" `Quick
            test_campaign_end_on_crash;
          Alcotest.test_case "rotating trace writer" `Quick test_rotating_jsonl;
          Alcotest.test_case "rotation validation" `Quick
            test_rotating_validation;
          Alcotest.test_case "synchronized sink" `Quick test_synchronized_sink;
          Alcotest.test_case "observatory merge" `Quick test_observatory_merge;
          Alcotest.test_case "partial trace survives a crash" `Quick
            test_partial_trace_on_raise;
          Alcotest.test_case "observatory snapshot" `Quick
            test_observatory_snapshot;
          Alcotest.test_case "corpus events" `Quick test_corpus_events;
          Alcotest.test_case "progress reporter" `Quick test_progress_reports;
        ] );
      ( "options",
        [
          Alcotest.test_case "record equivalences" `Quick
            test_options_record_equivalences;
          Alcotest.test_case "sinks never perturb outcomes" `Quick
            test_null_sink_not_observable;
          Alcotest.test_case "validation" `Quick test_options_validation;
        ] );
    ]
