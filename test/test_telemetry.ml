(* Tests for the campaign telemetry subsystem: the Json document model,
   event JSON round-tripping, sink aggregation against a hand-run campaign,
   trace determinism across worker counts, and the Options-record API
   (equivalence with the deprecated legacy signature, null-sink
   non-interference). *)

open Sonar

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let checkf = Alcotest.(check (float 0.0001))

(* --- Json --- *)

let test_json_print () =
  checks "compact object" {|{"a":1,"b":[true,null,"x"]}|}
    (Json.to_string
       (Json.Obj
          [ ("a", Json.Int 1); ("b", Json.List [ Json.Bool true; Json.Null; Json.String "x" ]) ]));
  checks "integral float keeps a decimal" "2.0" (Json.to_string (Json.Float 2.));
  checks "negative int" "-17" (Json.to_string (Json.Int (-17)));
  checks "escapes" {|"a\"b\\c\nd"|} (Json.to_string (Json.String "a\"b\\c\nd"));
  checks "non-finite floats are null" "null" (Json.to_string (Json.Float Float.nan))

let test_json_parse () =
  checkb "object round-trip" true
    (Json.of_string {| { "x" : [1, 2.5, "s", false] , "y": null } |}
    = Json.Obj
        [
          ( "x",
            Json.List [ Json.Int 1; Json.Float 2.5; Json.String "s"; Json.Bool false ]
          );
          ("y", Json.Null);
        ]);
  checkb "exponent parses as float" true
    (match Json.of_string "1e3" with Json.Float f -> f = 1000. | _ -> false);
  checkb "string escapes" true (Json.of_string {|"aA\n"|} = Json.String "aA\n");
  checkb "trailing garbage rejected" true
    (match Json.of_string "1 x" with exception Json.Parse_error _ -> true | _ -> false);
  checkb "unterminated string rejected" true
    (match Json.of_string {|"abc|} with exception Json.Parse_error _ -> true | _ -> false)

let test_json_print_parse_identity () =
  let docs =
    [
      Json.Null;
      Json.Obj [];
      Json.List [];
      Json.Obj
        [
          ("n", Json.Int 42);
          ("f", Json.Float 3.25);
          ("deep", Json.Obj [ ("l", Json.List [ Json.List [ Json.Int 1 ] ]) ]);
          ("s", Json.String "tab\there");
        ];
    ]
  in
  List.iter
    (fun doc ->
      checkb "parse (print doc) = doc" true (Json.of_string (Json.to_string doc) = doc))
    docs

let test_json_member () =
  let doc = Json.of_string {|{"a":{"b":7}}|} in
  checki "nested member" 7 Json.(to_int (member "b" (member "a" doc)));
  checkb "missing member is Null" true (Json.member "zzz" doc = Json.Null);
  checkf "to_float accepts ints" 7. Json.(to_float (member "b" (member "a" doc)))

(* --- event JSON round-trip --- *)

let sample_events =
  [
    Telemetry.Generation_start { generation = 1; first_iteration = 1; size = 8 };
    Telemetry.Testcase_executed { testcase_id = 3; cycles0 = 220; cycles1 = 224 };
    Telemetry.Contention_triggered { iteration = 3; added = 12.5; coverage = 40.25 };
    Telemetry.Ccd_finding { iteration = 4; findings = 2; total_delta = -3 };
    Telemetry.Corpus_retained { testcase_id = 4; corpus_size = 2 };
    Telemetry.Corpus_evicted { testcase_id = 1; corpus_size = 256 };
    Telemetry.Mutation_flip { iteration = 5; direction = "shrink" };
    Telemetry.Generation_end
      {
        generation = 1;
        iterations_done = 8;
        coverage = 40.25;
        timing_diffs = 2;
        corpus_size = 2;
      };
    Telemetry.Phase_timing
      { generation = 1; phase = Telemetry.Execute; seconds = 0.125 };
  ]

let test_event_json_roundtrip () =
  List.iter
    (fun ev ->
      match Telemetry.event_of_json (Telemetry.json_of_event ev) with
      | Some ev' -> checkb "decode (encode ev) = ev" true (ev = ev')
      | None -> Alcotest.fail "event failed to decode")
    sample_events;
  checkb "unknown event name rejected" true
    (Telemetry.event_of_json (Json.of_string {|{"event":"martian"}|}) = None);
  checkb "malformed payload rejected" true
    (Telemetry.event_of_json (Json.of_string {|{"event":"ccd_finding"}|}) = None)

(* --- campaign helpers --- *)

let nutshell = Sonar_uarch.Config.nutshell

let campaign ?(sinks = []) ?(jobs = 1) ~iterations () =
  Fuzzer.run
    ~options:{ Fuzzer.Options.default with seed = 23L; jobs; sinks }
    nutshell Fuzzer.full_strategy ~iterations

(* --- aggregator vs a hand-run campaign --- *)

let test_aggregator_matches_outcome () =
  let sink, snap = Telemetry.aggregator () in
  let o = campaign ~sinks:[ sink ] ~iterations:30 () in
  let m = snap () in
  checki "one executed event per iteration" 30 m.Telemetry.Metrics.testcases;
  checki "generations = ceil(30/8)" 4 m.generations;
  checkf "coverage tracks the outcome" o.Fuzzer.final_coverage m.coverage;
  checki "findings sum matches" o.final_timing_diffs m.ccd_findings;
  checki "finding testcases match" o.testcases_with_diffs m.finding_testcases;
  checki "contention testcases match" o.contentions_triggered_testcases
    m.contention_testcases;
  checki "corpus size matches the final series point"
    (List.nth o.series 29).Fuzzer.corpus_size m.corpus_size;
  checkb "retention happened" true (m.retained > 0);
  checkb "phase timings accumulated" true
    (m.generate_seconds >= 0. && m.execute_seconds > 0. && m.feedback_seconds > 0.);
  checkb "events/sec positive" true (m.events_per_second > 0.)

(* --- JSONL trace: parser round-trip and jobs-determinism --- *)

let trace_lines ~jobs ~iterations =
  let lines = ref [] in
  let sink = Telemetry.jsonl (fun s -> lines := s :: !lines) in
  ignore (campaign ~sinks:[ sink ] ~jobs ~iterations ());
  List.rev !lines

let test_jsonl_roundtrip () =
  let lines = trace_lines ~jobs:1 ~iterations:16 in
  checkb "trace not empty" true (lines <> []);
  List.iter
    (fun line ->
      match Telemetry.event_of_json (Json.of_string line) with
      | Some ev ->
          checks "re-encode reproduces the line byte-for-byte" line
            (Json.to_string (Telemetry.json_of_event ev))
      | None -> Alcotest.fail ("line did not decode to an event: " ^ line))
    lines;
  checkb "trace contains a generation_end" true
    (List.exists
       (fun l ->
         match Telemetry.event_of_json (Json.of_string l) with
         | Some (Telemetry.Generation_end _) -> true
         | _ -> false)
       lines)

let test_trace_jobs_deterministic () =
  (* The acceptance property: the JSONL trace is byte-identical for jobs=1
     vs jobs=2 at fixed seed/batch (Phase_timing is excluded by default). *)
  let a = trace_lines ~jobs:1 ~iterations:24 in
  let b = trace_lines ~jobs:2 ~iterations:24 in
  checki "same event count" (List.length a) (List.length b);
  checks "byte-identical traces" (String.concat "\n" a) (String.concat "\n" b)

let test_jsonl_timings_opt_in () =
  let count_timings ~timings =
    let n = ref 0 in
    let sink =
      Telemetry.jsonl ~timings (fun s ->
          if
            match Telemetry.event_of_json (Json.of_string s) with
            | Some (Telemetry.Phase_timing _) -> true
            | _ -> false
          then incr n)
    in
    ignore (campaign ~sinks:[ sink ] ~iterations:8 ());
    !n
  in
  checki "timings excluded by default" 0 (count_timings ~timings:false);
  checki "3 phase timings per generation when opted in" 3
    (count_timings ~timings:true)

let test_jsonl_file_writes () =
  let path = Filename.temp_file "sonar_trace" ".jsonl" in
  let sink = Telemetry.jsonl_file path in
  ignore (campaign ~sinks:[ sink ] ~iterations:8 ());
  Telemetry.close sink;
  Telemetry.close sink;
  (* close is idempotent *)
  let ic = open_in path in
  let n = ref 0 in
  (try
     while true do
       let line = input_line ic in
       checkb "line parses" true (Json.of_string line <> Json.Null);
       incr n
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  checkb "several events on disk" true (!n > 8)

(* --- corpus events --- *)

let test_corpus_events () =
  let events = ref [] in
  let emit ev = events := ev :: !events in
  let c = Corpus.create ~max_entries:2 () in
  let tc i = { (Testcase.random (Rng.create 1L) ~id:0 ~dual:false) with Testcase.id = i } in
  ignore (Corpus.consider ~emit c (tc 1) ~intervals:[ (("p", 0), 9) ]);
  ignore (Corpus.consider ~emit c (tc 2) ~intervals:[ (("p", 0), 8) ]);
  ignore (Corpus.consider ~emit c (tc 3) ~intervals:[ (("p", 0), 9) ]);
  (* no improvement: no events *)
  ignore (Corpus.consider ~emit c (tc 4) ~intervals:[ (("p", 0), 7) ]);
  let retained =
    List.filter_map
      (function Telemetry.Corpus_retained e -> Some e.testcase_id | _ -> None)
      (List.rev !events)
  in
  let evicted =
    List.filter_map
      (function Telemetry.Corpus_evicted e -> Some e.testcase_id | _ -> None)
      (List.rev !events)
  in
  Alcotest.(check (list int)) "retained ids in order" [ 1; 2; 4 ] retained;
  Alcotest.(check (list int)) "oldest entry evicted" [ 1 ] evicted

(* --- progress sink --- *)

let test_progress_reports () =
  let path = Filename.temp_file "sonar_progress" ".txt" in
  let oc = open_out path in
  let sink = Telemetry.progress ~out:oc ~every:8 ~total:16 () in
  ignore (campaign ~sinks:[ sink ] ~iterations:16 ());
  close_out oc;
  let ic = open_in path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  checkb "progress lines written" true
    (String.length contents > 0
    && String.length contents - String.length (String.concat "" (String.split_on_char '\n' contents)) >= 2)

(* --- Options record API --- *)

let test_options_default_matches_legacy () =
  (* The deprecated optional-argument wrapper and the Options record must
     produce bit-for-bit identical outcomes. *)
  let via_options =
    Fuzzer.run
      ~options:{ Fuzzer.Options.default with seed = 17L; batch = 5 }
      nutshell Fuzzer.full_strategy ~iterations:15
  in
  let via_legacy =
    (Fuzzer.run_legacy [@alert "-deprecated"]) ~seed:17L ~batch:5 nutshell
      Fuzzer.full_strategy ~iterations:15
  in
  checkb "bit-identical outcomes" true (via_options = via_legacy)

let test_null_sink_not_observable () =
  (* Attaching sinks (null or real) must not perturb the campaign. *)
  let bare = campaign ~iterations:16 () in
  let with_null = campaign ~sinks:[ Telemetry.null ] ~iterations:16 () in
  let agg, _ = Telemetry.aggregator () in
  let with_agg = campaign ~sinks:[ agg; Telemetry.null ] ~iterations:16 () in
  checkb "null sink: identical outcome" true (bare = with_null);
  checkb "aggregator: identical outcome" true (bare = with_agg)

let test_options_validation () =
  let run ~batch ~jobs () =
    Fuzzer.run
      ~options:{ Fuzzer.Options.default with batch; jobs }
      nutshell Fuzzer.full_strategy ~iterations:4
  in
  let bad f = match f () with exception Invalid_argument _ -> true | _ -> false in
  checkb "batch < 1 rejected" true (bad (run ~batch:0 ~jobs:1));
  checkb "jobs < 1 rejected" true (bad (run ~batch:8 ~jobs:0))

let () =
  Alcotest.run "sonar_telemetry"
    [
      ( "json",
        [
          Alcotest.test_case "printing" `Quick test_json_print;
          Alcotest.test_case "parsing" `Quick test_json_parse;
          Alcotest.test_case "print/parse identity" `Quick
            test_json_print_parse_identity;
          Alcotest.test_case "member access" `Quick test_json_member;
        ] );
      ( "events",
        [ Alcotest.test_case "json round-trip" `Quick test_event_json_roundtrip ] );
      ( "sinks",
        [
          Alcotest.test_case "aggregator matches campaign" `Quick
            test_aggregator_matches_outcome;
          Alcotest.test_case "jsonl round-trips" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "trace identical across jobs" `Quick
            test_trace_jobs_deterministic;
          Alcotest.test_case "timings are opt-in" `Quick test_jsonl_timings_opt_in;
          Alcotest.test_case "jsonl file writer" `Quick test_jsonl_file_writes;
          Alcotest.test_case "corpus events" `Quick test_corpus_events;
          Alcotest.test_case "progress reporter" `Quick test_progress_reports;
        ] );
      ( "options",
        [
          Alcotest.test_case "record matches legacy signature" `Quick
            test_options_default_matches_legacy;
          Alcotest.test_case "sinks never perturb outcomes" `Quick
            test_null_sink_not_observable;
          Alcotest.test_case "validation" `Quick test_options_validation;
        ] );
    ]
