(* Tests for the micro-architectural timing models: configurations, the
   contention-point registry, caches, execution units, and the machine. *)

open Sonar_isa
open Sonar_uarch

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let r = Reg.of_int

(* --- Config --- *)

let test_config_lookup () =
  checkb "boom" true (Config.by_name "boom" = Some Config.boom);
  checkb "nutshell" true (Config.by_name "nutshell" = Some Config.nutshell);
  checkb "unknown" true (Config.by_name "zen5" = None)

let test_config_table1 () =
  checki "boom rob" 96 Config.boom.rob_entries;
  checki "boom fetch width" 8 Config.boom.fetch_width;
  checki "boom mshrs" 2 Config.boom.mshrs;
  checki "nutshell rob" 32 Config.nutshell.rob_entries;
  checkb "nutshell mdu" true Config.nutshell.unified_mdu;
  checkb "exception policies differ" true
    (Config.boom.exception_policy = Config.Lazy_at_commit
    && Config.nutshell.exception_policy = Config.Early_at_execute)

let test_config_fanout_prefix () =
  checki "bare name" 420 (Config.fanout_of Config.boom "tilelink.d_channel");
  checki "core prefix stripped" 540 (Config.fanout_of Config.boom "c0.lsu.ldq_stq_idx");
  checki "unknown defaults to 1" 1 (Config.fanout_of Config.boom "made.up")

(* --- Cpoint --- *)

let registry () = Cpoint.create Config.boom

let test_cpoint_intervals_and_triggers () =
  let reg = registry () in
  let p = Cpoint.point reg ~name:"t.arb" ~component:Sonar_ir.Component.Exec
      ~sources:[ "a"; "b" ] () in
  Cpoint.open_window reg;
  Cpoint.set_cycle reg 10;
  Cpoint.request reg p ~tainted:true ~source:0 ~data:1L;
  Cpoint.set_cycle reg 13;
  Cpoint.request reg p ~tainted:true ~source:1 ~data:2L;
  Alcotest.(check (option int)) "pair interval 3" (Some 3) p.Cpoint.min_pair;
  checkb "not yet triggered" true (Cpoint.triggered_subs p = []);
  Cpoint.request reg p ~tainted:true ~source:0 ~data:3L;
  checkb "same-cycle pair triggers" true (Cpoint.triggered_subs p <> [])

let test_cpoint_taint_gating () =
  let reg = registry () in
  let p = Cpoint.point reg ~name:"t.arb2" ~component:Sonar_ir.Component.Exec
      ~sources:[ "a"; "b" ] () in
  Cpoint.open_window reg;
  Cpoint.set_cycle reg 5;
  Cpoint.request reg p ~tainted:false ~source:0 ~data:1L;
  Cpoint.request reg p ~tainted:false ~source:1 ~data:2L;
  checkb "untainted pair does not trigger" true (Cpoint.triggered_subs p = []);
  Alcotest.(check (option int)) "untainted pair not recorded" None p.Cpoint.min_pair;
  Cpoint.request reg p ~tainted:true ~source:0 ~data:3L;
  checkb "tainted member triggers" true (Cpoint.triggered_subs p <> [])

(* Regression for the incremental active-source counter: dominance must
   survive repeated one-source activity (in and out of the window) and be
   demoted exactly when a second source first requests in-window. *)
let test_cpoint_dominance_counter () =
  let reg = registry () in
  let p = Cpoint.point reg ~name:"t.dom" ~component:Sonar_ir.Component.Exec
      ~sources:[ "a"; "b"; "c" ] () in
  Cpoint.set_cycle reg 1;
  (* Out-of-window requests do not count as activity. *)
  Cpoint.request reg p ~tainted:true ~source:1 ~data:1L;
  Cpoint.open_window reg;
  Cpoint.set_cycle reg 2;
  Cpoint.request reg p ~tainted:true ~source:0 ~data:1L;
  Cpoint.request reg p ~tainted:true ~source:0 ~data:2L;
  Cpoint.request reg p ~tainted:true ~source:0 ~data:3L;
  checkb "one active source: still dominated" true p.Cpoint.single_valid_dominated;
  checki "active sources" 1 p.Cpoint.active_sources;
  Cpoint.set_cycle reg 3;
  Cpoint.request reg p ~tainted:true ~source:2 ~data:4L;
  checkb "second source demotes" false p.Cpoint.single_valid_dominated;
  checki "two active sources" 2 p.Cpoint.active_sources

let test_cpoint_window_gating () =
  let reg = registry () in
  let p = Cpoint.point reg ~name:"t.arb3" ~component:Sonar_ir.Component.Exec
      ~sources:[ "a"; "b" ] () in
  Cpoint.set_cycle reg 5;
  (* window closed *)
  Cpoint.request reg p ~tainted:true ~source:0 ~data:1L;
  Cpoint.request reg p ~tainted:true ~source:1 ~data:2L;
  checkb "closed window: no triggers" true (Cpoint.triggered_subs p = []);
  checki "closed window: no hits" 0 (p.Cpoint.hits.(0) + p.Cpoint.hits.(1))

let test_cpoint_single_source () =
  let reg = registry () in
  let p = Cpoint.point reg ~name:"t.lone" ~component:Sonar_ir.Component.Rob
      ~sources:[ "only" ] () in
  Cpoint.open_window reg;
  Cpoint.set_cycle reg 2;
  checkb "single-valid flagged" true p.Cpoint.single_valid;
  Cpoint.request reg p ~tainted:true ~source:0 ~data:7L;
  checkb "triggers on first risky request" true (Cpoint.triggered_subs p <> [])

let test_cpoint_pair_name () =
  let reg = registry () in
  let p = Cpoint.point reg ~name:"t.n" ~component:Sonar_ir.Component.Bus
      ~sources:[ "x"; "y"; "z" ] () in
  Alcotest.(check string) "pair 0" "x-y" (Cpoint.pair_name p 0);
  Alcotest.(check string) "pair 1" "x-z" (Cpoint.pair_name p 1);
  Alcotest.(check string) "pair 2" "y-z" (Cpoint.pair_name p 2)

let test_cpoint_persistent () =
  let reg = registry () in
  let p = Cpoint.point reg ~name:"t.pers" ~component:Sonar_ir.Component.Lsu
      ~sources:[ "ld"; "st" ] ~persistent_subs:64 () in
  Cpoint.open_window reg;
  Cpoint.set_cycle reg 1;
  Cpoint.persistent reg p ~tainted:false ~source:0 ~sub:5 ~data:1L;
  checkb "untainted persistent ignored" true (Cpoint.triggered_subs p = []);
  Cpoint.persistent reg p ~tainted:true ~source:0 ~sub:5 ~data:1L;
  checkb "tainted persistent triggers" true
    (List.exists (fun (k, _) -> k = Cpoint.Persistent) (Cpoint.triggered_subs p))

let test_cpoint_snapshot_diff () =
  let mk hits =
    let reg = registry () in
    let p = Cpoint.point reg ~name:"t.snap" ~component:Sonar_ir.Component.Lsu
        ~sources:[ "a"; "b" ] () in
    Cpoint.open_window reg;
    for c = 1 to hits do
      Cpoint.set_cycle reg c;
      Cpoint.request reg p ~tainted:true ~source:0 ~data:(Int64.of_int c)
    done;
    Cpoint.snapshot p
  in
  checkb "same activity: no diff" true
    (Cpoint.diff_snapshots [ mk 3 ] [ mk 3 ] = []);
  checkb "different activity: diff" true
    (Cpoint.diff_snapshots [ mk 3 ] [ mk 5 ] <> [])

(* --- Cache --- *)

let cache_cfg = { Config.size_kb = 32; ways = 8; line_bytes = 64; hit_latency = 3 }

let test_cache_hit_miss () =
  let c = Cache.create cache_cfg in
  checkb "cold miss" false (Cache.probe c 0x1000L);
  ignore (Cache.fill c 0x1000L ~seq:1 ~cycle:10 ~tainted:false);
  checkb "hit after fill" true (Cache.probe c 0x1000L);
  checkb "same line different word" true (Cache.probe c 0x1020L);
  checkb "different line" false (Cache.probe c 0x1040L)

let test_cache_eviction () =
  let c = Cache.create cache_cfg in
  (* 32KB/8w/64B = 64 sets; stride 4096 hits the same set. *)
  for k = 0 to 7 do
    ignore (Cache.fill c (Int64.of_int (4096 * k)) ~seq:k ~cycle:k ~tainted:false)
  done;
  checkb "all ways resident" true (Cache.probe c 0L);
  let victim = Cache.fill c (Int64.of_int (4096 * 8)) ~seq:9 ~cycle:9 ~tainted:true in
  checkb "eviction happened" true (victim <> None);
  checkb "LRU way evicted" false (Cache.probe c 0L);
  checkb "recently evicted recorded" true
    (match Cache.recently_evicted c 0L with
    | Some (9, true) -> true
    | _ -> false)

let test_cache_dirty () =
  let c = Cache.create cache_cfg in
  ignore (Cache.fill c 0x2000L ~seq:1 ~cycle:1 ~tainted:false);
  checkb "clean after fill" false (Cache.is_dirty c 0x2000L);
  checkb "mark dirty" true (Cache.mark_dirty c 0x2000L);
  checkb "dirty now" true (Cache.is_dirty c 0x2000L);
  checkb "mark missing line" false (Cache.mark_dirty c 0x9000L)

let test_cache_fill_info () =
  let c = Cache.create cache_cfg in
  ignore (Cache.fill c 0x3000L ~seq:42 ~cycle:7 ~tainted:true);
  match Cache.lookup c 0x3000L with
  | Some info ->
      checki "filler seq" 42 info.Cache.filler_seq;
      checkb "filler taint" true info.filler_tainted
  | None -> Alcotest.fail "expected hit"

(* --- Exec units --- *)

let test_exec_alu_slots () =
  let reg = registry () in
  let pool = Exec_unit.create Config.boom reg ~core:0 in
  Exec_unit.new_cycle pool ~cycle:1;
  checkb "slot 1" true (Exec_unit.try_issue_alu pool ~cycle:1 ~tainted:false <> None);
  checkb "slot 2" true (Exec_unit.try_issue_alu pool ~cycle:1 ~tainted:false <> None);
  checkb "slot 3" true (Exec_unit.try_issue_alu pool ~cycle:1 ~tainted:false <> None);
  checkb "no slot 4" true (Exec_unit.try_issue_alu pool ~cycle:1 ~tainted:false = None);
  Exec_unit.new_cycle pool ~cycle:2;
  checkb "fresh next cycle" true (Exec_unit.try_issue_alu pool ~cycle:2 ~tainted:false <> None)

let test_exec_div_unpipelined () =
  let reg = registry () in
  let pool = Exec_unit.create Config.boom reg ~core:0 in
  Exec_unit.new_cycle pool ~cycle:1;
  let first = Exec_unit.try_issue_div pool ~cycle:1 ~operand:1000L ~tainted:false in
  checkb "first div accepted" true (first <> None);
  checkb "second div refused" true
    (Exec_unit.try_issue_div pool ~cycle:2 ~operand:1000L ~tainted:false = None);
  let done_at = Option.get first in
  checkb "free after completion" true
    (Exec_unit.try_issue_div pool ~cycle:done_at ~operand:1000L ~tainted:false <> None)

let test_exec_wb_priority () =
  let reg = registry () in
  let pool = Exec_unit.create Config.boom reg ~core:0 in
  (* boom has 2 writeback ports; a div, a mul and two alus contend. *)
  Exec_unit.request_writeback pool Exec_unit.Wb_div ~id:1 ~cycle:5 ~tainted:false;
  Exec_unit.request_writeback pool Exec_unit.Wb_alu ~id:2 ~cycle:5 ~tainted:false;
  Exec_unit.request_writeback pool Exec_unit.Wb_mul ~id:3 ~cycle:5 ~tainted:false;
  Exec_unit.request_writeback pool Exec_unit.Wb_alu ~id:4 ~cycle:5 ~tainted:false;
  let granted = Exec_unit.arbitrate_writeback pool ~cycle:5 in
  Alcotest.(check (list int)) "alus win the ports" [ 2; 4 ] granted;
  let granted2 = Exec_unit.arbitrate_writeback pool ~cycle:6 in
  Alcotest.(check (list int)) "mul then div next" [ 3; 1 ] granted2

let test_exec_mdu_shared () =
  let reg = Cpoint.create Config.nutshell in
  let pool = Exec_unit.create Config.nutshell reg ~core:0 in
  Exec_unit.new_cycle pool ~cycle:1;
  checkb "mul takes mdu" true
    (Exec_unit.try_issue_mul pool ~cycle:1 ~operand:10L ~tainted:false <> None);
  checkb "div blocked by mul" true
    (Exec_unit.try_issue_div pool ~cycle:2 ~operand:10L ~tainted:false = None)

(* --- Machine --- *)

let straightline_program rng_seed =
  let rng = Sonar.Rng.create rng_seed in
  let instrs =
    Sonar.Testcase.random_instr rng
    @ Sonar.Testcase.random_instr rng
    @ Sonar.Testcase.random_instr rng
  in
  Program.make
    (Asm.li (r 11) 0x10000000L @ Asm.li (r 20) 0x10001000L
    @ Asm.li (r 21) 0x10002000L @ Asm.li (r 22) 0x10004000L
    @ instrs @ [ Asm.halt ])

let test_machine_commits_match_golden () =
  (* The timing model must commit exactly the golden architectural trace. *)
  for seed = 1 to 20 do
    let p = straightline_program (Int64.of_int seed) in
    let g = Golden.run p in
    let m = Machine.run_single Config.boom p in
    let commits = m.Machine.cores.(0).commits in
    checki
      (Printf.sprintf "commit count (seed %d)" seed)
      (Array.length g.Golden.trace)
      (List.length commits);
    List.iteri
      (fun i (c : Core_model.commit_record) ->
        checkb "same dynamic instruction" true
          (Instr.equal c.c_eff.Golden.instr g.Golden.trace.(i).Golden.instr))
      commits
  done

let test_machine_commit_order_monotonic () =
  let p = straightline_program 7L in
  let m = Machine.run_single Config.nutshell p in
  let cycles = List.map (fun (c : Core_model.commit_record) -> c.c_cycle)
      m.Machine.cores.(0).commits in
  checkb "commit cycles non-decreasing" true
    (List.for_all2 (fun a b -> a <= b)
       (List.filteri (fun i _ -> i < List.length cycles - 1) cycles)
       (List.tl cycles))

let test_machine_cycle_limit () =
  let p = straightline_program 3L in
  let m = Machine.run_single ~max_cycles:10 Config.boom p in
  checkb "hit the limit" true m.Machine.hit_cycle_limit

let test_machine_dual_core () =
  let p0 = straightline_program 4L and p1 = straightline_program 5L in
  let m =
    Machine.run Config.boom
      [|
        { Machine.program = p0; secret_range = None };
        { Machine.program = p1; secret_range = None };
      |]
  in
  checkb "both cores commit" true
    (m.Machine.cores.(0).commits <> [] && m.Machine.cores.(1).commits <> [])

let test_machine_warm_faster_than_cold () =
  (* Second access to the same line is faster: the memory system works. *)
  let prog warm =
    Program.make
      (Asm.li (r 11) 0x10000000L
      @ (if warm then [ Instr.Load (Instr.LD, r 5, r 11, 0) ] else [ Asm.nop ])
      @ [ Instr.Load (Instr.LD, r 6, r 11, 0); Asm.halt ])
  in
  let cold = Machine.run_single Config.boom (prog false) in
  let warm = Machine.run_single Config.boom (prog true) in
  checkb "warm run not slower" true (warm.Machine.cycles <= cold.Machine.cycles + 60);
  (* The cold run's lone load takes a miss; in the warm run the second load
     hits the line the first brought in, so total cycles are smaller or the
     same despite executing one more load. *)
  checkb "dcache provides reuse" true (warm.Machine.cycles < cold.Machine.cycles + 40)

let test_machine_window_bounds () =
  let p = straightline_program 9L in
  let m =
    Machine.run Config.boom [| { Machine.program = p; secret_range = Some (3, 5) } |]
  in
  match m.Machine.window with
  | Some (a, b) -> checkb "window well-formed" true (a <= b)
  | None -> Alcotest.fail "window never opened"

let test_machine_ctx_bit_identical () =
  (* A reused run context must behave exactly like a fresh machine, even
     when different programs interleave on the same context — no stale
     cache lines, MSHRs, or contention-point state may leak between runs. *)
  let ctx = Machine.Ctx.create Config.boom in
  for seed = 30 to 37 do
    let p = straightline_program (Int64.of_int seed) in
    let inputs = [| { Machine.program = p; secret_range = Some (2, 4) } |] in
    let fresh = Machine.run Config.boom inputs in
    let reused = Machine.run ~ctx Config.boom inputs in
    checkb (Printf.sprintf "ctx run identical (seed %d)" seed) true
      (fresh = reused)
  done

let test_machine_ctx_config_mismatch () =
  let ctx = Machine.Ctx.create Config.boom in
  let p = straightline_program 2L in
  checkb "ctx for another config rejected" true
    (match
       Machine.run ~ctx Config.nutshell
         [| { Machine.program = p; secret_range = None } |]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_machine_ctx_allocates_less () =
  (* Reusing a context skips re-allocating the cache line arrays,
     contention-point tables, and the per-core pipeline structures, the
     bulk of a run's minor-heap traffic (measured ~0.12x of a fresh run
     on boom; 0.25 leaves slack). *)
  let p = straightline_program 41L in
  let inputs = [| { Machine.program = p; secret_range = None } |] in
  let ctx = Machine.Ctx.create Config.boom in
  ignore (Machine.run Config.boom inputs);
  ignore (Machine.run ~ctx Config.boom inputs);
  let minor_words_during f =
    let before = Gc.minor_words () in
    f ();
    Gc.minor_words () -. before
  in
  let n = 5 in
  let fresh =
    minor_words_during (fun () ->
        for _ = 1 to n do
          ignore (Machine.run Config.boom inputs)
        done)
  in
  let reused =
    minor_words_during (fun () ->
        for _ = 1 to n do
          ignore (Machine.run ~ctx Config.boom inputs)
        done)
  in
  checkb
    (Printf.sprintf "reused ctx allocates less (fresh %.0f, reused %.0f)"
       fresh reused)
    true
    (reused < 0.25 *. fresh)

(* --- Prefix-checkpointed dual runs --- *)

let test_checkpoint_fork_at_first_instr () =
  (* The very first instruction loads the secret, so the shared prefix is
     empty — yet the divergence is confined to the loaded value and the
     dependent ALU result, which the timing model never reads.  The two
     runs are therefore cycle-identical end to end: the checkpoint is
     captured at the final cycle and run 1 simulates nothing at all, while
     both results stay bit-identical to independent full runs. *)
  let prog secret =
    Program.make
      ~data:[ (8L, Int64.of_int secret) ]
      [
        Instr.Load (Instr.LD, r 5, Reg.x0, 8);
        Instr.Rtype (Instr.ADD, r 6, r 5, r 5);
        Asm.halt;
      ]
  in
  let inputs secret =
    [| { Machine.program = prog secret; secret_range = Some (0, 0) } |]
  in
  let c0, c1, cp =
    Machine.run_dual ~checkpoint:true Config.boom (inputs 0) (inputs 1)
  in
  checki "run1 fully skipped despite fork at instruction 0" c1.Machine.cycles
    cp.Machine.cycles_saved;
  checkb "run0 identical to a full run" true
    (c0 = Machine.run Config.boom (inputs 0));
  checkb "run1 identical to a full run" true
    (c1 = Machine.run Config.boom (inputs 1))

(* Checkpointed dual runs are bit-identical to full dual runs and to two
   independent [Machine.run] calls — commits, snapshots, point stats,
   window, and cycle counts all included in the structural comparison —
   over random testcases at both core counts. *)
let prop_checkpoint_equivalent =
  QCheck2.Test.make
    ~name:"checkpointed dual run = full dual run (random testcases)" ~count:40
    QCheck2.Gen.(pair (int_range 1 10_000) bool)
    (fun (seed, dual) ->
      let rng = Sonar.Rng.create (Int64.of_int seed) in
      let tc = Sonar.Testcase.random rng ~id:seed ~dual in
      let i0 = Sonar.Testcase.materialize tc ~secret:0 in
      let i1 = Sonar.Testcase.materialize tc ~secret:1 in
      let c0, c1, _ = Machine.run_dual ~checkpoint:true Config.boom i0 i1 in
      let f0, f1, fcp = Machine.run_dual ~checkpoint:false Config.boom i0 i1 in
      fcp.Machine.cycles_saved = 0
      && c0 = f0 && c1 = f1
      && c0 = Machine.run Config.boom i0
      && c1 = Machine.run Config.boom i1)

(* Golden/uarch architectural equivalence over random testcases. *)
let prop_machine_matches_golden =
  QCheck2.Test.make ~name:"uarch commits = golden trace (random testcases)"
    ~count:25
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let rng = Sonar.Rng.create (Int64.of_int seed) in
      let tc = Sonar.Testcase.random rng ~id:seed ~dual:false in
      let inputs = Sonar.Testcase.materialize tc ~secret:1 in
      let g = Golden.run inputs.(0).Machine.program in
      let m = Machine.run Config.boom inputs in
      List.length m.Machine.cores.(0).commits = Array.length g.Golden.trace)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sonar_uarch"
    [
      ( "config",
        [
          Alcotest.test_case "lookup" `Quick test_config_lookup;
          Alcotest.test_case "table 1 values" `Quick test_config_table1;
          Alcotest.test_case "fanout prefixes" `Quick test_config_fanout_prefix;
        ] );
      ( "cpoint",
        [
          Alcotest.test_case "intervals and triggers" `Quick test_cpoint_intervals_and_triggers;
          Alcotest.test_case "taint gating" `Quick test_cpoint_taint_gating;
          Alcotest.test_case "dominance counter" `Quick test_cpoint_dominance_counter;
          Alcotest.test_case "window gating" `Quick test_cpoint_window_gating;
          Alcotest.test_case "single source" `Quick test_cpoint_single_source;
          Alcotest.test_case "pair names" `Quick test_cpoint_pair_name;
          Alcotest.test_case "persistent subs" `Quick test_cpoint_persistent;
          Alcotest.test_case "snapshot diff" `Quick test_cpoint_snapshot_diff;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "eviction + LRU" `Quick test_cache_eviction;
          Alcotest.test_case "dirty bits" `Quick test_cache_dirty;
          Alcotest.test_case "fill info" `Quick test_cache_fill_info;
        ] );
      ( "exec_unit",
        [
          Alcotest.test_case "alu slots" `Quick test_exec_alu_slots;
          Alcotest.test_case "div unpipelined" `Quick test_exec_div_unpipelined;
          Alcotest.test_case "writeback priority" `Quick test_exec_wb_priority;
          Alcotest.test_case "nutshell mdu" `Quick test_exec_mdu_shared;
        ] );
      ( "machine",
        [
          Alcotest.test_case "commits match golden" `Quick test_machine_commits_match_golden;
          Alcotest.test_case "commit order" `Quick test_machine_commit_order_monotonic;
          Alcotest.test_case "cycle limit" `Quick test_machine_cycle_limit;
          Alcotest.test_case "dual core" `Quick test_machine_dual_core;
          Alcotest.test_case "cache reuse" `Quick test_machine_warm_faster_than_cold;
          Alcotest.test_case "monitoring window" `Quick test_machine_window_bounds;
          Alcotest.test_case "ctx reuse bit-identical" `Quick
            test_machine_ctx_bit_identical;
          Alcotest.test_case "ctx config mismatch" `Quick
            test_machine_ctx_config_mismatch;
          Alcotest.test_case "ctx allocates less" `Quick
            test_machine_ctx_allocates_less;
          Alcotest.test_case "checkpoint fork at instruction 0" `Quick
            test_checkpoint_fork_at_first_instr;
        ]
        @ qcheck [ prop_machine_matches_golden; prop_checkpoint_equivalent ] );
    ]
